// Inter-op parallel executor: differential fuzzing against the reference
// interpreters (TorchProbe-style — PAPERS.md), concurrency semantics of the
// rt::TaskGroup API, and the ThreadPool shutdown contract. All randomness is
// seeded (runtime/rng.h), no wall-clock dependence, so failures replay.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>

#include "core/interpreter.h"
#include "core/op_registry.h"
#include "core/parallel_executor.h"
#include "core/tracer.h"
#include "nn/models/resnet.h"
#include "passes/scheduler.h"
#include "runtime/rng.h"
#include "runtime/thread_pool.h"

namespace fxcpp {
namespace {

using fx::Argument;
using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::RtValue;

// --------------------------------------------------------------------------
// Bit-level tensor equality (NaN-safe, unlike operator== / allclose).
// --------------------------------------------------------------------------

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

bool bit_equal(const RtValue& a, const RtValue& b) {
  if (a.index() != b.index()) return false;
  if (fx::rt_is_tensor(a)) return bit_equal(fx::rt_tensor(a), fx::rt_tensor(b));
  return true;  // fuzzed graphs only produce tensors
}

// --------------------------------------------------------------------------
// Seeded random-DAG generator over registered elementwise/matmul ops. All
// values are SxS fp32 tensors so every op composes with every other.
// --------------------------------------------------------------------------

constexpr std::int64_t kSide = 4;

Tensor random_tensor(rt::Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(kSide * kSide));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return Tensor::from_vector(v, {kSide, kSide});
}

struct FuzzCase {
  std::shared_ptr<GraphModule> gm;
  std::vector<RtValue> inputs;
};

FuzzCase random_dag(std::uint64_t seed) {
  rt::Rng rng(seed);
  auto g = std::make_unique<Graph>();
  std::vector<Node*> pool;

  const int n_inputs = 1 + static_cast<int>(rng.randint(0, 1));
  for (int i = 0; i < n_inputs; ++i) {
    pool.push_back(g->placeholder("x" + std::to_string(i)));
  }

  static const char* kBinary[] = {"add", "sub", "mul"};
  static const char* kUnary[] = {"relu", "neg", "sigmoid", "tanh", "gelu"};

  const int n_ops = 5 + static_cast<int>(rng.randint(0, 20));
  for (int i = 0; i < n_ops; ++i) {
    auto pick = [&]() -> Node* {
      return pool[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(pool.size()) - 1))];
    };
    Node* n = nullptr;
    switch (rng.randint(0, 3)) {
      case 0:  // tensor-tensor binary: creates the DAG's wide joins
        n = g->call_function(kBinary[rng.randint(0, 2)], {pick(), pick()});
        break;
      case 1:  // unary chain
        n = g->call_function(kUnary[rng.randint(0, 4)], {pick()});
        break;
      case 2:  // tensor-scalar binary (immediate argument path)
        n = g->call_function(kBinary[rng.randint(0, 2)],
                             {pick(), Argument(rng.uniform(-2.0, 2.0))});
        break;
      default:  // matmul keeps shapes square and adds real kernel weight
        n = g->call_function("matmul", {pick(), pick()});
        break;
    }
    pool.push_back(n);
  }

  // Fold every sink into one output so no generated node is dead code.
  std::vector<Node*> sinks;
  for (Node* n : pool) {
    if (n->op() != fx::Opcode::Placeholder && n->users().empty()) {
      sinks.push_back(n);
    }
  }
  Node* acc = sinks.empty() ? pool.back() : sinks[0];
  for (std::size_t i = 1; i < sinks.size(); ++i) {
    acc = g->call_function("add", {acc, sinks[i]});
  }
  g->output(acc);

  FuzzCase fc;
  fc.gm = std::make_shared<GraphModule>(nullptr, std::move(g), "Fuzz");
  fc.gm->recompile();
  for (int i = 0; i < n_inputs; ++i) fc.inputs.emplace_back(random_tensor(rng));
  return fc;
}

// --------------------------------------------------------------------------
// Differential fuzz: ParallelExecutor output bit-equals Interpreter::run and
// the serial tape across 1/2/8-thread pools, >= 200 random DAGs.
// --------------------------------------------------------------------------

TEST(ParallelExecFuzz, MatchesInterpreterAndSerialTape) {
  constexpr int kCases = 220;
  for (int c = 0; c < kCases; ++c) {
    FuzzCase fc = random_dag(0xF00D + static_cast<std::uint64_t>(c));

    const RtValue ref = fx::Interpreter(*fc.gm).run(fc.inputs);
    const std::vector<RtValue> tape =
        fc.gm->compiled_graph().run(fc.inputs);
    ASSERT_EQ(tape.size(), 1u) << "seed " << c;
    ASSERT_TRUE(bit_equal(ref, tape[0])) << "tape diverges at seed " << c;

    for (int threads : {1, 2, 8}) {
      fx::ParallelExecutor ex(*fc.gm, fx::ExecutorOptions{threads, false});
      const std::vector<RtValue> par = ex.run(fc.inputs);
      ASSERT_EQ(par.size(), 1u) << "seed " << c << " threads " << threads;
      ASSERT_TRUE(bit_equal(ref, par[0]))
          << "parallel executor diverges at seed " << c << " with " << threads
          << " threads:\n"
          << fc.gm->graph().to_string();
    }
  }
}

TEST(ParallelExecFuzz, RepeatedRunsOnOneExecutorAreStable) {
  FuzzCase fc = random_dag(42);
  fx::ParallelExecutor ex(*fc.gm, fx::ExecutorOptions{4, false});
  const RtValue ref = fx::Interpreter(*fc.gm).run(fc.inputs);
  for (int i = 0; i < 50; ++i) {
    const auto out = ex.run(fc.inputs);
    ASSERT_TRUE(bit_equal(ref, out.at(0))) << "run " << i;
  }
}

// --------------------------------------------------------------------------
// Schedule construction on a known diamond.
// --------------------------------------------------------------------------

TEST(ScheduleBuild, DiamondDepCounts) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* a = g->call_function("relu", {x});
  Node* b = g->call_function("neg", {x});
  Node* j = g->call_function("add", {a, b});
  g->output(j);
  GraphModule gm(nullptr, std::move(g), "Diamond");
  gm.recompile();

  const fx::Schedule s = fx::build_schedule(gm.compiled_graph());
  // Tape: relu, neg, add, output (placeholder is a register, not an instr).
  ASSERT_EQ(s.dep_count.size(), 4u);
  EXPECT_EQ(s.dep_count[0], 0);  // relu reads only the placeholder register
  EXPECT_EQ(s.dep_count[1], 0);  // neg likewise — the parallel branches
  EXPECT_EQ(s.dep_count[2], 2);  // add waits on both
  EXPECT_EQ(s.dep_count[3], 1);  // output waits on add
  EXPECT_EQ(s.initial_ready.size(), 2u);
  EXPECT_EQ(s.succs[0], (std::vector<int>{2}));
  EXPECT_EQ(s.succs[1], (std::vector<int>{2}));
  EXPECT_EQ(s.succs[2], (std::vector<int>{3}));
}

TEST(ScheduleBuild, StatsObserveExecution) {
  FuzzCase fc = random_dag(7);
  fx::ParallelExecutor ex(*fc.gm, fx::ExecutorOptions{4, true});
  const auto out = ex.run(fc.inputs);
  ASSERT_EQ(out.size(), 1u);
  const fx::ExecutorStats& st = ex.stats();
  EXPECT_EQ(st.nodes_executed, ex.schedule().dep_count.size());
  EXPECT_EQ(st.nodes.size(), st.nodes_executed);
  EXPECT_GE(st.max_concurrency, 1);
  EXPECT_GE(st.max_ready_queue, 1);
  EXPECT_GT(st.total_seconds, 0.0);
  // Every tape instruction reported exactly once.
  std::set<const Node*> seen;
  for (const auto& ns : st.nodes) seen.insert(ns.node);
  EXPECT_EQ(seen.size(), st.nodes_executed);
}

// --------------------------------------------------------------------------
// Exception capture and propagation through the executor.
// --------------------------------------------------------------------------

void ensure_throwing_op() {
  static bool once = [] {
    fx::OpRegistry::functions().add(
        {"fxtest_throw", {"x"}, [](const std::vector<RtValue>&) -> RtValue {
           throw std::runtime_error("fxtest_throw fired");
         }});
    return true;
  }();
  (void)once;
}

TEST(ParallelExecErrors, NodeExceptionPropagates) {
  ensure_throwing_op();
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* a = g->call_function("relu", {x});
  Node* boom = g->call_function("fxtest_throw", {x});
  Node* j = g->call_function("add", {a, boom});
  g->output(j);
  GraphModule gm(nullptr, std::move(g), "Boom");
  gm.recompile();

  fx::ParallelExecutor ex(gm, fx::ExecutorOptions{4, false});
  try {
    ex.run({RtValue(Tensor::randn({kSide, kSide}))});
    FAIL() << "expected fxtest_throw to propagate";
  } catch (const std::runtime_error& e) {
    // Rebased onto ExecError: the original message survives as the detail,
    // wrapped with node/engine provenance.
    EXPECT_NE(std::string(e.what()).find("fxtest_throw fired"),
              std::string::npos)
        << e.what();
  }
  // The executor stays usable after a failed run.
  auto g2 = std::make_unique<Graph>();
  Node* y = g2->placeholder("y");
  g2->output(g2->call_function("relu", {y}));
  GraphModule ok(nullptr, std::move(g2), "Ok");
  fx::ParallelExecutor ex2(ok, fx::ExecutorOptions{2, false});
  EXPECT_NO_THROW(ex2.run({RtValue(Tensor::randn({kSide, kSide}))}));
}

// --------------------------------------------------------------------------
// TaskGroup semantics.
// --------------------------------------------------------------------------

TEST(TaskGroup, WaitsForAllTasks) {
  rt::ThreadPool pool(4);
  rt::TaskGroup group(pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    group.run([&] { done.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(done.load(), 100);
  // wait() is re-callable and groups are reusable after quiescing.
  group.run([&] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 101);
}

TEST(TaskGroup, TasksCanSpawnTasks) {
  rt::ThreadPool pool(2);
  rt::TaskGroup group(pool);
  std::atomic<int> done{0};
  // Binary fan-out from inside workers: 1 + 2 + 4 + 8 = 15 tasks.
  std::function<void(int)> spawn = [&](int depth) {
    done.fetch_add(1);
    if (depth < 3) {
      group.run([&, depth] { spawn(depth + 1); });
      group.run([&, depth] { spawn(depth + 1); });
    }
  };
  group.run([&] { spawn(0); });
  group.wait();
  EXPECT_EQ(done.load(), 15);
}

TEST(TaskGroup, FirstWorkerExceptionPropagates) {
  rt::ThreadPool pool(4);
  rt::TaskGroup group(pool);
  std::atomic<int> ran{0};
  group.run([&] { ran.fetch_add(1); });
  group.run([] { throw std::invalid_argument("worker boom"); });
  group.run([&] { ran.fetch_add(1); });
  try {
    group.wait();
    FAIL() << "expected worker exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "worker boom");
  }
  EXPECT_TRUE(group.failed());
  EXPECT_EQ(ran.load(), 2) << "non-throwing tasks still complete";
}

TEST(TaskGroup, ResizeWhileGroupInFlight) {
  const int before = rt::get_num_interop_threads();
  // Handle idiom: pins the current pool so the mid-flight resize below can
  // never destroy it underneath the group's queued tasks.
  rt::TaskGroup group(rt::ThreadPool::inter_op_handle());
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    group.run([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  // Rebuild the global pool mid-flight: the old pool's destructor drains its
  // queue before joining, so every task still runs exactly once.
  rt::set_num_interop_threads(before + 1);
  rt::ThreadPool::inter_op();
  group.wait();
  EXPECT_EQ(done.load(), 32);
  rt::set_num_interop_threads(before);
}

// --------------------------------------------------------------------------
// ThreadPool shutdown contract: work is never silently dropped.
// --------------------------------------------------------------------------

TEST(ThreadPoolShutdown, SubmitAfterStopRunsInline) {
  rt::ThreadPool pool(2);
  pool.stop();
  EXPECT_TRUE(pool.stopped());
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  bool ran = false;
  pool.submit([&] {
    ran = true;
    ran_on = std::this_thread::get_id();
  });
  EXPECT_TRUE(ran) << "submit after stop() must not drop the task";
  EXPECT_EQ(ran_on, caller);
  pool.stop();  // idempotent
}

TEST(ThreadPoolShutdown, QueuedTasksDrainOnStop) {
  std::atomic<int> done{0};
  {
    rt::ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    }
  }  // destructor stops: every queued task must have run
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolShutdown, ZeroWorkerPoolRunsInline) {
  rt::ThreadPool pool(0);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(TaskGroup, OnStoppedPoolRunsInlineAndCompletes) {
  rt::ThreadPool pool(2);
  pool.stop();
  rt::TaskGroup group(pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) group.run([&] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 8);
}

// --------------------------------------------------------------------------
// GraphModule::forward_parallel and the scheduler stream runner agree with
// the serial paths on a real traced model.
// --------------------------------------------------------------------------

TEST(ForwardParallel, MatchesSerialOnResNetTrace) {
  auto model = nn::models::resnet18(/*width=*/8, /*num_classes=*/10);
  model->train(false);  // BN eval mode: module calls are pure, safe to overlap
  auto gm = fx::symbolic_trace(model);
  const Tensor x = Tensor::randn({1, 3, 16, 16});
  const Tensor serial = gm->run(x);
  for (int threads : {1, 2, 4}) {
    const Tensor par = gm->run_parallel(x, threads);
    EXPECT_TRUE(bit_equal(serial, par)) << threads << " threads";
  }
}

TEST(SchedulerRunParallel, StreamMatchesSerial) {
  FuzzCase fc = random_dag(99);
  // run_parallel expects a single-input graph; regenerate until we get one.
  std::uint64_t seed = 99;
  while (fc.inputs.size() != 1) fc = random_dag(++seed);
  rt::Rng rng(123);
  std::vector<Tensor> stream;
  for (int i = 0; i < 8; ++i) stream.push_back(random_tensor(rng));
  const std::vector<Tensor> par = passes::run_parallel(*fc.gm, stream, 4);
  ASSERT_EQ(par.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Tensor serial = fc.gm->run(stream[i]);
    EXPECT_TRUE(bit_equal(serial, par[i])) << "item " << i;
  }
}

}  // namespace
}  // namespace fxcpp
