// Module hierarchy tests: registration, qualified lookup/replacement,
// state iteration, training flags, and model-level shape checks.
#include <gtest/gtest.h>

#include "core/graph_module.h"
#include "core/tracer.h"
#include "nn/models/deep_recommender.h"
#include "nn/models/learning_to_paint.h"
#include "nn/models/mlp.h"
#include "nn/models/dlrm.h"
#include "nn/models/resnet.h"
#include "nn/models/transformer.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Value;

TEST(Module, RegistrationAndQualifiedLookup) {
  auto model = nn::models::resnet50(8, 10);
  auto conv = model->get_submodule("layer1.0.conv1");
  EXPECT_EQ(conv->kind(), "Conv2d");
  Tensor w = model->get_parameter("layer1.0.conv1.weight");
  EXPECT_EQ(w.sizes(), (Shape{8, 8, 1, 1}));
  EXPECT_TRUE(model->has_parameter("fc.bias"));
  EXPECT_FALSE(model->has_parameter("fc.nope"));
  EXPECT_THROW(model->get_submodule("layer9"), std::out_of_range);
  EXPECT_THROW(model->get_parameter("layer1.0.conv1.gamma"), std::out_of_range);
}

TEST(Module, DuplicateRegistrationRejected) {
  auto m = std::make_shared<nn::Linear>(2, 2);
  EXPECT_THROW(m->register_parameter("weight", Tensor::zeros({1})),
               std::logic_error);
  auto seq = std::make_shared<nn::Sequential>();
  seq->register_module("a", std::make_shared<nn::ReLU>());
  EXPECT_THROW(seq->register_module("a", std::make_shared<nn::ReLU>()),
               std::logic_error);
}

TEST(Module, SetSubmoduleReplacesAndAdds) {
  auto model = nn::models::mlp({4, 8, 2}, "relu");
  model->set_submodule("body.1", std::make_shared<nn::GELU>());
  EXPECT_EQ(model->get_submodule("body.1")->kind(), "GELU");
  model->set_submodule("extra", std::make_shared<nn::ReLU>());
  EXPECT_EQ(model->get_submodule("extra")->kind(), "ReLU");
  model->delete_submodule("extra");
  EXPECT_THROW(model->get_submodule("extra"), std::out_of_range);
}

TEST(Module, SetParameterOverwritesValue) {
  auto model = nn::models::mlp({4, 4});
  model->set_parameter("body.0.bias", Tensor::zeros({4}));
  EXPECT_EQ(model->get_parameter("body.0.bias").at_flat(0), 0.0);
}

TEST(Module, NamedStateAndParamCount) {
  auto model = nn::models::mlp({4, 8, 2});
  const auto state = model->named_state();
  // 2 linears x (weight + bias).
  EXPECT_EQ(state.size(), 4u);
  EXPECT_EQ(state[0].first, "body.0.weight");
  EXPECT_EQ(model->num_parameters(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(Module, TrainPropagates) {
  auto model = nn::models::mlp({4, 4});
  EXPECT_FALSE(model->get_submodule("body.0")->training());
  model->train(true);
  EXPECT_TRUE(model->get_submodule("body.0")->training());
  model->train(false);
  EXPECT_FALSE(model->get_submodule("body.0")->training());
}

TEST(Models, ResNet50OutputShapeAndBlockCount) {
  auto model = nn::models::resnet50(8, 17);
  Tensor y = (*model)(Value(Tensor::randn({2, 3, 32, 32}))).tensor();
  EXPECT_EQ(y.sizes(), (Shape{2, 17}));
  // 3+4+6+3 bottlenecks.
  int blocks = 0;
  for (const auto& [name, stage] : model->children()) {
    if (name.rfind("layer", 0) == 0) {
      blocks += static_cast<int>(stage->children().size());
    }
  }
  EXPECT_EQ(blocks, 16);
}

TEST(Models, ResNet18TracedNodeCount) {
  auto model = nn::models::resnet18(8, 10);
  auto gm = fx::symbolic_trace(model);
  // 20 convs + 20 bns + 17 relu calls + 8 adds + maxpool/avgpool/flatten/fc
  // + placeholder + output = 71.
  EXPECT_EQ(gm->graph().size(), 71u);
}

TEST(Models, DeepRecommenderRoundTripShape) {
  nn::models::DeepRecommenderConfig cfg;
  cfg.item_dim = 128;
  cfg.hidden = {64, 32};
  auto model = nn::models::deep_recommender(cfg);
  Tensor y = (*model)(Value(Tensor::rand({4, 128}))).tensor();
  EXPECT_EQ(y.sizes(), (Shape{4, 128}));
}

TEST(Models, LearningToPaintActionRange) {
  auto model = nn::models::learning_to_paint_actor({9, 65, 8});
  Tensor y = (*model)(Value(Tensor::randn({2, 9, 32, 32}))).tensor();
  EXPECT_EQ(y.sizes(), (Shape{2, 65}));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y.at_flat(i), 0.0);
    EXPECT_LE(y.at_flat(i), 1.0);
  }
}

TEST(Models, DlrmMultiInputForwardAndTrace) {
  nn::models::DlrmConfig cfg;
  auto model = nn::models::dlrm(cfg);
  const std::int64_t B = 4;
  std::vector<Value> inputs{Value(Tensor::randn({B, cfg.dense_dim}))};
  for (std::size_t t = 0; t < cfg.table_sizes.size(); ++t) {
    Tensor idx(Shape{B}, DType::Int64);
    for (std::int64_t i = 0; i < B; ++i) {
      idx.set_flat(i, static_cast<double>((i * 7 + static_cast<std::int64_t>(t) * 13) %
                                          cfg.table_sizes[t]));
    }
    inputs.emplace_back(idx);
  }
  Tensor eager = (*model)(inputs).tensor();
  EXPECT_EQ(eager.sizes(), (Shape{B, 1}));
  for (std::int64_t i = 0; i < eager.numel(); ++i) {
    EXPECT_GE(eager.at_flat(i), 0.0);
    EXPECT_LE(eager.at_flat(i), 1.0);
  }
  // Multi-input tracing: 1 dense + 3 sparse placeholders; cat recorded with
  // a node-list argument.
  fx::Tracer tracer;
  auto gm = tracer.trace(std::static_pointer_cast<nn::Module>(model),
                         {"dense", "idx0", "idx1", "idx2"});
  EXPECT_EQ(gm->graph().placeholders().size(), 4u);
  bool saw_cat = false;
  for (const fx::Node* n : gm->graph().nodes()) {
    if (n->target() == "cat") saw_cat = true;
  }
  EXPECT_TRUE(saw_cat);
  std::vector<Tensor> rt;
  for (const auto& v : inputs) rt.push_back(v.tensor());
  EXPECT_TRUE(allclose(gm->run(rt), eager));
}

TEST(Models, TransformerLayerPreservesShape) {
  auto model = nn::models::transformer_encoder_layer(16, 64);
  Tensor y = (*model)(Value(Tensor::randn({10, 16}))).tensor();
  EXPECT_EQ(y.sizes(), (Shape{10, 16}));
}

TEST(Module, ParamValueRecordsGetAttrUnderTrace) {
  class F : public nn::Module {
   public:
    F() : nn::Module("F") { register_parameter("scale", Tensor::full({1}, 3.f)); }
    Value forward(const std::vector<Value>& in) override {
      return in.at(0) * param_value("scale");
    }
  };
  auto model = std::make_shared<F>();
  auto gm = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  bool saw_get_attr = false;
  for (const fx::Node* n : gm->graph().nodes()) {
    if (n->op() == fx::Opcode::GetAttr) {
      saw_get_attr = true;
      EXPECT_EQ(n->target(), "scale");
    }
  }
  EXPECT_TRUE(saw_get_attr);
  Tensor x = Tensor::randn({4});
  EXPECT_TRUE(allclose(gm->run(x), ops::mul(x, 3.0)));
}

TEST(Module, DescribeListsHierarchy) {
  auto model = nn::models::mlp({4, 8, 2});
  const std::string desc = model->describe();
  EXPECT_NE(desc.find("MLP"), std::string::npos);
  EXPECT_NE(desc.find("body"), std::string::npos);
}

}  // namespace
}  // namespace fxcpp
