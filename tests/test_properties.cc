// Property-based tests: invariants checked over randomized programs and
// parameter sweeps — graph well-formedness under mutation, semantic
// preservation of cleanup passes, tape/interpreter agreement, fusion and
// quantization error bounds across random configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/functional.h"
#include "core/interpreter.h"
#include "core/tracer.h"
#include "passes/cleanup.h"
#include "passes/fuse_conv_bn.h"
#include "runtime/rng.h"
#include "tensor/ops.h"
#include "tensor/quantized.h"

namespace fxcpp {
namespace {

using fx::Argument;
using fx::Graph;
using fx::GraphModule;
using fx::Node;

// Build a random same-shape elementwise DAG with `n_ops` operations.
std::shared_ptr<GraphModule> random_program(rt::Rng& rng, int n_ops) {
  auto graph = std::make_unique<Graph>();
  std::vector<Node*> pool;
  pool.push_back(graph->placeholder("x"));
  static const char* kUnary[] = {"relu", "gelu", "neg", "sigmoid", "tanh"};
  static const char* kBinary[] = {"add", "mul", "sub"};
  for (int i = 0; i < n_ops; ++i) {
    Node* n = nullptr;
    if (rng.uniform() < 0.5) {
      Node* a = pool[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(pool.size()) - 1))];
      n = graph->call_function(kUnary[rng.randint(0, 4)], {Argument(a)});
    } else {
      Node* a = pool[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(pool.size()) - 1))];
      Node* b = pool[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(pool.size()) - 1))];
      n = graph->call_function(kBinary[rng.randint(0, 2)],
                               {Argument(a), Argument(b)});
    }
    pool.push_back(n);
  }
  graph->output(Argument(pool.back()));
  auto gm = std::make_shared<GraphModule>(nullptr, std::move(graph), "Random");
  gm->recompile();
  return gm;
}

class RandomProgram : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgram, LintHoldsAndTapeMatchesInterpreter) {
  rt::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  auto gm = random_program(rng, 20 + GetParam() % 17);
  EXPECT_NO_THROW(gm->graph().lint());
  Tensor x = Tensor::randn({3, 5});
  Tensor tape = gm->run(x);
  fx::Interpreter interp(*gm);
  EXPECT_TRUE(allclose(tape, fx::rt_tensor(interp.run(x)), 1e-5, 1e-6));
}

TEST_P(RandomProgram, DcePreservesSemantics) {
  rt::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 1);
  auto gm = random_program(rng, 30);
  Tensor x = Tensor::randn({2, 4});
  Tensor before = gm->run(x);
  passes::dead_code_elimination(*gm);
  EXPECT_NO_THROW(gm->graph().lint());
  EXPECT_TRUE(allclose(gm->run(x), before));
}

TEST_P(RandomProgram, CsePreservesSemantics) {
  rt::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  auto gm = random_program(rng, 30);
  Tensor x = Tensor::randn({2, 4});
  Tensor before = gm->run(x);
  const int removed = passes::common_subexpression_elimination(*gm);
  EXPECT_GE(removed, 0);
  EXPECT_NO_THROW(gm->graph().lint());
  EXPECT_TRUE(allclose(gm->run(x), before, 1e-5, 1e-6));
}

TEST_P(RandomProgram, RandomRewiringKeepsUseDefConsistent) {
  rt::Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 3);
  auto gm = random_program(rng, 25);
  Graph& g = gm->graph();
  // Random legal mutations: retarget unary ops and swap uses between nodes
  // defined earlier; use-def chains must stay consistent throughout.
  auto nodes = g.nodes();
  for (int round = 0; round < 10; ++round) {
    Node* victim = nodes[static_cast<std::size_t>(
        rng.randint(1, static_cast<std::int64_t>(nodes.size()) - 2))];
    if (victim->op() != fx::Opcode::CallFunction) continue;
    // Find a replacement defined before victim.
    Node* repl = nullptr;
    for (Node* cand : g.nodes()) {
      if (cand == victim) break;
      if (cand->op() != fx::Opcode::Output) repl = cand;
    }
    if (repl && rng.uniform() < 0.5) {
      victim->replace_all_uses_with(repl);
    }
    EXPECT_NO_THROW(g.lint());
  }
  g.eliminate_dead_code();
  EXPECT_NO_THROW(g.lint());
  gm->recompile();
  EXPECT_NO_THROW(gm->run(Tensor::randn({2, 2})));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram, ::testing::Range(0, 12));

// --- Conv-BN fusion sweep ---------------------------------------------------

struct FuseCase {
  std::int64_t c_in, c_out, k, stride, pad;
  bool conv_bias;
};

class FuseSweep : public ::testing::TestWithParam<FuseCase> {};

TEST_P(FuseSweep, FoldedWeightsMatchUnfused) {
  const FuseCase fc = GetParam();
  Tensor w = Tensor::randn({fc.c_out, fc.c_in, fc.k, fc.k});
  Tensor b = fc.conv_bias ? Tensor::randn({fc.c_out}) : Tensor();
  Tensor mean = Tensor::randn({fc.c_out});
  Tensor var = ops::add(Tensor::rand({fc.c_out}), 0.1);
  Tensor gamma = Tensor::randn({fc.c_out});
  Tensor beta = Tensor::randn({fc.c_out});
  auto fused =
      passes::fuse_conv_bn_weights(w, b, mean, var, gamma, beta, 1e-5);
  Tensor x = Tensor::randn({2, fc.c_in, 10, 10});
  Tensor ref = ops::batch_norm(
      ops::conv2d(x, w, b, {fc.stride, fc.stride}, {fc.pad, fc.pad}), gamma,
      beta, mean, var, 1e-5);
  Tensor got = ops::conv2d(x, fused.weight, fused.bias, {fc.stride, fc.stride},
                           {fc.pad, fc.pad});
  EXPECT_LT(max_abs_diff(got, ref), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FuseSweep,
    ::testing::Values(FuseCase{1, 1, 1, 1, 0, false},
                      FuseCase{3, 8, 3, 1, 1, false},
                      FuseCase{4, 4, 3, 2, 1, true},
                      FuseCase{8, 2, 5, 1, 2, true},
                      FuseCase{2, 6, 1, 1, 0, true},
                      FuseCase{5, 7, 3, 2, 0, false}));

// --- quantized linear error bound sweep -----------------------------------

struct QLinCase {
  std::int64_t rows, in_f, out_f;
};

class QuantLinearSweep : public ::testing::TestWithParam<QLinCase> {};

TEST_P(QuantLinearSweep, ErrorWithinQuantizationBudget) {
  const QLinCase qc = GetParam();
  Tensor x = Tensor::randn({qc.rows, qc.in_f});
  Tensor w = Tensor::randn({qc.out_f, qc.in_f});
  Tensor b = Tensor::randn({qc.out_f});
  Tensor ref = ops::linear(x, w, b);

  const QParams qx = ops::choose_qparams(-4.0, 4.0);
  Tensor x_q = ops::quantize_per_tensor(x, qx.scale, qx.zero_point);
  auto packed = ops::PackedLinearWeight::pack(w, b);
  double mn = 0, mx = 0;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    mn = std::min(mn, ref.at_flat(i));
    mx = std::max(mx, ref.at_flat(i));
  }
  const QParams qo = ops::choose_qparams(mn, mx);
  Tensor got = ops::dequantize(
      ops::quantized_linear(x_q, packed, qo.scale, qo.zero_point));
  // Robust sweep criterion: relative L2 error below 5% (int8 linear layers
  // routinely land near 1-2%), plus a per-element sanity cap of a few
  // output quantization steps relative to the output magnitude.
  double num = 0.0, den = 0.0;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    const double d = got.at_flat(i) - ref.at_flat(i);
    num += d * d;
    den += ref.at_flat(i) * ref.at_flat(i);
  }
  EXPECT_LT(std::sqrt(num / (den + 1e-12)), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuantLinearSweep,
                         ::testing::Values(QLinCase{1, 8, 8},
                                           QLinCase{1, 64, 32},
                                           QLinCase{4, 128, 16},
                                           QLinCase{16, 32, 64},
                                           QLinCase{2, 256, 8},
                                           QLinCase{8, 16, 128}));

// --- liveness property: register frees never break execution ---------------

TEST_P(RandomProgram, LivenessFreesAreSound) {
  rt::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 9);
  auto gm = random_program(rng, 40);
  // If a register were freed too early, the tape would crash or produce
  // wrong values; compare against the (free-less) interpreter.
  Tensor x = Tensor::randn({4, 4});
  fx::Interpreter interp(*gm);
  EXPECT_TRUE(allclose(gm->run(x), fx::rt_tensor(interp.run(x)), 1e-5, 1e-6));
}

}  // namespace
}  // namespace fxcpp
