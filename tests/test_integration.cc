// Cross-module integration: chains of transforms composed the way the
// paper's case studies compose them — capture, analyze, optimize, quantize,
// split, lower, re-capture — verifying semantics at every boundary.
#include <gtest/gtest.h>

#include "core/functional.h"
#include "tensor/ops.h"
#include "core/graph_io.h"
#include "core/subgraph_rewriter.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet.h"
#include "passes/cleanup.h"
#include "passes/decompose.h"
#include "passes/flops.h"
#include "passes/fuse_conv_bn.h"
#include "passes/shape_prop.h"
#include "passes/type_check.h"
#include "quant/quantize.h"
#include "trt/lower.h"

namespace fxcpp {
namespace {

using fx::Value;

// capture -> type check -> fuse -> prune -> lower -> execute.
TEST(Integration, DeploymentPipelineResNet) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  Tensor x = Tensor::randn({1, 3, 32, 32});
  Tensor reference = gm->run(x);

  // 1. Static validation before any example data exists.
  using passes::SymDim;
  auto tc = passes::type_check(
      *gm, {passes::SymShape{SymDim::dynamic(), SymDim::known(3),
                             SymDim::known(32), SymDim::known(32)}});
  ASSERT_TRUE(tc.ok()) << tc.to_string();

  // 2. Optimize: fold BNs, prune the dead modules, clean the graph.
  EXPECT_EQ(passes::fuse_conv_bn(*gm), 20);
  EXPECT_EQ(passes::delete_all_unused_submodules(*gm), 20);
  passes::dead_code_elimination(*gm);
  gm->recompile();
  EXPECT_LT(max_abs_diff(gm->run(x), reference), 1e-2);

  // 3. Lower to the backend; verify end-to-end.
  auto lowered = trt::lower_to_trtsim(gm, x);
  EXPECT_EQ(lowered.engine_segments, 1);
  EXPECT_LT(max_abs_diff(lowered.module->run(x), reference), 1e-2);
  // The engine found nothing left to fold (fusion already ran) but still
  // fused the activations.
  EXPECT_EQ(lowered.engine_stats.at(0).fused_batchnorms, 0);
  EXPECT_GT(lowered.engine_stats.at(0).fused_relus, 0);
}

// capture -> decompose -> CSE/DCE -> rewrite pattern -> execute.
TEST(Integration, TransformStackCompose) {
  auto gm = fx::symbolic_trace(std::function<Value(Value)>([](Value x) {
    Value a = fx::fn::relu(x);
    Value b = fx::fn::relu(x);  // duplicate for CSE
    return fx::fn::gelu(a + b);
  }));
  Tensor x = Tensor::randn({4, 4});
  Tensor reference = gm->run(x);

  EXPECT_EQ(passes::common_subexpression_elimination(*gm), 1);
  auto pattern = fx::symbolic_trace(
      std::function<Value(Value)>([](Value v) { return fx::fn::gelu(v); }));
  auto replacement = fx::symbolic_trace(
      std::function<Value(Value)>([](Value v) { return fx::fn::relu(v); }));
  EXPECT_EQ(fx::replace_pattern(*gm, pattern->graph(), replacement->graph()),
            1);
  // gelu(a+b) became relu(a+b): recompute the expectation.
  Tensor expect = ops::relu(ops::add(ops::relu(x), ops::relu(x)));
  EXPECT_TRUE(allclose(gm->run(x), expect));
}

// quantize -> serialize -> parse -> rebind -> execute.
TEST(Integration, QuantizedModelSurvivesSerialization) {
  auto model = nn::models::mlp({16, 32, 8}, "relu");
  std::vector<Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(Tensor::randn({4, 16}));
  auto q = quant::quantize_model(model, calib);
  Tensor x = Tensor::randn({4, 16});
  Tensor expected = q->run(x);

  const std::string text = fx::serialize_graph(q->graph());
  auto parsed = fx::parse_graph(text);
  fx::GraphModule reloaded(q->root(), std::move(parsed), "ReloadedQuant");
  reloaded.recompile();
  EXPECT_TRUE(allclose(reloaded.run(x), expected));
}

// trace -> shape prop -> cost model before/after fusion (the §6.3 hardware
// simulation workflow steering the §6.2.2 optimization).
TEST(Integration, CostModelSeesFusionWin) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  Tensor x = Tensor::randn({1, 3, 32, 32});
  passes::shape_prop(*gm, {x});
  const auto before = passes::estimate_cost(*gm);

  passes::fuse_conv_bn(*gm);
  passes::shape_prop(*gm, {x});
  const auto after = passes::estimate_cost(*gm);

  // BN flops and their activation traffic are gone.
  EXPECT_LT(after.total_flops, before.total_flops);
  EXPECT_LT(after.total_bytes, before.total_bytes);
  // On a bandwidth-limited device model the predicted runtime drops too.
  EXPECT_LT(after.estimate_seconds(1e12, 10e9),
            before.estimate_seconds(1e12, 10e9));
}

// decompose -> engine lowering falls back gracefully (sqrt isn't in the
// support table) while the un-decomposed model compiles fully.
TEST(Integration, DecomposedGraphAutoSplits) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  Tensor x = Tensor::randn({1, 3, 32, 32});
  auto dec = passes::decompose_batch_norm(*gm);
  auto lowered = trt::lower_to_trtsim(dec, x);
  // Decomposition introduced unsupported primitives: must split, not fail.
  EXPECT_GT(lowered.eager_segments + lowered.engine_segments, 1);
  EXPECT_LT(max_abs_diff(lowered.module->run(x), gm->run(x)), 1e-2);
}

}  // namespace
}  // namespace fxcpp
