// Verifier rule coverage: one well-formed (positive) and one defective
// (negative) case per rule, multi-diagnostic collection on a graph seeded
// with several simultaneous defects, the lint()/Verifier agreement contract,
// and error paths of the resolution machinery the rules lean on
// (merge_kwargs unknown kwarg, OpRegistry::at missing target).
#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "core/functional.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "passes/shape_prop.h"

namespace fxcpp {
namespace {

using analysis::Report;
using analysis::Severity;
using analysis::Verifier;
using fx::Argument;
using fx::Graph;
using fx::Node;
using fx::Value;

// A minimal well-formed graph: relu(x) -> output.
std::unique_ptr<Graph> clean_graph() {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* r = g->call_function("relu", {Argument(x)});
  g->output(Argument(r));
  return g;
}

TEST(Verifier, CleanGraphHasNoDiagnostics) {
  auto g = clean_graph();
  const Report rep = analysis::verify(*g);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.diagnostics.empty()) << rep.to_string();
}

TEST(Verifier, DefaultRegistryHasAtLeastTenRules) {
  EXPECT_GE(Verifier::default_rules().size(), 10u);
}

// --- structure rules -------------------------------------------------------

TEST(Verifier, PlaceholdersFirst) {
  auto g = clean_graph();
  Node* late = g->placeholder("late");
  g->move_before(late, nullptr);  // after the output node
  const Report rep = analysis::verify(*g);
  EXPECT_TRUE(rep.has("structure.placeholders-first"));
  EXPECT_TRUE(rep.has("structure.output-last"));  // also after output
  EXPECT_FALSE(
      analysis::verify(*clean_graph()).has("structure.placeholders-first"));
}

TEST(Verifier, OutputMustBeLast) {
  auto g = clean_graph();
  Node* extra = g->call_function("relu", {Argument(g->find("x"))});
  (void)extra;  // created after output
  const Report rep = analysis::verify(*g);
  EXPECT_TRUE(rep.has("structure.output-last"));
  EXPECT_FALSE(analysis::verify(*clean_graph()).has("structure.output-last"));
}

TEST(Verifier, MissingOutputIsAWarning) {
  Graph g;
  Node* x = g.placeholder("x");
  g.call_function("relu", {Argument(x)});
  const Report rep = analysis::verify(g);
  EXPECT_TRUE(rep.has("structure.missing-output"));
  EXPECT_TRUE(rep.ok());  // warning, not error
  EXPECT_FALSE(analysis::verify(*clean_graph()).has("structure.missing-output"));
}

TEST(Verifier, UseBeforeDef) {
  auto g = clean_graph();
  Node* r = g->find("relu");
  g->move_before(r, g->find("x"));  // relu now precedes its input
  const Report rep = analysis::verify(*g);
  EXPECT_TRUE(rep.has("structure.use-before-def"));
  EXPECT_FALSE(rep.has("structure.stale-use-def"));
}

TEST(Verifier, UnusedPlaceholder) {
  auto g = clean_graph();
  g->set_insert_point_before(g->find("relu"));
  g->placeholder("ignored");
  // Restore placeholder ordering: insert before first compute node is fine.
  const Report rep = analysis::verify(*g);
  EXPECT_TRUE(rep.has("structure.unused-placeholder"));
  EXPECT_EQ(rep.count(Severity::Error), 0) << rep.to_string();
  EXPECT_FALSE(analysis::verify(*clean_graph())
                   .has("structure.unused-placeholder"));
}

TEST(Verifier, DeadCode) {
  auto g = clean_graph();
  {
    Graph::InsertScope scope(*g, g->output_node());
    g->call_method("neg", {Argument(g->find("x"))});
  }
  const Report rep = analysis::verify(*g);
  EXPECT_TRUE(rep.has("structure.dead-code"));
  EXPECT_TRUE(rep.ok());  // info severity
  EXPECT_FALSE(analysis::verify(*clean_graph()).has("structure.dead-code"));
}

TEST(Verifier, DuplicateNames) {
  auto g = clean_graph();
  // Graph::unique_name makes collisions impossible at creation time; the raw
  // torch.fx-style rename is the one path that can introduce them.
  g->find("relu")->set_name("x");
  const Report rep = analysis::verify(*g);
  EXPECT_TRUE(rep.has("structure.duplicate-name"));
  EXPECT_FALSE(rep.ok());
  EXPECT_FALSE(analysis::verify(*clean_graph())
                   .has("structure.duplicate-name"));
}

TEST(Verifier, StaleUseDefChains) {
  // Every public mutation primitive (set_args, replace_all_uses_with,
  // erase_node, clone) maintains use-def chains, so this rule defends
  // against future internal bugs; fabricate both corruption directions by
  // reaching past the const accessor.
  auto g = clean_graph();
  Node* x = g->find("x");
  Node* r = g->find("relu");
  // Direction 1: relu lists x as input, but x no longer records the user.
  const_cast<std::set<Node*>&>(x->users()).erase(r);
  Report rep = analysis::verify(*g);
  EXPECT_TRUE(rep.has("structure.stale-use-def"));
  EXPECT_FALSE(rep.ok());

  // Direction 2: x records a user (the output node, which only references
  // relu) that does not actually reference it.
  auto g2 = clean_graph();
  Node* x2 = g2->find("x");
  const_cast<std::set<Node*>&>(x2->users()).insert(g2->output_node());
  rep = analysis::verify(*g2);
  EXPECT_TRUE(rep.has("structure.stale-use-def"));

  EXPECT_FALSE(analysis::verify(*clean_graph())
                   .has("structure.stale-use-def"));
}

// --- resolution rules ------------------------------------------------------

TEST(Verifier, UnresolvableFunctionTarget) {
  auto g = clean_graph();
  g->find("relu")->set_target("not_a_real_op");
  const Report rep = analysis::verify(*g);
  EXPECT_TRUE(rep.has("resolve.function-target"));
  EXPECT_FALSE(rep.ok());
  EXPECT_FALSE(analysis::verify(*clean_graph()).has("resolve.function-target"));
}

TEST(Verifier, UnresolvableMethodTarget) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* m = g.call_method("frobnicate", {Argument(x)});
  g.output(Argument(m));
  const Report rep = analysis::verify(g);
  EXPECT_TRUE(rep.has("resolve.method-target"));

  Graph ok;
  Node* y = ok.placeholder("x");
  ok.output(Argument(ok.call_method("neg", {Argument(y)})));
  EXPECT_FALSE(analysis::verify(ok).has("resolve.method-target"));
}

TEST(Verifier, UnknownKwargName) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* r = g.call_function("relu", {Argument(x)},
                            {{"alpha", Argument(0.5)}});
  g.output(Argument(r));
  const Report rep = analysis::verify(g);
  ASSERT_TRUE(rep.has("resolve.kwargs"));
  EXPECT_FALSE(rep.ok());

  Graph ok;
  Node* y = ok.placeholder("x");
  Node* f = ok.call_function("flatten", {Argument(y)},
                             {{"start_dim", Argument(1)}});
  ok.output(Argument(f));
  EXPECT_FALSE(analysis::verify(ok).has("resolve.kwargs"));
}

TEST(Verifier, TooManyPositionalArgsIsAWarning) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* r = g.call_function(
      "relu", {Argument(x), Argument(1), Argument(2)});  // relu takes 1
  g.output(Argument(r));
  const Report rep = analysis::verify(g);
  EXPECT_TRUE(rep.has("resolve.kwargs"));
  EXPECT_EQ(rep.count(Severity::Error), 0) << rep.to_string();
}

TEST(Verifier, ModuleAndAttrPathsResolveAgainstHierarchy) {
  auto model = nn::models::mlp({4, 8, 2});
  auto gm = fx::symbolic_trace(model);
  EXPECT_FALSE(analysis::verify(*gm).has("resolve.module-path"));

  // Retarget a call_module at a path that does not exist.
  for (Node* n : gm->graph().nodes()) {
    if (n->op() == fx::Opcode::CallModule) {
      n->set_target("body.99");
      break;
    }
  }
  const Report rep = analysis::verify(*gm);
  EXPECT_TRUE(rep.has("resolve.module-path"));
  EXPECT_FALSE(rep.ok());
}

TEST(Verifier, GetAttrPathMustResolve) {
  auto model = nn::models::mlp({4, 8, 2});
  auto gm = fx::symbolic_trace(model);
  fx::Graph& g = gm->graph();
  {
    Graph::InsertScope scope(g, g.output_node());
    Node* a = g.get_attr("no.such.param");
    // Keep it alive so dead-code isn't the only finding.
    Node* out_src = g.output_node()->args().at(0).node();
    Node* add = g.call_function("add", {Argument(out_src), Argument(a)});
    g.output_node()->set_args({Argument(add)});
  }
  const Report rep = analysis::verify(*gm);
  EXPECT_TRUE(rep.has("resolve.attr-path"));

  auto clean = fx::symbolic_trace(nn::models::mlp({4, 8, 2}));
  EXPECT_FALSE(analysis::verify(*clean).has("resolve.attr-path"));
}

// --- metadata rules --------------------------------------------------------

TEST(Verifier, PartialShapeDtypeMetaPair) {
  auto g = clean_graph();
  g->find("relu")->set_meta("shape", Shape{2, 2});  // no dtype
  const Report rep = analysis::verify(*g);
  EXPECT_TRUE(rep.has("meta.pair"));
  EXPECT_TRUE(rep.ok());  // warning severity

  auto ok = clean_graph();
  ok->find("relu")->set_meta("shape", Shape{2, 2});
  ok->find("relu")->set_meta("dtype", DType::Float32);
  EXPECT_FALSE(analysis::verify(*ok).has("meta.pair"));
}

TEST(Verifier, StaleShapeMetaCaughtByDataflowRecheck) {
  auto gm = fx::symbolic_trace(nn::models::mlp({4, 8, 2}));
  passes::shape_prop(*gm, {Tensor::randn({3, 4})});
  EXPECT_FALSE(analysis::verify(*gm).has("meta.stale"));

  // Forge a stale annotation, as a buggy transform would leave behind.
  for (Node* n : gm->graph().nodes()) {
    if (n->op() == fx::Opcode::CallModule) {
      n->set_meta("shape", Shape{7, 7, 7});
      break;
    }
  }
  const Report rep = analysis::verify(*gm);
  EXPECT_TRUE(rep.has("meta.stale"));
  bool found_warning = false;
  for (const auto& d : rep.diagnostics) {
    if (d.rule == "meta.stale" && d.severity == Severity::Warning) {
      found_warning = true;
    }
  }
  EXPECT_TRUE(found_warning) << rep.to_string();
}

TEST(Verifier, GradualTypeConflictFromAnnotatedPlaceholders) {
  auto gm = fx::symbolic_trace(nn::models::mlp({4, 8, 2}));
  // Annotate the input with a shape whose feature dim contradicts Linear's
  // in_features. The type-check rule must flag the known-vs-known conflict.
  gm->graph().placeholders().at(0)->set_meta("shape", Shape{3, 5});
  gm->graph().placeholders().at(0)->set_meta("dtype", DType::Float32);
  const Report rep = analysis::verify(*gm);
  EXPECT_TRUE(rep.has("meta.type-conflict")) << rep.to_string();

  auto ok = fx::symbolic_trace(nn::models::mlp({4, 8, 2}));
  ok->graph().placeholders().at(0)->set_meta("shape", Shape{3, 4});
  ok->graph().placeholders().at(0)->set_meta("dtype", DType::Float32);
  EXPECT_FALSE(analysis::verify(*ok).has("meta.type-conflict"));
}

// --- multi-diagnostic collection ------------------------------------------

TEST(Verifier, CollectsAllDefectsInOnePass) {
  // >= 3 simultaneous defects; the report must contain all of them instead
  // of stopping at the first like the throwing lint() does.
  Graph g;
  Node* x = g.placeholder("x");
  g.placeholder("unused_input");                                   // W
  Node* bogus = g.call_function("not_an_op", {Argument(x)});       // E
  g.call_function("relu", {Argument(x)}, {{"bad", Argument(1)}});  // E (+dead)
  g.call_method("neg", {Argument(x)});                             // dead: I
  g.output(Argument(bogus));

  const Report rep = analysis::verify(g);
  EXPECT_TRUE(rep.has("resolve.function-target"));
  EXPECT_TRUE(rep.has("resolve.kwargs"));
  EXPECT_TRUE(rep.has("structure.unused-placeholder"));
  EXPECT_TRUE(rep.has("structure.dead-code"));
  EXPECT_GE(rep.fired_rules().size(), 4u) << rep.to_string();
  EXPECT_GE(rep.count(Severity::Error), 2);
  EXPECT_FALSE(rep.ok());

  // The machine-readable form carries the same findings.
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"resolve.function-target\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": "), std::string::npos);
}

TEST(Verifier, CustomRulesExtendTheRegistry) {
  Verifier v(false);
  EXPECT_TRUE(v.rules().empty());
  v.add_rule({"custom.no-neg", Severity::Warning, "bans neg",
              [](const analysis::RuleContext& ctx,
                 std::vector<analysis::Diagnostic>& out) {
                for (const Node* n : ctx.graph.nodes()) {
                  if (n->target() == "neg") {
                    analysis::emit(out, "custom.no-neg", Severity::Warning, n,
                                   n->name(), "neg is banned here");
                  }
                }
              }});
  Graph g;
  Node* x = g.placeholder("x");
  g.output(Argument(g.call_method("neg", {Argument(x)})));
  EXPECT_TRUE(v.verify(g).has("custom.no-neg"));

  Verifier defaults;
  defaults.disable("structure.dead-code");
  Graph g2;
  Node* y = g2.placeholder("x");
  g2.call_method("neg", {Argument(y)});
  g2.output(Argument(y));
  EXPECT_FALSE(defaults.verify(g2).has("structure.dead-code"));
}

// --- schedule rule ---------------------------------------------------------

TEST(Verifier, ScheduleCoversCompiledTape) {
  auto gm = fx::symbolic_trace(nn::models::mlp({4, 8, 2}));
  gm->recompile();
  const Report rep = analysis::verify(*gm);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_FALSE(rep.has("schedule.coverage"));
}

TEST(Verifier, ScheduleRuleSkipsUncompiledModules) {
  // A GraphModule constructed directly (no recompile yet) has no tape; the
  // rule must skip, not throw.
  fx::GraphModule gm(nullptr, clean_graph(), "Raw");
  ASSERT_FALSE(gm.compiled());
  const Report rep = analysis::verify(gm);
  EXPECT_FALSE(rep.has("schedule.coverage"));
}

// --- lint() agreement ------------------------------------------------------

TEST(Verifier, LintThrowsListingAllStructuralErrors) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* a = g.call_function("relu", {Argument(x)});
  Node* b = g.call_function("neg", {Argument(a)});
  g.output(Argument(b));
  // Two independent structural defects: b precedes its input, and a
  // placeholder sits at the end of the list.
  g.move_before(b, a);
  Node* late = g.placeholder("late");
  g.move_before(late, nullptr);
  try {
    g.lint();
    FAIL() << "lint() should have thrown";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("use-before-def"), std::string::npos) << msg;
    EXPECT_NE(msg.find("placeholders-first"), std::string::npos) << msg;
  }
  // Verifier agrees on exactly the same structural facts.
  const Report rep = analysis::verify(g);
  EXPECT_TRUE(rep.has("structure.use-before-def"));
  EXPECT_TRUE(rep.has("structure.placeholders-first"));
}

TEST(Verifier, LintAndVerifierAgreeOnCleanGraphs) {
  auto gm = fx::symbolic_trace(nn::models::mlp({4, 8, 2}));
  EXPECT_NO_THROW(gm->graph().lint());
  EXPECT_TRUE(analysis::verify(*gm).ok());
}

// --- error paths of the underlying resolution machinery --------------------

TEST(OpRegistry, AtThrowsNamingTheMissingTarget) {
  fx::fn::ensure_registered();
  try {
    fx::OpRegistry::functions().at("no_such_operator");
    FAIL() << "at() should have thrown";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_operator"),
              std::string::npos);
  }
  EXPECT_EQ(fx::OpRegistry::functions().find("no_such_operator"), nullptr);
  EXPECT_NO_THROW(fx::OpRegistry::functions().at("relu"));
}

TEST(OpRegistry, MergeKwargsRejectsUnknownName) {
  fx::fn::ensure_registered();
  const fx::OpInfo& relu = fx::OpRegistry::functions().at("relu");
  try {
    fx::merge_kwargs(relu, {}, {{"alpha", fx::RtValue(1.0)}});
    FAIL() << "merge_kwargs should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("alpha"), std::string::npos);
    EXPECT_NE(msg.find("relu"), std::string::npos);
  }
  // Known kwargs merge into their positional slots.
  const fx::OpInfo& flat = fx::OpRegistry::functions().at("flatten");
  auto merged = fx::merge_kwargs(flat, {fx::RtValue(std::int64_t{0})},
                                 {{"start_dim", fx::RtValue(std::int64_t{1})}});
  ASSERT_EQ(merged.size(), flat.param_names.size());
  EXPECT_EQ(std::get<std::int64_t>(merged[1]), 1);
}

}  // namespace
}  // namespace fxcpp
