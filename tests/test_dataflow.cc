// Dataflow framework + static race checker tests: constness lattice,
// alias-summary/planner agreement, liveness vs the core last_use_index,
// reachability/dead-code, the stable --analyze JSON dump, HappensBefore
// closure, and the schedule.race / plan.war-ordering checks — clean on every
// schedule the repo builds, and firing on deliberately corrupted ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/race_check.h"
#include "analysis/verifier.h"
#include "core/codegen.h"
#include "core/functional.h"
#include "core/parallel_executor.h"
#include "core/tracer.h"
#include "passes/memory_planner.h"
#include "passes/shape_prop.h"
#include "runtime/rng.h"

namespace fxcpp {
namespace {

using fx::Argument;
using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::Value;

constexpr std::int64_t kSide = 4;

Tensor random_tensor(rt::Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(kSide * kSide));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return Tensor::from_vector(v, {kSide, kSide});
}

// Seeded random DAG (the PR 2 differential-fuzz corpus shape).
struct FuzzCase {
  std::shared_ptr<GraphModule> gm;
  std::vector<Tensor> inputs;
};

FuzzCase random_dag(std::uint64_t seed) {
  rt::Rng rng(seed);
  auto g = std::make_unique<Graph>();
  std::vector<Node*> pool;

  const int n_inputs = 1 + static_cast<int>(rng.randint(0, 1));
  for (int i = 0; i < n_inputs; ++i) {
    pool.push_back(g->placeholder("x" + std::to_string(i)));
  }

  static const char* kBinary[] = {"add", "sub", "mul"};
  static const char* kUnary[] = {"relu", "neg", "sigmoid", "tanh", "gelu"};

  const int n_ops = 5 + static_cast<int>(rng.randint(0, 20));
  for (int i = 0; i < n_ops; ++i) {
    auto pick = [&]() -> Node* {
      return pool[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(pool.size()) - 1))];
    };
    Node* n = nullptr;
    switch (rng.randint(0, 3)) {
      case 0:
        n = g->call_function(kBinary[rng.randint(0, 2)], {pick(), pick()});
        break;
      case 1:
        n = g->call_function(kUnary[rng.randint(0, 4)], {pick()});
        break;
      case 2:
        n = g->call_function(kBinary[rng.randint(0, 2)],
                             {pick(), Argument(rng.uniform(-2.0, 2.0))});
        break;
      default:
        n = g->call_function("matmul", {pick(), pick()});
        break;
    }
    pool.push_back(n);
  }

  std::vector<Node*> sinks;
  for (Node* n : pool) {
    if (n->op() != fx::Opcode::Placeholder && n->users().empty()) {
      sinks.push_back(n);
    }
  }
  Node* acc = sinks.empty() ? pool.back() : sinks[0];
  for (std::size_t i = 1; i < sinks.size(); ++i) {
    acc = g->call_function("add", {acc, sinks[i]});
  }
  g->output(acc);

  FuzzCase fc;
  fc.gm = std::make_shared<GraphModule>(nullptr, std::move(g), "Fuzz");
  fc.gm->recompile();
  for (int i = 0; i < n_inputs; ++i) fc.inputs.push_back(random_tensor(rng));
  return fc;
}

int rules_fired(const std::vector<analysis::Diagnostic>& ds,
                const std::string& rule) {
  return static_cast<int>(
      std::count_if(ds.begin(), ds.end(), [&](const analysis::Diagnostic& d) {
        return d.rule == rule;
      }));
}

// --------------------------------------------------------------------------
// Constness
// --------------------------------------------------------------------------

class ParamExprModel : public nn::Module {
 public:
  ParamExprModel() : nn::Module("ParamExprModel") {
    register_parameter("w1", Tensor::randn({4}));
    register_parameter("w2", Tensor::randn({4}));
  }
  Value forward(const std::vector<Value>& in) override {
    return in.at(0) + fx::fn::relu(param_value("w1") + param_value("w2"));
  }
};

TEST(Constness, ParamConesAreConstPlaceholdersTaint) {
  auto gm = fx::symbolic_trace(
      std::static_pointer_cast<nn::Module>(std::make_shared<ParamExprModel>()));
  const auto is_const = analysis::constant_nodes(gm->graph(), gm.get());

  int const_attrs = 0, const_calls = 0;
  for (const Node* n : gm->graph().nodes()) {
    const bool c = is_const.at(n);
    switch (n->op()) {
      case fx::Opcode::Placeholder:
      case fx::Opcode::Output:
        EXPECT_FALSE(c) << n->name();
        break;
      case fx::Opcode::GetAttr:
        EXPECT_TRUE(c) << n->name();
        ++const_attrs;
        break;
      default:
        // w1 + w2 and relu(...) are const; x + ... is tainted by x.
        if (c) ++const_calls;
        break;
    }
  }
  EXPECT_EQ(const_attrs, 2);
  EXPECT_EQ(const_calls, 2);  // the inner add and the relu
}

TEST(Constness, ImpureAndUnregisteredOpsAreNonConst) {
  auto g = std::make_unique<Graph>();
  Node* w = g->get_attr("w");
  // dropout is a registered op annotated impure (RNG); a made-up target has
  // no OpInfo at all. Neither may be treated as foldable.
  Node* drop = g->call_function(
      "dropout", {Argument(w), Argument(0.5), Argument(true)});
  Node* mystery = g->call_function("definitely_not_an_op", {Argument(w)});
  g->output(g->call_function("add", {drop, mystery}));

  const auto is_const = analysis::constant_nodes(*g, nullptr);
  EXPECT_TRUE(is_const.at(w));
  EXPECT_FALSE(is_const.at(drop));
  EXPECT_FALSE(is_const.at(mystery));
}

TEST(Constness, UnresolvableAttrIsNonConstUnderModule) {
  auto g = std::make_unique<Graph>();
  Node* w = g->get_attr("no_such_param");
  g->placeholder("x");
  g->output(w);
  GraphModule gm(nullptr, std::move(g), "Bad");
  // With a module in hand the target must actually resolve to be bakeable.
  const auto is_const = analysis::constant_nodes(gm.graph(), &gm);
  for (const auto& [n, c] : is_const) EXPECT_FALSE(c) << n->name();
}

TEST(Constness, FixpointConvergesInTwoRoundsOnDag) {
  FuzzCase fc = random_dag(7);
  analysis::ConstnessAnalysis a(fc.gm.get());
  a.run(fc.gm->graph());
  EXPECT_TRUE(a.converged());
  EXPECT_EQ(a.iterations(), 2);  // one changing round + one confirming round
}

// --------------------------------------------------------------------------
// Alias summary — must agree with the planner it was extracted from
// --------------------------------------------------------------------------

TEST(AliasSummary, MatchesPlannerIntervals) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    FuzzCase fc = random_dag(seed);
    passes::shape_prop(*fc.gm, fc.inputs);
    const auto plan = passes::plan_tape(*fc.gm);
    const analysis::AliasSummary s =
        analysis::alias_summary(fc.gm->graph(), fc.gm.get());

    ASSERT_EQ(plan->intervals.size(), s.order.size()) << "seed " << seed;
    for (std::size_t i = 0; i < s.order.size(); ++i) {
      const auto& iv = plan->intervals[i];
      EXPECT_EQ(iv.def, static_cast<int>(i));
      EXPECT_EQ(iv.last_use, s.last_use[i]) << "seed " << seed << " #" << i;
      EXPECT_EQ(iv.readers, s.readers[i]) << "seed " << seed << " #" << i;
      // Planner candidacy is exactly "fresh and not escaped" (plus meta).
      if (iv.planned && !iv.in_place) {
        EXPECT_TRUE(s.fresh[i]) << "seed " << seed << " #" << i;
        EXPECT_FALSE(s.escaped[i]) << "seed " << seed << " #" << i;
      }
      if (s.escaped[i]) {
        EXPECT_FALSE(iv.planned);
      }
    }
  }
}

TEST(AliasSummary, OutputReadersEscape) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* m = g->call_function("matmul", {x, x});
  Node* r = g->call_function("relu", {m});
  g->output(r);
  GraphModule gm(nullptr, std::move(g), "Esc");
  gm.recompile();

  const analysis::AliasSummary s = analysis::alias_summary(gm.graph(), &gm);
  ASSERT_EQ(s.order.size(), 3u);  // matmul, relu, output
  EXPECT_TRUE(s.fresh[0]);
  EXPECT_FALSE(s.escaped[0]);
  EXPECT_TRUE(s.escaped[1]);  // relu feeds Output
  EXPECT_TRUE(s.direct_fresh(0));
  EXPECT_EQ(s.last_use[0], 1);
}

// --------------------------------------------------------------------------
// Liveness / reachability
// --------------------------------------------------------------------------

TEST(Liveness, MatchesCoreLastUseIndex) {
  for (std::uint64_t seed = 20; seed < 28; ++seed) {
    FuzzCase fc = random_dag(seed);
    const Graph& g = fc.gm->graph();
    analysis::LivenessAnalysis live(g);
    const auto facts = live.run(g);
    const auto core = fx::last_use_index(g.nodes());
    for (const Node* n : g.nodes()) {
      if (n->op() == fx::Opcode::Output) continue;
      const auto it = core.find(n);
      const int expect = it == core.end() ? -1 : it->second;
      EXPECT_EQ(facts.at(n).last_use, expect)
          << "seed " << seed << " node " << n->name();
    }
    EXPECT_TRUE(live.converged());
  }
}

TEST(Reachability, DeadNodesMatchEliminateDeadCode) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* live1 = g->call_function("relu", {x});
  Node* dead1 = g->call_function("neg", {x});          // unused
  g->call_function("tanh", {dead1});                   // dead chain
  g->output(live1);

  const auto dead = analysis::dead_nodes(*g);
  EXPECT_EQ(dead.size(), 2u);
  const int erased = g->eliminate_dead_code();
  EXPECT_EQ(erased, 2);
  EXPECT_TRUE(analysis::dead_nodes(*g).empty());
}

// --------------------------------------------------------------------------
// analyze_graph — the fxlint --analyze payload
// --------------------------------------------------------------------------

TEST(AnalyzeGraph, JsonIsStableAndComplete) {
  auto make = [] {
    auto g = std::make_unique<Graph>();
    Node* x = g->placeholder("x");
    g->placeholder("unused");
    Node* m = g->call_function("matmul", {x, x});
    g->call_method("neg", {Argument(x)});  // dead
    g->output(m);
    auto gm = std::make_unique<GraphModule>(nullptr, std::move(g), "J");
    return gm;
  };
  // Deterministic: two independent builds dump byte-identical JSON — this is
  // exactly what `fxlint --analyze --json` prints, so downstream tooling can
  // diff it.
  const std::string a = analysis::analyze_graph(make()->graph()).to_json();
  const std::string b = analysis::analyze_graph(make()->graph()).to_json();
  EXPECT_EQ(a, b);

  EXPECT_NE(a.find("\"name\": \"x\""), std::string::npos);
  EXPECT_NE(a.find("\"opcode\": \"placeholder\""), std::string::npos);
  EXPECT_NE(a.find("\"dead\": true"), std::string::npos);     // the neg
  EXPECT_NE(a.find("\"escapes\": true"), std::string::npos);  // the matmul
  EXPECT_NE(a.find("\"external\": true"), std::string::npos);
  EXPECT_NE(a.find("\"iterations\""), std::string::npos);

  const std::string text = analysis::analyze_graph(make()->graph()).to_string();
  EXPECT_NE(text.find("matmul"), std::string::npos);
}

// --------------------------------------------------------------------------
// HappensBefore
// --------------------------------------------------------------------------

TEST(HappensBefore, TransitiveClosureOverDiamond) {
  //   0 -> 1 -> 3
  //   0 -> 2 -> 3      4 isolated
  const std::vector<std::vector<int>> succs{{1, 2}, {3}, {3}, {}, {}};
  analysis::HappensBefore hb(5, succs);
  EXPECT_FALSE(hb.cyclic());
  EXPECT_TRUE(hb.ordered(0, 3));   // transitive
  EXPECT_TRUE(hb.ordered(0, 1));
  EXPECT_TRUE(hb.ordered(2, 2));   // reflexive by convention
  EXPECT_FALSE(hb.ordered(1, 2));  // parallel branches
  EXPECT_FALSE(hb.ordered(3, 0));  // no backwards order
  EXPECT_FALSE(hb.ordered(0, 4));
}

TEST(HappensBefore, DetectsCycle) {
  const std::vector<std::vector<int>> succs{{1}, {2}, {0}};
  analysis::HappensBefore hb(3, succs);
  EXPECT_TRUE(hb.cyclic());
  EXPECT_FALSE(hb.ordered(0, 1));  // no order exists in a cyclic "schedule"
}

// --------------------------------------------------------------------------
// schedule.race — clean on real schedules, loud on corrupted ones
// --------------------------------------------------------------------------

TEST(ScheduleRace, CleanOnEveryBuiltSchedule) {
  for (std::uint64_t seed = 40; seed < 52; ++seed) {
    FuzzCase fc = random_dag(seed);
    const fx::CompiledGraph& cg = fc.gm->compiled_graph();
    std::vector<analysis::Diagnostic> ds;
    analysis::check_schedule_race(cg, fx::build_schedule(cg), ds);
    EXPECT_TRUE(ds.empty()) << "seed " << seed << ": " << ds[0].to_string();

    passes::shape_prop(*fc.gm, fc.inputs);
    passes::compile_planned(*fc.gm, fc.inputs);
    const fx::CompiledGraph& pcg = fc.gm->compiled_graph();
    std::vector<analysis::Diagnostic> pds;
    const fx::Schedule planned =
        fx::build_planned_schedule(pcg, *fc.gm->plan());
    analysis::check_schedule_race(pcg, planned, pds);
    analysis::check_plan_war_ordering(pcg, planned, *fc.gm->plan(), pds);
    EXPECT_TRUE(pds.empty()) << "seed " << seed << ": " << pds[0].to_string();
  }
}

// Fixed chain x -> matmul -> relu -> output: one completion edge carries the
// whole order, so corruptions are surgical.
FuzzCase chain_case() {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* m = g->call_function("matmul", {x, x});
  Node* r = g->call_function("relu", {m});
  g->output(r);
  FuzzCase fc;
  fc.gm = std::make_shared<GraphModule>(nullptr, std::move(g), "Chain");
  fc.gm->recompile();
  rt::Rng rng(11);
  fc.inputs.push_back(random_tensor(rng));
  return fc;
}

TEST(ScheduleRace, CatchesRemovedCompletionEdge) {
  FuzzCase fc = chain_case();
  const fx::CompiledGraph& cg = fc.gm->compiled_graph();
  fx::Schedule sched = fx::build_schedule(cg);

  // Drop the matmul -> relu edge: relu may now read the matmul register
  // before it is written.
  ASSERT_FALSE(sched.succs[0].empty());
  sched.succs[0].clear();
  sched.dep_count[1] = 0;
  sched.initial_ready.push_back(1);

  std::vector<analysis::Diagnostic> ds;
  analysis::check_schedule_race(cg, sched, ds);
  EXPECT_GT(rules_fired(ds, "schedule.race"), 0);
}

TEST(ScheduleRace, CatchesReadCountUndercount) {
  FuzzCase fc = chain_case();
  const fx::CompiledGraph& cg = fc.gm->compiled_graph();
  fx::Schedule sched = fx::build_schedule(cg);

  // Understate one register's reader count: the ref-counted free fires while
  // a reader is still pending.
  bool corrupted = false;
  for (auto& c : sched.reg_reads) {
    if (c > 0) {
      --c;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);

  std::vector<analysis::Diagnostic> ds;
  analysis::check_schedule_race(cg, sched, ds);
  EXPECT_GT(rules_fired(ds, "schedule.race"), 0);
}

TEST(ScheduleRace, CatchesCyclicEdgeRelation) {
  FuzzCase fc = chain_case();
  const fx::CompiledGraph& cg = fc.gm->compiled_graph();
  fx::Schedule sched = fx::build_schedule(cg);
  sched.succs[1].push_back(0);  // relu -> matmul back edge

  std::vector<analysis::Diagnostic> ds;
  analysis::check_schedule_race(cg, sched, ds);
  EXPECT_GT(rules_fired(ds, "schedule.race"), 0);
}

// --------------------------------------------------------------------------
// plan.war-ordering — the anti-dependency obligation of arena reuse
// --------------------------------------------------------------------------

// x; a = relu(x); b = matmul(a, a); c = relu(x); out = add(b, c).
// `a` dies at `b`, so first-fit hands its arena slot to `c` — legal in tape
// order, a write-after-read race under any schedule that does not order
// c's definition after b (a's reader).
TEST(PlanWarOrdering, SlotReuseNeedsWarEdges) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* a = g->call_function("relu", {x});
  Node* b = g->call_function("matmul", {a, a});
  Node* c = g->call_function("relu", {x});
  Node* out = g->call_function("add", {b, c});
  g->output(out);
  auto gm = std::make_shared<GraphModule>(nullptr, std::move(g), "War");
  gm->recompile();
  rt::Rng rng(3);
  const Tensor in = random_tensor(rng);
  passes::shape_prop(*gm, {in});
  const auto plan = passes::plan_tape(*gm);

  // Precondition for the scenario: a (#0) and c (#2) actually share bytes.
  ASSERT_TRUE(plan->intervals[0].planned);
  ASSERT_TRUE(plan->intervals[2].planned);
  ASSERT_FALSE(plan->intervals[2].in_place);
  ASSERT_EQ(plan->intervals[0].offset, plan->intervals[2].offset);

  const fx::CompiledGraph& cg = gm->compiled_graph();

  // The dependency-only schedule has no path b -> c: flagged.
  std::vector<analysis::Diagnostic> raw;
  analysis::check_plan_war_ordering(cg, fx::build_schedule(cg), *plan, raw);
  EXPECT_GT(rules_fired(raw, "plan.war-ordering"), 0);

  // The plan-aware schedule adds exactly those WAR edges: clean.
  std::vector<analysis::Diagnostic> planned;
  analysis::check_plan_war_ordering(
      cg, fx::build_planned_schedule(cg, *plan), *plan, planned);
  EXPECT_TRUE(planned.empty()) << planned[0].to_string();
}

// --------------------------------------------------------------------------
// Verifier integration: both rules registered and clean on planned modules
// --------------------------------------------------------------------------

TEST(VerifierRules, RaceRulesCleanOnPlannedModule) {
  FuzzCase fc = random_dag(99);
  passes::shape_prop(*fc.gm, fc.inputs);
  passes::compile_planned(*fc.gm, fc.inputs);

  const analysis::Report report = analysis::verify(*fc.gm);
  EXPECT_EQ(report.count_rule("schedule.race"), 0) << report.to_string();
  EXPECT_EQ(report.count_rule("plan.war-ordering"), 0) << report.to_string();

  const auto rules = analysis::Verifier::default_rules();
  const bool has_race = std::any_of(
      rules.begin(), rules.end(),
      [](const analysis::Rule& r) { return r.id == "schedule.race"; });
  const bool has_war = std::any_of(
      rules.begin(), rules.end(),
      [](const analysis::Rule& r) { return r.id == "plan.war-ordering"; });
  EXPECT_TRUE(has_race);
  EXPECT_TRUE(has_war);
}

}  // namespace
}  // namespace fxcpp
