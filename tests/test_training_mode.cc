// Training-mode behaviors: batch-norm batch statistics with running-stat
// updates (the "mutable state hidden inside well-understood Modules" of
// Section 5.6), dropout train/eval switching, and the moving-average
// observer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/tracer.h"
#include "nn/layers.h"
#include "quant/observer.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Value;

TEST(BatchNormTrain, NormalizesByBatchStats) {
  Tensor x = Tensor::randn({8, 4, 5, 5});
  Tensor gamma = Tensor::ones({4});
  Tensor beta = Tensor::zeros({4});
  Tensor rm = Tensor::zeros({4});
  Tensor rv = Tensor::ones({4});
  Tensor y = ops::batch_norm_train(x, gamma, beta, rm, rv, 0.1, 1e-5);
  // Each output channel should be ~zero-mean unit-variance.
  const std::int64_t per = 8 * 25;
  for (std::int64_t ch = 0; ch < 4; ++ch) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t img = 0; img < 8; ++img) {
      for (std::int64_t i = 0; i < 25; ++i) {
        mean += y.at_flat((img * 4 + ch) * 25 + i);
      }
    }
    mean /= static_cast<double>(per);
    for (std::int64_t img = 0; img < 8; ++img) {
      for (std::int64_t i = 0; i < 25; ++i) {
        const double d = y.at_flat((img * 4 + ch) * 25 + i) - mean;
        var += d * d;
      }
    }
    var /= static_cast<double>(per);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTrain, UpdatesRunningStats) {
  Tensor x = ops::add(ops::mul(Tensor::randn({16, 2, 4, 4}), 2.0), 5.0);
  Tensor gamma = Tensor::ones({2}), beta = Tensor::zeros({2});
  Tensor rm = Tensor::zeros({2}), rv = Tensor::ones({2});
  ops::batch_norm_train(x, gamma, beta, rm, rv, /*momentum=*/1.0, 1e-5);
  // With momentum 1.0 the running stats become the batch stats.
  EXPECT_NEAR(rm.at_flat(0), 5.0, 0.5);
  EXPECT_NEAR(rv.at_flat(0), 4.0, 1.0);
}

TEST(BatchNormTrain, ModuleSwitchesWithTrainingFlag) {
  auto bn = std::make_shared<nn::BatchNorm2d>(3);
  Tensor x = ops::add(Tensor::randn({4, 3, 4, 4}), 2.0);

  // Eval mode: running stats (zeros/ones) -> output ~= input.
  Tensor eval_out = (*bn)(Value(x)).tensor();
  EXPECT_LT(max_abs_diff(eval_out, x), 1e-3);

  // Train mode: batch stats -> output ~zero-mean, and running_mean moves.
  bn->train(true);
  Tensor train_out = (*bn)(Value(x)).tensor();
  EXPECT_NEAR(ops::mean(train_out).item(), 0.0, 1e-3);
  EXPECT_GT(bn->param("running_mean").at_flat(0), 0.01);

  // Tracing a training-mode BN still records the inference graph form
  // (leaf call_module), keeping mutation inside the module.
  bn->train(false);
}

TEST(Dropout, TrainEvalSwitch) {
  auto drop = std::make_shared<nn::Dropout>(0.5);
  Tensor x = Tensor::ones({1000});
  Tensor eval_out = (*drop)(Value(x)).tensor();
  EXPECT_TRUE(allclose(eval_out, x));
  drop->train(true);
  Tensor train_out = (*drop)(Value(x)).tensor();
  int zeros = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    if (train_out.at_flat(i) == 0.0) ++zeros;
  }
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
}

TEST(MovingAverageObserver, SmoothsRange) {
  quant::MovingAverageObserver obs(0.5);
  obs.forward({Value(Tensor::from_vector({-1.f, 1.f}, {2}))});
  EXPECT_NEAR(obs.ema_min(), -1.0, 1e-9);
  // A spiky batch moves the EMA only halfway.
  obs.forward({Value(Tensor::from_vector({-9.f, 9.f}, {2}))});
  EXPECT_NEAR(obs.ema_min(), -5.0, 1e-9);
  EXPECT_NEAR(obs.ema_max(), 5.0, 1e-9);
  // Plain min/max keeps the raw extrema.
  EXPECT_EQ(obs.min_val(), -9.0);
  EXPECT_EQ(obs.max_val(), 9.0);
  const QParams ema = obs.qparams_ema();
  const QParams raw = obs.qparams();
  EXPECT_LT(ema.scale, raw.scale);
}

}  // namespace
}  // namespace fxcpp
