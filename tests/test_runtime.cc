// Runtime substrate tests: intra-op parallelism, deterministic RNG, and
// trial statistics used by the benchmark harnesses.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/rng.h"
#include "runtime/thread_pool.h"
#include "runtime/timer.h"

namespace fxcpp::rt {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    set_num_threads(threads);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(0, 1000, 10, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  set_num_threads(1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  set_num_threads(4);
  int calls = 0;
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, 3, 100, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 3);
  set_num_threads(1);
}

TEST(ParallelFor, ParallelSumMatchesSerial) {
  std::vector<double> data(10000);
  std::iota(data.begin(), data.end(), 0.0);
  auto run = [&](int threads) {
    set_num_threads(threads);
    std::atomic<long long> acc{0};
    parallel_for(0, 10000, 64, [&](std::int64_t b, std::int64_t e) {
      long long local = 0;
      for (std::int64_t i = b; i < e; ++i) {
        local += static_cast<long long>(data[static_cast<std::size_t>(i)]);
      }
      acc += local;
    });
    return acc.load();
  };
  EXPECT_EQ(run(1), run(4));
  set_num_threads(1);
}

TEST(ThreadSetting, Roundtrip) {
  set_num_threads(3);
  EXPECT_EQ(get_num_threads(), 3);
  set_num_threads(0);  // clamped to 1
  EXPECT_EQ(get_num_threads(), 1);
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(124);
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRangeAndNormalMoments) {
  Rng r(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < n; ++i) {
    const double z = r.normal();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.randint(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(TrialStats, MeanAndStdev) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(s.mean, 2.5, 1e-12);
  EXPECT_NEAR(s.stdev, 1.2909944487358056, 1e-9);
  EXPECT_EQ(s.n, 4u);
  const auto e = summarize({});
  EXPECT_EQ(e.n, 0u);
  const auto one = summarize({5.0});
  EXPECT_EQ(one.stdev, 0.0);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 1000000; ++i) x = x + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
}

}  // namespace
}  // namespace fxcpp::rt
