// Runtime substrate tests: intra-op parallelism, deterministic RNG, and
// trial statistics used by the benchmark harnesses.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>

#include "runtime/rng.h"
#include "runtime/thread_pool.h"
#include "runtime/timer.h"

namespace fxcpp::rt {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    set_num_threads(threads);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(0, 1000, 10, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  set_num_threads(1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  set_num_threads(4);
  int calls = 0;
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, 3, 100, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 3);
  set_num_threads(1);
}

TEST(ParallelFor, ParallelSumMatchesSerial) {
  std::vector<double> data(10000);
  std::iota(data.begin(), data.end(), 0.0);
  auto run = [&](int threads) {
    set_num_threads(threads);
    std::atomic<long long> acc{0};
    parallel_for(0, 10000, 64, [&](std::int64_t b, std::int64_t e) {
      long long local = 0;
      for (std::int64_t i = b; i < e; ++i) {
        local += static_cast<long long>(data[static_cast<std::size_t>(i)]);
      }
      acc += local;
    });
    return acc.load();
  };
  EXPECT_EQ(run(1), run(4));
  set_num_threads(1);
}

TEST(ThreadSetting, Roundtrip) {
  set_num_threads(3);
  EXPECT_EQ(get_num_threads(), 3);
  set_num_threads(0);  // clamped to 1
  EXPECT_EQ(get_num_threads(), 1);
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(124);
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRangeAndNormalMoments) {
  Rng r(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < n; ++i) {
    const double z = r.normal();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.randint(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(TrialStats, MeanAndStdev) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(s.mean, 2.5, 1e-12);
  EXPECT_NEAR(s.stdev, 1.2909944487358056, 1e-9);
  EXPECT_EQ(s.n, 4u);
  const auto e = summarize({});
  EXPECT_EQ(e.n, 0u);
  const auto one = summarize({5.0});
  EXPECT_EQ(one.stdev, 0.0);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 1000000; ++i) x = x + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
}

// --------------------------------------------------------------------------
// Regression: a late set_num_interop_threads() — after the inter-op pool
// has been realized — must take effect, and a resize must never invalidate
// pools that in-flight work still holds.
// --------------------------------------------------------------------------

TEST(InteropThreads, LateSetTakesEffectOnRealizedPool) {
  const int before = get_num_interop_threads();
  // Realize the pool at the current knob...
  const std::shared_ptr<ThreadPool> first = ThreadPool::inter_op_handle();
  EXPECT_EQ(first->size(), before);
  // ...then change the knob late. The old behavior silently served the
  // stale pool forever; now the next handle must see the new size.
  set_num_interop_threads(before + 2);
  const std::shared_ptr<ThreadPool> second = ThreadPool::inter_op_handle();
  EXPECT_EQ(second->size(), before + 2);
  EXPECT_NE(first.get(), second.get());
  // The stale handle is still a live, usable pool (not freed under us).
  std::atomic<int> ran{0};
  first->submit([&] { ran.fetch_add(1); });
  set_num_interop_threads(before);
  ThreadPool::inter_op_handle();
  // first/second keep their pools alive until these handles drop.
  for (int i = 0; i < 2000 && ran.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 1);
}

TEST(InteropThreads, ResizeKeepsOldPoolAliveForLiveGroups) {
  const int before = get_num_interop_threads();
  TaskGroup group(ThreadPool::inter_op_handle());
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    group.run([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  // Swap the process-wide pool mid-flight; the group's pinned handle keeps
  // the old pool (and its queue) alive and draining.
  set_num_interop_threads(before + 1);
  const std::shared_ptr<ThreadPool> fresh = ThreadPool::inter_op_handle();
  EXPECT_EQ(fresh->size(), before + 1);
  // Late submissions through the group still land on the pinned pool.
  group.run([&] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 17);
  set_num_interop_threads(before);
}

// --------------------------------------------------------------------------
// Regression: TaskGroup::wait_for's post-deadline completion contract — a
// timed-out batch's late exception must stay observable (drain(), a later
// wait, or the abandoned-error observer), never dropped on the floor.
// --------------------------------------------------------------------------

TEST(TaskGroupDrain, LateExceptionObservedAfterTimeout) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  group.run([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    throw std::runtime_error("late boom");
  });
  // The caller times out and walks away from wait_for...
  EXPECT_FALSE(group.wait_for(std::chrono::milliseconds(1)));
  // ...but the exception is still there once the group quiesces.
  const std::exception_ptr err = group.drain();
  ASSERT_TRUE(err != nullptr);
  try {
    std::rethrow_exception(err);
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "late boom");
  }
  // drain() consumed it; the group is clean afterwards.
  EXPECT_EQ(group.drain(), nullptr);
  EXPECT_TRUE(group.failed()) << "failed() stays sticky after consumption";
}

TEST(TaskGroupDrain, AbandonedErrorObserverReceivesUnconsumedError) {
  ThreadPool pool(1);
  std::string observed;
  {
    TaskGroup group(pool);
    group.set_abandoned_error_observer([&](std::exception_ptr e) {
      try {
        std::rethrow_exception(e);
      } catch (const std::runtime_error& ex) {
        observed = ex.what();
      }
    });
    group.run([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      throw std::runtime_error("abandoned boom");
    });
    EXPECT_FALSE(group.wait_for(std::chrono::milliseconds(1)));
    // Destructor path: nobody ever waits again.
  }
  EXPECT_EQ(observed, "abandoned boom");
}

TEST(TaskGroupDrain, DrainWithoutErrorReturnsNull) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) group.run([&] { ran.fetch_add(1); });
  EXPECT_EQ(group.drain(), nullptr);
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(group.pending(), 0u);
}

TEST(TaskGroupDrain, NullPoolHandleThrows) {
  EXPECT_THROW(TaskGroup(std::shared_ptr<ThreadPool>()), std::invalid_argument);
}

}  // namespace
}  // namespace fxcpp::rt
