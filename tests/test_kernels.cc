// Micro-kernel layer: differential fuzzing of the packed fp32/int8 GEMMs
// against scalar/double references across every ISA tier this machine can
// run (forced through the dispatch layer), per-tier bit-determinism, fused
// epilogues (bias row/col, ReLU, int8 requantize), prepacked-A parity,
// PackCache panel caching/eviction, the ops::transpose fast path, the
// linear+ReLU fusion pass (module and function forms plus its downstream
// guards), and a traced ResNet-18 engine-parity regression. All randomness
// is seeded. scripts/check.sh runs this binary under ASan and TSan, and
// ctest additionally re-runs it with FXCPP_KERNEL_ISA=scalar so the
// fallback tier stays green everywhere.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/interpreter.h"
#include "core/tracer.h"
#include "kernels/dispatch.h"
#include "kernels/kernels.h"
#include "nn/layers.h"
#include "nn/models/resnet.h"
#include "passes/fuse_linear_relu.h"
#include "quant/quantize.h"
#include "runtime/rng.h"
#include "tensor/ops.h"
#include "tensor/pack_cache.h"

namespace fxcpp {
namespace {

using fx::RtValue;

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) ==
         0;
}

// Every tier the dispatch layer will actually run on this machine (forcing
// a tier the CPU lacks clamps to a runnable one, which would re-test it).
std::vector<kernels::Isa> runnable_tiers() {
  std::vector<kernels::Isa> out;
  for (const kernels::Isa isa :
       {kernels::Isa::Scalar, kernels::Isa::Sse2, kernels::Isa::Avx2,
        kernels::Isa::Avx512, kernels::Isa::Neon}) {
    kernels::force_isa(isa);
    if (kernels::active_isa() == isa) out.push_back(isa);
  }
  kernels::force_isa(std::nullopt);
  return out;
}

struct ScopedIsa {
  explicit ScopedIsa(kernels::Isa isa) { kernels::force_isa(isa); }
  ~ScopedIsa() { kernels::force_isa(std::nullopt); }
};

std::vector<float> random_floats(std::size_t n, rt::Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// Double-precision y = x @ w^T (+ bias_col/bias_row) (+ relu) reference.
std::vector<float> ref_gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                               const std::vector<float>& x,
                               const std::vector<float>& w,
                               const float* bias_col, const float* bias_row,
                               bool relu) {
  std::vector<float> y(static_cast<std::size_t>(m * n));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(x[i * k + kk]) *
               static_cast<double>(w[j * k + kk]);
      }
      if (bias_col) acc += bias_col[j];
      if (bias_row) acc += bias_row[i];
      float v = static_cast<float>(acc);
      if (relu) v = v > 0.f ? v : 0.f;
      y[i * n + j] = v;
    }
  }
  return y;
}

// --------------------------------------------------------------------------
// Dispatch
// --------------------------------------------------------------------------

TEST(KernelDispatch, ParseIsaStrings) {
  EXPECT_EQ(kernels::parse_isa("scalar"), kernels::Isa::Scalar);
  EXPECT_EQ(kernels::parse_isa("SSE2"), kernels::Isa::Sse2);
  EXPECT_EQ(kernels::parse_isa("avx2"), kernels::Isa::Avx2);
  EXPECT_EQ(kernels::parse_isa("AVX512"), kernels::Isa::Avx512);
  EXPECT_EQ(kernels::parse_isa("avx512f"), kernels::Isa::Avx512);
  EXPECT_EQ(kernels::parse_isa("neon"), kernels::Isa::Neon);
  EXPECT_FALSE(kernels::parse_isa("avx999").has_value());
  EXPECT_FALSE(kernels::parse_isa("").has_value());
}

TEST(KernelDispatch, ForceClampsToDetected) {
  {
    ScopedIsa pin(kernels::Isa::Scalar);
    EXPECT_EQ(kernels::active_isa(), kernels::Isa::Scalar);
  }
  // Forcing every candidate never yields a tier above detection.
  for (const kernels::Isa isa :
       {kernels::Isa::Sse2, kernels::Isa::Avx2, kernels::Isa::Avx512,
        kernels::Isa::Neon}) {
    ScopedIsa pin(isa);
    const kernels::Isa got = kernels::active_isa();
    if (kernels::detected_isa() == kernels::Isa::Neon) {
      EXPECT_TRUE(got == kernels::Isa::Neon || got == kernels::Isa::Scalar);
    } else {
      EXPECT_LE(static_cast<int>(got),
                static_cast<int>(kernels::detected_isa()));
      EXPECT_NE(got, kernels::Isa::Neon);
    }
  }
  // With no force, active is the env override (ctest re-runs this binary
  // with FXCPP_KERNEL_ISA=scalar) or the detected tier.
  if (const auto env = kernels::env_isa()) {
    EXPECT_EQ(kernels::active_isa(),
              *env == kernels::Isa::Scalar ? kernels::Isa::Scalar
                                           : kernels::active_isa());
  } else {
    EXPECT_EQ(kernels::active_isa(), kernels::detected_isa());
  }
}

TEST(KernelDispatch, IsaNamesRoundTrip) {
  for (const kernels::Isa isa :
       {kernels::Isa::Scalar, kernels::Isa::Sse2, kernels::Isa::Avx2,
        kernels::Isa::Avx512, kernels::Isa::Neon}) {
    EXPECT_EQ(kernels::parse_isa(kernels::isa_name(isa)), isa);
  }
}

// --------------------------------------------------------------------------
// fp32 GEMM: every runnable tier vs the double reference, all epilogues.
// --------------------------------------------------------------------------

TEST(SgemmFuzz, AllTiersAllEpiloguesMatchReference) {
  rt::Rng rng(7);
  const std::int64_t shapes[][3] = {{1, 1, 1},   {3, 5, 7},   {6, 16, 8},
                                    {7, 17, 33}, {16, 32, 24}, {5, 33, 9},
                                    {33, 48, 17}, {2, 64, 40}};
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    const auto x = random_floats(static_cast<std::size_t>(m * k), rng);
    const auto w = random_floats(static_cast<std::size_t>(n * k), rng);
    const auto bc = random_floats(static_cast<std::size_t>(n), rng);
    const auto br = random_floats(static_cast<std::size_t>(m), rng);
    std::vector<float> pb(kernels::packed_b_f32_size(k, n));
    kernels::pack_b_f32_nt(w.data(), k, k, n, pb.data());
    struct Epi {
      const float* bias_col;
      const float* bias_row;
      bool relu;
    };
    const Epi epis[] = {{nullptr, nullptr, false},
                        {bc.data(), nullptr, false},
                        {nullptr, br.data(), false},
                        {nullptr, nullptr, true},
                        {bc.data(), nullptr, true}};
    for (const kernels::Isa isa : runnable_tiers()) {
      ScopedIsa pin(isa);
      for (const Epi& e : epis) {
        const auto ref =
            ref_gemm_nt(m, n, k, x, w, e.bias_col, e.bias_row, e.relu);
        std::vector<float> y1(ref.size()), y2(ref.size());
        kernels::sgemm(m, n, k, x.data(), k, pb.data(), y1.data(), n,
                       e.bias_col, e.bias_row, e.relu);
        kernels::sgemm(m, n, k, x.data(), k, pb.data(), y2.data(), n,
                       e.bias_col, e.bias_row, e.relu);
        // Bit-determinism at a fixed tier (the serving-parity contract).
        ASSERT_EQ(0, std::memcmp(y1.data(), y2.data(),
                                 y1.size() * sizeof(float)))
            << kernels::isa_name(isa);
        for (std::size_t i = 0; i < ref.size(); ++i) {
          const float tol =
              1e-4f * std::max(1.0f, std::fabs(ref[i]));
          ASSERT_NEAR(y1[i], ref[i], tol)
              << kernels::isa_name(isa) << " m=" << m << " n=" << n
              << " k=" << k << " i=" << i;
        }
      }
    }
  }
}

TEST(SgemmFuzz, PrepackedAIsBitEqualToOnTheFlyPacking) {
  rt::Rng rng(11);
  for (const kernels::Isa isa : runnable_tiers()) {
    ScopedIsa pin(isa);
    const std::int64_t m = 13, n = 21, k = 19;
    const auto x = random_floats(static_cast<std::size_t>(m * k), rng);
    const auto w = random_floats(static_cast<std::size_t>(n * k), rng);
    std::vector<float> pb(kernels::packed_b_f32_size(k, n));
    kernels::pack_b_f32_nt(w.data(), k, k, n, pb.data());
    const int mr = kernels::gemm_f32_mr();
    std::vector<float> pa(kernels::packed_a_f32_size(m, k, mr));
    kernels::pack_a_f32(x.data(), k, m, k, mr, pa.data());
    std::vector<float> y1(static_cast<std::size_t>(m * n));
    std::vector<float> y2(y1.size());
    kernels::sgemm(m, n, k, x.data(), k, pb.data(), y1.data(), n, nullptr,
                   nullptr, false);
    kernels::sgemm(m, n, k, x.data(), k, pb.data(), y2.data(), n, nullptr,
                   nullptr, false, pa.data());
    EXPECT_EQ(0,
              std::memcmp(y1.data(), y2.data(), y1.size() * sizeof(float)))
        << kernels::isa_name(isa);
  }
}

// --------------------------------------------------------------------------
// int8 GEMM: integer-exact across tiers (requantize is shared scalar code).
// --------------------------------------------------------------------------

TEST(QgemmFuzz, AllTiersExactlyMatchScalar) {
  rt::Rng rng(13);
  const std::int64_t shapes[][3] = {
      {1, 1, 4}, {3, 5, 8}, {4, 16, 12}, {7, 17, 33}, {9, 40, 20}};
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    std::vector<std::int8_t> x(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> w(static_cast<std::size_t>(n * k));
    for (auto& v : x) v = static_cast<std::int8_t>(rng.randint(-128, 127));
    for (auto& v : w) v = static_cast<std::int8_t>(rng.randint(-128, 127));
    std::vector<std::int8_t> pb(kernels::packed_b_s8_size(k, n));
    kernels::pack_b_s8_nt(w.data(), k, k, n, pb.data());
    const std::int32_t zx = 3;
    std::vector<std::int32_t> corr(static_cast<std::size_t>(n));
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t cs = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) cs += w[j * k + kk];
      corr[static_cast<std::size_t>(j)] = (zx + 128) * cs;
    }
    std::vector<float> scale_col(static_cast<std::size_t>(n));
    for (auto& v : scale_col) v = static_cast<float>(rng.uniform(0.001, 0.02));
    const auto bias = random_floats(static_cast<std::size_t>(n), rng);
    kernels::QuantEpilogue ep;
    ep.corr_col = corr.data();
    ep.inv_out = 8.f;
    ep.out_zp = -5;
    // Per-tensor, per-channel, and bias variants.
    for (int variant = 0; variant < 3; ++variant) {
      ep.scale_col = variant >= 1 ? scale_col.data() : nullptr;
      ep.scale_all = 0.0125f;
      ep.bias_col = variant == 2 ? bias.data() : nullptr;
      std::vector<std::int8_t> ref;
      for (const kernels::Isa isa : runnable_tiers()) {
        ScopedIsa pin(isa);
        std::vector<std::int8_t> y(static_cast<std::size_t>(m * n));
        kernels::qgemm(m, n, k, x.data(), k, pb.data(), y.data(), n, ep);
        if (ref.empty()) {
          ref = y;
          // Scalar runs first: validate against a plain int32 loop.
          for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
              std::int32_t acc = 0;
              for (std::int64_t kk = 0; kk < k; ++kk) {
                acc += (static_cast<std::int32_t>(x[i * k + kk]) + 128) *
                       static_cast<std::int32_t>(w[j * k + kk]);
              }
              acc -= corr[static_cast<std::size_t>(j)];
              const float sc = ep.scale_col
                                   ? ep.scale_col[j]
                                   : ep.scale_all;
              float real = sc * static_cast<float>(acc);
              if (ep.bias_col) real += ep.bias_col[j];
              long q = std::lrintf(real * ep.inv_out) + ep.out_zp;
              q = std::max(-128L, std::min(127L, q));
              ASSERT_EQ(static_cast<std::int8_t>(q), y[i * n + j])
                  << "scalar i=" << i << " j=" << j;
            }
          }
        } else {
          ASSERT_EQ(0, std::memcmp(ref.data(), y.data(), ref.size()))
              << kernels::isa_name(isa) << " m=" << m << " n=" << n
              << " k=" << k << " variant=" << variant;
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// Routed ops
// --------------------------------------------------------------------------

TEST(KernelOps, LinearReluBitEqualsReluOfLinear) {
  rt::Rng::global().reseed(23);
  for (const kernels::Isa isa : runnable_tiers()) {
    ScopedIsa pin(isa);
    const Tensor x = Tensor::randn({9, 33});
    const Tensor w = Tensor::randn({17, 33});
    const Tensor b = Tensor::randn({17});
    EXPECT_TRUE(bit_equal(ops::linear_relu(x, w, b),
                          ops::relu(ops::linear(x, w, b))))
        << kernels::isa_name(isa);
    EXPECT_TRUE(bit_equal(ops::linear_relu(x, w, Tensor()),
                          ops::relu(ops::linear(x, w, Tensor()))))
        << kernels::isa_name(isa);
  }
}

TEST(KernelOps, MatmulMatchesReference) {
  rt::Rng rng(29);
  const auto a = random_floats(7 * 19, rng);
  const auto b = random_floats(19 * 23, rng);
  Tensor ta({7, 19}, DType::Float32), tb({19, 23}, DType::Float32);
  std::memcpy(ta.data<float>(), a.data(), a.size() * sizeof(float));
  std::memcpy(tb.data<float>(), b.data(), b.size() * sizeof(float));
  const Tensor y = ops::matmul(ta, tb);
  for (std::int64_t i = 0; i < 7; ++i) {
    for (std::int64_t j = 0; j < 23; ++j) {
      double acc = 0;
      for (std::int64_t kk = 0; kk < 19; ++kk) {
        acc += static_cast<double>(a[i * 19 + kk]) *
               static_cast<double>(b[kk * 23 + j]);
      }
      const float ref = static_cast<float>(acc);
      EXPECT_NEAR(y.data<float>()[i * 23 + j], ref,
                  1e-4f * std::max(1.0f, std::fabs(ref)));
    }
  }
  // Batched: 3-D lhs flattens over the leading dims.
  const Tensor a3 = Tensor::randn({2, 5, 19});
  const Tensor y3 = ops::matmul(a3, tb);
  EXPECT_EQ(y3.sizes(), (Shape{2, 5, 23}));
}

TEST(KernelOps, TransposeFastPathMatchesNaive) {
  rt::Rng::global().reseed(31);
  for (const auto& dims : {Shape{7, 13}, Shape{64, 64}, Shape{33, 65},
                           Shape{1, 17}, Shape{128, 3}}) {
    const Tensor x = Tensor::randn(dims);
    const Tensor t = ops::transpose(x, 0, 1);
    ASSERT_EQ(t.sizes(), (Shape{dims[1], dims[0]}));
    const Tensor tc = t.contiguous();
    for (std::int64_t i = 0; i < dims[0]; ++i) {
      for (std::int64_t j = 0; j < dims[1]; ++j) {
        ASSERT_EQ(x.data<float>()[i * dims[1] + j],
                  tc.data<float>()[j * dims[0] + i]);
      }
    }
    // Round trip restores the original bit pattern.
    EXPECT_TRUE(bit_equal(ops::transpose(t, 0, 1).contiguous(), x));
  }
  // Non-2-D and same-dim calls still route through the generic path.
  const Tensor x3 = Tensor::randn({2, 3, 4});
  EXPECT_EQ(ops::transpose(x3, 1, 2).sizes(), (Shape{2, 4, 3}));
}

// --------------------------------------------------------------------------
// PackCache panel entries
// --------------------------------------------------------------------------

TEST(PackCachePanels, HitsMissesAndSharing) {
  auto& cache = PackCache::local();
  cache.clear();
  const Tensor w = Tensor::randn({12, 20});
  const auto p1 = cache.panel_b_f32_nt(w);
  EXPECT_EQ(cache.stats().panel_misses, 1);
  const auto p2 = cache.panel_b_f32_nt(w);
  EXPECT_EQ(cache.stats().panel_hits, 1);
  EXPECT_EQ(p1.get(), p2.get());
  // Distinct kinds key separately even for the same tensor.
  const auto pa = cache.panel_a_f32(w, 6);
  EXPECT_EQ(cache.stats().panel_misses, 2);
  EXPECT_NE(static_cast<const void*>(p1->data()),
            static_cast<const void*>(pa->data()));
  EXPECT_EQ(cache.panel_size(), 2u);
  EXPECT_GT(cache.stats().panel_bytes, 0u);
  cache.clear();
}

TEST(PackCachePanels, MutationRepacks) {
  auto& cache = PackCache::local();
  cache.clear();
  Tensor w = Tensor::randn({8, 16});
  const auto p1 = cache.panel_b_f32_nt(w);
  w.data<float>()[0] += 1.f;  // mutable data() bumps the version
  const auto p2 = cache.panel_b_f32_nt(w);
  EXPECT_GE(cache.stats().panel_repacks, 1);
  EXPECT_NE((*p1)[0], (*p2)[0]);
  cache.clear();
}

TEST(PackCachePanels, EvictionKeepsSharedPtrAliveAndAdjustsBytes) {
  auto& cache = PackCache::local();
  cache.clear();
  cache.set_capacity(2);
  const Tensor w1 = Tensor::randn({4, 8});
  const Tensor w2 = Tensor::randn({4, 8});
  const Tensor w3 = Tensor::randn({4, 8});
  const auto p1 = cache.panel_b_f32_nt(w1);
  cache.panel_b_f32_nt(w2);
  cache.panel_b_f32_nt(w3);  // evicts w1's panel (FIFO)
  EXPECT_LE(cache.panel_size(), 2u);
  // The evicted panel's storage survives through the shared_ptr.
  EXPECT_EQ(p1->size(), kernels::packed_b_f32_size(8, 4));
  const std::size_t bytes_before = cache.stats().panel_bytes;
  cache.set_capacity(0);
  EXPECT_EQ(cache.panel_size(), 0u);
  EXPECT_LT(cache.stats().panel_bytes, bytes_before);
  cache.set_capacity(64);
  cache.clear();
}

TEST(PackCachePanels, GlobalStatsAggregate) {
  auto& cache = PackCache::local();
  cache.clear();
  const auto before = PackCache::global_stats();
  const Tensor w = Tensor::randn({4, 8});
  cache.panel_b_f32_nt(w);
  cache.panel_b_f32_nt(w);
  const auto after = PackCache::global_stats();
  EXPECT_GE(after.panel_misses, before.panel_misses + 1);
  EXPECT_GE(after.panel_hits, before.panel_hits + 1);
  cache.clear();
}

// --------------------------------------------------------------------------
// Linear+ReLU fusion pass
// --------------------------------------------------------------------------

TEST(FuseLinearRelu, ModulePatternSwapsInLinearReLU) {
  rt::Rng::global().reseed(41);
  auto seq = std::make_shared<nn::Sequential>();
  seq->append(std::make_shared<nn::Linear>(12, 8));
  seq->append(std::make_shared<nn::ReLU>());
  seq->append(std::make_shared<nn::Linear>(8, 4));
  auto gm = fx::symbolic_trace(seq);
  const Tensor x = Tensor::randn({3, 12});
  const Tensor before = fx::rt_tensor(fx::Interpreter(*gm).run({RtValue(x)}));

  EXPECT_EQ(passes::fuse_linear_relu(*gm), 1);
  // The ReLU call is gone; the first Linear is now a LinearReLU module.
  int relu_calls = 0, linear_relu_mods = 0;
  for (const fx::Node* n : gm->graph().nodes()) {
    if (n->op() != fx::Opcode::CallModule) continue;
    const auto m = gm->resolve_module(n->target());
    if (dynamic_cast<const nn::ReLU*>(m.get())) ++relu_calls;
    if (dynamic_cast<const nn::LinearReLU*>(m.get())) ++linear_relu_mods;
  }
  EXPECT_EQ(relu_calls, 0);
  EXPECT_EQ(linear_relu_mods, 1);

  const Tensor after = fx::rt_tensor(fx::Interpreter(*gm).run({RtValue(x)}));
  EXPECT_TRUE(bit_equal(before, after));
  const Tensor tape =
      std::get<Tensor>(gm->compiled_graph().run({RtValue(x)}).front());
  EXPECT_TRUE(bit_equal(before, tape));

  // Idempotent: LinearReLU itself never re-matches.
  EXPECT_EQ(passes::fuse_linear_relu(*gm), 0);
}

TEST(FuseLinearRelu, FunctionPatternRewritesTarget) {
  rt::Rng::global().reseed(43);
  const Tensor w = Tensor::randn({6, 10});
  const Tensor b = Tensor::randn({6});
  fx::Tracer tracer;
  auto gm = tracer.trace_function([&](const std::vector<fx::Value>& in) {
    return fx::fn::relu(fx::fn::linear(in.at(0), fx::Value(w), fx::Value(b)));
  });
  const Tensor x = Tensor::randn({4, 10});
  const Tensor before = fx::rt_tensor(fx::Interpreter(*gm).run({RtValue(x)}));

  EXPECT_EQ(passes::fuse_linear_relu(*gm), 1);
  int linear_relu_calls = 0, relu_calls = 0;
  for (const fx::Node* n : gm->graph().nodes()) {
    if (n->op() != fx::Opcode::CallFunction) continue;
    if (n->target() == "linear_relu") ++linear_relu_calls;
    if (n->target() == "relu") ++relu_calls;
  }
  EXPECT_EQ(linear_relu_calls, 1);
  EXPECT_EQ(relu_calls, 0);

  const Tensor after = fx::rt_tensor(fx::Interpreter(*gm).run({RtValue(x)}));
  EXPECT_TRUE(bit_equal(before, after));
}

TEST(FuseLinearRelu, MultiConsumerLinearIsNotFused) {
  rt::Rng::global().reseed(47);
  const Tensor w = Tensor::randn({6, 10});
  fx::Tracer tracer;
  auto gm = tracer.trace_function([&](const std::vector<fx::Value>& in) {
    const fx::Value y = fx::fn::linear(in.at(0), fx::Value(w), fx::Value());
    // y is consumed by both the relu and the add: fusing would change the
    // add's operand.
    return fx::fn::add(fx::fn::relu(y), y);
  });
  EXPECT_EQ(passes::fuse_linear_relu(*gm), 0);
}

TEST(FuseLinearRelu, QuantizerLeavesLinearReLUInFloat) {
  auto m = std::make_shared<nn::LinearReLU>(8, 4);
  // classify via the convert pipeline's guard: a LinearReLU must never be
  // swapped for a QuantizedLinear that forgets the clamp. We check the
  // observable contract: quantizing a Sequential containing one keeps its
  // output close to float (it stays un-quantized, so exactly equal).
  auto seq = std::make_shared<nn::Sequential>();
  seq->append(m);
  auto gm = fx::symbolic_trace(seq);
  const Tensor x = Tensor::randn({2, 8});
  const Tensor ref = fx::rt_tensor(fx::Interpreter(*gm).run({RtValue(x)}));
  auto qgm = quant::quantize_model(seq, {x, Tensor::randn({2, 8})});
  const Tensor got = fx::rt_tensor(fx::Interpreter(*qgm).run({RtValue(x)}));
  EXPECT_TRUE(bit_equal(ref, got));
}

// --------------------------------------------------------------------------
// End-to-end regression: traced ResNet-18, engines agree at the pinned tier.
// --------------------------------------------------------------------------

TEST(KernelIntegration, ResNet18EnginesBitEqualAtActiveTier) {
  rt::Rng::global().reseed(53);
  auto model = nn::models::resnet18(/*width=*/8, /*num_classes=*/16);
  model->train(false);
  auto gm = fx::symbolic_trace(model);
  gm->recompile();
  const Tensor img = Tensor::randn({1, 3, 32, 32});
  const std::vector<RtValue> in{RtValue(img)};
  const Tensor ref = fx::rt_tensor(fx::Interpreter(*gm).run(in));
  const Tensor tape = std::get<Tensor>(gm->compiled_graph().run(in).front());
  EXPECT_TRUE(bit_equal(ref, tape));
  // Same graph at the forced scalar tier still agrees with itself across
  // engines (cross-tier outputs legitimately differ in float rounding).
  {
    ScopedIsa pin(kernels::Isa::Scalar);
    const Tensor ref_s = fx::rt_tensor(fx::Interpreter(*gm).run(in));
    const Tensor tape_s =
        std::get<Tensor>(gm->compiled_graph().run(in).front());
    EXPECT_TRUE(bit_equal(ref_s, tape_s));
  }
}

}  // namespace
}  // namespace fxcpp
