// Per-channel weight quantization (FBGEMM's default scheme): accuracy must
// dominate per-tensor when output-row magnitudes vary, and the end-to-end
// workflow must honor the QConfig switch.
#include <gtest/gtest.h>

#include <cmath>

#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "quant/quantize.h"
#include "tensor/ops.h"
#include "tensor/quantized.h"

namespace fxcpp {
namespace {

double rel_l2(const Tensor& got, const Tensor& want) {
  double num = 0.0, den = 0.0;
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    const double d = got.at_flat(i) - want.at_flat(i);
    num += d * d;
    den += want.at_flat(i) * want.at_flat(i);
  }
  return std::sqrt(num / (den + 1e-12));
}

// Weights whose rows have wildly different magnitudes — the case per-tensor
// scales handle poorly.
Tensor skewed_weight(std::int64_t out_f, std::int64_t in_f) {
  Tensor w = Tensor::randn({out_f, in_f});
  float* p = w.data<float>();
  for (std::int64_t r = 0; r < out_f; ++r) {
    const float scale = std::pow(10.f, static_cast<float>(r % 4) - 2.f);
    for (std::int64_t c = 0; c < in_f; ++c) p[r * in_f + c] *= scale;
  }
  return w;
}

TEST(PerChannel, WeightReconstructionBeatsPerTensorOnSkewedRows) {
  // Measure the quantity per-channel scales actually improve: weight
  // round-trip error on the small-magnitude rows (a per-tensor scale sized
  // for the largest row crushes them).
  const std::int64_t in_f = 64, out_f = 16;
  Tensor w = skewed_weight(out_f, in_f);
  auto pt = ops::PackedLinearWeight::pack(w, Tensor());
  auto pc = ops::PackedLinearWeight::pack_per_channel(w, Tensor());

  auto row_err = [&](const ops::PackedLinearWeight& p, std::int64_t r) {
    double num = 0.0, den = 0.0;
    const auto* q = p.w_q.data<std::int8_t>();
    for (std::int64_t c = 0; c < in_f; ++c) {
      const double scale = p.per_channel
                               ? p.row_scale[static_cast<std::size_t>(r)]
                               : p.w_scale;
      const double rec = scale * q[r * in_f + c];
      const double orig = w.at_flat(r * in_f + c);
      num += (rec - orig) * (rec - orig);
      den += orig * orig;
    }
    return std::sqrt(num / (den + 1e-30));
  };
  // Row 0 has magnitude ~1e-2 of the largest rows.
  const double e_pt = row_err(pt, 0);
  const double e_pc = row_err(pc, 0);
  EXPECT_LT(e_pc, e_pt * 0.1);   // orders of magnitude better
  EXPECT_LT(e_pc, 0.01);
  EXPECT_GT(e_pt, 0.1);          // per-tensor genuinely loses these rows
}

TEST(PerChannel, EquivalentOnUniformRows) {
  // With uniform row magnitudes the schemes should be comparable.
  Tensor w = Tensor::randn({8, 32});
  Tensor b = Tensor::randn({8});
  Tensor x = Tensor::randn({4, 32});
  Tensor ref = ops::linear(x, w, b);
  const QParams qx = ops::choose_qparams(-4.0, 4.0);
  Tensor x_q = ops::quantize_per_tensor(x, qx.scale, qx.zero_point);
  const QParams qo = ops::choose_qparams(-40.0, 40.0);
  auto pt = ops::PackedLinearWeight::pack(w, b);
  auto pc = ops::PackedLinearWeight::pack_per_channel(w, b);
  const double err_pt = rel_l2(
      ops::dequantize(ops::quantized_linear(x_q, pt, qo.scale, qo.zero_point)),
      ref);
  const double err_pc = rel_l2(
      ops::dequantize(ops::quantized_linear(x_q, pc, qo.scale, qo.zero_point)),
      ref);
  EXPECT_LT(err_pc, err_pt * 1.5);
}

TEST(PerChannel, QConfigSelectsScheme) {
  auto make_model = [] {
    return nn::models::mlp({16, 16}, "relu");
  };
  std::vector<Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(Tensor::randn({4, 16}));

  quant::QConfig pc_cfg;
  pc_cfg.per_channel_weights = true;
  quant::QConfig pt_cfg;
  pt_cfg.per_channel_weights = false;

  auto m1 = make_model();
  auto q_pc = quant::quantize_model(m1, calib, pc_cfg);
  auto m2 = make_model();
  auto q_pt = quant::quantize_model(m2, calib, pt_cfg);

  // Both converted programs run end to end.
  Tensor x = Tensor::randn({4, 16});
  EXPECT_NO_THROW(q_pc->run(x));
  EXPECT_NO_THROW(q_pt->run(x));
  // And the per-channel one actually carries per-row scales.
  bool saw_pc = false;
  for (const fx::Node* n : q_pc->graph().nodes()) {
    if (n->op() == fx::Opcode::CallModule &&
        q_pc->resolve_module(n->target())->kind() == "QuantizedLinear") {
      saw_pc = true;
    }
  }
  EXPECT_TRUE(saw_pc);
}

}  // namespace
}  // namespace fxcpp
