// Graph serialization round-trip tests: captured programs survive
// save/parse with identical structure and behavior.
#include <gtest/gtest.h>

#include "core/functional.h"
#include "core/graph_io.h"
#include "core/graph_module.h"
#include "core/tracer.h"
#include "nn/models/resnet.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Value;

TEST(GraphIo, RoundTripSimpleFunction) {
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(
      [](Value x) { return fx::fn::relu(x + 3.5).neg(); }));
  const std::string text = fx::serialize_graph(gm->graph());
  auto parsed = fx::parse_graph(text);
  EXPECT_EQ(fx::serialize_graph(*parsed), text);
  EXPECT_EQ(parsed->size(), gm->graph().size());
}

TEST(GraphIo, RoundTripPreservesSemantics) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  const std::string text = fx::serialize_graph(gm->graph());
  auto parsed = fx::parse_graph(text);
  // Rebind against the same hierarchy and execute.
  fx::GraphModule reloaded(gm->root(), std::move(parsed), "Reloaded");
  reloaded.recompile();
  Tensor x = Tensor::randn({1, 3, 32, 32});
  EXPECT_TRUE(allclose(reloaded.run(x), gm->run(x)));
}

TEST(GraphIo, IntsAndFloatsDisambiguated) {
  fx::Graph g;
  fx::Node* x = g.placeholder("x");
  fx::Node* a = g.call_function(
      "dropout", {fx::Argument(x), fx::Argument(0.5), fx::Argument(false)});
  fx::Node* f = g.call_function("flatten",
                                {fx::Argument(a), fx::Argument(std::int64_t{1})});
  g.output(fx::Argument(f));
  auto parsed = fx::parse_graph(fx::serialize_graph(g));
  const auto nodes = parsed->nodes();
  EXPECT_TRUE(nodes[1]->args()[1].is_double());
  EXPECT_TRUE(nodes[1]->args()[2].is_bool());
  EXPECT_TRUE(nodes[2]->args()[1].is_int());
}

TEST(GraphIo, ListsAndStringsAndKwargs) {
  fx::Graph g;
  fx::Node* x = g.placeholder("x");
  fx::Node* c = g.call_function(
      "conv2d",
      {fx::Argument(x), fx::Argument(x), fx::Argument(),
       fx::Argument(std::vector<std::int64_t>{2, 2}),
       fx::Argument(std::vector<std::int64_t>{1, 1})},
      {{"note", fx::Argument("hello")}});
  g.output(fx::Argument(c));
  const std::string text = fx::serialize_graph(g);
  auto parsed = fx::parse_graph(text);
  const auto nodes = parsed->nodes();
  EXPECT_EQ(nodes[1]->args()[3].int_list(), (std::vector<std::int64_t>{2, 2}));
  EXPECT_TRUE(nodes[1]->args()[2].is_none());
  EXPECT_EQ(nodes[1]->kwarg("note").as_string(), "hello");
  EXPECT_EQ(fx::serialize_graph(*parsed), text);
}

TEST(GraphIo, TensorListArguments) {
  auto gm = fx::symbolic_trace(std::function<Value(Value)>([](Value x) {
    return fx::fn::cat({x, fx::fn::neg(x)}, 0);
  }));
  const std::string text = fx::serialize_graph(gm->graph());
  auto parsed = fx::parse_graph(text);
  fx::GraphModule reloaded(gm->root(), std::move(parsed), "Reloaded");
  reloaded.recompile();
  Tensor x = Tensor::randn({3});
  EXPECT_TRUE(allclose(reloaded.run(x), gm->run(x)));
}

// Adversarial string contents: every character class that once broke the
// line-oriented writer (it used to throw on quotes) or could desynchronize
// the balanced scanners must survive a byte-exact round trip.
TEST(GraphIo, AdversarialStringsRoundTrip) {
  const std::vector<std::string> hostile = {
      "",                            // empty
      "it's",                        // the delimiter itself
      "say \"hi\"",                  // double quotes
      "back\\slash",                 // escape character
      "line1\nline2",                // newline would split the record
      "tab\there\rcr",               // other control whitespace
      "pad=[1, 2], stride=(3)",      // brackets that mimic list syntax
      "args=(', kwargs={",           // mimics the record grammar itself
      "\"]} , weird'[(",             // mixed close-brackets inside quotes
      "trailing backslashes \\\\",   // even run of escapes at the end
      "\\'",                         // escape followed by delimiter
  };
  for (const std::string& s : hostile) {
    fx::Graph g;
    fx::Node* x = g.placeholder("x");
    fx::Node* c = g.call_function(
        "dropout", {fx::Argument(x), fx::Argument(s),
                    fx::Argument(std::vector<fx::Argument>{
                        fx::Argument(s), fx::Argument(std::int64_t{7})})},
        {{"note", fx::Argument(s)}, {"other", fx::Argument(std::int64_t{1})}});
    g.output(fx::Argument(c));
    const std::string text = fx::serialize_graph(g);
    std::unique_ptr<fx::Graph> parsed;
    ASSERT_NO_THROW(parsed = fx::parse_graph(text)) << "payload: " << s;
    const auto nodes = parsed->nodes();
    EXPECT_EQ(nodes[1]->args()[1].as_string(), s);
    EXPECT_EQ(nodes[1]->args()[2].list()[0].as_string(), s);
    EXPECT_EQ(nodes[1]->kwarg("note").as_string(), s);
    EXPECT_EQ(nodes[1]->kwarg("other").as_int(), 1);
    EXPECT_EQ(fx::serialize_graph(*parsed), text) << "payload: " << s;
  }
}

TEST(GraphIo, StringParserRejectsMalformedEscapes) {
  // Dangling escape at end-of-string and unknown escape codes are errors,
  // not silent data corruption.
  EXPECT_THROW(
      fx::parse_graph("x = placeholder target=x args=()\n"
                      "y = call_function target=dropout args=(x, 'bad\\q')\n"
                      "out = output target=output args=(y)"),
      std::invalid_argument);
  EXPECT_THROW(
      fx::parse_graph("x = placeholder target=x args=()\n"
                      "y = call_function target=dropout args=(x, 'open"),
      std::invalid_argument);
}

TEST(GraphIo, ParserErrors) {
  EXPECT_THROW(fx::parse_graph("x = bogus_opcode target=t args=()"),
               std::invalid_argument);
  EXPECT_THROW(fx::parse_graph("y = call_function target=relu args=(nope)"),
               std::invalid_argument);
  EXPECT_THROW(fx::parse_graph("garbage"), std::invalid_argument);
  // Use-before-def is caught by the unknown-name check.
  EXPECT_THROW(
      fx::parse_graph("a = call_function target=relu args=(b)\n"
                      "b = placeholder target=b args=()"),
      std::invalid_argument);
}

}  // namespace
}  // namespace fxcpp
