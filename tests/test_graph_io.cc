// Graph serialization round-trip tests: captured programs survive
// save/parse with identical structure and behavior.
#include <gtest/gtest.h>

#include "core/functional.h"
#include "core/graph_io.h"
#include "core/graph_module.h"
#include "core/tracer.h"
#include "nn/models/resnet.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Value;

TEST(GraphIo, RoundTripSimpleFunction) {
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(
      [](Value x) { return fx::fn::relu(x + 3.5).neg(); }));
  const std::string text = fx::serialize_graph(gm->graph());
  auto parsed = fx::parse_graph(text);
  EXPECT_EQ(fx::serialize_graph(*parsed), text);
  EXPECT_EQ(parsed->size(), gm->graph().size());
}

TEST(GraphIo, RoundTripPreservesSemantics) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  const std::string text = fx::serialize_graph(gm->graph());
  auto parsed = fx::parse_graph(text);
  // Rebind against the same hierarchy and execute.
  fx::GraphModule reloaded(gm->root(), std::move(parsed), "Reloaded");
  reloaded.recompile();
  Tensor x = Tensor::randn({1, 3, 32, 32});
  EXPECT_TRUE(allclose(reloaded.run(x), gm->run(x)));
}

TEST(GraphIo, IntsAndFloatsDisambiguated) {
  fx::Graph g;
  fx::Node* x = g.placeholder("x");
  fx::Node* a = g.call_function(
      "dropout", {fx::Argument(x), fx::Argument(0.5), fx::Argument(false)});
  fx::Node* f = g.call_function("flatten",
                                {fx::Argument(a), fx::Argument(std::int64_t{1})});
  g.output(fx::Argument(f));
  auto parsed = fx::parse_graph(fx::serialize_graph(g));
  const auto nodes = parsed->nodes();
  EXPECT_TRUE(nodes[1]->args()[1].is_double());
  EXPECT_TRUE(nodes[1]->args()[2].is_bool());
  EXPECT_TRUE(nodes[2]->args()[1].is_int());
}

TEST(GraphIo, ListsAndStringsAndKwargs) {
  fx::Graph g;
  fx::Node* x = g.placeholder("x");
  fx::Node* c = g.call_function(
      "conv2d",
      {fx::Argument(x), fx::Argument(x), fx::Argument(),
       fx::Argument(std::vector<std::int64_t>{2, 2}),
       fx::Argument(std::vector<std::int64_t>{1, 1})},
      {{"note", fx::Argument("hello")}});
  g.output(fx::Argument(c));
  const std::string text = fx::serialize_graph(g);
  auto parsed = fx::parse_graph(text);
  const auto nodes = parsed->nodes();
  EXPECT_EQ(nodes[1]->args()[3].int_list(), (std::vector<std::int64_t>{2, 2}));
  EXPECT_TRUE(nodes[1]->args()[2].is_none());
  EXPECT_EQ(nodes[1]->kwarg("note").as_string(), "hello");
  EXPECT_EQ(fx::serialize_graph(*parsed), text);
}

TEST(GraphIo, TensorListArguments) {
  auto gm = fx::symbolic_trace(std::function<Value(Value)>([](Value x) {
    return fx::fn::cat({x, fx::fn::neg(x)}, 0);
  }));
  const std::string text = fx::serialize_graph(gm->graph());
  auto parsed = fx::parse_graph(text);
  fx::GraphModule reloaded(gm->root(), std::move(parsed), "Reloaded");
  reloaded.recompile();
  Tensor x = Tensor::randn({3});
  EXPECT_TRUE(allclose(reloaded.run(x), gm->run(x)));
}

TEST(GraphIo, ParserErrors) {
  EXPECT_THROW(fx::parse_graph("x = bogus_opcode target=t args=()"),
               std::invalid_argument);
  EXPECT_THROW(fx::parse_graph("y = call_function target=relu args=(nope)"),
               std::invalid_argument);
  EXPECT_THROW(fx::parse_graph("garbage"), std::invalid_argument);
  // Use-before-def is caught by the unknown-name check.
  EXPECT_THROW(
      fx::parse_graph("a = call_function target=relu args=(b)\n"
                      "b = placeholder target=b args=()"),
      std::invalid_argument);
}

}  // namespace
}  // namespace fxcpp
