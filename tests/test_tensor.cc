// Tensor substrate tests: correctness of kernels against naive references,
// view/aliasing semantics (the Section 2.3 behaviors fx sidesteps), and
// parameterized shape sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/quantized.h"

namespace fxcpp {
namespace {

TEST(Tensor, FactoryAndAccessors) {
  Tensor t = Tensor::zeros({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 3);
  EXPECT_TRUE(t.is_contiguous());
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.at_flat(i), 0.0);

  Tensor o = Tensor::ones({4});
  EXPECT_EQ(o.at_flat(3), 1.0);
  EXPECT_EQ(Tensor::full({2}, 2.5).at_flat(1), 2.5);
  EXPECT_EQ(Tensor::arange(5).at_flat(4), 4.0);
}

TEST(Tensor, ViewsAliasStorage) {
  Tensor t = Tensor::randn({4, 5});
  Tensor v = t.narrow(0, 1, 2);
  EXPECT_TRUE(v.shares_storage_with(t));
  EXPECT_EQ(v.sizes(), (Shape{2, 5}));
  // Mutating the view mutates the base (PyTorch aliasing semantics).
  v.fill_(7.0);
  EXPECT_EQ(t.at_flat(5), 7.0);
  EXPECT_EQ(t.at_flat(14), 7.0);
  EXPECT_NE(t.at_flat(0), 7.0);
}

TEST(Tensor, SelectAndReshape) {
  Tensor t = Tensor::randn({3, 4});
  Tensor row = t.select(1);
  EXPECT_EQ(row.sizes(), (Shape{4}));
  EXPECT_EQ(row.at_flat(2), t.at_flat(6));

  Tensor r = t.reshape({4, 3});
  EXPECT_TRUE(r.shares_storage_with(t));
  Tensor inferred = t.reshape({2, -1});
  EXPECT_EQ(inferred.sizes(), (Shape{2, 6}));
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t = Tensor::randn({8});
  Tensor c = t.clone();
  EXPECT_FALSE(c.shares_storage_with(t));
  c.fill_(0.0);
  EXPECT_NE(t.at_flat(0), 0.0);
}

TEST(Tensor, DtypeConversion) {
  Tensor t = Tensor::from_vector({1.7f, -2.3f, 0.0f}, {3});
  Tensor i = t.to(DType::Int64);
  EXPECT_EQ(i.dtype(), DType::Int64);
  EXPECT_EQ(i.at_flat(0), 1.0);
  EXPECT_EQ(i.at_flat(1), -2.0);
}

TEST(TensorOps, AddBroadcastScalarAndBias) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::from_vector({10, 20, 30}, {3});
  Tensor c = ops::add(a, b);
  EXPECT_EQ(c.at_flat(0), 11.0);
  EXPECT_EQ(c.at_flat(5), 36.0);
  Tensor s = ops::add(a, 1.5);
  EXPECT_EQ(s.at_flat(0), 2.5);
}

TEST(TensorOps, GeneralBroadcast) {
  Tensor a = Tensor::rand({2, 1, 3});
  Tensor b = Tensor::rand({4, 1});
  Tensor c = ops::mul(a, b);
  EXPECT_EQ(c.sizes(), (Shape{2, 4, 3}));
  // Spot check an element.
  EXPECT_NEAR(c.at_flat(0), a.at_flat(0) * b.at_flat(0), 1e-6);
  EXPECT_THROW(ops::add(Tensor::rand({3}), Tensor::rand({4})),
               std::invalid_argument);
}

TEST(TensorOps, UnaryMath) {
  Tensor x = Tensor::from_vector({-1.f, 0.f, 2.f}, {3});
  EXPECT_EQ(ops::relu(x).at_flat(0), 0.0);
  EXPECT_EQ(ops::relu(x).at_flat(2), 2.0);
  EXPECT_EQ(ops::neg(x).at_flat(2), -2.0);
  EXPECT_NEAR(ops::sigmoid(x).at_flat(1), 0.5, 1e-6);
  EXPECT_NEAR(ops::tanh(x).at_flat(2), std::tanh(2.0), 1e-6);
  // GELU fixed points: gelu(0)=0; gelu(x) ~ x for large x.
  EXPECT_NEAR(ops::gelu(x).at_flat(1), 0.0, 1e-7);
  Tensor big = Tensor::full({1}, 10.f);
  EXPECT_NEAR(ops::gelu(big).at_flat(0), 10.0, 1e-4);
  // SELU fixed point at 0 and known positive scaling.
  EXPECT_NEAR(ops::selu(x).at_flat(1), 0.0, 1e-7);
  EXPECT_NEAR(ops::selu(x).at_flat(2), 2.0 * 1.0507009873554805, 1e-5);
}

TEST(TensorOps, MatmulAgainstNaive) {
  const std::int64_t m = 7, k = 5, n = 6;
  Tensor a = Tensor::randn({m, k});
  Tensor b = Tensor::randn({k, n});
  Tensor c = ops::matmul(a, b);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += a.at_flat(i * k + kk) * b.at_flat(kk * n + j);
      }
      EXPECT_NEAR(c.at_flat(i * n + j), acc, 1e-4);
    }
  }
}

TEST(TensorOps, LinearMatchesMatmulPlusBias) {
  Tensor x = Tensor::randn({3, 8});
  Tensor w = Tensor::randn({4, 8});
  Tensor b = Tensor::randn({4});
  Tensor y = ops::linear(x, w, b);
  Tensor ref = ops::add(ops::matmul(x, ops::transpose(w, 0, 1)), b);
  EXPECT_TRUE(allclose(y, ref, 1e-4, 1e-5));
}

// Naive direct convolution as a reference for the im2col kernel.
Tensor conv2d_naive(const Tensor& x, const Tensor& w, const Tensor& b,
                    std::int64_t s, std::int64_t p) {
  const std::int64_t N = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  const std::int64_t O = w.size(0), kh = w.size(2), kw = w.size(3);
  const std::int64_t oh = (H + 2 * p - kh) / s + 1, ow = (W + 2 * p - kw) / s + 1;
  Tensor y = Tensor::zeros({N, O, oh, ow});
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t o = 0; o < O; ++o)
      for (std::int64_t y0 = 0; y0 < oh; ++y0)
        for (std::int64_t x0 = 0; x0 < ow; ++x0) {
          double acc = b.defined() ? b.at_flat(o) : 0.0;
          for (std::int64_t c = 0; c < C; ++c)
            for (std::int64_t ky = 0; ky < kh; ++ky)
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t iy = y0 * s - p + ky, ix = x0 * s - p + kx;
                if (iy < 0 || iy >= H || ix < 0 || ix >= W) continue;
                acc += x.at_flat(((n * C + c) * H + iy) * W + ix) *
                       w.at_flat(((o * C + c) * kh + ky) * kw + kx);
              }
          y.set_flat(((n * O + o) * oh + y0) * ow + x0, acc);
        }
  return y;
}

struct ConvCase {
  std::int64_t n, c, h, o, k, s, p;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, MatchesNaive) {
  const ConvCase cc = GetParam();
  Tensor x = Tensor::randn({cc.n, cc.c, cc.h, cc.h});
  Tensor w = Tensor::randn({cc.o, cc.c, cc.k, cc.k});
  Tensor b = Tensor::randn({cc.o});
  Tensor got = ops::conv2d(x, w, b, {cc.s, cc.s}, {cc.p, cc.p});
  Tensor ref = conv2d_naive(x, w, b, cc.s, cc.p);
  EXPECT_EQ(got.sizes(), ref.sizes());
  EXPECT_LT(max_abs_diff(got, ref), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 5, 1, 3, 1, 0},
                      ConvCase{1, 3, 8, 4, 3, 1, 1},
                      ConvCase{2, 4, 9, 6, 3, 2, 1},
                      ConvCase{1, 2, 7, 3, 1, 1, 0},
                      ConvCase{1, 3, 12, 5, 7, 2, 3},
                      ConvCase{2, 2, 6, 2, 2, 2, 0}));

TEST(TensorOps, MaxPoolKnownValues) {
  Tensor x = Tensor::from_vector({1, 2, 3, 4, 5, 6, 7, 8, 9}, {1, 1, 3, 3});
  Tensor y = ops::max_pool2d(x, {2, 2}, {1, 1}, {0, 0});
  EXPECT_EQ(y.sizes(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(y.at_flat(0), 5.0);
  EXPECT_EQ(y.at_flat(3), 9.0);
}

TEST(TensorOps, AdaptiveAvgPoolToOne) {
  Tensor x = Tensor::rand({2, 3, 5, 7});
  Tensor y = ops::adaptive_avg_pool2d(x, {1, 1});
  EXPECT_EQ(y.sizes(), (Shape{2, 3, 1, 1}));
  // Channel mean check.
  double acc = 0.0;
  for (std::int64_t i = 0; i < 35; ++i) acc += x.at_flat(i);
  EXPECT_NEAR(y.at_flat(0), acc / 35.0, 1e-5);
}

TEST(TensorOps, BatchNormInference) {
  Tensor x = Tensor::randn({2, 3, 4, 4});
  Tensor gamma = Tensor::from_vector({1.f, 2.f, 0.5f}, {3});
  Tensor beta = Tensor::from_vector({0.f, 1.f, -1.f}, {3});
  Tensor mean = Tensor::from_vector({0.1f, -0.2f, 0.3f}, {3});
  Tensor var = Tensor::from_vector({1.f, 0.5f, 2.f}, {3});
  Tensor y = ops::batch_norm(x, gamma, beta, mean, var, 1e-5);
  // Reference for one element in channel 1.
  const double v = x.at_flat(16);  // n=0, c=1, first spatial
  const double expect = (v - (-0.2)) / std::sqrt(0.5 + 1e-5) * 2.0 + 1.0;
  EXPECT_NEAR(y.at_flat(16), expect, 1e-4);
}

TEST(TensorOps, SoftmaxRowsSumToOne) {
  Tensor x = Tensor::randn({4, 9});
  Tensor y = ops::softmax(x, -1);
  for (std::int64_t r = 0; r < 4; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 9; ++c) s += y.at_flat(r * 9 + c);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(TensorOps, LayerNormNormalizes) {
  Tensor x = Tensor::randn({3, 16});
  Tensor y = ops::layer_norm(x, Tensor::ones({16}), Tensor::zeros({16}), 1e-5);
  for (std::int64_t r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t c = 0; c < 16; ++c) mean += y.at_flat(r * 16 + c);
    mean /= 16.0;
    for (std::int64_t c = 0; c < 16; ++c) {
      var += (y.at_flat(r * 16 + c) - mean) * (y.at_flat(r * 16 + c) - mean);
    }
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var / 16.0, 1.0, 1e-2);
  }
}

TEST(TensorOps, CatAlongBothDims) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::from_vector({5, 6, 7, 8}, {2, 2});
  Tensor c0 = ops::cat({a, b}, 0);
  EXPECT_EQ(c0.sizes(), (Shape{4, 2}));
  EXPECT_EQ(c0.at_flat(4), 5.0);
  Tensor c1 = ops::cat({a, b}, 1);
  EXPECT_EQ(c1.sizes(), (Shape{2, 4}));
  EXPECT_EQ(c1.at_flat(2), 5.0);
  EXPECT_EQ(c1.at_flat(4), 3.0);
}

TEST(TensorOps, SumMeanAndSumDim) {
  Tensor x = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_NEAR(ops::sum(x).item(), 21.0, 1e-6);
  EXPECT_NEAR(ops::mean(x).item(), 3.5, 1e-6);
  Tensor s0 = ops::sum_dim(x, 0);
  EXPECT_EQ(s0.sizes(), (Shape{3}));
  EXPECT_EQ(s0.at_flat(0), 5.0);
  Tensor s1 = ops::sum_dim(x, 1);
  EXPECT_EQ(s1.sizes(), (Shape{2}));
  EXPECT_EQ(s1.at_flat(1), 15.0);
}

TEST(TensorOps, EmbeddingLookup) {
  Tensor w = Tensor::randn({10, 4});
  Tensor idx(Shape{3}, DType::Int64);
  idx.set_flat(0, 7);
  idx.set_flat(1, 0);
  idx.set_flat(2, 7);
  Tensor e = ops::embedding(w, idx);
  EXPECT_EQ(e.sizes(), (Shape{3, 4}));
  EXPECT_EQ(e.at_flat(0), w.at_flat(28));
  EXPECT_EQ(e.at_flat(8), e.at_flat(0));
  Tensor bad(Shape{1}, DType::Int64);
  bad.set_flat(0, 99);
  EXPECT_THROW(ops::embedding(w, bad), std::out_of_range);
}

TEST(TensorOps, TransposeRoundTrip) {
  Tensor x = Tensor::randn({3, 5});
  Tensor t = ops::transpose(x, 0, 1);
  EXPECT_EQ(t.sizes(), (Shape{5, 3}));
  EXPECT_EQ(t.at_flat(1), x.at_flat(5));
  Tensor back = ops::transpose(t, 0, 1);
  EXPECT_TRUE(allclose(back, x));
}

TEST(TensorOps, DropoutInferenceIsIdentity) {
  Tensor x = Tensor::randn({64});
  EXPECT_TRUE(allclose(ops::dropout(x, 0.8, /*training=*/false), x));
  Tensor d = ops::dropout(x, 0.5, /*training=*/true);
  int zeros = 0;
  for (std::int64_t i = 0; i < 64; ++i) {
    if (d.at_flat(i) == 0.0) ++zeros;
  }
  EXPECT_GT(zeros, 10);  // p=0.5 over 64 elems: overwhelmingly likely
}

TEST(TensorErrors, DtypeAndShapeGuards) {
  Tensor f = Tensor::zeros({2});
  EXPECT_THROW(f.data<std::int64_t>(), std::logic_error);
  EXPECT_THROW(Tensor().data<float>(), std::logic_error);
  EXPECT_THROW(Tensor::zeros({2, 2}).item(), std::logic_error);
  EXPECT_THROW(ops::matmul(Tensor::randn({2, 3}), Tensor::randn({4, 2})),
               std::invalid_argument);
  EXPECT_THROW(ops::linear(Tensor::randn({2, 3}), Tensor::randn({4, 5}),
                           Tensor()),
               std::invalid_argument);
  EXPECT_THROW(
      ops::conv2d(Tensor::randn({1, 2, 4, 4}), Tensor::randn({1, 3, 3, 3}),
                  Tensor(), {1, 1}, {0, 0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace fxcpp
