// Profiling subsystem: hook ordering on all three engines (including the
// ParallelExecutor at 1/2/8 threads — run under TSan by scripts/check.sh),
// observation-only bit-equality, chrome-trace schema, cost-model join,
// allocator counters, and the Interpreter's last-use intermediate release.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/interpreter.h"
#include "core/op_registry.h"
#include "core/parallel_executor.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "profile/profiler.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Argument;
using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::RtValue;

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

// A diamond with enough arithmetic that every engine exercises real kernels.
std::shared_ptr<GraphModule> diamond_gm() {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* a = g->call_function("matmul", {x, x});
  Node* b = g->call_function("relu", {x});
  Node* c = g->call_function("sigmoid", {b});
  Node* j = g->call_function("add", {a, c});
  g->output(j);
  auto gm = std::make_shared<GraphModule>(nullptr, std::move(g), "Diamond");
  gm->recompile();
  return gm;
}

// --------------------------------------------------------------------------
// ExecHooks contract: strict begin/end bracketing. Thread-safe so the same
// recorder validates the ParallelExecutor (TSan guards the claim).
// --------------------------------------------------------------------------

class RecordingHooks : public fx::ExecHooks {
 public:
  void on_run_begin(std::size_t num_nodes) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++run_begins_;
    announced_nodes_ = num_nodes;
  }
  void on_node_begin(const fx::Node& n) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto& open = open_[std::this_thread::get_id()];
    // Engines never nest node execution on one thread.
    EXPECT_EQ(open, nullptr) << "nested on_node_begin";
    open = &n;
    ++begins_;
  }
  void on_node_end(const fx::Node& n, const fx::RtValue& out) override {
    (void)out;
    std::lock_guard<std::mutex> lock(mu_);
    auto& open = open_[std::this_thread::get_id()];
    EXPECT_EQ(open, &n) << "on_node_end without matching begin on this thread";
    open = nullptr;
    ++ends_;
    ++per_node_[&n];
  }
  void on_run_end() override {
    std::lock_guard<std::mutex> lock(mu_);
    ++run_ends_;
    // A throwing node legitimately leaves its slot open (no on_node_end);
    // record instead of asserting so exception tests can check it too.
    for (auto& [tid, open] : open_) {
      if (open != nullptr) ++open_at_run_end_;
      open = nullptr;
    }
  }

  int run_begins() const { return run_begins_; }
  int run_ends() const { return run_ends_; }
  int begins() const { return begins_; }
  int ends() const { return ends_; }
  int open_at_run_end() const { return open_at_run_end_; }
  std::size_t announced_nodes() const { return announced_nodes_; }
  const std::map<const fx::Node*, int>& per_node() const { return per_node_; }

 private:
  mutable std::mutex mu_;
  int run_begins_ = 0, run_ends_ = 0, begins_ = 0, ends_ = 0;
  int open_at_run_end_ = 0;
  std::size_t announced_nodes_ = 0;
  std::map<std::thread::id, const fx::Node*> open_;
  std::map<const fx::Node*, int> per_node_;
};

TEST(ExecHooks, InterpreterBracketsEveryNode) {
  auto gm = diamond_gm();
  RecordingHooks rec;
  fx::Interpreter interp(*gm);
  interp.set_hooks(&rec);
  interp.run(Tensor::randn({8, 8}));
  // The Interpreter walks every node, placeholders and output included.
  const std::size_t n = gm->graph().nodes().size();
  EXPECT_EQ(rec.announced_nodes(), n);
  EXPECT_EQ(rec.run_begins(), 1);
  EXPECT_EQ(rec.run_ends(), 1);
  EXPECT_EQ(rec.begins(), static_cast<int>(n));
  EXPECT_EQ(rec.ends(), static_cast<int>(n));
  EXPECT_EQ(rec.open_at_run_end(), 0);
  for (const auto& [node, calls] : rec.per_node()) EXPECT_EQ(calls, 1);
}

TEST(ExecHooks, TapeBracketsEveryInstruction) {
  auto gm = diamond_gm();
  RecordingHooks rec;
  const std::vector<RtValue> in{RtValue(Tensor::randn({8, 8}))};
  gm->compiled_graph().run(in, &rec);
  // Tape: placeholders are register fills, so 4 instrs + output = 5 events.
  const std::size_t n = gm->compiled_graph().instrs().size();
  EXPECT_EQ(rec.announced_nodes(), n);
  EXPECT_EQ(rec.begins(), static_cast<int>(n));
  EXPECT_EQ(rec.ends(), static_cast<int>(n));
  EXPECT_EQ(rec.run_begins(), 1);
  EXPECT_EQ(rec.run_ends(), 1);
}

TEST(ExecHooks, ParallelExecutorBracketsAcrossThreadCounts) {
  auto gm = diamond_gm();
  const std::vector<RtValue> in{RtValue(Tensor::randn({8, 8}))};
  const std::size_t n = gm->compiled_graph().instrs().size();
  for (int threads : {1, 2, 8}) {
    RecordingHooks rec;
    fx::ExecutorOptions opts;
    opts.num_threads = threads;
    opts.hooks = &rec;
    fx::ParallelExecutor ex(*gm, opts);
    for (int run = 0; run < 3; ++run) ex.run(in);
    EXPECT_EQ(rec.run_begins(), 3) << threads << " threads";
    EXPECT_EQ(rec.run_ends(), 3) << threads << " threads";
    EXPECT_EQ(rec.begins(), static_cast<int>(3 * n)) << threads << " threads";
    EXPECT_EQ(rec.ends(), static_cast<int>(3 * n)) << threads << " threads";
    for (const auto& [node, calls] : rec.per_node()) {
      EXPECT_EQ(calls, 3) << threads << " threads";
    }
  }
}

TEST(ExecHooks, ParallelHookSeesExceptionRunsEnd) {
  // Even when a node throws, on_run_end still fires and no brackets nest.
  static bool once = [] {
    fx::OpRegistry::functions().add(
        {"fxprof_throw", {"x"}, [](const std::vector<RtValue>&) -> RtValue {
           throw std::runtime_error("fxprof_throw fired");
         }});
    return true;
  }();
  (void)once;
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* boom = g->call_function("fxprof_throw", {x});
  g->output(boom);
  GraphModule gm(nullptr, std::move(g), "Boom");
  gm.recompile();
  RecordingHooks rec;
  fx::ExecutorOptions opts;
  opts.num_threads = 2;
  opts.hooks = &rec;
  fx::ParallelExecutor ex(gm, opts);
  EXPECT_THROW(ex.run({RtValue(Tensor::randn({4, 4}))}), std::runtime_error);
  EXPECT_EQ(rec.run_begins(), 1);
  EXPECT_EQ(rec.run_ends(), 1) << "on_run_end must fire for aborted runs";
  // The throwing node opened but never closed.
  EXPECT_EQ(rec.open_at_run_end(), 1);
  EXPECT_EQ(rec.begins(), rec.ends() + 1);
}

// --------------------------------------------------------------------------
// Profiling is observation-only: bit-identical outputs on every engine.
// --------------------------------------------------------------------------

TEST(Profiler, OutputsBitIdenticalToUnprofiledOnAllEngines) {
  auto model = nn::models::mlp({16, 32, 8});
  model->train(false);
  auto gm = fx::symbolic_trace(model);
  gm->recompile();
  const Tensor x = Tensor::randn({4, 16});
  const std::vector<RtValue> in{RtValue(x)};

  const Tensor ref =
      fx::rt_tensor(gm->compiled_graph().run(in).front());
  ASSERT_TRUE(bit_equal(ref, fx::rt_tensor(fx::Interpreter(*gm).run(in))));

  profile::Profiler prof(*gm);
  EXPECT_TRUE(bit_equal(ref, fx::rt_tensor(prof.run_interpreter(in))));
  EXPECT_TRUE(bit_equal(ref, fx::rt_tensor(prof.run_tape(in).front())));
  for (int threads : {1, 2, 8}) {
    EXPECT_TRUE(
        bit_equal(ref, fx::rt_tensor(prof.run_parallel(in, threads).front())))
        << threads << " threads";
  }
  EXPECT_EQ(prof.runs(), 5u);
}

// --------------------------------------------------------------------------
// Aggregation, cost-model join, memory counters.
// --------------------------------------------------------------------------

TEST(Profiler, AggregatesCallsAcrossRunsAndSortsBySelfTime) {
  auto gm = diamond_gm();
  profile::Profiler prof(*gm);
  const std::vector<RtValue> in{RtValue(Tensor::randn({32, 32}))};
  for (int i = 0; i < 4; ++i) prof.run_tape(in);

  const auto profiles = prof.node_profiles();
  ASSERT_EQ(profiles.size(), gm->compiled_graph().instrs().size());
  for (const auto& p : profiles) {
    EXPECT_EQ(p.calls, 4u) << p.name;
    EXPECT_GE(p.total_seconds, 0.0);
    EXPECT_GE(p.max_seconds, 0.0);
    EXPECT_LE(p.max_seconds, p.total_seconds + 1e-12);
  }
  for (std::size_t i = 1; i < profiles.size(); ++i) {
    EXPECT_GE(profiles[i - 1].total_seconds, profiles[i].total_seconds);
  }
  EXPECT_EQ(prof.runs(), 4u);
  EXPECT_GT(prof.wall_seconds(), 0.0);
  EXPECT_GT(prof.node_seconds(), 0.0);
  EXPECT_LE(prof.node_seconds(), prof.wall_seconds() + 1e-9);
}

TEST(Profiler, CostModelJoinMeasuresFlopsFromTensorInputs) {
  // The graph is freshly built (no ShapeProp meta); the profiler's Tensor
  // inputs let it auto-run ShapeProp through the estimate_cost overload.
  auto gm = diamond_gm();
  profile::Profiler prof(*gm);
  const std::vector<RtValue> in{RtValue(Tensor::randn({32, 32}))};
  prof.run_tape(in);

  bool any_measured = false;
  double matmul_flops = 0.0;
  for (const auto& p : prof.node_profiles()) {
    if (p.measured) any_measured = true;
    if (p.target == "matmul") matmul_flops = p.flops;
    EXPECT_GE(p.achieved_flops_per_sec(), 0.0);
    EXPECT_GE(p.roofline_ratio(), 0.0);
  }
  EXPECT_TRUE(any_measured);
  // 32x32 @ 32x32 matmul: 2 * 32^3 multiply-accumulate ops.
  EXPECT_DOUBLE_EQ(matmul_flops, 2.0 * 32 * 32 * 32);
}

TEST(Profiler, MemoryCountersObserveAllocatorTraffic) {
  auto gm = diamond_gm();
  profile::Profiler prof(*gm);
  const std::vector<RtValue> in{RtValue(Tensor::randn({64, 64}))};
  prof.run_tape(in);
  const profile::MemoryStats& m = prof.memory();
  // Four value-producing instructions each allocate at least one 64x64 fp32
  // buffer (16 KB padded).
  EXPECT_GE(m.allocations, 4);
  EXPECT_GE(m.traffic, 4 * 64 * 64 * 4);
  EXPECT_GE(m.peak, m.live_before);
}

TEST(Profiler, ResetClearsAggregates) {
  auto gm = diamond_gm();
  profile::Profiler prof(*gm);
  const std::vector<RtValue> in{RtValue(Tensor::randn({8, 8}))};
  prof.run_tape(in);
  ASSERT_GT(prof.node_profiles().size(), 0u);
  prof.reset();
  EXPECT_EQ(prof.node_profiles().size(), 0u);
  EXPECT_EQ(prof.events().size(), 0u);
  EXPECT_EQ(prof.runs(), 0u);
  EXPECT_EQ(prof.wall_seconds(), 0.0);
}

// --------------------------------------------------------------------------
// Chrome-trace schema: structurally valid JSON, one complete "X" slice per
// executed node, a thread-name metadata record per lane.
// --------------------------------------------------------------------------

// Minimal structural validator: balanced {}/[] outside strings, escape-aware.
bool json_balanced(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{' || c == '[') stack.push_back(c);
    else if (c == '}') {
      if (stack.empty() || stack.back() != '{') return false;
      stack.pop_back();
    } else if (c == ']') {
      if (stack.empty() || stack.back() != '[') return false;
      stack.pop_back();
    }
  }
  return stack.empty() && !in_str;
}

std::size_t count_occurrences(const std::string& s, const std::string& sub) {
  std::size_t n = 0;
  for (std::size_t pos = s.find(sub); pos != std::string::npos;
       pos = s.find(sub, pos + sub.size())) {
    ++n;
  }
  return n;
}

TEST(ChromeTrace, SchemaHoldsForSerialAndParallelRuns) {
  auto gm = diamond_gm();
  profile::Profiler prof(*gm);
  const std::vector<RtValue> in{RtValue(Tensor::randn({16, 16}))};
  prof.run_tape(in);
  prof.run_parallel(in, 2);

  const std::string json = prof.chrome_trace_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

  const std::size_t instrs = gm->compiled_graph().instrs().size();
  // One complete slice per executed instruction (2 runs), one thread_name
  // metadata record per lane.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), 2 * instrs);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"M\""),
            static_cast<std::size_t>(prof.num_lanes()));
  EXPECT_GE(prof.num_lanes(), 1);
  EXPECT_EQ(prof.events().size(), 2 * instrs);
  for (const auto& ev : prof.events()) {
    EXPECT_GE(ev.dur_us, 0.0);
    EXPECT_GE(ev.start_us, 0.0);
    EXPECT_GE(ev.lane, 0);
    EXPECT_LT(ev.lane, prof.num_lanes());
  }
}

TEST(ChromeTrace, EscapesHostileNodeNames) {
  // Node names flow into JSON strings; targets with quotes/backslashes in
  // attribute paths must not break the trace.
  static bool once = [] {
    fx::OpRegistry::functions().add(
        {"fxprof\"quote\\op", {"x"}, [](const std::vector<RtValue>& a) {
           return a.at(0);
         }});
    return true;
  }();
  (void)once;
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* y = g->call_function("fxprof\"quote\\op", {x});
  g->output(y);
  GraphModule gm(nullptr, std::move(g), "Hostile");
  gm.recompile();
  profile::Profiler prof(gm);
  prof.run_tape({RtValue(Tensor::randn({2, 2}))});
  const std::string json = prof.chrome_trace_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("fxprof\\\"quote\\\\op"), std::string::npos);
  EXPECT_TRUE(json_balanced(prof.summary_json()));
}

TEST(SummaryAndReport, ContainExpectedFieldsAndNodes) {
  auto gm = diamond_gm();
  profile::Profiler prof(*gm);
  const std::vector<RtValue> in{RtValue(Tensor::randn({16, 16}))};
  prof.run_tape(in);

  const std::string summary = prof.summary_json();
  EXPECT_TRUE(json_balanced(summary));
  for (const char* key : {"\"runs\"", "\"lanes\"", "\"wall_seconds\"",
                          "\"node_seconds\"", "\"memory\"", "\"nodes\"",
                          "\"calls\"", "\"measured\"", "\"flops\""}) {
    EXPECT_NE(summary.find(key), std::string::npos) << key;
  }

  const std::string report = prof.text_report();
  EXPECT_NE(report.find("fxprof"), std::string::npos);
  EXPECT_NE(report.find("cost model"), std::string::npos);
  EXPECT_NE(report.find("allocator"), std::string::npos);
  for (const auto& p : prof.node_profiles()) {
    EXPECT_NE(report.find(p.name), std::string::npos) << p.name;
  }
  // top_k truncation note appears when the graph is larger than top_k.
  EXPECT_NE(prof.text_report(2).find("top 2 of"), std::string::npos);
}

TEST(ChromeTrace, ParallelWorkersGetOwnLanes) {
  // A wide graph run with >1 worker; lanes are per executing thread. We
  // can't force overlap on a 1-core container, but lane indices must stay
  // consistent with events and never exceed the worker count + caller.
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  std::vector<Node*> heads;
  for (int b = 0; b < 6; ++b) {
    heads.push_back(g->call_function("matmul", {x, x}));
  }
  Node* acc = heads[0];
  for (std::size_t i = 1; i < heads.size(); ++i) {
    acc = g->call_function("add", {acc, heads[i]});
  }
  g->output(acc);
  GraphModule gm(nullptr, std::move(g), "Wide");
  gm.recompile();
  profile::Profiler prof(gm);
  prof.run_parallel({RtValue(Tensor::randn({48, 48}))}, 4);
  EXPECT_GE(prof.num_lanes(), 1);
  EXPECT_LE(prof.num_lanes(), 5);
  EXPECT_EQ(prof.events().size(), gm.compiled_graph().instrs().size());
}

// --------------------------------------------------------------------------
// Interpreter lifetime fix: intermediates leave env_ at their last use, so
// a deep chain peaks at O(live set), not O(depth).
// --------------------------------------------------------------------------

TEST(InterpreterMemory, DeepChainPeaksAtLiveSetNotDepth) {
  constexpr int kDepth = 32;
  constexpr std::int64_t kBuf = 256 * 256 * 4;  // one fp32 intermediate
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* h = x;
  for (int i = 0; i < kDepth; ++i) h = g->call_function("relu", {h});
  g->output(h);
  GraphModule gm(nullptr, std::move(g), "DeepChain");
  gm.recompile();

  const Tensor in = Tensor::randn({256, 256});
  const Tensor want = fx::rt_tensor(
      gm.compiled_graph().run({RtValue(in)}).front());

  const std::int64_t live0 = Storage::live_bytes();
  Storage::reset_peak();
  fx::Interpreter interp(gm);
  const RtValue out = interp.run(in);
  const std::int64_t peak_delta = Storage::peak_bytes() - live0;

  // Before the fix env_ retained all 32 intermediates (~32 buffers); with
  // last-use release the live set is a handful regardless of depth.
  EXPECT_LT(peak_delta, 6 * kBuf)
      << "interpreter retained intermediates past their last use";
  EXPECT_TRUE(bit_equal(want, fx::rt_tensor(out)));
}

TEST(InterpreterMemory, UnusedValuesAreDroppedImmediately) {
  // A node with no users should not pin its buffer for the whole run.
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  g->call_function("matmul", {x, x});  // dead: never consumed
  Node* keep = g->call_function("relu", {x});
  g->output(keep);
  GraphModule gm(nullptr, std::move(g), "DeadValue");
  // No recompile: the tape would DCE differently; this pins Interpreter::run.
  const Tensor in = Tensor::randn({64, 64});
  fx::Interpreter interp(gm);
  const RtValue out = interp.run(in);
  EXPECT_TRUE(bit_equal(ops::relu(in), fx::rt_tensor(out)));
}

// --------------------------------------------------------------------------
// Storage allocator counters.
// --------------------------------------------------------------------------

TEST(StorageCounters, TrackLivePeakAndTraffic) {
  const std::int64_t live0 = Storage::live_bytes();
  const std::int64_t total0 = Storage::total_allocated_bytes();
  const std::int64_t count0 = Storage::allocation_count();
  Storage::reset_peak();
  {
    const Tensor a = Tensor::zeros({128, 128});  // 64 KB, already aligned
    EXPECT_EQ(Storage::live_bytes() - live0, 128 * 128 * 4);
    EXPECT_GE(Storage::peak_bytes() - live0, 128 * 128 * 4);
    {
      const Tensor b = Tensor::zeros({128, 128});
      EXPECT_EQ(Storage::live_bytes() - live0, 2 * 128 * 128 * 4);
    }
    EXPECT_EQ(Storage::live_bytes() - live0, 128 * 128 * 4)
        << "freeing a tensor must decrement live bytes";
    EXPECT_GE(Storage::peak_bytes() - live0, 2 * 128 * 128 * 4)
        << "peak keeps the high-water mark after the free";
  }
  EXPECT_EQ(Storage::live_bytes(), live0);
  EXPECT_EQ(Storage::total_allocated_bytes() - total0, 2 * 128 * 128 * 4);
  EXPECT_EQ(Storage::allocation_count() - count0, 2);
  Storage::reset_peak();
  EXPECT_EQ(Storage::peak_bytes(), Storage::live_bytes());
}

TEST(StorageCounters, SharedStorageCountsOnce) {
  const std::int64_t live0 = Storage::live_bytes();
  const Tensor a = Tensor::zeros({32, 32});
  const Tensor view = a.reshape({1024});  // shares storage
  EXPECT_EQ(Storage::live_bytes() - live0, 32 * 32 * 4);
}

}  // namespace
}  // namespace fxcpp
