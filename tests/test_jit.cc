// jit baseline front-end tests (Figure 5): the script IR must be much
// larger than the trace IR, which must be larger than the fx IR, on the
// same ResNet-50 topology — the paper's IR-complexity ordering.
#include <gtest/gtest.h>

#include "core/tracer.h"
#include "jit/script.h"
#include "jit/trace.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet.h"

namespace fxcpp {
namespace {

TEST(JitIr, BuilderAndPrinting) {
  jit::JGraph g;
  const std::string self = g.add_input("self");
  const std::string x = g.add_input("x");
  const std::string w = g.emit("prim::GetAttr", {self}, "name=\"weight\"");
  const std::string lst = g.int_list({2, 2});
  const std::string y = g.emit("aten::conv2d", {x, w, lst});
  g.emit_void("prim::Return", {y});
  EXPECT_EQ(g.count_ops(), 6);  // getattr + 2 const + list + conv + return
  EXPECT_EQ(g.count_kind("prim::Constant"), 2);
  const std::string s = g.to_string();
  EXPECT_NE(s.find("prim::GetAttr[name=\"weight\"]"), std::string::npos);
  EXPECT_NE(s.find("aten::conv2d"), std::string::npos);
}

TEST(JitIr, SubBlocksCounted) {
  jit::JGraph g;
  const std::string c = g.const_bool(true);
  g.emit("prim::If", {c});
  {
    jit::JGraph::BlockScope b(g, g.last_node());
    g.const_int(1);
    g.const_int(2);
  }
  EXPECT_EQ(g.count_ops(), 4);
  EXPECT_NE(g.to_string().find("block:"), std::string::npos);
}

TEST(JitScript, EmitsControlFlowForResidualBlocks) {
  auto model = nn::models::resnet18(8, 10);
  auto g = jit::script(*model);
  // Every BasicBlock contributes a downsample prim::If; Conv2d adds a
  // padding-mode If; BatchNorm adds assert + training Ifs.
  EXPECT_GT(g->count_kind("prim::If"), 20);
  EXPECT_GT(g->count_kind("prim::Constant"), 200);
  EXPECT_GT(g->count_kind("prim::ListConstruct"), 50);
  EXPECT_EQ(g->count_kind("aten::conv2d"), 20);
  EXPECT_EQ(g->count_kind("aten::batch_norm"), 20);
}

TEST(JitTrace, RecordsConstantsButNoControlFlow) {
  auto model = nn::models::resnet18(8, 10);
  auto gm = fx::symbolic_trace(model);
  auto g = jit::trace(*gm);
  EXPECT_EQ(g->count_kind("prim::If"), 0);
  EXPECT_EQ(g->count_kind("prim::Loop"), 0);
  // Constants are pooled (as after TorchScript's ConstantPooling pass) but
  // list construction and attribute chains are still materialized.
  EXPECT_GT(g->count_kind("prim::Constant"), 5);
  EXPECT_GT(g->count_kind("prim::ListConstruct"), 50);
  EXPECT_GT(g->count_kind("prim::GetAttr"), 50);
  EXPECT_EQ(g->count_kind("aten::conv2d"), 20);
}

// The paper's headline ordering (Section 6.1): fx < trace < script, with fx
// roughly half of trace and script several times trace.
TEST(JitComparison, Figure5OrderingOnResNet50) {
  auto model = nn::models::resnet50(8, 100);
  auto gm = fx::symbolic_trace(model);
  const int fx_ops = static_cast<int>(gm->graph().size());

  auto traced = jit::trace(*gm);
  const int trace_ops = traced->count_ops();

  auto scripted = jit::script(*model);
  const int script_ops = scripted->count_ops();

  EXPECT_LT(fx_ops, trace_ops);
  EXPECT_LT(trace_ops, script_ops);
  EXPECT_LT(2 * fx_ops, trace_ops);       // fx is less than half of trace
  EXPECT_GT(script_ops, trace_ops * 3 / 2);  // script is far richer still
}

TEST(JitScript, MlpFallbackChain) {
  auto model = nn::models::mlp({8, 16, 4}, "relu");
  auto g = jit::script(*model);
  EXPECT_EQ(g->count_kind("aten::linear"), 2);
  EXPECT_EQ(g->count_kind("aten::relu"), 1);
  EXPECT_GT(g->count_kind("prim::GetAttr"), 4);
}

}  // namespace
}  // namespace fxcpp
