// TRTSim backend tests (Section 6.4): engine numerics vs eager execution,
// build-time fusion stats, static-shape enforcement, and automatic model
// splitting around unsupported operators.
#include <gtest/gtest.h>

#include "core/functional.h"
#include "core/tracer.h"
#include "nn/models/learning_to_paint.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet.h"
#include "tensor/ops.h"
#include "trt/lower.h"

namespace fxcpp {
namespace {

using fx::Node;
using fx::Value;

TEST(Engine, MlpMatchesEager) {
  auto model = nn::models::mlp({16, 32, 8}, "relu");
  auto gm = fx::symbolic_trace(model);
  auto engine = trt::Engine::build(*gm, {4, 16});
  Tensor x = Tensor::randn({4, 16});
  EXPECT_TRUE(allclose(engine->run(x), gm->run(x), 1e-4, 1e-5));
  // linear+relu fused once.
  EXPECT_EQ(engine->stats().fused_relus, 1);
}

TEST(Engine, ResNet18MatchesEagerAndFuses) {
  auto model = nn::models::resnet18(8, 10);
  auto gm = fx::symbolic_trace(model);
  auto engine = trt::Engine::build(*gm, {1, 3, 32, 32});
  Tensor x = Tensor::randn({1, 3, 32, 32});
  Tensor eager = gm->run(x);
  Tensor fast = engine->run(x);
  EXPECT_LT(max_abs_diff(fast, eager), 1e-2);
  EXPECT_EQ(engine->stats().fused_batchnorms, 20);
  EXPECT_GT(engine->stats().fused_relus, 8);
  EXPECT_GT(engine->stats().arena_bytes, 0u);
}

TEST(Engine, LearningToPaintActorMatchesEager) {
  auto model = nn::models::learning_to_paint_actor({9, 65, 8});
  auto gm = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  auto engine = trt::Engine::build(*gm, {1, 9, 32, 32});
  Tensor x = Tensor::randn({1, 9, 32, 32});
  EXPECT_LT(max_abs_diff(engine->run(x), gm->run(x)), 1e-3);
}

TEST(Engine, MemoryPlannerReusesBuffers) {
  // A 12-layer chain of equal-size relus needs only ~2 live buffers, so the
  // arena must be far smaller than 12 distinct outputs.
  auto f = [](Value x) -> Value {
    for (int i = 0; i < 12; ++i) x = fx::fn::relu(x);
    return x;
  };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  auto engine = trt::Engine::build(*gm, {64, 64});
  const std::size_t one_buffer = 64 * 64 * 4;
  EXPECT_LE(engine->stats().arena_bytes, 3 * one_buffer);
  Tensor x = Tensor::randn({64, 64});
  EXPECT_TRUE(allclose(engine->run(x), ops::relu(x)));
}

TEST(Engine, StaticShapeEnforced) {
  auto model = nn::models::mlp({8, 8});
  auto gm = fx::symbolic_trace(model);
  auto engine = trt::Engine::build(*gm, {2, 8});
  EXPECT_THROW(engine->run(Tensor::randn({3, 8})), std::invalid_argument);
}

TEST(Engine, UnsupportedOpRejected) {
  auto f = [](Value x) -> Value { return fx::fn::gelu(x); };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  EXPECT_THROW(trt::Engine::build(*gm, {2, 2}), std::invalid_argument);
}

TEST(Lower, FullySupportedModelBecomesOneEngine) {
  auto model = nn::models::resnet18(8, 10);
  auto gm = fx::symbolic_trace(model);
  Tensor x = Tensor::randn({1, 3, 32, 32});
  auto lowered = trt::lower_to_trtsim(gm, x);
  EXPECT_EQ(lowered.engine_segments, 1);
  EXPECT_EQ(lowered.eager_segments, 0);
  EXPECT_LT(max_abs_diff(lowered.module->run(x), gm->run(x)), 1e-2);
}

TEST(Lower, AutoSplitAroundUnsupportedOp) {
  // conv/relu (supported) -> gelu (unsupported) -> linear chain (supported):
  // expect engine / eager / engine segments, like the paper's automatic
  // scheduling of unsupported operations in non-optimized blocks.
  class Mixed : public nn::Module {
   public:
    Mixed() : nn::Module("Mixed") {
      register_module("conv", std::make_shared<nn::Conv2d>(3, 4, 3, 1, 1));
      register_module("relu", std::make_shared<nn::ReLU>());
      register_module("gelu", std::make_shared<nn::GELU>());
      register_module("flat", std::make_shared<nn::Flatten>(1));
      register_module("fc", std::make_shared<nn::Linear>(4 * 8 * 8, 10));
    }
    Value forward(const std::vector<Value>& in) override {
      Value x = (*get_submodule("conv"))(in.at(0));
      x = (*get_submodule("relu"))(x);
      x = (*get_submodule("gelu"))(x);  // not in the support table
      x = (*get_submodule("flat"))(x);
      return (*get_submodule("fc"))(x);
    }
  };
  auto model = std::make_shared<Mixed>();
  auto gm = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  Tensor x = Tensor::randn({1, 3, 8, 8});
  Tensor eager = gm->run(x);
  auto lowered = trt::lower_to_trtsim(gm, x);
  EXPECT_EQ(lowered.engine_segments, 2);
  EXPECT_EQ(lowered.eager_segments, 1);
  EXPECT_LT(max_abs_diff(lowered.module->run(x), eager), 1e-3);
}

TEST(Lower, LoweredModuleIsStillAModule) {
  // Section 5.4's interoperability claim holds for lowered models too: the
  // result is a GraphModule usable as a submodule and re-traceable.
  auto model = nn::models::mlp({8, 16, 4}, "relu");
  auto gm = fx::symbolic_trace(model);
  Tensor x = Tensor::randn({2, 8});
  auto lowered = trt::lower_to_trtsim(gm, x);
  auto retraced = fx::symbolic_trace(
      std::static_pointer_cast<nn::Module>(lowered.module));
  EXPECT_TRUE(allclose(retraced->run(x), gm->run(x), 1e-4, 1e-5));
}

}  // namespace
}  // namespace fxcpp
