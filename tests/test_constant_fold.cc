// Constant folding over the constness analysis: stats/semantics on traced
// models, PassValidator differential validation, root-less baking, the
// max_bytes cap, composition of repeated folds (name collisions), impure-op
// exclusion, and a seeded differential fuzz proving folded graphs stay
// bit-equal to unfolded ones across interpreter / serial tape / parallel
// x{1,2,8}.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/pass_validator.h"
#include "core/functional.h"
#include "core/interpreter.h"
#include "core/tracer.h"
#include "passes/cleanup.h"
#include "passes/constant_folding.h"
#include "runtime/rng.h"

namespace fxcpp {
namespace {

using fx::Argument;
using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::RtValue;
using fx::Value;

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

int count_op(const Graph& g, const std::string& target) {
  int n = 0;
  for (const Node* node : g.nodes()) {
    if (node->target() == target) ++n;
  }
  return n;
}

class ParamExprModel : public nn::Module {
 public:
  ParamExprModel() : nn::Module("ParamExprModel") {
    register_parameter("w1", Tensor::randn({4}));
    register_parameter("w2", Tensor::randn({4}));
  }
  Value forward(const std::vector<Value>& in) override {
    return in.at(0) + fx::fn::relu(param_value("w1") + param_value("w2"));
  }
};

TEST(ConstantFold, BakesParamConeIntoOneGetAttr) {
  auto model = std::make_shared<ParamExprModel>();
  auto gm = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  const Tensor x = Tensor::randn({4});
  const Tensor before = gm->run(x);

  const passes::FoldStats stats = passes::constant_folding(*gm);
  EXPECT_EQ(stats.folded, 1);  // relu(w1 + w2) is the single boundary root
  EXPECT_GE(stats.erased, 3);  // two get_attrs + the inner add (+ the relu)
  ASSERT_EQ(stats.attr_names.size(), 1u);
  EXPECT_EQ(stats.baked_bytes, 4 * sizeof(float));

  // Exactly x + <baked> remains, and the baked tensor lives on the root.
  EXPECT_EQ(count_op(gm->graph(), "add"), 1);
  EXPECT_EQ(count_op(gm->graph(), "relu"), 0);
  EXPECT_TRUE(model->has_parameter(stats.attr_names[0]));
  EXPECT_TRUE(bit_equal(gm->run(x), before));
}

TEST(ConstantFold, LegacyEntryPointDelegates) {
  auto gm = fx::symbolic_trace(
      std::static_pointer_cast<nn::Module>(std::make_shared<ParamExprModel>()));
  EXPECT_EQ(passes::constant_fold(*gm), 1);
}

TEST(ConstantFold, ValidatedByPassValidator) {
  auto gm = fx::symbolic_trace(
      std::static_pointer_cast<nn::Module>(std::make_shared<ParamExprModel>()));
  analysis::ValidationOptions opts;
  opts.trials = 2;
  analysis::PassValidator validator(opts);
  const analysis::ValidationReport rep = validator.validate(
      *gm,
      [](GraphModule& m) { EXPECT_EQ(passes::constant_folding(m).folded, 1); },
      {Shape{4}});
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(ConstantFold, RootlessModuleBakesOnItself) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* w = g->get_attr("w");
  Node* c = g->call_function("mul", {Argument(w), Argument(3.0)});
  g->output(g->call_function("add", {x, c}));
  auto gm = std::make_shared<GraphModule>(nullptr, std::move(g), "NoRoot");
  gm->set_parameter("w", Tensor::randn({4}));
  gm->recompile();
  const Tensor in = Tensor::randn({4});
  const Tensor before = gm->run(in);

  const passes::FoldStats stats = passes::constant_folding(*gm);
  EXPECT_EQ(stats.folded, 1);
  ASSERT_EQ(stats.attr_names.size(), 1u);
  EXPECT_TRUE(gm->has_parameter(stats.attr_names[0]));
  EXPECT_EQ(count_op(gm->graph(), "mul"), 0);
  EXPECT_TRUE(bit_equal(gm->run(in), before));
}

TEST(ConstantFold, MaxBytesCapSkipsLargeTensors) {
  auto gm = fx::symbolic_trace(
      std::static_pointer_cast<nn::Module>(std::make_shared<ParamExprModel>()));
  passes::FoldOptions opts;
  opts.max_bytes = 8;  // the folded value is 16 bytes
  const passes::FoldStats stats = passes::constant_folding(*gm, opts);
  EXPECT_EQ(stats.folded, 0);
  EXPECT_EQ(count_op(gm->graph(), "relu"), 1);  // graph untouched
}

TEST(ConstantFold, RepeatedFoldsComposeWithoutNameCollisions) {
  // Two independent const cones; the root already owns a "_folded_0"
  // parameter, so fresh names must skip past it.
  class M : public nn::Module {
   public:
    M() : nn::Module("M") {
      register_parameter("a", Tensor::randn({4}));
      register_parameter("b", Tensor::randn({4}));
      register_parameter("_folded_0", Tensor::randn({4}));
    }
    Value forward(const std::vector<Value>& in) override {
      return (in.at(0) + fx::fn::relu(param_value("a"))) +
             fx::fn::tanh(param_value("b"));
    }
  };
  auto model = std::make_shared<M>();
  auto gm = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  const Tensor x = Tensor::randn({4});
  const Tensor before = gm->run(x);

  const passes::FoldStats stats = passes::constant_folding(*gm);
  EXPECT_EQ(stats.folded, 2);
  ASSERT_EQ(stats.attr_names.size(), 2u);
  EXPECT_NE(stats.attr_names[0], "_folded_0");  // pre-seeded name skipped
  EXPECT_NE(stats.attr_names[0], stats.attr_names[1]);
  EXPECT_TRUE(bit_equal(gm->run(x), before));

  // Idempotent: a second fold finds nothing new.
  EXPECT_EQ(passes::constant_folding(*gm).folded, 0);
}

TEST(ConstantFold, ImpureOpsAreNotFolded) {
  class M : public nn::Module {
   public:
    M() : nn::Module("M") { register_parameter("w", Tensor::randn({4})); }
    Value forward(const std::vector<Value>& in) override {
      // dropout's RNG makes the cone non-constant even on a const input.
      return in.at(0) + fx::fn::dropout(param_value("w"), 0.5, true);
    }
  };
  auto gm = fx::symbolic_trace(
      std::static_pointer_cast<nn::Module>(std::make_shared<M>()));
  EXPECT_EQ(passes::constant_folding(*gm).folded, 0);
  EXPECT_EQ(count_op(gm->graph(), "dropout"), 1);
}

// --------------------------------------------------------------------------
// Differential fuzz: folded == unfolded, bit for bit, on every engine
// --------------------------------------------------------------------------

constexpr std::int64_t kSide = 4;

Tensor random_tensor(rt::Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(kSide * kSide));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return Tensor::from_vector(v, {kSide, kSide});
}

// Random DAG seeded with get_attr-rooted constant cones: the pool carries a
// per-node "const" tag mirroring what ConstnessAnalysis should compute, so
// every case mixes foldable and unfoldable regions.
struct FuzzCase {
  std::shared_ptr<GraphModule> gm;
  std::vector<Tensor> inputs;
};

FuzzCase random_const_dag(std::uint64_t seed) {
  rt::Rng rng(seed);
  auto g = std::make_unique<Graph>();
  std::vector<Node*> pool;

  pool.push_back(g->placeholder("x"));
  const int n_params = 1 + static_cast<int>(rng.randint(0, 2));
  for (int i = 0; i < n_params; ++i) {
    pool.push_back(g->get_attr("p" + std::to_string(i)));
  }

  static const char* kBinary[] = {"add", "sub", "mul"};
  static const char* kUnary[] = {"relu", "neg", "sigmoid", "tanh", "gelu"};

  const int n_ops = 6 + static_cast<int>(rng.randint(0, 14));
  for (int i = 0; i < n_ops; ++i) {
    auto pick = [&]() -> Node* {
      return pool[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(pool.size()) - 1))];
    };
    Node* n = nullptr;
    switch (rng.randint(0, 3)) {
      case 0:
        n = g->call_function(kBinary[rng.randint(0, 2)], {pick(), pick()});
        break;
      case 1:
        n = g->call_function(kUnary[rng.randint(0, 4)], {pick()});
        break;
      case 2:
        n = g->call_function(kBinary[rng.randint(0, 2)],
                             {pick(), Argument(rng.uniform(-2.0, 2.0))});
        break;
      default:
        n = g->call_function("matmul", {pick(), pick()});
        break;
    }
    pool.push_back(n);
  }

  std::vector<Node*> sinks;
  for (Node* n : pool) {
    if (n->op() == fx::Opcode::Placeholder) continue;
    if (n->users().empty()) sinks.push_back(n);
  }
  Node* acc = sinks.at(0);
  for (std::size_t i = 1; i < sinks.size(); ++i) {
    acc = g->call_function("add", {acc, sinks[i]});
  }
  // Mix the placeholder back in so the output is never fully constant.
  acc = g->call_function("add", {acc, pool[0]});
  g->output(acc);

  FuzzCase fc;
  fc.gm = std::make_shared<GraphModule>(nullptr, std::move(g), "ConstFuzz");
  for (int i = 0; i < n_params; ++i) {
    fc.gm->set_parameter("p" + std::to_string(i), random_tensor(rng));
  }
  fc.gm->recompile();
  fc.inputs.push_back(random_tensor(rng));
  return fc;
}

TEST(ConstantFoldFuzz, FoldedBitEqualAcrossAllEngines) {
  int total_folded = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    FuzzCase fc = random_const_dag(seed);
    const std::vector<RtValue> rt_in{RtValue(fc.inputs[0])};

    fx::Interpreter interp(*fc.gm);
    const Tensor ref = fx::rt_tensor(interp.run(rt_in));

    const passes::FoldStats stats = passes::constant_folding(*fc.gm);
    total_folded += stats.folded;

    fx::Interpreter folded_interp(*fc.gm);
    EXPECT_TRUE(bit_equal(ref, fx::rt_tensor(folded_interp.run(rt_in))))
        << "interpreter, seed " << seed;
    EXPECT_TRUE(bit_equal(ref, fc.gm->run(fc.inputs)))
        << "serial tape, seed " << seed;
    for (int threads : {1, 2, 8}) {
      EXPECT_TRUE(bit_equal(ref, fc.gm->run_parallel(fc.inputs, threads)))
          << "parallel x" << threads << ", seed " << seed;
    }
  }
  // The corpus must actually exercise folding, not vacuously pass.
  EXPECT_GT(total_folded, 10);
}

}  // namespace
}  // namespace fxcpp
