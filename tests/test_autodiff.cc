// Reverse-mode autodiff as a graph transform: gradients checked against
// central finite differences on functions, modules, and full models.
#include <gtest/gtest.h>

#include <cmath>

#include "core/functional.h"
#include "core/tracer.h"
#include "runtime/rng.h"
#include "nn/models/mlp.h"
#include "passes/autodiff.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Value;

// d(sum f(x))/dx_i by central differences.
Tensor finite_diff_input(fx::GraphModule& gm, const Tensor& x,
                         double eps = 1e-3) {
  Tensor grad(x.sizes(), DType::Float32);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x.clone();
    xp.set_flat(i, x.at_flat(i) + eps);
    Tensor xm = x.clone();
    xm.set_flat(i, x.at_flat(i) - eps);
    const double fp = ops::sum(gm.run(xp)).item();
    const double fm = ops::sum(gm.run(xm)).item();
    grad.set_flat(i, (fp - fm) / (2.0 * eps));
  }
  return grad;
}

// d(sum f)/dparam_i by central differences for a named parameter.
Tensor finite_diff_param(fx::GraphModule& gm, const std::string& name,
                         const Tensor& x, double eps = 1e-3) {
  Tensor p = gm.root()->get_parameter(name);
  Tensor grad(p.sizes(), DType::Float32);
  for (std::int64_t i = 0; i < p.numel(); ++i) {
    const double orig = p.at_flat(i);
    Tensor pp = p.clone();
    pp.set_flat(i, orig + eps);
    gm.root()->set_parameter(name, pp);
    gm.recompile();
    const double fp = ops::sum(gm.run(x)).item();
    Tensor pm = p.clone();
    pm.set_flat(i, orig - eps);
    gm.root()->set_parameter(name, pm);
    gm.recompile();
    const double fm = ops::sum(gm.run(x)).item();
    grad.set_flat(i, (fp - fm) / (2.0 * eps));
  }
  gm.root()->set_parameter(name, p);
  gm.recompile();
  return grad;
}

Tensor grad_of(const std::vector<std::pair<std::string, Tensor>>& grads,
               const std::string& name) {
  for (const auto& [n, g] : grads) {
    if (n == name) return g;
  }
  throw std::out_of_range("no gradient named " + name);
}

TEST(Autodiff, ElementwiseChain) {
  rt::Rng::global().reseed(77);
  auto gm = fx::symbolic_trace(std::function<Value(Value)>([](Value x) {
    return fx::fn::tanh(fx::fn::mul(fx::fn::sigmoid(x), 2.0) - 0.5);
  }));
  Tensor x = Tensor::randn({6});
  auto gg = passes::build_gradient_graph(*gm, {x});
  Tensor got = grad_of(gg.run({x}), "x");
  Tensor want = finite_diff_input(*gm, x);
  EXPECT_LT(max_abs_diff(got, want), 1e-3);
}

TEST(Autodiff, ProductAndQuotientRules) {
  fx::Tracer tracer;
  auto gm = tracer.trace_function(
      [](const std::vector<Value>& in) {
        return fx::fn::div(fx::fn::mul(in.at(0), in.at(1)),
                           fx::fn::add(fx::fn::mul(in.at(1), in.at(1)), 1.0));
      },
      {"a", "b"});
  Tensor a = Tensor::randn({5}), b = Tensor::randn({5});
  auto gg = passes::build_gradient_graph(*gm, {a, b});
  const auto grads = gg.run({a, b});
  // Analytic: f = a*b/(b^2+1); df/da = b/(b^2+1).
  Tensor da = grad_of(grads, "a");
  for (std::int64_t i = 0; i < 5; ++i) {
    const double bv = b.at_flat(i);
    EXPECT_NEAR(da.at_flat(i), bv / (bv * bv + 1.0), 1e-4);
  }
}

TEST(Autodiff, LinearLayerMatchesFiniteDifferences) {
  rt::Rng::global().reseed(77);
  auto model = nn::models::mlp({6, 4}, "relu");
  auto gm = fx::symbolic_trace(model);
  Tensor x = Tensor::randn({3, 6});
  auto gg = passes::build_gradient_graph(*gm, {x});
  const auto grads = gg.run({x});

  EXPECT_LT(max_abs_diff(grad_of(grads, "x"), finite_diff_input(*gm, x)),
            2e-3);
  EXPECT_LT(max_abs_diff(grad_of(grads, "body.0.weight"),
                         finite_diff_param(*gm, "body.0.weight", x)),
            2e-2);
  EXPECT_LT(max_abs_diff(grad_of(grads, "body.0.bias"),
                         finite_diff_param(*gm, "body.0.bias", x)),
            2e-2);
}

TEST(Autodiff, DeepMlpWithActivations) {
  rt::Rng::global().reseed(77);
  auto model = nn::models::mlp({5, 8, 8, 3}, "tanh");
  auto gm = fx::symbolic_trace(model);
  Tensor x = Tensor::randn({2, 5});
  auto gg = passes::build_gradient_graph(*gm, {x});
  const auto grads = gg.run({x});
  EXPECT_LT(max_abs_diff(grad_of(grads, "x"), finite_diff_input(*gm, x)),
            5e-3);
  EXPECT_LT(max_abs_diff(grad_of(grads, "body.2.weight"),
                         finite_diff_param(*gm, "body.2.weight", x)),
            5e-2);
}

TEST(Autodiff, ConvolutionGradients) {
  // Smooth activation: finite differences are exact to O(eps^2) only away
  // from ReLU kinks, so the reference uses tanh.
  class ConvNet : public nn::Module {
   public:
    ConvNet() : nn::Module("ConvNet") {
      register_module("conv", std::make_shared<nn::Conv2d>(2, 3, 3, 1, 1));
      register_module("act", std::make_shared<nn::Tanh>());
    }
    Value forward(const std::vector<Value>& in) override {
      return fx::fn::mean((*get_submodule("act"))((*get_submodule("conv"))(in.at(0))));
    }
  };
  rt::Rng::global().reseed(1234);  // deterministic weights/inputs
  auto model = std::make_shared<ConvNet>();
  auto gm = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  Tensor x = Tensor::randn({1, 2, 5, 5});
  auto gg = passes::build_gradient_graph(*gm, {x});
  const auto grads = gg.run({x});
  EXPECT_LT(max_abs_diff(grad_of(grads, "x"), finite_diff_input(*gm, x)),
            2e-3);
  EXPECT_LT(max_abs_diff(grad_of(grads, "conv.weight"),
                         finite_diff_param(*gm, "conv.weight", x)),
            2e-3);
  EXPECT_LT(max_abs_diff(grad_of(grads, "conv.bias"),
                         finite_diff_param(*gm, "conv.bias", x)),
            2e-3);
}

TEST(Autodiff, BatchNormEvalGradients) {
  rt::Rng::global().reseed(77);
  class BnNet : public nn::Module {
   public:
    BnNet() : nn::Module("BnNet") {
      auto bn = std::make_shared<nn::BatchNorm2d>(2);
      // Non-trivial statistics so the affine path is exercised.
      bn->param("running_mean") = Tensor::from_vector({0.3f, -0.7f}, {2});
      bn->param("running_var") = Tensor::from_vector({1.5f, 0.6f}, {2});
      bn->param("weight") = Tensor::from_vector({1.2f, 0.8f}, {2});
      bn->param("bias") = Tensor::from_vector({0.1f, -0.2f}, {2});
      register_module("bn", bn);
    }
    Value forward(const std::vector<Value>& in) override {
      return fx::fn::sum((*get_submodule("bn"))(in.at(0)));
    }
  };
  auto model = std::make_shared<BnNet>();
  auto gm = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  Tensor x = Tensor::randn({2, 2, 3, 3});
  auto gg = passes::build_gradient_graph(*gm, {x});
  const auto grads = gg.run({x});
  EXPECT_LT(max_abs_diff(grad_of(grads, "x"), finite_diff_input(*gm, x)),
            2e-3);
  EXPECT_LT(max_abs_diff(grad_of(grads, "bn.weight"),
                         finite_diff_param(*gm, "bn.weight", x)),
            2e-2);
  EXPECT_LT(max_abs_diff(grad_of(grads, "bn.bias"),
                         finite_diff_param(*gm, "bn.bias", x)),
            2e-2);
}

TEST(Autodiff, UnusedInputGetsZeroGradient) {
  fx::Tracer tracer;
  auto gm = tracer.trace_function(
      [](const std::vector<Value>& in) { return fx::fn::relu(in.at(0)); },
      {"a", "b"});
  Tensor a = Tensor::randn({3}), b = Tensor::randn({3});
  auto gg = passes::build_gradient_graph(*gm, {a, b});
  Tensor gb = grad_of(gg.run({a, b}), "b");
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(gb.at_flat(i), 0.0);
}

TEST(Autodiff, UnsupportedOpHasClearError) {
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(
      [](Value x) { return fx::fn::softmax(x, -1); }));
  Tensor x = Tensor::randn({2, 4});
  try {
    passes::build_gradient_graph(*gm, {x});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("softmax"), std::string::npos);
  }
}

TEST(Autodiff, GradientGraphIsInspectableAndOptimizable) {
  // The gradient is itself a GraphModule: code renders, DCE runs, and it is
  // re-executable — the "transform result stays in the ecosystem" property.
  auto model = nn::models::mlp({4, 4}, "relu");
  auto gm = fx::symbolic_trace(model);
  Tensor x = Tensor::randn({2, 4});
  auto gg = passes::build_gradient_graph(*gm, {x});
  EXPECT_NE(gg.module->code().find("def forward"), std::string::npos);
  EXPECT_NO_THROW(gg.module->graph().lint());
  auto g1 = gg.run({x});
  auto g2 = gg.run({x});
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_TRUE(allclose(g1[i].second, g2[i].second));
  }
}

}  // namespace
}  // namespace fxcpp
