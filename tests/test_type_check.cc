// Gradual shape typing tests (Section 6.3's third shape-analysis flavor):
// known-vs-known mismatches are rejected, anything involving unknowns is
// gradually accepted, and no example input is ever needed.
#include <gtest/gtest.h>

#include "core/functional.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet.h"
#include "passes/type_check.h"

namespace fxcpp {
namespace {

using fx::Value;
using passes::SymDim;
using passes::SymShape;

TEST(TypeCheck, AcceptsCorrectMlp) {
  auto gm = fx::symbolic_trace(nn::models::mlp({16, 32, 8}));
  auto r = passes::type_check(
      *gm, {SymShape{SymDim::dynamic(), SymDim::known(16)}});
  EXPECT_TRUE(r.ok()) << r.to_string();
  ASSERT_TRUE(r.output.has_value());
  EXPECT_EQ((*r.output)[1].value, 8);
}

TEST(TypeCheck, RejectsWrongFeatureDim) {
  auto gm = fx::symbolic_trace(nn::models::mlp({16, 32, 8}));
  auto r = passes::type_check(
      *gm, {SymShape{SymDim::dynamic(), SymDim::known(17)}});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.errors.at(0).message.find("Linear"), std::string::npos);
}

TEST(TypeCheck, GradualAnyInputAlwaysAccepted) {
  auto gm = fx::symbolic_trace(nn::models::mlp({16, 32, 8}));
  auto r = passes::type_check(*gm, {std::nullopt});
  EXPECT_TRUE(r.ok());
}

TEST(TypeCheck, DynamicDimIsConsistentWithAnything) {
  auto gm = fx::symbolic_trace(nn::models::mlp({16, 32, 8}));
  auto r = passes::type_check(
      *gm, {SymShape{SymDim::known(4), SymDim::dynamic()}});
  EXPECT_TRUE(r.ok());
}

TEST(TypeCheck, ConvChannelMismatchCaught) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  auto r = passes::type_check(
      *gm, {SymShape{SymDim::known(1), SymDim::known(4), SymDim::known(32),
                     SymDim::known(32)}});  // 4 channels, model wants 3
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.errors.at(0).message.find("Conv2d"), std::string::npos);
}

TEST(TypeCheck, ResNetChecksCleanWithoutExampleInput) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  auto r = passes::type_check(
      *gm, {SymShape{SymDim::dynamic(), SymDim::known(3), SymDim::known(32),
                     SymDim::known(32)}});
  EXPECT_TRUE(r.ok()) << r.to_string();
  ASSERT_TRUE(r.output.has_value());
  EXPECT_EQ((*r.output)[1].value, 10);
  // Nodes were annotated with gradual types.
  bool annotated = false;
  for (const fx::Node* n : gm->graph().nodes()) {
    if (n->has_meta("gradual_type")) annotated = true;
  }
  EXPECT_TRUE(annotated);
}

TEST(TypeCheck, BroadcastMismatchCaught) {
  fx::Tracer t;
  auto gm = t.trace_function(
      [](const std::vector<Value>& in) { return in.at(0) + in.at(1); },
      {"a", "b"});
  auto ok = passes::type_check(
      *gm, {SymShape{SymDim::known(4), SymDim::known(3)},
            SymShape{SymDim::known(3)}});
  EXPECT_TRUE(ok.ok());
  auto bad = passes::type_check(
      *gm, {SymShape{SymDim::known(4), SymDim::known(3)},
            SymShape{SymDim::known(5)}});
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.at(0).message.find("broadcastable"), std::string::npos);
}

TEST(TypeCheck, RankErrorCaught) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  auto r = passes::type_check(
      *gm, {SymShape{SymDim::known(3), SymDim::known(32)}});  // rank 2
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace fxcpp
