// Hardened execution runtime: ExecError taxonomy and golden message quality,
// cross-engine arity parity, input guards (strict + permissive refresh), the
// guards.coverage verifier rule, systematic differential fault injection
// (throw / NaN poison / allocation ceiling at every compute node, asserting
// identical ExecError code + node across all three engines), deterministic
// first-failure reporting in the parallel engine, the run_resilient fallback
// ladder, cooperative cancellation + deadlines, and anomaly provenance.
// All randomness is seeded (runtime/rng.h) so failures replay.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/verifier.h"
#include "core/interpreter.h"
#include "core/op_registry.h"
#include "core/parallel_executor.h"
#include "passes/shape_prop.h"
#include "resilience/anomaly.h"
#include "resilience/exec_error.h"
#include "resilience/fault_injection.h"
#include "resilience/guards.h"
#include "runtime/rng.h"
#include "runtime/thread_pool.h"

namespace fxcpp {
namespace {

using fx::Argument;
using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::RtValue;
using resilience::AnomalyAction;
using resilience::AnomalyDetector;
using resilience::FaultInjector;
using resilience::FaultKind;
using resilience::GuardMode;

// --------------------------------------------------------------------------
// Shared helpers (same idiom as test_parallel_exec.cc).
// --------------------------------------------------------------------------

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

bool bit_equal(const RtValue& a, const RtValue& b) {
  if (a.index() != b.index()) return false;
  if (fx::rt_is_tensor(a)) return bit_equal(fx::rt_tensor(a), fx::rt_tensor(b));
  return true;
}

constexpr std::int64_t kSide = 4;

Tensor random_tensor(rt::Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(kSide * kSide));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return Tensor::from_vector(v, {kSide, kSide});
}

struct FuzzCase {
  std::shared_ptr<GraphModule> gm;
  std::vector<RtValue> inputs;
};

FuzzCase random_dag(std::uint64_t seed) {
  rt::Rng rng(seed);
  auto g = std::make_unique<Graph>();
  std::vector<Node*> pool;

  const int n_inputs = 1 + static_cast<int>(rng.randint(0, 1));
  for (int i = 0; i < n_inputs; ++i) {
    pool.push_back(g->placeholder("x" + std::to_string(i)));
  }

  static const char* kBinary[] = {"add", "sub", "mul"};
  static const char* kUnary[] = {"relu", "neg", "sigmoid", "tanh", "gelu"};

  const int n_ops = 5 + static_cast<int>(rng.randint(0, 20));
  for (int i = 0; i < n_ops; ++i) {
    auto pick = [&]() -> Node* {
      return pool[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(pool.size()) - 1))];
    };
    Node* n = nullptr;
    switch (rng.randint(0, 3)) {
      case 0:
        n = g->call_function(kBinary[rng.randint(0, 2)], {pick(), pick()});
        break;
      case 1:
        n = g->call_function(kUnary[rng.randint(0, 4)], {pick()});
        break;
      case 2:
        n = g->call_function(kBinary[rng.randint(0, 2)],
                             {pick(), Argument(rng.uniform(-2.0, 2.0))});
        break;
      default:
        n = g->call_function("matmul", {pick(), pick()});
        break;
    }
    pool.push_back(n);
  }

  std::vector<Node*> sinks;
  for (Node* n : pool) {
    if (n->op() != fx::Opcode::Placeholder && n->users().empty()) {
      sinks.push_back(n);
    }
  }
  Node* acc = sinks.empty() ? pool.back() : sinks[0];
  for (std::size_t i = 1; i < sinks.size(); ++i) {
    acc = g->call_function("add", {acc, sinks[i]});
  }
  g->output(acc);

  FuzzCase fc;
  fc.gm = std::make_shared<GraphModule>(nullptr, std::move(g), "Fuzz");
  fc.gm->recompile();
  for (int i = 0; i < n_inputs; ++i) fc.inputs.emplace_back(random_tensor(rng));
  return fc;
}

// Custom ops this binary leans on: two distinguishable throwers (for the
// deterministic-first-failure test) and a sleeper (for deadlines).
void ensure_test_ops() {
  static bool once = [] {
    fx::OpRegistry::functions().add(
        {"fxres_throw_a", {"x"}, [](const std::vector<RtValue>&) -> RtValue {
           throw std::runtime_error("fxres A fired");
         }});
    fx::OpRegistry::functions().add(
        {"fxres_throw_b", {"x"}, [](const std::vector<RtValue>&) -> RtValue {
           throw std::runtime_error("fxres B fired");
         }});
    fx::OpRegistry::functions().add(
        {"fxres_sleep", {"x"}, [](const std::vector<RtValue>& a) -> RtValue {
           std::this_thread::sleep_for(std::chrono::milliseconds(5));
           return a.at(0);
         }});
    return true;
  }();
  (void)once;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// --------------------------------------------------------------------------
// One harness to run any engine and capture success or a structured error.
// --------------------------------------------------------------------------

enum class Which { Interp, Tape, Par1, Par2, Par8 };

const char* which_name(Which w) {
  switch (w) {
    case Which::Interp: return "interpreter";
    case Which::Tape: return "tape";
    case Which::Par1: return "parallel/1";
    case Which::Par2: return "parallel/2";
    case Which::Par8: return "parallel/8";
  }
  return "?";
}

struct Outcome {
  bool ok = false;
  RtValue out;
  ErrorCode code = ErrorCode::Unknown;
  Engine engine = Engine::Unknown;
  std::string node;
  std::string detail;
  std::string what;
};

Outcome run_engine(Which w, GraphModule& gm, const std::vector<RtValue>& in,
                   fx::ExecHooks* hooks) {
  Outcome o;
  try {
    switch (w) {
      case Which::Interp: {
        fx::Interpreter interp(gm);
        interp.set_hooks(hooks);
        o.out = interp.run(in);
        break;
      }
      case Which::Tape: {
        auto outs = gm.compiled_graph().run(in, hooks);
        if (!outs.empty()) o.out = outs[0];
        break;
      }
      case Which::Par1:
      case Which::Par2:
      case Which::Par8: {
        fx::ExecutorOptions eo;
        eo.num_threads = w == Which::Par1 ? 1 : (w == Which::Par2 ? 2 : 8);
        eo.hooks = hooks;
        fx::ParallelExecutor ex(gm, eo);
        auto outs = ex.run(in);
        if (!outs.empty()) o.out = outs[0];
        break;
      }
    }
    o.ok = true;
  } catch (const ExecError& e) {
    o.code = e.code();
    o.engine = e.engine();
    o.node = e.node_name();
    o.detail = e.detail();
    o.what = e.what();
  }
  // A fault that threw out of a node can leave the thread-local allocation
  // ceiling armed (on_node_end never ran); never let that leak across runs.
  Storage::set_alloc_limit(0);
  return o;
}

// --------------------------------------------------------------------------
// ExecError taxonomy mechanics.
// --------------------------------------------------------------------------

TEST(ExecError, RenderAndAccessors) {
  ExecError e(ErrorCode::NodeFailure, "kernel exploded");
  e.with_node_info("conv1", "call_module", "layers.conv1");
  e.with_engine(Engine::Tape);
  e.with_env({"x", "conv0"});
  EXPECT_EQ(e.code(), ErrorCode::NodeFailure);
  EXPECT_EQ(e.engine(), Engine::Tape);
  EXPECT_EQ(e.node_name(), "conv1");
  EXPECT_EQ(e.node_op(), "call_module");
  EXPECT_EQ(e.node_target(), "layers.conv1");
  EXPECT_EQ(e.detail(), "kernel exploded");
  const std::string w = e.what();
  EXPECT_TRUE(contains(w, "ExecError[node-failure]")) << w;
  EXPECT_TRUE(contains(w, "engine=tape")) << w;
  EXPECT_TRUE(contains(w, "at node 'conv1'")) << w;
  EXPECT_TRUE(contains(w, "call_module target=layers.conv1")) << w;
  EXPECT_TRUE(contains(w, "kernel exploded")) << w;
  EXPECT_TRUE(contains(w, "[live: x conv0]")) << w;
}

TEST(ExecError, AnnotationIsSetIfUnset) {
  ExecError e(ErrorCode::NumericAnomaly, "nan");
  e.with_node_info("inner", "call_function", "sigmoid");
  e.with_engine(Engine::Parallel);
  // Outer layers must not clobber the more precise inner provenance.
  e.with_node_info("outer", "output", "");
  e.with_engine(Engine::Interpreter);
  EXPECT_EQ(e.node_name(), "inner");
  EXPECT_EQ(e.engine(), Engine::Parallel);
  e.with_env({"a"});
  e.with_env({"b", "c"});
  ASSERT_EQ(e.live_env().size(), 1u);
  EXPECT_EQ(e.live_env()[0], "a");
}

TEST(ExecError, LiveEnvRenderingIsCapped) {
  ExecError e(ErrorCode::NodeFailure, "boom");
  std::vector<std::string> live;
  for (int i = 0; i < 11; ++i) live.push_back("v" + std::to_string(i));
  e.with_env(live);
  EXPECT_EQ(e.live_env().size(), 11u);
  EXPECT_TRUE(contains(e.what(), "+3 more")) << e.what();
}

TEST(ExecError, InputErrorClassification) {
  EXPECT_TRUE(is_input_error(ErrorCode::ArityMismatch));
  EXPECT_TRUE(is_input_error(ErrorCode::GuardViolation));
  EXPECT_FALSE(is_input_error(ErrorCode::NodeFailure));
  EXPECT_FALSE(is_input_error(ErrorCode::Cancelled));
}

// --------------------------------------------------------------------------
// Satellite: arity mismatch parity across all three engines.
// --------------------------------------------------------------------------

TEST(ArityParity, SameCodeAndDetailAcrossEngines) {
  auto g = std::make_unique<Graph>();
  Node* a = g->placeholder("a");
  Node* b = g->placeholder("b");
  g->output(g->call_function("add", {a, b}));
  GraphModule gm(nullptr, std::move(g), "TwoIn");
  gm.recompile();

  const std::vector<RtValue> one = {RtValue(Tensor::randn({kSide, kSide}))};
  std::vector<RtValue> three = one;
  three.emplace_back(Tensor::randn({kSide, kSide}));
  three.emplace_back(Tensor::randn({kSide, kSide}));

  const Engine expect_engine[] = {Engine::Interpreter, Engine::Tape,
                                  Engine::Parallel, Engine::Parallel,
                                  Engine::Parallel};
  const Which engines[] = {Which::Interp, Which::Tape, Which::Par1,
                           Which::Par2, Which::Par8};
  for (const auto& bad : {one, three}) {
    std::string first_detail;
    for (std::size_t i = 0; i < 5; ++i) {
      const Outcome o = run_engine(engines[i], gm, bad, nullptr);
      ASSERT_FALSE(o.ok) << which_name(engines[i]);
      EXPECT_EQ(o.code, ErrorCode::ArityMismatch) << which_name(engines[i]);
      EXPECT_EQ(o.engine, expect_engine[i]) << which_name(engines[i]);
      EXPECT_TRUE(contains(o.detail, "graph takes 2 placeholder input(s)"))
          << o.detail;
      if (first_detail.empty()) {
        first_detail = o.detail;
      } else {
        EXPECT_EQ(o.detail, first_detail) << which_name(engines[i]);
      }
    }
  }
}

// --------------------------------------------------------------------------
// Satellite: golden error-message quality per engine. Every engine's
// ExecError names the node, its op, its target, and the engine itself.
// --------------------------------------------------------------------------

TEST(GoldenMessages, EveryEngineNamesNodeOpTargetAndEngine) {
  ensure_test_ops();
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* r = g->call_function("relu", {x});
  Node* boom = g->call_function("fxres_throw_a", {r});
  g->output(boom);
  GraphModule gm(nullptr, std::move(g), "Golden");
  gm.recompile();
  const std::vector<RtValue> in = {RtValue(Tensor::randn({kSide, kSide}))};

  const char* expect_engine[] = {"interpreter", "tape", "parallel"};
  const Which engines[] = {Which::Interp, Which::Tape, Which::Par2};
  for (std::size_t i = 0; i < 3; ++i) {
    const Outcome o = run_engine(engines[i], gm, in, nullptr);
    ASSERT_FALSE(o.ok) << which_name(engines[i]);
    EXPECT_EQ(o.code, ErrorCode::NodeFailure);
    EXPECT_EQ(o.node, boom->name());
    EXPECT_TRUE(contains(o.what, "ExecError[node-failure]")) << o.what;
    EXPECT_TRUE(contains(o.what, "engine=" + std::string(expect_engine[i])))
        << o.what;
    EXPECT_TRUE(contains(o.what, "at node '" + boom->name() + "'")) << o.what;
    EXPECT_TRUE(contains(o.what, "call_function")) << o.what;
    EXPECT_TRUE(contains(o.what, "target=fxres_throw_a")) << o.what;
    EXPECT_TRUE(contains(o.what, "fxres A fired")) << o.what;
    // Partial environment state: relu's value was live when the node failed.
    EXPECT_TRUE(contains(o.what, "[live:")) << o.what;
    EXPECT_TRUE(contains(o.what, r->name())) << o.what;
  }
}

// --------------------------------------------------------------------------
// Input guards: generation from ShapeProp meta, strict rejection,
// permissive refresh.
// --------------------------------------------------------------------------

std::shared_ptr<GraphModule> guarded_module() {
  auto g = std::make_unique<Graph>();
  Node* a = g->placeholder("a");
  Node* b = g->placeholder("b");
  g->output(g->call_function("mul", {g->call_function("add", {a, b}), b}));
  auto gm = std::make_shared<GraphModule>(nullptr, std::move(g), "Guarded");
  gm->recompile();
  passes::shape_prop(*gm, {Tensor::randn({2, 3}), Tensor::randn({2, 3})});
  return gm;
}

TEST(Guards, GenerateFromShapeMeta) {
  auto gm = guarded_module();
  EXPECT_TRUE(gm->guards().empty());
  EXPECT_EQ(resilience::generate_guards(*gm), 2u);
  ASSERT_EQ(gm->guards().size(), 2u);
  EXPECT_EQ(gm->guards()[0].placeholder, "a");
  EXPECT_EQ(gm->guards()[1].placeholder, "b");
  EXPECT_EQ(gm->guards()[0].shape, (Shape{2, 3}));
  EXPECT_EQ(gm->guards()[0].dtype, DType::Float32);
}

TEST(Guards, StrictAcceptsMatchingInputs) {
  auto gm = guarded_module();
  resilience::generate_guards(*gm);
  const std::vector<RtValue> good = {RtValue(Tensor::randn({2, 3})),
                                     RtValue(Tensor::randn({2, 3}))};
  EXPECT_FALSE(resilience::check_inputs(*gm, good, GuardMode::Strict));
}

TEST(Guards, StrictRejectsNamingThePlaceholder) {
  auto gm = guarded_module();
  resilience::generate_guards(*gm);
  const std::vector<RtValue> bad = {RtValue(Tensor::randn({2, 3})),
                                    RtValue(Tensor::randn({5, 5}))};
  try {
    resilience::check_inputs(*gm, bad, GuardMode::Strict);
    FAIL() << "expected a guard violation";
  } catch (const ExecError& e) {
    EXPECT_EQ(e.code(), ErrorCode::GuardViolation);
    EXPECT_EQ(e.node_name(), "b") << e.what();
    EXPECT_TRUE(contains(e.what(), "[2, 3]")) << e.what();
    EXPECT_TRUE(contains(e.what(), "[5, 5]")) << e.what();
  }
}

TEST(Guards, StrictRejectsNonTensorInput) {
  auto gm = guarded_module();
  resilience::generate_guards(*gm);
  const std::vector<RtValue> bad = {RtValue(Tensor::randn({2, 3})),
                                    RtValue(std::int64_t{7})};
  try {
    resilience::check_inputs(*gm, bad, GuardMode::Strict);
    FAIL() << "expected a guard violation";
  } catch (const ExecError& e) {
    EXPECT_EQ(e.code(), ErrorCode::GuardViolation);
    EXPECT_EQ(e.node_name(), "b") << e.what();
  }
}

TEST(Guards, ArityAlwaysThrowsEvenInPermissiveMode) {
  auto gm = guarded_module();
  resilience::generate_guards(*gm);
  const std::vector<RtValue> one = {RtValue(Tensor::randn({2, 3}))};
  for (GuardMode m : {GuardMode::Strict, GuardMode::Permissive}) {
    try {
      resilience::check_inputs(*gm, one, m);
      FAIL() << "expected an arity mismatch";
    } catch (const ExecError& e) {
      EXPECT_EQ(e.code(), ErrorCode::ArityMismatch);
    }
  }
}

TEST(Guards, PermissiveRefreshesGuardsAndModuleStillRuns) {
  auto gm = guarded_module();
  resilience::generate_guards(*gm);
  const std::vector<RtValue> wide = {RtValue(Tensor::randn({4, 7})),
                                     RtValue(Tensor::randn({4, 7}))};
  EXPECT_TRUE(resilience::check_inputs(*gm, wide, GuardMode::Permissive));
  ASSERT_EQ(gm->guards().size(), 2u);
  EXPECT_EQ(gm->guards()[0].shape, (Shape{4, 7}));
  // Refreshed guards now accept the new shapes outright...
  EXPECT_FALSE(resilience::check_inputs(*gm, wide, GuardMode::Strict));
  // ...and the (shape-polymorphic) kernels execute them fine.
  const auto out = gm->compiled_graph().run(wide);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(fx::rt_tensor(out[0]).sizes(), (Shape{4, 7}));
}

// --------------------------------------------------------------------------
// Satellite: the guards.coverage verifier rule.
// --------------------------------------------------------------------------

TEST(GuardsCoverageRule, SilentWithoutMetaOrGuards) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  g->output(g->call_function("relu", {x}));
  GraphModule gm(nullptr, std::move(g), "NoMeta");
  gm.recompile();
  EXPECT_FALSE(analysis::verify(gm).has("guards.coverage"));
  // Bare-graph verification (no module) must also stay silent.
  EXPECT_FALSE(analysis::verify(gm.graph()).has("guards.coverage"));
}

TEST(GuardsCoverageRule, FlagsAnnotatedModuleWithNoGuards) {
  auto gm = guarded_module();  // shape meta present, no guards generated
  const analysis::Report rep = analysis::verify(*gm);
  EXPECT_TRUE(rep.has("guards.coverage")) << rep.to_string();
  EXPECT_TRUE(rep.ok()) << "warning, not error: " << rep.to_string();
}

TEST(GuardsCoverageRule, FreshGuardsAreClean) {
  auto gm = guarded_module();
  resilience::generate_guards(*gm);
  EXPECT_FALSE(analysis::verify(*gm).has("guards.coverage"));
}

TEST(GuardsCoverageRule, FlagsStaleGuardsAfterReProp) {
  auto gm = guarded_module();
  resilience::generate_guards(*gm);
  // A transform/re-trace changes the propagated shapes; the old specs are
  // now stale until generate_guards runs again.
  passes::shape_prop(*gm, {Tensor::randn({6, 6}), Tensor::randn({6, 6})});
  const analysis::Report rep = analysis::verify(*gm);
  EXPECT_TRUE(rep.has("guards.coverage")) << rep.to_string();
  resilience::generate_guards(*gm);
  EXPECT_FALSE(analysis::verify(*gm).has("guards.coverage"));
}

TEST(GuardsCoverageRule, FlagsGuardForMissingPlaceholder) {
  auto gm = guarded_module();
  resilience::generate_guards(*gm);
  auto guards = gm->guards();
  guards[1].placeholder = "ghost";
  gm->set_guards(guards);
  EXPECT_TRUE(analysis::verify(*gm).has("guards.coverage"));
}

// --------------------------------------------------------------------------
// Tentpole: differential fault-injection fuzz. For every compute node of a
// seeded random DAG and every fault kind, all five engine configurations
// must agree: either everyone succeeds bit-identically, or everyone fails
// with the same ExecError code at the same node.
// --------------------------------------------------------------------------

TEST(FaultFuzz, AllEnginesFailIdentically) {
  constexpr int kCases = 8;
  const Which engines[] = {Which::Interp, Which::Tape, Which::Par1,
                           Which::Par2, Which::Par8};
  int injected_runs = 0;
  for (int c = 0; c < kCases; ++c) {
    FuzzCase fc = random_dag(0xBAD5EED + static_cast<std::uint64_t>(c));
    for (Node* target : fc.gm->graph().nodes()) {
      if (target->op() == fx::Opcode::Placeholder) continue;
      for (FaultKind kind :
           {FaultKind::Throw, FaultKind::PoisonNaN, FaultKind::AllocLimit}) {
        std::vector<Outcome> outs;
        for (Which w : engines) {
          // Fresh hooks per engine run: unlimited fires, so every engine
          // sees the same fault. NaN poisoning is paired with the anomaly
          // detector in Throw mode — the poison only becomes an error
          // because anomaly mode catches it at the poisoned node.
          FaultInjector inj(target, kind);
          AnomalyDetector det(*fc.gm, AnomalyAction::Throw);
          fx::MultiHooks hooks;
          hooks.add(&inj);
          if (kind == FaultKind::PoisonNaN) hooks.add(&det);
          outs.push_back(run_engine(w, *fc.gm, fc.inputs, &hooks));
        }
        const Outcome& ref = outs[0];
        for (std::size_t i = 1; i < outs.size(); ++i) {
          const Outcome& o = outs[i];
          const std::string ctx =
              std::string("seed ") + std::to_string(c) + " node '" +
              target->name() + "' fault " +
              resilience::fault_kind_name(kind) + " engine " +
              which_name(engines[i]) + "\n  interp: " +
              (ref.ok ? "ok" : ref.what) + "\n  this:   " +
              (o.ok ? "ok" : o.what);
          ASSERT_EQ(o.ok, ref.ok) << ctx;
          if (ref.ok) {
            ASSERT_TRUE(bit_equal(ref.out, o.out)) << ctx;
          } else {
            ASSERT_EQ(o.code, ref.code) << ctx;
            ASSERT_EQ(o.node, ref.node) << ctx;
            // Throw/poison details are pure functions of the fault and the
            // (deterministic) values, so they match verbatim. The alloc
            // ceiling's message embeds live-byte counts, which legitimately
            // differ per engine (register lifetimes differ).
            if (kind != FaultKind::AllocLimit) {
              ASSERT_EQ(o.detail, ref.detail) << ctx;
            }
          }
        }
        if (!ref.ok) {
          ++injected_runs;
          // The reported node is the injection target, with the code the
          // fault kind maps onto.
          EXPECT_EQ(ref.node, target->name());
          switch (kind) {
            case FaultKind::Throw:
              EXPECT_EQ(ref.code, ErrorCode::NodeFailure);
              break;
            case FaultKind::PoisonNaN:
              EXPECT_EQ(ref.code, ErrorCode::NumericAnomaly);
              break;
            case FaultKind::AllocLimit:
              EXPECT_EQ(ref.code, ErrorCode::AllocLimit);
              break;
            default:
              break;
          }
        }
      }
    }
  }
  // The sweep must actually exercise failures, not vacuously pass.
  EXPECT_GT(injected_runs, 100) << "fault injection barely fired";
}

// --------------------------------------------------------------------------
// Satellite: deterministic error propagation in the parallel engine. With
// two independently-failing branches, the reported node is the first one in
// tape (schedule) order — for any thread count, every time.
// --------------------------------------------------------------------------

TEST(ParallelDeterminism, FirstFailingNodeInScheduleOrder) {
  ensure_test_ops();
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* b1 = g->call_function("fxres_throw_a", {x});
  Node* b2 = g->call_function("fxres_throw_b", {x});
  g->output(g->call_function("add", {b1, b2}));
  GraphModule gm(nullptr, std::move(g), "TwoBoom");
  gm.recompile();
  const std::vector<RtValue> in = {RtValue(Tensor::randn({kSide, kSide}))};

  // Reference: the serial engines fail at b1 (earlier in tape order).
  const Outcome serial = run_engine(Which::Tape, gm, in, nullptr);
  ASSERT_FALSE(serial.ok);
  EXPECT_EQ(serial.node, b1->name());

  for (Which w : {Which::Par1, Which::Par2, Which::Par8}) {
    for (int rep = 0; rep < 20; ++rep) {
      const Outcome o = run_engine(w, gm, in, nullptr);
      ASSERT_FALSE(o.ok);
      EXPECT_EQ(o.code, ErrorCode::NodeFailure);
      EXPECT_EQ(o.node, b1->name())
          << which_name(w) << " rep " << rep
          << ": nondeterministic error choice: " << o.what;
      EXPECT_TRUE(contains(o.detail, "fxres A fired")) << o.what;
    }
  }
}

// --------------------------------------------------------------------------
// Tentpole: the run_resilient fallback ladder.
// --------------------------------------------------------------------------

TEST(RunResilient, RecoversFromEngineLocalFaultBitIdentically) {
  FuzzCase fc = random_dag(2024);
  const RtValue clean = fx::Interpreter(*fc.gm).run(fc.inputs);

  // Find a compute node and make it fail exactly once: the parallel rung
  // absorbs the fault, the tape rung recovers.
  Node* target = nullptr;
  for (Node* n : fc.gm->graph().nodes()) {
    if (n->op() == fx::Opcode::CallFunction) target = n;
  }
  ASSERT_NE(target, nullptr);
  FaultInjector inj(target, FaultKind::Throw, /*max_fires=*/1);

  fx::ResilientOptions opts;
  opts.hooks = &inj;
  fx::ResilientReport report;
  const auto out = fc.gm->run_resilient(fc.inputs, opts, &report);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(bit_equal(clean, out[0]))
      << "recovered result must be bit-identical to the fault-free run";
  EXPECT_EQ(inj.fires(), 1);

  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].engine, Engine::Parallel);
  EXPECT_FALSE(report.attempts[0].ok);
  EXPECT_EQ(report.attempts[0].code, ErrorCode::NodeFailure);
  EXPECT_TRUE(contains(report.attempts[0].error, target->name()));
  EXPECT_EQ(report.attempts[1].engine, Engine::Tape);
  EXPECT_TRUE(report.attempts[1].ok);
  EXPECT_EQ(report.succeeded, Engine::Tape);
}

TEST(RunResilient, ExhaustedLadderRethrowsWithFullReport) {
  ensure_test_ops();
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  g->output(g->call_function("fxres_throw_a", {x}));
  GraphModule gm(nullptr, std::move(g), "AlwaysBoom");
  gm.recompile();

  fx::ResilientReport report;
  try {
    gm.run_resilient({RtValue(Tensor::randn({kSide, kSide}))}, {}, &report);
    FAIL() << "expected the ladder to exhaust";
  } catch (const ExecError& e) {
    EXPECT_EQ(e.code(), ErrorCode::NodeFailure);
  }
  ASSERT_EQ(report.attempts.size(), 3u);
  EXPECT_EQ(report.attempts[0].engine, Engine::Parallel);
  EXPECT_EQ(report.attempts[1].engine, Engine::Tape);
  EXPECT_EQ(report.attempts[2].engine, Engine::Interpreter);
  for (const auto& a : report.attempts) {
    EXPECT_FALSE(a.ok);
    EXPECT_EQ(a.code, ErrorCode::NodeFailure);
  }
  EXPECT_EQ(report.succeeded, Engine::Unknown);
}

TEST(RunResilient, InputErrorsAreNeverRetried) {
  auto gm = guarded_module();
  resilience::generate_guards(*gm);
  fx::ResilientReport report;
  try {
    gm->run_resilient({RtValue(Tensor::randn({9, 9})),
                       RtValue(Tensor::randn({9, 9}))},
                      {}, &report);
    FAIL() << "expected a guard violation";
  } catch (const ExecError& e) {
    EXPECT_EQ(e.code(), ErrorCode::GuardViolation);
  }
  EXPECT_TRUE(report.attempts.empty())
      << "a bad input must not burn through the engine ladder";

  // Arity errors likewise fail before any engine runs.
  report = {};
  try {
    gm->run_resilient({RtValue(Tensor::randn({2, 3}))}, {}, &report);
    FAIL() << "expected an arity mismatch";
  } catch (const ExecError& e) {
    EXPECT_EQ(e.code(), ErrorCode::ArityMismatch);
  }
  EXPECT_TRUE(report.attempts.empty());
}

TEST(RunResilient, GuardCheckCanBeDisabled) {
  auto gm = guarded_module();
  resilience::generate_guards(*gm);
  fx::ResilientOptions opts;
  opts.check_guards = false;
  // Off-guard shapes execute fine (kernels are shape-polymorphic).
  const auto out = gm->run_resilient({RtValue(Tensor::randn({9, 9})),
                                      RtValue(Tensor::randn({9, 9}))},
                                     opts);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(fx::rt_tensor(out[0]).sizes(), (Shape{9, 9}));
}

TEST(RunResilient, AllEnginesDisabledThrows) {
  FuzzCase fc = random_dag(3);
  fx::ResilientOptions opts;
  opts.try_parallel = opts.try_tape = opts.try_interpreter = false;
  try {
    fc.gm->run_resilient(fc.inputs, opts);
    FAIL() << "expected an ExecError";
  } catch (const ExecError& e) {
    EXPECT_TRUE(contains(e.what(), "disabled")) << e.what();
  }
}

TEST(RunResilient, TensorConvenienceOverload) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  g->output(g->call_function("relu", {x}));
  GraphModule gm(nullptr, std::move(g), "One");
  gm.recompile();
  const Tensor in = Tensor::randn({kSide, kSide});
  const Tensor out = gm.run_resilient(in);
  EXPECT_TRUE(bit_equal(out, fx::rt_tensor(fx::Interpreter(gm).run(in))));
}

// --------------------------------------------------------------------------
// Tentpole: cooperative cancellation and wall-clock deadlines in the
// parallel engine.
// --------------------------------------------------------------------------

std::shared_ptr<GraphModule> sleepy_chain(int n_sleeps) {
  ensure_test_ops();
  auto g = std::make_unique<Graph>();
  Node* cur = g->placeholder("x");
  for (int i = 0; i < n_sleeps; ++i) {
    cur = g->call_function("fxres_sleep", {cur});
  }
  g->output(cur);
  auto gm = std::make_shared<GraphModule>(nullptr, std::move(g), "Sleepy");
  gm->recompile();
  return gm;
}

TEST(Cancellation, PresetTokenCancelsBeforeAnyNodeRuns) {
  auto gm = sleepy_chain(3);
  std::atomic<bool> token{true};
  fx::ExecutorOptions eo;
  eo.num_threads = 2;
  eo.cancel = &token;
  fx::ParallelExecutor ex(*gm, eo);
  const std::vector<RtValue> in = {RtValue(Tensor::randn({kSide, kSide}))};
  try {
    ex.run(in);
    FAIL() << "expected cancellation";
  } catch (const ExecError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Cancelled);
    EXPECT_EQ(e.engine(), Engine::Parallel);
  }
  // Clearing the token makes the same executor usable again.
  token.store(false);
  EXPECT_NO_THROW(ex.run(in));
}

TEST(Cancellation, MidRunTokenStopsTheSchedule) {
  auto gm = sleepy_chain(40);  // ~200ms serial chain; plenty of margin
  std::atomic<bool> token{false};
  fx::ExecutorOptions eo;
  eo.num_threads = 2;
  eo.cancel = &token;
  fx::ParallelExecutor ex(*gm, eo);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.store(true);
  });
  try {
    ex.run({RtValue(Tensor::randn({kSide, kSide}))});
    canceller.join();
    FAIL() << "expected cancellation";
  } catch (const ExecError& e) {
    canceller.join();
    EXPECT_EQ(e.code(), ErrorCode::Cancelled);
    EXPECT_TRUE(contains(e.detail(), "cancelled after")) << e.what();
  }
}

TEST(Deadline, ExpiryRaisesDeadlineExceeded) {
  auto gm = sleepy_chain(20);  // ~100ms serial chain
  fx::ExecutorOptions eo;
  eo.num_threads = 2;
  eo.deadline_seconds = 0.005;
  fx::ParallelExecutor ex(*gm, eo);
  try {
    ex.run({RtValue(Tensor::randn({kSide, kSide}))});
    FAIL() << "expected the deadline to expire";
  } catch (const ExecError& e) {
    EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
    EXPECT_EQ(e.engine(), Engine::Parallel);
    EXPECT_TRUE(contains(e.detail(), "deadline")) << e.what();
  }
  // Without a deadline, the same module completes.
  fx::ParallelExecutor ok(*gm, fx::ExecutorOptions{2, false});
  EXPECT_NO_THROW(ok.run({RtValue(Tensor::randn({kSide, kSide}))}));
}

TEST(Deadline, GenerousDeadlineDoesNotFire) {
  auto gm = sleepy_chain(2);
  fx::ExecutorOptions eo;
  eo.num_threads = 2;
  eo.deadline_seconds = 30.0;
  fx::ParallelExecutor ex(*gm, eo);
  EXPECT_NO_THROW(ex.run({RtValue(Tensor::randn({kSide, kSide}))}));
}

// --------------------------------------------------------------------------
// TaskGroup::wait_for — the primitive the watch loop is built on.
// --------------------------------------------------------------------------

TEST(TaskGroupWaitFor, TimesOutThenQuiesces) {
  rt::ThreadPool pool(2);
  rt::TaskGroup group(pool);
  std::atomic<bool> release{false};
  group.run([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  EXPECT_FALSE(group.wait_for(std::chrono::milliseconds(5)));
  release.store(true);
  EXPECT_TRUE(group.wait_for(std::chrono::milliseconds(5000)));
}

TEST(TaskGroupWaitFor, RethrowsCapturedErrorOnQuiesce) {
  rt::ThreadPool pool(2);
  rt::TaskGroup group(pool);
  group.run([] { throw std::invalid_argument("late boom"); });
  try {
    while (!group.wait_for(std::chrono::milliseconds(10))) {
    }
    FAIL() << "expected the worker exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "late boom");
  }
}

// --------------------------------------------------------------------------
// MultiHooks fan-out: mutation by an earlier hook is visible to later ones.
// --------------------------------------------------------------------------

TEST(MultiHooks, PoisonThenDetectThroughOneSeam) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* r = g->call_function("relu", {x});
  g->output(r);
  GraphModule gm(nullptr, std::move(g), "Seam");
  gm.recompile();

  FaultInjector inj(r, FaultKind::PoisonInf);
  AnomalyDetector det(gm, AnomalyAction::Record);
  fx::MultiHooks hooks;
  hooks.add(&inj);
  hooks.add(&det);
  hooks.add(nullptr);  // null entries are skipped, not a crash

  const auto out = gm.compiled_graph().run(
      {RtValue(Tensor::randn({kSide, kSide}))}, &hooks);
  ASSERT_EQ(out.size(), 1u);
  // The injector's poisoned clone flowed onward: the detector saw it, and
  // the engine's result carries it too.
  EXPECT_GE(inj.fires(), 1);
  EXPECT_TRUE(det.any());
  ASSERT_NE(det.first_bad(), nullptr);
  EXPECT_EQ(det.first_bad()->name(), r->name());
  EXPECT_EQ(resilience::count_nonfinite(fx::rt_tensor(out[0])), 1);
}

// --------------------------------------------------------------------------
// Anomaly detection in Record mode: provenance from first-bad to origin.
// --------------------------------------------------------------------------

TEST(Anomaly, OriginAndProvenanceReport) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* a = g->call_function("add", {x, Argument(1.0)});
  Node* b = g->call_function("neg", {a});
  Node* c = g->call_function("add", {b, x});
  g->output(c);
  GraphModule gm(nullptr, std::move(g), "Prov");
  gm.recompile();

  FaultInjector inj(a, FaultKind::PoisonNaN);
  AnomalyDetector det(gm, AnomalyAction::Record);
  fx::MultiHooks hooks;
  hooks.add(&inj);
  hooks.add(&det);

  const auto out = gm.compiled_graph().run(
      {RtValue(Tensor::randn({kSide, kSide}))}, &hooks);
  ASSERT_EQ(out.size(), 1u);

  // NaN introduced at `a` propagates through b and c; the detector records
  // the whole blast radius but pins the origin on `a`.
  ASSERT_TRUE(det.any());
  EXPECT_GE(det.findings().size(), 3u);
  ASSERT_NE(det.first_bad(), nullptr);
  EXPECT_EQ(det.first_bad()->name(), a->name());
  ASSERT_NE(det.origin(), nullptr);
  EXPECT_EQ(det.origin()->name(), a->name());

  const std::string rep = det.report();
  EXPECT_TRUE(contains(rep, "origin '" + a->name() + "'")) << rep;
  EXPECT_TRUE(contains(rep, "(introduced here)")) << rep;
  EXPECT_TRUE(contains(rep, "inherited from")) << rep;

  det.reset();
  EXPECT_FALSE(det.any());
  EXPECT_EQ(det.origin(), nullptr);
}

TEST(Anomaly, CountNonFinite) {
  Tensor t = Tensor::zeros({2, 2});
  EXPECT_EQ(resilience::count_nonfinite(t), 0);
  t.set_flat(0, std::numeric_limits<double>::quiet_NaN());
  t.set_flat(3, std::numeric_limits<double>::infinity());
  EXPECT_EQ(resilience::count_nonfinite(t), 2);
}

// --------------------------------------------------------------------------
// The Storage allocation ceiling is single-shot and self-disarming.
// --------------------------------------------------------------------------

TEST(AllocCeiling, TripsOnceThenDisarms) {
  Storage::set_alloc_limit(1);
  EXPECT_EQ(Storage::alloc_limit(), 1);
  try {
    Tensor t = Tensor::randn({64, 64});
    FAIL() << "expected the ceiling to trip";
  } catch (const AllocLimitError& e) {
    EXPECT_TRUE(contains(e.what(), "allocation")) << e.what();
  }
  // The trip disarmed the ceiling: the very next allocation succeeds.
  EXPECT_EQ(Storage::alloc_limit(), 0);
  EXPECT_NO_THROW(Tensor::randn({64, 64}));
}

TEST(AllocCeiling, MapsToExecErrorThroughTheEngines) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* r = g->call_function("relu", {x});
  g->output(r);
  GraphModule gm(nullptr, std::move(g), "Alloc");
  gm.recompile();
  const std::vector<RtValue> in = {RtValue(Tensor::randn({kSide, kSide}))};

  for (Which w : {Which::Interp, Which::Tape, Which::Par2}) {
    FaultInjector inj(r, FaultKind::AllocLimit);
    const Outcome o = run_engine(w, gm, in, &inj);
    ASSERT_FALSE(o.ok) << which_name(w);
    EXPECT_EQ(o.code, ErrorCode::AllocLimit) << which_name(w);
    EXPECT_EQ(o.node, r->name()) << which_name(w);
  }
}

}  // namespace
}  // namespace fxcpp
