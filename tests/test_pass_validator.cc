// PassValidator differential checks over the five transform families the
// issue names: fuse_conv_bn, decompose, quantize, split, subgraph_rewriter.
// Each semantics-preserving pass must verify clean before and after and
// diverge from the original program by at most float noise; int8 quantization
// passes with an explicit lossy tolerance. The final tests prove the harness
// actually catches bad passes (semantic drift, IR corruption).
#include <gtest/gtest.h>

#include "analysis/pass_validator.h"
#include "core/functional.h"
#include "core/split.h"
#include "core/subgraph_rewriter.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet.h"
#include "passes/decompose.h"
#include "passes/fuse_conv_bn.h"
#include "quant/quantize.h"

namespace fxcpp {
namespace {

using analysis::PassValidator;
using analysis::ValidationOptions;
using analysis::ValidationReport;
using fx::Node;
using fx::Value;

std::unique_ptr<fx::Graph> graph_of(const std::function<Value(Value)>& f) {
  auto gm = fx::symbolic_trace(f);
  return gm->graph().clone();
}

TEST(PassValidator, FuseConvBnOnResNet) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  ValidationOptions opts;
  opts.trials = 2;
  opts.tolerance = 5e-2;  // BN folding reassociates float math
  PassValidator validator(opts);
  const ValidationReport rep = validator.validate(
      *gm,
      [](fx::GraphModule& m) { EXPECT_EQ(passes::fuse_conv_bn(m), 20); },
      {Shape{1, 3, 32, 32}});
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(rep.trials, 2);
}

TEST(PassValidator, DecomposeBatchNormOnResNet) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  ValidationOptions opts;
  opts.trials = 2;
  opts.tolerance = 1e-2;
  PassValidator validator(opts);
  const ValidationReport rep = validator.validate_rebuild(
      *gm,
      [](fx::GraphModule& m) { return passes::decompose_batch_norm(m); },
      {Shape{1, 3, 32, 32}});
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(PassValidator, QuantizeMlpWithLossyTolerance) {
  auto gm = fx::symbolic_trace(nn::models::mlp({16, 32, 8}, "relu"));
  std::vector<Tensor> batches;
  for (int i = 0; i < 8; ++i) batches.push_back(Tensor::randn({8, 16}));
  ValidationOptions opts;
  opts.tolerance = 2.5;  // int8 is lossy by design; bound it, don't forbid it
  PassValidator validator(opts);
  const ValidationReport rep = validator.validate(
      *gm,
      [&](fx::GraphModule& m) {
        quant::prepare(m);
        quant::calibrate(m, batches);
        EXPECT_GT(quant::convert(m), 0);
      },
      {Shape{4, 16}});
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  // Lossy but not exact: the differential run saw real int8 error.
  EXPECT_GT(rep.max_divergence, 0.0);
}

TEST(PassValidator, SplitMlpParentMatchesOriginal) {
  auto gm = fx::symbolic_trace(nn::models::mlp({8, 16, 16, 4}, "relu"));
  const auto nodes = gm->graph().nodes();
  std::unordered_map<const Node*, int> part;
  int idx = 0;
  for (const Node* n : nodes) {
    part[n] = idx++ < static_cast<int>(nodes.size()) / 2 ? 0 : 1;
  }
  ValidationOptions opts;
  opts.tolerance = 1e-5;
  PassValidator validator(opts);
  const ValidationReport rep = validator.validate_rebuild(
      *gm,
      [&](fx::GraphModule& m) {
        auto split =
            fx::split_module(m, [&part](const Node& n) { return part.at(&n); });
        EXPECT_EQ(split.submodules.size(), 2u);
        return split.parent;
      },
      {Shape{2, 8}});
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(PassValidator, SplitResNetByHalf) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  const auto nodes = gm->graph().nodes();
  std::unordered_map<const Node*, int> part;
  int idx = 0;
  for (const Node* n : nodes) {
    part[n] = idx++ < static_cast<int>(nodes.size()) / 2 ? 0 : 1;
  }
  ValidationOptions opts;
  opts.trials = 1;
  opts.tolerance = 1e-5;
  PassValidator validator(opts);
  const ValidationReport rep = validator.validate_rebuild(
      *gm,
      [&](fx::GraphModule& m) {
        return fx::split_module(m, [&part](const Node& n) {
                 return part.at(&n);
               }).parent;
      },
      {Shape{1, 3, 32, 32}});
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(PassValidator, IdempotentRewriteIsSemanticsPreserving) {
  // relu(x) -> relu(relu(x)): structurally a rewrite, numerically identity.
  auto f = [](Value x) -> Value { return fx::fn::relu(x).neg(); };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  auto pattern = graph_of([](Value x) { return fx::fn::relu(x); });
  auto replacement =
      graph_of([](Value x) { return fx::fn::relu(fx::fn::relu(x)); });
  ValidationOptions opts;
  opts.tolerance = 0.0;  // bit-exact
  PassValidator validator(opts);
  const ValidationReport rep = validator.validate(
      *gm,
      [&](fx::GraphModule& m) {
        EXPECT_EQ(fx::replace_pattern(m, *pattern, *replacement), 1);
      },
      {Shape{4, 4}});
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

// --- the harness must catch bad passes -------------------------------------

TEST(PassValidator, FlagsSemanticDrift) {
  // relu -> gelu changes the function; divergence must exceed tolerance.
  auto f = [](Value x) -> Value { return fx::fn::relu(x).neg(); };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  auto pattern = graph_of([](Value x) { return fx::fn::relu(x); });
  auto replacement = graph_of([](Value x) { return fx::fn::gelu(x); });
  ValidationOptions opts;
  opts.tolerance = 1e-6;
  PassValidator validator(opts);
  const ValidationReport rep = validator.validate(
      *gm,
      [&](fx::GraphModule& m) {
        fx::replace_pattern(m, *pattern, *replacement);
      },
      {Shape{8, 8}});
  EXPECT_FALSE(rep.ok());
  EXPECT_GT(rep.max_divergence, opts.tolerance);
  EXPECT_TRUE(rep.error.empty()) << rep.error;
}

TEST(PassValidator, FlagsIrCorruption) {
  // A "pass" that retargets a node at a nonexistent op: the post-verify
  // report must carry the resolution error even though execution also fails.
  auto f = [](Value x) -> Value { return fx::fn::relu(x).neg(); };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  PassValidator validator;
  const ValidationReport rep = validator.validate(
      *gm,
      [](fx::GraphModule& m) {
        for (Node* n : m.graph().nodes()) {
          if (n->target() == "relu") n->set_target("not_an_op");
        }
      },
      {Shape{4}});
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.post.has("resolve.function-target")) << rep.post.to_string();
}

TEST(PassValidator, ReportsTransformExceptions) {
  auto gm = fx::symbolic_trace(nn::models::mlp({4, 4}, "relu"));
  PassValidator validator;
  const ValidationReport rep = validator.validate(
      *gm,
      [](fx::GraphModule&) { throw std::runtime_error("pass exploded"); },
      {Shape{2, 4}});
  EXPECT_FALSE(rep.ok());
  EXPECT_NE(rep.error.find("pass exploded"), std::string::npos);
}

}  // namespace
}  // namespace fxcpp
