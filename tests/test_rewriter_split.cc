// Subgraph rewriting (Figure 2's activation swap), split_module, and the
// Section 6.2.3 pipelining scheduler.
#include <gtest/gtest.h>

#include "core/functional.h"
#include "core/split.h"
#include "core/subgraph_rewriter.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "passes/scheduler.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Node;
using fx::Opcode;
using fx::Value;

std::unique_ptr<fx::Graph> graph_of(const std::function<Value(Value)>& f) {
  auto gm = fx::symbolic_trace(f);
  return gm->graph().clone();
}

// Figure 2: replace torch.relu(x) with torch.gelu(x) everywhere.
TEST(Rewriter, Figure2ActivationSwap) {
  auto f = [](Value x) -> Value { return fx::fn::relu(x).neg(); };
  auto traced = fx::symbolic_trace(std::function<Value(Value)>(f));

  auto pattern = graph_of([](Value x) { return fx::fn::relu(x); });
  auto replacement = graph_of([](Value x) { return fx::fn::gelu(x); });
  EXPECT_EQ(fx::replace_pattern(*traced, *pattern, *replacement), 1);

  Tensor x = Tensor::randn({4});
  EXPECT_TRUE(allclose(traced->run(x), ops::neg(ops::gelu(x))));
  EXPECT_NE(traced->code().find("torch.gelu"), std::string::npos);
  EXPECT_EQ(traced->code().find("torch.relu"), std::string::npos);
}

TEST(Rewriter, MultipleNonOverlappingMatches) {
  auto f = [](Value x) -> Value {
    return fx::fn::relu(fx::fn::relu(fx::fn::relu(x)));
  };
  auto traced = fx::symbolic_trace(std::function<Value(Value)>(f));
  auto pattern = graph_of([](Value x) { return fx::fn::relu(x); });
  auto replacement = graph_of([](Value x) { return fx::fn::gelu(x); });
  EXPECT_EQ(fx::replace_pattern(*traced, *pattern, *replacement), 3);
}

TEST(Rewriter, MultiNodePatternWithImmediates) {
  // Pattern: mul(add(x, 1.0), 2.0); replacement: mul(x, 2.0) (just to test
  // structure, not algebra).
  auto f = [](Value x) -> Value {
    Value y = fx::fn::mul(fx::fn::add(x, 1.0), 2.0);
    return fx::fn::mul(fx::fn::add(y, 3.0), 2.0);  // different const: no match
  };
  auto traced = fx::symbolic_trace(std::function<Value(Value)>(f));
  auto pattern = graph_of([](Value x) {
    return fx::fn::mul(fx::fn::add(x, 1.0), 2.0);
  });
  auto replacement = graph_of([](Value x) { return fx::fn::mul(x, 2.0); });
  // Only the (x+1)*2 instance matches; (y+3)*2 has a different immediate.
  EXPECT_EQ(fx::replace_pattern(*traced, *pattern, *replacement), 1);
  Tensor x = Tensor::randn({4});
  Tensor want = ops::mul(ops::add(ops::mul(x, 2.0), 3.0), 2.0);
  EXPECT_TRUE(allclose(traced->run(x), want));
}

TEST(Rewriter, InternalEscapePreventsMatch) {
  // add(x,1) feeds both mul and the output: the 2-node pattern must not
  // match because removing add would orphan its other user.
  auto f = [](Value x) -> Value {
    Value a = fx::fn::add(x, 1.0);
    Value m = fx::fn::mul(a, 2.0);
    return m + a;
  };
  auto traced = fx::symbolic_trace(std::function<Value(Value)>(f));
  auto pattern = graph_of([](Value x) {
    return fx::fn::mul(fx::fn::add(x, 1.0), 2.0);
  });
  auto replacement = graph_of([](Value x) { return fx::fn::mul(x, 2.0); });
  EXPECT_EQ(fx::replace_pattern(*traced, *pattern, *replacement), 0);
}

TEST(Rewriter, SamePlaceholderMustBindConsistently) {
  // Pattern add(x, x): matches add(a, a) but not add(a, b).
  fx::Graph pattern;
  Node* p = pattern.placeholder("p");
  Node* add = pattern.call_function("add", {fx::Argument(p), fx::Argument(p)});
  pattern.output(fx::Argument(add));

  auto match_case = [&](const std::function<Value(const std::vector<Value>&)>& f,
                        std::size_t want) {
    fx::Tracer t;
    auto gm = t.trace_function(f, {"a", "b"});
    return fx::match_pattern(gm->graph(), pattern).size() == want;
  };
  EXPECT_TRUE(match_case(
      [](const std::vector<Value>& in) { return in[0] + in[0]; }, 1));
  EXPECT_TRUE(match_case(
      [](const std::vector<Value>& in) { return in[0] + in[1]; }, 0));
}

TEST(Split, TwoWayPartitionPreservesSemantics) {
  auto model = nn::models::mlp({8, 16, 16, 4}, "relu");
  auto gm = fx::symbolic_trace(model);
  // Partition: first half / second half by node index.
  const auto nodes = gm->graph().nodes();
  std::unordered_map<const Node*, int> part;
  int idx = 0;
  for (const Node* n : nodes) {
    part[n] = idx++ < static_cast<int>(nodes.size()) / 2 ? 0 : 1;
  }
  auto split = fx::split_module(
      *gm, [&part](const Node& n) { return part.at(&n); });
  EXPECT_EQ(split.submodules.size(), 2u);
  Tensor x = Tensor::randn({2, 8});
  EXPECT_TRUE(allclose(split.parent->run(x), gm->run(x)));
}

TEST(Split, MultiOutputPartitionUsesGetitem) {
  // Stage 0 produces two values consumed by stage 1.
  auto f = [](Value x) -> Value {
    Value a = fx::fn::relu(x);   // partition 0
    Value b = fx::fn::neg(x);    // partition 0
    return a + b;                // partition 1
  };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  auto split = fx::split_module(*gm, [](const Node& n) {
    return n.target() == "add" ? 1 : 0;
  });
  bool saw_getitem = false;
  for (const Node* n : split.parent->graph().nodes()) {
    if (n->target() == "getitem") saw_getitem = true;
  }
  EXPECT_TRUE(saw_getitem);
  Tensor x = Tensor::randn({4});
  EXPECT_TRUE(allclose(split.parent->run(x), gm->run(x)));
}

TEST(Split, ReorderableAcyclicPartitionsStillWork) {
  // relu -> partition 1, neg -> partition 0: first-appearance ordering
  // executes partition {relu} first; legal because there is no cycle.
  auto f = [](Value x) -> Value { return fx::fn::neg(fx::fn::relu(x)); };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  auto split = fx::split_module(*gm, [](const Node& n) {
    return n.target() == "relu" ? 1 : 0;
  });
  Tensor x = Tensor::randn({4});
  EXPECT_TRUE(allclose(split.parent->run(x), gm->run(x)));
}

TEST(Split, CyclicPartitionAssignmentThrows) {
  // p0 = {relu, mul}, p1 = {neg}: p1 needs p0's relu, p0's mul needs p1's
  // neg — a genuine partition cycle.
  auto f = [](Value x) -> Value {
    Value a = fx::fn::relu(x);       // p0
    Value b = fx::fn::neg(a);        // p1
    return fx::fn::mul(a, b);        // p0
  };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  EXPECT_THROW(fx::split_module(*gm, [](const Node& n) {
                 return n.target() == "neg" ? 1 : 0;
               }),
               std::invalid_argument);
}

TEST(Scheduler, PipelinedMatchesSerial) {
  auto model = nn::models::mlp({8, 32, 32, 4}, "relu");
  auto gm = fx::symbolic_trace(model);
  // Split roughly in the middle at the first relu.
  std::string boundary;
  for (const Node* n : gm->graph().nodes()) {
    if (n->op() == Opcode::CallModule) boundary = n->name();
  }
  // Use the *second* call_module as the boundary for a real 2-stage split.
  int count = 0;
  for (const Node* n : gm->graph().nodes()) {
    if (n->op() == Opcode::CallModule && ++count == 2) {
      boundary = n->name();
      break;
    }
  }
  auto split = passes::split_at(*gm, boundary);
  std::vector<Tensor> stream;
  for (int i = 0; i < 6; ++i) stream.push_back(Tensor::randn({2, 8}));
  auto serial = passes::run_serial(split, stream);
  auto piped = passes::run_pipelined(split, stream);
  ASSERT_EQ(serial.size(), piped.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(allclose(serial[i], piped[i]));
  }
}

}  // namespace
}  // namespace fxcpp
