// Guard-keyed multi-plan cache: TorchProbe-style shape-fuzz harness plus
// targeted unit/concurrency coverage. The fuzz runs ~150 seeded random DAGs,
// each over a randomized shape sequence (growing / shrinking / alternating
// batch dims, rank changes, repeated hot shapes), through the interpreter,
// the cached-planned tape, and planned-parallel x{1,2,8}, asserting
// bit-equality everywhere and hit/miss/evict/replan accounting against a
// reference LRU model. Concurrency tests race mixed-shape run_planned calls
// against cache eviction and capacity churn (the TSan leg of
// scripts/check.sh), and pin the PR 5 regression that a plan installed by
// one thread is never observed half-initialized by another. All randomness
// is seeded.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <list>
#include <thread>
#include <vector>

#include "analysis/verifier.h"
#include "core/interpreter.h"
#include "core/memory_plan.h"
#include "core/parallel_executor.h"
#include "core/plan_cache.h"
#include "passes/memory_planner.h"
#include "profile/profiler.h"
#include "runtime/rng.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Argument;
using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::PlanCache;
using fx::PlanCacheOptions;
using fx::RtValue;

// --------------------------------------------------------------------------
// Bit-level tensor equality (NaN-safe, unlike operator== / allclose).
// --------------------------------------------------------------------------

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

bool bit_equal(const RtValue& a, const RtValue& b) {
  if (a.index() != b.index()) return false;
  if (fx::rt_is_tensor(a)) return bit_equal(fx::rt_tensor(a), fx::rt_tensor(b));
  return true;  // fuzzed graphs only produce tensors
}

// --------------------------------------------------------------------------
// Seeded shape-polymorphic DAG corpus: elementwise-only ops (no matmul), so
// one graph runs at every batch size and rank the shape sequences throw at
// it — exactly the dynamic-shape traffic the cache exists for.
// --------------------------------------------------------------------------

Tensor random_tensor(rt::Rng& rng, const Shape& s) {
  std::int64_t numel = 1;
  for (const std::int64_t d : s) numel *= d;
  std::vector<float> v(static_cast<std::size_t>(numel));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return Tensor::from_vector(v, s);
}

struct FuzzCase {
  std::shared_ptr<GraphModule> gm;
  int n_inputs = 1;
};

FuzzCase elementwise_dag(std::uint64_t seed) {
  rt::Rng rng(seed);
  auto g = std::make_unique<Graph>();
  std::vector<Node*> pool;

  const int n_inputs = 1 + static_cast<int>(rng.randint(0, 1));
  for (int i = 0; i < n_inputs; ++i) {
    pool.push_back(g->placeholder("x" + std::to_string(i)));
  }

  static const char* kBinary[] = {"add", "sub", "mul"};
  static const char* kUnary[] = {"relu", "neg", "sigmoid", "tanh", "gelu"};

  const int n_ops = 5 + static_cast<int>(rng.randint(0, 20));
  for (int i = 0; i < n_ops; ++i) {
    auto pick = [&]() -> Node* {
      return pool[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(pool.size()) - 1))];
    };
    Node* n = nullptr;
    switch (rng.randint(0, 2)) {
      case 0:
        n = g->call_function(kBinary[rng.randint(0, 2)], {pick(), pick()});
        break;
      case 1:
        n = g->call_function(kUnary[rng.randint(0, 4)], {pick()});
        break;
      default:
        n = g->call_function(kBinary[rng.randint(0, 2)],
                             {pick(), Argument(rng.uniform(-2.0, 2.0))});
        break;
    }
    pool.push_back(n);
  }

  std::vector<Node*> sinks;
  for (Node* n : pool) {
    if (n->op() != fx::Opcode::Placeholder && n->users().empty()) {
      sinks.push_back(n);
    }
  }
  Node* acc = sinks.empty() ? pool.back() : sinks[0];
  for (std::size_t i = 1; i < sinks.size(); ++i) {
    acc = g->call_function("add", {acc, sinks[i]});
  }
  g->output(acc);

  FuzzCase fc;
  fc.gm = std::make_shared<GraphModule>(nullptr, std::move(g), "ShapeFuzz");
  fc.gm->recompile();
  fc.n_inputs = n_inputs;
  return fc;
}

std::vector<RtValue> inputs_for(rt::Rng& rng, int n_inputs, const Shape& s) {
  std::vector<RtValue> in;
  in.reserve(static_cast<std::size_t>(n_inputs));
  for (int i = 0; i < n_inputs; ++i) in.emplace_back(random_tensor(rng, s));
  return in;
}

std::vector<Tensor> as_tensors(const std::vector<RtValue>& in) {
  std::vector<Tensor> ts;
  for (const auto& v : in) ts.push_back(fx::rt_tensor(v));
  return ts;
}

// One randomized shape sequence: the axes TorchProbe mutates on a dynamic
// compiler — batch growth/shrink, ping-pong, a hot shape with cold noise,
// and whole-rank changes.
std::vector<Shape> shape_sequence(rt::Rng& rng) {
  const std::int64_t f = 4;
  switch (rng.randint(0, 4)) {
    case 0:  // growing batch
      return {{2, f}, {4, f}, {8, f}, {16, f}};
    case 1:  // shrinking batch
      return {{16, f}, {8, f}, {4, f}, {2, f}};
    case 2:  // alternating
      return {{2, f}, {8, f}, {2, f}, {8, f}, {2, f}, {8, f}};
    case 3:  // hot shape with cold noise
      return {{8, f}, {8, f}, {3, f}, {8, f}, {5, f}, {8, f}, {8, f}};
    default:  // rank changes
      return {{f}, {2, f}, {3, 2, f}, {2, f}, {f}};
  }
}

// Reference LRU model the real cache's accounting is fuzzed against.
struct LruModel {
  std::size_t capacity;
  std::list<std::string> order;  // front = MRU
  std::uint64_t hits = 0, misses = 0, replans = 0, evictions = 0;

  explicit LruModel(std::size_t cap) : capacity(cap) {}
  void seed(const std::string& sig) {
    ++replans;
    order.push_front(sig);
  }
  void lookup(const std::string& sig) {
    const auto it = std::find(order.begin(), order.end(), sig);
    if (it != order.end()) {
      ++hits;
      order.splice(order.begin(), order, it);
      return;
    }
    ++misses;
    ++replans;
    order.push_front(sig);
    while (order.size() > capacity) {
      order.pop_back();
      ++evictions;
    }
  }
};

// --------------------------------------------------------------------------
// Signature keying
// --------------------------------------------------------------------------

TEST(PlanCacheSignature, ExactRenderingAndNonTensorTag) {
  PlanCache cache;
  std::vector<RtValue> in{RtValue(Tensor::zeros({8, 16})),
                          RtValue(Tensor::zeros({8}))};
  EXPECT_EQ(cache.signature_of(in), "float32[8,16];float32[8]");
  in.emplace_back(std::int64_t{3});
  EXPECT_EQ(cache.signature_of(in), "float32[8,16];float32[8];<other>");
}

TEST(PlanCacheSignature, BucketingRoundsBatchDimUp) {
  PlanCacheOptions po;
  po.bucket_batch_dim = true;
  po.bucket_min = 4;
  PlanCache cache(po);
  const std::vector<RtValue> a{RtValue(Tensor::zeros({3, 16}))};
  const std::vector<RtValue> b{RtValue(Tensor::zeros({4, 16}))};
  const std::vector<RtValue> c{RtValue(Tensor::zeros({6, 16}))};
  EXPECT_EQ(cache.signature_of(a), "float32[~4,16]");
  EXPECT_EQ(cache.signature_of(a), cache.signature_of(b));
  EXPECT_EQ(cache.signature_of(c), "float32[~8,16]");
  // Only dim 0 buckets; the feature dim stays exact.
  const std::vector<RtValue> d{RtValue(Tensor::zeros({4, 17}))};
  EXPECT_NE(cache.signature_of(b), cache.signature_of(d));
}

// Regression: degenerate dim-0 sizes must not collide under bucketing. The
// old bucket_dim rounded 0 up into the bucket_min bucket, so an empty-tensor
// request (which a dynamic batcher legitimately generates) would be served a
// plan specialized at batch >= 1.
TEST(PlanCacheSignature, BucketKeyingZeroBatchDoesNotCollideWithOne) {
  PlanCacheOptions po;
  po.bucket_batch_dim = true;
  PlanCache cache(po);  // bucket_min = 1
  const std::vector<RtValue> zero{RtValue(Tensor::zeros({0, 16}))};
  const std::vector<RtValue> one{RtValue(Tensor::zeros({1, 16}))};
  EXPECT_EQ(cache.signature_of(zero), "float32[~0,16]");
  EXPECT_EQ(cache.signature_of(one), "float32[~1,16]");
  EXPECT_NE(cache.signature_of(zero), cache.signature_of(one));
}

TEST(PlanCacheSignature, BucketKeyingDegenerateShapeUniqueness) {
  PlanCacheOptions po;
  po.bucket_batch_dim = true;
  po.bucket_min = 4;
  PlanCache cache(po);
  // 0 keys alone; 1..bucket_min share the bucket_min bucket by design.
  EXPECT_EQ(cache.signature_of({RtValue(Tensor::zeros({0, 8}))}),
            "float32[~0,8]");
  for (std::int64_t d : {1, 2, 3, 4}) {
    EXPECT_EQ(cache.signature_of({RtValue(Tensor::zeros({d, 8}))}),
              "float32[~4,8]");
  }
  // And the keys stay distinct end to end, not just textually: a canonical
  // planning shape for the zero bucket keeps dim 0 at 0.
  std::vector<Tensor> canon;
  ASSERT_TRUE(cache.canonical_inputs({RtValue(Tensor::zeros({0, 8}))}, &canon));
  ASSERT_EQ(canon.size(), 1u);
  EXPECT_EQ(canon[0].size(0), 0);
}

TEST(PlanCacheSignature, GuardDerivationMatchesInputDerivation) {
  PlanCache cache;
  const std::vector<RtValue> in{RtValue(Tensor::zeros({8, 16}))};
  std::vector<fx::GuardSpec> guards;
  guards.push_back({"x", Shape({8, 16}), DType::Float32});
  EXPECT_EQ(cache.signature_of_guards(guards), cache.signature_of(in));
  guards.push_back(fx::GuardSpec{});  // unnamed spec: underivable
  EXPECT_EQ(cache.signature_of_guards(guards), "");
}

// --------------------------------------------------------------------------
// Hit / miss / replan accounting and LRU behavior
// --------------------------------------------------------------------------

TEST(PlanCacheAccounting, HitsAndMissesMatchTraffic) {
  FuzzCase fc = elementwise_dag(0x5EED);
  rt::Rng rng(11);
  const std::vector<RtValue> a = inputs_for(rng, fc.n_inputs, {4, 4});
  const std::vector<RtValue> b = inputs_for(rng, fc.n_inputs, {16, 4});
  passes::compile_planned(*fc.gm, as_tensors(a));
  const auto cache = fc.gm->plan_cache();
  ASSERT_NE(cache, nullptr);

  // Seeded with a's signature; a stream of a,a,a,b,a,b yields 1 miss (b).
  for (const auto* in : {&a, &a, &a, &b, &a, &b}) fc.gm->run_planned(*in);
  const fx::PlanCacheStats s = cache->stats();
  EXPECT_EQ(s.hits, 5u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.replans, 2u);  // the compile_planned seed + the b miss
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 5.0 / 6.0);
  // Per-entry slices carry the same traffic, MRU first (b ran last).
  ASSERT_EQ(s.per_entry.size(), 2u);
  EXPECT_EQ(s.per_entry[0].signature, cache->signature_of(b));
  EXPECT_EQ(s.per_entry[0].hits, 1u);
  EXPECT_EQ(s.per_entry[1].hits, 4u);
}

TEST(PlanCacheAccounting, RepeatedHotShapeNeverReplans) {
  FuzzCase fc = elementwise_dag(0xB0B);
  rt::Rng rng(12);
  const std::vector<RtValue> hot = inputs_for(rng, fc.n_inputs, {8, 4});
  passes::compile_planned(*fc.gm, as_tensors(hot));
  const auto cache = fc.gm->plan_cache();
  const RtValue ref = fx::Interpreter(*fc.gm).run(hot);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(bit_equal(ref, fc.gm->run_planned(hot).front()));
  }
  const fx::PlanCacheStats s = cache->stats();
  EXPECT_EQ(s.replans, 1u) << "a pure hit performed planning work";
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.hits, 10u);
}

TEST(PlanCacheAccounting, LruEvictionAndReinsertionRoundTrips) {
  FuzzCase fc = elementwise_dag(0xE71C);
  rt::Rng rng(13);
  const std::vector<RtValue> a = inputs_for(rng, fc.n_inputs, {2, 4});
  const std::vector<RtValue> b = inputs_for(rng, fc.n_inputs, {4, 4});
  const std::vector<RtValue> c = inputs_for(rng, fc.n_inputs, {8, 4});
  PlanCacheOptions po;
  po.capacity = 2;
  passes::compile_planned(*fc.gm, as_tensors(a), po);
  const auto cache = fc.gm->plan_cache();

  const RtValue ref_a = fx::Interpreter(*fc.gm).run(a);
  fc.gm->run_planned(b);               // entries: {b, a}
  fc.gm->run_planned(c);               // evicts a -> {c, b}
  EXPECT_EQ(cache->stats().evictions, 1u);
  EXPECT_EQ(cache->size(), 2u);
  EXPECT_EQ(cache->peek(cache->signature_of(a)), nullptr);

  // Re-insertion after eviction must plan again and produce identical bits.
  EXPECT_TRUE(bit_equal(ref_a, fc.gm->run_planned(a).front()));
  const fx::PlanCacheStats s = cache->stats();
  EXPECT_EQ(s.evictions, 2u);          // a's return evicted b
  EXPECT_EQ(s.replans, 4u);            // seed + b + c + a-again
  EXPECT_NE(cache->peek(cache->signature_of(a)), nullptr);
}

TEST(PlanCache, ShrinkingCapacityEvictsAndGrowingKeeps) {
  FuzzCase fc = elementwise_dag(0xCAFE);
  rt::Rng rng(14);
  passes::compile_planned(*fc.gm,
                          as_tensors(inputs_for(rng, fc.n_inputs, {2, 4})));
  const auto cache = fc.gm->plan_cache();
  for (const std::int64_t bs : {4, 8, 16}) {
    fc.gm->run_planned(inputs_for(rng, fc.n_inputs, {bs, 4}));
  }
  EXPECT_EQ(cache->size(), 4u);
  cache->set_capacity(2);
  EXPECT_EQ(cache->size(), 2u);
  EXPECT_EQ(cache->stats().evictions, 2u);
  cache->set_capacity(8);
  EXPECT_EQ(cache->size(), 2u);  // growing never drops entries
}

// --------------------------------------------------------------------------
// Eviction safety: an evicted entry's plan keeps running to completion.
// --------------------------------------------------------------------------

TEST(PlanCache, EvictedEntryStaysRunnableThroughItsSharedPtr) {
  FuzzCase fc = elementwise_dag(0xDEAD);
  rt::Rng rng(15);
  const std::vector<RtValue> in = inputs_for(rng, fc.n_inputs, {8, 4});
  passes::compile_planned(*fc.gm, as_tensors(in));
  const auto cache = fc.gm->plan_cache();
  const RtValue ref = fx::Interpreter(*fc.gm).run(in);

  const std::shared_ptr<fx::PlanCacheEntry> entry = cache->lookup(in);
  ASSERT_NE(entry, nullptr);
  cache->clear();  // evict everything while we still hold the entry
  EXPECT_EQ(cache->size(), 0u);

  // The held entry is fully intact: plan + a leased arena still execute.
  fx::ArenaLease lease(entry);
  const std::vector<RtValue> out =
      fc.gm->compiled_graph().run_planned(in, *entry->plan(), lease.base());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(bit_equal(ref, out[0]));
}

// --------------------------------------------------------------------------
// TorchProbe-style shape fuzz: ~150 DAGs x randomized shape sequences
// through interpreter vs cached-planned tape vs parallel x{1,2,8}, with the
// cache's accounting checked against the reference LRU model per lookup.
// --------------------------------------------------------------------------

TEST(PlanCacheFuzz, ShapeSequencesBitEqualAcrossEnginesWithModelAccounting) {
  constexpr int kCases = 150;
  constexpr std::size_t kCapacity = 3;  // small: forces eviction mid-sequence
  for (int c = 0; c < kCases; ++c) {
    const auto seed = 0xF00D + static_cast<std::uint64_t>(c);
    FuzzCase fc = elementwise_dag(seed);
    rt::Rng rng(seed * 31 + 7);
    const std::vector<Shape> seq = shape_sequence(rng);

    PlanCacheOptions po;
    po.capacity = kCapacity;
    const std::vector<RtValue> example =
        inputs_for(rng, fc.n_inputs, seq.front());
    passes::compile_planned(*fc.gm, as_tensors(example), po);
    const auto cache = fc.gm->plan_cache();
    LruModel model(kCapacity);
    model.seed(cache->signature_of(example));

    for (std::size_t step = 0; step < seq.size(); ++step) {
      const std::vector<RtValue> in = inputs_for(rng, fc.n_inputs, seq[step]);
      const RtValue ref = fx::Interpreter(*fc.gm).run(in);

      const std::vector<RtValue> planned = fc.gm->run_planned(in);
      model.lookup(cache->signature_of(in));
      ASSERT_EQ(planned.size(), 1u);
      ASSERT_TRUE(bit_equal(ref, planned[0]))
          << "cached-planned tape diverges at seed " << c << " step " << step
          << " shape " << shape_str(seq[step]) << ":\n"
          << fc.gm->graph().to_string();

      for (const int threads : {1, 2, 8}) {
        const std::vector<RtValue> par =
            fc.gm->run_planned_parallel(in, threads);
        model.lookup(cache->signature_of(in));
        ASSERT_EQ(par.size(), 1u);
        ASSERT_TRUE(bit_equal(ref, par[0]))
            << "planned parallel diverges at seed " << c << " step " << step
            << " threads " << threads << " shape " << shape_str(seq[step]);
      }
    }

    // Accounting must track the reference model exactly.
    const fx::PlanCacheStats s = cache->stats();
    ASSERT_EQ(s.hits, model.hits) << "seed " << c;
    ASSERT_EQ(s.misses, model.misses) << "seed " << c;
    ASSERT_EQ(s.replans, model.replans) << "seed " << c;
    ASSERT_EQ(s.evictions, model.evictions) << "seed " << c;
    ASSERT_EQ(s.entries, model.order.size()) << "seed " << c;
    const auto entries = cache->entries();
    std::size_t i = 0;
    for (const std::string& sig : model.order) {
      ASSERT_EQ(entries[i++]->signature(), sig)
          << "LRU order diverges from the model at seed " << c;
    }

    // Cached plans must satisfy the coherence rule (sampled for time).
    if (c < 25) {
      const auto rep = analysis::verify(*fc.gm);
      EXPECT_EQ(rep.count_rule("plan.cache-coherence"), 0)
          << "seed " << c << ":\n"
          << rep.to_string();
    }
  }
}

// --------------------------------------------------------------------------
// Bucketed keying: one entry serves a whole batch bucket, off-canonical
// sizes degrade to heap allocation (counted as bucket hits), bits stay
// identical.
// --------------------------------------------------------------------------

TEST(PlanCacheBucketing, BatchBucketSharesOneEntryBitEqual) {
  FuzzCase fc = elementwise_dag(0xB5);
  rt::Rng rng(16);
  PlanCacheOptions po;
  po.bucket_batch_dim = true;
  po.bucket_min = 4;
  passes::compile_planned(*fc.gm,
                          as_tensors(inputs_for(rng, fc.n_inputs, {4, 4})), po);
  const auto cache = fc.gm->plan_cache();

  // Batches 3..8 at feature dim 4: two buckets (~4 and ~8), every output
  // bit-equal to the interpreter at the same inputs.
  for (const std::int64_t bs : {3, 4, 5, 6, 7, 8}) {
    const std::vector<RtValue> in = inputs_for(rng, fc.n_inputs, {bs, 4});
    const RtValue ref = fx::Interpreter(*fc.gm).run(in);
    EXPECT_TRUE(bit_equal(ref, fc.gm->run_planned(in).front()))
        << "batch " << bs;
    EXPECT_TRUE(bit_equal(ref, fc.gm->run_planned_parallel(in, 2).front()))
        << "batch " << bs;
  }
  const fx::PlanCacheStats s = cache->stats();
  EXPECT_EQ(s.entries, 2u) << "six batch sizes should collapse to 2 buckets";
  EXPECT_EQ(s.misses, 1u) << "only the ~8 bucket's first arrival misses";
  EXPECT_GT(s.bucket_hits, 0u)
      << "off-canonical in-bucket serves must be counted";
  EXPECT_EQ(s.replans, 2u);
}

// --------------------------------------------------------------------------
// Concurrency: mixed-shape runs race eviction, capacity churn, and clear().
// Exercised under TSan by scripts/check.sh.
// --------------------------------------------------------------------------

TEST(PlanCacheConcurrency, MixedShapeRunsRaceEvictionAndCapacityChurn) {
  FuzzCase fc = elementwise_dag(0xC0FFEE);
  const std::vector<Shape> shapes{{2, 4}, {4, 4}, {8, 4}, {16, 4}};
  rt::Rng rng(17);
  std::vector<std::vector<RtValue>> ins;
  std::vector<RtValue> refs;
  for (const Shape& s : shapes) {
    ins.push_back(inputs_for(rng, fc.n_inputs, s));
    refs.push_back(fx::Interpreter(*fc.gm).run(ins.back()));
  }
  PlanCacheOptions po;
  po.capacity = 2;  // half the live shapes: constant eviction pressure
  passes::compile_planned(*fc.gm, as_tensors(ins[0]), po);
  const auto cache = fc.gm->plan_cache();

  constexpr int kThreads = 4;
  constexpr int kIters = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t s =
            static_cast<std::size_t>(t + i) % shapes.size();
        const std::vector<RtValue> out =
            (i % 4 == 3) ? fc.gm->run_planned_parallel(ins[s], 2)
                         : fc.gm->run_planned(ins[s]);
        if (out.size() != 1 || !bit_equal(refs[s], out[0])) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Chaos on the main thread: capacity churn + full clears while workers
  // are mid-flight on (possibly just-evicted) entries.
  for (int i = 0; i < 60; ++i) {
    cache->set_capacity(1 + static_cast<std::size_t>(i % 3));
    if (i % 7 == 0) cache->clear();
    std::this_thread::yield();
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0)
      << "a planned run diverged under eviction/capacity races";
  // Every lookup was counted exactly once despite the churn.
  const fx::PlanCacheStats s = cache->stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(PlanCacheConcurrency, ConcurrentSameShapeRunsLeaseDistinctArenas) {
  FuzzCase fc = elementwise_dag(0xAB1E);
  rt::Rng rng(18);
  const std::vector<RtValue> in = inputs_for(rng, fc.n_inputs, {8, 4});
  passes::compile_planned(*fc.gm, as_tensors(in));
  const RtValue ref = fx::Interpreter(*fc.gm).run(in);

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const std::vector<RtValue> out = fc.gm->run_planned(in);
        if (out.size() != 1 || !bit_equal(ref, out[0])) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0)
      << "same-shape concurrent planned runs shared arena bytes";
}

// Regression (PR 5): with the legacy single-plan path (no cache), a plan
// installed by thread A must never be observed half-initialized — or paired
// with the wrong arena — by thread B. The module publishes the (plan, arena)
// pair atomically and planned runs snapshot it; a snapshot that no longer
// matches the inputs falls back to the unplanned tape instead of executing
// into a foreign arena.
TEST(PlanCacheConcurrency, ReplanNeverPublishesHalfInitializedPlan) {
  FuzzCase fc = elementwise_dag(0xBEEF);
  rt::Rng rng(19);
  const std::vector<RtValue> small = inputs_for(rng, fc.n_inputs, {2, 4});
  const std::vector<RtValue> big = inputs_for(rng, fc.n_inputs, {32, 4});
  passes::compile_planned(*fc.gm, as_tensors(small));
  fc.gm->set_plan_cache(nullptr);  // force the legacy single-plan path
  const RtValue ref_small = fx::Interpreter(*fc.gm).run(small);
  const RtValue ref_big = fx::Interpreter(*fc.gm).run(big);

  // Each thread hammers its own shape; every iteration invalidates the
  // other thread's installed plan, so the replanner runs constantly and the
  // arena is re-allocated at a different size on every swap.
  std::atomic<int> failures{0};
  std::thread ta([&] {
    for (int i = 0; i < 60; ++i) {
      const std::vector<RtValue> out = fc.gm->run_planned(small);
      if (out.size() != 1 || !bit_equal(ref_small, out[0])) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread tb([&] {
    for (int i = 0; i < 60; ++i) {
      const std::vector<RtValue> out = fc.gm->run_planned(big);
      if (out.size() != 1 || !bit_equal(ref_big, out[0])) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0)
      << "a thread observed a half-initialized (plan, arena) pair";
}

// --------------------------------------------------------------------------
// plan.cache-coherence verifier rule
// --------------------------------------------------------------------------

TEST(PlanCacheCoherenceRule, CleanCachePasses) {
  FuzzCase fc = elementwise_dag(0x600D);
  rt::Rng rng(20);
  passes::compile_planned(*fc.gm,
                          as_tensors(inputs_for(rng, fc.n_inputs, {4, 4})));
  fc.gm->run_planned(inputs_for(rng, fc.n_inputs, {8, 4}));
  const auto rep = analysis::verify(*fc.gm);
  EXPECT_EQ(rep.count_rule("plan.cache-coherence"), 0) << rep.to_string();
}

TEST(PlanCacheCoherenceRule, FlagsStaleTapeUnpinnedGuardAndKeyDrift) {
  FuzzCase fc = elementwise_dag(0xBAD);
  rt::Rng rng(21);
  const std::vector<RtValue> a = inputs_for(rng, fc.n_inputs, {4, 4});
  const std::vector<RtValue> b = inputs_for(rng, fc.n_inputs, {16, 4});
  passes::compile_planned(*fc.gm, as_tensors(a));
  const auto cache = fc.gm->plan_cache();
  const auto good = fc.gm->plan();
  ASSERT_NE(good, nullptr);
  ASSERT_GT(good->planned_count, 0);

  // (1) An entry whose interval count no longer matches the tape.
  auto stale = std::make_shared<fx::TapePlan>(*good);
  stale->intervals.pop_back();
  const std::vector<RtValue> k1 = inputs_for(rng, fc.n_inputs, {3, 4});
  cache->insert(k1, stale);
  // (2) An entry whose guards leave a layout-feeding placeholder unpinned.
  auto unpinned = std::make_shared<fx::TapePlan>(*good);
  for (auto& g : unpinned->guards) g.placeholder.clear();
  const std::vector<RtValue> k2 = inputs_for(rng, fc.n_inputs, {5, 4});
  cache->insert(k2, unpinned);
  // (3) An entry filed under a key its guards do not derive.
  cache->insert(b, good);

  const auto rep = analysis::verify(*fc.gm);
  EXPECT_GE(rep.count_rule("plan.cache-coherence"), 3) << rep.to_string();
}

// --------------------------------------------------------------------------
// Stats export: PlanCacheStats JSON + the profiler's summary embedding.
// --------------------------------------------------------------------------

TEST(PlanCacheStats, JsonCarriesAggregateAndPerEntryFields) {
  FuzzCase fc = elementwise_dag(0x57A7);
  rt::Rng rng(22);
  const std::vector<RtValue> in = inputs_for(rng, fc.n_inputs, {4, 4});
  passes::compile_planned(*fc.gm, as_tensors(in));
  fc.gm->run_planned(in);
  const std::string json = fc.gm->plan_cache()->stats().to_json();
  for (const char* key :
       {"\"hits\"", "\"bucket_hits\"", "\"misses\"", "\"replans\"",
        "\"evictions\"", "\"entries\"", "\"hit_rate\"", "\"per_entry\"",
        "\"signature\"", "\"arena_bytes\"", "\"planned_count\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(PlanCacheStats, ProfilerSummaryEmbedsCacheStats) {
  FuzzCase fc = elementwise_dag(0x9906);
  rt::Rng rng(23);
  const std::vector<RtValue> in = inputs_for(rng, fc.n_inputs, {4, 4});
  passes::compile_planned(*fc.gm, as_tensors(in));
  fc.gm->run_planned(in);
  profile::Profiler prof(*fc.gm);
  prof.run_tape(in);
  const std::string summary = prof.summary_json();
  EXPECT_NE(summary.find("\"plan_cache\""), std::string::npos) << summary;
  EXPECT_NE(summary.find("\"hit_rate\""), std::string::npos);

  // A module without a cache keeps the old summary shape.
  FuzzCase bare = elementwise_dag(0x9907);
  profile::Profiler bare_prof(*bare.gm);
  bare_prof.run_tape(inputs_for(rng, bare.n_inputs, {4, 4}));
  EXPECT_EQ(bare_prof.summary_json().find("\"plan_cache\""),
            std::string::npos);
}

// --------------------------------------------------------------------------
// Lifecycle: recompile invalidates cached plans (they index the old tape).
// --------------------------------------------------------------------------

TEST(PlanCache, RecompileClearsCachedPlansAndTrafficRebuildsThem) {
  FuzzCase fc = elementwise_dag(0x12EC);
  rt::Rng rng(24);
  const std::vector<RtValue> in = inputs_for(rng, fc.n_inputs, {8, 4});
  passes::compile_planned(*fc.gm, as_tensors(in));
  const auto cache = fc.gm->plan_cache();
  fc.gm->run_planned(inputs_for(rng, fc.n_inputs, {4, 4}));
  EXPECT_EQ(cache->size(), 2u);

  fc.gm->recompile();
  EXPECT_EQ(cache->size(), 0u) << "recompile left stale plans cached";
  EXPECT_EQ(fc.gm->plan_cache(), cache) << "the cache itself must survive";

  const RtValue ref = fx::Interpreter(*fc.gm).run(in);
  EXPECT_TRUE(bit_equal(ref, fc.gm->run_planned(in).front()));
  EXPECT_EQ(cache->size(), 1u) << "traffic should repopulate the cache";
}

}  // namespace
}  // namespace fxcpp
