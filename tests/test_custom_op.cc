// Custom operator registration (the fx.wrap analog): user kernels become
// traceable call_function targets executable by interpreter and tape.
#include <gtest/gtest.h>

#include <cmath>

#include "core/custom_op.h"
#include "core/functional.h"
#include "core/graph_module.h"
#include "core/interpreter.h"
#include "core/tracer.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Value;

Tensor softplus_kernel(const std::vector<Tensor>& inputs) {
  const Tensor& x = inputs.at(0);
  Tensor out(x.sizes(), DType::Float32);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out.set_flat(i, std::log1p(std::exp(x.at_flat(i))));
  }
  return out;
}

TEST(CustomOp, EagerAndTracedAgree) {
  fx::register_custom_op("softplus", {"x"}, softplus_kernel);

  Tensor x = Tensor::randn({8});
  Tensor eager = fx::call_custom("softplus", {Value(x)}).tensor();
  EXPECT_NEAR(eager.at_flat(0), std::log1p(std::exp(x.at_flat(0))), 1e-5);

  auto gm = fx::symbolic_trace(std::function<Value(Value)>([](Value v) {
    return fx::fn::mul(fx::call_custom("softplus", {v}), 2.0);
  }));
  bool recorded = false;
  for (const fx::Node* n : gm->graph().nodes()) {
    if (n->target() == "softplus") recorded = true;
  }
  EXPECT_TRUE(recorded);
  EXPECT_TRUE(allclose(gm->run(x), ops::mul(eager, 2.0)));
  // Interpreter path resolves the registered kernel too.
  fx::Interpreter interp(*gm);
  EXPECT_TRUE(allclose(fx::rt_tensor(interp.run(x)), ops::mul(eager, 2.0)));
}

TEST(CustomOp, BinaryKernel) {
  fx::register_custom_op("elementwise_max", {"a", "b"},
                         [](const std::vector<Tensor>& in) {
                           const Tensor &a = in.at(0), &b = in.at(1);
                           Tensor out(a.sizes(), DType::Float32);
                           for (std::int64_t i = 0; i < a.numel(); ++i) {
                             out.set_flat(i, std::max(a.at_flat(i), b.at_flat(i)));
                           }
                           return out;
                         });
  Tensor a = Tensor::randn({6}), b = Tensor::randn({6});
  fx::Tracer t;
  auto gm = t.trace_function(
      [](const std::vector<Value>& in) {
        return fx::call_custom("elementwise_max", {in.at(0), in.at(1)});
      },
      {"a", "b"});
  Tensor got = gm->run({a, b});
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(got.at_flat(i), std::max(a.at_flat(i), b.at_flat(i)));
  }
}

TEST(CustomOp, UnregisteredNameThrows) {
  EXPECT_THROW(fx::call_custom("definitely_not_registered", {Value(Tensor::zeros({1}))}),
               std::invalid_argument);
}

TEST(CustomOp, GeneratedCodeRendersTarget) {
  fx::register_custom_op("softplus", {"x"}, softplus_kernel);
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(
      [](Value v) { return fx::call_custom("softplus", {v}); }));
  EXPECT_NE(gm->code().find("torch.softplus"), std::string::npos);
}

}  // namespace
}  // namespace fxcpp
