// Serving-grade resilience (PR 9): circuit breaker state machine +
// determinism, retry policy (budget / deadline / reproducible seeded
// backoff), health rung machine, chaos injector schedule replay, the
// fault-injector alloc-ceiling scoping fix, and the InferenceSession
// integration — priority shedding, breaker fail-fast + half-open recovery,
// retry-rescued transients, health-driven rung degradation, and the
// shutdown-vs-breaker race. Labeled `resilience_serve`; runs under the
// ASan and TSan legs of scripts/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/custom_op.h"
#include "core/exec_hooks.h"
#include "core/interpreter.h"
#include "core/tracer.h"
#include "resilience/chaos.h"
#include "resilience/circuit_breaker.h"
#include "resilience/exec_error.h"
#include "resilience/fault_injection.h"
#include "resilience/health.h"
#include "resilience/retry_policy.h"
#include "runtime/rng.h"
#include "serve/session.h"
#include "tensor/tensor.h"

namespace fxcpp {
namespace {

using resilience::BreakerDecision;
using resilience::BreakerOptions;
using resilience::BreakerState;
using resilience::ChaosInjector;
using resilience::ChaosOptions;
using resilience::CircuitBreaker;
using resilience::ExecRung;
using resilience::FaultInjector;
using resilience::FaultKind;
using resilience::HealthMonitor;
using resilience::HealthOptions;
using resilience::HealthState;
using resilience::RetryOptions;
using resilience::RetryPolicy;
using serve::InferenceSession;
using serve::Priority;
using serve::Response;
using serve::ServeOptions;
using serve::SessionStats;
using serve::Ticket;

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

Tensor seeded_input(std::uint64_t seed, const Shape& s) {
  rt::Rng rng(seed);
  std::int64_t numel = 1;
  for (const std::int64_t d : s) numel *= d;
  std::vector<float> v(static_cast<std::size_t>(numel));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return Tensor::from_vector(v, s);
}

void register_identity_once(const std::string& name) {
  static std::vector<std::string> done;
  for (const auto& n : done) {
    if (n == name) return;
  }
  done.push_back(name);
  fx::register_custom_op(name, {"x"}, [](const std::vector<Tensor>& in) {
    return in.at(0).clone();  // clone => the node allocates
  });
}

// Identity kernel that sleeps — holds the batcher busy so later submissions
// pile up in the queue deterministically.
void register_slow_identity_once(const std::string& name, int sleep_ms) {
  static std::vector<std::string> done;
  for (const auto& n : done) {
    if (n == name) return;
  }
  done.push_back(name);
  fx::register_custom_op(name, {"x"}, [sleep_ms](const std::vector<Tensor>& in) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    return in.at(0).clone();
  });
}

std::shared_ptr<fx::GraphModule> traced_custom(const std::string& op) {
  return fx::symbolic_trace(std::function<fx::Value(fx::Value)>(
      [op](fx::Value v) { return fx::call_custom(op, {v}); }));
}

fx::Node* compute_node(fx::GraphModule& gm) {
  for (fx::Node* n : gm.graph().nodes()) {
    if (n->op() == fx::Opcode::CallFunction) return n;
  }
  return nullptr;
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

// --------------------------------------------------------------------------
// Circuit breaker unit.
// --------------------------------------------------------------------------

TEST(CircuitBreakerUnit, TripsOnConsecutiveFailuresThenReclosesViaProbes) {
  BreakerOptions bo;
  bo.consecutive_failures = 3;
  bo.cooldown_rejections = 2;
  bo.cooldown_jitter = 0;  // exact counts below
  bo.half_open_probes = 2;
  bo.probes_to_close = 2;
  CircuitBreaker b(bo);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(b.on_request(), BreakerDecision::Admit);
    b.on_outcome(false, /*probe=*/false);
  }
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.stats().trips, 1u);

  // Exactly cooldown_rejections fast-fails, then probes.
  EXPECT_EQ(b.on_request(), BreakerDecision::Reject);
  EXPECT_EQ(b.on_request(), BreakerDecision::Reject);
  EXPECT_EQ(b.state(), BreakerState::HalfOpen);
  EXPECT_EQ(b.on_request(), BreakerDecision::Probe);
  EXPECT_EQ(b.on_request(), BreakerDecision::Probe);
  // Probes saturated: further traffic still fails fast.
  EXPECT_EQ(b.on_request(), BreakerDecision::Reject);

  b.on_outcome(true, /*probe=*/true);
  EXPECT_EQ(b.state(), BreakerState::HalfOpen);
  b.on_outcome(true, /*probe=*/true);
  EXPECT_EQ(b.state(), BreakerState::Closed);
  const auto s = b.stats();
  EXPECT_EQ(s.closes, 1u);
  EXPECT_EQ(s.reopens, 0u);
  EXPECT_EQ(s.probes, 2u);

  // The close cleared the window: one new failure does not re-trip.
  EXPECT_EQ(b.on_request(), BreakerDecision::Admit);
  b.on_outcome(false, false);
  EXPECT_EQ(b.state(), BreakerState::Closed);
}

TEST(CircuitBreakerUnit, ProbeFailureReopens) {
  BreakerOptions bo;
  bo.consecutive_failures = 2;
  bo.cooldown_rejections = 1;
  bo.cooldown_jitter = 0;
  bo.half_open_probes = 1;
  bo.probes_to_close = 1;
  CircuitBreaker b(bo);

  b.on_request(); b.on_outcome(false, false);
  b.on_request(); b.on_outcome(false, false);
  ASSERT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.on_request(), BreakerDecision::Reject);
  EXPECT_EQ(b.on_request(), BreakerDecision::Probe);
  b.on_outcome(false, /*probe=*/true);  // engine still sick
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.stats().reopens, 1u);

  EXPECT_EQ(b.on_request(), BreakerDecision::Reject);
  EXPECT_EQ(b.on_request(), BreakerDecision::Probe);
  b.on_outcome(true, /*probe=*/true);
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_EQ(b.stats().closes, 1u);
}

TEST(CircuitBreakerUnit, TripsOnWindowErrorRate) {
  BreakerOptions bo;
  bo.consecutive_failures = 100;  // streak rule out of the way
  bo.error_rate = 0.5;
  bo.window = 8;
  bo.min_samples = 8;
  CircuitBreaker b(bo);
  // Alternate ok/fail: streak never exceeds 1, but the window hits 50%.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(b.on_request(), BreakerDecision::Admit) << i;
    b.on_outcome(i % 2 == 0, false);
  }
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.stats().trips, 1u);
}

TEST(CircuitBreakerUnit, SeededCooldownJitterReplaysExactly) {
  BreakerOptions bo;
  bo.consecutive_failures = 1;
  bo.cooldown_rejections = 3;
  bo.cooldown_jitter = 4;  // jitter active
  bo.half_open_probes = 1;
  bo.probes_to_close = 1;
  bo.seed = 77;

  // Two same-seed breakers driven through the same trip/reclose sequence
  // must issue the Reject -> Probe boundary at exactly the same count.
  auto drive = [](CircuitBreaker& b) -> std::vector<int> {
    std::vector<int> rejects_per_trip;
    for (int trip = 0; trip < 4; ++trip) {
      b.on_request();
      b.on_outcome(false, false);  // trip (threshold 1)
      int rejects = 0;
      for (;;) {
        const BreakerDecision d = b.on_request();
        if (d == BreakerDecision::Probe) break;
        EXPECT_EQ(d, BreakerDecision::Reject);
        ++rejects;
        if (rejects >= 100) break;  // jitter bound blown: fail below
      }
      rejects_per_trip.push_back(rejects);
      b.on_outcome(true, true);  // close
      EXPECT_EQ(b.state(), BreakerState::Closed);
    }
    // Cooldowns are in [3, 7] and at least one trip drew a different one
    // with overwhelming probability; the exact sequence is the seed's.
    for (const int r : rejects_per_trip) {
      EXPECT_GE(r, 3);
      EXPECT_LE(r, 7);
    }
    return rejects_per_trip;
  };
  CircuitBreaker b0(bo), b1(bo);
  EXPECT_EQ(drive(b0), drive(b1));
}

// --------------------------------------------------------------------------
// Retry policy unit.
// --------------------------------------------------------------------------

TEST(RetryPolicyUnit, ClassifiesRetryableCodes) {
  EXPECT_TRUE(RetryPolicy::retryable(ErrorCode::NodeFailure));
  EXPECT_TRUE(RetryPolicy::retryable(ErrorCode::AllocLimit));
  EXPECT_TRUE(RetryPolicy::retryable(ErrorCode::NumericAnomaly));
  EXPECT_TRUE(RetryPolicy::retryable(ErrorCode::ScheduleError));
  EXPECT_TRUE(RetryPolicy::retryable(ErrorCode::Unknown));
  // Input errors and routing verdicts are never retried.
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::ArityMismatch));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::GuardViolation));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::Cancelled));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::DeadlineExceeded));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::AdmissionRejected));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::CircuitOpen));
}

TEST(RetryPolicyUnit, BackoffScheduleIsPureSeededAndBounded) {
  RetryOptions ro;
  ro.base_backoff_seconds = 0.001;
  ro.max_backoff_seconds = 0.008;
  ro.jitter = 0.5;
  ro.seed = 42;
  RetryPolicy p0(ro), p1(ro);

  for (const std::uint64_t id : {1ull, 2ull, 99ull}) {
    for (int k = 1; k <= 6; ++k) {
      const double b = p0.backoff_seconds(id, k);
      // Pure function: identical across instances and repeated calls.
      EXPECT_DOUBLE_EQ(b, p1.backoff_seconds(id, k));
      EXPECT_DOUBLE_EQ(b, p0.backoff_seconds(id, k));
      // Jittered exponential, clamped: step in [0.75, 1.25] x nominal.
      const double nominal =
          std::min(ro.base_backoff_seconds * std::pow(2.0, k - 1),
                   ro.max_backoff_seconds);
      EXPECT_GE(b, nominal * 0.75 - 1e-12);
      EXPECT_LE(b, nominal * 1.25 + 1e-12);
    }
  }
  // Different requests decorrelate.
  EXPECT_NE(p0.backoff_seconds(1, 1), p0.backoff_seconds(2, 1));
  // A different seed yields a different schedule.
  RetryOptions ro2 = ro;
  ro2.seed = 43;
  EXPECT_NE(RetryPolicy(ro2).backoff_seconds(1, 1), p0.backoff_seconds(1, 1));
}

TEST(RetryPolicyUnit, BudgetCapsRetryAmplification) {
  RetryOptions ro;
  ro.budget_fraction = 0.5;
  ro.base_backoff_seconds = 0.0;
  RetryPolicy p(ro);
  p.on_admitted();
  p.on_admitted();  // bank = 1.0: exactly one retry allowed
  double backoff = 0.0;
  EXPECT_TRUE(p.acquire(ErrorCode::NodeFailure, 2, -1.0, 7, &backoff));
  EXPECT_FALSE(p.acquire(ErrorCode::NodeFailure, 2, -1.0, 8, &backoff));
  const auto s = p.stats();
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.budget_denied, 1u);
}

TEST(RetryPolicyUnit, DeniesWhenBackoffOutlivesDeadlineOrCodeNotRetryable) {
  RetryOptions ro;
  ro.base_backoff_seconds = 0.01;
  ro.jitter = 0.0;
  ro.budget_fraction = 1.0;
  RetryPolicy p(ro);
  p.on_admitted();
  double backoff = 0.0;
  // 10ms backoff vs 1ms of deadline left: pointless, denied.
  EXPECT_FALSE(p.acquire(ErrorCode::NodeFailure, 2, 0.001, 1, &backoff));
  EXPECT_EQ(p.stats().deadline_denied, 1u);
  // Input errors denied regardless of budget.
  EXPECT_FALSE(p.acquire(ErrorCode::GuardViolation, 2, -1.0, 1, &backoff));
  // Attempt bound respected (default max_attempts = 3).
  EXPECT_FALSE(p.acquire(ErrorCode::NodeFailure, 4, -1.0, 1, &backoff));
  // And the same code within bounds succeeds.
  EXPECT_TRUE(p.acquire(ErrorCode::NodeFailure, 3, -1.0, 1, &backoff));
}

// --------------------------------------------------------------------------
// Health monitor unit.
// --------------------------------------------------------------------------

TEST(HealthMonitorUnit, DegradesBreaksAndEarnsRecoveryOneRungAtATime) {
  HealthOptions ho;
  ho.window = 4;
  ho.min_samples = 4;
  ho.degrade_error_rate = 0.5;
  ho.break_error_rate = 0.75;
  ho.recover_successes = 3;
  HealthMonitor h(ho);
  EXPECT_EQ(h.state(), HealthState::Healthy);
  EXPECT_EQ(h.rung(), ExecRung::PlannedBatched);

  // 2/4 failures: Degraded (not Broken).
  h.record(true); h.record(false); h.record(true); h.record(false);
  EXPECT_EQ(h.state(), HealthState::Degraded);
  EXPECT_EQ(h.rung(), ExecRung::PlannedSolo);

  // Fresh window at the new rung; 3/4 failures: Broken.
  h.record(false); h.record(false); h.record(true); h.record(false);
  EXPECT_EQ(h.state(), HealthState::Broken);
  EXPECT_EQ(h.rung(), ExecRung::Interpreter);

  // Recovery is stepwise: 3 successes -> Degraded, 3 more -> Healthy.
  h.record(true); h.record(true);
  EXPECT_EQ(h.state(), HealthState::Broken);
  h.record(true);
  EXPECT_EQ(h.state(), HealthState::Degraded);
  h.record(true); h.record(true); h.record(true);
  EXPECT_EQ(h.state(), HealthState::Healthy);
  EXPECT_EQ(h.rung(), ExecRung::PlannedBatched);

  const auto s = h.stats();
  EXPECT_EQ(s.degrades, 2u);
  EXPECT_EQ(s.recoveries, 2u);
  EXPECT_EQ(s.samples, 14u);
}

TEST(HealthMonitorUnit, BreakerTripForcesAtLeastDegraded) {
  HealthMonitor h;
  EXPECT_EQ(h.state(), HealthState::Healthy);
  h.on_breaker_trip();
  EXPECT_EQ(h.state(), HealthState::Degraded);
  EXPECT_EQ(h.rung(), ExecRung::PlannedSolo);
}

// --------------------------------------------------------------------------
// Error-code taxonomy completeness (satellite).
// --------------------------------------------------------------------------

TEST(ErrorTaxonomy, EveryCodeHasANameAndCircuitOpenIsLast) {
  for (std::size_t c = 0; c < kNumErrorCodes; ++c) {
    EXPECT_STRNE(error_code_name(static_cast<ErrorCode>(c)), "?")
        << "code " << c << " missing from error_code_name";
  }
  EXPECT_STREQ(error_code_name(ErrorCode::CircuitOpen), "circuit-open");
  EXPECT_EQ(static_cast<std::size_t>(ErrorCode::CircuitOpen) + 1,
            kNumErrorCodes);
}

// --------------------------------------------------------------------------
// Chaos injector: the seeded schedule replays.
// --------------------------------------------------------------------------

TEST(ChaosInjectorUnit, StormWindowFaultsExactlyItsRunsAndReplays) {
  register_identity_once("rsv_chaos_id");
  auto gm = traced_custom("rsv_chaos_id");
  gm->recompile();
  const Tensor x = seeded_input(5, {2, 4});

  auto drive = [&](ChaosInjector& chaos) {
    std::vector<bool> faulted;
    for (int run = 0; run < 10; ++run) {
      bool ok = true;
      try {
        fx::Interpreter interp(*gm);
        interp.set_hooks(&chaos);
        interp.run(x);
      } catch (const std::exception&) {
        ok = false;
      }
      faulted.push_back(!ok);
    }
    return faulted;
  };

  ChaosOptions co;
  co.fault_rate = 0.0;  // only the storm faults
  co.kinds = {FaultKind::Throw};
  co.storm_start = 3;
  co.storm_len = 4;
  co.seed = 11;
  ChaosInjector c0(co), c1(co);
  const std::vector<bool> f0 = drive(c0);
  const std::vector<bool> f1 = drive(c1);
  EXPECT_EQ(f0, f1) << "same seed, same schedule";
  for (int run = 0; run < 10; ++run) {
    EXPECT_EQ(f0[static_cast<std::size_t>(run)], run >= 3 && run < 7)
        << "run " << run;
  }
  const auto s = c0.stats();
  EXPECT_EQ(s.runs, 10u);
  EXPECT_EQ(s.storm_runs, 4u);
  EXPECT_EQ(s.faulted_runs, 4u);
  EXPECT_EQ(s.fires, 4u);
}

TEST(ChaosInjectorUnit, RateScheduleIsSeedDeterministic) {
  register_identity_once("rsv_chaos_id");
  auto gm = traced_custom("rsv_chaos_id");
  gm->recompile();
  const Tensor x = seeded_input(6, {1, 4});

  ChaosOptions co;
  co.fault_rate = 0.3;
  co.kinds = {FaultKind::Throw};
  co.burst_min = 1;
  co.burst_max = 2;
  co.seed = 21;
  auto drive = [&](ChaosInjector& chaos) {
    std::vector<bool> faulted;
    for (int run = 0; run < 40; ++run) {
      bool ok = true;
      try {
        fx::Interpreter interp(*gm);
        interp.set_hooks(&chaos);
        interp.run(x);
      } catch (const std::exception&) {
        ok = false;
      }
      faulted.push_back(!ok);
    }
    return faulted;
  };
  ChaosInjector c0(co), c1(co);
  const auto f0 = drive(c0);
  EXPECT_EQ(f0, drive(c1));
  EXPECT_GT(c0.stats().faulted_runs, 0u);
  EXPECT_LT(c0.stats().faulted_runs, 40u);
}

// --------------------------------------------------------------------------
// Satellite fix: an injected allocation ceiling is scoped to one attempt.
// --------------------------------------------------------------------------

TEST(FaultInjection, AllocCeilingDoesNotLeakIntoNextRung) {
  register_identity_once("rsv_leak_id");
  auto gm = traced_custom("rsv_leak_id");
  gm->recompile();
  fx::Node* target = compute_node(*gm);
  ASSERT_NE(target, nullptr);
  const Tensor x = seeded_input(7, {2, 4});
  const Tensor ref = fx::rt_tensor(fx::Interpreter(*gm).run(x));

  // Hook order matters: the AllocLimit injector arms the thread-local
  // ceiling at the target's on_node_begin, then the Throw injector kills
  // the run AT THE SAME EVENT — so the target never reaches on_node_end
  // and, before the fix, the armed ceiling leaked into the next rung and
  // fired at an arbitrary allocation there (a spurious AllocLimit at the
  // wrong node).
  FaultInjector alloc_inj(target, FaultKind::AllocLimit, /*max_fires=*/1);
  FaultInjector throw_inj(target, FaultKind::Throw, /*max_fires=*/1);
  fx::MultiHooks hooks({&alloc_inj, &throw_inj});

  fx::ResilientOptions opts;
  opts.try_parallel = false;  // tape -> interpreter: deterministic ladder
  opts.hooks = &hooks;
  fx::ResilientReport report;
  const Tensor out = gm->run_resilient(x, opts, &report);

  EXPECT_TRUE(bit_equal(out, ref))
      << "interpreter rung must recover cleanly — a leaked ceiling fails it";
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_FALSE(report.attempts[0].ok);
  EXPECT_EQ(report.attempts[0].code, ErrorCode::NodeFailure);
  EXPECT_TRUE(report.attempts[1].ok);
  EXPECT_EQ(alloc_inj.fires(), 1);
  EXPECT_EQ(throw_inj.fires(), 1);
  // And nothing stays armed on this thread after the run.
  EXPECT_EQ(Storage::alloc_limit(), 0);
}

// --------------------------------------------------------------------------
// Session integration.
// --------------------------------------------------------------------------

TEST(ResilientServe, PriorityWatermarksShedLowBeforeNormalBeforeHigh) {
  register_slow_identity_once("rsv_slow", 60);
  auto gm = traced_custom("rsv_slow");
  ServeOptions so;
  so.max_queue_depth = 8;
  so.shed_low_watermark = 2;
  so.shed_normal_watermark = 4;
  so.batching = false;
  InferenceSession session(gm, seeded_input(1, {1, 4}), so);

  // Occupy the batcher so queued requests pile up deterministically.
  Ticket blocker = session.submit(seeded_input(2, {1, 4}));
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (session.stats().batches < 1 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<Ticket> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(session.submit(seeded_input(10 + i, {1, 4})));
  }
  // Queue depth is now 4: Low (watermark 2) and Normal (watermark 4) shed,
  // High still admitted.
  Response low = session.run(seeded_input(20, {1, 4}), 0.0, Priority::Low);
  EXPECT_FALSE(low.ok);
  EXPECT_EQ(low.code, ErrorCode::AdmissionRejected);
  Ticket normal =
      session.submit(seeded_input(21, {1, 4}), 0.0, Priority::Normal);
  Response rn = normal.response.get();
  EXPECT_FALSE(rn.ok);
  EXPECT_EQ(rn.code, ErrorCode::AdmissionRejected);
  Ticket high = session.submit(seeded_input(22, {1, 4}), 0.0, Priority::High);

  EXPECT_TRUE(blocker.response.get().ok);
  for (Ticket& t : queued) EXPECT_TRUE(t.response.get().ok);
  EXPECT_TRUE(high.response.get().ok);

  session.shutdown();
  const SessionStats s = session.stats();
  EXPECT_GE(s.shed_low, 1u);
  EXPECT_GE(s.shed_normal, 1u);
  EXPECT_EQ(s.shed_high, 0u);
  EXPECT_EQ(s.by_code[static_cast<std::size_t>(ErrorCode::AdmissionRejected)],
            s.shed_low + s.shed_normal);
}

TEST(ResilientServe, BreakerFailsFastThenReclosesThroughProbes) {
  register_identity_once("rsv_breaker_id");
  auto gm = traced_custom("rsv_breaker_id");
  fx::Node* target = compute_node(*gm);
  ASSERT_NE(target, nullptr);
  FaultInjector inj(target, FaultKind::Throw, /*max_fires=*/-1);

  ServeOptions so;
  so.hooks = &inj;
  so.retry.max_attempts = 1;  // isolate the breaker from the retry layer
  so.breaker.consecutive_failures = 2;
  so.breaker.cooldown_rejections = 2;
  so.breaker.cooldown_jitter = 0;
  so.breaker.half_open_probes = 1;
  so.breaker.probes_to_close = 1;
  InferenceSession session(gm, seeded_input(1, {1, 4}), so);

  const Tensor x = seeded_input(3, {1, 4});
  // Two genuine failures trip the breaker...
  EXPECT_EQ(session.run(x.clone()).code, ErrorCode::NodeFailure);
  EXPECT_EQ(session.run(x.clone()).code, ErrorCode::NodeFailure);
  // ...the next two fail fast without touching the engine...
  const int fires_at_trip = inj.fires();
  EXPECT_EQ(session.run(x.clone()).code, ErrorCode::CircuitOpen);
  EXPECT_EQ(session.run(x.clone()).code, ErrorCode::CircuitOpen);
  EXPECT_EQ(inj.fires(), fires_at_trip);
  // ...the probe finds the engine still sick and reopens...
  EXPECT_EQ(session.run(x.clone()).code, ErrorCode::NodeFailure);
  // ...the engine recovers; after the cooldown the probe closes the breaker
  // and traffic flows again.
  inj.reset(/*max_fires=*/0);
  EXPECT_EQ(session.run(x.clone()).code, ErrorCode::CircuitOpen);
  EXPECT_EQ(session.run(x.clone()).code, ErrorCode::CircuitOpen);
  Response probe = session.run(x.clone());
  EXPECT_TRUE(probe.ok) << probe.error;
  Response after = session.run(x.clone());
  EXPECT_TRUE(after.ok) << after.error;

  session.shutdown();
  const SessionStats s = session.stats();
  EXPECT_GE(s.breaker.trips, 1u);
  EXPECT_EQ(s.breaker.reopens, 1u);
  EXPECT_EQ(s.breaker.closes, 1u);
  EXPECT_EQ(s.breaker_rejected, 4u);
  EXPECT_EQ(s.by_code[static_cast<std::size_t>(ErrorCode::CircuitOpen)], 4u);
  // A breaker trip forces the health machine off the batched rung.
  EXPECT_GE(s.health.degrades, 1u);
}

TEST(ResilientServe, RetryRescuesTransientFaultBitEqually) {
  register_identity_once("rsv_retry_id");
  auto gm = traced_custom("rsv_retry_id");
  fx::Node* target = compute_node(*gm);
  ASSERT_NE(target, nullptr);
  // 3 fires: the batched run, then BOTH rungs of the first rescue ladder.
  // Only the retry layer's second rescue finds a clean engine.
  FaultInjector inj(target, FaultKind::Throw, /*max_fires=*/3);

  ServeOptions so;
  so.hooks = &inj;
  so.retry.max_attempts = 3;
  so.retry.budget_fraction = 1.0;
  so.retry.base_backoff_seconds = 0.0001;
  InferenceSession session(gm, seeded_input(1, {1, 4}), so);

  const Tensor x = seeded_input(9, {2, 4});
  const Tensor ref = fx::rt_tensor(fx::Interpreter(*gm).run(x));
  Response r = session.run(x.clone());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(bit_equal(r.output, ref));
  EXPECT_EQ(r.attempts, 3u);  // batch + failed rescue + retried rescue
  EXPECT_EQ(inj.fires(), 3);

  session.shutdown();
  const SessionStats s = session.stats();
  EXPECT_GE(s.retries, 1u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_GE(s.degraded_batches, 1u);
}

TEST(ResilientServe, HealthDegradesRungThenEarnsWayBack) {
  register_identity_once("rsv_health_id");
  auto gm = traced_custom("rsv_health_id");
  fx::Node* target = compute_node(*gm);
  ASSERT_NE(target, nullptr);
  FaultInjector inj(target, FaultKind::Throw, /*max_fires=*/-1);

  ServeOptions so;
  so.hooks = &inj;
  so.retry.max_attempts = 1;
  so.breaker.enabled = false;  // isolate the health machine
  so.health.window = 4;
  so.health.min_samples = 2;
  so.health.degrade_error_rate = 0.5;
  so.health.break_error_rate = 0.9;
  so.health.recover_successes = 2;
  InferenceSession session(gm, seeded_input(1, {1, 4}), so);

  const Tensor x = seeded_input(13, {1, 4});
  // Hammer failures until the machine is Broken (Interpreter rung).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(session.run(x.clone()).code, ErrorCode::NodeFailure);
  }
  {
    const SessionStats s = session.stats();
    EXPECT_GE(s.health.degrades, 1u);
    EXPECT_EQ(s.health.state, resilience::HealthState::Broken);
  }
  // Engine recovers; successes earn the rungs back one at a time.
  inj.reset(/*max_fires=*/0);
  for (int i = 0; i < 8; ++i) {
    Response r = session.run(x.clone());
    EXPECT_TRUE(r.ok) << r.error;
  }
  session.shutdown();
  const SessionStats s = session.stats();
  EXPECT_GE(s.health.recoveries, 2u);
  EXPECT_EQ(s.health.state, resilience::HealthState::Healthy);
  // Broken-rung requests really ran below the batched fast path.
  EXPECT_GE(s.degraded_rung_runs, 1u);
}

TEST(ResilientServe, StatsJsonExposesFullTaxonomyAndResilienceState) {
  register_identity_once("rsv_json_id");
  auto gm = traced_custom("rsv_json_id");
  InferenceSession session(gm, seeded_input(1, {1, 4}));
  EXPECT_TRUE(session.run(seeded_input(2, {1, 4})).ok);
  session.shutdown();

  const std::string j = session.stats().to_json();
  for (std::size_t c = 0; c < kNumErrorCodes; ++c) {
    EXPECT_TRUE(contains(j, std::string("\"") +
                                error_code_name(static_cast<ErrorCode>(c)) +
                                "\""))
        << "by_code must list every taxonomy code; missing "
        << error_code_name(static_cast<ErrorCode>(c)) << " in " << j;
  }
  for (const char* key :
       {"\"by_code\"", "\"breaker\"", "\"health\"", "\"retry\"",
        "\"shed_low\"", "\"shed_normal\"", "\"shed_high\"",
        "\"breaker_rejected\"", "\"retries\"", "\"degraded_rung_runs\"",
        "\"state\"", "\"trips\"", "\"closes\""}) {
    EXPECT_TRUE(contains(j, key)) << "missing " << key << " in " << j;
  }
}

// --------------------------------------------------------------------------
// Shutdown racing breaker trips / half-open probes (TSan leg).
// --------------------------------------------------------------------------

TEST(ResilientServeRace, ShutdownRacesBreakerTripAndProbes) {
  register_identity_once("rsv_race_id");
  auto gm = traced_custom("rsv_race_id");
  fx::Node* target = compute_node(*gm);
  ASSERT_NE(target, nullptr);
  // Every 3rd engine event window flips between sick and healthy via two
  // competing clients below; unlimited fires keeps the breaker cycling.
  FaultInjector inj(target, FaultKind::Throw, /*max_fires=*/-1);

  ServeOptions so;
  so.hooks = &inj;
  so.retry.max_attempts = 2;
  so.retry.base_backoff_seconds = 0.00005;
  so.breaker.consecutive_failures = 2;
  so.breaker.cooldown_rejections = 1;
  so.breaker.cooldown_jitter = 0;
  so.breaker.half_open_probes = 1;
  so.breaker.probes_to_close = 1;
  auto session = std::make_unique<InferenceSession>(
      gm, seeded_input(1, {1, 4}), so);

  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  std::vector<std::vector<Response>> responses(4);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 20; ++i) {
        // Clients 0/1 keep the injector flapping on and off so trips,
        // probes, and closes all race the shutdown below.
        if (c == 0 && i % 4 == 0) inj.reset(-1);
        if (c == 1 && i % 4 == 2) inj.reset(0);
        Ticket t = session->submit(seeded_input(
            static_cast<std::uint64_t>(c * 100 + i), {1, 4}));
        responses[static_cast<std::size_t>(c)].push_back(t.response.get());
      }
    });
  }
  go.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  session->shutdown();  // races in-flight trips/probes/rescues
  for (std::thread& t : clients) t.join();

  // Every future resolved with a taxonomy verdict; nothing hung or leaked.
  for (const auto& per : responses) {
    ASSERT_EQ(per.size(), 20u);
    for (const Response& r : per) {
      if (!r.ok) {
        EXPECT_TRUE(r.code == ErrorCode::NodeFailure ||
                    r.code == ErrorCode::CircuitOpen ||
                    r.code == ErrorCode::AdmissionRejected)
            << static_cast<int>(r.code) << " " << r.error;
      }
    }
  }
  session.reset();
  EXPECT_EQ(Storage::alloc_limit(), 0);
}

}  // namespace
}  // namespace fxcpp
