// Symbolic tracing tests — covers the Figure 1/2/3 flows of the paper plus
// the Section 5.2/5.3 customization and failure modes.
#include <gtest/gtest.h>

#include "core/functional.h"
#include "core/graph_module.h"
#include "core/tracer.h"
#include "nn/layers.h"
#include "nn/models/mlp.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::GraphModule;
using fx::Node;
using fx::Opcode;
using fx::symbolic_trace;
using fx::Value;

// Figure 1: my_func(x) = torch.relu(x).neg()
Value my_func(Value x) { return fx::fn::relu(x).neg(); }

TEST(Tracer, Figure1CaptureStructure) {
  auto traced = symbolic_trace(std::function<Value(Value)>(my_func));
  const auto nodes = traced->graph().nodes();
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0]->op(), Opcode::Placeholder);
  EXPECT_EQ(nodes[0]->name(), "x");
  EXPECT_EQ(nodes[1]->op(), Opcode::CallFunction);
  EXPECT_EQ(nodes[1]->target(), "relu");
  EXPECT_EQ(nodes[2]->op(), Opcode::CallMethod);
  EXPECT_EQ(nodes[2]->target(), "neg");
  EXPECT_EQ(nodes[3]->op(), Opcode::Output);
}

TEST(Tracer, Figure1GeneratedCodeMatchesPaper) {
  auto traced = symbolic_trace(std::function<Value(Value)>(my_func));
  const std::string expected =
      "def forward(self, x):\n"
      "    relu = torch.relu(x);  x = None\n"
      "    neg = relu.neg();  relu = None\n"
      "    return neg\n";
  EXPECT_EQ(traced->code(), expected);
}

TEST(Tracer, TracedFunctionExecutesCorrectly) {
  auto traced = symbolic_trace(std::function<Value(Value)>(my_func));
  Tensor x = Tensor::randn({4, 5});
  Tensor expected = ops::neg(ops::relu(x));
  EXPECT_TRUE(allclose(traced->run(x), expected));
}

TEST(Tracer, ModuleTraceRecordsCallModule) {
  auto model = nn::models::mlp({8, 16, 4});
  auto traced = symbolic_trace(model);
  int call_modules = 0;
  for (const Node* n : traced->graph().nodes()) {
    if (n->op() == Opcode::CallModule) ++call_modules;
  }
  // 2 Linear + 1 ReLU leaves; Sequential and MLP are traced through.
  EXPECT_EQ(call_modules, 3);
}

TEST(Tracer, TracedModuleMatchesEager) {
  auto model = nn::models::mlp({8, 16, 4});
  auto traced = symbolic_trace(model);
  Tensor x = Tensor::randn({3, 8});
  Tensor eager = (*model)(Value(x)).tensor();
  EXPECT_TRUE(allclose(traced->run(x), eager));
}

// Figure 3: install a GraphModule inside a new module and re-trace; the
// generated code is inlined.
class SampleModule : public nn::Module {
 public:
  SampleModule() : nn::Module("SampleModule") {}
  Value forward(const std::vector<Value>& inputs) override {
    constexpr double kPi = 3.141592653589793;
    return (*get_submodule("act"))(inputs.at(0) + kPi);
  }
};

TEST(Tracer, Figure3RetracingInlinesGraphModules) {
  // First capture relu(x).neg(), transform relu -> gelu is exercised in the
  // rewriter tests; here we re-trace the captured module directly.
  auto traced = symbolic_trace(std::function<Value(Value)>(my_func));
  auto sample = std::make_shared<SampleModule>();
  sample->register_module("act", traced);

  auto retraced = symbolic_trace(std::static_pointer_cast<nn::Module>(sample));
  // add -> relu -> neg -> output (+ placeholder): GraphModule was inlined,
  // no call_module remains.
  for (const Node* n : retraced->graph().nodes()) {
    EXPECT_NE(n->op(), Opcode::CallModule);
  }
  Tensor x = Tensor::randn({2, 3});
  Tensor expected = ops::neg(ops::relu(ops::add(x, 3.141592653589793)));
  EXPECT_TRUE(allclose(retraced->run(x), expected));
}

TEST(Tracer, RootGraphModuleRetrace) {
  auto traced = symbolic_trace(std::function<Value(Value)>(my_func));
  auto again = symbolic_trace(std::static_pointer_cast<nn::Module>(traced));
  Tensor x = Tensor::randn({2, 2});
  EXPECT_TRUE(allclose(again->run(x), traced->run(x)));
}

// Section 5.3: coercing a Proxy to a concrete value raises a TraceError.
TEST(Tracer, DataDependentControlFlowErrors) {
  auto f = [](Value x) -> Value {
    if (fx::fn::sum(x).item() > 0.0) {  // untraceable
      return fx::fn::relu(x);
    }
    return fx::fn::neg(x);
  };
  EXPECT_THROW(symbolic_trace(std::function<Value(Value)>(f)),
               fx::TraceError);
}

// Section 5.1: control flow NOT dependent on inputs traces fine (the loop
// unrolls into the graph).
TEST(Tracer, InputIndependentControlFlowUnrolls) {
  auto f = [](Value x) -> Value {
    for (int i = 0; i < 3; ++i) x = fx::fn::relu(x);
    return x;
  };
  auto traced = symbolic_trace(std::function<Value(Value)>(f));
  int relus = 0;
  for (const Node* n : traced->graph().nodes()) {
    if (n->target() == "relu") ++relus;
  }
  EXPECT_EQ(relus, 3);
}

// Section 5.2: a custom Tracer that treats user modules as leaves.
class AllLeafTracer : public fx::Tracer {
 public:
  bool is_leaf_module(const nn::Module& m,
                      const std::string& qualname) const override {
    (void)qualname;
    return dynamic_cast<const fx::GraphModule*>(&m) == nullptr;
  }
};

TEST(Tracer, CustomLeafPolicyBlocksOutSubmodules) {
  auto model = nn::models::mlp({8, 16, 4});
  AllLeafTracer tracer;
  auto traced = tracer.trace(model);
  // Only the top-level child ("body", the Sequential) appears.
  int call_modules = 0;
  std::string target;
  for (const Node* n : traced->graph().nodes()) {
    if (n->op() == Opcode::CallModule) {
      ++call_modules;
      target = n->target();
    }
  }
  EXPECT_EQ(call_modules, 1);
  EXPECT_EQ(target, "body");
  Tensor x = Tensor::randn({2, 8});
  EXPECT_TRUE(allclose(traced->run(x), (*model)(Value(x)).tensor()));
}

// Section 5.2: tracing *into* builtin modules via a custom leaf policy
// produces get_attr + call_function nodes instead of call_module.
class NoLeafTracer : public fx::Tracer {
 public:
  bool is_leaf_module(const nn::Module&, const std::string&) const override {
    return false;
  }
};

TEST(Tracer, TraceThroughBuiltinsRecordsGetAttr) {
  auto model = nn::models::mlp({4, 8, 2});
  NoLeafTracer tracer;
  auto traced = tracer.trace(model);
  int get_attrs = 0, call_fns = 0, call_mods = 0;
  for (const Node* n : traced->graph().nodes()) {
    if (n->op() == Opcode::GetAttr) ++get_attrs;
    if (n->op() == Opcode::CallFunction) ++call_fns;
    if (n->op() == Opcode::CallModule) ++call_mods;
  }
  EXPECT_EQ(call_mods, 0);
  EXPECT_EQ(get_attrs, 4);  // 2 Linear x (weight + bias)
  EXPECT_EQ(call_fns, 3);   // linear, relu, linear
  Tensor x = Tensor::randn({2, 4});
  EXPECT_TRUE(allclose(traced->run(x), (*model)(Value(x)).tensor()));
}

// Concrete tensors captured mid-trace become get_attr'd constants.
TEST(Tracer, TensorConstantsBecomeGetAttr) {
  Tensor c = Tensor::randn({3});
  auto f = [&c](Value x) -> Value { return x + Value(c); };
  auto traced = symbolic_trace(std::function<Value(Value)>(f));
  int get_attrs = 0;
  for (const Node* n : traced->graph().nodes()) {
    if (n->op() == Opcode::GetAttr) {
      ++get_attrs;
      EXPECT_EQ(n->target().rfind("_tensor_constant", 0), 0u);
    }
  }
  EXPECT_EQ(get_attrs, 1);
  Tensor x = Tensor::randn({2, 3});
  EXPECT_TRUE(allclose(traced->run(x), ops::add(x, c)));
}

TEST(Tracer, MultiInputFunction) {
  auto f = [](const std::vector<Value>& in) -> Value {
    return fx::fn::mul(in.at(0) + in.at(1), 0.5);
  };
  fx::Tracer t;
  auto traced = t.trace_function(f, {"a", "b"});
  Tensor a = Tensor::randn({4}), b = Tensor::randn({4});
  Tensor out = traced->run({a, b});
  EXPECT_TRUE(allclose(out, ops::mul(ops::add(a, b), 0.5)));
}

TEST(Tracer, GraphLintHoldsAfterTrace) {
  auto model = nn::models::mlp({8, 16, 4});
  auto traced = symbolic_trace(model);
  EXPECT_NO_THROW(traced->graph().lint());
}

}  // namespace
}  // namespace fxcpp
