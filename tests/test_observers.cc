// Observer tests: min/max recording, fake-quant snapping, and the
// percentile-clipping HistogramObserver's robustness to outliers.
#include <gtest/gtest.h>

#include "quant/observer.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

TEST(Observer, RecordsRunningMinMax) {
  quant::Observer obs;
  EXPECT_FALSE(obs.observed());
  EXPECT_THROW(obs.qparams(), std::logic_error);
  obs.forward({fx::Value(Tensor::from_vector({-1.f, 2.f}, {2}))});
  obs.forward({fx::Value(Tensor::from_vector({0.5f, 3.f}, {2}))});
  EXPECT_TRUE(obs.observed());
  EXPECT_EQ(obs.min_val(), -1.0);
  EXPECT_EQ(obs.max_val(), 3.0);
  const QParams q = obs.qparams();
  EXPECT_NEAR(q.scale, 4.0 / 255.0, 1e-9);
}

TEST(Observer, IsIdentityOnData) {
  quant::Observer obs;
  Tensor x = Tensor::randn({8});
  Tensor y = obs.forward({fx::Value(x)}).tensor();
  EXPECT_TRUE(allclose(y, x));
}

TEST(HistogramObserver, PercentileClipsOutliers) {
  quant::HistogramObserver obs(0.005, 0.995);
  // Bulk in [-1, 1], a few 100x outliers.
  Tensor bulk = Tensor::rand({2000});
  bulk = ops::sub(ops::mul(bulk, 2.0), 1.0);
  obs.forward({fx::Value(bulk)});
  Tensor outliers = Tensor::from_vector({100.f, -100.f}, {2});
  obs.forward({fx::Value(outliers)});

  const QParams naive = obs.qparams();             // min/max: huge scale
  const QParams clipped = obs.qparams_percentile();  // percentile: tight
  EXPECT_GT(naive.scale, 0.5);
  EXPECT_LT(clipped.scale, naive.scale / 10.0);
  // The clipped scale still covers the bulk.
  EXPECT_GT(clipped.scale * 255.0, 1.8);
}

TEST(HistogramObserver, RangeGrowthRebins) {
  quant::HistogramObserver obs(0.0, 1.0);  // no clipping: spans everything
  obs.forward({fx::Value(Tensor::rand({100}))});          // [0, 1)
  obs.forward({fx::Value(ops::mul(Tensor::rand({100}), 10.0))});  // [0, 10)
  const QParams q = obs.qparams_percentile();
  EXPECT_GT(q.scale * 255.0, 8.0);  // range covers ~[0, 10]
}

TEST(HistogramObserver, MatchesMinMaxOnCleanData) {
  quant::HistogramObserver obs(0.0, 1.0);
  Tensor x = Tensor::randn({4000});
  obs.forward({fx::Value(x)});
  const QParams a = obs.qparams();
  const QParams b = obs.qparams_percentile();
  EXPECT_NEAR(a.scale, b.scale, a.scale * 0.1);
}

}  // namespace
}  // namespace fxcpp
