// Quantization workflow tests (Section 6.2.1): prepare/calibrate/convert on
// MLPs, conv nets, and residual adds; numeric error bounds vs fp32.
#include <gtest/gtest.h>

#include <cmath>

#include "core/tracer.h"
#include "nn/models/deep_recommender.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet.h"
#include "quant/quantize.h"
#include "tensor/ops.h"
#include "tensor/quantized.h"

namespace fxcpp {
namespace {

using fx::Node;
using fx::Opcode;

std::vector<Tensor> make_batches(Shape shape, int n) {
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(Tensor::randn(shape));
  return out;
}

// Relative L2 error between two tensors.
double rel_error(const Tensor& got, const Tensor& want) {
  double num = 0.0, den = 0.0;
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    const double d = got.at_flat(i) - want.at_flat(i);
    num += d * d;
    den += want.at_flat(i) * want.at_flat(i);
  }
  return std::sqrt(num / (den + 1e-12));
}

TEST(QuantKernels, QuantizeDequantizeRoundTrip) {
  Tensor x = Tensor::randn({64});
  const QParams q = ops::choose_qparams(-4.0, 4.0);
  Tensor dq = ops::dequantize(ops::quantize_per_tensor(x, q.scale, q.zero_point));
  // Error bounded by half a quantization step (plus clipping, rare at 4
  // sigma).
  EXPECT_LT(max_abs_diff(dq, x), q.scale * 0.51 + 0.2);
}

TEST(QuantKernels, QuantizedLinearMatchesFloat) {
  Tensor x = Tensor::randn({4, 32});
  Tensor w = Tensor::randn({16, 32});
  Tensor b = Tensor::randn({16});
  Tensor ref = ops::linear(x, w, b);

  const QParams qx = ops::choose_qparams(-4.0, 4.0);
  Tensor x_q = ops::quantize_per_tensor(x, qx.scale, qx.zero_point);
  auto packed = ops::PackedLinearWeight::pack(w, b);
  double mn = 1e30, mx = -1e30;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    mn = std::min(mn, ref.at_flat(i));
    mx = std::max(mx, ref.at_flat(i));
  }
  const QParams qo = ops::choose_qparams(mn, mx);
  Tensor y_q = ops::quantized_linear(x_q, packed, qo.scale, qo.zero_point);
  EXPECT_LT(rel_error(ops::dequantize(y_q), ref), 0.05);
}

TEST(QuantKernels, QuantizedConvMatchesFloat) {
  Tensor x = Tensor::randn({1, 4, 8, 8});
  Tensor w = Tensor::randn({6, 4, 3, 3});
  Tensor b = Tensor::randn({6});
  Tensor ref = ops::conv2d(x, w, b, {1, 1}, {1, 1});

  const QParams qx = ops::choose_qparams(-4.0, 4.0);
  Tensor x_q = ops::quantize_per_tensor(x, qx.scale, qx.zero_point);
  auto packed = ops::PackedConvWeight::pack(w, b, {1, 1}, {1, 1});
  double mn = 1e30, mx = -1e30;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    mn = std::min(mn, ref.at_flat(i));
    mx = std::max(mx, ref.at_flat(i));
  }
  const QParams qo = ops::choose_qparams(mn, mx);
  Tensor y_q = ops::quantized_conv2d(x_q, packed, qo.scale, qo.zero_point);
  EXPECT_LT(rel_error(ops::dequantize(y_q), ref), 0.08);
}

TEST(QuantWorkflow, PrepareInsertsObservers) {
  auto model = nn::models::mlp({16, 32, 8}, "relu");
  auto gm = fx::symbolic_trace(model);
  const std::size_t before = gm->graph().size();
  const int obs = quant::prepare(*gm);
  // 1 placeholder + 3 quantizable producers (linear, relu, linear).
  EXPECT_EQ(obs, 4);
  EXPECT_EQ(gm->graph().size(), before + 4);
}

TEST(QuantWorkflow, EndToEndMlpAccuracy) {
  auto model = nn::models::mlp({16, 32, 8}, "relu");
  Tensor x = Tensor::randn({8, 16});
  Tensor ref = (*model)(fx::Value(x)).tensor();
  auto q = quant::quantize_model(model, make_batches({8, 16}, 8));
  Tensor got = q->run(x);
  EXPECT_LT(rel_error(got, ref), 0.1);
}

TEST(QuantWorkflow, ConvertedGraphIsInt8) {
  auto model = nn::models::mlp({16, 32, 8}, "relu");
  auto q = quant::quantize_model(model, make_batches({4, 16}, 4));
  // Expect quantize at entry, dequantize at exit, quantized modules between.
  int quants = 0, dequants = 0, float_linears = 0;
  for (const Node* n : q->graph().nodes()) {
    if (n->target() == "quantize_per_tensor") ++quants;
    if (n->target() == "dequantize") ++dequants;
    if (n->op() == Opcode::CallModule &&
        q->resolve_module(n->target())->kind() == "Linear") {
      ++float_linears;
    }
  }
  EXPECT_EQ(quants, 1);
  EXPECT_EQ(dequants, 1);
  EXPECT_EQ(float_linears, 0);
}

TEST(QuantWorkflow, DeepRecommenderSeluQuantizes) {
  nn::models::DeepRecommenderConfig cfg;
  cfg.item_dim = 64;
  cfg.hidden = {32, 16};
  auto model = nn::models::deep_recommender(cfg);
  Tensor x = Tensor::rand({4, 64});
  Tensor ref = (*model)(fx::Value(x)).tensor();
  auto q = quant::quantize_model(model, make_batches({4, 64}, 8));
  EXPECT_LT(rel_error(q->run(x), ref), 0.25);
  // All SELUs became LUT modules.
  for (const Node* n : q->graph().nodes()) {
    if (n->op() == Opcode::CallModule) {
      EXPECT_NE(q->resolve_module(n->target())->kind(), "SELU");
    }
  }
}

TEST(QuantWorkflow, ResidualAddQuantizes) {
  // x -> linear -> (+x) -> relu, exercising quantized_add.
  class Residual : public nn::Module {
   public:
    Residual() : nn::Module("Residual") {
      register_module("lin", std::make_shared<nn::Linear>(16, 16));
    }
    fx::Value forward(const std::vector<fx::Value>& in) override {
      return fx::fn::relu((*get_submodule("lin"))(in.at(0)) + in.at(0));
    }
  };
  auto model = std::make_shared<Residual>();
  Tensor x = Tensor::randn({4, 16});
  Tensor ref = (*model)(fx::Value(x)).tensor();
  auto q = quant::quantize_model(model, make_batches({4, 16}, 8));
  bool saw_qadd = false;
  for (const Node* n : q->graph().nodes()) {
    if (n->target() == "quantized_add") saw_qadd = true;
  }
  EXPECT_TRUE(saw_qadd);
  EXPECT_LT(rel_error(q->run(x), ref), 0.15);
}

TEST(QuantWorkflow, SmallResnetQuantizes) {
  auto model = nn::models::resnet18(8, 10);
  Tensor x = Tensor::randn({1, 3, 32, 32});
  Tensor ref = (*model)(fx::Value(x)).tensor();
  auto q = quant::quantize_model(model, make_batches({1, 3, 32, 32}, 3));
  // maxpool/avgpool stay float; convs quantize. Just verify numerics hold.
  EXPECT_LT(rel_error(q->run(x), ref), 0.5);
}

TEST(QuantWorkflow, FakeQuantObserverSnapsValues) {
  auto model = nn::models::mlp({8, 8}, "relu");
  auto gm = fx::symbolic_trace(model);
  quant::QConfig cfg;
  cfg.fake_quant = true;
  quant::prepare(*gm, cfg);
  Tensor x = Tensor::randn({2, 8});
  Tensor y1 = gm->run(x);
  Tensor y2 = gm->run(x);
  // After the first pass populated stats, outputs go through the quantized
  // grid — still close to float but not necessarily identical run-to-run
  // while ranges move. Just check it runs and stays near the fp32 result.
  Tensor ref = (*model)(fx::Value(x)).tensor();
  EXPECT_LT(rel_error(y2, ref), 0.2);
  (void)y1;
}

TEST(QuantKernels, LutActivationErrorBound) {
  Tensor x = Tensor::randn({256});
  const QParams qx = ops::choose_qparams(-4.0, 4.0);
  Tensor x_q = ops::quantize_per_tensor(x, qx.scale, qx.zero_point);
  const QParams qo = ops::choose_qparams(-2.0, 4.0);
  Tensor y_q = ops::quantized_unary_lut(
      x_q, +[](float v) { return v > 0.f ? v : 0.f; }, qo.scale,
      qo.zero_point);
  Tensor ref = ops::relu(x);
  EXPECT_LT(max_abs_diff(ops::dequantize(y_q), ref),
            qx.scale + qo.scale + 0.05);
}

}  // namespace
}  // namespace fxcpp
