// fx::Transformer and the passes built on it: identity rewrites, batch-norm
// decomposition, argument normalization, and unused-submodule pruning.
#include <gtest/gtest.h>

#include "core/functional.h"
#include "core/transformer.h"
#include "core/tracer.h"
#include "nn/models/resnet.h"
#include "nn/models/mlp.h"
#include "passes/cleanup.h"
#include "passes/decompose.h"
#include "passes/fuse_conv_bn.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Node;
using fx::Opcode;
using fx::Value;

TEST(Transformer, IdentityRewritePreservesProgram) {
  auto gm = fx::symbolic_trace(nn::models::mlp({8, 16, 4}, "relu"));
  fx::Transformer t(*gm);
  auto copy = t.transform();
  EXPECT_EQ(copy->graph().size(), gm->graph().size());
  Tensor x = Tensor::randn({2, 8});
  EXPECT_TRUE(allclose(copy->run(x), gm->run(x)));
  // Source is untouched.
  EXPECT_NO_THROW(gm->graph().lint());
}

TEST(Transformer, HookCanRewriteFunctions) {
  // Swap every relu for gelu via the Transformer (alternative to the
  // pattern rewriter for whole-target rewrites).
  class Swap : public fx::Transformer {
   public:
    using fx::Transformer::Transformer;
    Value call_function(const Node& n) override {
      if (n.target() == "relu") {
        return fx::fn::gelu(value_of(n.args().at(0).node()));
      }
      return fx::Transformer::call_function(n);
    }
  };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(
      [](Value x) { return fx::fn::relu(x).neg(); }));
  Swap t(*gm);
  auto out = t.transform();
  Tensor x = Tensor::randn({4});
  EXPECT_TRUE(allclose(out->run(x), ops::neg(ops::gelu(x))));
}

TEST(Decompose, FunctionalBatchNorm) {
  // Functional-style model: trace through builtins to get batch_norm as a
  // call_function, then decompose it.
  class F : public nn::Module {
   public:
    F() : nn::Module("F") {
      register_parameter("g", Tensor::rand({4}));
      register_parameter("b", Tensor::randn({4}));
      register_buffer("m", Tensor::randn({4}));
      register_buffer("v", ops::add(Tensor::rand({4}), 0.5));
    }
    Value forward(const std::vector<Value>& in) override {
      return fx::fn::batch_norm(in.at(0), param_value("g"), param_value("b"),
                                param_value("m"), param_value("v"), 1e-5);
    }
  };
  auto gm = fx::symbolic_trace(
      std::static_pointer_cast<nn::Module>(std::make_shared<F>()));
  auto dec = passes::decompose_batch_norm(*gm);
  for (const Node* n : dec->graph().nodes()) {
    EXPECT_NE(n->target(), "batch_norm");
  }
  Tensor x = Tensor::randn({2, 4, 3, 3});
  EXPECT_LT(max_abs_diff(dec->run(x), gm->run(x)), 1e-4);
}

TEST(Decompose, BatchNormModulesInResNet) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  auto dec = passes::decompose_batch_norm(*gm);
  int bn_modules = 0;
  for (const Node* n : dec->graph().nodes()) {
    if (n->op() == Opcode::CallModule &&
        dec->resolve_module(n->target())->kind() == "BatchNorm2d") {
      ++bn_modules;
    }
  }
  EXPECT_EQ(bn_modules, 0);
  Tensor x = Tensor::randn({1, 3, 32, 32});
  EXPECT_LT(max_abs_diff(dec->run(x), gm->run(x)), 1e-3);
}

TEST(NormalizeArgs, PositionalBecomeKwargs) {
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(
      [](Value x) { return fx::fn::softmax(fx::fn::flatten(x, 1), -1); }));
  Tensor x = Tensor::randn({2, 3, 4});
  Tensor before = gm->run(x);
  const int changed = passes::normalize_args(*gm);
  EXPECT_EQ(changed, 2);
  for (const Node* n : gm->graph().nodes()) {
    if (n->target() == "softmax") {
      EXPECT_EQ(n->args().size(), 1u);
      EXPECT_EQ(n->kwarg("dim").as_int(), -1);
    }
    if (n->target() == "flatten") {
      EXPECT_EQ(n->kwarg("start_dim").as_int(), 1);
    }
  }
  EXPECT_TRUE(allclose(gm->run(x), before));
  // Codegen renders keyword form.
  EXPECT_NE(gm->code().find("dim = -1"), std::string::npos);
}

TEST(DeleteUnused, PrunesFoldedBatchNorms) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  passes::fuse_conv_bn(*gm);
  const int removed = passes::delete_all_unused_submodules(*gm);
  // 20 BN modules became unused (none of their params referenced).
  EXPECT_EQ(removed, 20);
  // The model still runs (tape rebuilt against the pruned hierarchy).
  gm->recompile();
  EXPECT_NO_THROW(gm->run(Tensor::randn({1, 3, 32, 32})));
  // No BatchNorm2d remains anywhere in the hierarchy.
  std::function<void(const nn::Module&)> walk = [&](const nn::Module& m) {
    for (const auto& [name, c] : m.children()) {
      (void)name;
      EXPECT_NE(c->kind(), "BatchNorm2d");
      walk(*c);
    }
  };
  walk(*gm->root());
}

TEST(DeleteUnused, KeepsEverythingWhenAllUsed) {
  auto gm = fx::symbolic_trace(nn::models::mlp({4, 8, 2}, "relu"));
  EXPECT_EQ(passes::delete_all_unused_submodules(*gm), 0);
}

}  // namespace
}  // namespace fxcpp
