// Static memory planner + pack cache: differential fuzzing of planned
// execution against the unplanned engines (bit-equal across interpreter /
// serial tape / parallel x{1,2,8}), first-fit packing semantics, shape-change
// re-planning, fault-injection interplay, the plan.aliasing verifier rule,
// and PackCache hit/repack/eviction/concurrency behavior. All randomness is
// seeded; the whole binary is run under ASan and TSan by scripts/check.sh.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "analysis/verifier.h"
#include "core/interpreter.h"
#include "core/memory_plan.h"
#include "core/parallel_executor.h"
#include "core/tracer.h"
#include "passes/memory_planner.h"
#include "resilience/exec_error.h"
#include "runtime/rng.h"
#include "tensor/ops.h"
#include "tensor/pack_cache.h"

namespace fxcpp {
namespace {

using fx::Argument;
using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::RtValue;

// --------------------------------------------------------------------------
// Bit-level tensor equality (NaN-safe, unlike operator== / allclose).
// --------------------------------------------------------------------------

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

bool bit_equal(const RtValue& a, const RtValue& b) {
  if (a.index() != b.index()) return false;
  if (fx::rt_is_tensor(a)) return bit_equal(fx::rt_tensor(a), fx::rt_tensor(b));
  return true;  // fuzzed graphs only produce tensors
}

// --------------------------------------------------------------------------
// Seeded random-DAG generator — the PR 2 differential-fuzz corpus. SxS fp32
// everywhere so every op composes; sinks folded into one output.
// --------------------------------------------------------------------------

constexpr std::int64_t kSide = 4;

Tensor random_tensor(rt::Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(kSide * kSide));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return Tensor::from_vector(v, {kSide, kSide});
}

struct FuzzCase {
  std::shared_ptr<GraphModule> gm;
  std::vector<RtValue> inputs;
};

FuzzCase random_dag(std::uint64_t seed) {
  rt::Rng rng(seed);
  auto g = std::make_unique<Graph>();
  std::vector<Node*> pool;

  const int n_inputs = 1 + static_cast<int>(rng.randint(0, 1));
  for (int i = 0; i < n_inputs; ++i) {
    pool.push_back(g->placeholder("x" + std::to_string(i)));
  }

  static const char* kBinary[] = {"add", "sub", "mul"};
  static const char* kUnary[] = {"relu", "neg", "sigmoid", "tanh", "gelu"};

  const int n_ops = 5 + static_cast<int>(rng.randint(0, 20));
  for (int i = 0; i < n_ops; ++i) {
    auto pick = [&]() -> Node* {
      return pool[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(pool.size()) - 1))];
    };
    Node* n = nullptr;
    switch (rng.randint(0, 3)) {
      case 0:
        n = g->call_function(kBinary[rng.randint(0, 2)], {pick(), pick()});
        break;
      case 1:
        n = g->call_function(kUnary[rng.randint(0, 4)], {pick()});
        break;
      case 2:
        n = g->call_function(kBinary[rng.randint(0, 2)],
                             {pick(), Argument(rng.uniform(-2.0, 2.0))});
        break;
      default:
        n = g->call_function("matmul", {pick(), pick()});
        break;
    }
    pool.push_back(n);
  }

  std::vector<Node*> sinks;
  for (Node* n : pool) {
    if (n->op() != fx::Opcode::Placeholder && n->users().empty()) {
      sinks.push_back(n);
    }
  }
  Node* acc = sinks.empty() ? pool.back() : sinks[0];
  for (std::size_t i = 1; i < sinks.size(); ++i) {
    acc = g->call_function("add", {acc, sinks[i]});
  }
  g->output(acc);

  FuzzCase fc;
  fc.gm = std::make_shared<GraphModule>(nullptr, std::move(g), "Fuzz");
  fc.gm->recompile();
  for (int i = 0; i < n_inputs; ++i) fc.inputs.emplace_back(random_tensor(rng));
  return fc;
}

std::vector<Tensor> as_tensors(const std::vector<RtValue>& in) {
  std::vector<Tensor> ts;
  for (const auto& v : in) ts.push_back(fx::rt_tensor(v));
  return ts;
}

// A fixed alias-chain graph: matmul -> relu -> neg -> tanh. matmul/relu/neg
// are planned (relu and neg in place over the matmul slot); tanh escapes
// through Output and must stay on the heap.
FuzzCase chain_case() {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* m = g->call_function("matmul", {x, x});
  Node* r = g->call_function("relu", {m});
  Node* n = g->call_function("neg", {r});
  Node* t = g->call_function("tanh", {n});
  g->output(t);
  FuzzCase fc;
  fc.gm = std::make_shared<GraphModule>(nullptr, std::move(g), "Chain");
  fc.gm->recompile();
  rt::Rng rng(11);
  fc.inputs.emplace_back(random_tensor(rng));
  return fc;
}

// --------------------------------------------------------------------------
// first_fit_pack: the extracted TRT step semantics, pinned directly.
// --------------------------------------------------------------------------

TEST(FirstFitPack, TrtStepSemantics) {
  // input(def -1) -> a(def 0) -> b(def 1) -> c(def 2), input dies at step 0.
  const std::vector<passes::LiveRange> ranges = {
      {100, -1, 0},  // graph input: allocated before step 0, freed after it
      {40, 0, 1},
      {60, 1, 2},
      {40, 2, 3},
  };
  const auto p = passes::first_fit_pack(ranges, 4);
  ASSERT_EQ(p.offsets.size(), 4u);
  EXPECT_EQ(p.offsets[0], 0);    // pre-loop
  EXPECT_EQ(p.offsets[1], 100);  // input still live at step 0 (alloc first)
  EXPECT_EQ(p.offsets[2], 0);    // first-fit into the freed input block
  EXPECT_EQ(p.offsets[3], 60);   // exact-size reuse of the shrunken block
  EXPECT_EQ(p.high_water, 140);
}

TEST(FirstFitPack, NeverFreedRangesKeepTheirBlocks) {
  const std::vector<passes::LiveRange> ranges = {
      {32, 0, 5},  // last_use >= num_steps: kept (the TRT output buffer)
      {32, 1, 2},
      {32, 3, 4},
  };
  const auto p = passes::first_fit_pack(ranges, 5);
  EXPECT_EQ(p.offsets[0], 0);
  EXPECT_EQ(p.offsets[1], 32);
  EXPECT_EQ(p.offsets[2], 32);  // reuses range 1's block, never range 0's
  EXPECT_EQ(p.high_water, 64);
}

// --------------------------------------------------------------------------
// Plan structure on the fixed chain.
// --------------------------------------------------------------------------

TEST(MemoryPlan, ChainAliasesInPlaceAndDemotesEscapes) {
  FuzzCase fc = chain_case();
  const fx::TapePlan& plan =
      passes::compile_planned(*fc.gm, as_tensors(fc.inputs));
  // Tape: matmul, relu, neg, tanh, output.
  ASSERT_EQ(plan.intervals.size(), 5u);
  EXPECT_TRUE(plan.intervals[0].planned);   // matmul
  EXPECT_TRUE(plan.intervals[1].planned);   // relu, in place over matmul
  EXPECT_TRUE(plan.intervals[2].planned);   // neg, in place over relu
  EXPECT_FALSE(plan.intervals[3].planned);  // tanh escapes -> heap
  EXPECT_TRUE(plan.intervals[1].in_place);
  EXPECT_EQ(plan.intervals[1].alias_of, 0);
  EXPECT_TRUE(plan.intervals[2].in_place);
  EXPECT_EQ(plan.intervals[2].alias_of, 1);
  EXPECT_EQ(plan.planned_count, 3);
  EXPECT_EQ(plan.aliased_count, 2);
  // One 4x4 fp32 slot, 64-byte padded: the whole chain runs in 64 bytes.
  EXPECT_EQ(plan.arena_bytes, 64u);
  EXPECT_EQ(plan.intervals[0].offset, plan.intervals[1].offset);
  EXPECT_EQ(plan.intervals[1].offset, plan.intervals[2].offset);

  const RtValue ref = fx::Interpreter(*fc.gm).run(fc.inputs);
  EXPECT_TRUE(bit_equal(ref, fc.gm->run_planned(fc.inputs).front()));
}

TEST(MemoryPlan, EscapedOutputsSurviveArenaReuse) {
  FuzzCase fc = chain_case();
  passes::compile_planned(*fc.gm, as_tensors(fc.inputs));
  const Tensor out1 = std::get<Tensor>(fc.gm->run_planned(fc.inputs).front());
  const Tensor saved = out1.clone();
  rt::Rng rng(77);
  const std::vector<RtValue> other{RtValue(random_tensor(rng))};
  fc.gm->run_planned(other);  // reuses the arena
  EXPECT_TRUE(bit_equal(out1, saved))
      << "a returned tensor was mutated by a later planned run";
}

// --------------------------------------------------------------------------
// Differential fuzz: planned execution bit-equals the unplanned engines
// across serial and parallel x{1,2,8}, over the PR 2 DAG corpus.
// --------------------------------------------------------------------------

TEST(MemoryPlanFuzz, PlannedMatchesUnplannedAcrossEngines) {
  constexpr int kCases = 150;
  for (int c = 0; c < kCases; ++c) {
    FuzzCase fc = random_dag(0xA11A5 + static_cast<std::uint64_t>(c));

    const RtValue ref = fx::Interpreter(*fc.gm).run(fc.inputs);
    const std::vector<RtValue> tape = fc.gm->compiled_graph().run(fc.inputs);
    ASSERT_TRUE(bit_equal(ref, tape[0])) << "tape diverges at seed " << c;

    const fx::TapePlan& plan =
        passes::compile_planned(*fc.gm, as_tensors(fc.inputs));
    ASSERT_EQ(plan.intervals.size(), fc.gm->compiled_graph().instrs().size());

    // Two serial planned runs: the second reuses the warm arena.
    for (int rep = 0; rep < 2; ++rep) {
      const std::vector<RtValue> planned = fc.gm->run_planned(fc.inputs);
      ASSERT_EQ(planned.size(), 1u);
      ASSERT_TRUE(bit_equal(ref, planned[0]))
          << "planned tape diverges at seed " << c << " rep " << rep << ":\n"
          << fc.gm->graph().to_string();
    }

    for (int threads : {1, 2, 8}) {
      fx::ExecutorOptions eo;
      eo.num_threads = threads;
      eo.use_plan = true;
      fx::ParallelExecutor ex(*fc.gm, eo);
      for (int rep = 0; rep < 2; ++rep) {
        const std::vector<RtValue> par = ex.run(fc.inputs);
        ASSERT_EQ(par.size(), 1u);
        ASSERT_TRUE(bit_equal(ref, par[0]))
            << "planned parallel diverges at seed " << c << " threads "
            << threads << " rep " << rep << ":\n"
            << fc.gm->graph().to_string();
      }
    }

    // The installed plan must satisfy its own soundness rule.
    if (c < 25) {
      const auto rep = analysis::verify(*fc.gm);
      EXPECT_EQ(rep.count_rule("plan.aliasing"), 0)
          << "seed " << c << ":\n"
          << rep.to_string();
    }
  }
}

// --------------------------------------------------------------------------
// Shape change => transparent re-plan (guarded by the plan's input contract).
// --------------------------------------------------------------------------

TEST(MemoryPlan, ShapeChangeTriggersTransparentReplan) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  Node* m = g->call_function("matmul", {x, x});
  Node* r = g->call_function("relu", {m});
  g->output(r);
  GraphModule gm(nullptr, std::move(g), "Poly");
  gm.recompile();

  const Tensor small = Tensor::randn({4, 4});
  passes::compile_planned(gm, {small});
  ASSERT_TRUE(gm.has_plan());
  const std::size_t small_arena = gm.plan()->arena_bytes;

  const Tensor big = Tensor::randn({16, 16});
  const std::vector<RtValue> big_in{RtValue(big)};
  const RtValue ref = fx::Interpreter(gm).run(big_in);
  EXPECT_TRUE(bit_equal(ref, gm.run_planned(big_in).front()));
  ASSERT_TRUE(gm.has_plan());
  EXPECT_EQ(gm.plan()->guards[0].shape, Shape({16, 16}))
      << "the replanner did not refresh the plan's input contract";
  EXPECT_GT(gm.plan()->arena_bytes, small_arena);

  // And back: the module is shape-polymorphic in both directions.
  const std::vector<RtValue> small_in{RtValue(small)};
  const RtValue sref = fx::Interpreter(gm).run(small_in);
  EXPECT_TRUE(bit_equal(sref, gm.run_planned(small_in).front()));
  EXPECT_TRUE(bit_equal(sref, gm.run_planned_parallel(small_in, 2).front()));
}

TEST(MemoryPlan, PlannedParallelExecutorRejectsContractViolations) {
  FuzzCase fc = chain_case();
  passes::compile_planned(*fc.gm, as_tensors(fc.inputs));
  fx::ExecutorOptions eo;
  eo.num_threads = 2;
  eo.use_plan = true;
  fx::ParallelExecutor ex(*fc.gm, eo);
  const std::vector<RtValue> wrong{RtValue(Tensor::randn({8, 8}))};
  try {
    ex.run(wrong);
    FAIL() << "expected ExecError{GuardViolation}";
  } catch (const ExecError& e) {
    EXPECT_EQ(e.code(), ErrorCode::GuardViolation);
  }
  // The module-level entry point re-plans instead of throwing.
  const RtValue ref = fx::Interpreter(*fc.gm).run(wrong);
  EXPECT_TRUE(bit_equal(ref, fc.gm->run_planned_parallel(wrong, 2).front()));
}

TEST(MemoryPlan, RecompileClearsPlanAndReplannerRestoresIt) {
  FuzzCase fc = chain_case();
  passes::compile_planned(*fc.gm, as_tensors(fc.inputs));
  ASSERT_TRUE(fc.gm->has_plan());
  fc.gm->recompile();  // tape rebuilt: the old plan's indices are meaningless
  EXPECT_FALSE(fc.gm->has_plan());
  const RtValue ref = fx::Interpreter(*fc.gm).run(fc.inputs);
  EXPECT_TRUE(bit_equal(ref, fc.gm->run_planned(fc.inputs).front()));
  EXPECT_TRUE(fc.gm->has_plan()) << "the replanner should have re-planned";
}

// --------------------------------------------------------------------------
// Fault-injection interplay (PR 4): arena adoptions bypass the thread-local
// allocation ceiling (they do not allocate), heap allocations still trip it,
// and a tripped planned run leaves the module fully usable.
// --------------------------------------------------------------------------

TEST(MemoryPlan, AllocCeilingTripsHeapButNotArenaAdoptions) {
  FuzzCase fc = chain_case();
  passes::compile_planned(*fc.gm, as_tensors(fc.inputs));
  const RtValue ref = fx::Interpreter(*fc.gm).run(fc.inputs);
  fc.gm->run_planned(fc.inputs);  // warm: every planned slot adopts

  // A 1-byte ceiling fails the first *heap* allocation. The planned chain
  // (matmul/relu/neg) adopts arena slots and passes; the escaped tanh output
  // must heap-allocate and trips the ceiling.
  Storage::set_alloc_limit(1);
  try {
    fc.gm->run_planned(fc.inputs);
    FAIL() << "expected the escaped tanh output to trip the ceiling";
  } catch (const ExecError& e) {
    EXPECT_EQ(e.code(), ErrorCode::AllocLimit);
    EXPECT_NE(std::string(e.what()).find("tanh"), std::string::npos)
        << "the planned chain should pass; only the escape allocates: "
        << e.what();
  }
  EXPECT_EQ(Storage::alloc_limit(), 0) << "ceiling should be single-shot";
  EXPECT_FALSE(Storage::placement_armed())
      << "an unwinding planned run leaked its placement hint";

  // Fully recovered: same bits as the reference.
  EXPECT_TRUE(bit_equal(ref, fc.gm->run_planned(fc.inputs).front()));
}

// --------------------------------------------------------------------------
// plan.aliasing verifier rule: clean on planner output, fires on corruption.
// --------------------------------------------------------------------------

TEST(PlanAliasingRule, CleanOnPlannerOutput) {
  FuzzCase fc = chain_case();
  passes::compile_planned(*fc.gm, as_tensors(fc.inputs));
  const auto rep = analysis::verify(*fc.gm);
  EXPECT_EQ(rep.count_rule("plan.aliasing"), 0) << rep.to_string();
}

TEST(PlanAliasingRule, FlagsOverlappingLiveIntervals) {
  FuzzCase fc = chain_case();
  passes::compile_planned(*fc.gm, as_tensors(fc.inputs));
  auto bad = std::make_shared<fx::TapePlan>(*fc.gm->plan());
  // Pretend relu's slot is an independent buffer at matmul's offset: two
  // simultaneously-live planned intervals now share arena bytes.
  bad->intervals[1].in_place = false;
  bad->intervals[1].alias_of = -1;
  fc.gm->install_plan(bad);
  const auto rep = analysis::verify(*fc.gm);
  EXPECT_GT(rep.count_rule("plan.aliasing"), 0) << rep.to_string();
}

TEST(PlanAliasingRule, FlagsInPlaceReuseOfLiveInput) {
  FuzzCase fc = chain_case();
  passes::compile_planned(*fc.gm, as_tensors(fc.inputs));
  auto bad = std::make_shared<fx::TapePlan>(*fc.gm->plan());
  // Extend matmul's lifetime past relu's in-place write over it.
  bad->intervals[0].last_use = 3;
  fc.gm->install_plan(bad);
  const auto rep = analysis::verify(*fc.gm);
  EXPECT_GT(rep.count_rule("plan.aliasing"), 0) << rep.to_string();
}

// --------------------------------------------------------------------------
// PackCache: hit/miss/repack/eviction semantics, all per-thread.
// --------------------------------------------------------------------------

TEST(PackCacheTest, HitsOnRepeatedNonContiguousWeight) {
  auto& pc = PackCache::local();
  pc.clear();
  Tensor full = Tensor::randn({8, 10});
  const Tensor w = full.narrow(1, 0, 8);  // non-contiguous view
  ASSERT_FALSE(w.is_contiguous());

  const Tensor p1 = pc.packed_weight(w);
  EXPECT_TRUE(p1.is_contiguous());
  EXPECT_EQ(pc.stats().misses, 1);
  const Tensor p2 = pc.packed_weight(w);
  EXPECT_EQ(pc.stats().hits, 1);
  EXPECT_EQ(p1.storage_id(), p2.storage_id()) << "hit must reuse the pack";
  EXPECT_TRUE(bit_equal(p1, w.contiguous()));

  // Contiguous weights bypass the cache entirely.
  const Tensor c = Tensor::randn({4, 4});
  EXPECT_EQ(pc.packed_weight(c).storage_id(), c.storage_id());
}

TEST(PackCacheTest, RepacksWhenTheWeightMutates) {
  auto& pc = PackCache::local();
  pc.clear();
  Tensor full = Tensor::randn({6, 8});
  const Tensor w = full.narrow(1, 0, 6);
  const Tensor p1 = pc.packed_weight(w);
  full.fill_(0.25);  // bumps the storage version
  const Tensor p2 = pc.packed_weight(w);
  EXPECT_EQ(pc.stats().repacks, 1);
  EXPECT_TRUE(bit_equal(p2, w.contiguous()));
  EXPECT_FALSE(bit_equal(p1, p2));
}

TEST(PackCacheTest, EvictsFifoAtCapacity) {
  auto& pc = PackCache::local();
  pc.clear();
  pc.set_capacity(2);
  std::vector<Tensor> keep;  // pin sources so storages stay distinct
  for (int i = 0; i < 3; ++i) {
    keep.push_back(Tensor::randn({4, 6}));
    pc.packed_weight(keep.back().narrow(1, 0, 4));
  }
  EXPECT_LE(pc.size(), 2u);
  EXPECT_GE(pc.stats().evictions, 1);
  pc.set_capacity(64);
  pc.clear();
}

TEST(PackCacheTest, WorkspaceGrowsMonotonically) {
  auto& pc = PackCache::local();
  pc.clear();
  float* p100 = pc.workspace(100);
  ASSERT_NE(p100, nullptr);
  EXPECT_EQ(pc.workspace(50), p100) << "shrinking requests must not realloc";
  pc.workspace(200);
  EXPECT_GE(pc.stats().workspace_floats, 200u);
}

// Per-thread isolation under concurrency: every thread packs the same shared
// weight and runs the same kernels; thread-local caches mean zero shared
// mutable state (the TSan job in scripts/check.sh watches this test).
TEST(PackCacheTest, ConcurrentThreadsUseIsolatedCaches) {
  Tensor full = Tensor::randn({8, 10});
  const Tensor w = full.narrow(1, 0, 8);
  const Tensor x = Tensor::randn({8, 8});
  const Tensor ref = ops::linear(x, w.contiguous(), Tensor());

  constexpr int kThreads = 4;
  std::vector<int> ok(kThreads, 0);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto& pc = PackCache::local();
      pc.clear();
      bool good = true;
      for (int i = 0; i < 16; ++i) {
        const Tensor p = pc.packed_weight(w);
        good = good && bit_equal(p, w.contiguous());
        good = good && bit_equal(ops::linear(x, w, Tensor()), ref);
        float* ws = pc.workspace(64 + static_cast<std::size_t>(i));
        ws[0] = static_cast<float>(t);  // private scratch, no races
      }
      good = good && pc.stats().hits >= 1;
      ok[static_cast<std::size_t>(t)] = good ? 1 : 0;
    });
  }
  for (auto& th : ts) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ok[t], 1) << "thread " << t;
}

}  // namespace
}  // namespace fxcpp
