// Serving layer: InferenceSession admission control, dynamic batching,
// deadlines/cancellation on the TaskGroup watch loop, per-request degrade
// of poisoned batches, and the concurrent-session fuzz (N client threads x
// mixed shapes x random deadlines/cancellations against one shared-weight
// module, every ok response bit-checked vs the Interpreter). Runs under the
// TSan leg of scripts/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/custom_op.h"
#include "core/interpreter.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "passes/memory_planner.h"
#include "runtime/rng.h"
#include "serve/session.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using serve::InferenceSession;
using serve::Response;
using serve::ServeOptions;
using serve::SessionStats;
using serve::Ticket;

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

Tensor seeded_input(std::uint64_t seed, const Shape& s) {
  rt::Rng rng(seed);
  std::int64_t numel = 1;
  for (const std::int64_t d : s) numel *= d;
  std::vector<float> v(static_cast<std::size_t>(numel));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return Tensor::from_vector(v, s);
}

Tensor interpreter_ref(fx::GraphModule& gm, const Tensor& x) {
  fx::Interpreter interp(gm);
  return fx::rt_tensor(interp.run(x));
}

// Identity kernel that sleeps — holds the batcher busy so later submissions
// pile up in the queue deterministically.
void register_slow_identity(const std::string& name, int sleep_ms) {
  fx::register_custom_op(name, {"x"}, [sleep_ms](const std::vector<Tensor>& in) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    return in.at(0).clone();
  });
}

// Identity kernel that throws when any element exceeds the poison sentinel.
void register_trap_identity(const std::string& name) {
  fx::register_custom_op(name, {"x"}, [](const std::vector<Tensor>& in) {
    const Tensor& x = in.at(0);
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      if (x.at_flat(i) > 1e6f) throw std::runtime_error("poisoned input row");
    }
    return x.clone();
  });
}

std::shared_ptr<fx::GraphModule> traced_custom(const std::string& op) {
  return fx::symbolic_trace(std::function<fx::Value(fx::Value)>(
      [op](fx::Value v) { return fx::call_custom(op, {v}); }));
}

void wait_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!pred() && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --------------------------------------------------------------------------
// Core batched entry point.
// --------------------------------------------------------------------------

TEST(RunPlannedBatched, SplitsBitEqualToPerRowRuns) {
  auto model = nn::models::mlp({8, 16, 4});
  auto gm = fx::symbolic_trace(model);
  fx::PlanCacheOptions co;
  co.bucket_batch_dim = true;
  passes::compile_planned(*gm, {seeded_input(1, {2, 8})}, co);

  std::vector<Tensor> rows = {seeded_input(2, {1, 8}), seeded_input(3, {2, 8}),
                              seeded_input(4, {4, 8})};
  std::vector<Tensor> split = gm->run_planned_batched(rows);
  ASSERT_EQ(split.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(split[i].size(0), rows[i].size(0));
    EXPECT_TRUE(bit_equal(split[i], interpreter_ref(*gm, rows[i])))
        << "row group " << i;
  }
}

TEST(RunPlannedBatched, RejectsIncompatibleRows) {
  auto gm = fx::symbolic_trace(nn::models::mlp({4, 4}));
  gm->recompile();
  std::vector<Tensor> rows = {Tensor::randn({1, 4}), Tensor::randn({1, 8})};
  EXPECT_THROW(gm->run_planned_batched(rows), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Session basics.
// --------------------------------------------------------------------------

TEST(Serving, SingleRequestBitEqualInterpreter) {
  auto gm = fx::symbolic_trace(nn::models::mlp({8, 16, 4}));
  InferenceSession session(gm, seeded_input(10, {4, 8}));
  for (std::int64_t rows : {1, 3, 4, 7}) {
    Tensor x = seeded_input(100 + static_cast<std::uint64_t>(rows), {rows, 8});
    Response r = session.run(x);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(bit_equal(r.output, interpreter_ref(*gm, x)));
    EXPECT_GE(r.total_seconds, 0.0);
  }
  session.shutdown();
  const SessionStats s = session.stats();
  EXPECT_EQ(s.admitted, 4u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.rejected + s.failed + s.cancelled + s.expired, 0u);
}

TEST(Serving, CoalescesCompatibleRequests) {
  register_slow_identity("serve_block_coalesce", 60);
  auto gm = traced_custom("serve_block_coalesce");
  InferenceSession session(gm, Tensor::randn({1, 8}));

  // Head request occupies the batcher for ~60ms...
  Ticket blocker = session.submit(Tensor::randn({1, 8}));
  wait_until([&] { return session.stats().batches >= 1; });
  // ...while four compatible requests pile up and must coalesce.
  std::vector<Tensor> xs;
  std::vector<Ticket> ts;
  for (int i = 0; i < 4; ++i) {
    xs.push_back(seeded_input(200 + static_cast<std::uint64_t>(i), {1, 8}));
    ts.push_back(session.submit(xs.back().clone()));
  }
  ASSERT_TRUE(blocker.response.get().ok);
  for (int i = 0; i < 4; ++i) {
    Response r = ts[static_cast<std::size_t>(i)].response.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GE(r.batch_requests, 2u);  // robustly: at least some coalescing
    EXPECT_TRUE(bit_equal(r.output, xs[static_cast<std::size_t>(i)]));
  }
  session.shutdown();
  EXPECT_GE(session.stats().peak_batch_rows, 2);
}

TEST(Serving, AdmissionRejectsWhenQueueFull) {
  register_slow_identity("serve_block_admission", 80);
  auto gm = traced_custom("serve_block_admission");
  ServeOptions so;
  so.max_queue_depth = 2;
  InferenceSession session(gm, Tensor::randn({1, 4}), so);

  Ticket blocker = session.submit(Tensor::randn({1, 4}));
  wait_until([&] { return session.stats().batches >= 1; });
  std::vector<Ticket> extra;
  for (int i = 0; i < 5; ++i) extra.push_back(session.submit(Tensor::randn({1, 4})));
  std::size_t rejected = 0;
  for (Ticket& t : extra) {
    Response r = t.response.get();
    if (!r.ok && r.code == ErrorCode::AdmissionRejected) ++rejected;
  }
  // Depth 2 admits at most 2 of the 5; at least 3 shed at the door.
  EXPECT_GE(rejected, 3u);
  EXPECT_GE(session.stats().rejected, 3u);
  ASSERT_TRUE(blocker.response.get().ok);
}

TEST(Serving, DeadlineExpiredInQueue) {
  register_slow_identity("serve_block_deadline_q", 100);
  auto gm = traced_custom("serve_block_deadline_q");
  InferenceSession session(gm, Tensor::randn({1, 4}));

  Ticket blocker = session.submit(Tensor::randn({1, 4}));
  wait_until([&] { return session.stats().batches >= 1; });
  // Expires long before the blocker frees the batcher.
  Ticket doomed = session.submit(Tensor::randn({2, 4}), /*deadline=*/0.02);
  Response r = doomed.response.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::DeadlineExceeded);
  ASSERT_TRUE(blocker.response.get().ok);
  session.shutdown();
  EXPECT_GE(session.stats().expired, 1u);
}

TEST(Serving, DeadlineDuringRunObservedByWatchLoop) {
  register_slow_identity("serve_block_deadline_run", 250);
  auto gm = traced_custom("serve_block_deadline_run");
  InferenceSession session(gm, Tensor::randn({1, 4}));

  // The request itself is the running batch; its deadline expires mid-run,
  // and the watch loop must answer it while the kernel is still sleeping.
  const auto t0 = std::chrono::steady_clock::now();
  Ticket t = session.submit(Tensor::randn({1, 4}), /*deadline=*/0.05);
  Response r = t.response.get();
  const double waited = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::DeadlineExceeded);
  // Answered by the mid-run sweep, not by batch completion.
  EXPECT_LT(waited, 0.2);
  session.shutdown();  // waits for the in-flight batch to quiesce
  const SessionStats s = session.stats();
  EXPECT_GE(s.expired, 1u);
  // The late result was observed and counted — never silently dropped.
  EXPECT_GE(s.late_results, 1u);
}

TEST(Serving, CancelBeforeRun) {
  register_slow_identity("serve_block_cancel", 80);
  auto gm = traced_custom("serve_block_cancel");
  InferenceSession session(gm, Tensor::randn({1, 4}));

  Ticket blocker = session.submit(Tensor::randn({1, 4}));
  wait_until([&] { return session.stats().batches >= 1; });
  Ticket victim = session.submit(Tensor::randn({1, 4}));
  victim.cancel->store(true);
  Response r = victim.response.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::Cancelled);
  ASSERT_TRUE(blocker.response.get().ok);
  session.shutdown();
  EXPECT_GE(session.stats().cancelled, 1u);
}

TEST(Serving, PoisonedRequestDegradesNotPoisons) {
  register_trap_identity("serve_trap");
  register_slow_identity("serve_trap_block", 60);
  auto gm = traced_custom("serve_trap");
  InferenceSession session(gm, Tensor::randn({1, 8}));

  // Hold the batcher with an incompatible (trailing-dim 3) request so the
  // three dim-8 requests below coalesce into one batch.
  // The blocker runs the same trap graph at a benign input.
  Ticket blocker = session.submit(Tensor::randn({1, 3}));
  wait_until([&] { return session.stats().batches >= 1; });

  Tensor good0 = seeded_input(300, {1, 8});
  Tensor poison = ops::mul(Tensor::ones({1, 8}), 1e7);
  Tensor good1 = seeded_input(301, {1, 8});
  Ticket t0 = session.submit(good0.clone());
  Ticket t1 = session.submit(poison.clone());
  Ticket t2 = session.submit(good1.clone());

  Response r0 = t0.response.get();
  Response r1 = t1.response.get();
  Response r2 = t2.response.get();
  ASSERT_TRUE(blocker.response.get().ok);

  // The poisoned request fails alone...
  EXPECT_FALSE(r1.ok);
  EXPECT_EQ(r1.code, ErrorCode::NodeFailure);
  // ...while its co-batched neighbors still get correct answers.
  ASSERT_TRUE(r0.ok) << r0.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(bit_equal(r0.output, good0));
  EXPECT_TRUE(bit_equal(r2.output, good1));

  session.shutdown();
  const SessionStats s = session.stats();
  EXPECT_GE(s.failed, 1u);
  if (r0.batch_requests >= 2 || r2.batch_requests >= 2 || s.degraded_batches) {
    EXPECT_GE(s.degraded_batches, 1u);
  }
}

TEST(Serving, ShutdownDrainsQueuedRequests) {
  register_slow_identity("serve_block_drain", 40);
  auto gm = traced_custom("serve_block_drain");
  InferenceSession session(gm, Tensor::randn({1, 4}));
  std::vector<Ticket> ts;
  for (int i = 0; i < 3; ++i) ts.push_back(session.submit(Tensor::randn({1, 4})));
  session.shutdown();  // must answer all three, not orphan their futures
  for (Ticket& t : ts) {
    Response r = t.response.get();
    EXPECT_TRUE(r.ok) << r.error;
  }
  // Post-shutdown submissions are shed at admission.
  Response late = session.run(Tensor::randn({1, 4}));
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.code, ErrorCode::AdmissionRejected);
}

TEST(Serving, ZeroBatchDimRequestServed) {
  auto gm = fx::symbolic_trace(nn::models::mlp({8, 16, 4}));
  InferenceSession session(gm, seeded_input(11, {4, 8}));
  Response r = session.run(Tensor::zeros({0, 8}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.output.size(0), 0);
}

// --------------------------------------------------------------------------
// Concurrent-session fuzz: N client threads x mixed shapes x random
// deadlines/cancellations against two sessions sharing one weight set.
// Every ok response must be bit-identical to the Interpreter on the same
// input. TSan-clean (scripts/check.sh leg 3).
// --------------------------------------------------------------------------

TEST(ServingFuzz, ConcurrentSessionsSharedWeights) {
  auto gm = fx::symbolic_trace(nn::models::mlp({8, 16, 4}));
  fx::PlanCacheOptions co;
  co.bucket_batch_dim = true;
  passes::compile_planned(*gm, {seeded_input(42, {4, 8})}, co);

  ServeOptions so;
  so.max_queue_delay = std::chrono::microseconds(500);
  InferenceSession s0(gm, so);
  InferenceSession s1(gm, so);
  InferenceSession* sessions[2] = {&s0, &s1};

  constexpr int kClients = 4;
  constexpr int kRequests = 30;
  struct Outcome {
    Tensor input;
    Response response;
  };
  std::vector<std::vector<Outcome>> outcomes(kClients);

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      rt::Rng rng(9000 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < kRequests; ++i) {
        const std::int64_t rows = 1 + rng.randint(0, 3);
        Tensor x = seeded_input(
            static_cast<std::uint64_t>(c) * 1000 + static_cast<std::uint64_t>(i),
            {rows, 8});
        InferenceSession& s = *sessions[rng.randint(0, 1)];
        const double deadline =
            rng.randint(0, 9) == 0 ? 1e-4 : 0.0;  // 10%: near-instant deadline
        Ticket t = s.submit(x.clone(), deadline);
        if (rng.randint(0, 9) == 0) t.cancel->store(true);  // 10%: cancel
        Outcome o;
        o.input = std::move(x);
        o.response = t.response.get();
        outcomes[static_cast<std::size_t>(c)].push_back(std::move(o));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  s0.shutdown();
  s1.shutdown();

  // Bit-check after the fact, single-threaded (references via Interpreter).
  std::size_t ok_count = 0;
  for (const auto& per_client : outcomes) {
    for (const Outcome& o : per_client) {
      if (!o.response.ok) {
        // Failures must carry a taxonomy code, never Unknown success-less.
        EXPECT_NE(o.response.code, ErrorCode::Unknown) << o.response.error;
        continue;
      }
      ++ok_count;
      EXPECT_TRUE(bit_equal(o.response.output, interpreter_ref(*gm, o.input)));
    }
  }
  // The vast majority of requests (no deadline, no cancel) must succeed.
  EXPECT_GE(ok_count, static_cast<std::size_t>(kClients * kRequests / 2));
  const SessionStats st0 = s0.stats();
  const SessionStats st1 = s1.stats();
  EXPECT_EQ(st0.admitted + st1.admitted + st0.rejected + st1.rejected,
            static_cast<std::uint64_t>(kClients * kRequests));
}

}  // namespace
}  // namespace fxcpp
