// Code generation & execution tests: Figure 1-3 golden strings, interpreter
// vs compiled-tape equivalence, kwargs normalization-at-execution, liveness
// annotations, to_folder.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/codegen.h"
#include "core/functional.h"
#include "core/interpreter.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Argument;
using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::Value;

TEST(Codegen, InfixOperatorsAndConstants) {
  // Figure 3 body: add = x + 3.141592653589793
  auto f = [](Value x) -> Value { return fx::fn::gelu(x + 3.141592653589793); };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  const std::string& code = gm->code();
  EXPECT_NE(code.find("add = x + 3.14159"), std::string::npos);
  EXPECT_NE(code.find("gelu = torch.gelu(add);  add = None"), std::string::npos);
  EXPECT_NE(code.find("return gelu"), std::string::npos);
}

TEST(Codegen, CallModuleAndGetAttrRendering) {
  auto model = nn::models::mlp({4, 4});
  auto gm = fx::symbolic_trace(model);
  // body.0 is a call_module: rendered as self.body.0(...)? fx renders the
  // sanitized variable but the self.<target> call keeps dots.
  EXPECT_NE(gm->code().find("self.body.0("), std::string::npos);
}

TEST(Codegen, LivenessClearsLastUses) {
  // y = relu(x); z = add(y, y)  -- y's last use is z's statement.
  auto f = [](Value x) -> Value {
    Value y = fx::fn::relu(x);
    return y + y;
  };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  const std::string& code = gm->code();
  EXPECT_NE(code.find("relu = torch.relu(x);  x = None"), std::string::npos);
  EXPECT_NE(code.find("add = relu + relu;  relu = None"), std::string::npos);
}

TEST(Codegen, MultiUseNotClearedEarly) {
  auto f = [](Value x) -> Value {
    Value y = fx::fn::relu(x);
    Value a = fx::fn::neg(y);
    return fx::fn::add(a, y);  // y used again here
  };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  const std::string& code = gm->code();
  // After neg, relu must NOT be cleared (still used by add).
  EXPECT_NE(code.find("neg = torch.neg(relu)\n"), std::string::npos);
  EXPECT_NE(code.find("add = neg + relu;  neg = None;  relu = None"),
            std::string::npos);
}

TEST(Interpreter, MatchesCompiledTape) {
  auto model = nn::models::resnet18(8, 10);
  auto gm = fx::symbolic_trace(model);
  Tensor x = Tensor::randn({1, 3, 32, 32});
  Tensor tape_out = gm->run(x);
  fx::Interpreter interp(*gm);
  Tensor interp_out = fx::rt_tensor(interp.run(x));
  EXPECT_TRUE(allclose(tape_out, interp_out));
}

TEST(Interpreter, KwargsMergedByName) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* sm = g.call_function("softmax", {Argument(x)},
                             {{"dim", Argument(std::int64_t{-1})}});
  g.output(Argument(sm));
  auto root = std::make_shared<nn::models::MLP>(std::vector<std::int64_t>{2, 2});
  GraphModule gm(root, std::make_unique<Graph>(), "T");
  (void)gm;  // separate gm below with the real graph
  auto graph = std::make_unique<Graph>();
  Argument out = graph->inline_graph(g, {Argument(graph->placeholder("x"))});
  graph->output(out);
  GraphModule gm2(nullptr, std::move(graph), "T2");
  gm2.recompile();
  Tensor in = Tensor::randn({2, 5});
  Tensor got = gm2.run(in);
  EXPECT_TRUE(allclose(got, ops::softmax(in, -1)));
}

TEST(Interpreter, MissingTargetHasClearError) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* bad = g.call_function("no_such_op", {Argument(x)});
  g.output(Argument(bad));
  GraphModule gm(nullptr, std::make_unique<Graph>(), "T");
  (void)gm;
  auto graph = std::make_unique<Graph>();
  Argument out = graph->inline_graph(g, {Argument(graph->placeholder("x"))});
  graph->output(out);
  GraphModule gm2(nullptr, std::move(graph), "T2");
  try {
    gm2.recompile();
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_op"), std::string::npos);
  }
}

TEST(GraphModuleTest, RecompileRequiredAfterMutation) {
  auto f = [](Value x) -> Value { return fx::fn::relu(x); };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  Tensor x = Tensor::from_vector({-1.f, 2.f}, {2});
  EXPECT_TRUE(allclose(gm->run(x), ops::relu(x)));

  // Mutate: relu -> gelu, then recompile.
  for (Node* n : gm->graph().nodes()) {
    if (n->target() == "relu") n->set_target("gelu");
  }
  gm->recompile();
  EXPECT_TRUE(allclose(gm->run(x), ops::gelu(x)));
  EXPECT_NE(gm->code().find("torch.gelu"), std::string::npos);
}

TEST(GraphModuleTest, ToFolderWritesArtifacts) {
  auto model = nn::models::mlp({4, 8, 2});
  auto gm = fx::symbolic_trace(model);
  const std::string dir = "/tmp/fxcpp_to_folder_test";
  std::filesystem::remove_all(dir);
  gm->to_folder(dir);
  EXPECT_TRUE(std::filesystem::exists(dir + "/module.py"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/graph.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/state.txt"));
  std::ifstream code(dir + "/module.py");
  std::string first_line;
  std::getline(code, first_line);
  EXPECT_EQ(first_line.rfind("def forward(self", 0), 0u);
}

TEST(GraphModuleTest, TapeFreesDeadRegisters) {
  // A long chain: liveness should free each intermediate after its use, so
  // only O(1) registers hold tensors at a time. Verify via the instruction
  // stream's frees lists.
  auto f = [](Value x) -> Value {
    for (int i = 0; i < 10; ++i) x = fx::fn::relu(x);
    return x;
  };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  const auto& instrs = gm->compiled_graph().instrs();
  int total_frees = 0;
  for (const auto& ins : instrs) total_frees += static_cast<int>(ins.frees.size());
  // Every intermediate (10 relus + placeholder) except the returned one dies.
  EXPECT_GE(total_frees, 10);
}

TEST(Interpreter, EmptyListArgIsEmptyIntListOnBothEngines) {
  // An empty [] has no elements to classify. The tape's pre-decoder treats
  // "all elements are ints" as vacuously true and emits an empty int list;
  // Interpreter::eval_arg used to seed the same check with !empty(), turning
  // [] into an empty *tensor* list — ops taking shape/dims lists then threw
  // on one engine but not the other. Both must agree on empty int list.
  static bool once = [] {
    fx::OpRegistry::functions().add(
        {"fxtest_echo_list", {"v", "x"},
         [](const std::vector<fx::RtValue>& a) { return a.at(0); }});
    return true;
  }();
  (void)once;

  Graph g;
  Node* x = g.placeholder("x");
  Node* echo = g.call_function("fxtest_echo_list",
                               {Argument(Argument::List{}), Argument(x)});
  g.output(Argument(echo));
  auto cloned = g.clone();
  GraphModule gm(nullptr, std::move(cloned), "EmptyList");
  gm.recompile();

  const std::vector<fx::RtValue> in{fx::RtValue(Tensor::randn({2}))};
  const fx::RtValue via_interp = fx::Interpreter(gm).run(in);
  const fx::RtValue via_tape = gm.compiled_graph().run(in).front();
  ASSERT_TRUE(std::holds_alternative<std::vector<std::int64_t>>(via_interp))
      << "interpreter classified [] as something other than an int list";
  ASSERT_TRUE(std::holds_alternative<std::vector<std::int64_t>>(via_tape));
  EXPECT_TRUE(std::get<std::vector<std::int64_t>>(via_interp).empty());
  EXPECT_TRUE(std::get<std::vector<std::int64_t>>(via_tape).empty());
}

TEST(GraphModuleTest, TupleOutputsViaGetitem) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* a = g.call_function("relu", {Argument(x)});
  Node* b = g.call_function("neg", {Argument(x)});
  Argument::List pair{Argument(a), Argument(b)};
  g.output(Argument(std::move(pair)));
  auto graph = std::make_unique<Graph>();
  // Use clone to move into the GraphModule.
  auto cloned = g.clone();
  GraphModule gm(nullptr, std::move(cloned), "Tuple");
  gm.recompile();
  Tensor in = Tensor::from_vector({-1.f, 3.f}, {2});
  Value out = gm.forward({Value(in)});
  ASSERT_TRUE(out.is_tuple());
  EXPECT_TRUE(allclose(out.tuple()[0].tensor(), ops::relu(in)));
  EXPECT_TRUE(allclose(out.tuple()[1].tensor(), ops::neg(in)));
}

}  // namespace
}  // namespace fxcpp
