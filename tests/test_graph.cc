// IR tests: Node/Graph invariants, use-def maintenance, manipulation APIs,
// lint, DCE, clone, and graph inlining — the machinery every transform in
// the paper builds on.
#include <gtest/gtest.h>

#include "core/graph.h"

namespace fxcpp::fx {
namespace {

TEST(Argument, ImmediateValuesAndPrinting) {
  EXPECT_EQ(Argument().to_string(), "None");
  EXPECT_EQ(Argument(true).to_string(), "True");
  EXPECT_EQ(Argument(std::int64_t{42}).to_string(), "42");
  EXPECT_EQ(Argument(3.5).to_string(), "3.5");
  EXPECT_EQ(Argument("pad").to_string(), "'pad'");
  Argument list(std::vector<std::int64_t>{1, 2});
  EXPECT_EQ(list.to_string(), "[1, 2]");
  EXPECT_EQ(list.int_list(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_TRUE(Argument(std::int64_t{1}) == Argument(std::int64_t{1}));
  EXPECT_FALSE(Argument(std::int64_t{1}) == Argument(2.0));
}

TEST(Graph, BuildAndPrintFigure1Style) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* relu = g.call_function("relu", {Argument(x)});
  Node* neg = g.call_method("neg", {Argument(relu)});
  g.output(Argument(neg));
  const std::string expected =
      "x = placeholder target=x args=()\n"
      "relu = call_function target=relu args=(x,)\n"
      "neg = call_method target=neg args=(relu,)\n"
      "output = output target=output args=(neg,)\n";
  EXPECT_EQ(g.to_string(), expected);
  EXPECT_NO_THROW(g.lint());
}

TEST(Graph, UseDefChains) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* a = g.call_function("relu", {Argument(x)});
  Node* b = g.call_function("neg", {Argument(x)});
  Node* c = g.call_function("add", {Argument(a), Argument(b)});
  g.output(Argument(c));

  EXPECT_EQ(x->users().size(), 2u);
  EXPECT_TRUE(x->users().count(a));
  EXPECT_TRUE(x->users().count(b));
  EXPECT_EQ(c->input_nodes(), (std::vector<Node*>{a, b}));
}

TEST(Graph, ReplaceAllUsesWith) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* relu = g.call_function("relu", {Argument(x)});
  Node* gelu = g.call_function("gelu", {Argument(x)});
  Node* neg = g.call_function("neg", {Argument(relu)});
  g.output(Argument(neg));

  EXPECT_EQ(relu->replace_all_uses_with(gelu), 1);
  EXPECT_TRUE(relu->users().empty());
  EXPECT_EQ(neg->input_nodes(), (std::vector<Node*>{gelu}));
  // Order: gelu defined before its new user? It was created before neg.
  EXPECT_NO_THROW(g.lint());
}

TEST(Graph, EraseGuardsAgainstLiveUsers) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* relu = g.call_function("relu", {Argument(x)});
  g.output(Argument(relu));
  EXPECT_THROW(g.erase_node(relu), std::logic_error);
}

TEST(Graph, DeadCodeElimination) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* live = g.call_function("relu", {Argument(x)});
  Node* dead1 = g.call_function("neg", {Argument(x)});
  g.call_function("gelu", {Argument(dead1)});  // dead chain
  g.output(Argument(live));
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.eliminate_dead_code(), 2);
  EXPECT_EQ(g.size(), 3u);
  EXPECT_NO_THROW(g.lint());
}

TEST(Graph, InsertionPointAndMove) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* b = g.call_function("relu", {Argument(x)});
  g.output(Argument(b));
  Node* a = nullptr;
  {
    Graph::InsertScope scope(g, b);
    a = g.call_function("neg", {Argument(x)});
  }
  // a sits before b.
  auto order = g.nodes();
  EXPECT_EQ(order[1], a);
  EXPECT_EQ(order[2], b);
  // Appending resumes at the end after scope exit... (output already there,
  // so just verify a name-unique second relu goes last before nothing).
  g.move_before(a, nullptr);  // move to end
  order = g.nodes();
  EXPECT_EQ(order.back(), a);
}

TEST(Graph, UniqueNamesAndSanitization) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* m1 = g.call_module("layer1.0.conv1", {Argument(x)});
  Node* m2 = g.call_module("layer1.0.conv1", {Argument(x)});
  EXPECT_EQ(m1->name(), "layer1_0_conv1");
  EXPECT_EQ(m2->name(), "layer1_0_conv1_1");
  EXPECT_NE(g.find("layer1_0_conv1"), nullptr);
}

TEST(Graph, LintCatchesUseBeforeDef) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* a = g.call_function("relu", {Argument(x)});
  Node* b = g.call_function("neg", {Argument(a)});
  g.output(Argument(b));
  // Break topology: move a after b.
  g.move_before(b, a);
  EXPECT_THROW(g.lint(), std::logic_error);
}

TEST(Graph, KwargsStoredAndPrinted) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* n = g.call_function("softmax", {Argument(x)},
                            {{"dim", Argument(std::int64_t{-1})}});
  g.output(Argument(n));
  EXPECT_EQ(n->kwarg("dim").as_int(), -1);
  EXPECT_TRUE(n->kwarg("missing").is_none());
  EXPECT_NE(n->format().find("kwargs={dim: -1}"), std::string::npos);
}

TEST(Graph, NestedListArgumentsTrackUses) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* y = g.placeholder("y");
  Argument::List items{Argument(x), Argument(y)};
  Node* cat = g.call_function("cat", {Argument(std::move(items)),
                                      Argument(std::int64_t{0})});
  g.output(Argument(cat));
  EXPECT_TRUE(x->users().count(cat));
  EXPECT_TRUE(y->users().count(cat));
  EXPECT_EQ(cat->input_nodes().size(), 2u);
  EXPECT_NO_THROW(g.lint());
}

TEST(Graph, CloneIsDeepAndEquivalent) {
  Graph g;
  Node* x = g.placeholder("x");
  Node* r = g.call_function("relu", {Argument(x)});
  r->set_meta("shape", Shape{2, 2});
  g.output(Argument(r));

  std::unordered_map<const Node*, Node*> map;
  auto copy = g.clone(&map);
  EXPECT_EQ(copy->to_string(), g.to_string());
  EXPECT_NE(map.at(r), r);
  EXPECT_EQ(std::get<Shape>(map.at(r)->meta("shape")), (Shape{2, 2}));
  // Mutating the clone leaves the original intact.
  map.at(r)->replace_all_uses_with(map.at(x));
  EXPECT_EQ(r->users().size(), 1u);
}

TEST(Graph, InlineGraphSplicesBody) {
  // Inner: f(a) = relu(a)
  Graph inner;
  Node* a = inner.placeholder("a");
  Node* r = inner.call_function("relu", {Argument(a)});
  inner.output(Argument(r));

  Graph outer;
  Node* x = outer.placeholder("x");
  Node* n = outer.call_function("neg", {Argument(x)});
  Argument result = outer.inline_graph(inner, {Argument(n)});
  outer.output(result);

  ASSERT_TRUE(result.is_node());
  EXPECT_EQ(result.node()->target(), "relu");
  EXPECT_EQ(result.node()->input_nodes(), (std::vector<Node*>{n}));
  EXPECT_NO_THROW(outer.lint());
}

TEST(Graph, InlineGraphChecksArity) {
  Graph inner;
  inner.placeholder("a");
  inner.placeholder("b");
  Node* out = inner.call_function("add", {Argument(inner.find("a")),
                                          Argument(inner.find("b"))});
  inner.output(Argument(out));

  Graph outer;
  Node* x = outer.placeholder("x");
  EXPECT_THROW(outer.inline_graph(inner, {Argument(x)}), std::invalid_argument);
}

TEST(Graph, SingleOutputEnforced) {
  Graph g;
  Node* x = g.placeholder("x");
  g.output(Argument(x));
  EXPECT_THROW(g.output(Argument(x)), std::logic_error);
}

TEST(Node, MetaRoundTrip) {
  Graph g;
  Node* x = g.placeholder("x");
  x->set_meta("shape", Shape{1, 2, 3});
  x->set_meta("dtype", DType::Float32);
  x->set_meta("note", std::string("hello"));
  EXPECT_TRUE(x->has_shape());
  EXPECT_EQ(x->shape(), (Shape{1, 2, 3}));
  EXPECT_EQ(x->dtype(), DType::Float32);
  EXPECT_EQ(std::get<std::string>(x->meta("note")), "hello");
  EXPECT_THROW(x->meta("absent"), std::out_of_range);
  x->clear_meta("note");
  EXPECT_FALSE(x->has_meta("note"));
}

}  // namespace
}  // namespace fxcpp::fx
