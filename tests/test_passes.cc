// Analysis & transform pass tests: shape propagation (naive and symbolic,
// including the Figure 4 divergence), FLOPs estimation, graph drawing,
// cleanup passes, and Conv-BN fusion numerics.
#include <gtest/gtest.h>

#include "core/functional.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet.h"
#include "nn/models/transformer.h"
#include "passes/cleanup.h"
#include "passes/flops.h"
#include "passes/fuse_conv_bn.h"
#include "passes/graph_drawer.h"
#include "passes/shape_prop.h"
#include "passes/symbolic_shapes.h"
#include "tensor/ops.h"

namespace fxcpp {
namespace {

using fx::Node;
using fx::Opcode;
using fx::Value;
using passes::SymDim;
using passes::SymShape;

TEST(ShapeProp, AnnotatesResNetNodes) {
  auto model = nn::models::resnet50(8, 10);
  auto gm = fx::symbolic_trace(model);
  passes::shape_prop(*gm, {Tensor::randn({1, 3, 32, 32})});
  int annotated = 0;
  for (const Node* n : gm->graph().nodes()) {
    if (n->has_shape()) ++annotated;
  }
  // Every node carries a shape (the output node reflects the return value).
  EXPECT_EQ(annotated, static_cast<int>(gm->graph().size()));
  // The final fc output.
  for (const Node* n : gm->graph().nodes()) {
    if (n->target() == "fc") {
      EXPECT_EQ(n->shape(), (Shape{1, 10}));
    }
  }
}

TEST(Flops, LinearAndConvFormulas) {
  auto model = nn::models::mlp({16, 32, 8});
  auto gm = fx::symbolic_trace(model);
  passes::shape_prop(*gm, {Tensor::randn({2, 16})});
  const auto report = passes::estimate_cost(*gm);
  // 2 linears: 2*2*16*32 + 2*2*32*8 = 2048 + 1024... plus relu numel.
  const double expected_linear = 2.0 * 2 * 16 * 32 + 2.0 * 2 * 32 * 8;
  EXPECT_GE(report.total_flops, expected_linear);
  EXPECT_LT(report.total_flops, expected_linear * 1.1);
  EXPECT_GT(report.param_bytes, 0.0);
  EXPECT_FALSE(report.to_table().empty());
}

TEST(Flops, MissingShapeMetaIsSurfacedNotSilentZero) {
  // Freshly traced, no ShapeProp: estimate_cost used to report total 0 with
  // no indication anything was skipped. Now every value-producing node lands
  // in `unmeasured`, its NodeCost says measured=false, and the table says so.
  auto model = nn::models::mlp({16, 32, 8});
  auto gm = fx::symbolic_trace(model);
  const auto report =
      passes::estimate_cost(static_cast<const fx::GraphModule&>(*gm));
  EXPECT_FALSE(report.unmeasured.empty());
  bool any_unmeasured_cost = false;
  for (const auto& c : report.per_node) {
    if (!c.measured) {
      any_unmeasured_cost = true;
      EXPECT_EQ(c.flops, 0.0);
    }
  }
  EXPECT_TRUE(any_unmeasured_cost);
  EXPECT_NE(report.to_table().find("unmeasured"), std::string::npos)
      << report.to_table();

  // The example-input overload auto-runs ShapeProp and measures everything.
  const auto measured = passes::estimate_cost(*gm, {Tensor::randn({2, 16})});
  EXPECT_TRUE(measured.unmeasured.empty());
  EXPECT_GT(measured.total_flops, 0.0);
  for (const auto& c : measured.per_node) EXPECT_TRUE(c.measured);

  // With meta present, the diagnostic disappears from the report.
  const auto clean = passes::estimate_cost(
      static_cast<const fx::GraphModule&>(*gm));
  EXPECT_TRUE(clean.unmeasured.empty());
  EXPECT_EQ(clean.to_table().find("missing shape meta"), std::string::npos);
}

TEST(Flops, RooflineEstimate) {
  auto model = nn::models::resnet18(8, 10);
  auto gm = fx::symbolic_trace(model);
  passes::shape_prop(*gm, {Tensor::randn({1, 3, 32, 32})});
  const auto report = passes::estimate_cost(*gm);
  const double t = report.estimate_seconds(1e9, 1e9);
  EXPECT_GT(t, 0.0);
  // Compute-bound on this device model: estimate equals flops/1e9.
  EXPECT_NEAR(t, std::max(report.total_flops, report.total_bytes) / 1e9, 1e-9);
}

TEST(GraphDrawer, EmitsValidDot) {
  auto model = nn::models::mlp({4, 8, 2});
  auto gm = fx::symbolic_trace(model);
  passes::shape_prop(*gm, {Tensor::randn({1, 4})});
  const std::string dot = passes::to_dot(*gm, "mlp");
  EXPECT_EQ(dot.rfind("digraph \"mlp\" {", 0), 0u);
  EXPECT_NE(dot.find("call_module"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("[1, 8]"), std::string::npos);  // shape label
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Cleanup, CseMergesIdenticalExpressions) {
  auto f = [](Value x) -> Value {
    Value a = fx::fn::relu(x);
    Value b = fx::fn::relu(x);  // identical computation
    return a + b;
  };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  Tensor x = Tensor::randn({4});
  Tensor before = gm->run(x);
  EXPECT_EQ(passes::common_subexpression_elimination(*gm), 1);
  EXPECT_TRUE(allclose(gm->run(x), before));
  int relus = 0;
  for (const Node* n : gm->graph().nodes()) {
    if (n->target() == "relu") ++relus;
  }
  EXPECT_EQ(relus, 1);
}

TEST(Cleanup, CseSkipsDropout) {
  auto f = [](Value x) -> Value {
    Value a = fx::fn::dropout(x, 0.5, true);
    Value b = fx::fn::dropout(x, 0.5, true);
    return a + b;
  };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(f));
  EXPECT_EQ(passes::common_subexpression_elimination(*gm), 0);
}

TEST(Cleanup, ConstantFoldPrecomputesParamExpressions) {
  // w1 + w2 is constant wrt inputs: folded into one get_attr.
  class M : public nn::Module {
   public:
    M() : nn::Module("M") {
      register_parameter("w1", Tensor::randn({4}));
      register_parameter("w2", Tensor::randn({4}));
    }
    Value forward(const std::vector<Value>& in) override {
      return in.at(0) + (param_value("w1") + param_value("w2"));
    }
  };
  auto model = std::make_shared<M>();
  auto gm = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  Tensor x = Tensor::randn({4});
  Tensor before = gm->run(x);
  EXPECT_EQ(passes::constant_fold(*gm), 1);
  EXPECT_TRUE(allclose(gm->run(x), before));
  // Only one add (x + folded) remains.
  int adds = 0;
  for (const Node* n : gm->graph().nodes()) {
    if (n->target() == "add") ++adds;
  }
  EXPECT_EQ(adds, 1);
}

TEST(FuseConvBn, WeightFoldingFormula) {
  Tensor w = Tensor::randn({4, 3, 3, 3});
  Tensor b = Tensor::randn({4});
  Tensor mean = Tensor::randn({4});
  Tensor var = ops::add(ops::mul(Tensor::rand({4}), 0.5), 0.5);
  Tensor gamma = Tensor::randn({4});
  Tensor beta = Tensor::randn({4});

  auto fused = passes::fuse_conv_bn_weights(w, b, mean, var, gamma, beta, 1e-5);
  Tensor x = Tensor::randn({2, 3, 8, 8});
  Tensor ref = ops::batch_norm(ops::conv2d(x, w, b, {1, 1}, {1, 1}), gamma,
                               beta, mean, var, 1e-5);
  Tensor got = ops::conv2d(x, fused.weight, fused.bias, {1, 1}, {1, 1});
  EXPECT_LT(max_abs_diff(got, ref), 1e-3);
}

TEST(FuseConvBn, ResNetGraphFusion) {
  auto model = nn::models::resnet18(8, 10);
  auto gm = fx::symbolic_trace(model);
  Tensor x = Tensor::randn({1, 3, 32, 32});
  Tensor before = gm->run(x);

  const int fused = passes::fuse_conv_bn(*gm);
  // ResNet-18: 17 conv+bn in main path + 3 downsample pairs = 20.
  EXPECT_EQ(fused, 20);
  int bns = 0;
  for (const Node* n : gm->graph().nodes()) {
    if (n->op() == Opcode::CallModule &&
        gm->resolve_module(n->target())->kind() == "BatchNorm2d") {
      ++bns;
    }
  }
  EXPECT_EQ(bns, 0);
  EXPECT_LT(max_abs_diff(gm->run(x), before), 1e-2);
}

TEST(FuseConvBn, SkipsConvWithMultipleUsers) {
  class M : public nn::Module {
   public:
    M() : nn::Module("M") {
      register_module("conv", std::make_shared<nn::Conv2d>(2, 2, 3, 1, 1));
      register_module("bn", std::make_shared<nn::BatchNorm2d>(2));
    }
    Value forward(const std::vector<Value>& in) override {
      Value c = (*get_submodule("conv"))(in.at(0));
      Value b = (*get_submodule("bn"))(c);
      return b + c;  // conv output escapes: fusion is illegal
    }
  };
  auto gm = fx::symbolic_trace(
      std::static_pointer_cast<nn::Module>(std::make_shared<M>()));
  EXPECT_EQ(passes::fuse_conv_bn(*gm), 0);
}

TEST(SymbolicShapes, BasicBlockSinglePass) {
  auto model = nn::models::mlp({16, 32, 8});
  auto gm = fx::symbolic_trace(model);
  // Batch dim unknown, feature dim known.
  SymShape in{SymDim::dynamic(), SymDim::known(16)};
  SymShape out = passes::propagate_symbolic(*gm, {in});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].is_known);
  EXPECT_TRUE(out[1].is_known);
  EXPECT_EQ(out[1].value, 8);
}

TEST(SymbolicShapes, ConvNetPropagation) {
  auto model = nn::models::resnet18(8, 10);
  auto gm = fx::symbolic_trace(model);
  SymShape in{SymDim::dynamic(), SymDim::known(3), SymDim::known(32),
              SymDim::known(32)};
  SymShape out = passes::propagate_symbolic(*gm, {in});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].is_known);
  EXPECT_EQ(out[1].value, 10);
}

TEST(SymbolicShapes, JoinLattice) {
  SymShape a{SymDim::known(2), SymDim::known(3)};
  SymShape b{SymDim::known(4), SymDim::known(3)};
  auto j = passes::join(a, b);
  ASSERT_TRUE(j.has_value());
  EXPECT_FALSE((*j)[0].is_known);
  EXPECT_TRUE((*j)[1].is_known);
  EXPECT_FALSE(passes::join(a, SymShape{SymDim::known(2)}).has_value());
}

// Figure 4: the loop-carried cat never converges to a finite shape; the
// analysis reaches *dynamic* in the loop-carried dimension.
TEST(SymbolicShapes, Figure4LoopCatDiverges) {
  SymShape init{SymDim::known(1), SymDim::known(8)};
  auto r = passes::analyze_loop_cat(init, /*cat_dim=*/0);
  EXPECT_FALSE(r.result[0].is_known);   // [*dynamic*, N]
  EXPECT_TRUE(r.result[1].is_known);
  EXPECT_EQ(r.result[1].value, 8);
  EXPECT_LE(r.iterations, 3);  // diverges immediately, no long fixpoint
}

TEST(SymbolicShapes, TransformerIsBasicBlock) {
  // Section 5.5: attention traces with no control flow, so symbolic shapes
  // propagate in one pass.
  auto model = nn::models::transformer_encoder_layer(16, 32);
  auto gm = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  SymShape in{SymDim::known(12), SymDim::known(16)};
  SymShape out = passes::propagate_symbolic(*gm, {in});
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].value, 16);
}

}  // namespace
}  // namespace fxcpp
