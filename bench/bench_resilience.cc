// A7 — hardened-runtime overhead on a traced ResNet-18 (the acceptance
// workload): a fully guarded + anomaly-scanned tape run vs the bare tape.
// The guard check is O(placeholders) string/shape compares per run; the
// anomaly observer re-reads every node output once (O(total activation
// elements)), which is the dominant term and must stay within the 5%
// acceptance band against the conv-heavy kernels. run_resilient's happy
// path (guards + parallel first rung succeeding) is timed as a third arm.
// Timing is interleaved and summarized by medians; only bit-equality
// failures fail the binary — wall-clock ratios on a shared machine are
// advisory, matching A6.
#include <cstdio>
#include <fstream>

#include "bench/bench_common.h"
#include "core/tracer.h"
#include "nn/models/resnet.h"
#include "passes/shape_prop.h"
#include "resilience/anomaly.h"
#include "resilience/guards.h"
#include "runtime/thread_pool.h"

using namespace fxcpp;
using fx::RtValue;

int main() {
  rt::set_num_threads(1);
  auto model = nn::models::resnet18(/*width=*/16, /*num_classes=*/64);
  model->train(false);
  auto gm = fx::symbolic_trace(model);
  gm->recompile();
  const Tensor img = Tensor::randn({1, 3, 32, 32});
  const std::vector<RtValue> in{RtValue(img)};

  // Install guards from the traced shapes.
  passes::shape_prop(*gm, {img});
  const std::size_t n_guards = resilience::generate_guards(*gm);

  // --- overhead: bare tape vs guarded + anomaly-scanned tape ---------------
  resilience::AnomalyDetector det(*gm, resilience::AnomalyAction::Record);
  const auto t = bench::time_interleaved(
      [&] { gm->compiled_graph().run(in); },
      [&] {
        fx::check_guards_strict(*gm, in);
        gm->compiled_graph().run(in, &det);
      },
      /*trials=*/9);
  const double bare = t.median_a;
  const double hardened = t.median_b;
  const double overhead = bare > 0 ? hardened / bare : 0;
  const bool overhead_ok = overhead <= 1.05;

  // --- run_resilient happy path (guards + parallel rung) -------------------
  fx::ResilientOptions ropts;
  ropts.num_threads = 2;
  double resilient_s = 0;
  {
    const auto rt_timed = bench::time_interleaved(
        [&] { gm->compiled_graph().run(in); },
        [&] { gm->run_resilient(in, ropts); },
        /*trials=*/5);
    resilient_s = rt_timed.median_b;
  }

  bench::print_header(
      "A7: traced ResNet-18 (w=16, 32x32), hardened-runtime overhead (sec)",
      {"configuration", "median", "stdev", "overhead"});
  bench::print_row({"tape (bare)", bench::fmt(bare), bench::fmt(t.a.stdev),
                    "1.00"});
  bench::print_row({"tape (guards+anomaly)", bench::fmt(hardened),
                    bench::fmt(t.b.stdev), bench::fmt(overhead, 3)});
  bench::print_row({"run_resilient (happy)", bench::fmt(resilient_s), "-",
                    bench::fmt(bare > 0 ? resilient_s / bare : 0, 3)});
  std::printf(
      "\nguard specs installed       : %zu placeholders\n"
      "anomaly findings (clean run): %zu\n"
      "guard+anomaly overhead      : %.1f%%  (acceptance band <= 5%%) %s\n",
      n_guards, det.findings().size(), 100.0 * (overhead - 1.0),
      overhead_ok ? "OK" : "OUTSIDE BAND (advisory)");

  // --- bit-equality: hardened and resilient outputs match the bare tape ----
  const Tensor ref = std::get<Tensor>(gm->compiled_graph().run(in).front());
  resilience::AnomalyDetector det2(*gm, resilience::AnomalyAction::Record);
  const Tensor o_hard =
      std::get<Tensor>(gm->compiled_graph().run(in, &det2).front());
  const Tensor o_res = std::get<Tensor>(gm->run_resilient(in, ropts).front());
  const bool bit_equal =
      max_abs_diff(ref, o_hard) == 0.0 && max_abs_diff(ref, o_res) == 0.0;
  std::printf("hardened == bare (tape/run_resilient) : %s\n",
              bit_equal ? "HOLDS" : "VIOLATED");

  {
    std::ofstream f("BENCH_resilience.json");
    f << "{\n  \"workload\": \"resnet18_w16_32x32\",\n  \"guard_specs\": "
      << n_guards << ",\n  \"bare_median_s\": " << bare
      << ",\n  \"hardened_median_s\": " << hardened
      << ",\n  \"overhead_x\": " << overhead
      << ",\n  \"overhead_in_band\": " << (overhead_ok ? "true" : "false")
      << ",\n  \"run_resilient_median_s\": " << resilient_s
      << ",\n  \"anomaly_findings_clean\": " << det.findings().size()
      << ",\n  \"bit_equal\": " << (bit_equal ? "true" : "false") << "\n}\n";
  }
  std::printf("wrote BENCH_resilience.json\n");
  return bit_equal ? 0 : 1;
}
