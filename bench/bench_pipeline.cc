// A3 — Section 6.2.3 case study: software pipelining via split_module.
// Overlapping stage-1 of item i with stage-0 of item i+1 should approach the
// max(stage) bound instead of the sum(stage) bound when both stages have
// real work and a second hardware thread exists. On the 1-core reproduction
// container the claim reduces to "pipelining preserves results at no big
// cost"; with >= 2 cores it shows throughput gains.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "passes/scheduler.h"
#include "runtime/thread_pool.h"

using namespace fxcpp;

int main() {
  rt::set_num_threads(1);  // keep kernels serial; pipeline supplies overlap
  auto model = nn::models::mlp({256, 512, 512, 512, 256}, "relu");
  auto gm = fx::symbolic_trace(model);

  // Boundary after the 4th node = roughly half the compute.
  int count = 0;
  std::string boundary;
  for (const fx::Node* n : gm->graph().nodes()) {
    if (n->op() == fx::Opcode::CallModule && ++count == 4) {
      boundary = n->name();
      break;
    }
  }
  auto split = passes::split_at(*gm, boundary);

  std::vector<Tensor> stream;
  for (int i = 0; i < 16; ++i) stream.push_back(Tensor::randn({8, 256}));

  const auto t_serial =
      bench::time_trials([&] { passes::run_serial(split, stream); }, 5);
  const auto t_piped =
      bench::time_trials([&] { passes::run_pipelined(split, stream); }, 5);

  bench::print_header("A3: 2-stage pipelining over a 16-item stream (sec)",
                      {"schedule", "mean", "stdev", "throughput ratio"});
  bench::print_row(
      {"serial", bench::fmt(t_serial.mean), bench::fmt(t_serial.stdev), "1.00"});
  bench::print_row({"pipelined", bench::fmt(t_piped.mean),
                    bench::fmt(t_piped.stdev),
                    bench::fmt(t_serial.mean / t_piped.mean, 2)});

  // Correctness of the overlap.
  auto a = passes::run_serial(split, stream);
  auto b = passes::run_pipelined(split, stream);
  bool ok = a.size() == b.size();
  for (std::size_t i = 0; ok && i < a.size(); ++i) ok = allclose(a[i], b[i]);
  std::printf("\npipelined == serial results : %s\n", ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
