// A9 — constant folding over the constness analysis (static_analysis PR):
// a traced model that recomputes weight-preprocessing expressions every
// forward (tanh-rescaled weights, doubled biases) is folded once through the
// Interpreter; the bench reports instructions removed, per-iteration
// allocator traffic, steady-state wall clock, and bit-equality of the folded
// graph across interpreter / serial tape / parallel x{1,2,8}. The acceptance
// gate — something actually folded, fewer allocations per run, bit-identical
// outputs — is deterministic (allocator counters, not wall clock) so it
// holds on a noisy 1-core CI box.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/functional.h"
#include "core/interpreter.h"
#include "core/tracer.h"
#include "passes/constant_folding.h"
#include "runtime/thread_pool.h"

using namespace fxcpp;
using fx::GraphModule;
using fx::RtValue;
using fx::Value;

namespace {

constexpr int kLayers = 4;
constexpr std::int64_t kDim = 16;

// Every layer re-derives its effective weight (tanh(w) + 0.5 w) and bias
// (b + b) from frozen parameters — 4 constant call nodes per layer that
// constant_folding collapses to 2 baked get_attrs each.
class FoldNet : public nn::Module {
 public:
  FoldNet() : nn::Module("FoldNet") {
    for (int i = 0; i < kLayers; ++i) {
      register_parameter("w" + std::to_string(i), Tensor::randn({kDim, kDim}));
      register_parameter("b" + std::to_string(i), Tensor::randn({kDim}));
    }
  }
  Value forward(const std::vector<Value>& in) override {
    Value h = in.at(0);
    for (int i = 0; i < kLayers; ++i) {
      Value w = param_value("w" + std::to_string(i));
      Value b = param_value("b" + std::to_string(i));
      h = fx::fn::relu(fx::fn::matmul(h, fx::fn::tanh(w) + w * 0.5) + (b + b));
    }
    return h;
  }
};

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous(), bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

struct Traffic {
  std::int64_t bytes = 0, count = 0;
};

Traffic traffic_of(const std::function<void()>& fn) {
  const std::int64_t b0 = Storage::total_allocated_bytes();
  const std::int64_t c0 = Storage::allocation_count();
  fn();
  return Traffic{Storage::total_allocated_bytes() - b0,
                 Storage::allocation_count() - c0};
}

}  // namespace

int main() {
  rt::set_num_threads(1);  // measure the fold, not intra-op overlap

  // One parameter set, two traces: `base` stays unfolded, `folded` is
  // transformed — identical float inputs on both sides.
  auto model = std::make_shared<FoldNet>();
  auto base = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  auto folded = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  base->recompile();
  const std::size_t instrs_before = base->compiled_graph().instrs().size();

  const Tensor x = Tensor::randn({8, kDim});
  const std::vector<RtValue> in{RtValue(x)};
  const Tensor ref = std::get<Tensor>(base->compiled_graph().run(in).front());

  const passes::FoldStats stats = passes::constant_folding(*folded);
  const std::size_t instrs_after = folded->compiled_graph().instrs().size();

  // Warm both tapes, then measure run-to-run allocator traffic.
  base->compiled_graph().run(in);
  folded->compiled_graph().run(in);
  const Traffic unfolded_t = traffic_of([&] { base->compiled_graph().run(in); });
  const Traffic folded_t = traffic_of([&] { folded->compiled_graph().run(in); });

  const double alloc_reduction =
      unfolded_t.count == 0
          ? 0.0
          : 1.0 - static_cast<double>(folded_t.count) /
                      static_cast<double>(unfolded_t.count);

  bench::print_header(
      "A9: FoldNet (4 layers, dim 16), constant folding",
      {"graph", "instrs", "bytes/run", "allocs/run"});
  bench::print_row({"unfolded", std::to_string(instrs_before),
                    std::to_string(unfolded_t.bytes),
                    std::to_string(unfolded_t.count)});
  bench::print_row({"folded", std::to_string(instrs_after),
                    std::to_string(folded_t.bytes),
                    std::to_string(folded_t.count)});

  std::printf(
      "\nfold: %d cones baked (%d nodes erased, %zu bytes of baked "
      "parameters), %.1f%% fewer allocations per run\n",
      stats.folded, stats.erased, stats.baked_bytes, 100.0 * alloc_reduction);

  // --- steady-state wall clock (interleaved; median) ------------------------
  const auto wall = bench::time_interleaved(
      [&] { base->compiled_graph().run(in); },
      [&] { folded->compiled_graph().run(in); }, 9);
  const double speedup = wall.median_b > 0 ? wall.median_a / wall.median_b : 0;
  bench::print_header("A9: steady-state wall clock (sec)",
                      {"graph", "median", "stdev", "speedup"});
  bench::print_row({"unfolded", bench::fmt(wall.median_a),
                    bench::fmt(wall.a.stdev), "1.00"});
  bench::print_row({"folded", bench::fmt(wall.median_b),
                    bench::fmt(wall.b.stdev), bench::fmt(speedup, 2)});

  // --- bit-equality across engines and thread counts -----------------------
  bool equal = true;
  auto check = [&](const char* name, const Tensor& got) {
    const bool ok = bit_equal(ref, got);
    equal = equal && ok;
    std::printf("  %-24s %s\n", name, ok ? "bit-equal" : "DIFFERS");
  };
  std::printf("\nbit-equality vs unfolded tape:\n");
  {
    fx::Interpreter interp(*folded);
    check("interpreter", fx::rt_tensor(interp.run(in)));
  }
  check("serial tape", folded->run({x}));
  for (int threads : {1, 2, 8}) {
    const std::string name = "parallel x" + std::to_string(threads);
    check(name.c_str(), folded->run_parallel({x}, threads));
  }

  const bool pass = equal && stats.folded > 0 &&
                    folded_t.count < unfolded_t.count;
  std::printf(
      "\nacceptance (folded>0, fewer allocs/run, bit-equal) : %s\n",
      pass ? "HOLDS" : "VIOLATED");

  {
    std::ofstream f("BENCH_constant_fold.json");
    f << "{\n"
      << "  \"workload\": \"foldnet_l4_d16\",\n"
      << "  \"instrs_unfolded\": " << instrs_before << ",\n"
      << "  \"instrs_folded\": " << instrs_after << ",\n"
      << "  \"cones_folded\": " << stats.folded << ",\n"
      << "  \"nodes_erased\": " << stats.erased << ",\n"
      << "  \"baked_bytes\": " << stats.baked_bytes << ",\n"
      << "  \"unfolded\": {\"bytes\": " << unfolded_t.bytes
      << ", \"allocs\": " << unfolded_t.count << "},\n"
      << "  \"folded\": {\"bytes\": " << folded_t.bytes
      << ", \"allocs\": " << folded_t.count << "},\n"
      << "  \"alloc_reduction\": " << bench::fmt(alloc_reduction, 4) << ",\n"
      << "  \"median_unfolded_sec\": " << bench::fmt(wall.median_a, 6) << ",\n"
      << "  \"median_folded_sec\": " << bench::fmt(wall.median_b, 6) << ",\n"
      << "  \"speedup\": " << bench::fmt(speedup, 3) << ",\n"
      << "  \"bit_equal\": " << (equal ? "true" : "false") << "\n"
      << "}\n";
  }
  std::printf("wrote BENCH_constant_fold.json\n");
  return pass ? 0 : 1;
}
