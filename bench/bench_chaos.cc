// A12 — chaos soak: closed-loop serving under a seeded fault schedule
// (resilience PR). Six closed-loop clients drive an InferenceSession over
// the A11 MLP while a ChaosInjector faults ~5% of engine runs (thrown
// kernel errors, NaN-poisoned outputs caught by the anomaly watchdog,
// injected allocation ceilings) plus one deterministic fault STORM — a
// run-index window where every run faults — that forces the circuit
// breaker Open. The session must absorb all of it: failed batches degrade
// to per-request rescues, rescues retry under the budgeted backoff policy,
// the breaker fails fast during the storm and probes its way back Closed,
// and the health machine drops the execution rung and earns it back.
// Acceptance — >= 99% of requests that got a genuine verdict succeed
// (shed and resubmitted requests are counted separately — a shed is the
// resilience working, not a failure), every successful response
// bit-identical to a reference Interpreter run, and the breaker
// demonstrably tripped Open AND re-closed via half-open probes — is
// enforced by the exit code.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/exec_hooks.h"
#include "core/interpreter.h"
#include "core/plan_cache.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "passes/memory_planner.h"
#include "resilience/anomaly.h"
#include "resilience/chaos.h"
#include "runtime/thread_pool.h"
#include "serve/loadgen.h"
#include "serve/session.h"

using namespace fxcpp;
using serve::InferenceSession;
using serve::LoadOptions;
using serve::LoadOutcome;
using serve::LoadReport;
using serve::ServeOptions;

namespace {

constexpr std::int64_t kFeat = 64;

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous(), bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

}  // namespace

int main() {
  rt::set_num_threads(1);

  // Same deep narrow MLP as A11: per-run dispatch cost is visible, so the
  // batched fast path matters and a forced rung drop is a real change.
  std::vector<std::int64_t> dims(1, kFeat);
  dims.insert(dims.end(), 8, 64);
  dims.push_back(64);
  auto gm = fx::symbolic_trace(nn::models::mlp(dims));
  fx::PlanCacheOptions po;
  po.bucket_batch_dim = true;
  po.capacity = 8;
  passes::compile_planned(*gm, {serve::request_input(0, 4, kFeat)}, po);
  for (const std::int64_t rows : {1, 2, 4, 8, 16}) {
    gm->run_planned(serve::request_input(99, rows, kFeat));
  }

  // The chaos schedule: ~5% of runs fault (short bursts), every kind in the
  // arsenal, plus a storm at run indices [120, 150) where every run faults —
  // the sustained outage that must trip the breaker.
  resilience::ChaosOptions co;
  co.fault_rate = 0.05;
  co.seed = 0xC4A05ull;
  co.kinds = {resilience::FaultKind::Throw, resilience::FaultKind::PoisonNaN,
              resilience::FaultKind::AllocLimit};
  co.burst_min = 1;
  co.burst_max = 3;
  co.storm_start = 120;
  co.storm_len = 30;
  resilience::ChaosInjector chaos(co);
  // Poisoned outputs only become failures if something notices: the anomaly
  // watchdog downstream of the injector turns NaN into
  // ExecError{NumericAnomaly}, which the rescue/retry machinery recovers.
  // This pairing is what makes the bit-equality gate meaningful — a poison
  // that slipped through silently would fail it.
  resilience::AnomalyDetector anomaly(*gm,
                                      resilience::AnomalyAction::Throw);
  fx::MultiHooks hooks({&chaos, &anomaly});

  ServeOptions so;
  so.batching = true;
  so.max_batch_rows = 16;
  so.max_queue_delay = std::chrono::microseconds(25);
  so.hooks = &hooks;
  // A short cooldown keeps the Open->HalfOpen->Closed cycle observable
  // within the bench's traffic volume.
  so.breaker.cooldown_rejections = 8;
  so.breaker.cooldown_jitter = 2;

  LoadOptions lo;
  lo.clients = 6;
  lo.requests_per_client = 250;
  lo.feature_dim = kFeat;
  lo.seed = 7;
  // A shed (breaker fast-fail or admission reject) tells the client "not
  // now": real clients back off and resubmit, and the availability gate
  // below scores their FINAL outcome.
  lo.resubmit_max = 400;
  lo.resubmit_backoff_seconds = 0.0002;

  InferenceSession session(gm, so);
  const LoadReport r = serve::run_closed_loop(session, lo);
  session.shutdown();
  const serve::SessionStats st = session.stats();
  const resilience::ChaosStats cs = chaos.stats();

  // Bit-equality: EVERY ok response against a fresh Interpreter run on that
  // request's own input — under chaos this is the "no silent corruption"
  // gate (a NaN poison that escaped the watchdog would land here).
  bool equal = true;
  std::size_t checked = 0;
  for (const LoadOutcome& o : r.outcomes) {
    if (!o.response.ok) continue;
    ++checked;
    const Tensor ref = fx::rt_tensor(fx::Interpreter(*gm).run(o.input));
    if (!bit_equal(ref, o.response.output)) equal = false;
  }

  const std::size_t decided = r.ok + r.failed;
  const double availability =
      decided ? static_cast<double>(r.ok) / static_cast<double>(decided) : 0.0;
  const bool breaker_cycled = st.breaker.trips >= 1 && st.breaker.closes >= 1;

  bench::print_header(
      "A12: chaos soak, 6 clients x 250 requests, ~5% seeded faults + storm",
      {"metric", "value"});
  bench::print_row({"ok / failed", std::to_string(r.ok) + " / " +
                                       std::to_string(r.failed)});
  bench::print_row({"shed (final)", std::to_string(r.shed)});
  bench::print_row({"client resubmits", std::to_string(r.client_resubmits)});
  bench::print_row({"availability", bench::fmt(availability * 100.0, 3) + "%"});
  bench::print_row({"QPS", bench::fmt(r.qps, 1)});
  bench::print_row({"p99 (ms)", bench::fmt(r.p99_seconds * 1e3, 3)});
  bench::print_row({"chaos runs/faulted/storm",
                    std::to_string(cs.runs) + "/" +
                        std::to_string(cs.faulted_runs) + "/" +
                        std::to_string(cs.storm_runs)});
  bench::print_row({"breaker trips/reopens/closes",
                    std::to_string(st.breaker.trips) + "/" +
                        std::to_string(st.breaker.reopens) + "/" +
                        std::to_string(st.breaker.closes)});
  bench::print_row({"breaker fast-fails", std::to_string(st.breaker_rejected)});
  bench::print_row({"retries granted", std::to_string(st.retries)});
  bench::print_row(
      {"health degrades/recoveries", std::to_string(st.health.degrades) + "/" +
                                         std::to_string(st.health.recoveries)});
  bench::print_row({"degraded-rung runs", std::to_string(st.degraded_rung_runs)});
  std::printf("\nsession stats: %s\n", st.to_json().c_str());

  const bool pass = availability >= 0.99 && equal && breaker_cycled;
  std::printf(
      "acceptance (availability >= 99%%, ok responses bit-equal, breaker "
      "tripped AND re-closed) : %s\n",
      pass ? "HOLDS" : "VIOLATED");

  {
    std::ofstream f("BENCH_chaos.json");
    f << "{\n"
      << "  \"workload\": \"mlp_" << kFeat << "_64x8_64_zipf_rows_chaos\",\n"
      << "  \"clients\": " << lo.clients << ",\n"
      << "  \"requests_per_client\": " << lo.requests_per_client << ",\n"
      << "  \"fault_rate\": " << bench::fmt(co.fault_rate, 3) << ",\n"
      << "  \"storm_runs\": " << cs.storm_runs << ",\n"
      << "  \"chaos_runs\": " << cs.runs << ",\n"
      << "  \"chaos_faulted_runs\": " << cs.faulted_runs << ",\n"
      << "  \"ok\": " << r.ok << ",\n"
      << "  \"failed\": " << r.failed << ",\n"
      << "  \"shed_final\": " << r.shed << ",\n"
      << "  \"client_resubmits\": " << r.client_resubmits << ",\n"
      << "  \"availability\": " << bench::fmt(availability, 5) << ",\n"
      << "  \"qps\": " << bench::fmt(r.qps, 1) << ",\n"
      << "  \"p99_sec\": " << bench::fmt(r.p99_seconds, 6) << ",\n"
      << "  \"breaker_trips\": " << st.breaker.trips << ",\n"
      << "  \"breaker_reopens\": " << st.breaker.reopens << ",\n"
      << "  \"breaker_closes\": " << st.breaker.closes << ",\n"
      << "  \"breaker_fast_fails\": " << st.breaker_rejected << ",\n"
      << "  \"retries\": " << st.retries << ",\n"
      << "  \"health_degrades\": " << st.health.degrades << ",\n"
      << "  \"health_recoveries\": " << st.health.recoveries << ",\n"
      << "  \"degraded_rung_runs\": " << st.degraded_rung_runs << ",\n"
      << "  \"responses_checked\": " << checked << ",\n"
      << "  \"bit_equal\": " << (equal ? "true" : "false") << ",\n"
      << "  \"breaker_cycled\": " << (breaker_cycled ? "true" : "false") << "\n"
      << "}\n";
  }
  std::printf("wrote BENCH_chaos.json\n");
  return pass ? 0 : 1;
}
