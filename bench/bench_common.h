// Shared helpers for the experiment harnesses: trial timing and
// paper-style table printing (the Runtime/stdev columns of Appendices B-D).
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "runtime/timer.h"

namespace fxcpp::bench {

// Run `fn` for `warmup + trials` iterations; return stats over the trials.
inline rt::TrialStats time_trials(const std::function<void()>& fn, int trials,
                                  int warmup = 2) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    rt::Timer t;
    fn();
    samples.push_back(t.seconds());
  }
  return rt::summarize(samples);
}

// Interleave two workloads A/B/A/B/... so slow machine-wide drift (shared
// container, frequency scaling) hits both equally, and summarize each with
// the *median* — robust to the occasional descheduled trial.
struct InterleavedResult {
  rt::TrialStats a, b;
  double median_a = 0.0, median_b = 0.0;
};

inline double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

inline InterleavedResult time_interleaved(const std::function<void()>& fa,
                                          const std::function<void()>& fb,
                                          int trials, int warmup = 2) {
  for (int i = 0; i < warmup; ++i) {
    fa();
    fb();
  }
  std::vector<double> sa, sb;
  sa.reserve(static_cast<std::size_t>(trials));
  sb.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    {
      rt::Timer t;
      fa();
      sa.push_back(t.seconds());
    }
    {
      rt::Timer t;
      fb();
      sb.push_back(t.seconds());
    }
  }
  InterleavedResult r;
  r.a = rt::summarize(sa);
  r.b = rt::summarize(sb);
  r.median_a = median_of(sa);
  r.median_b = median_of(sb);
  return r;
}

inline void print_header(const std::string& title,
                         const std::vector<std::string>& cols) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : cols) std::printf("%-22s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-22s", "------");
  std::printf("\n");
}

inline void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-22s", c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

}  // namespace fxcpp::bench
