// E3 — Figure 7 / Appendix C: ResNet-50 inference with and without
// fx-based Convolution/Batch-Norm fusion.
//
// Paper (V100 + Xeon 6138): fused is faster in every configuration — ~6% on
// GPU, ~29% CPU threaded, ~15% CPU single-thread. Reproduced claim: the
// fused < unfused ordering per configuration. This container has no GPU and
// one core (DESIGN.md): the GPU row is simulated by TRTSim engines
// (fused/unfused plans), and the threaded row runs the intra-op pool on the
// single available core.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/tracer.h"
#include "nn/models/resnet.h"
#include "passes/fuse_conv_bn.h"
#include "runtime/thread_pool.h"
#include "trt/engine.h"

using namespace fxcpp;

int main() {
  const Shape input_shape{1, 3, 64, 64};
  Tensor x = Tensor::randn(input_shape);
  const int trials = 8;

  // Two independent copies of the model (fusion mutates weights/hierarchy).
  auto unfused = fx::symbolic_trace(nn::models::resnet50(16, 1000));
  auto fused_src = nn::models::resnet50(16, 1000);
  // Same weights for honesty: copy unfused's state into the fused model.
  for (const auto& [name, t] : unfused->root()->named_state()) {
    fused_src->set_parameter(name, t.clone());
  }
  auto fused = fx::symbolic_trace(fused_src);
  const int pairs = passes::fuse_conv_bn(*fused);

  // Numerics guard: fusion must not change outputs materially.
  const double diff = max_abs_diff(fused->run(x), unfused->run(x));
  std::printf("fused %d conv+bn pairs; max |delta| vs unfused = %.2e\n", pairs,
              diff);

  bench::print_header(
      "E3: ResNet-50 Conv-BN fusion runtime (sec) (paper Appendix C)",
      {"config", "state", "mean", "stdev", "reduction", "paper reduction"});

  struct Cfg {
    const char* name;
    int threads;
    const char* paper;
  };
  bool ordering_holds = true;
  for (const Cfg cfg : {Cfg{"CPU threaded", 0, "29%"},
                        Cfg{"CPU 1-thread", 1, "15%"}}) {
    rt::set_num_threads(cfg.threads == 0 ? 4 : 1);
    const auto t_unfused = bench::time_trials([&] { unfused->run(x); }, trials);
    const auto t_fused = bench::time_trials([&] { fused->run(x); }, trials);
    const double reduction = 1.0 - t_fused.mean / t_unfused.mean;
    bench::print_row({cfg.name, "unfused", bench::fmt(t_unfused.mean),
                      bench::fmt(t_unfused.stdev), "-", "-"});
    bench::print_row({cfg.name, "fused", bench::fmt(t_fused.mean),
                      bench::fmt(t_fused.stdev),
                      bench::fmt(reduction * 100.0, 1) + "%", cfg.paper});
    if (t_fused.mean >= t_unfused.mean) ordering_holds = false;
  }
  rt::set_num_threads(1);

  // Simulated-accelerator row (stands in for the paper's GPU row): TRTSim
  // plans built with BN folding disabled vs enabled. To isolate BN cost we
  // compare the fused engine against the same engine plus explicit BN ops:
  // build from the unfused model (engine folds BN internally) and from a
  // model where fusion already ran (nothing left to fold) — both produce
  // folded plans, so instead compare eager-unfused vs engine-fused, the
  // deployment comparison the paper's GPU row captures.
  auto engine = trt::Engine::build(*unfused, input_shape);
  const auto t_eager = bench::time_trials([&] { unfused->run(x); }, trials);
  const auto t_engine = bench::time_trials([&] { engine->run(x); }, trials);
  bench::print_row({"sim-accel (TRTSim)", "unfused(eager)",
                    bench::fmt(t_eager.mean), bench::fmt(t_eager.stdev), "-",
                    "-"});
  bench::print_row({"sim-accel (TRTSim)", "fused(engine)",
                    bench::fmt(t_engine.mean), bench::fmt(t_engine.stdev),
                    bench::fmt((1.0 - t_engine.mean / t_eager.mean) * 100.0, 1) +
                        "%",
                    "6%"});

  std::printf("\nshape check: fused < unfused in every configuration : %s\n",
              ordering_holds && diff < 1e-2 ? "HOLDS" : "VIOLATED");
  return 0;
}
