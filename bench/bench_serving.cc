// A11 — inference serving under closed-loop traffic (serving PR): the
// repo's first throughput-under-load number. Six closed-loop clients drive
// an InferenceSession over an MLP with a Zipf row-count mix (1/2/4 hot,
// 3..8 tail), once with the dynamic batcher disabled (every request runs
// alone) and once enabled (compatible requests coalesce into one planned
// run whose row count lands in a power-of-two PlanCache bucket). Reports
// QPS and client-observed p50/p99 latency for both arms, interleaving
// three rounds per arm so machine-wide drift hits both equally.
// Acceptance — batched throughput >= 1.3x unbatched, zero failed requests,
// and every response bit-identical to a reference Interpreter run on that
// request's own input — is enforced by the exit code.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/interpreter.h"
#include "core/plan_cache.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "passes/memory_planner.h"
#include "runtime/thread_pool.h"
#include "serve/loadgen.h"
#include "serve/session.h"

using namespace fxcpp;
using serve::InferenceSession;
using serve::LoadOptions;
using serve::LoadOutcome;
using serve::LoadReport;
using serve::ServeOptions;

namespace {

constexpr std::int64_t kFeat = 64;
constexpr int kRounds = 3;

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous(), bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

double median3(double a, double b, double c) {
  return bench::median_of({a, b, c});
}

}  // namespace

int main() {
  rt::set_num_threads(1);  // measure batching amortization, not intra-op

  // What batching amortizes on one core is the fixed per-RUN cost: signature
  // render, cache lookup, arena lease, and — dominant here — per-instruction
  // tape dispatch, which scales with depth while each row's GEMM work stays
  // small. A deep narrow MLP (8 hidden layers of 64) is therefore the
  // serving-relevant regime: dispatch is a visible fraction of one row's
  // compute, so coalescing ~5 requests into one planned run pays.
  std::vector<std::int64_t> dims(1, kFeat);
  dims.insert(dims.end(), 8, 64);
  dims.push_back(64);
  auto gm = fx::symbolic_trace(nn::models::mlp(dims));
  fx::PlanCacheOptions po;
  po.bucket_batch_dim = true;
  po.capacity = 8;
  passes::compile_planned(*gm, {serve::request_input(0, 4, kFeat)}, po);
  // Pre-plan every power-of-two bucket the traffic can produce, so neither
  // arm pays planning work inside the timed window.
  for (const std::int64_t rows : {1, 2, 4, 8, 16}) {
    gm->run_planned(serve::request_input(99, rows, kFeat));
  }

  ServeOptions unbatched;
  unbatched.batching = false;
  ServeOptions batched;
  batched.batching = true;
  batched.max_batch_rows = 16;
  // Closed-loop clients are blocked while their batch runs, so a long queue
  // delay is pure dead air; 25us is just enough to catch clients mid-wakeup
  // after a batch completes. Batches still reach ~5 requests because traffic
  // accumulates naturally while the previous planned run executes.
  batched.max_queue_delay = std::chrono::microseconds(25);

  LoadOptions lo;
  lo.clients = 6;
  lo.requests_per_client = 100;
  lo.feature_dim = kFeat;

  std::vector<LoadReport> runs_unbatched, runs_batched;
  for (int round = 0; round < kRounds; ++round) {
    lo.seed = static_cast<std::uint64_t>(round + 1);
    {
      InferenceSession s(gm, unbatched);
      runs_unbatched.push_back(serve::run_closed_loop(s, lo));
    }
    {
      InferenceSession s(gm, batched);
      runs_batched.push_back(serve::run_closed_loop(s, lo));
    }
  }

  const double qps_unb = median3(runs_unbatched[0].qps, runs_unbatched[1].qps,
                                 runs_unbatched[2].qps);
  const double qps_bat = median3(runs_batched[0].qps, runs_batched[1].qps,
                                 runs_batched[2].qps);
  const double speedup = qps_unb > 0.0 ? qps_bat / qps_unb : 0.0;

  // Bit-equality: EVERY response, both arms, all rounds, against a fresh
  // Interpreter run on that request's own input.
  bool equal = true;
  std::size_t failed = 0;
  std::size_t checked = 0;
  for (const auto* runs : {&runs_unbatched, &runs_batched}) {
    for (const LoadReport& r : *runs) {
      failed += r.failed;
      for (const LoadOutcome& o : r.outcomes) {
        if (!o.response.ok) continue;
        ++checked;
        const Tensor ref =
            fx::rt_tensor(fx::Interpreter(*gm).run(o.input));
        if (!bit_equal(ref, o.response.output)) {
          equal = false;
        }
      }
    }
  }

  bench::print_header(
      "A11: closed-loop serving, 6 clients x 100 requests, Zipf rows "
      "(median of 3 rounds)",
      {"arm", "QPS", "p50 (ms)", "p99 (ms)", "mean batch reqs"});
  const LoadReport& ru = runs_unbatched[kRounds - 1];
  const LoadReport& rb = runs_batched[kRounds - 1];
  bench::print_row({"unbatched", bench::fmt(qps_unb, 1),
                    bench::fmt(ru.p50_seconds * 1e3, 3),
                    bench::fmt(ru.p99_seconds * 1e3, 3),
                    bench::fmt(ru.mean_batch_requests, 2)});
  bench::print_row({"dynamic batching", bench::fmt(qps_bat, 1),
                    bench::fmt(rb.p50_seconds * 1e3, 3),
                    bench::fmt(rb.p99_seconds * 1e3, 3),
                    bench::fmt(rb.mean_batch_requests, 2)});
  std::printf("\nbatched/unbatched throughput: %.2fx; %zu responses "
              "bit-checked vs interpreter; %zu failed\n",
              speedup, checked, failed);

  const bool pass = speedup >= 1.3 && equal && failed == 0;
  std::printf(
      "acceptance (batched >= 1.3x unbatched, bit-equal, no failures) : %s\n",
      pass ? "HOLDS" : "VIOLATED");

  {
    std::ofstream f("BENCH_serving.json");
    f << "{\n"
      << "  \"workload\": \"mlp_" << kFeat << "_64x8_64_zipf_rows\",\n"
      << "  \"clients\": " << lo.clients << ",\n"
      << "  \"requests_per_client\": " << lo.requests_per_client << ",\n"
      << "  \"rounds\": " << kRounds << ",\n"
      << "  \"qps_unbatched\": " << bench::fmt(qps_unb, 1) << ",\n"
      << "  \"qps_batched\": " << bench::fmt(qps_bat, 1) << ",\n"
      << "  \"speedup\": " << bench::fmt(speedup, 3) << ",\n"
      << "  \"p50_unbatched_sec\": " << bench::fmt(ru.p50_seconds, 6) << ",\n"
      << "  \"p99_unbatched_sec\": " << bench::fmt(ru.p99_seconds, 6) << ",\n"
      << "  \"p50_batched_sec\": " << bench::fmt(rb.p50_seconds, 6) << ",\n"
      << "  \"p99_batched_sec\": " << bench::fmt(rb.p99_seconds, 6) << ",\n"
      << "  \"mean_batch_requests\": " << bench::fmt(rb.mean_batch_requests, 3)
      << ",\n"
      << "  \"responses_checked\": " << checked << ",\n"
      << "  \"failed\": " << failed << ",\n"
      << "  \"bit_equal\": " << (equal ? "true" : "false") << "\n"
      << "}\n";
  }
  std::printf("wrote BENCH_serving.json\n");
  return pass ? 0 : 1;
}
