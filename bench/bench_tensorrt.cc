// E4 — Figure 8 / Appendix D: lowering ResNet-50 and LearningToPaint to the
// TRTSim backend vs eager execution.
//
// Paper (V100 + TensorRT): 3.7x for ResNet-50, 1.54x for LearningToPaint.
// Reproduced claims: (a) the compiled engine beats eager for both models,
// (b) the bigger model (ResNet-50) gains more than the small actor network
// — more fusable structure relative to fixed per-op cost. TRTSim is the
// documented GPU/TensorRT substitution (DESIGN.md).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/tracer.h"
#include "nn/models/learning_to_paint.h"
#include "nn/models/resnet.h"
#include "trt/lower.h"

using namespace fxcpp;

int main() {
  const int trials = 30;  // matches the paper's 30-trial protocol

  struct Workload {
    const char* name;
    std::shared_ptr<fx::GraphModule> gm;
    Tensor input;
    double paper_speedup;
  };

  auto rn50 = fx::symbolic_trace(nn::models::resnet50(16, 1000));
  auto ltp_model = nn::models::learning_to_paint_actor({9, 65, 16});
  auto ltp = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(ltp_model));

  std::vector<Workload> workloads;
  workloads.push_back({"ResNet50", rn50, Tensor::randn({1, 3, 64, 64}), 3.7});
  workloads.push_back(
      {"LearningToPaint", ltp, Tensor::randn({1, 9, 32, 32}), 1.54});

  bench::print_header(
      "E4: TRTSim lowering runtime (sec) (paper Appendix D)",
      {"model", "backend", "mean", "stdev", "speedup", "paper speedup"});

  std::vector<double> speedups;
  for (auto& w : workloads) {
    auto lowered = trt::lower_to_trtsim(w.gm, w.input);
    if (lowered.engine_segments != 1 || lowered.eager_segments != 0) {
      std::printf("unexpected split for %s: %d engine / %d eager segments\n",
                  w.name, lowered.engine_segments, lowered.eager_segments);
    }
    for (const auto& st : lowered.engine_stats) {
      std::printf("%s: %s\n", w.name, st.to_string().c_str());
    }
    // Numerics guard.
    const double diff =
        max_abs_diff(lowered.module->run(w.input), w.gm->run(w.input));
    std::printf("%s: max |engine - eager| = %.2e\n", w.name, diff);

    // Interleaved trials + medians: robust against machine drift on this
    // shared single-core container.
    const auto r = bench::time_interleaved(
        [&] { w.gm->run(w.input); },
        [&] { lowered.module->run(w.input); }, trials);
    const double speedup = r.median_a / r.median_b;
    speedups.push_back(speedup);
    bench::print_row({w.name, "eager (PyTorch)", bench::fmt(r.median_a),
                      bench::fmt(r.a.stdev), "1.00", "1.00"});
    bench::print_row({w.name, "TRTSim engine", bench::fmt(r.median_b),
                      bench::fmt(r.b.stdev), bench::fmt(speedup, 2),
                      bench::fmt(w.paper_speedup, 2)});
  }

  // Robust claim on this substrate: the AoT engine beats eager on both
  // models. The paper's additional size ordering (ResNet50 gains more than
  // LearningToPaint, 3.7x vs 1.54x) is driven by GPU kernel autotuning and
  // fp16 — mechanisms with no analog when engine and eager share CPU
  // kernels — so it is reported here but not asserted (see EXPERIMENTS.md).
  const bool holds = speedups[0] > 1.0 && speedups[1] > 1.0;
  std::printf(
      "\nobserved ordering: ResNet50 %.2fx vs LearningToPaint %.2fx "
      "(paper: 3.70x vs 1.54x)\n",
      speedups[0], speedups[1]);
  std::printf("shape check: engine faster than eager for both models : %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return 0;
}
