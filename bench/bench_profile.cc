// A6 — profiler overhead and attribution coverage on a traced ResNet-18
// (the ISSUE's acceptance workload): per-node self times must sum to within
// 20% of the *unhooked* tape wall time (the hooks are two clock reads and a
// mutex per node, cheap next to any conv), profiled outputs must stay
// bit-identical to unprofiled ones on all three engines, and the cost-model
// join must cover every costed node. Timing is interleaved (hooked/unhooked
// alternating) and summarized by medians so container drift hits both arms;
// coverage outside the 20% band is reported but only bit-equality failures
// fail the binary — wall-clock ratios on a shared machine are advisory.
#include <cstdio>
#include <fstream>

#include "bench/bench_common.h"
#include "core/parallel_executor.h"
#include "core/tracer.h"
#include "nn/models/resnet.h"
#include "profile/profiler.h"
#include "runtime/thread_pool.h"

using namespace fxcpp;
using fx::RtValue;

int main() {
  rt::set_num_threads(1);  // serial kernels: node self times are CPU times
  auto model = nn::models::resnet18(/*width=*/16, /*num_classes=*/64);
  model->train(false);
  auto gm = fx::symbolic_trace(model);
  gm->recompile();
  const Tensor img = Tensor::randn({1, 3, 32, 32});
  const std::vector<RtValue> in{RtValue(img)};

  // --- overhead: unhooked tape vs profiled tape, interleaved ---------------
  profile::Profiler prof(*gm);
  const auto t = bench::time_interleaved(
      [&] { gm->compiled_graph().run(in); },
      [&] { prof.run_tape(in); },
      /*trials=*/9);
  const double unhooked = t.median_a;
  const double hooked = t.median_b;
  const double node_s_per_run =
      prof.runs() ? prof.node_seconds() / static_cast<double>(prof.runs()) : 0;
  const double coverage = unhooked > 0 ? node_s_per_run / unhooked : 0;
  const bool coverage_ok = coverage >= 0.8 && coverage <= 1.2;

  bench::print_header(
      "A6: traced ResNet-18 (w=16, 32x32), profiler overhead (sec)",
      {"engine", "median", "stdev", "overhead"});
  bench::print_row({"tape (unhooked)", bench::fmt(unhooked),
                    bench::fmt(t.a.stdev), "1.00"});
  bench::print_row({"tape (profiled)", bench::fmt(hooked),
                    bench::fmt(t.b.stdev),
                    bench::fmt(unhooked > 0 ? hooked / unhooked : 0, 2)});
  std::printf(
      "\nper-node self time sum      : %s s/run\n"
      "coverage vs unhooked wall   : %.1f%%  (acceptance band 80-120%%) %s\n",
      bench::fmt(node_s_per_run).c_str(), 100.0 * coverage,
      coverage_ok ? "OK" : "OUTSIDE BAND (advisory)");

  // Cost-model join coverage: nodes with shape meta that got FLOPs/bytes.
  std::size_t measured = 0, total = 0;
  for (const auto& np : prof.node_profiles()) {
    ++total;
    if (np.measured) ++measured;
  }
  std::printf("cost-model coverage         : %zu/%zu nodes measured\n",
              measured, total);
  std::printf("allocator peak during runs  : %lld bytes\n",
              static_cast<long long>(prof.memory().peak));

  // --- bit-equality across engines, profiled vs unprofiled -----------------
  const Tensor ref = std::get<Tensor>(gm->compiled_graph().run(in).front());
  profile::Profiler eq(*gm);
  const Tensor o_interp = std::get<Tensor>(eq.run_interpreter(in));
  const Tensor o_tape = std::get<Tensor>(eq.run_tape(in).front());
  const Tensor o_par = std::get<Tensor>(eq.run_parallel(in, 2).front());
  const bool bit_equal = max_abs_diff(ref, o_interp) == 0.0 &&
                         max_abs_diff(ref, o_tape) == 0.0 &&
                         max_abs_diff(ref, o_par) == 0.0;
  std::printf("profiled == unprofiled (interp/tape/parallel) : %s\n",
              bit_equal ? "HOLDS" : "VIOLATED");

  {
    std::ofstream f("BENCH_profile.json");
    f << "{\n  \"workload\": \"resnet18_w16_32x32\",\n  \"nodes\": " << total
      << ",\n  \"unhooked_median_s\": " << unhooked
      << ",\n  \"profiled_median_s\": " << hooked
      << ",\n  \"overhead_x\": " << (unhooked > 0 ? hooked / unhooked : 0)
      << ",\n  \"node_seconds_per_run_s\": " << node_s_per_run
      << ",\n  \"coverage_vs_unhooked\": " << coverage
      << ",\n  \"coverage_in_band\": " << (coverage_ok ? "true" : "false")
      << ",\n  \"cost_model_measured_nodes\": " << measured
      << ",\n  \"allocator_peak_bytes\": " << prof.memory().peak
      << ",\n  \"bit_equal\": " << (bit_equal ? "true" : "false") << "\n}\n";
  }
  std::printf("wrote BENCH_profile.json\n");
  return bit_equal ? 0 : 1;
}
