// A1 — ablation: execution-machinery overhead.
//
// The paper's codegen decision (Section 4.3) exists so transformed programs
// run as native code instead of through an interpreter. The C++ analog:
// GraphModule's compiled tape (targets pre-resolved, kwargs pre-merged,
// liveness precomputed) vs the per-node Interpreter vs calling the original
// module's forward directly. The tape should sit near eager; the
// interpreter pays per-node target resolution and argument evaluation.
#include <benchmark/benchmark.h>

#include "core/functional.h"
#include "core/interpreter.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet.h"

using namespace fxcpp;

namespace {

// Tiny layers: per-op overhead dominates, exposing the dispatch gap.
std::shared_ptr<fx::GraphModule> tiny_mlp() {
  static auto gm = fx::symbolic_trace(
      nn::models::mlp({16, 16, 16, 16, 16, 16, 16, 16, 16}, "relu"));
  return gm;
}

std::shared_ptr<nn::Module> tiny_mlp_eager() {
  static auto m = std::static_pointer_cast<nn::Module>(
      nn::models::mlp({16, 16, 16, 16, 16, 16, 16, 16, 16}, "relu"));
  return m;
}

void BM_EagerModule(benchmark::State& state) {
  auto m = tiny_mlp_eager();
  Tensor x = Tensor::randn({1, 16});
  for (auto _ : state) {
    benchmark::DoNotOptimize((*m)(fx::Value(x)));
  }
}
BENCHMARK(BM_EagerModule);

void BM_CompiledTape(benchmark::State& state) {
  auto gm = tiny_mlp();
  Tensor x = Tensor::randn({1, 16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(gm->run(x));
  }
}
BENCHMARK(BM_CompiledTape);

void BM_Interpreter(benchmark::State& state) {
  auto gm = tiny_mlp();
  Tensor x = Tensor::randn({1, 16});
  for (auto _ : state) {
    fx::Interpreter interp(*gm);
    benchmark::DoNotOptimize(interp.run(x));
  }
}
BENCHMARK(BM_Interpreter);

// A 64-op call_function chain over tiny tensors: per-node machinery
// dominates, exposing the gap between pre-resolved tape execution and
// per-node interpretation (target lookup, argument evaluation, kwarg merge).
std::shared_ptr<fx::GraphModule> long_chain() {
  static auto gm = [] {
    auto f = [](fx::Value x) -> fx::Value {
      for (int i = 0; i < 64; ++i) x = fx::fn::relu(x);
      return x;
    };
    return fx::symbolic_trace(std::function<fx::Value(fx::Value)>(f));
  }();
  return gm;
}

void BM_CompiledTape_Chain64(benchmark::State& state) {
  auto gm = long_chain();
  Tensor x = Tensor::randn({4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(gm->run(x));
  }
}
BENCHMARK(BM_CompiledTape_Chain64);

void BM_Interpreter_Chain64(benchmark::State& state) {
  auto gm = long_chain();
  Tensor x = Tensor::randn({4});
  for (auto _ : state) {
    fx::Interpreter interp(*gm);
    benchmark::DoNotOptimize(interp.run(x));
  }
}
BENCHMARK(BM_Interpreter_Chain64);

void BM_TraceCost(benchmark::State& state) {
  // One-time capture cost (the AoT cost the paper trades against JIT
  // re-capture unpredictability, Section 5.3).
  auto m = nn::models::mlp({16, 16, 16, 16}, "relu");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx::symbolic_trace(m));
  }
}
BENCHMARK(BM_TraceCost);

void BM_RecompileCost(benchmark::State& state) {
  auto gm = fx::symbolic_trace(nn::models::resnet18(8, 10));
  for (auto _ : state) {
    gm->recompile();
  }
}
BENCHMARK(BM_RecompileCost);

}  // namespace

BENCHMARK_MAIN();
