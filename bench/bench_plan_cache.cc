// A10 — guard-keyed multi-plan cache under a Zipf shape trace (dynamic
// shapes PR): a shape-polymorphic elementwise graph is driven by a request
// stream with 3 hot batch sizes (probability mass 0.55 / 0.25 / 0.12) and an
// 8% long tail spread over 18 cold batch sizes — the "production traffic has
// a few hot shapes" distribution the cache is built for. Reports the
// steady-state hit rate, the hit-path overhead versus running the installed
// plan directly (lookup + guard check must cost almost nothing), the
// per-request speedup versus replanning on every request, and bit-equality
// against the interpreter at every distinct shape. Acceptance — steady-state
// hit rate >= 90%, hit-path overhead <= 5%, bit-identical outputs — is
// enforced by the exit code.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/interpreter.h"
#include "core/plan_cache.h"
#include "passes/memory_planner.h"
#include "runtime/rng.h"
#include "runtime/thread_pool.h"

using namespace fxcpp;
using fx::GraphModule;
using fx::RtValue;

namespace {

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous(), bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

// A fixed elementwise DAG (~40 ops, two reconverging branches) that runs at
// any batch size — the shape-polymorphic module the cache specializes per
// signature. Deterministic so the cached and always-replan legs can use two
// independent but identical modules.
std::shared_ptr<GraphModule> polymorphic_module() {
  auto g = std::make_unique<fx::Graph>();
  fx::Node* x = g->placeholder("x");
  fx::Node* a = x;
  fx::Node* b = x;
  static const char* kUnary[] = {"relu", "tanh", "sigmoid", "gelu", "neg"};
  for (int i = 0; i < 18; ++i) {
    a = g->call_function(kUnary[i % 5], {a});
    a = g->call_function("add", {a, fx::Argument(0.125 * (i + 1))});
    b = g->call_function(kUnary[(i + 2) % 5], {b});
  }
  fx::Node* out = g->call_function("mul", {a, b});
  out = g->call_function("add", {out, fx::Argument(1.0)});
  g->output(out);
  auto gm = std::make_shared<GraphModule>(nullptr, std::move(g), "ZipfEw");
  gm->recompile();
  return gm;
}

constexpr std::int64_t kFeat = 256;

Tensor input_for(std::int64_t batch) {
  // Deterministic per batch size so repeated requests for one shape carry
  // identical bits (bit-equality is checked per distinct shape).
  rt::Rng rng(0x5EEDu + static_cast<std::uint64_t>(batch));
  std::vector<float> v(static_cast<std::size_t>(batch * kFeat));
  for (auto& f : v) f = static_cast<float>(rng.normal());
  return Tensor::from_vector(v, {batch, kFeat});
}

// Zipf-flavored batch-size trace: hot shapes 64/32/128 carry 92% of the
// mass, the rest spreads uniformly over 18 cold batch sizes (2..19).
std::vector<std::int64_t> zipf_trace(int n, rt::Rng& rng) {
  std::vector<std::int64_t> trace;
  trace.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double p = rng.uniform(0.0, 1.0);
    std::int64_t batch;
    if (p < 0.55) batch = 64;
    else if (p < 0.80) batch = 32;
    else if (p < 0.92) batch = 128;
    else batch = 2 + rng.randint(0, 17);
    trace.push_back(batch);
  }
  return trace;
}

}  // namespace

int main() {
  rt::set_num_threads(1);  // measure the cache, not intra-op overlap

  rt::Rng rng(7);
  const std::vector<std::int64_t> trace = zipf_trace(2000, rng);
  const std::int64_t kHot = 64;
  const std::vector<RtValue> hot_in{RtValue(input_for(kHot))};

  fx::PlanCacheOptions po;
  po.capacity = 8;

  // --- leg 1: steady-state hit rate over the full trace --------------------
  auto gm = polymorphic_module();
  passes::compile_planned(*gm, {input_for(kHot)}, po);
  const auto cache = gm->plan_cache();
  bool equal = true;
  std::vector<std::int64_t> seen;
  for (const std::int64_t batch : trace) {
    const std::vector<RtValue> in{RtValue(input_for(batch))};
    const Tensor got = std::get<Tensor>(gm->run_planned(in).front());
    // Each distinct shape's first serve is checked against the interpreter.
    if (std::find(seen.begin(), seen.end(), batch) == seen.end()) {
      seen.push_back(batch);
      const Tensor ref = std::get<Tensor>(fx::Interpreter(*gm).run(in));
      if (!bit_equal(ref, got)) {
        equal = false;
        std::printf("  batch %lld DIFFERS from interpreter\n",
                    static_cast<long long>(batch));
      }
    }
  }
  const fx::PlanCacheStats stats = cache->stats();
  const double hit_rate = stats.hit_rate();

  bench::print_header(
      "A10: Zipf shape trace (3 hot + 18 tail batches, capacity 8)",
      {"requests", "entries", "hits", "misses", "evictions", "hit rate"});
  bench::print_row({std::to_string(stats.hits + stats.misses),
                    std::to_string(stats.entries), std::to_string(stats.hits),
                    std::to_string(stats.misses),
                    std::to_string(stats.evictions), bench::fmt(hit_rate, 4)});

  // --- leg 2: hit-path overhead vs the raw installed plan ------------------
  // Raw = the planned tape with the plan and a leased arena in hand (zero
  // lookup work); hit = the full run_planned path (signature render + LRU
  // touch + guard check + arena lease). The delta is the cache's toll.
  const auto entry = cache->lookup(hot_in);
  fx::ArenaLease lease(entry);
  const auto& cg = gm->compiled_graph();
  const auto raw_fn = [&] {
    cg.run_planned(hot_in, *entry->plan(), lease.base());
  };
  const auto hit_fn = [&] { gm->run_planned(hot_in); };
  const bench::InterleavedResult hit_vs_raw =
      bench::time_interleaved(raw_fn, hit_fn, 41, 5);
  const double hit_overhead =
      hit_vs_raw.median_a > 0
          ? hit_vs_raw.median_b / hit_vs_raw.median_a - 1.0
          : 0.0;

  bench::print_header("A10: hot-shape per-request wall clock (sec)",
                      {"path", "median", "stdev", "overhead"});
  bench::print_row({"raw installed plan", bench::fmt(hit_vs_raw.median_a, 6),
                    bench::fmt(hit_vs_raw.a.stdev, 6), "--"});
  bench::print_row({"cache hit", bench::fmt(hit_vs_raw.median_b, 6),
                    bench::fmt(hit_vs_raw.b.stdev, 6),
                    bench::fmt(hit_overhead * 100.0, 2) + "%"});

  // --- leg 3: trace replay, cached vs replan-every-request -----------------
  // Two identical independent modules so clearing one cache cannot poison
  // the other leg's entries mid-interleave.
  auto gm_replan = polymorphic_module();
  passes::compile_planned(*gm_replan, {input_for(kHot)}, po);
  const auto cache_replan = gm_replan->plan_cache();
  rt::Rng replay_rng(7);
  const std::vector<std::int64_t> replay = zipf_trace(200, replay_rng);
  std::vector<std::vector<RtValue>> replay_in;
  replay_in.reserve(replay.size());
  for (const std::int64_t batch : replay) {
    replay_in.push_back({RtValue(input_for(batch))});
  }
  const auto cached_fn = [&] {
    for (const auto& in : replay_in) gm->run_planned(in);
  };
  const auto replan_fn = [&] {
    for (const auto& in : replay_in) {
      cache_replan->clear();  // every request misses: plan from scratch
      gm_replan->run_planned(in);
    }
  };
  const bench::InterleavedResult replay_r =
      bench::time_interleaved(cached_fn, replan_fn, 9);
  const double per_req_cached = replay_r.median_a / replay.size();
  const double per_req_replan = replay_r.median_b / replay.size();
  const double replan_speedup =
      per_req_cached > 0 ? per_req_replan / per_req_cached : 0.0;

  bench::print_header("A10: 200-request trace replay, per-request (sec)",
                      {"policy", "per-request", "stdev/trace", "speedup"});
  bench::print_row({"multi-plan cache", bench::fmt(per_req_cached, 7),
                    bench::fmt(replay_r.a.stdev, 5), "1.00"});
  bench::print_row({"replan every request", bench::fmt(per_req_replan, 7),
                    bench::fmt(replay_r.b.stdev, 5),
                    "1/" + bench::fmt(replan_speedup, 2)});

  const bool pass = hit_rate >= 0.90 && hit_overhead <= 0.05 && equal;
  std::printf(
      "\nacceptance (hit rate >= 90%%, hit overhead <= 5%%, bit-equal) : %s\n",
      pass ? "HOLDS" : "VIOLATED");

  {
    std::ofstream f("BENCH_plan_cache.json");
    f << "{\n"
      << "  \"workload\": \"elementwise_dag_f" << kFeat << "_zipf\",\n"
      << "  \"requests\": " << (stats.hits + stats.misses) << ",\n"
      << "  \"capacity\": " << po.capacity << ",\n"
      << "  \"entries\": " << stats.entries << ",\n"
      << "  \"hits\": " << stats.hits << ",\n"
      << "  \"misses\": " << stats.misses << ",\n"
      << "  \"evictions\": " << stats.evictions << ",\n"
      << "  \"replans\": " << stats.replans << ",\n"
      << "  \"hit_rate\": " << bench::fmt(hit_rate, 4) << ",\n"
      << "  \"median_raw_sec\": " << bench::fmt(hit_vs_raw.median_a, 7)
      << ",\n"
      << "  \"median_hit_sec\": " << bench::fmt(hit_vs_raw.median_b, 7)
      << ",\n"
      << "  \"hit_overhead\": " << bench::fmt(hit_overhead, 4) << ",\n"
      << "  \"per_request_cached_sec\": " << bench::fmt(per_req_cached, 7)
      << ",\n"
      << "  \"per_request_replan_sec\": " << bench::fmt(per_req_replan, 7)
      << ",\n"
      << "  \"replan_speedup\": " << bench::fmt(replan_speedup, 3) << ",\n"
      << "  \"bit_equal\": " << (equal ? "true" : "false") << "\n"
      << "}\n";
  }
  std::printf("wrote BENCH_plan_cache.json\n");
  return pass ? 0 : 1;
}
