// A13 — MLAS-style micro-kernel layer (perf_opt PR): single-thread GEMM
// GFLOP/s of the packed, register-tiled kernels::sgemm against the naive
// loops it replaced (reproduced verbatim below as the baseline), swept over
// sizes and over every ISA tier the machine supports; plus traced ResNet-18
// end-to-end run_planned speedup of the dispatched tier over the forced
// scalar fallback, a roofline-ratio before/after on the 512^3 GEMM, and
// bit-equality of every engine (Interpreter / tape / planned / parallel /
// serving) at the pinned tier. Acceptance — >=2.5x GFLOP/s over the old
// gemm_nt at 512^3 on the best tier, measurable (>=1.15x) end-to-end
// speedup, roofline ratio strictly improved, per-tier bit-determinism, all
// engines bit-equal — is enforced by the exit code.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/interpreter.h"
#include "core/parallel_executor.h"
#include "core/tracer.h"
#include "kernels/dispatch.h"
#include "kernels/kernels.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet.h"
#include "passes/memory_planner.h"
#include "runtime/rng.h"
#include "runtime/thread_pool.h"
#include "serve/loadgen.h"
#include "serve/session.h"

using namespace fxcpp;
using fx::RtValue;

namespace {

// The pre-PR y = x @ w^T + bias kernel from src/tensor/ops_linear.cc,
// reproduced verbatim (minus the outer parallel_for; this bench pins one
// thread anyway) so the before/after numbers keep meaning after the naive
// code is gone from the tree.
void naive_gemm_nt(const float* x, const float* w, const float* bias, float* y,
                   std::int64_t m, std::int64_t k, std::int64_t o) {
  constexpr std::int64_t kRowBlock = 8;
  for (std::int64_t r0 = 0; r0 < m; r0 += kRowBlock) {
    const std::int64_t rows = std::min(kRowBlock, m - r0);
    for (std::int64_t j = 0; j < o; ++j) {
      const float* wrow = w + j * k;
      const float base = bias ? bias[j] : 0.f;
      for (std::int64_t r = 0; r < rows; ++r) {
        const float* xrow = x + (r0 + r) * k;
        float acc = 0.f;
        for (std::int64_t kk = 0; kk < k; ++kk) acc += xrow[kk] * wrow[kk];
        y[(r0 + r) * o + j] = acc + base;
      }
    }
  }
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous(), bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

double gflops(std::int64_t m, std::int64_t n, std::int64_t k, double sec) {
  return sec > 0 ? 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k) / sec / 1e9
                 : 0.0;
}

// Roofline estimate with the profiler's default device model
// (profile::ProfileOptions: 5 GFLOP/s compute, 10 GB/s memory).
double roofline_est_sec(std::int64_t m, std::int64_t n, std::int64_t k) {
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  const double bytes =
      4.0 * (static_cast<double>(m) * static_cast<double>(k) +
             static_cast<double>(k) * static_cast<double>(n) +
             static_cast<double>(m) * static_cast<double>(n));
  return std::max(flops / 5e9, bytes / 10e9);
}

}  // namespace

int main() {
  rt::set_num_threads(1);  // single-thread kernel quality is the claim

  const kernels::Isa best = kernels::active_isa();

  // --- GEMM sweep: naive gemm_nt vs packed sgemm at the active tier --------
  struct SweepRow {
    std::int64_t size;
    double naive_gf, packed_gf, speedup;
  };
  std::vector<SweepRow> sweep;
  double naive512_sec = 0, packed512_sec = 0;
  bench::print_header(
      "A13: single-thread fp32 GEMM y=x@w^T (+bias), GFLOP/s, isa=" +
          std::string(kernels::isa_name(best)),
      {"size", "naive gemm_nt", "packed sgemm", "speedup"});
  for (const std::int64_t s : {128LL, 256LL, 512LL}) {
    const std::int64_t m = s, n = s, k = s;
    Tensor x = Tensor::randn({m, k}), w = Tensor::randn({n, k});
    Tensor bias = Tensor::randn({n});
    Tensor y0(Shape{m, n}, DType::Float32), y1(Shape{m, n}, DType::Float32);
    std::vector<float> pb(kernels::packed_b_f32_size(k, n));
    kernels::pack_b_f32_nt(w.data<float>(), k, k, n, pb.data());
    const int trials = s >= 512 ? 5 : 9;
    const auto r = bench::time_interleaved(
        [&] {
          naive_gemm_nt(x.data<float>(), w.data<float>(), bias.data<float>(),
                        y0.data<float>(), m, k, n);
        },
        [&] {
          kernels::sgemm(m, n, k, x.data<float>(), k, pb.data(),
                         y1.data<float>(), n, bias.data<float>(), nullptr,
                         /*relu=*/false);
        },
        trials);
    SweepRow row{s, gflops(m, n, k, r.median_a), gflops(m, n, k, r.median_b),
                 r.median_a > 0 && r.median_b > 0 ? r.median_a / r.median_b
                                                  : 0.0};
    if (s == 512) {
      naive512_sec = r.median_a;
      packed512_sec = r.median_b;
    }
    sweep.push_back(row);
    bench::print_row({std::to_string(s) + "^3", bench::fmt(row.naive_gf, 2),
                      bench::fmt(row.packed_gf, 2),
                      bench::fmt(row.speedup, 2) + "x"});
  }
  const double gemm_speedup = sweep.back().speedup;
  const bool gemm_ok = gemm_speedup >= 2.5;

  // --- roofline ratio (measured / device-model estimate) at 512^3 ----------
  const double est512 = roofline_est_sec(512, 512, 512);
  const double roofline_naive = est512 > 0 ? naive512_sec / est512 : 0;
  const double roofline_packed = est512 > 0 ? packed512_sec / est512 : 0;
  const bool roofline_ok =
      roofline_packed > 0 && roofline_packed < roofline_naive;
  std::printf(
      "\nroofline ratio at 512^3 (measured/est, lower is better): "
      "naive %.2f -> packed %.2f  %s\n",
      roofline_naive, roofline_packed,
      roofline_ok ? "IMPROVED" : "NOT IMPROVED");

  // --- per-tier GFLOP/s + bit-determinism ----------------------------------
  struct TierRow {
    std::string name;
    double gf;
    bool deterministic;
  };
  std::vector<TierRow> tiers;
  bool tiers_deterministic = true;
  {
    const std::int64_t m = 256, n = 256, k = 256;
    Tensor x = Tensor::randn({m, k}), w = Tensor::randn({n, k});
    std::vector<float> pb(kernels::packed_b_f32_size(k, n));
    kernels::pack_b_f32_nt(w.data<float>(), k, k, n, pb.data());
    Tensor ya(Shape{m, n}, DType::Float32), yb(Shape{m, n}, DType::Float32);
    bench::print_header("A13: ISA tier sweep at 256^3 (forced via dispatch)",
                        {"tier", "GFLOP/s", "run-to-run"});
    for (const kernels::Isa isa :
         {kernels::Isa::Scalar, kernels::Isa::Sse2, kernels::Isa::Avx2,
          kernels::Isa::Avx512, kernels::Isa::Neon}) {
      kernels::force_isa(isa);
      // force_isa clamps to what this CPU can run; a clamped-away tier
      // would just re-measure another row.
      if (kernels::active_isa() != isa) continue;
      auto run = [&](Tensor& y) {
        kernels::sgemm(m, n, k, x.data<float>(), k, pb.data(), y.data<float>(),
                       n, nullptr, nullptr, false);
      };
      std::vector<double> samples;
      for (int i = 0; i < 7; ++i) {
        rt::Timer timer;
        run(ya);
        samples.push_back(timer.seconds());
      }
      run(ya);
      run(yb);
      const bool det = bit_equal(ya, yb);
      tiers_deterministic = tiers_deterministic && det;
      tiers.push_back({kernels::isa_name(isa),
                       gflops(m, n, k, bench::median_of(samples)), det});
      bench::print_row({kernels::isa_name(isa),
                        bench::fmt(tiers.back().gf, 2),
                        det ? "bit-stable" : "DIFFERS"});
    }
    kernels::force_isa(std::nullopt);
  }

  // --- end-to-end: traced ResNet-18 run_planned, scalar vs dispatched ------
  auto model = nn::models::resnet18(/*width=*/16, /*num_classes=*/64);
  model->train(false);
  auto rn = fx::symbolic_trace(model);
  rn->recompile();
  const Tensor img = Tensor::randn({1, 3, 32, 32});
  const std::vector<RtValue> in{RtValue(img)};
  passes::compile_planned(*rn, {img});
  rn->run_planned(in);  // warm plan + pack/panel caches
  const auto e2e = bench::time_interleaved(
      [&] {
        kernels::force_isa(kernels::Isa::Scalar);
        rn->run_planned(in);
        kernels::force_isa(std::nullopt);
      },
      [&] { rn->run_planned(in); }, 7);
  const double e2e_speedup =
      e2e.median_b > 0 ? e2e.median_a / e2e.median_b : 0.0;
  const bool e2e_ok = e2e_speedup >= 1.15;
  bench::print_header("A13: traced ResNet-18 (w=16, 32x32) run_planned (sec)",
                      {"tier", "median", "stdev", "speedup"});
  bench::print_row({"scalar (forced)", bench::fmt(e2e.median_a),
                    bench::fmt(e2e.a.stdev), "1.00"});
  bench::print_row({std::string(kernels::isa_name(best)) + " (dispatched)",
                    bench::fmt(e2e.median_b), bench::fmt(e2e.b.stdev),
                    bench::fmt(e2e_speedup, 2) + "x"});

  // --- bit-equality across engines at the pinned (dispatched) tier ---------
  bool engines_equal = true;
  {
    const Tensor ref = fx::rt_tensor(fx::Interpreter(*rn).run(in));
    auto check = [&](const char* name, const Tensor& got) {
      const bool ok = bit_equal(ref, got);
      engines_equal = engines_equal && ok;
      std::printf("  %-24s %s\n", name, ok ? "bit-equal" : "DIFFERS");
    };
    std::printf("\nbit-equality vs Interpreter (isa=%s):\n",
                kernels::isa_name(best));
    check("tape", std::get<Tensor>(rn->compiled_graph().run(in).front()));
    check("planned", std::get<Tensor>(rn->run_planned(in).front()));
    for (int threads : {1, 2}) {
      fx::ExecutorOptions eo;
      eo.num_threads = threads;
      fx::ParallelExecutor ex(*rn, eo);
      check(("parallel x" + std::to_string(threads)).c_str(),
            std::get<Tensor>(ex.run(in).front()));
    }
  }

  // --- serving engine bit-equality (batched session over an MLP) -----------
  bool serving_equal = true;
  {
    constexpr std::int64_t kFeat = 64;
    auto gm = fx::symbolic_trace(nn::models::mlp({kFeat, 64, 64, 64}));
    fx::PlanCacheOptions po;
    po.bucket_batch_dim = true;
    passes::compile_planned(*gm, {serve::request_input(0, 4, kFeat)}, po);
    serve::ServeOptions so;
    so.batching = true;
    serve::LoadOptions lo;
    lo.clients = 2;
    lo.requests_per_client = 20;
    lo.feature_dim = kFeat;
    lo.seed = 7;
    serve::InferenceSession session(gm, so);
    const serve::LoadReport rep = serve::run_closed_loop(session, lo);
    serving_equal = rep.failed == 0;
    for (const serve::LoadOutcome& o : rep.outcomes) {
      if (!o.response.ok) continue;
      const Tensor r = fx::rt_tensor(fx::Interpreter(*gm).run(o.input));
      serving_equal = serving_equal && bit_equal(r, o.response.output);
    }
    std::printf("  %-24s %s\n", "serving (batched)",
                serving_equal ? "bit-equal" : "DIFFERS");
  }

  const bool pass = gemm_ok && roofline_ok && e2e_ok && tiers_deterministic &&
                    engines_equal && serving_equal;
  std::printf(
      "\nacceptance (>=2.5x GEMM @512^3 [got %.2fx], roofline improved, "
      ">=1.15x e2e [got %.2fx], tiers bit-stable, engines bit-equal) : %s\n",
      gemm_speedup, e2e_speedup, pass ? "HOLDS" : "VIOLATED");

  {
    std::ofstream f("BENCH_kernels.json");
    f << "{\n"
      << "  \"isa\": \"" << kernels::isa_name(best) << "\",\n"
      << "  \"int8_vnni\": "
      << (kernels::detected_int8_vnni() ? "true" : "false") << ",\n"
      << "  \"gemm_sweep\": [";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      f << (i ? "," : "") << "\n    {\"size\": " << sweep[i].size
        << ", \"naive_gflops\": " << bench::fmt(sweep[i].naive_gf, 2)
        << ", \"packed_gflops\": " << bench::fmt(sweep[i].packed_gf, 2)
        << ", \"speedup\": " << bench::fmt(sweep[i].speedup, 2) << "}";
    }
    f << "\n  ],\n"
      << "  \"tiers\": [";
    for (std::size_t i = 0; i < tiers.size(); ++i) {
      f << (i ? "," : "") << "\n    {\"tier\": \"" << tiers[i].name
        << "\", \"gflops\": " << bench::fmt(tiers[i].gf, 2)
        << ", \"deterministic\": " << (tiers[i].deterministic ? "true" : "false")
        << "}";
    }
    f << "\n  ],\n"
      << "  \"roofline_ratio_naive\": " << bench::fmt(roofline_naive, 3)
      << ",\n"
      << "  \"roofline_ratio_packed\": " << bench::fmt(roofline_packed, 3)
      << ",\n"
      << "  \"resnet18_scalar_sec\": " << bench::fmt(e2e.median_a, 6) << ",\n"
      << "  \"resnet18_best_sec\": " << bench::fmt(e2e.median_b, 6) << ",\n"
      << "  \"resnet18_speedup\": " << bench::fmt(e2e_speedup, 3) << ",\n"
      << "  \"gemm_speedup_512\": " << bench::fmt(gemm_speedup, 3) << ",\n"
      << "  \"tiers_deterministic\": "
      << (tiers_deterministic ? "true" : "false") << ",\n"
      << "  \"engines_bit_equal\": " << (engines_equal ? "true" : "false")
      << ",\n"
      << "  \"serving_bit_equal\": " << (serving_equal ? "true" : "false")
      << "\n}\n";
  }
  std::printf("wrote BENCH_kernels.json\n");
  return pass ? 0 : 1;
}
