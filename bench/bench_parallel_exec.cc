// A5 — inter-op parallel executor vs the serial tape (Section 6.2.3's
// "overlap independent work" production pattern, measured): a wide synthetic
// DAG (B independent matmul/relu chains joined by an add tree) and a traced
// ResNet-18. On a multi-core machine the wide DAG should approach B-way
// overlap (>= 1.5x at 4 threads); on a 1-core container (this reproduction's
// default, see EXPERIMENTS.md) the claim reduces to "the dependency-counted
// schedule preserves results at small scheduling cost" — the JSON records
// hardware_concurrency so readers can tell which regime produced the
// numbers.
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench/bench_common.h"
#include "core/parallel_executor.h"
#include "core/tracer.h"
#include "nn/models/resnet.h"
#include "runtime/thread_pool.h"

using namespace fxcpp;
using fx::Argument;
using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::RtValue;

namespace {

// B independent chains of D matmul+relu steps off one placeholder, folded
// with an add tree — the widest DAG shape the fx IR produces in practice
// (ResNet branches, ensemble heads, split submodules).
std::shared_ptr<GraphModule> wide_dag(int branches, int depth) {
  auto g = std::make_unique<Graph>();
  Node* x = g->placeholder("x");
  std::vector<Node*> heads;
  for (int b = 0; b < branches; ++b) {
    Node* h = x;
    for (int d = 0; d < depth; ++d) {
      h = g->call_function("matmul", {h, x});
      h = g->call_function("relu", {h});
    }
    heads.push_back(h);
  }
  Node* acc = heads[0];
  for (std::size_t i = 1; i < heads.size(); ++i) {
    acc = g->call_function("add", {acc, heads[i]});
  }
  g->output(acc);
  auto gm = std::make_shared<GraphModule>(nullptr, std::move(g), "WideDAG");
  gm->recompile();
  return gm;
}

struct Row {
  std::string workload;
  int threads;
  double serial_mean, parallel_mean, speedup;
  int max_concurrency;
};

}  // namespace

int main() {
  rt::set_num_threads(1);  // keep kernels serial; the executor supplies overlap
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<Row> rows;

  // --- wide synthetic DAG --------------------------------------------------
  auto gm = wide_dag(/*branches=*/8, /*depth=*/4);
  const Tensor x = Tensor::randn({96, 96});
  const std::vector<RtValue> in{RtValue(x)};

  bench::print_header("A5: wide DAG (8x4 matmul/relu branches), serial tape "
                      "vs ParallelExecutor (sec)",
                      {"executor", "median", "stdev", "speedup", "max conc"});
  const auto t_serial = bench::time_trials(
      [&] { gm->compiled_graph().run(in); }, 9);
  double serial_med = t_serial.mean;
  bench::print_row({"serial tape", bench::fmt(t_serial.mean),
                    bench::fmt(t_serial.stdev), "1.00", "1"});

  for (int threads : {2, 4}) {
    fx::ParallelExecutor ex(*gm, fx::ExecutorOptions{threads, true});
    const auto t_par = bench::time_trials([&] { ex.run(in); }, 9);
    ex.run(in);  // one stats-observed run
    rows.push_back({"wide_dag", threads, serial_med, t_par.mean,
                    serial_med / t_par.mean, ex.stats().max_concurrency});
    bench::print_row({"parallel x" + std::to_string(threads),
                      bench::fmt(t_par.mean), bench::fmt(t_par.stdev),
                      bench::fmt(serial_med / t_par.mean, 2),
                      std::to_string(ex.stats().max_concurrency)});
  }

  // --- traced ResNet-18 ----------------------------------------------------
  auto model = nn::models::resnet18(/*width=*/16, /*num_classes=*/64);
  model->train(false);
  auto rn = fx::symbolic_trace(model);
  rn->recompile();
  const Tensor img = Tensor::randn({1, 3, 32, 32});
  const std::vector<RtValue> rin{RtValue(img)};

  bench::print_header("A5: traced ResNet-18 (w=16, 32x32), serial tape vs "
                      "ParallelExecutor (sec)",
                      {"executor", "median", "stdev", "speedup", "max conc"});
  const auto r_serial =
      bench::time_trials([&] { rn->compiled_graph().run(rin); }, 7);
  bench::print_row({"serial tape", bench::fmt(r_serial.mean),
                    bench::fmt(r_serial.stdev), "1.00", "1"});
  for (int threads : {2, 4}) {
    fx::ParallelExecutor ex(*rn, fx::ExecutorOptions{threads, true});
    const auto t_par = bench::time_trials([&] { ex.run(rin); }, 7);
    ex.run(rin);
    rows.push_back({"resnet18", threads, r_serial.mean, t_par.mean,
                    r_serial.mean / t_par.mean, ex.stats().max_concurrency});
    bench::print_row({"parallel x" + std::to_string(threads),
                      bench::fmt(t_par.mean), bench::fmt(t_par.stdev),
                      bench::fmt(r_serial.mean / t_par.mean, 2),
                      std::to_string(ex.stats().max_concurrency)});
  }

  // --- correctness + JSON --------------------------------------------------
  fx::ParallelExecutor check(*gm, fx::ExecutorOptions{4, false});
  const Tensor serial_out =
      std::get<Tensor>(gm->compiled_graph().run(in).front());
  const Tensor par_out = std::get<Tensor>(check.run(in).front());
  const bool ok = allclose(serial_out, par_out, 0.0, 0.0);
  std::printf("\nparallel == serial results : %s\n", ok ? "HOLDS" : "VIOLATED");

  {
    std::ofstream f("BENCH_parallel_exec.json");
    f << "{\n  \"hardware_concurrency\": " << hw
      << ",\n  \"intra_op_threads\": 1,\n  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      f << (i ? "," : "") << "\n    {\"workload\": \"" << r.workload
        << "\", \"threads\": " << r.threads
        << ", \"serial_mean_s\": " << r.serial_mean
        << ", \"parallel_mean_s\": " << r.parallel_mean
        << ", \"speedup\": " << r.speedup
        << ", \"max_concurrency\": " << r.max_concurrency << "}";
    }
    f << "\n  ],\n  \"bit_equal\": " << (ok ? "true" : "false") << "\n}\n";
  }
  std::printf("wrote BENCH_parallel_exec.json\n");
  return ok ? 0 : 1;
}
