// E2 — Figure 6 / Appendix B: DeepRecommender inference runtime, fp32 vs
// fx-graph-mode int8 quantization, across batch sizes.
//
// Paper (Xeon Gold 6138 + FBGEMM): speedups 3.5x / 3.1x / 1.55x / 1.25x /
// 1.10x at batch 1 / 16 / 64 / 128 / 256 — large wins at small batch
// (weight-bandwidth-bound) shrinking as batch grows (compute-bound). The
// reproduced claim is that shape; this container's CPU sets the absolute
// numbers. Model dims are scaled (DESIGN.md) to fit a 1-core machine.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/tracer.h"
#include "nn/models/deep_recommender.h"
#include "quant/quantize.h"

using namespace fxcpp;

int main() {
  nn::models::DeepRecommenderConfig cfg;
  cfg.item_dim = 2048;
  cfg.hidden = {512, 512, 1024};
  auto model = nn::models::deep_recommender(cfg);

  // fp32 baseline: the traced GraphModule (same execution machinery).
  auto fp32 = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));

  // PTQ: prepare -> calibrate -> convert (Section 6.2.1's three phases).
  std::vector<Tensor> calibration;
  for (int i = 0; i < 4; ++i) calibration.push_back(Tensor::rand({8, cfg.item_dim}));
  auto int8 = quant::quantize_model(model, calibration);

  bench::print_header(
      "E2: DeepRecommender runtime (sec), fp32 vs int8 (paper Appendix B)",
      {"batch", "fp32 mean", "fp32 stdev", "int8 mean", "int8 stdev",
       "speedup", "paper speedup"});

  const double paper_speedup[] = {3.5, 3.1, 1.55, 1.25, 1.10};
  const std::int64_t batches[] = {1, 16, 64, 128, 256};
  bool shape_holds = true;
  double prev_speedup = 1e9;
  for (int bi = 0; bi < 5; ++bi) {
    const std::int64_t b = batches[bi];
    Tensor x = Tensor::rand({b, cfg.item_dim});
    const int trials = b <= 16 ? 10 : 5;
    const auto t_fp = bench::time_trials([&] { fp32->run(x); }, trials);
    const auto t_q = bench::time_trials([&] { int8->run(x); }, trials);
    const double speedup = t_fp.mean / t_q.mean;
    bench::print_row({std::to_string(b), bench::fmt(t_fp.mean),
                      bench::fmt(t_fp.stdev), bench::fmt(t_q.mean),
                      bench::fmt(t_q.stdev), bench::fmt(speedup, 2),
                      bench::fmt(paper_speedup[bi], 2)});
    if (speedup < 1.0) shape_holds = false;  // quantized must win everywhere
    // Gap should (weakly) narrow as batch grows; allow noise via margin.
    if (speedup > prev_speedup * 1.35) shape_holds = false;
    prev_speedup = speedup;
  }
  std::printf(
      "\nshape check: int8 faster at every batch, advantage shrinking with "
      "batch size : %s\n",
      shape_holds ? "HOLDS" : "VIOLATED");
  return 0;
}
