// A2 — ablation: cost of capture and the transform library on a real
// topology (ResNet-50). Supports the paper's "high developer productivity"
// claim quantitatively: whole-model capture and each pass run in
// milliseconds, so the interactive workflow the paper describes is cheap.
#include <benchmark/benchmark.h>

#include "core/tracer.h"
#include "jit/script.h"
#include "jit/trace.h"
#include "nn/models/resnet.h"
#include "passes/cleanup.h"
#include "passes/flops.h"
#include "passes/fuse_conv_bn.h"
#include "passes/shape_prop.h"

using namespace fxcpp;

namespace {

void BM_SymbolicTraceResNet50(benchmark::State& state) {
  auto model = nn::models::resnet50(8, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx::symbolic_trace(model));
  }
}
BENCHMARK(BM_SymbolicTraceResNet50);

void BM_ShapePropResNet50(benchmark::State& state) {
  auto gm = fx::symbolic_trace(nn::models::resnet50(8, 10));
  Tensor x = Tensor::randn({1, 3, 32, 32});
  for (auto _ : state) {
    passes::shape_prop(*gm, {x});
  }
}
BENCHMARK(BM_ShapePropResNet50);

void BM_FlopsEstimate(benchmark::State& state) {
  auto gm = fx::symbolic_trace(nn::models::resnet50(8, 10));
  passes::shape_prop(*gm, {Tensor::randn({1, 3, 32, 32})});
  for (auto _ : state) {
    benchmark::DoNotOptimize(passes::estimate_cost(*gm));
  }
}
BENCHMARK(BM_FlopsEstimate);

void BM_FuseConvBn(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto gm = fx::symbolic_trace(nn::models::resnet50(8, 10));
    state.ResumeTiming();
    benchmark::DoNotOptimize(passes::fuse_conv_bn(*gm));
  }
}
BENCHMARK(BM_FuseConvBn);

void BM_DceCse(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto gm = fx::symbolic_trace(nn::models::resnet50(8, 10));
    state.ResumeTiming();
    passes::dead_code_elimination(*gm);
    benchmark::DoNotOptimize(passes::common_subexpression_elimination(*gm));
  }
}
BENCHMARK(BM_DceCse);

void BM_JitScriptEmission(benchmark::State& state) {
  auto model = nn::models::resnet50(8, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jit::script(*model));
  }
}
BENCHMARK(BM_JitScriptEmission);

void BM_JitTraceExpansion(benchmark::State& state) {
  auto gm = fx::symbolic_trace(nn::models::resnet50(8, 10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(jit::trace(*gm));
  }
}
BENCHMARK(BM_JitTraceExpansion);

}  // namespace

BENCHMARK_MAIN();
