// A8 — static memory planning + packed-kernel caching (perf_opt PR): per-
// iteration allocator traffic of a traced ResNet-18 under the unplanned
// serial tape vs compile_planned() execution (serial and parallel x1/x2/x8),
// plus arena high-water, planner hint-service counters, steady-state
// speedup, and bit-equality across every engine. The acceptance gate — at
// least 30% fewer per-iteration heap bytes, bit-identical outputs — is
// enforced by the exit code so CI fails loudly when the planner regresses.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/parallel_executor.h"
#include "core/tracer.h"
#include "nn/models/resnet.h"
#include "passes/memory_planner.h"
#include "runtime/thread_pool.h"
#include "tensor/pack_cache.h"

using namespace fxcpp;
using fx::GraphModule;
using fx::RtValue;

namespace {

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  const Tensor ac = a.contiguous(), bc = b.contiguous();
  return std::memcmp(ac.data<float>(), bc.data<float>(),
                     static_cast<std::size_t>(ac.numel()) * sizeof(float)) == 0;
}

struct Traffic {
  std::int64_t bytes = 0, count = 0;
};

// Allocator traffic of one invocation of `fn`, from the process-wide
// counters the profiler also reads.
Traffic traffic_of(const std::function<void()>& fn) {
  const std::int64_t b0 = Storage::total_allocated_bytes();
  const std::int64_t c0 = Storage::allocation_count();
  fn();
  return Traffic{Storage::total_allocated_bytes() - b0,
                 Storage::allocation_count() - c0};
}

}  // namespace

int main() {
  rt::set_num_threads(1);  // measure the planner, not intra-op overlap

  auto model = nn::models::resnet18(/*width=*/16, /*num_classes=*/64);
  model->train(false);
  auto rn = fx::symbolic_trace(model);
  rn->recompile();
  const Tensor img = Tensor::randn({1, 3, 32, 32});
  const std::vector<RtValue> in{RtValue(img)};

  // Steady state first: warm the pack cache (GEMM weight packs, im2col
  // workspace) so both sides measure run-to-run traffic, not first-touch.
  const Tensor ref = std::get<Tensor>(rn->compiled_graph().run(in).front());
  const Traffic unplanned =
      traffic_of([&] { rn->compiled_graph().run(in); });

  const fx::TapePlan& plan = passes::compile_planned(*rn, {img});
  rn->run_planned(in);  // adopt-path warmup
  const std::int64_t served0 = Storage::planner_served_count();
  const Traffic planned = traffic_of([&] { rn->run_planned(in); });
  const std::int64_t served_per_run = Storage::planner_served_count() - served0;

  const double reduction =
      unplanned.bytes == 0
          ? 0.0
          : 1.0 - static_cast<double>(planned.bytes) /
                      static_cast<double>(unplanned.bytes);

  bench::print_header(
      "A8: traced ResNet-18 (w=16, 32x32), per-iteration allocator traffic",
      {"engine", "bytes/run", "allocs/run", "reduction"});
  bench::print_row({"tape (unplanned)", std::to_string(unplanned.bytes),
                    std::to_string(unplanned.count), "--"});
  bench::print_row({"tape (planned)", std::to_string(planned.bytes),
                    std::to_string(planned.count),
                    bench::fmt(100.0 * reduction, 1) + "%"});

  std::printf(
      "\nplan: %d/%zu instructions planned (%d in-place), arena %lld KiB, "
      "%lld KiB/run absorbed (%.0f%% of fresh outputs), %lld hint adoptions"
      "/run\n",
      plan.planned_count, plan.intervals.size(), plan.aliased_count,
      static_cast<long long>(plan.arena_bytes / 1024),
      static_cast<long long>(plan.planned_bytes / 1024),
      100.0 * plan.planned_fraction(), static_cast<long long>(served_per_run));

  // --- steady-state speedup (interleaved; median) --------------------------
  const auto wall = bench::time_interleaved(
      [&] { rn->compiled_graph().run(in); }, [&] { rn->run_planned(in); }, 9);
  const double speedup = wall.median_b > 0 ? wall.median_a / wall.median_b : 0;
  bench::print_header("A8: steady-state wall clock (sec)",
                      {"engine", "median", "stdev", "speedup"});
  bench::print_row({"tape (unplanned)", bench::fmt(wall.median_a),
                    bench::fmt(wall.a.stdev), "1.00"});
  bench::print_row({"tape (planned)", bench::fmt(wall.median_b),
                    bench::fmt(wall.b.stdev), bench::fmt(speedup, 2)});

  // --- bit-equality across engines and thread counts -----------------------
  bool equal = true;
  auto check = [&](const char* name, const Tensor& got) {
    const bool ok = bit_equal(ref, got);
    equal = equal && ok;
    std::printf("  %-28s %s\n", name, ok ? "bit-equal" : "DIFFERS");
  };
  std::printf("\nbit-equality vs unplanned tape:\n");
  check("tape (planned)", std::get<Tensor>(rn->run_planned(in).front()));
  for (int threads : {1, 2, 8}) {
    fx::ExecutorOptions eo;
    eo.num_threads = threads;
    eo.use_plan = true;
    fx::ParallelExecutor ex(*rn, eo);
    ex.run(in);  // reuse the arena once before the checked run
    const std::string name =
        "parallel x" + std::to_string(threads) + " (planned)";
    check(name.c_str(), std::get<Tensor>(ex.run(in).front()));
  }

  const bool pass = reduction >= 0.30 && equal;
  std::printf("\nacceptance (>=30%% traffic reduction, bit-equal) : %s\n",
              pass ? "HOLDS" : "VIOLATED");

  {
    std::ofstream f("BENCH_memory_plan.json");
    f << "{\n"
      << "  \"workload\": \"resnet18_w16_32x32\",\n"
      << "  \"instrs\": " << plan.intervals.size() << ",\n"
      << "  \"planned_count\": " << plan.planned_count << ",\n"
      << "  \"aliased_count\": " << plan.aliased_count << ",\n"
      << "  \"arena_bytes\": " << plan.arena_bytes << ",\n"
      << "  \"planned_bytes_per_run\": " << plan.planned_bytes << ",\n"
      << "  \"unplanned_tape\": {\"bytes\": " << unplanned.bytes
      << ", \"allocs\": " << unplanned.count << "},\n"
      << "  \"planned_tape\": {\"bytes\": " << planned.bytes
      << ", \"allocs\": " << planned.count << "},\n"
      << "  \"traffic_reduction\": " << bench::fmt(reduction, 4) << ",\n"
      << "  \"hint_adoptions_per_run\": " << served_per_run << ",\n"
      << "  \"median_unplanned_sec\": " << bench::fmt(wall.median_a, 6)
      << ",\n"
      << "  \"median_planned_sec\": " << bench::fmt(wall.median_b, 6) << ",\n"
      << "  \"speedup\": " << bench::fmt(speedup, 3) << ",\n"
      << "  \"pack_cache\": {\"hits\": " << PackCache::local().stats().hits
      << ", \"misses\": " << PackCache::local().stats().misses << "},\n"
      << "  \"bit_equal\": " << (equal ? "true" : "false") << "\n"
      << "}\n";
  }
  std::printf("wrote BENCH_memory_plan.json\n");
  return pass ? 0 : 1;
}
