// E1 — Figure 5 / Section 6.1: IR complexity of the same ResNet-50 topology
// under the three front-ends.
//
// Paper numbers (torchvision ResNet50): torch.fx 445 ops, jit.trace 860,
// jit.script 2614. The claim reproduced here is the *ordering and rough
// ratios*: fx is the smallest (immediate args, no constant/list/getattr
// nodes), trace ~2x fx (constants, lists, attribute chains materialized),
// script several times trace (control flow, assertions, padding-mode and
// training branches).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/graph_module.h"
#include "core/tracer.h"
#include "jit/script.h"
#include "jit/trace.h"
#include "nn/models/resnet.h"

using namespace fxcpp;

namespace {

void print_excerpt(const std::string& text, int lines) {
  std::size_t pos = 0;
  for (int i = 0; i < lines && pos != std::string::npos; ++i) {
    const std::size_t next = text.find('\n', pos);
    std::printf("  %s\n", text.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  std::printf("  ...\n");
}

}  // namespace

int main() {
  auto model = nn::models::resnet50(/*width=*/8, /*classes=*/1000);
  auto gm = fx::symbolic_trace(model);

  const int fx_ops = static_cast<int>(gm->graph().size());
  auto traced = jit::trace(*gm);
  auto scripted = jit::script(*model);
  const int trace_ops = traced->count_ops();
  const int script_ops = scripted->count_ops();

  std::printf("Figure 5a excerpt (TorchScript-style IR, script front-end):\n");
  print_excerpt(scripted->to_string(), 14);
  std::printf("\nFigure 5b excerpt (torch.fx IR):\n");
  print_excerpt(gm->graph().to_string(), 8);
  std::printf("\nGenerated code excerpt (GraphModule.code):\n");
  print_excerpt(gm->code(), 6);

  bench::print_header(
      "E1: ResNet-50 IR op counts (paper: fx 445 / trace 860 / script 2614)",
      {"front-end", "ops", "ratio vs fx", "paper ops", "paper ratio"});
  bench::print_row({"torch.fx", std::to_string(fx_ops), "1.00", "445", "1.00"});
  bench::print_row({"jit.trace", std::to_string(trace_ops),
                    bench::fmt(double(trace_ops) / fx_ops, 2), "860",
                    bench::fmt(860.0 / 445.0, 2)});
  bench::print_row({"jit.script", std::to_string(script_ops),
                    bench::fmt(double(script_ops) / fx_ops, 2), "2614",
                    bench::fmt(2614.0 / 445.0, 2)});

  bench::print_header("E1 detail: node-category counts",
                      {"category", "jit.trace", "jit.script"});
  for (const char* kind :
       {"prim::Constant", "prim::ListConstruct", "prim::GetAttr", "prim::If",
        "aten::conv2d", "aten::batch_norm", "aten::relu"}) {
    bench::print_row({kind, std::to_string(traced->count_kind(kind)),
                      std::to_string(scripted->count_kind(kind))});
  }
  const bool ordering_holds = fx_ops < trace_ops && trace_ops < script_ops;
  std::printf("\nshape check: fx < trace < script : %s\n",
              ordering_holds ? "HOLDS" : "VIOLATED");
  return ordering_holds ? 0 : 1;
}
