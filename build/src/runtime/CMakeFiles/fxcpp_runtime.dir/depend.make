# Empty dependencies file for fxcpp_runtime.
# This may be replaced when dependencies are built.
