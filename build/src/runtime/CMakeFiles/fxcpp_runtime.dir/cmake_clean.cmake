file(REMOVE_RECURSE
  "CMakeFiles/fxcpp_runtime.dir/rng.cc.o"
  "CMakeFiles/fxcpp_runtime.dir/rng.cc.o.d"
  "CMakeFiles/fxcpp_runtime.dir/thread_pool.cc.o"
  "CMakeFiles/fxcpp_runtime.dir/thread_pool.cc.o.d"
  "libfxcpp_runtime.a"
  "libfxcpp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxcpp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
