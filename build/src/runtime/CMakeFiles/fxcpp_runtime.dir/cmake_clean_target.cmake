file(REMOVE_RECURSE
  "libfxcpp_runtime.a"
)
