file(REMOVE_RECURSE
  "libfxcpp_quant.a"
)
