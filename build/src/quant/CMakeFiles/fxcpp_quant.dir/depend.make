# Empty dependencies file for fxcpp_quant.
# This may be replaced when dependencies are built.
