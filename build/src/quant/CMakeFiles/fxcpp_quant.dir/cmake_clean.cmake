file(REMOVE_RECURSE
  "CMakeFiles/fxcpp_quant.dir/modules.cc.o"
  "CMakeFiles/fxcpp_quant.dir/modules.cc.o.d"
  "CMakeFiles/fxcpp_quant.dir/observer.cc.o"
  "CMakeFiles/fxcpp_quant.dir/observer.cc.o.d"
  "CMakeFiles/fxcpp_quant.dir/quantize.cc.o"
  "CMakeFiles/fxcpp_quant.dir/quantize.cc.o.d"
  "libfxcpp_quant.a"
  "libfxcpp_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxcpp_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
