# Empty dependencies file for fxcpp_tensor.
# This may be replaced when dependencies are built.
