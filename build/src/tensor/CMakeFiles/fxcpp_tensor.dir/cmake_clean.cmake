file(REMOVE_RECURSE
  "CMakeFiles/fxcpp_tensor.dir/ops_conv.cc.o"
  "CMakeFiles/fxcpp_tensor.dir/ops_conv.cc.o.d"
  "CMakeFiles/fxcpp_tensor.dir/ops_elementwise.cc.o"
  "CMakeFiles/fxcpp_tensor.dir/ops_elementwise.cc.o.d"
  "CMakeFiles/fxcpp_tensor.dir/ops_linear.cc.o"
  "CMakeFiles/fxcpp_tensor.dir/ops_linear.cc.o.d"
  "CMakeFiles/fxcpp_tensor.dir/ops_norm_reduce.cc.o"
  "CMakeFiles/fxcpp_tensor.dir/ops_norm_reduce.cc.o.d"
  "CMakeFiles/fxcpp_tensor.dir/quantized.cc.o"
  "CMakeFiles/fxcpp_tensor.dir/quantized.cc.o.d"
  "CMakeFiles/fxcpp_tensor.dir/tensor.cc.o"
  "CMakeFiles/fxcpp_tensor.dir/tensor.cc.o.d"
  "libfxcpp_tensor.a"
  "libfxcpp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxcpp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
