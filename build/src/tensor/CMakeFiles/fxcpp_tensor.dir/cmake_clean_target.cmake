file(REMOVE_RECURSE
  "libfxcpp_tensor.a"
)
