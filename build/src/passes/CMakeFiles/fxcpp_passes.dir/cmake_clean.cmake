file(REMOVE_RECURSE
  "CMakeFiles/fxcpp_passes.dir/autodiff.cc.o"
  "CMakeFiles/fxcpp_passes.dir/autodiff.cc.o.d"
  "CMakeFiles/fxcpp_passes.dir/cleanup.cc.o"
  "CMakeFiles/fxcpp_passes.dir/cleanup.cc.o.d"
  "CMakeFiles/fxcpp_passes.dir/cleanup_extra.cc.o"
  "CMakeFiles/fxcpp_passes.dir/cleanup_extra.cc.o.d"
  "CMakeFiles/fxcpp_passes.dir/decompose.cc.o"
  "CMakeFiles/fxcpp_passes.dir/decompose.cc.o.d"
  "CMakeFiles/fxcpp_passes.dir/flops.cc.o"
  "CMakeFiles/fxcpp_passes.dir/flops.cc.o.d"
  "CMakeFiles/fxcpp_passes.dir/fuse_conv_bn.cc.o"
  "CMakeFiles/fxcpp_passes.dir/fuse_conv_bn.cc.o.d"
  "CMakeFiles/fxcpp_passes.dir/graph_drawer.cc.o"
  "CMakeFiles/fxcpp_passes.dir/graph_drawer.cc.o.d"
  "CMakeFiles/fxcpp_passes.dir/scheduler.cc.o"
  "CMakeFiles/fxcpp_passes.dir/scheduler.cc.o.d"
  "CMakeFiles/fxcpp_passes.dir/shape_prop.cc.o"
  "CMakeFiles/fxcpp_passes.dir/shape_prop.cc.o.d"
  "CMakeFiles/fxcpp_passes.dir/symbolic_shapes.cc.o"
  "CMakeFiles/fxcpp_passes.dir/symbolic_shapes.cc.o.d"
  "CMakeFiles/fxcpp_passes.dir/type_check.cc.o"
  "CMakeFiles/fxcpp_passes.dir/type_check.cc.o.d"
  "libfxcpp_passes.a"
  "libfxcpp_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxcpp_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
