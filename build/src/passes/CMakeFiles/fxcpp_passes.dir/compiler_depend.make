# Empty compiler generated dependencies file for fxcpp_passes.
# This may be replaced when dependencies are built.
