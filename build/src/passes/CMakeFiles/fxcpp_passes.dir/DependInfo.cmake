
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/autodiff.cc" "src/passes/CMakeFiles/fxcpp_passes.dir/autodiff.cc.o" "gcc" "src/passes/CMakeFiles/fxcpp_passes.dir/autodiff.cc.o.d"
  "/root/repo/src/passes/cleanup.cc" "src/passes/CMakeFiles/fxcpp_passes.dir/cleanup.cc.o" "gcc" "src/passes/CMakeFiles/fxcpp_passes.dir/cleanup.cc.o.d"
  "/root/repo/src/passes/cleanup_extra.cc" "src/passes/CMakeFiles/fxcpp_passes.dir/cleanup_extra.cc.o" "gcc" "src/passes/CMakeFiles/fxcpp_passes.dir/cleanup_extra.cc.o.d"
  "/root/repo/src/passes/decompose.cc" "src/passes/CMakeFiles/fxcpp_passes.dir/decompose.cc.o" "gcc" "src/passes/CMakeFiles/fxcpp_passes.dir/decompose.cc.o.d"
  "/root/repo/src/passes/flops.cc" "src/passes/CMakeFiles/fxcpp_passes.dir/flops.cc.o" "gcc" "src/passes/CMakeFiles/fxcpp_passes.dir/flops.cc.o.d"
  "/root/repo/src/passes/fuse_conv_bn.cc" "src/passes/CMakeFiles/fxcpp_passes.dir/fuse_conv_bn.cc.o" "gcc" "src/passes/CMakeFiles/fxcpp_passes.dir/fuse_conv_bn.cc.o.d"
  "/root/repo/src/passes/graph_drawer.cc" "src/passes/CMakeFiles/fxcpp_passes.dir/graph_drawer.cc.o" "gcc" "src/passes/CMakeFiles/fxcpp_passes.dir/graph_drawer.cc.o.d"
  "/root/repo/src/passes/scheduler.cc" "src/passes/CMakeFiles/fxcpp_passes.dir/scheduler.cc.o" "gcc" "src/passes/CMakeFiles/fxcpp_passes.dir/scheduler.cc.o.d"
  "/root/repo/src/passes/shape_prop.cc" "src/passes/CMakeFiles/fxcpp_passes.dir/shape_prop.cc.o" "gcc" "src/passes/CMakeFiles/fxcpp_passes.dir/shape_prop.cc.o.d"
  "/root/repo/src/passes/symbolic_shapes.cc" "src/passes/CMakeFiles/fxcpp_passes.dir/symbolic_shapes.cc.o" "gcc" "src/passes/CMakeFiles/fxcpp_passes.dir/symbolic_shapes.cc.o.d"
  "/root/repo/src/passes/type_check.cc" "src/passes/CMakeFiles/fxcpp_passes.dir/type_check.cc.o" "gcc" "src/passes/CMakeFiles/fxcpp_passes.dir/type_check.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fxcpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fxcpp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fxcpp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fxcpp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
