file(REMOVE_RECURSE
  "libfxcpp_passes.a"
)
