file(REMOVE_RECURSE
  "libfxcpp_trt.a"
)
