file(REMOVE_RECURSE
  "CMakeFiles/fxcpp_trt.dir/engine.cc.o"
  "CMakeFiles/fxcpp_trt.dir/engine.cc.o.d"
  "CMakeFiles/fxcpp_trt.dir/lower.cc.o"
  "CMakeFiles/fxcpp_trt.dir/lower.cc.o.d"
  "libfxcpp_trt.a"
  "libfxcpp_trt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxcpp_trt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
