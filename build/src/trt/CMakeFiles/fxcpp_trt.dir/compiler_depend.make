# Empty compiler generated dependencies file for fxcpp_trt.
# This may be replaced when dependencies are built.
