
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codegen.cc" "src/core/CMakeFiles/fxcpp_core.dir/codegen.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/codegen.cc.o.d"
  "/root/repo/src/core/custom_op.cc" "src/core/CMakeFiles/fxcpp_core.dir/custom_op.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/custom_op.cc.o.d"
  "/root/repo/src/core/functional.cc" "src/core/CMakeFiles/fxcpp_core.dir/functional.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/functional.cc.o.d"
  "/root/repo/src/core/graph_io.cc" "src/core/CMakeFiles/fxcpp_core.dir/graph_io.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/graph_io.cc.o.d"
  "/root/repo/src/core/graph_module.cc" "src/core/CMakeFiles/fxcpp_core.dir/graph_module.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/graph_module.cc.o.d"
  "/root/repo/src/core/interpreter.cc" "src/core/CMakeFiles/fxcpp_core.dir/interpreter.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/interpreter.cc.o.d"
  "/root/repo/src/core/ir.cc" "src/core/CMakeFiles/fxcpp_core.dir/ir.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/ir.cc.o.d"
  "/root/repo/src/core/module.cc" "src/core/CMakeFiles/fxcpp_core.dir/module.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/module.cc.o.d"
  "/root/repo/src/core/op_registry.cc" "src/core/CMakeFiles/fxcpp_core.dir/op_registry.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/op_registry.cc.o.d"
  "/root/repo/src/core/split.cc" "src/core/CMakeFiles/fxcpp_core.dir/split.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/split.cc.o.d"
  "/root/repo/src/core/subgraph_rewriter.cc" "src/core/CMakeFiles/fxcpp_core.dir/subgraph_rewriter.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/subgraph_rewriter.cc.o.d"
  "/root/repo/src/core/tracer.cc" "src/core/CMakeFiles/fxcpp_core.dir/tracer.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/tracer.cc.o.d"
  "/root/repo/src/core/transformer.cc" "src/core/CMakeFiles/fxcpp_core.dir/transformer.cc.o" "gcc" "src/core/CMakeFiles/fxcpp_core.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fxcpp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fxcpp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
