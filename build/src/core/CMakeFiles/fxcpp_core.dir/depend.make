# Empty dependencies file for fxcpp_core.
# This may be replaced when dependencies are built.
