file(REMOVE_RECURSE
  "libfxcpp_core.a"
)
