file(REMOVE_RECURSE
  "CMakeFiles/fxcpp_core.dir/codegen.cc.o"
  "CMakeFiles/fxcpp_core.dir/codegen.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/custom_op.cc.o"
  "CMakeFiles/fxcpp_core.dir/custom_op.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/functional.cc.o"
  "CMakeFiles/fxcpp_core.dir/functional.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/graph_io.cc.o"
  "CMakeFiles/fxcpp_core.dir/graph_io.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/graph_module.cc.o"
  "CMakeFiles/fxcpp_core.dir/graph_module.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/interpreter.cc.o"
  "CMakeFiles/fxcpp_core.dir/interpreter.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/ir.cc.o"
  "CMakeFiles/fxcpp_core.dir/ir.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/module.cc.o"
  "CMakeFiles/fxcpp_core.dir/module.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/op_registry.cc.o"
  "CMakeFiles/fxcpp_core.dir/op_registry.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/split.cc.o"
  "CMakeFiles/fxcpp_core.dir/split.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/subgraph_rewriter.cc.o"
  "CMakeFiles/fxcpp_core.dir/subgraph_rewriter.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/tracer.cc.o"
  "CMakeFiles/fxcpp_core.dir/tracer.cc.o.d"
  "CMakeFiles/fxcpp_core.dir/transformer.cc.o"
  "CMakeFiles/fxcpp_core.dir/transformer.cc.o.d"
  "libfxcpp_core.a"
  "libfxcpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxcpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
