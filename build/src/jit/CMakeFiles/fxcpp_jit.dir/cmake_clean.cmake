file(REMOVE_RECURSE
  "CMakeFiles/fxcpp_jit.dir/ir.cc.o"
  "CMakeFiles/fxcpp_jit.dir/ir.cc.o.d"
  "CMakeFiles/fxcpp_jit.dir/script.cc.o"
  "CMakeFiles/fxcpp_jit.dir/script.cc.o.d"
  "CMakeFiles/fxcpp_jit.dir/trace.cc.o"
  "CMakeFiles/fxcpp_jit.dir/trace.cc.o.d"
  "libfxcpp_jit.a"
  "libfxcpp_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxcpp_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
