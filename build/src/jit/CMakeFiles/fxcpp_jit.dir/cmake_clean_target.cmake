file(REMOVE_RECURSE
  "libfxcpp_jit.a"
)
