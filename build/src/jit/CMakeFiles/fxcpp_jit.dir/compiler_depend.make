# Empty compiler generated dependencies file for fxcpp_jit.
# This may be replaced when dependencies are built.
