file(REMOVE_RECURSE
  "libfxcpp_nn.a"
)
