
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/fxcpp_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/fxcpp_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/models/deep_recommender.cc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/deep_recommender.cc.o" "gcc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/deep_recommender.cc.o.d"
  "/root/repo/src/nn/models/dlrm.cc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/dlrm.cc.o" "gcc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/dlrm.cc.o.d"
  "/root/repo/src/nn/models/learning_to_paint.cc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/learning_to_paint.cc.o" "gcc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/learning_to_paint.cc.o.d"
  "/root/repo/src/nn/models/mlp.cc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/mlp.cc.o" "gcc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/mlp.cc.o.d"
  "/root/repo/src/nn/models/resnet.cc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/resnet.cc.o" "gcc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/resnet.cc.o.d"
  "/root/repo/src/nn/models/transformer.cc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/transformer.cc.o" "gcc" "src/nn/CMakeFiles/fxcpp_nn.dir/models/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fxcpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fxcpp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fxcpp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
