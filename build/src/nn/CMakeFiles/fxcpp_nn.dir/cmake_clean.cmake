file(REMOVE_RECURSE
  "CMakeFiles/fxcpp_nn.dir/layers.cc.o"
  "CMakeFiles/fxcpp_nn.dir/layers.cc.o.d"
  "CMakeFiles/fxcpp_nn.dir/models/deep_recommender.cc.o"
  "CMakeFiles/fxcpp_nn.dir/models/deep_recommender.cc.o.d"
  "CMakeFiles/fxcpp_nn.dir/models/dlrm.cc.o"
  "CMakeFiles/fxcpp_nn.dir/models/dlrm.cc.o.d"
  "CMakeFiles/fxcpp_nn.dir/models/learning_to_paint.cc.o"
  "CMakeFiles/fxcpp_nn.dir/models/learning_to_paint.cc.o.d"
  "CMakeFiles/fxcpp_nn.dir/models/mlp.cc.o"
  "CMakeFiles/fxcpp_nn.dir/models/mlp.cc.o.d"
  "CMakeFiles/fxcpp_nn.dir/models/resnet.cc.o"
  "CMakeFiles/fxcpp_nn.dir/models/resnet.cc.o.d"
  "CMakeFiles/fxcpp_nn.dir/models/transformer.cc.o"
  "CMakeFiles/fxcpp_nn.dir/models/transformer.cc.o.d"
  "libfxcpp_nn.a"
  "libfxcpp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxcpp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
