# Empty compiler generated dependencies file for fxcpp_nn.
# This may be replaced when dependencies are built.
