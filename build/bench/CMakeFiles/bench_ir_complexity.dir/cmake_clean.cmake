file(REMOVE_RECURSE
  "CMakeFiles/bench_ir_complexity.dir/bench_ir_complexity.cc.o"
  "CMakeFiles/bench_ir_complexity.dir/bench_ir_complexity.cc.o.d"
  "bench_ir_complexity"
  "bench_ir_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ir_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
