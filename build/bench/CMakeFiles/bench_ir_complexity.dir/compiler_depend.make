# Empty compiler generated dependencies file for bench_ir_complexity.
# This may be replaced when dependencies are built.
