
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_pass_cost.cc" "bench/CMakeFiles/bench_pass_cost.dir/bench_pass_cost.cc.o" "gcc" "bench/CMakeFiles/bench_pass_cost.dir/bench_pass_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trt/CMakeFiles/fxcpp_trt.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/fxcpp_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/fxcpp_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/fxcpp_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fxcpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fxcpp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fxcpp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fxcpp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
