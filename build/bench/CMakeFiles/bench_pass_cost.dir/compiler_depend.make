# Empty compiler generated dependencies file for bench_pass_cost.
# This may be replaced when dependencies are built.
