file(REMOVE_RECURSE
  "CMakeFiles/bench_pass_cost.dir/bench_pass_cost.cc.o"
  "CMakeFiles/bench_pass_cost.dir/bench_pass_cost.cc.o.d"
  "bench_pass_cost"
  "bench_pass_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pass_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
