# Empty dependencies file for bench_tensorrt.
# This may be replaced when dependencies are built.
