file(REMOVE_RECURSE
  "CMakeFiles/bench_tensorrt.dir/bench_tensorrt.cc.o"
  "CMakeFiles/bench_tensorrt.dir/bench_tensorrt.cc.o.d"
  "bench_tensorrt"
  "bench_tensorrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tensorrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
