file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_interp.dir/test_codegen_interp.cc.o"
  "CMakeFiles/test_codegen_interp.dir/test_codegen_interp.cc.o.d"
  "test_codegen_interp"
  "test_codegen_interp.pdb"
  "test_codegen_interp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
