# Empty compiler generated dependencies file for test_trt.
# This may be replaced when dependencies are built.
