file(REMOVE_RECURSE
  "CMakeFiles/test_trt.dir/test_trt.cc.o"
  "CMakeFiles/test_trt.dir/test_trt.cc.o.d"
  "test_trt"
  "test_trt.pdb"
  "test_trt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
