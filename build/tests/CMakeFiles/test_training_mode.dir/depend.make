# Empty dependencies file for test_training_mode.
# This may be replaced when dependencies are built.
