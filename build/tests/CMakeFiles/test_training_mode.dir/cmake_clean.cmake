file(REMOVE_RECURSE
  "CMakeFiles/test_training_mode.dir/test_training_mode.cc.o"
  "CMakeFiles/test_training_mode.dir/test_training_mode.cc.o.d"
  "test_training_mode"
  "test_training_mode.pdb"
  "test_training_mode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_training_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
