# Empty dependencies file for test_rewriter_split.
# This may be replaced when dependencies are built.
