file(REMOVE_RECURSE
  "CMakeFiles/test_rewriter_split.dir/test_rewriter_split.cc.o"
  "CMakeFiles/test_rewriter_split.dir/test_rewriter_split.cc.o.d"
  "test_rewriter_split"
  "test_rewriter_split.pdb"
  "test_rewriter_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rewriter_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
