file(REMOVE_RECURSE
  "CMakeFiles/test_type_check.dir/test_type_check.cc.o"
  "CMakeFiles/test_type_check.dir/test_type_check.cc.o.d"
  "test_type_check"
  "test_type_check.pdb"
  "test_type_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_type_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
