file(REMOVE_RECURSE
  "CMakeFiles/test_quant_per_channel.dir/test_quant_per_channel.cc.o"
  "CMakeFiles/test_quant_per_channel.dir/test_quant_per_channel.cc.o.d"
  "test_quant_per_channel"
  "test_quant_per_channel.pdb"
  "test_quant_per_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quant_per_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
