# Empty compiler generated dependencies file for test_quant_per_channel.
# This may be replaced when dependencies are built.
