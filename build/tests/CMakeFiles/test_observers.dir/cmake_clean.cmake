file(REMOVE_RECURSE
  "CMakeFiles/test_observers.dir/test_observers.cc.o"
  "CMakeFiles/test_observers.dir/test_observers.cc.o.d"
  "test_observers"
  "test_observers.pdb"
  "test_observers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_observers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
