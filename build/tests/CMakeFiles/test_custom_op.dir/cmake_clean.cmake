file(REMOVE_RECURSE
  "CMakeFiles/test_custom_op.dir/test_custom_op.cc.o"
  "CMakeFiles/test_custom_op.dir/test_custom_op.cc.o.d"
  "test_custom_op"
  "test_custom_op.pdb"
  "test_custom_op[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_custom_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
