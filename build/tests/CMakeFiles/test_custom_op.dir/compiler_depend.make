# Empty compiler generated dependencies file for test_custom_op.
# This may be replaced when dependencies are built.
