# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_tracer[1]_include.cmake")
include("/root/repo/build/tests/test_quantize[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_codegen_interp[1]_include.cmake")
include("/root/repo/build/tests/test_rewriter_split[1]_include.cmake")
include("/root/repo/build/tests/test_passes[1]_include.cmake")
include("/root/repo/build/tests/test_jit[1]_include.cmake")
include("/root/repo/build/tests/test_trt[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_transformer[1]_include.cmake")
include("/root/repo/build/tests/test_quant_per_channel[1]_include.cmake")
include("/root/repo/build/tests/test_type_check[1]_include.cmake")
include("/root/repo/build/tests/test_observers[1]_include.cmake")
include("/root/repo/build/tests/test_training_mode[1]_include.cmake")
include("/root/repo/build/tests/test_graph_io[1]_include.cmake")
include("/root/repo/build/tests/test_custom_op[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_autodiff[1]_include.cmake")
