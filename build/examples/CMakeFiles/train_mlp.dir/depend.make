# Empty dependencies file for train_mlp.
# This may be replaced when dependencies are built.
