file(REMOVE_RECURSE
  "CMakeFiles/train_mlp.dir/train_mlp.cpp.o"
  "CMakeFiles/train_mlp.dir/train_mlp.cpp.o.d"
  "train_mlp"
  "train_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
