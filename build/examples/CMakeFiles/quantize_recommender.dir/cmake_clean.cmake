file(REMOVE_RECURSE
  "CMakeFiles/quantize_recommender.dir/quantize_recommender.cpp.o"
  "CMakeFiles/quantize_recommender.dir/quantize_recommender.cpp.o.d"
  "quantize_recommender"
  "quantize_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantize_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
