# Empty dependencies file for quantize_recommender.
# This may be replaced when dependencies are built.
