# Empty dependencies file for shape_and_flops.
# This may be replaced when dependencies are built.
