file(REMOVE_RECURSE
  "CMakeFiles/shape_and_flops.dir/shape_and_flops.cpp.o"
  "CMakeFiles/shape_and_flops.dir/shape_and_flops.cpp.o.d"
  "shape_and_flops"
  "shape_and_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_and_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
