# Empty dependencies file for lower_to_trtsim.
# This may be replaced when dependencies are built.
