file(REMOVE_RECURSE
  "CMakeFiles/lower_to_trtsim.dir/lower_to_trtsim.cpp.o"
  "CMakeFiles/lower_to_trtsim.dir/lower_to_trtsim.cpp.o.d"
  "lower_to_trtsim"
  "lower_to_trtsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_to_trtsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
