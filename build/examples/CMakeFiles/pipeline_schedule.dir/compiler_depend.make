# Empty compiler generated dependencies file for pipeline_schedule.
# This may be replaced when dependencies are built.
