file(REMOVE_RECURSE
  "CMakeFiles/pipeline_schedule.dir/pipeline_schedule.cpp.o"
  "CMakeFiles/pipeline_schedule.dir/pipeline_schedule.cpp.o.d"
  "pipeline_schedule"
  "pipeline_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
