# Empty dependencies file for fuse_resnet.
# This may be replaced when dependencies are built.
