file(REMOVE_RECURSE
  "CMakeFiles/fuse_resnet.dir/fuse_resnet.cpp.o"
  "CMakeFiles/fuse_resnet.dir/fuse_resnet.cpp.o.d"
  "fuse_resnet"
  "fuse_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
