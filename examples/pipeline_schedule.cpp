// Program scheduling / software pipelining (Section 6.2.3): split a model
// into two stages with split_module and overlap stage execution across a
// stream of requests, as done for CPU/GPU and local/RPC overlap at the
// "major software company" of the paper.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "passes/scheduler.h"
#include "runtime/thread_pool.h"

using namespace fxcpp;

int main() {
  rt::set_num_threads(1);
  auto gm = fx::symbolic_trace(nn::models::mlp({128, 256, 256, 256, 64}, "relu"));

  // Pick a boundary roughly halfway through the call_module sequence.
  int count = 0;
  std::string boundary;
  for (const fx::Node* n : gm->graph().nodes()) {
    if (n->op() == fx::Opcode::CallModule && ++count == 4) boundary = n->name();
  }
  auto split = passes::split_at(*gm, boundary);
  std::printf("parent program after split:\n%s\n",
              split.parent->code().c_str());
  std::printf("stage 0:\n%s\nstage 1:\n%s\n",
              split.submodules[0]->code().c_str(),
              split.submodules[1]->code().c_str());

  std::vector<Tensor> stream;
  for (int i = 0; i < 32; ++i) stream.push_back(Tensor::randn({4, 128}));

  const auto t_serial =
      bench::time_trials([&] { passes::run_serial(split, stream); }, 5);
  const auto t_piped =
      bench::time_trials([&] { passes::run_pipelined(split, stream); }, 5);
  std::printf("serial    %.4fs +- %.4fs\n", t_serial.mean, t_serial.stdev);
  std::printf("pipelined %.4fs +- %.4fs (%.2fx throughput)\n", t_piped.mean,
              t_piped.stdev, t_serial.mean / t_piped.mean);

  // Equivalence check.
  auto a = passes::run_serial(split, stream);
  auto b = passes::run_pipelined(split, stream);
  bool ok = true;
  for (std::size_t i = 0; i < a.size(); ++i) ok = ok && allclose(a[i], b[i]);
  std::printf("results identical: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
