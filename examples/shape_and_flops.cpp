// Program analysis (Section 6.3): shape propagation, FLOPs/memory
// estimation for "simulation of inference at scale", symbolic shapes with
// the Figure 4 dynamic-dimension demonstration, and Graphviz export.
#include <cstdio>

#include "core/tracer.h"
#include "nn/models/resnet.h"
#include "passes/flops.h"
#include "passes/graph_drawer.h"
#include "passes/shape_prop.h"
#include "passes/symbolic_shapes.h"

using namespace fxcpp;

int main() {
  auto gm = fx::symbolic_trace(nn::models::resnet18(16, 10));
  passes::shape_prop(*gm, {Tensor::randn({1, 3, 64, 64})});

  // Per-node cost table + roofline runtime estimate on a hypothetical
  // device (100 GFLOP/s, 50 GB/s) — the paper's hardware-simulation use.
  const auto report = passes::estimate_cost(*gm);
  std::printf("%s", report.to_table().c_str());
  std::printf("estimated runtime on 100 GFLOP/s / 50 GB/s device: %.3f ms\n\n",
              report.estimate_seconds(100e9, 50e9) * 1e3);

  // Symbolic shapes: batch dimension left dynamic.
  using passes::SymDim;
  passes::SymShape in{SymDim::dynamic(), SymDim::known(3), SymDim::known(64),
                      SymDim::known(64)};
  const auto out = passes::propagate_symbolic(*gm, {in});
  std::printf("symbolic output shape with dynamic batch: %s\n",
              passes::sym_shape_str(out).c_str());

  // Figure 4: a loop-carried cat defeats finite shape analysis.
  const auto loop = passes::analyze_loop_cat(
      {SymDim::known(1), SymDim::known(8)}, /*cat_dim=*/0);
  std::printf("Figure 4 loop analysis: x -> %s after %d join iteration(s)\n",
              passes::sym_shape_str(loop.result).c_str(), loop.iterations);

  // Graphviz export (fx.graph_drawer).
  passes::write_dot(*gm, "/tmp/resnet18_fx.dot", "resnet18");
  std::printf("wrote /tmp/resnet18_fx.dot (render with `dot -Tpng`)\n");
  return 0;
}
