// Convolution/Batch-Norm fusion on ResNet-50 (Section 6.2.2): the whole
// transform is a short graph walk plus weight surgery — the paper's
// "fewer than 150 lines of Python" example, at similar size here.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/tracer.h"
#include "nn/models/resnet.h"
#include "passes/fuse_conv_bn.h"

using namespace fxcpp;

int main() {
  auto gm = fx::symbolic_trace(nn::models::resnet50(16, 1000));
  Tensor x = Tensor::randn({1, 3, 64, 64});
  Tensor before = gm->run(x);

  std::size_t nodes_before = gm->graph().size();
  const int fused = passes::fuse_conv_bn(*gm);
  std::printf("fused %d Conv+BN pairs; graph %zu -> %zu nodes\n", fused,
              nodes_before, gm->graph().size());

  Tensor after = gm->run(x);
  std::printf("max |fused - unfused| = %.2e (numerically identical)\n",
              max_abs_diff(after, before));

  const auto t = bench::time_trials([&] { gm->run(x); }, 8);
  std::printf("fused inference: %.4fs +- %.4fs\n", t.mean, t.stdev);

  // The BN modules are gone from the executed program:
  int remaining_bn = 0;
  for (const fx::Node* n : gm->graph().nodes()) {
    if (n->op() == fx::Opcode::CallModule &&
        gm->resolve_module(n->target())->kind() == "BatchNorm2d") {
      ++remaining_bn;
    }
  }
  std::printf("BatchNorm call sites remaining: %d\n", remaining_bn);
  return 0;
}
