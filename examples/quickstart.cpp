// Quickstart — the paper's Figures 1-3 end to end:
//   1. capture a function with symbolic tracing and inspect the 6-opcode IR
//   2. write a transform (swap every relu for gelu) directly against the IR
//   3. generate code, install the result inside another module, re-trace
#include <cstdio>

#include "core/functional.h"
#include "core/graph_module.h"
#include "core/subgraph_rewriter.h"
#include "core/tracer.h"
#include "tensor/ops.h"

using namespace fxcpp;
using fx::Value;

// Figure 1's my_func: torch.relu(x).neg()
Value my_func(Value x) { return fx::fn::relu(x).neg(); }

int main() {
  // --- capture (Figure 1) -------------------------------------------------
  auto traced = fx::symbolic_trace(std::function<Value(Value)>(my_func));

  std::printf("captured IR:\n%s\n", traced->graph().to_string().c_str());
  std::printf("generated code:\n%s\n", traced->code().c_str());

  // --- transform (Figure 2): replace relu with gelu -----------------------
  auto pattern = fx::symbolic_trace(
      std::function<Value(Value)>([](Value x) { return fx::fn::relu(x); }));
  auto replacement = fx::symbolic_trace(
      std::function<Value(Value)>([](Value x) { return fx::fn::gelu(x); }));
  const int swapped =
      fx::replace_pattern(*traced, pattern->graph(), replacement->graph());
  std::printf("replaced %d activation(s); new code:\n%s\n", swapped,
              traced->code().c_str());

  // --- reuse (Figure 3): install the GraphModule in a new module, re-trace
  class SampleModule : public nn::Module {
   public:
    SampleModule() : nn::Module("SampleModule") {}
    Value forward(const std::vector<Value>& inputs) override {
      constexpr double kPi = 3.141592653589793;
      return (*get_submodule("act"))(inputs.at(0) + kPi);
    }
  };
  auto sm = std::make_shared<SampleModule>();
  sm->register_module("act", traced);
  auto retraced = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(sm));
  std::printf("re-traced (GraphModule inlined):\n%s\n",
              retraced->code().c_str());

  // Transformed programs execute like any module.
  Tensor x = Tensor::randn({2, 3});
  Tensor y = retraced->run(x);
  Tensor expect = ops::neg(ops::gelu(ops::add(x, 3.141592653589793)));
  std::printf("max |output - expected| = %.2e\n", max_abs_diff(y, expect));
  return 0;
}
