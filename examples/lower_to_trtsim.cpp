// Device lowering (Section 6.4): compile a model to the TRTSim backend,
// including the automatic split around an operator the backend does not
// support — unsupported segments run eagerly, compiled segments run from
// the static-memory execution plan.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/tracer.h"
#include "nn/layers.h"
#include "nn/models/resnet.h"
#include "trt/lower.h"

using namespace fxcpp;
using fx::Value;

// A model with a GELU in the middle — not in TRTSim's support table.
class MixedNet : public nn::Module {
 public:
  MixedNet() : nn::Module("MixedNet") {
    register_module("conv1", std::make_shared<nn::Conv2d>(3, 16, 3, 1, 1));
    register_module("bn1", std::make_shared<nn::BatchNorm2d>(16));
    register_module("relu", std::make_shared<nn::ReLU>());
    register_module("gelu", std::make_shared<nn::GELU>());
    register_module("conv2", std::make_shared<nn::Conv2d>(16, 16, 3, 1, 1));
    register_module("pool", std::make_shared<nn::AdaptiveAvgPool2d>(1));
    register_module("flat", std::make_shared<nn::Flatten>(1));
    register_module("fc", std::make_shared<nn::Linear>(16, 10));
  }
  Value forward(const std::vector<Value>& in) override {
    Value x = (*get_submodule("conv1"))(in.at(0));
    x = (*get_submodule("bn1"))(x);
    x = (*get_submodule("relu"))(x);
    x = (*get_submodule("gelu"))(x);  // unsupported: forces a split
    x = (*get_submodule("conv2"))(x);
    x = (*get_submodule("pool"))(x);
    x = (*get_submodule("flat"))(x);
    return (*get_submodule("fc"))(x);
  }
};

int main() {
  // Fully supported model: single engine segment.
  {
    auto gm = fx::symbolic_trace(nn::models::resnet50(16, 1000));
    Tensor x = Tensor::randn({1, 3, 64, 64});
    auto lowered = trt::lower_to_trtsim(gm, x);
    std::printf("ResNet50: %d engine / %d eager segment(s)\n",
                lowered.engine_segments, lowered.eager_segments);
    for (const auto& st : lowered.engine_stats) {
      std::printf("  %s\n", st.to_string().c_str());
    }
    const auto t_eager = bench::time_trials([&] { gm->run(x); }, 10);
    const auto t_lower = bench::time_trials([&] { lowered.module->run(x); }, 10);
    std::printf("  eager %.4fs -> engine %.4fs (%.2fx), max |delta| %.2e\n",
                t_eager.mean, t_lower.mean, t_eager.mean / t_lower.mean,
                max_abs_diff(lowered.module->run(x), gm->run(x)));
  }

  // Mixed model: automatic split around the unsupported op.
  {
    auto model = std::make_shared<MixedNet>();
    auto gm = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
    Tensor x = Tensor::randn({1, 3, 16, 16});
    auto lowered = trt::lower_to_trtsim(gm, x);
    std::printf("\nMixedNet: %d engine / %d eager segment(s)\n",
                lowered.engine_segments, lowered.eager_segments);
    std::printf("parent program after lowering:\n%s",
                lowered.module->code().c_str());
    std::printf("max |lowered - eager| = %.2e\n",
                max_abs_diff(lowered.module->run(x), gm->run(x)));
  }
  return 0;
}
