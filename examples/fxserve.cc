// fxserve — serve a traced model under closed-loop load and report
// QPS / p50 / p99 plus the session's batching and resilience counters.
//
//   fxserve [--clients N] [--requests M] [--feat F] [--hidden H]
//           [--max-batch B] [--delay-us D] [--no-batching]
//           [--deadline-ms X] [--queue N] [--json PATH]
//           [--retry K] [--breaker-threshold K] [--shed-watermark N]
//           [--priorities] [--chaos RATE] [--chaos-seed S]
//
// The model is an MLP (feat -> hidden -> 64) traced with fx::symbolic_trace
// and prepared for serving via passes::compile_planned (batch-dim-bucketed
// PlanCache), i.e. exactly the deployment shape DESIGN.md's serving chapter
// describes: compiled artifact + runtime session as the unit of deployment.
// --chaos injects a seeded fault schedule through the serving stack (the
// A12 harness) so the resilience knobs have something to push against.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/exec_hooks.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "resilience/anomaly.h"
#include "resilience/chaos.h"
#include "runtime/thread_pool.h"
#include "serve/loadgen.h"
#include "serve/session.h"

using namespace fxcpp;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--clients N] [--requests M] [--feat F] [--hidden H]\n"
      "          [--max-batch B] [--delay-us D] [--no-batching]\n"
      "          [--deadline-ms X] [--queue N] [--json PATH]\n"
      "          [--retry K] [--breaker-threshold K] [--shed-watermark N]\n"
      "          [--priorities] [--chaos RATE] [--chaos-seed S]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::LoadOptions lo;
  lo.clients = 4;
  lo.requests_per_client = 50;
  std::int64_t feat = 64;
  std::int64_t hidden = 256;
  int layers = 1;
  serve::ServeOptions so;
  std::string json_path;
  double chaos_rate = 0.0;
  std::uint64_t chaos_seed = 0xC4A05ull;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (a == "--clients") lo.clients = std::atoi(next());
    else if (a == "--requests") lo.requests_per_client = std::atoi(next());
    else if (a == "--feat") feat = std::atoll(next());
    else if (a == "--hidden") hidden = std::atoll(next());
    else if (a == "--layers") layers = std::atoi(next());
    else if (a == "--max-batch") so.max_batch_rows = std::atoll(next());
    else if (a == "--delay-us")
      so.max_queue_delay = std::chrono::microseconds(std::atoll(next()));
    else if (a == "--no-batching") so.batching = false;
    else if (a == "--deadline-ms")
      lo.deadline_seconds = std::atof(next()) / 1e3;
    else if (a == "--queue") so.max_queue_depth =
        static_cast<std::size_t>(std::atoll(next()));
    else if (a == "--json") json_path = next();
    // --retry K: total attempts per request (1 disables retries).
    else if (a == "--retry") so.retry.max_attempts = std::atoi(next());
    // --breaker-threshold K: consecutive failures that trip the breaker
    // (0 disables the breaker entirely).
    else if (a == "--breaker-threshold") {
      const int k = std::atoi(next());
      if (k <= 0) so.breaker.enabled = false;
      else so.breaker.consecutive_failures = k;
    }
    // --shed-watermark N: queue depth where Low priority sheds (Normal
    // sheds at 1.5x this, capped at the queue bound).
    else if (a == "--shed-watermark") {
      const std::size_t n = static_cast<std::size_t>(std::atoll(next()));
      so.shed_low_watermark = n;
      so.shed_normal_watermark = n + n / 2;
    }
    // --priorities: cycle clients through Low/Normal/High.
    else if (a == "--priorities") lo.mixed_priorities = true;
    // --chaos RATE: fault this fraction of engine runs (seeded).
    else if (a == "--chaos") chaos_rate = std::atof(next());
    else if (a == "--chaos-seed")
      chaos_seed = static_cast<std::uint64_t>(std::atoll(next()));
    else return usage(argv[0]);
  }
  lo.feature_dim = feat;

  rt::set_num_threads(1);
  std::vector<std::int64_t> dims;
  dims.push_back(feat);
  for (int l = 0; l < layers; ++l) dims.push_back(hidden);
  dims.push_back(64);
  auto gm = fx::symbolic_trace(nn::models::mlp(dims));

  // Optional chaos harness: seeded fault schedule + anomaly watchdog, wired
  // into every engine run the session issues. Clients absorb breaker
  // fast-fails by resubmitting, so the exit-code contract below still
  // scores genuine failures only.
  std::unique_ptr<resilience::ChaosInjector> chaos;
  std::unique_ptr<resilience::AnomalyDetector> anomaly;
  std::unique_ptr<fx::MultiHooks> hooks;
  if (chaos_rate > 0.0) {
    resilience::ChaosOptions co;
    co.fault_rate = chaos_rate;
    co.seed = chaos_seed;
    co.kinds = {resilience::FaultKind::Throw, resilience::FaultKind::PoisonNaN,
                resilience::FaultKind::AllocLimit};
    chaos = std::make_unique<resilience::ChaosInjector>(co);
    anomaly = std::make_unique<resilience::AnomalyDetector>(
        *gm, resilience::AnomalyAction::Throw);
    hooks = std::make_unique<fx::MultiHooks>(
        std::vector<fx::ExecHooks*>{chaos.get(), anomaly.get()});
    so.hooks = hooks.get();
    lo.resubmit_max = 200;
  }

  serve::InferenceSession session(gm, serve::request_input(0, 4, feat), so);

  std::printf("fxserve: mlp(%lld-%lldx%d-64), %d clients x %d requests, "
              "batching %s (max %lld rows, %lld us delay)%s\n",
              static_cast<long long>(feat), static_cast<long long>(hidden),
              layers, lo.clients, lo.requests_per_client,
              so.batching ? "on" : "off",
              static_cast<long long>(so.max_batch_rows),
              static_cast<long long>(so.max_queue_delay.count()),
              chaos_rate > 0.0 ? ", chaos on" : "");

  const serve::LoadReport r = serve::run_closed_loop(session, lo);
  session.shutdown();
  const serve::SessionStats st = session.stats();

  std::printf("\n  QPS          : %.1f\n", r.qps);
  std::printf("  p50 latency  : %.3f ms\n", r.p50_seconds * 1e3);
  std::printf("  p99 latency  : %.3f ms\n", r.p99_seconds * 1e3);
  std::printf("  ok / failed  : %zu / %zu\n", r.ok, r.failed);
  std::printf("  shed/expired : %zu / %zu (resubmits %llu)\n", r.shed,
              r.expired, static_cast<unsigned long long>(r.client_resubmits));
  std::printf("  mean batch   : %.2f requests/run\n", r.mean_batch_requests);
  if (chaos) {
    std::printf("  chaos        : %s\n", chaos->stats().to_json().c_str());
  }
  std::printf("  session      : %s\n", st.to_json().c_str());

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    f << "{\n"
      << "  \"qps\": " << r.qps << ",\n"
      << "  \"p50_sec\": " << r.p50_seconds << ",\n"
      << "  \"p99_sec\": " << r.p99_seconds << ",\n"
      << "  \"ok\": " << r.ok << ",\n"
      << "  \"failed\": " << r.failed << ",\n"
      << "  \"shed\": " << r.shed << ",\n"
      << "  \"expired\": " << r.expired << ",\n"
      << "  \"client_resubmits\": " << r.client_resubmits << ",\n"
      << "  \"mean_batch_requests\": " << r.mean_batch_requests << ",\n";
    if (chaos) f << "  \"chaos\": " << chaos->stats().to_json() << ",\n";
    f << "  \"session\": " << st.to_json() << "\n"
      << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  // Exit nonzero if any request genuinely failed (shed/expired final
  // outcomes are resilience verdicts, not failures): the smoke contract.
  return r.failed == 0 ? 0 : 1;
}
