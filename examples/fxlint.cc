// fxlint — standalone rule-based linter and analyzer for serialized fx
// graphs.
//
//   fxlint graph.fxir             lint a serialize_graph() text file
//   fxlint --json graph.fxir      emit machine-readable diagnostics
//   fxlint --rule <id> graph.fxir only run/report rules matching <id>
//                                 (exact id or prefix group like "resolve";
//                                 repeatable)
//   fxlint --strict graph.fxir    exit nonzero on warnings/infos too
//   fxlint --analyze graph.fxir   dump per-node dataflow facts (constness,
//                                 alias set, live range, symbolic shape,
//                                 shape-polymorphic placeholders) instead of
//                                 linting; honors --json
//   fxlint --demo                 built-in graph seeded with defects
//
// Loads the graph via graph_io, wraps it in a root-less GraphModule, and
// runs the full analysis::Verifier rule registry (or the dataflow analyses
// under --analyze). Exit code 0 = clean, 1 = error-severity diagnostics
// (any diagnostics under --strict), 2 = could not load the input.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/verifier.h"
#include "core/graph_io.h"

using namespace fxcpp;

namespace {

// A graph with several simultaneous defects: an unresolvable call_function
// target, a bogus kwarg, an unused placeholder, and dead compute nodes. The
// verifier reports all of them in one pass — the first-throw lint() would
// stop at none of these (they are not structural), and a thrown error would
// name only one.
std::unique_ptr<fx::Graph> demo_graph() {
  auto g = std::make_unique<fx::Graph>();
  fx::Node* x = g->placeholder("x");
  g->placeholder("unused_input");
  fx::Node* bogus = g->call_function("definitely_not_an_op", {fx::Argument(x)});
  g->call_function("relu", {fx::Argument(x)},
                   {{"alpha", fx::Argument(0.5)}});  // relu has no 'alpha'
  g->call_method("neg", {fx::Argument(x)});          // dead
  g->output(fx::Argument(bogus));
  return g;
}

// --rule filter: exact rule id, or a dotted-prefix group ("resolve" matches
// "resolve.kwargs"; "schedule.race" matches only itself).
bool rule_matches(const std::string& rule, const std::vector<std::string>& ids) {
  if (ids.empty()) return true;
  return std::any_of(ids.begin(), ids.end(), [&](const std::string& id) {
    return rule == id ||
           (rule.size() > id.size() && rule.compare(0, id.size(), id) == 0 &&
            rule[id.size()] == '.');
  });
}

void usage() {
  std::fprintf(stderr,
               "usage: fxlint [--json] [--strict] [--rule <id>]... "
               "[--analyze] (--demo | graph.fxir)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool demo = false;
  bool strict = false;
  bool analyze = false;
  std::vector<std::string> rule_ids;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (std::strcmp(argv[i], "--demo") == 0) demo = true;
    else if (std::strcmp(argv[i], "--strict") == 0) strict = true;
    else if (std::strcmp(argv[i], "--analyze") == 0) analyze = true;
    else if (std::strcmp(argv[i], "--rule") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fxlint: --rule needs a rule id\n");
        usage();
        return 2;
      }
      rule_ids.emplace_back(argv[++i]);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "fxlint: unknown flag '%s'\n", argv[i]);
      usage();
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (!demo && !path) {
    usage();
    return 2;
  }

  std::unique_ptr<fx::Graph> graph;
  if (demo) {
    graph = demo_graph();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "fxlint: cannot open '%s'\n", path);
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      graph = fx::parse_graph(text.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fxlint: parse failed: %s\n", e.what());
      return 2;
    }
  }

  // A serialized graph carries no module hierarchy; resolve.module-path /
  // resolve.attr-path diagnostics then mean "this graph needs a root to run".
  fx::GraphModule gm(nullptr, std::move(graph), "fxlint");

  if (analyze) {
    const analysis::GraphFacts facts = analysis::analyze_graph(gm.graph(), &gm);
    std::printf("%s\n", (json ? facts.to_json() : facts.to_string()).c_str());
    if (!json) {
      // The plan cache specializes per concrete signature of these inputs —
      // many polymorphic placeholders mean many cache entries.
      std::string poly;
      for (const auto& f : facts.nodes) {
        if (f.shape_poly) poly += (poly.empty() ? "" : ", ") + f.name;
      }
      std::printf("shape-polymorphic placeholders: %s\n",
                  poly.empty() ? "(none)" : poly.c_str());
    }
    return 0;
  }

  analysis::Report report = analysis::verify(gm);
  if (!rule_ids.empty()) {
    auto& ds = report.diagnostics;
    ds.erase(std::remove_if(ds.begin(), ds.end(),
                            [&](const analysis::Diagnostic& d) {
                              return !rule_matches(d.rule, rule_ids);
                            }),
             ds.end());
  }

  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("%s\n", report.to_string().c_str());
  }
  if (strict) return report.diagnostics.empty() ? 0 : 1;
  return report.ok() ? 0 : 1;
}
