// fxlint — standalone rule-based linter for serialized fx graphs.
//
//   fxlint graph.fxir           lint a serialize_graph() text file
//   fxlint --json graph.fxir    emit machine-readable diagnostics
//   fxlint --demo               lint a built-in graph seeded with defects
//
// Loads the graph via graph_io, wraps it in a root-less GraphModule, and
// runs the full analysis::Verifier rule registry. Exit code 0 = clean,
// 1 = error-severity diagnostics, 2 = could not load the input.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/verifier.h"
#include "core/graph_io.h"

using namespace fxcpp;

namespace {

// A graph with several simultaneous defects: an unresolvable call_function
// target, a bogus kwarg, an unused placeholder, and dead compute nodes. The
// verifier reports all of them in one pass — the first-throw lint() would
// stop at none of these (they are not structural), and a thrown error would
// name only one.
std::unique_ptr<fx::Graph> demo_graph() {
  auto g = std::make_unique<fx::Graph>();
  fx::Node* x = g->placeholder("x");
  g->placeholder("unused_input");
  fx::Node* bogus = g->call_function("definitely_not_an_op", {fx::Argument(x)});
  g->call_function("relu", {fx::Argument(x)},
                   {{"alpha", fx::Argument(0.5)}});  // relu has no 'alpha'
  g->call_method("neg", {fx::Argument(x)});          // dead
  g->output(fx::Argument(bogus));
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool demo = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (std::strcmp(argv[i], "--demo") == 0) demo = true;
    else if (argv[i][0] == '-') {
      std::fprintf(stderr, "fxlint: unknown flag '%s'\n", argv[i]);
      std::fprintf(stderr, "usage: fxlint [--json] (--demo | graph.fxir)\n");
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (!demo && !path) {
    std::fprintf(stderr, "usage: fxlint [--json] (--demo | graph.fxir)\n");
    return 2;
  }

  std::unique_ptr<fx::Graph> graph;
  if (demo) {
    graph = demo_graph();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "fxlint: cannot open '%s'\n", path);
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      graph = fx::parse_graph(text.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fxlint: parse failed: %s\n", e.what());
      return 2;
    }
  }

  // A serialized graph carries no module hierarchy; resolve.module-path /
  // resolve.attr-path diagnostics then mean "this graph needs a root to run".
  fx::GraphModule gm(nullptr, std::move(graph), "fxlint");
  const analysis::Report report = analysis::verify(gm);

  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("%s\n", report.to_string().c_str());
  }
  return report.ok() ? 0 : 1;
}
