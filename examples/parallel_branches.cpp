// Inter-op parallel execution of a wide graph (Section 6.2.3's production
// pattern): trace a model with independent branches, print the
// dependency-counted schedule the ParallelExecutor derives from the tape,
// run it with forward_parallel(), and show the observed overlap counters.
#include <cstdio>

#include "core/parallel_executor.h"
#include "core/tracer.h"
#include "core/functional.h"

using namespace fxcpp;
using fx::Value;
namespace fn = fx::fn;

int main() {
  // Two independent branches off one input, joined at the end — the smallest
  // graph where node-by-node execution leaves parallelism on the table.
  auto two_branch = [](Value x) {
    Value left = fn::relu(fn::matmul(x, x));
    Value right = fn::tanh(fn::matmul(x, x));
    return fn::add(left, right);
  };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(two_branch));
  gm->recompile();
  std::printf("%s\n", gm->graph().to_string().c_str());

  const fx::Schedule sched = fx::build_schedule(gm->compiled_graph());
  std::printf("schedule: %zu instructions, %zu ready at start\n",
              sched.dep_count.size(), sched.initial_ready.size());
  const auto& instrs = gm->compiled_graph().instrs();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    std::printf("  [%zu] %-12s deps=%d unblocks=%zu\n", i,
                instrs[i].node ? instrs[i].node->name().c_str() : "?",
                sched.dep_count[i], sched.succs[i].size());
  }

  const Tensor x = Tensor::randn({64, 64});
  const Tensor serial = gm->run(x);
  const Tensor parallel = gm->run_parallel(x, /*num_threads=*/2);
  std::printf("\nserial == parallel : %s\n",
              allclose(serial, parallel, 0.0, 0.0) ? "HOLDS" : "VIOLATED");

  // Observability: rerun through an explicit executor with stats on.
  fx::ParallelExecutor ex(*gm, fx::ExecutorOptions{2, true});
  ex.run({fx::RtValue(x)});
  const fx::ExecutorStats& st = ex.stats();
  std::printf("executed %zu nodes, peak concurrency %d, peak ready queue %d\n",
              st.nodes_executed, st.max_concurrency, st.max_ready_queue);
  return 0;
}
