// Training via graph-transform autodiff: the paper's Section 1 calls
// program differentiation THE primary deep learning program transformation;
// here it is literally one — build_gradient_graph turns a captured forward
// graph into a gradient GraphModule, and a plain SGD loop drives it.
//
// Task: regress y = sin(3a) * cos(2b) from 2-D inputs with a small MLP.
#include <cmath>
#include <cstdio>

#include "core/functional.h"
#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "passes/autodiff.h"
#include "runtime/rng.h"
#include "tensor/ops.h"

using namespace fxcpp;
using fx::Value;

namespace {

// Loss wrapper: mean((model(x) - y)^2), traced as one graph.
class MseLoss : public nn::Module {
 public:
  explicit MseLoss(nn::Module::Ptr model) : nn::Module("MseLoss") {
    register_module("model", std::move(model));
  }
  Value forward(const std::vector<Value>& in) override {
    Value diff = (*get_submodule("model"))(in.at(0)) - in.at(1);
    return fx::fn::mean(fx::fn::mul(diff, diff));
  }
};

void make_batch(rt::Rng& rng, std::int64_t n, Tensor& x, Tensor& y) {
  x = Tensor(Shape{n, 2}, DType::Float32);
  y = Tensor(Shape{n, 1}, DType::Float32);
  for (std::int64_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    x.set_flat(i * 2, a);
    x.set_flat(i * 2 + 1, b);
    y.set_flat(i, std::sin(3.0 * a) * std::cos(2.0 * b));
  }
}

}  // namespace

int main() {
  auto model = nn::models::mlp({2, 32, 32, 1}, "tanh");
  auto loss_mod = std::make_shared<MseLoss>(model);
  fx::Tracer tracer;
  auto loss_gm = tracer.trace(std::static_pointer_cast<nn::Module>(loss_mod),
                              {"x", "y"});

  rt::Rng rng(42);
  Tensor x0, y0;
  make_batch(rng, 64, x0, y0);

  // One transform builds the whole training computation.
  auto grad = passes::build_gradient_graph(*loss_gm, {x0, y0});
  std::printf("gradient graph: %zu nodes, %zu outputs\n",
              grad.module->graph().size(), grad.output_names.size());

  // Full-batch descent on a fixed dataset for a clean convergence curve.
  const double lr = 0.2;
  double first_loss = 0.0, last_loss = 0.0;
  Tensor x = x0, y = y0;
  for (int step = 0; step <= 600; ++step) {
    const double loss = loss_gm->run({x, y}).item();
    if (step == 0) first_loss = loss;
    last_loss = loss;
    if (step % 100 == 0) std::printf("step %4d  loss %.5f\n", step, loss);

    // SGD: parameters updated through the Module hierarchy, then the tapes
    // rebind (recompile) against the new values.
    for (const auto& [name, g] : grad.run({x, y})) {
      if (name == "x" || name == "y") continue;
      Tensor p = loss_gm->root()->get_parameter(name);
      loss_gm->root()->set_parameter(name, ops::sub(p, ops::mul(g, lr)));
    }
    loss_gm->recompile();
    grad.module->recompile();
  }
  std::printf("loss: %.5f -> %.5f (%s)\n", first_loss, last_loss,
              last_loss < first_loss * 0.2 ? "trained" : "NOT trained");
  return last_loss < first_loss * 0.2 ? 0 : 1;
}
