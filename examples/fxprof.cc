// fxprof — drop-in per-node profiler CLI (the paper's Section 6.3 profiler
// use case, over all three execution engines).
//
//   fxprof resnet18                          profile the traced model (tape)
//   fxprof resnet18 --engine parallel --threads 4 --trace trace.json
//   fxprof mlp --engine all --summary summary.json
//
// Prints the aggregated text report (top-k nodes by self time with achieved
// FLOP/s and roofline ratios), optionally writes a chrome://tracing JSON
// (open in chrome://tracing or ui.perfetto.dev) and a machine-readable
// summary. Always cross-checks that the profiled output is bit-identical to
// an unprofiled run; exit code 1 if not, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/tracer.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet.h"
#include "profile/profiler.h"

using namespace fxcpp;
using fx::RtValue;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: fxprof <mlp|resnet18|resnet50> [options]\n"
               "  --engine interp|tape|parallel|all   execution engine "
               "(default tape)\n"
               "  --threads N    inter-op workers for --engine parallel "
               "(default: interop setting)\n"
               "  --runs N       profiled runs to aggregate (default 3)\n"
               "  --topk N       rows in the text report (default 15)\n"
               "  --trace FILE   write chrome://tracing JSON\n"
               "  --summary FILE write machine-readable summary JSON\n");
  return 2;
}

bool bit_equal(const RtValue& a, const RtValue& b) {
  if (!fx::rt_is_tensor(a) || !fx::rt_is_tensor(b)) return false;
  return max_abs_diff(fx::rt_tensor(a), fx::rt_tensor(b)) == 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string model_name = argv[1];
  std::string engine = "tape";
  std::string trace_path, summary_path;
  int threads = 0, runs = 3;
  std::size_t topk = 15;
  for (int i = 2; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fxprof: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--engine") == 0) engine = next("--engine");
    else if (std::strcmp(argv[i], "--threads") == 0) threads = std::atoi(next("--threads"));
    else if (std::strcmp(argv[i], "--runs") == 0) runs = std::atoi(next("--runs"));
    else if (std::strcmp(argv[i], "--topk") == 0) topk = static_cast<std::size_t>(std::atoi(next("--topk")));
    else if (std::strcmp(argv[i], "--trace") == 0) trace_path = next("--trace");
    else if (std::strcmp(argv[i], "--summary") == 0) summary_path = next("--summary");
    else {
      std::fprintf(stderr, "fxprof: unknown flag '%s'\n", argv[i]);
      return usage();
    }
  }
  if (engine != "interp" && engine != "tape" && engine != "parallel" &&
      engine != "all") {
    return usage();
  }

  std::shared_ptr<nn::Module> model;
  Tensor input;
  if (model_name == "mlp") {
    model = nn::models::mlp({64, 256, 256, 10});
    input = Tensor::randn({32, 64});
  } else if (model_name == "resnet18") {
    model = nn::models::resnet18(/*width=*/16, /*num_classes=*/64);
    input = Tensor::randn({1, 3, 32, 32});
  } else if (model_name == "resnet50") {
    model = nn::models::resnet50(/*width=*/8, /*num_classes=*/64);
    input = Tensor::randn({1, 3, 32, 32});
  } else {
    std::fprintf(stderr, "fxprof: unknown model '%s'\n", model_name.c_str());
    return usage();
  }
  model->train(false);
  auto gm = fx::symbolic_trace(model);
  gm->recompile();

  // Unprofiled reference output (serial tape) for the bit-equality check.
  const std::vector<RtValue> in{RtValue(input)};
  const RtValue reference = gm->compiled_graph().run(in).front();

  profile::Profiler prof(*gm);
  bool ok = true;
  auto check = [&](const char* name, const RtValue& out) {
    const bool eq = bit_equal(reference, out);
    ok = ok && eq;
    std::printf("profiled %-8s output bit-identical to unprofiled : %s\n",
                name, eq ? "yes" : "NO");
  };
  for (int r = 0; r < runs; ++r) {
    if (engine == "interp" || engine == "all") {
      const RtValue out = prof.run_interpreter(in);
      if (r == 0) check("interp", out);
    }
    if (engine == "tape" || engine == "all") {
      const RtValue out = prof.run_tape(in).front();
      if (r == 0) check("tape", out);
    }
    if (engine == "parallel" || engine == "all") {
      const RtValue out = prof.run_parallel(in, threads).front();
      if (r == 0) check("parallel", out);
    }
  }

  std::printf("\n%s", prof.text_report(topk).c_str());

  if (!trace_path.empty()) {
    std::ofstream f(trace_path);
    if (!f) {
      std::fprintf(stderr, "fxprof: cannot write '%s'\n", trace_path.c_str());
      return 2;
    }
    f << prof.chrome_trace_json();
    std::printf("\nwrote chrome trace to %s (open in chrome://tracing)\n",
                trace_path.c_str());
  }
  if (!summary_path.empty()) {
    std::ofstream f(summary_path);
    if (!f) {
      std::fprintf(stderr, "fxprof: cannot write '%s'\n", summary_path.c_str());
      return 2;
    }
    f << prof.summary_json();
    std::printf("wrote summary to %s\n", summary_path.c_str());
  }
  return ok ? 0 : 1;
}
