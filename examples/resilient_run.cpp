// The hardened execution runtime end to end: generate input guards from
// traced shape meta, reject and then permissively refresh an off-shape
// input, inject a fault and watch run_resilient's engine ladder recover
// bit-identically, and trace a NaN back to the node that introduced it with
// anomaly mode.
#include <cstdio>

#include "core/functional.h"
#include "core/tracer.h"
#include "passes/shape_prop.h"
#include "resilience/anomaly.h"
#include "resilience/exec_error.h"
#include "resilience/fault_injection.h"
#include "resilience/guards.h"

using namespace fxcpp;
using fx::RtValue;
using fx::Value;
namespace fn = fx::fn;

int main() {
  auto net = [](Value x) {
    Value h = fn::relu(fn::matmul(x, x));
    return fn::add(fn::tanh(h), fn::neg(h));
  };
  auto gm = fx::symbolic_trace(std::function<Value(Value)>(net));
  gm->recompile();

  // --- 1. guards: the traced shapes become a checkable contract ------------
  const Tensor example = Tensor::randn({16, 16});
  passes::shape_prop(*gm, {example});
  const std::size_t n = resilience::generate_guards(*gm);
  std::printf("installed %zu guard spec(s) from traced meta\n", n);

  const std::vector<RtValue> off_shape{RtValue(Tensor::randn({8, 8}))};
  try {
    resilience::check_inputs(*gm, off_shape, resilience::GuardMode::Strict);
  } catch (const ExecError& e) {
    std::printf("strict mode rejects : %s\n", e.what());
  }
  if (resilience::check_inputs(*gm, off_shape,
                               resilience::GuardMode::Permissive)) {
    std::printf("permissive mode re-propagated shapes and refreshed guards; "
                "new guard shape [%lld, %lld]\n",
                static_cast<long long>(gm->guards()[0].shape[0]),
                static_cast<long long>(gm->guards()[0].shape[1]));
  }

  // --- 2. fault injection + the run_resilient fallback ladder --------------
  // Make one compute node fail exactly once: the first (parallel) rung
  // absorbs the fault and the tape rung recovers the run.
  const Tensor input = Tensor::randn({8, 8});
  fx::Node* victim = nullptr;
  for (fx::Node* node : gm->graph().nodes()) {
    if (node->op() == fx::Opcode::CallFunction) victim = node;
  }
  resilience::FaultInjector inject(victim, resilience::FaultKind::Throw,
                                   /*max_fires=*/1);
  fx::ResilientOptions opts;
  opts.hooks = &inject;
  fx::ResilientReport report;
  const Tensor recovered = gm->run_resilient(input, opts, &report);

  std::printf("\nfallback ladder (fault injected at '%s'):\n",
              victim->name().c_str());
  for (const auto& attempt : report.attempts) {
    std::printf("  %-12s %s%s\n", engine_name(attempt.engine),
                attempt.ok ? "ok" : "failed: ",
                attempt.ok ? "" : attempt.error.c_str());
  }
  const Tensor clean = gm->run(input);
  std::printf("recovered == fault-free : %s\n",
              max_abs_diff(recovered, clean) == 0.0 ? "HOLDS" : "VIOLATED");

  // --- 3. anomaly mode: NaN provenance -------------------------------------
  resilience::FaultInjector poison(victim, resilience::FaultKind::PoisonNaN);
  resilience::AnomalyDetector detect(*gm, resilience::AnomalyAction::Record);
  fx::MultiHooks hooks;
  hooks.add(&poison);
  hooks.add(&detect);
  gm->compiled_graph().run({RtValue(input)}, &hooks);
  std::printf("\n%s", detect.report().c_str());
  return 0;
}
