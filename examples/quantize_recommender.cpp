// Post-Training Quantization of DeepRecommender (Section 6.2.1): the full
// prepare -> calibrate -> convert workflow, accuracy audit, and a quick
// speed comparison against fp32.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/tracer.h"
#include "nn/models/deep_recommender.h"
#include "quant/quantize.h"

using namespace fxcpp;

int main() {
  nn::models::DeepRecommenderConfig cfg;
  cfg.item_dim = 1024;
  cfg.hidden = {256, 256, 512};
  auto model = nn::models::deep_recommender(cfg);
  auto fp32 = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));

  // Phase 1: instrument with observers.
  auto gm = fx::symbolic_trace(std::static_pointer_cast<nn::Module>(model));
  const int observers = quant::prepare(*gm);
  std::printf("prepare(): inserted %d observers\n", observers);

  // Phase 2: calibrate on synthetic rating vectors (the paper's stand-in
  // for Netflix data batches; see DESIGN.md substitutions).
  std::vector<Tensor> batches;
  for (int i = 0; i < 8; ++i) batches.push_back(Tensor::rand({16, cfg.item_dim}));
  quant::calibrate(*gm, batches);

  // Phase 3: convert to int8.
  const int converted = quant::convert(*gm);
  std::printf("convert(): swapped %d ops to int8\n", converted);
  std::printf("\nquantized program:\n%s\n", gm->code().c_str());

  // Accuracy audit.
  Tensor probe = Tensor::rand({32, cfg.item_dim});
  Tensor ref = fp32->run(probe);
  Tensor got = gm->run(probe);
  double num = 0.0, den = 0.0;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    const double d = got.at_flat(i) - ref.at_flat(i);
    num += d * d;
    den += ref.at_flat(i) * ref.at_flat(i);
  }
  std::printf("relative L2 error vs fp32: %.4f\n", std::sqrt(num / den));

  // Speed.
  Tensor x = Tensor::rand({1, cfg.item_dim});
  const auto t_fp = bench::time_trials([&] { fp32->run(x); }, 10);
  const auto t_q = bench::time_trials([&] { gm->run(x); }, 10);
  std::printf("batch-1 latency: fp32 %.4fs, int8 %.4fs (%.2fx)\n", t_fp.mean,
              t_q.mean, t_fp.mean / t_q.mean);
  return 0;
}
