#!/usr/bin/env bash
# Tier-1 verification, twice: a normal Release build+ctest, then the same
# suite under AddressSanitizer+UBSan (FXCPP_SANITIZE=ON) in a separate build
# tree. Fails on the first red step.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"

echo "== [1/2] normal build + ctest (build/) =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== [2/2] sanitized build + ctest (build-asan/) =="
cmake -B "$repo/build-asan" -S "$repo" -DFXCPP_SANITIZE=ON
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"

echo "== check.sh: both suites green =="
