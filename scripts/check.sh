#!/usr/bin/env bash
# Tier-1 verification, three ways: a normal Release build+ctest, the same
# suite under AddressSanitizer+UBSan (FXCPP_SANITIZE=ON), and the
# concurrency suite (parallel executor, task groups, thread pool) under
# ThreadSanitizer (FXCPP_SANITIZE=thread). Each sanitizer gets its own build
# tree. Fails on the first red step.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"

echo "== [1/3] normal build + ctest (build/) =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== [2/3] sanitized build + ctest (build-asan/) =="
cmake -B "$repo/build-asan" -S "$repo" -DFXCPP_SANITIZE=ON
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"

echo "== [3/3] TSan build + concurrency suite (build-tsan/) =="
cmake -B "$repo/build-tsan" -S "$repo" -DFXCPP_SANITIZE=thread
cmake --build "$repo/build-tsan" -j "$jobs" --target test_parallel_exec --target test_runtime
"$repo/build-tsan/tests/test_parallel_exec"
"$repo/build-tsan/tests/test_runtime"

echo "== check.sh: all suites green =="
