#!/usr/bin/env bash
# Tier-1 verification, three ways: a normal Release build+ctest, the same
# suite under AddressSanitizer+UBSan (FXCPP_SANITIZE=ON), and the
# concurrency suite (parallel executor, task groups, thread pool, profiler
# hooks, hardened runtime, inference serving) under ThreadSanitizer
# (FXCPP_SANITIZE=thread).
# The ASan step covers the fault-injection differential fuzz (every fault
# kind at every node must leak nothing and double-free nothing) and the
# memory-planner fuzz (arena reuse / in-place aliasing must never read or
# write out of a live slot's bounds); the TSan step covers
# cancellation/deadline races in the parallel engine and the per-thread
# pack-cache under concurrent planned execution. Each sanitizer gets
# its own build tree. The normal and ASan steps also smoke the fxprof CLI on
# a traced ResNet-18 (trace + summary must be written and the profiled
# output must bit-match the unprofiled run — fxprof exits nonzero if not).
# Fails on the first red step.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"

fxprof_smoke() {
  local build="$1"
  local out
  out="$(mktemp -d)"
  "$build/examples/fxprof" resnet18 --engine all --runs 1 \
    --trace "$out/trace.json" --summary "$out/summary.json"
  test -s "$out/trace.json"
  test -s "$out/summary.json"
  grep -q '"traceEvents"' "$out/trace.json"
  grep -q '"node_seconds"' "$out/summary.json"
  rm -rf "$out"
}

echo "== [1/3] normal build + ctest (build/) =="
cmake -B "$repo/build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"
echo "-- fxprof smoke (build/) --"
fxprof_smoke "$repo/build"

# clang-tidy (bugprone / performance / concurrency, config in .clang-tidy)
# over the analysis + passes layers. Gated: the CI container does not ship
# clang-tidy; run it locally when available.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "-- clang-tidy (src/analysis src/passes src/serve src/resilience src/kernels src/core/plan_cache) --"
  { find "$repo/src/analysis" "$repo/src/passes" "$repo/src/serve" \
      "$repo/src/resilience" "$repo/src/kernels" -name '*.cc' -print0
    printf '%s\0' "$repo/src/core/plan_cache.cc"; } |
    xargs -0 -n 4 -P "$jobs" clang-tidy -p "$repo/build" --quiet
else
  echo "-- clang-tidy not installed; skipping static-analysis lint --"
fi

# Scalar-fallback regression: the full suite with the kernel dispatch pinned
# to the portable tier (the env knob every SIMD bug report starts from).
echo "-- ctest with FXCPP_KERNEL_ISA=scalar (build/) --"
FXCPP_KERNEL_ISA=scalar ctest --test-dir "$repo/build" \
  --output-on-failure -j "$jobs" -L kernels

echo "== [2/3] sanitized build + ctest (build-asan/) =="
cmake -B "$repo/build-asan" -S "$repo" -DFXCPP_SANITIZE=ON
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"
echo "-- fxprof smoke (build-asan/) --"
fxprof_smoke "$repo/build-asan"

echo "== [3/3] TSan build + concurrency suite (build-tsan/) =="
cmake -B "$repo/build-tsan" -S "$repo" -DFXCPP_SANITIZE=thread
cmake --build "$repo/build-tsan" -j "$jobs" --target test_parallel_exec \
  --target test_runtime --target test_profile --target test_resilience \
  --target test_memory_plan --target test_dataflow --target test_constant_fold \
  --target test_plan_cache --target test_serving --target test_resilience_serve \
  --target test_kernels
"$repo/build-tsan/tests/test_parallel_exec"
"$repo/build-tsan/tests/test_runtime"
"$repo/build-tsan/tests/test_profile"
# Hardened runtime under TSan: the differential fault fuzz hammers the hook
# seam from worker threads, and the cancellation/deadline tests exercise the
# executor's watch loop against in-flight tasks.
"$repo/build-tsan/tests/test_resilience"
# Planner + pack cache under TSan: planned parallel runs race workers over
# one arena (WAR edges must serialize them) and the pack-cache concurrency
# test packs one shared weight from many threads at once.
"$repo/build-tsan/tests/test_memory_plan"
# Static race checker + folded-graph fuzz under TSan: the schedules the
# checker proves race-free (including plan-aware WAR edges) actually run
# race-free, and folded graphs stay clean across parallel engines.
"$repo/build-tsan/tests/test_dataflow"
"$repo/build-tsan/tests/test_constant_fold"
# Multi-plan cache under TSan: mixed-shape planned runs race LRU eviction,
# capacity churn, and clear() on the shared cache, and the legacy
# single-plan path races its replanner from two shapes at once.
"$repo/build-tsan/tests/test_plan_cache"
# Serving layer under TSan: the batcher thread races client submitters,
# cancellation flags, and mid-run deadline sweeps; the fuzz test runs two
# sessions sharing one GraphModule's weights and plan cache.
"$repo/build-tsan/tests/test_serving"
# Resilience-in-serving under TSan: circuit-breaker trips, half-open probes,
# retry rescues, and health rung changes all race client submitters and a
# mid-flight shutdown.
"$repo/build-tsan/tests/test_resilience_serve"
# Micro-kernel layer under TSan: sgemm/qgemm drivers share thread-local
# pack workspaces with planned parallel runs; the differential fuzz forces
# every ISA tier while rt worker threads execute strips concurrently.
# Run twice: dispatched tier, then the forced scalar fallback.
"$repo/build-tsan/tests/test_kernels"
FXCPP_KERNEL_ISA=scalar "$repo/build-tsan/tests/test_kernels"

echo "== check.sh: all suites green =="
