// Deterministic random number generation for tensor initialization and
// workload synthesis. A fixed default seed keeps tests and benchmark
// workloads reproducible across runs.
#pragma once

#include <cstdint>

namespace fxcpp::rt {

// xoshiro256** — small, fast, high-quality; plays the role torch's default
// generator plays for weight init and synthetic data in the experiments.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDF00Dull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Uniform 64-bit integer.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Standard normal via Box-Muller.
  double normal();

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi);

  // Process-wide generator used by tensor factory functions.
  static Rng& global();

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace fxcpp::rt
