#include "runtime/rng.h"

#include <cmath>

namespace fxcpp::rt {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands one seed into the four xoshiro words.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  has_spare_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  while (u == 0.0) u = uniform();
  const double v = uniform();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * 3.14159265358979323846 * v;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

std::int64_t Rng::randint(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo + 1);
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

Rng& Rng::global() {
  static Rng rng;
  return rng;
}

}  // namespace fxcpp::rt
