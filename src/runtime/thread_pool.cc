#include "runtime/thread_pool.h"

#include <atomic>
#include <memory>

namespace fxcpp::rt {

namespace {
std::atomic<int> g_num_threads{0};  // 0 = uninitialized, use hw concurrency

int default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}
}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return done_ || !tasks_.empty(); });
      if (done_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  // One pool per configured size; rebuilding on resize keeps the common case
  // (size never changes after startup) lock-free at call sites.
  static std::mutex mu;
  static std::unique_ptr<ThreadPool> pool;
  static int pool_size = -1;
  std::lock_guard<std::mutex> lock(mu);
  const int want = get_num_threads();
  if (!pool || pool_size != want) {
    pool.reset();
    pool = std::make_unique<ThreadPool>(want);
    pool_size = want;
  }
  return *pool;
}

void set_num_threads(int n) { g_num_threads.store(n < 1 ? 1 : n); }

int get_num_threads() {
  int n = g_num_threads.load();
  if (n == 0) {
    n = default_threads();
    g_num_threads.store(n);
  }
  return n;
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  const std::int64_t range = end - begin;
  const int threads = get_num_threads();
  if (threads <= 1 || range <= grain) {
    fn(begin, end);
    return;
  }
  std::int64_t chunks = (range + grain - 1) / grain;
  if (chunks > threads) chunks = threads;
  const std::int64_t chunk = (range + chunks - 1) / chunks;

  std::atomic<std::int64_t> remaining{chunks};
  std::mutex mu;
  std::condition_variable cv;

  ThreadPool& pool = ThreadPool::global();
  for (std::int64_t c = 1; c < chunks; ++c) {
    const std::int64_t b = begin + c * chunk;
    const std::int64_t e = std::min(end, b + chunk);
    pool.submit([&, b, e] {
      fn(b, e);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    });
  }
  // The caller participates in chunk 0.
  fn(begin, std::min(end, begin + chunk));
  if (remaining.fetch_sub(1) != 1) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining.load() == 0; });
  }
}

}  // namespace fxcpp::rt
