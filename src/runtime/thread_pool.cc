#include "runtime/thread_pool.h"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <utility>

namespace fxcpp::rt {

namespace {
std::atomic<int> g_num_threads{0};  // 0 = uninitialized, use hw concurrency
std::atomic<int> g_num_interop_threads{0};

int default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}
}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers < 0) num_workers = 0;
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return;
    done_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

bool ThreadPool::stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A stopped (or worker-less) pool can never pop the queue again; running
    // inline keeps submit() well-defined instead of dropping the task.
    if (!done_ && !workers_.empty()) {
      tasks_.push(std::move(fn));
      cv_.notify_one();
      return;
    }
  }
  fn();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return done_ || !tasks_.empty(); });
      if (done_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

std::shared_ptr<ThreadPool> pool_for(std::atomic<int>& knob) {
  // One pool per configured size; rebuilding on resize keeps the common case
  // (size never changes after startup) cheap at call sites. Pools are handed
  // out as shared_ptrs: on resize this cache merely drops its reference, so
  // an in-flight TaskGroup (or parallel_for) holding a handle keeps the old
  // pool — and every task queued on it — alive and draining, while new
  // handles see the new size. With no outstanding handles the drop destroys
  // the old pool immediately, which drains its queue before joining. Either
  // way a late set_num_threads()/set_num_interop_threads() takes effect
  // without ever invalidating running work (the realized-pool resize bug:
  // the old code returned bare references into a slot that reset() freed
  // underneath them).
  static std::mutex mu;
  static std::shared_ptr<ThreadPool> pools[2];
  static int pool_sizes[2] = {-1, -1};
  const int slot = &knob == &g_num_interop_threads ? 1 : 0;
  std::lock_guard<std::mutex> lock(mu);
  int want = knob.load();
  if (want == 0) {
    want = default_threads();
    knob.store(want);
  }
  if (!pools[slot] || pool_sizes[slot] != want) {
    pools[slot] = std::make_shared<ThreadPool>(want);
    pool_sizes[slot] = want;
  }
  return pools[slot];
}

}  // namespace

ThreadPool& ThreadPool::global() { return *pool_for(g_num_threads); }

ThreadPool& ThreadPool::inter_op() { return *pool_for(g_num_interop_threads); }

std::shared_ptr<ThreadPool> ThreadPool::global_handle() {
  return pool_for(g_num_threads);
}

std::shared_ptr<ThreadPool> ThreadPool::inter_op_handle() {
  return pool_for(g_num_interop_threads);
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

TaskGroup::TaskGroup(ThreadPool& pool)
    // Aliasing handle with no ownership: the caller promised the pool
    // outlives the group (locally owned pools).
    : pool_(std::shared_ptr<ThreadPool>(std::shared_ptr<void>(), &pool)),
      state_(std::make_shared<State>()) {}

TaskGroup::TaskGroup(std::shared_ptr<ThreadPool> pool)
    : pool_(std::move(pool)), state_(std::make_shared<State>()) {
  if (!pool_) throw std::invalid_argument("TaskGroup: null pool handle");
}

TaskGroup::~TaskGroup() {
  // Drain so detached tasks never touch a dead State through a dangling
  // group. An exception nobody consumed (the caller timed out and walked
  // away) goes to the abandoned-error observer when one is set; otherwise
  // it dies with the State, as wait() would have rethrown it.
  std::exception_ptr leftover;
  std::function<void(std::exception_ptr)> observer;
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->pending == 0; });
    leftover = std::exchange(state_->error, nullptr);
    observer = state_->abandoned_observer;
  }
  if (leftover && observer) observer(leftover);
}

void TaskGroup::run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->pending;
  }
  // The wrapper owns a shared_ptr to the State, so a task finishing after
  // the group's user is done waiting (destructor path) stays safe.
  pool_->submit([st = state_, f = std::move(fn)]() mutable {
    try {
      f();
    } catch (...) {
      std::lock_guard<std::mutex> lock(st->mu);
      if (!st->error) st->error = std::current_exception();
      st->failed = true;
    }
    // Drop the task closure before signalling completion: once the waiter
    // wakes it may free anything the task captured, and libstdc++'s
    // refcounted internals (exception_ptr, COW error strings) synchronize
    // through atomics TSan cannot see in the prebuilt library.
    f = nullptr;
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(st->mu);
      last = --st->pending == 0;
    }
    if (last) st->cv.notify_all();
  });
}

void TaskGroup::wait() {
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->pending == 0; });
    // Take the error out of the shared State so its final release happens
    // on this thread, never on a worker racing past the notify.
    err = std::exchange(state_->error, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

bool TaskGroup::wait_for(std::chrono::milliseconds timeout) {
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (!state_->cv.wait_for(lock, timeout,
                             [&] { return state_->pending == 0; })) {
      return false;
    }
    err = std::exchange(state_->error, nullptr);
  }
  if (err) std::rethrow_exception(err);
  return true;
}

std::exception_ptr TaskGroup::drain() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->pending == 0; });
  return std::exchange(state_->error, nullptr);
}

void TaskGroup::set_abandoned_error_observer(
    std::function<void(std::exception_ptr)> f) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->abandoned_observer = std::move(f);
}

bool TaskGroup::failed() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->failed;
}

std::size_t TaskGroup::pending() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->pending;
}

// ---------------------------------------------------------------------------
// Knobs and parallel_for
// ---------------------------------------------------------------------------

void set_num_threads(int n) { g_num_threads.store(n < 1 ? 1 : n); }

int get_num_threads() {
  int n = g_num_threads.load();
  if (n == 0) {
    n = default_threads();
    g_num_threads.store(n);
  }
  return n;
}

void set_num_interop_threads(int n) {
  g_num_interop_threads.store(n < 1 ? 1 : n);
}

int get_num_interop_threads() {
  int n = g_num_interop_threads.load();
  if (n == 0) {
    n = default_threads();
    g_num_interop_threads.store(n);
  }
  return n;
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  const std::int64_t range = end - begin;
  const int threads = get_num_threads();
  if (threads <= 1 || range <= grain) {
    fn(begin, end);
    return;
  }
  std::int64_t chunks = (range + grain - 1) / grain;
  if (chunks > threads) chunks = threads;
  const std::int64_t chunk = (range + chunks - 1) / chunks;

  std::atomic<std::int64_t> remaining{chunks};
  std::mutex mu;
  std::condition_variable cv;

  // Handle, not reference: a concurrent set_num_threads() must not destroy
  // the pool while our chunks are queued on it.
  const std::shared_ptr<ThreadPool> pool = ThreadPool::global_handle();
  for (std::int64_t c = 1; c < chunks; ++c) {
    const std::int64_t b = begin + c * chunk;
    const std::int64_t e = std::min(end, b + chunk);
    pool->submit([&, b, e] {
      fn(b, e);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    });
  }
  // The caller participates in chunk 0.
  fn(begin, std::min(end, begin + chunk));
  if (remaining.fetch_sub(1) != 1) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining.load() == 0; });
  }
}

}  // namespace fxcpp::rt
