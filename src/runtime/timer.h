// Wall-clock timing and summary statistics used by the benchmark harnesses
// to report the mean/stdev rows of the paper's Appendices B-D.
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <vector>

namespace fxcpp::rt {

// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  // Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Mean / sample-standard-deviation summary of repeated trials, matching the
// "Runtime / stdev" columns of the paper's numeric appendices.
struct TrialStats {
  double mean = 0.0;
  double stdev = 0.0;
  std::size_t n = 0;
};

inline TrialStats summarize(const std::vector<double>& samples) {
  TrialStats s;
  s.n = samples.size();
  if (s.n == 0) return s;
  double sum = 0.0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double acc = 0.0;
    for (double x : samples) acc += (x - s.mean) * (x - s.mean);
    s.stdev = std::sqrt(acc / static_cast<double>(s.n - 1));
  }
  return s;
}

}  // namespace fxcpp::rt
