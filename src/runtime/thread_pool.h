// Parallelism runtime: intra-op and inter-op thread pools.
//
// Mirrors the split PyTorch makes between ATen's *intra-op* pool (tensor
// kernels call parallel_for(); the global thread-count knob plays the role
// of OMP_NUM_THREADS in the paper's Conv-BN fusion experiment, Appendix C)
// and the *inter-op* pool used to overlap independent graph nodes
// (Section 6.2.3's "overlapping independent work" production pattern).
// Keeping them separate is what makes nesting deadlock-free: an inter-op
// task may block inside parallel_for() waiting on intra-op chunks, but
// intra-op chunks never wait on inter-op work.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fxcpp::rt {

// A fixed-size worker pool executing submitted closures.
//
// The pools are lazily constructed on first use via ThreadPool::global() /
// ThreadPool::inter_op() and resized when set_num_threads() /
// set_num_interop_threads() change the configured parallelism.
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of worker threads (not counting the caller).
  int size() const { return static_cast<int>(workers_.size()); }

  // Schedule `fn` on a worker. Never blocks on task completion. If the pool
  // has been stopped (or was built with zero workers) `fn` runs inline on
  // the calling thread instead — submitted work is never silently dropped.
  void submit(std::function<void()> fn);

  // Drain every queued task, then join the workers. Idempotent; the
  // destructor calls it. Tasks queued before stop() still run on workers;
  // submissions that race with or follow stop() run inline on the caller.
  void stop();
  bool stopped() const;

  // Process-wide intra-op pool sized to the current set_num_threads() knob.
  // The returned reference is valid only until the next resize; callers that
  // hold the pool across a possible set_num_threads() call (or submit work a
  // concurrent resize could race) must use global_handle() instead.
  static ThreadPool& global();
  // Process-wide inter-op pool (graph-level parallelism) sized to the
  // current set_num_interop_threads() knob. Same lifetime caveat as
  // global(); prefer inter_op_handle() for anything longer than a call.
  static ThreadPool& inter_op();

  // Owning handles to the process-wide pools. A late set_num_threads() /
  // set_num_interop_threads() call takes effect on the *next* handle (a new
  // pool of the new size is built); pools already handed out stay alive —
  // and keep executing their queued work — until the last handle drops, so
  // a resize can never invalidate in-flight TaskGroups. This is the safe
  // answer to "the knob changed after the pool was realized": new work sees
  // the new size, old work drains on the old pool.
  static std::shared_ptr<ThreadPool> global_handle();
  static std::shared_ptr<ThreadPool> inter_op_handle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

// A waitable batch of tasks on a ThreadPool. submit() alone is
// fire-and-forget; TaskGroup adds the completion signal the inter-op graph
// executor needs: run() schedules a task, wait() blocks until every task
// scheduled so far (including ones scheduled *by* running tasks — the
// executor spawns successors from inside workers) has finished, rethrowing
// the first exception any task raised.
//
// Tasks may call run() on their own group; wait() returns only when the
// pending count reaches zero. The group must stay alive until wait()
// returns (the destructor waits, swallowing errors). If the pool is
// stopped or destroyed mid-flight, already-queued tasks still run (the
// pool drains before joining) and later run() calls execute inline, so
// wait() never deadlocks.
// Post-deadline completion contract (what a wait_for() timeout means):
// a false return abandons nothing. The timed-out tasks keep running; their
// results/exceptions stay observable through exactly one of
//   - a later wait() / wait_for() (rethrows a captured exception),
//   - drain() (blocks until quiescent, *returns* the exception), or
//   - the destructor, which waits for quiescence and hands any still-
//     unconsumed exception to the abandoned-error observer (if set) instead
//     of dropping it.
// The serving batcher keys off this: it answers expired requests early but
// keeps polling wait_for() until the batch quiesces, so a late kernel
// failure is always seen, counted, and never lost.
class TaskGroup {
 public:
  // Non-owning: the caller guarantees `pool` outlives the group (the idiom
  // for locally owned pools, e.g. the ParallelExecutor's private pool).
  explicit TaskGroup(ThreadPool& pool);
  // Owning: pins the pool for the group's lifetime. Required with the
  // process-wide pools (ThreadPool::inter_op_handle()), whose current
  // instance can be swapped out by a concurrent thread-count resize.
  explicit TaskGroup(std::shared_ptr<ThreadPool> pool);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Schedule `fn` as part of this group.
  void run(std::function<void()> fn);

  // Block until all tasks complete; rethrow the first captured exception
  // (consuming it — a later wait() on the quiesced group returns clean).
  void wait();

  // Bounded wait: true when the group quiesced within `timeout` (consuming
  // and rethrowing a captured exception exactly like wait()), false on
  // timeout with tasks still pending. The polling loop the ParallelExecutor
  // and the serving batcher build their cancellation/deadline watches on.
  bool wait_for(std::chrono::milliseconds timeout);

  // Block until the group quiesces and return (consuming, not throwing) the
  // first captured exception, or nullptr when every task succeeded. The
  // post-timeout drain: after wait_for() returned false and the caller has
  // already answered its clients, drain() is how a late exception is
  // observed rather than dropped.
  std::exception_ptr drain();

  // Observer for exceptions still unconsumed when the group is destroyed
  // (the caller timed out and never called wait()/drain()). Invoked at most
  // once, from the destructor, after quiescence. Without an observer such
  // an exception dies with the group (the pre-existing behavior).
  void set_abandoned_error_observer(std::function<void(std::exception_ptr)> f);

  // True once any task has thrown (long fan-outs can bail early).
  bool failed() const;

  // Tasks scheduled but not yet finished (snapshot; for tests/diagnostics).
  std::size_t pending() const;

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;
    std::exception_ptr error;
    bool failed = false;  // sticky: survives wait() consuming `error`
    std::function<void(std::exception_ptr)> abandoned_observer;
  };
  std::shared_ptr<ThreadPool> pool_;  // null deleter when built from a ref
  std::shared_ptr<State> state_;
};

// Set the number of threads used by parallel tensor kernels. `n >= 1`.
// n == 1 disables the pool entirely (kernels run inline on the caller),
// reproducing the paper's OMP_NUM_THREADS=1 configuration.
void set_num_threads(int n);

// Current intra-op thread setting (defaults to hardware_concurrency).
int get_num_threads();

// Inter-op (graph-level) parallelism knob, `n >= 1`. Defaults to
// hardware_concurrency; independent of the intra-op setting, like
// torch.set_num_interop_threads. Unlike its torch namesake, a late call —
// after the pool has been realized — is not ignored: the next
// ThreadPool::inter_op()/inter_op_handle() serves a pool of the new size,
// while handles to the old pool stay valid until released.
void set_num_interop_threads(int n);
int get_num_interop_threads();

// Run fn(begin, end) over [begin, end) split into roughly equal chunks of at
// least `grain` iterations, using the intra-op pool. Blocks until all chunks
// complete. With one thread configured (or a tiny range) runs inline.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace fxcpp::rt
