// Intra-op parallelism runtime.
//
// Mirrors the role of ATen's intra-op thread pool in PyTorch: tensor kernels
// call parallel_for() and the global thread-count knob plays the role of
// OMP_NUM_THREADS in the paper's Conv-BN fusion experiment (Appendix C,
// "Threaded" vs "Unthreaded" rows).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fxcpp::rt {

// A fixed-size worker pool executing submitted closures.
//
// The pool is lazily constructed on first use via ThreadPool::global() and
// resized when set_num_threads() changes the configured parallelism.
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of worker threads (not counting the caller).
  int size() const { return static_cast<int>(workers_.size()); }

  // Schedule `fn` on a worker. Never blocks on task completion.
  void submit(std::function<void()> fn);

  // Process-wide pool sized to the current intra-op thread setting.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

// Set the number of threads used by parallel tensor kernels. `n >= 1`.
// n == 1 disables the pool entirely (kernels run inline on the caller),
// reproducing the paper's OMP_NUM_THREADS=1 configuration.
void set_num_threads(int n);

// Current intra-op thread setting (defaults to hardware_concurrency).
int get_num_threads();

// Run fn(begin, end) over [begin, end) split into roughly equal chunks of at
// least `grain` iterations, using the intra-op pool. Blocks until all chunks
// complete. With one thread configured (or a tiny range) runs inline.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace fxcpp::rt
