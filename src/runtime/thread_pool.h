// Parallelism runtime: intra-op and inter-op thread pools.
//
// Mirrors the split PyTorch makes between ATen's *intra-op* pool (tensor
// kernels call parallel_for(); the global thread-count knob plays the role
// of OMP_NUM_THREADS in the paper's Conv-BN fusion experiment, Appendix C)
// and the *inter-op* pool used to overlap independent graph nodes
// (Section 6.2.3's "overlapping independent work" production pattern).
// Keeping them separate is what makes nesting deadlock-free: an inter-op
// task may block inside parallel_for() waiting on intra-op chunks, but
// intra-op chunks never wait on inter-op work.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fxcpp::rt {

// A fixed-size worker pool executing submitted closures.
//
// The pools are lazily constructed on first use via ThreadPool::global() /
// ThreadPool::inter_op() and resized when set_num_threads() /
// set_num_interop_threads() change the configured parallelism.
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of worker threads (not counting the caller).
  int size() const { return static_cast<int>(workers_.size()); }

  // Schedule `fn` on a worker. Never blocks on task completion. If the pool
  // has been stopped (or was built with zero workers) `fn` runs inline on
  // the calling thread instead — submitted work is never silently dropped.
  void submit(std::function<void()> fn);

  // Drain every queued task, then join the workers. Idempotent; the
  // destructor calls it. Tasks queued before stop() still run on workers;
  // submissions that race with or follow stop() run inline on the caller.
  void stop();
  bool stopped() const;

  // Process-wide intra-op pool sized to the current set_num_threads() knob.
  static ThreadPool& global();
  // Process-wide inter-op pool (graph-level parallelism) sized to the
  // current set_num_interop_threads() knob.
  static ThreadPool& inter_op();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

// A waitable batch of tasks on a ThreadPool. submit() alone is
// fire-and-forget; TaskGroup adds the completion signal the inter-op graph
// executor needs: run() schedules a task, wait() blocks until every task
// scheduled so far (including ones scheduled *by* running tasks — the
// executor spawns successors from inside workers) has finished, rethrowing
// the first exception any task raised.
//
// Tasks may call run() on their own group; wait() returns only when the
// pending count reaches zero. The group must stay alive until wait()
// returns (the destructor waits, swallowing errors). If the pool is
// stopped or destroyed mid-flight, already-queued tasks still run (the
// pool drains before joining) and later run() calls execute inline, so
// wait() never deadlocks.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Schedule `fn` as part of this group.
  void run(std::function<void()> fn);

  // Block until all tasks complete; rethrow the first captured exception
  // (consuming it — a later wait() on the quiesced group returns clean).
  void wait();

  // Bounded wait: true when the group quiesced within `timeout` (consuming
  // and rethrowing a captured exception exactly like wait()), false on
  // timeout with tasks still pending. The polling loop the ParallelExecutor
  // builds its cancellation/deadline watch on.
  bool wait_for(std::chrono::milliseconds timeout);

  // True once any task has thrown (long fan-outs can bail early).
  bool failed() const;

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;
    std::exception_ptr error;
    bool failed = false;  // sticky: survives wait() consuming `error`
  };
  ThreadPool& pool_;
  std::shared_ptr<State> state_;
};

// Set the number of threads used by parallel tensor kernels. `n >= 1`.
// n == 1 disables the pool entirely (kernels run inline on the caller),
// reproducing the paper's OMP_NUM_THREADS=1 configuration.
void set_num_threads(int n);

// Current intra-op thread setting (defaults to hardware_concurrency).
int get_num_threads();

// Inter-op (graph-level) parallelism knob, `n >= 1`. Defaults to
// hardware_concurrency; independent of the intra-op setting, like
// torch.set_num_interop_threads.
void set_num_interop_threads(int n);
int get_num_interop_threads();

// Run fn(begin, end) over [begin, end) split into roughly equal chunks of at
// least `grain` iterations, using the intra-op pool. Blocks until all chunks
// complete. With one thread configured (or a tiny range) runs inline.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace fxcpp::rt
