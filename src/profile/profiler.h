// Profiler — per-node performance attribution over the fx IR, the paper's
// flagship Interpreter use case (Section 6.3's drop-in profiler) grown into
// a subsystem: one observer (core/exec_hooks.h) instruments all three
// execution engines — Interpreter::run, the compiled tape, and the inter-op
// ParallelExecutor — and reports
//
//   * wall time and call counts per node (self time; the IR has no nesting),
//   * achieved FLOP/s and bytes against the passes::flops cost model joined
//     through ShapeProp meta (roofline ratio vs CostReport::estimate_seconds),
//   * allocator traffic via the thread-safe counters in tensor/Storage
//     (live bytes, high-water mark, cumulative allocation volume).
//
// Three views:
//   text_report()      — aggregated top-k by self time, roofline ratios
//   chrome_trace_json()— chrome://tracing / Perfetto trace, one lane per
//                        executing thread (inter-op workers get own lanes)
//   summary_json()     — machine-readable; consumed by bench_profile and
//                        the examples/fxprof CLI
//
// Profiling is observation-only: profiled runs are bit-identical to
// unprofiled runs on every engine (pinned by tests/test_profile.cc).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/exec_hooks.h"
#include "core/graph_module.h"
#include "passes/flops.h"

namespace fxcpp::profile {

struct ProfileOptions {
  // Join passes::estimate_cost (running ShapeProp on the profiled inputs if
  // meta is missing) so the report can show achieved vs theoretical rates.
  bool with_cost_model = true;
  // Roofline device model used for the est-seconds column (defaults match
  // the modest single-core container this reproduction targets).
  double flops_per_sec = 5e9;
  double bytes_per_sec = 10e9;
  // Read tensor/Storage allocator counters around each node. Per-node
  // attribution is only meaningful on the serial engines (the run_parallel
  // wrapper disables it; run-level live/peak stays on).
  bool track_memory = true;
};

// Aggregated per-node record (summed over calls and runs).
struct NodeProfile {
  const fx::Node* node = nullptr;
  std::string name;
  std::string op;      // opcode_name
  std::string target;
  std::size_t calls = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;      // slowest single call
  double out_bytes = 0.0;        // actual output bytes (last observed call)
  std::int64_t alloc_bytes = 0;  // summed allocator live delta (serial only)

  // Cost-model join; zeros with measured=false mean "unmeasured", not free.
  bool measured = false;
  double flops = 0.0;        // per call
  double bytes = 0.0;        // per call, read + written
  double est_seconds = 0.0;  // roofline estimate per call

  // Achieved compute rate: flops * calls / total_seconds (0 if unmeasured).
  double achieved_flops_per_sec() const;
  // Measured / roofline-predicted time; > 1 means slower than the device
  // model predicts (0 if unmeasured or immeasurably fast).
  double roofline_ratio() const;
};

// One completed node execution (a chrome-trace "X" slice).
struct TraceEvent {
  const fx::Node* node = nullptr;
  int lane = 0;           // per-thread lane, first-seen order; 0 = caller
  double start_us = 0.0;  // relative to the profiler's epoch
  double dur_us = 0.0;
};

struct MemoryStats {
  std::int64_t live_before = 0;  // live bytes entering the first run
  std::int64_t live_after = 0;   // live bytes after the last run
  std::int64_t peak = 0;         // high-water mark across runs
  std::int64_t traffic = 0;      // cumulative bytes allocated during runs
  std::int64_t allocations = 0;  // cumulative allocation count during runs
};

class Profiler : public fx::ExecHooks {
 public:
  explicit Profiler(fx::GraphModule& gm, ProfileOptions opts = {});

  // Profiled execution, one call per engine. Results are bit-identical to
  // the corresponding unprofiled engine. Multiple runs (and mixed engines)
  // accumulate into the same aggregate; reset() starts over.
  fx::RtValue run_interpreter(std::vector<fx::RtValue> inputs);
  std::vector<fx::RtValue> run_tape(std::vector<fx::RtValue> inputs);
  std::vector<fx::RtValue> run_parallel(std::vector<fx::RtValue> inputs,
                                        int num_threads = 0);

  // ExecHooks implementation (thread-safe) — engines call these; attach
  // `this` to any future engine via its hooks seam to profile it too.
  void on_run_begin(std::size_t num_nodes) override;
  void on_node_begin(const fx::Node& n) override;
  void on_node_end(const fx::Node& n, const fx::RtValue& out) override;
  void on_run_end() override;

  void reset();

  // --- results ---------------------------------------------------------
  // Aggregates sorted by total self time, descending.
  std::vector<NodeProfile> node_profiles() const;
  const std::vector<TraceEvent>& events() const { return events_; }
  const MemoryStats& memory() const { return mem_; }
  std::size_t runs() const { return runs_; }
  double wall_seconds() const { return wall_seconds_; }
  // Sum of per-node self times across all runs (compare with wall_seconds
  // to see instrumentation coverage / parallel overlap).
  double node_seconds() const;
  int num_lanes() const;

  // --- views -----------------------------------------------------------
  std::string text_report(std::size_t top_k = 20) const;
  std::string chrome_trace_json() const;
  std::string summary_json() const;

 private:
  struct OpenSlot {
    const fx::Node* node = nullptr;
    int lane = 0;
    std::chrono::steady_clock::time_point start;
    std::int64_t live_before = 0;
  };

  void ensure_cost_model(const std::vector<fx::RtValue>& inputs);
  int lane_of_locked(std::thread::id tid);
  double us_since_epoch(std::chrono::steady_clock::time_point tp) const;

  fx::GraphModule& gm_;
  ProfileOptions opts_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::unordered_map<std::thread::id, int> lanes_;
  std::unordered_map<std::thread::id, OpenSlot> open_;
  std::unordered_map<const fx::Node*, NodeProfile> agg_;
  std::vector<const fx::Node*> first_seen_;
  std::vector<TraceEvent> events_;

  // Cost-model join, built lazily on the first profiled run.
  bool cost_ready_ = false;
  std::unordered_map<const fx::Node*, passes::NodeCost> costs_;

  // Run bookkeeping (the engines' hook contract brackets runs serially).
  std::size_t runs_ = 0;
  double wall_seconds_ = 0.0;
  std::chrono::steady_clock::time_point run_start_;
  std::int64_t run_alloc_before_ = 0;
  std::int64_t run_alloc_count_before_ = 0;
  bool per_node_memory_ = true;  // cleared during run_parallel
  MemoryStats mem_;
};

}  // namespace fxcpp::profile
