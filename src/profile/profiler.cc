#include "profile/profiler.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "core/interpreter.h"
#include "core/parallel_executor.h"
#include "core/plan_cache.h"
#include "kernels/dispatch.h"
#include "tensor/pack_cache.h"

namespace fxcpp::profile {

namespace {

double bytes_of(const fx::RtValue& v) {
  if (fx::rt_is_tensor(v)) {
    const Tensor& t = fx::rt_tensor(v);
    return static_cast<double>(t.numel()) *
           static_cast<double>(dtype_size(t.dtype()));
  }
  if (std::holds_alternative<std::vector<Tensor>>(v)) {
    double sum = 0.0;
    for (const Tensor& t : std::get<std::vector<Tensor>>(v)) {
      sum += static_cast<double>(t.numel()) *
             static_cast<double>(dtype_size(t.dtype()));
    }
    return sum;
  }
  return 0.0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_bytes(double b) {
  char buf[64];
  if (b >= 1e9) std::snprintf(buf, sizeof(buf), "%.2f GB", b / 1e9);
  else if (b >= 1e6) std::snprintf(buf, sizeof(buf), "%.2f MB", b / 1e6);
  else if (b >= 1e3) std::snprintf(buf, sizeof(buf), "%.2f KB", b / 1e3);
  else std::snprintf(buf, sizeof(buf), "%.0f B", b);
  return buf;
}

}  // namespace

double NodeProfile::achieved_flops_per_sec() const {
  if (!measured || total_seconds <= 0.0) return 0.0;
  return flops * static_cast<double>(calls) / total_seconds;
}

double NodeProfile::roofline_ratio() const {
  if (!measured || est_seconds <= 0.0 || calls == 0) return 0.0;
  return (total_seconds / static_cast<double>(calls)) / est_seconds;
}

Profiler::Profiler(fx::GraphModule& gm, ProfileOptions opts)
    : gm_(gm), opts_(opts), epoch_(std::chrono::steady_clock::now()) {}

double Profiler::us_since_epoch(
    std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double, std::micro>(tp - epoch_).count();
}

int Profiler::lane_of_locked(std::thread::id tid) {
  auto it = lanes_.find(tid);
  if (it != lanes_.end()) return it->second;
  const int lane = static_cast<int>(lanes_.size());
  lanes_.emplace(tid, lane);
  return lane;
}

void Profiler::ensure_cost_model(const std::vector<fx::RtValue>& inputs) {
  if (!opts_.with_cost_model || cost_ready_) return;
  cost_ready_ = true;  // one attempt, even if it fails
  passes::CostReport report;
  std::vector<Tensor> ts;
  bool all_tensor = !inputs.empty();
  for (const auto& v : inputs) {
    if (!fx::rt_is_tensor(v)) {
      all_tensor = false;
      break;
    }
    ts.push_back(fx::rt_tensor(v));
  }
  try {
    // The Tensor-input overload re-runs ShapeProp when meta is missing
    // (e.g. invalidated by a transform), so fresh graphs still get costed.
    report = all_tensor
                 ? passes::estimate_cost(gm_, ts)
                 : passes::estimate_cost(
                       static_cast<const fx::GraphModule&>(gm_));
  } catch (const std::exception&) {
    return;  // best-effort: time/memory profiling works without a cost model
  }
  for (const auto& c : report.per_node) costs_[c.node] = c;
}

fx::RtValue Profiler::run_interpreter(std::vector<fx::RtValue> inputs) {
  ensure_cost_model(inputs);
  per_node_memory_ = opts_.track_memory;
  fx::Interpreter interp(gm_);
  interp.set_hooks(this);
  return interp.run(std::move(inputs));
}

std::vector<fx::RtValue> Profiler::run_tape(std::vector<fx::RtValue> inputs) {
  ensure_cost_model(inputs);
  per_node_memory_ = opts_.track_memory;
  if (!gm_.compiled()) gm_.recompile();
  return gm_.compiled_graph().run(std::move(inputs), this);
}

std::vector<fx::RtValue> Profiler::run_parallel(
    std::vector<fx::RtValue> inputs, int num_threads) {
  ensure_cost_model(inputs);
  // Per-node allocator deltas are thread-local reads of a global counter —
  // meaningless under concurrency, so only run-level memory stays on.
  per_node_memory_ = false;
  fx::ExecutorOptions opts;
  opts.num_threads = num_threads;
  opts.hooks = this;
  fx::ParallelExecutor ex(gm_, opts);
  return ex.run(std::move(inputs));
}

void Profiler::on_run_begin(std::size_t num_nodes) {
  (void)num_nodes;
  std::lock_guard<std::mutex> lock(mu_);
  run_start_ = std::chrono::steady_clock::now();
  if (opts_.track_memory) {
    if (runs_ == 0) mem_.live_before = Storage::live_bytes();
    Storage::reset_peak();
    run_alloc_before_ = Storage::total_allocated_bytes();
    run_alloc_count_before_ = Storage::allocation_count();
  }
}

void Profiler::on_node_begin(const fx::Node& n) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  OpenSlot slot;
  slot.node = &n;
  slot.lane = lane_of_locked(std::this_thread::get_id());
  slot.start = now;
  if (per_node_memory_) slot.live_before = Storage::live_bytes();
  open_[std::this_thread::get_id()] = slot;
}

void Profiler::on_node_end(const fx::Node& n, const fx::RtValue& out) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(std::this_thread::get_id());
  if (it == open_.end() || it->second.node != &n) return;  // unmatched begin
  const OpenSlot slot = it->second;
  open_.erase(it);

  TraceEvent ev;
  ev.node = &n;
  ev.lane = slot.lane;
  ev.start_us = us_since_epoch(slot.start);
  ev.dur_us = std::chrono::duration<double, std::micro>(now - slot.start)
                  .count();
  events_.push_back(ev);

  auto [ait, inserted] = agg_.try_emplace(&n);
  NodeProfile& p = ait->second;
  if (inserted) {
    p.node = &n;
    p.name = n.name();
    p.op = fx::opcode_name(n.op());
    p.target = n.target();
    first_seen_.push_back(&n);
  }
  ++p.calls;
  const double secs = ev.dur_us * 1e-6;
  p.total_seconds += secs;
  p.max_seconds = std::max(p.max_seconds, secs);
  p.out_bytes = bytes_of(out);
  if (per_node_memory_) {
    p.alloc_bytes += Storage::live_bytes() - slot.live_before;
  }
}

void Profiler::on_run_end() {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  ++runs_;
  wall_seconds_ +=
      std::chrono::duration<double>(now - run_start_).count();
  if (opts_.track_memory) {
    mem_.live_after = Storage::live_bytes();
    mem_.peak = std::max(mem_.peak, Storage::peak_bytes());
    mem_.traffic += Storage::total_allocated_bytes() - run_alloc_before_;
    mem_.allocations += Storage::allocation_count() - run_alloc_count_before_;
  }
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  lanes_.clear();
  open_.clear();
  agg_.clear();
  first_seen_.clear();
  events_.clear();
  runs_ = 0;
  wall_seconds_ = 0.0;
  mem_ = MemoryStats{};
  epoch_ = std::chrono::steady_clock::now();
}

std::vector<NodeProfile> Profiler::node_profiles() const {
  std::vector<NodeProfile> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(first_seen_.size());
    for (const fx::Node* n : first_seen_) out.push_back(agg_.at(n));
  }
  for (NodeProfile& p : out) {
    auto it = costs_.find(p.node);
    if (it == costs_.end()) continue;
    const passes::NodeCost& c = it->second;
    p.measured = c.measured;
    p.flops = c.flops;
    p.bytes = c.bytes_read + c.bytes_written;
    p.est_seconds = std::max(c.flops / opts_.flops_per_sec,
                             (c.bytes_read + c.bytes_written) /
                                 opts_.bytes_per_sec);
  }
  std::sort(out.begin(), out.end(),
            [](const NodeProfile& a, const NodeProfile& b) {
              if (a.total_seconds != b.total_seconds) {
                return a.total_seconds > b.total_seconds;
              }
              return a.name < b.name;
            });
  return out;
}

double Profiler::node_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double sum = 0.0;
  for (const auto& [n, p] : agg_) sum += p.total_seconds;
  return sum;
}

int Profiler::num_lanes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(lanes_.size());
}

std::string Profiler::text_report(std::size_t top_k) const {
  const std::vector<NodeProfile> nodes = node_profiles();
  const double node_s = node_seconds();
  std::size_t measured = 0;
  for (const auto& p : nodes) measured += p.measured ? 1 : 0;

  std::ostringstream os;
  os << "== fxprof: " << nodes.size() << " nodes, " << runs_ << " run(s), "
     << num_lanes() << " lane(s) ==\n";
  os << std::fixed;
  os << "wall time  : " << std::setprecision(3) << wall_seconds_ * 1e3
     << " ms (hooked node time " << node_s * 1e3 << " ms";
  if (wall_seconds_ > 0.0) {
    os << ", " << std::setprecision(1) << 100.0 * node_s / wall_seconds_
       << "%";
  }
  os << ")\n";
  os << "allocator  : live " << fmt_bytes(static_cast<double>(mem_.live_before))
     << " -> " << fmt_bytes(static_cast<double>(mem_.live_after))
     << ", high-water " << fmt_bytes(static_cast<double>(mem_.peak))
     << ", traffic " << fmt_bytes(static_cast<double>(mem_.traffic)) << " in "
     << mem_.allocations << " allocation(s)\n";
  os << "cost model : " << measured << "/" << nodes.size()
     << " nodes measured (device " << std::setprecision(1)
     << opts_.flops_per_sec / 1e9 << " GFLOP/s, " << opts_.bytes_per_sec / 1e9
     << " GB/s)\n\n";

  os << std::left << std::setw(28) << "node" << std::setw(15) << "op"
     << std::right << std::setw(6) << "calls" << std::setw(12) << "total ms"
     << std::setw(7) << "%" << std::setw(10) << "gflops" << std::setw(11)
     << "achv GF/s" << std::setw(11) << "roofline x" << "\n";
  std::size_t shown = 0;
  for (const auto& p : nodes) {
    if (shown++ >= top_k) break;
    os << std::left << std::setw(28) << p.name << std::setw(15) << p.op
       << std::right << std::setw(6) << p.calls << std::setw(12)
       << std::setprecision(3) << p.total_seconds * 1e3 << std::setw(7)
       << std::setprecision(1)
       << (node_s > 0.0 ? 100.0 * p.total_seconds / node_s : 0.0);
    if (p.measured) {
      os << std::setw(10) << std::setprecision(3) << p.flops / 1e9
         << std::setw(11) << std::setprecision(2)
         << p.achieved_flops_per_sec() / 1e9 << std::setw(11)
         << std::setprecision(2) << p.roofline_ratio();
    } else {
      os << std::setw(10) << "-" << std::setw(11) << "-" << std::setw(11)
         << "unmeasured";
    }
    os << "\n";
  }
  if (nodes.size() > top_k) {
    os << "(top " << top_k << " of " << nodes.size() << " by self time)\n";
  }
  return os.str();
}

std::string Profiler::chrome_trace_json() const {
  std::vector<TraceEvent> events;
  int lanes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    lanes = static_cast<int>(lanes_.size());
  }
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (int lane = 0; lane < lanes; ++lane) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << lane
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \"lane " << lane
       << (lane == 0 ? " (caller)" : " (worker)") << "\"}}";
  }
  os.precision(3);
  os << std::fixed;
  for (const TraceEvent& ev : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << ev.lane
       << ", \"ts\": " << ev.start_us << ", \"dur\": " << ev.dur_us
       << ", \"name\": \"" << json_escape(ev.node->name())
       << "\", \"cat\": \"" << fx::opcode_name(ev.node->op())
       << "\", \"args\": {\"target\": \"" << json_escape(ev.node->target())
       << "\"}}";
  }
  os << "\n]}\n";
  return os.str();
}

std::string Profiler::summary_json() const {
  const std::vector<NodeProfile> nodes = node_profiles();
  std::ostringstream os;
  os.precision(9);
  os << "{\n";
  os << "  \"runs\": " << runs_ << ",\n";
  os << "  \"lanes\": " << num_lanes() << ",\n";
  os << "  \"wall_seconds\": " << wall_seconds_ << ",\n";
  os << "  \"node_seconds\": " << node_seconds() << ",\n";
  os << "  \"memory\": {\"live_before\": " << mem_.live_before
     << ", \"live_after\": " << mem_.live_after << ", \"peak\": " << mem_.peak
     << ", \"traffic\": " << mem_.traffic
     << ", \"allocations\": " << mem_.allocations << "},\n";
  if (const std::shared_ptr<fx::PlanCache> cache = gm_.plan_cache()) {
    // Hit/miss/evict/replan accounting of the module's multi-plan cache
    // (core/plan_cache.h) — present only when compile_planned attached one.
    os << "  \"plan_cache\": " << cache->stats().to_json() << ",\n";
  }
  {
    // Which SIMD tier the micro-kernel layer dispatched to, plus
    // process-wide pack/panel cache accounting (tensor/pack_cache.h).
    const PackCache::GlobalStats ks = PackCache::global_stats();
    os << "  \"kernels\": {\"isa\": \""
       << kernels::isa_name(kernels::active_isa())
       << "\", \"pack_hits\": " << ks.hits << ", \"pack_misses\": " << ks.misses
       << ", \"panel_hits\": " << ks.panel_hits
       << ", \"panel_misses\": " << ks.panel_misses << "},\n";
  }
  os << "  \"nodes\": [";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeProfile& p = nodes[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(p.name)
       << "\", \"op\": \"" << p.op << "\", \"target\": \""
       << json_escape(p.target) << "\", \"calls\": " << p.calls
       << ", \"total_seconds\": " << p.total_seconds
       << ", \"out_bytes\": " << p.out_bytes
       << ", \"alloc_bytes\": " << p.alloc_bytes
       << ", \"measured\": " << (p.measured ? "true" : "false")
       << ", \"flops\": " << p.flops << ", \"bytes\": " << p.bytes
       << ", \"est_seconds\": " << p.est_seconds << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace fxcpp::profile
