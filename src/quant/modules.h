// Quantized leaf modules — the int8 counterparts convert() swaps in for
// float layers, holding prepacked weights and output quantization
// parameters (the FBGEMM-backed torch.nn.quantized modules of the paper's
// evaluation).
#pragma once

#include <memory>

#include "core/module.h"
#include "nn/layers.h"
#include "tensor/quantized.h"

namespace fxcpp::quant {

// int8 x -> int8 y linear layer with prepacked symmetric int8 weights.
class QuantizedLinear : public nn::Module {
 public:
  QuantizedLinear(const nn::Linear& src, QParams out_qparams,
                  bool per_channel = true);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
  const QParams& out_qparams() const { return out_q_; }

 private:
  ops::PackedLinearWeight packed_;
  QParams out_q_;
};

// int8 NCHW convolution with prepacked weights.
class QuantizedConv2d : public nn::Module {
 public:
  QuantizedConv2d(const nn::Conv2d& src, QParams out_qparams);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;

 private:
  ops::PackedConvWeight packed_;
  QParams out_q_;
};

// int8 elementwise activation evaluated through a 256-entry lookup table
// (SELU/GELU/sigmoid/tanh under quantized numerics).
class QuantizedUnary : public nn::Module {
 public:
  QuantizedUnary(std::string op_name, float (*f)(float), QParams out_qparams);
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
  const std::string& op_name() const { return op_; }

 private:
  std::string op_;
  float (*f_)(float);
  QParams out_q_;
};

}  // namespace fxcpp::quant
