// Observers — phase (1) of the paper's Post-Training Quantization procedure
// (Section 6.2.1): "instruments the program with 'observer' objects that
// record statistical information about the floating-point values contained
// in Tensor values at various points in the program."
#pragma once

#include <limits>
#include <memory>

#include "core/module.h"
#include "tensor/quantized.h"

namespace fxcpp::quant {

// Identity module recording the min/max of everything flowing through it.
// Inserted as call_module Nodes by prepare(); read back by convert().
class Observer : public nn::Module {
 public:
  Observer() : nn::Module("Observer", /*builtin=*/true) {}

  fx::Value forward(const std::vector<fx::Value>& inputs) override;

  bool observed() const { return observed_; }
  double min_val() const { return min_; }
  double max_val() const { return max_; }

  // Affine activation parameters covering the observed range.
  QParams qparams() const;

 protected:
  void observe(const Tensor& t);

 private:
  bool observed_ = false;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// "Fake quantize" observer for Quantization-Aware Training (the paper's
// phase-1/2 analog with QAT): records statistics AND snaps values to their
// quantized grid so training sees quantized numerics.
class FakeQuantObserver : public Observer {
 public:
  FakeQuantObserver() { /* kind stays Observer-compatible */ }
  fx::Value forward(const std::vector<fx::Value>& inputs) override;
};

// Exponential-moving-average min/max observer — smooths batch-to-batch
// range noise during QAT-style calibration (torch.ao's
// MovingAverageMinMaxObserver).
class MovingAverageObserver : public Observer {
 public:
  explicit MovingAverageObserver(double momentum = 0.1)
      : momentum_(momentum) {}

  fx::Value forward(const std::vector<fx::Value>& inputs) override;
  QParams qparams_ema() const;
  double ema_min() const { return ema_min_; }
  double ema_max() const { return ema_max_; }

 private:
  double momentum_;
  double ema_min_ = 0.0, ema_max_ = 0.0;
  bool ema_init_ = false;
};

// Histogram observer: accumulates a fixed-bin histogram of observed values
// (rebinned when the range grows) and picks quantization parameters from
// percentiles instead of the raw min/max — robust to activation outliers,
// like torch.ao's HistogramObserver.
class HistogramObserver : public Observer {
 public:
  explicit HistogramObserver(double lo_pct = 0.001, double hi_pct = 0.999,
                             int bins = 512);

  fx::Value forward(const std::vector<fx::Value>& inputs) override;

  // Percentile-clipped parameters (falls back to min/max until data seen).
  QParams qparams_percentile() const;

 private:
  void add_histogram(const Tensor& t);

  double lo_pct_, hi_pct_;
  std::vector<double> counts_;
  double h_lo_ = 0.0, h_hi_ = 0.0;
  bool h_init_ = false;
};

}  // namespace fxcpp::quant
