// FX Graph Mode Quantization — the paper's Section 6.2.1 workflow:
//
//   1. prepare():  instrument the traced graph with observers
//   2. calibrate(): feed batches to populate them
//   3. convert():  fold statistics into scales/zero-points, swap float
//                  modules for int8 ones, insert quantize/dequantize at the
//                  float/int8 boundaries
//
// "Quantization makes use of torch.fx's Graph and GraphModule to
// simultaneously modify the program code and weight values" — convert()
// does exactly that: graph rewrite + module-hierarchy surgery in one pass.
#pragma once

#include <memory>
#include <vector>

#include "core/graph_module.h"
#include "core/tracer.h"
#include "quant/observer.h"

namespace fxcpp::quant {

struct QConfig {
  // Use fake-quantize observers (QAT numerics during calibration).
  bool fake_quant = false;
  // Per-channel (per output row) weight scales for Linear layers — the
  // FBGEMM default; per-tensor otherwise.
  bool per_channel_weights = true;
};

// Phase 1: insert an Observer after every placeholder and every quantizable
// producer. Returns the number of observers inserted.
int prepare(fx::GraphModule& gm, const QConfig& cfg = {});

// Phase 2: run calibration batches through the instrumented module.
void calibrate(fx::GraphModule& gm, const std::vector<Tensor>& batches);

// Phase 3: rewrite to int8. Returns the number of ops converted.
int convert(fx::GraphModule& gm, const QConfig& cfg = {});

// Convenience pipeline: trace -> prepare -> calibrate -> convert.
std::shared_ptr<fx::GraphModule> quantize_model(
    nn::Module::Ptr model, const std::vector<Tensor>& calibration,
    const QConfig& cfg = {});

}  // namespace fxcpp::quant
