#include "quant/quantize.h"

#include <cmath>
#include <unordered_map>

#include "quant/modules.h"

namespace fxcpp::quant {

namespace {

// Scalar activation functions for LUT-based quantized modules.
float selu_scalar(float v) {
  constexpr float kAlpha = 1.6732632423543772848170429916717f;
  constexpr float kLambda = 1.0507009873554804934193349852946f;
  return v > 0.f ? kLambda * v : kLambda * kAlpha * (std::exp(v) - 1.f);
}
float sigmoid_scalar(float v) { return 1.f / (1.f + std::exp(-v)); }
float tanh_scalar(float v) { return std::tanh(v); }
float gelu_scalar(float v) {
  return 0.5f * v * (1.f + std::erf(v * 0.70710678118654752440f));
}

// Does this module class have an int8 lowering?
enum class ModKind { Linear, Conv, Relu, Lut, PassThrough, None };

ModKind classify_module(const nn::Module& m, float (**lut_fn)(float),
                        const char** lut_name) {
  // LinearReLU is-a Linear, but QuantizedLinear would re-emit it without the
  // fused clamp — leave it in float precision rather than drop the ReLU.
  if (dynamic_cast<const nn::LinearReLU*>(&m)) return ModKind::None;
  if (dynamic_cast<const nn::Linear*>(&m)) return ModKind::Linear;
  if (dynamic_cast<const nn::Conv2d*>(&m)) return ModKind::Conv;
  if (dynamic_cast<const nn::ReLU*>(&m)) return ModKind::Relu;
  if (dynamic_cast<const nn::SELU*>(&m)) {
    *lut_fn = &selu_scalar; *lut_name = "SELU";
    return ModKind::Lut;
  }
  if (dynamic_cast<const nn::Sigmoid*>(&m)) {
    *lut_fn = &sigmoid_scalar; *lut_name = "Sigmoid";
    return ModKind::Lut;
  }
  if (dynamic_cast<const nn::Tanh*>(&m)) {
    *lut_fn = &tanh_scalar; *lut_name = "Tanh";
    return ModKind::Lut;
  }
  if (dynamic_cast<const nn::GELU*>(&m)) {
    *lut_fn = &gelu_scalar; *lut_name = "GELU";
    return ModKind::Lut;
  }
  if (dynamic_cast<const nn::Dropout*>(&m) ||
      dynamic_cast<const nn::Identity*>(&m) ||
      dynamic_cast<const nn::Flatten*>(&m)) {
    return ModKind::PassThrough;
  }
  return ModKind::None;
}

bool is_quantizable_producer(const fx::GraphModule& gm, const fx::Node& n) {
  if (n.op() == fx::Opcode::CallModule) {
    float (*f)(float) = nullptr;
    const char* name = nullptr;
    const ModKind k = classify_module(*gm.resolve_module(n.target()), &f, &name);
    return k == ModKind::Linear || k == ModKind::Conv || k == ModKind::Lut ||
           k == ModKind::Relu;
  }
  if (n.op() == fx::Opcode::CallFunction) {
    return n.target() == "add" || n.target() == "relu";
  }
  return false;
}

}  // namespace

int prepare(fx::GraphModule& gm, const QConfig& cfg) {
  fx::Graph& g = gm.graph();
  const std::vector<fx::Node*> order = g.nodes();
  int count = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    fx::Node* n = order[i];
    const bool observe = n->op() == fx::Opcode::Placeholder ||
                         is_quantizable_producer(gm, *n);
    if (!observe) continue;
    const std::string name = "activation_obs_" + std::to_string(count++);
    nn::Module::Ptr obs;
    if (cfg.fake_quant) obs = std::make_shared<FakeQuantObserver>();
    else obs = std::make_shared<Observer>();
    gm.root()->set_submodule(name, obs);

    // Insert the observer immediately after n and route n's users through it.
    fx::Node* next = i + 1 < order.size() ? order[i + 1] : nullptr;
    fx::Graph::InsertScope scope(g, next);
    fx::Node* obs_node = g.call_module(name, {fx::Argument(n)});
    n->replace_all_uses_with(obs_node);
    obs_node->set_args({fx::Argument(n)});  // undo self-rewrite
  }
  g.lint();
  gm.recompile();
  return count;
}

void calibrate(fx::GraphModule& gm, const std::vector<Tensor>& batches) {
  for (const Tensor& b : batches) gm.run(b);
}

namespace {

// Strip observer call_modules, returning per-node output qparams.
std::unordered_map<fx::Node*, QParams> strip_observers(fx::GraphModule& gm) {
  std::unordered_map<fx::Node*, QParams> stats;
  fx::Graph& g = gm.graph();
  for (fx::Node* n : g.nodes()) {
    if (n->op() != fx::Opcode::CallModule) continue;
    auto obs = std::dynamic_pointer_cast<Observer>(gm.resolve_module(n->target()));
    if (!obs) continue;
    fx::Node* producer = n->args().at(0).node();
    if (obs->observed()) stats[producer] = obs->qparams();
    const std::string target = n->target();
    n->replace_all_uses_with(producer);
    g.erase_node(n);
    gm.root()->delete_submodule(target);
  }
  return stats;
}

}  // namespace

int convert(fx::GraphModule& gm, const QConfig& cfg) {
  fx::Graph& g = gm.graph();
  auto stats = strip_observers(gm);

  // Nodes currently producing int8 values (original node -> int8 producer).
  std::unordered_map<fx::Node*, fx::Node*> as_q;
  // Cached dequantize nodes for int8 producers consumed by float ops.
  std::unordered_map<fx::Node*, fx::Node*> as_fp;
  int converted = 0;

  // int8 view of `a`, inserting a quantize_per_tensor before `user` if
  // needed and possible (requires calibration stats for `a`).
  auto q_of = [&](fx::Node* a, fx::Node* user) -> fx::Node* {
    auto it = as_q.find(a);
    if (it != as_q.end()) return it->second;
    auto st = stats.find(a);
    if (st == stats.end()) return nullptr;
    fx::Graph::InsertScope scope(g, user);
    fx::Node* qn = g.call_function(
        "quantize_per_tensor",
        {fx::Argument(a), fx::Argument(st->second.scale),
         fx::Argument(static_cast<std::int64_t>(st->second.zero_point))});
    as_q[a] = qn;
    return qn;
  };
  // float view of `a` for non-quantized consumers.
  auto fp_of = [&](fx::Node* a, fx::Node* user) -> fx::Node* {
    if (as_q.find(a) == as_q.end() || as_q[a] != a) return a;
    auto it = as_fp.find(a);
    if (it != as_fp.end()) return it->second;
    fx::Graph::InsertScope scope(g, user);
    fx::Node* dq = g.call_function("dequantize", {fx::Argument(a)});
    as_fp[a] = dq;
    return dq;
  };

  for (fx::Node* n : g.nodes()) {
    switch (n->op()) {
      case fx::Opcode::Placeholder:
      case fx::Opcode::GetAttr:
        break;
      case fx::Opcode::CallModule: {
        auto m = gm.resolve_module(n->target());
        float (*lut_fn)(float) = nullptr;
        const char* lut_name = nullptr;
        const ModKind kind = classify_module(*m, &lut_fn, &lut_name);
        fx::Node* a = n->args().at(0).is_node() ? n->args()[0].node() : nullptr;
        if (!a) break;

        if (kind == ModKind::Linear || kind == ModKind::Conv ||
            kind == ModKind::Lut || kind == ModKind::Relu ||
            kind == ModKind::PassThrough) {
          fx::Node* qa = q_of(a, n);
          if (!qa || (kind != ModKind::PassThrough && !stats.count(n))) {
            // Can't quantize: make sure the float op sees float input.
            n->set_args({fx::Argument(fp_of(a, n))});
            break;
          }
          switch (kind) {
            case ModKind::Linear:
              gm.root()->set_submodule(
                  n->target(),
                  std::make_shared<QuantizedLinear>(
                      dynamic_cast<const nn::Linear&>(*m), stats.at(n),
                      cfg.per_channel_weights));
              break;
            case ModKind::Conv:
              gm.root()->set_submodule(
                  n->target(),
                  std::make_shared<QuantizedConv2d>(
                      dynamic_cast<const nn::Conv2d&>(*m), stats.at(n)));
              break;
            case ModKind::Lut:
              gm.root()->set_submodule(
                  n->target(), std::make_shared<QuantizedUnary>(
                                   lut_name, lut_fn, stats.at(n)));
              break;
            case ModKind::Relu:
              gm.root()->set_submodule(n->target(),
                                       std::make_shared<nn::Identity>());
              // quantized relu keeps scale: rewrite as function instead.
              break;
            default:
              break;
          }
          if (kind == ModKind::Relu) {
            fx::Graph::InsertScope scope(g, n);
            fx::Node* qr =
                g.call_function("quantized_relu", {fx::Argument(qa)});
            n->replace_all_uses_with(qr);
            as_q[n] = qr;
            as_q[qr] = qr;
            g.erase_node(n);
            ++converted;
            break;
          }
          if (kind == ModKind::PassThrough) {
            n->set_args({fx::Argument(qa)});
            n->invalidate_shape_meta();  // now flows int8, not f32
            as_q[n] = n;
            break;
          }
          n->set_args({fx::Argument(qa)});
          n->invalidate_shape_meta();  // module swapped for its int8 lowering
          as_q[n] = n;
          ++converted;
        } else {
          // Unquantizable module: feed it floats.
          n->set_args({fx::Argument(fp_of(a, n))});
        }
        break;
      }
      case fx::Opcode::CallFunction:
      case fx::Opcode::CallMethod: {
        const std::string& t = n->target();
        if (n->op() == fx::Opcode::CallFunction && t == "add" &&
            n->args().size() == 2 && n->args()[0].is_node() &&
            n->args()[1].is_node() && stats.count(n)) {
          fx::Node* qa = q_of(n->args()[0].node(), n);
          fx::Node* qb = q_of(n->args()[1].node(), n);
          if (qa && qb) {
            const QParams& q = stats.at(n);
            fx::Graph::InsertScope scope(g, n);
            fx::Node* qadd = g.call_function(
                "quantized_add",
                {fx::Argument(qa), fx::Argument(qb), fx::Argument(q.scale),
                 fx::Argument(static_cast<std::int64_t>(q.zero_point))});
            n->replace_all_uses_with(qadd);
            as_q[n] = qadd;
            as_q[qadd] = qadd;
            g.erase_node(n);
            ++converted;
            break;
          }
        }
        if (n->op() == fx::Opcode::CallFunction && t == "relu" &&
            n->args()[0].is_node()) {
          if (fx::Node* qa = q_of(n->args()[0].node(), n)) {
            fx::Graph::InsertScope scope(g, n);
            fx::Node* qr = g.call_function("quantized_relu", {fx::Argument(qa)});
            n->replace_all_uses_with(qr);
            as_q[n] = qr;
            as_q[qr] = qr;
            g.erase_node(n);
            ++converted;
            break;
          }
        }
        // int8-transparent shape ops pass through; dropout becomes identity.
        if ((t == "flatten" || t == "reshape") && n->args()[0].is_node()) {
          fx::Node* a = n->args()[0].node();
          if (as_q.count(a) && as_q[a] == a) {
            n->invalidate_shape_meta();  // now flows int8, not f32
            as_q[n] = n;  // args already reference the int8 producer
            break;
          }
        }
        if (t == "dropout" && n->args()[0].is_node()) {
          fx::Node* a = n->args()[0].node();
          if (as_q.count(a)) {
            n->replace_all_uses_with(as_q[a]);
            g.erase_node(n);
            break;
          }
        }
        // Generic float op: dequantize any int8 args.
        std::vector<fx::Argument> new_args;
        for (const auto& arg : n->args()) {
          if (arg.is_node()) {
            new_args.emplace_back(fp_of(arg.node(), n));
          } else {
            new_args.push_back(arg);
          }
        }
        n->set_args(std::move(new_args));
        break;
      }
      case fx::Opcode::Output: {
        if (n->args().at(0).is_node()) {
          fx::Node* a = n->args()[0].node();
          n->set_args({fx::Argument(fp_of(a, n))});
        }
        break;
      }
    }
  }

  g.eliminate_dead_code();
  g.lint();
  gm.recompile();
  return converted;
}

std::shared_ptr<fx::GraphModule> quantize_model(
    nn::Module::Ptr model, const std::vector<Tensor>& calibration,
    const QConfig& cfg) {
  auto gm = fx::symbolic_trace(std::move(model));
  prepare(*gm, cfg);
  calibrate(*gm, calibration);
  convert(*gm, cfg);
  return gm;
}

}  // namespace fxcpp::quant
