#include "quant/observer.h"

namespace fxcpp::quant {

void Observer::observe(const Tensor& t) {
  const std::int64_t n = t.numel();
  const Tensor tc = t.contiguous();
  const float* p = tc.data<float>();
  double mn = min_, mx = max_;
  for (std::int64_t i = 0; i < n; ++i) {
    mn = std::min(mn, static_cast<double>(p[i]));
    mx = std::max(mx, static_cast<double>(p[i]));
  }
  min_ = mn;
  max_ = mx;
  observed_ = true;
}

fx::Value Observer::forward(const std::vector<fx::Value>& inputs) {
  const fx::Value& x = inputs.at(0);
  if (x.is_tensor()) observe(x.tensor());
  return x;
}

QParams Observer::qparams() const {
  if (!observed_) {
    throw std::logic_error(
        "Observer has no statistics; run calibration batches first");
  }
  return ops::choose_qparams(min_, max_);
}

fx::Value FakeQuantObserver::forward(const std::vector<fx::Value>& inputs) {
  const fx::Value& x = inputs.at(0);
  if (!x.is_tensor()) return x;
  observe(x.tensor());
  const QParams q = qparams();
  // Snap to the quantized grid: quantize then dequantize.
  return fx::Value(ops::dequantize(
      ops::quantize_per_tensor(x.tensor(), q.scale, q.zero_point)));
}


fx::Value MovingAverageObserver::forward(const std::vector<fx::Value>& inputs) {
  const fx::Value& x = inputs.at(0);
  if (!x.is_tensor()) return x;
  observe(x.tensor());
  // Batch-local extrema.
  const Tensor tc = x.tensor().contiguous();
  const float* p = tc.data<float>();
  double mn = p[0], mx = p[0];
  for (std::int64_t i = 1; i < tc.numel(); ++i) {
    mn = std::min(mn, static_cast<double>(p[i]));
    mx = std::max(mx, static_cast<double>(p[i]));
  }
  if (!ema_init_) {
    ema_min_ = mn;
    ema_max_ = mx;
    ema_init_ = true;
  } else {
    ema_min_ += momentum_ * (mn - ema_min_);
    ema_max_ += momentum_ * (mx - ema_max_);
  }
  return x;
}

QParams MovingAverageObserver::qparams_ema() const {
  if (!ema_init_) return Observer::qparams();
  return ops::choose_qparams(ema_min_, ema_max_);
}

HistogramObserver::HistogramObserver(double lo_pct, double hi_pct, int bins)
    : lo_pct_(lo_pct), hi_pct_(hi_pct),
      counts_(static_cast<std::size_t>(bins), 0.0) {}

void HistogramObserver::add_histogram(const Tensor& t) {
  const Tensor tc = t.contiguous();
  const float* p = tc.data<float>();
  const std::int64_t n = tc.numel();
  if (n == 0) return;
  double mn = p[0], mx = p[0];
  for (std::int64_t i = 1; i < n; ++i) {
    mn = std::min(mn, static_cast<double>(p[i]));
    mx = std::max(mx, static_cast<double>(p[i]));
  }
  if (!h_init_) {
    h_lo_ = mn;
    h_hi_ = mx + 1e-12;
    h_init_ = true;
  } else if (mn < h_lo_ || mx > h_hi_) {
    // Grow the range and redistribute existing mass into the new bins.
    const double new_lo = std::min(mn, h_lo_);
    const double new_hi = std::max(mx, h_hi_) + 1e-12;
    std::vector<double> next(counts_.size(), 0.0);
    const double old_w = (h_hi_ - h_lo_) / static_cast<double>(counts_.size());
    const double new_w = (new_hi - new_lo) / static_cast<double>(next.size());
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      if (counts_[b] == 0.0) continue;
      const double center = h_lo_ + (static_cast<double>(b) + 0.5) * old_w;
      auto idx = static_cast<std::size_t>((center - new_lo) / new_w);
      if (idx >= next.size()) idx = next.size() - 1;
      next[idx] += counts_[b];
    }
    counts_ = std::move(next);
    h_lo_ = new_lo;
    h_hi_ = new_hi;
  }
  const double w = (h_hi_ - h_lo_) / static_cast<double>(counts_.size());
  for (std::int64_t i = 0; i < n; ++i) {
    auto idx = static_cast<std::size_t>((p[i] - h_lo_) / w);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    counts_[idx] += 1.0;
  }
}

fx::Value HistogramObserver::forward(const std::vector<fx::Value>& inputs) {
  const fx::Value& x = inputs.at(0);
  if (x.is_tensor()) {
    observe(x.tensor());
    add_histogram(x.tensor());
  }
  return x;
}

QParams HistogramObserver::qparams_percentile() const {
  if (!h_init_) return Observer::qparams();
  double total = 0.0;
  for (double c : counts_) total += c;
  const double w = (h_hi_ - h_lo_) / static_cast<double>(counts_.size());
  double acc = 0.0;
  double lo = h_lo_, hi = h_hi_;
  bool lo_set = false;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    acc += counts_[b];
    if (!lo_set && acc >= lo_pct_ * total) {
      lo = h_lo_ + static_cast<double>(b) * w;
      lo_set = true;
    }
    if (acc >= hi_pct_ * total) {
      hi = h_lo_ + (static_cast<double>(b) + 1.0) * w;
      break;
    }
  }
  return ops::choose_qparams(lo, hi);
}

}  // namespace fxcpp::quant
