#include "quant/modules.h"

namespace fxcpp::quant {

QuantizedLinear::QuantizedLinear(const nn::Linear& src, QParams out_qparams,
                                 bool per_channel)
    : nn::Module("QuantizedLinear", /*builtin=*/true), out_q_(out_qparams) {
  const Tensor w = src.param("weight");
  const Tensor b = src.has_bias() ? src.param("bias") : Tensor();
  packed_ = per_channel ? ops::PackedLinearWeight::pack_per_channel(w, b)
                        : ops::PackedLinearWeight::pack(w, b);
  // Expose packed state for inspection / parameter counting.
  register_buffer("weight_int8", packed_.w_q);
  if (packed_.bias.defined()) register_buffer("bias", packed_.bias);
}

fx::Value QuantizedLinear::forward(const std::vector<fx::Value>& inputs) {
  return fx::Value(ops::quantized_linear(inputs.at(0).tensor(), packed_,
                                         out_q_.scale, out_q_.zero_point));
}

QuantizedConv2d::QuantizedConv2d(const nn::Conv2d& src, QParams out_qparams)
    : nn::Module("QuantizedConv2d", /*builtin=*/true), out_q_(out_qparams) {
  packed_ = ops::PackedConvWeight::pack(
      src.param("weight"), src.has_bias() ? src.param("bias") : Tensor(),
      src.stride(), src.padding());
  register_buffer("weight_int8", packed_.w_q);
  if (packed_.bias.defined()) register_buffer("bias", packed_.bias);
}

fx::Value QuantizedConv2d::forward(const std::vector<fx::Value>& inputs) {
  return fx::Value(ops::quantized_conv2d(inputs.at(0).tensor(), packed_,
                                         out_q_.scale, out_q_.zero_point));
}

QuantizedUnary::QuantizedUnary(std::string op_name, float (*f)(float),
                               QParams out_qparams)
    : nn::Module("Quantized" + op_name, /*builtin=*/true),
      op_(std::move(op_name)),
      f_(f),
      out_q_(out_qparams) {}

fx::Value QuantizedUnary::forward(const std::vector<fx::Value>& inputs) {
  return fx::Value(ops::quantized_unary_lut(inputs.at(0).tensor(), f_,
                                            out_q_.scale, out_q_.zero_point));
}

}  // namespace fxcpp::quant
