#include "passes/fuse_conv_bn.h"

#include <cmath>

#include "nn/layers.h"

namespace fxcpp::passes {

FusedConvParams fuse_conv_bn_weights(const Tensor& conv_w, const Tensor& conv_b,
                                     const Tensor& bn_mean, const Tensor& bn_var,
                                     const Tensor& bn_w, const Tensor& bn_b,
                                     double eps) {
  const std::int64_t out_ch = conv_w.size(0);
  const std::int64_t per_filter = conv_w.numel() / out_ch;

  FusedConvParams fused;
  fused.weight = conv_w.clone();
  fused.bias = Tensor::zeros({out_ch});

  float* w = fused.weight.data<float>();
  float* b = fused.bias.data<float>();
  const Tensor mean = bn_mean.contiguous(), var = bn_var.contiguous(),
               gamma = bn_w.contiguous(), beta = bn_b.contiguous();
  const float* mp = mean.data<float>();
  const float* vp = var.data<float>();
  const float* gp = gamma.data<float>();
  const float* bp = beta.data<float>();

  for (std::int64_t o = 0; o < out_ch; ++o) {
    const float scale = gp[o] / std::sqrt(vp[o] + static_cast<float>(eps));
    for (std::int64_t i = 0; i < per_filter; ++i) w[o * per_filter + i] *= scale;
    const float cb = conv_b.defined()
                         ? static_cast<float>(conv_b.at_flat(o))
                         : 0.f;
    b[o] = (cb - mp[o]) * scale + bp[o];
  }
  return fused;
}

int fuse_conv_bn(fx::GraphModule& gm) {
  fx::Graph& g = gm.graph();
  int fused_count = 0;
  for (fx::Node* bn_node : g.nodes()) {
    if (bn_node->op() != fx::Opcode::CallModule) continue;
    auto bn = std::dynamic_pointer_cast<nn::BatchNorm2d>(
        gm.resolve_module(bn_node->target()));
    if (!bn) continue;
    if (bn_node->args().size() != 1 || !bn_node->args()[0].is_node()) continue;
    fx::Node* conv_node = bn_node->args()[0].node();
    if (conv_node->op() != fx::Opcode::CallModule) continue;
    // The conv output must feed only this BN, or folding changes semantics.
    if (conv_node->users().size() != 1) continue;
    auto conv = std::dynamic_pointer_cast<nn::Conv2d>(
        gm.resolve_module(conv_node->target()));
    if (!conv) continue;

    const FusedConvParams params = fuse_conv_bn_weights(
        conv->param("weight"),
        conv->has_bias() ? conv->param("bias") : Tensor(),
        bn->param("running_mean"), bn->param("running_var"),
        bn->param("weight"), bn->param("bias"), bn->eps());

    // Install a fused conv (with bias) at the conv's path, rewire the graph.
    auto fused_conv = std::make_shared<nn::Conv2d>(
        conv->in_channels(), conv->out_channels(),
        conv->param("weight").size(2), conv->stride()[0], conv->padding()[0],
        /*bias=*/true);
    fused_conv->param("weight") = params.weight;
    fused_conv->param("bias") = params.bias;
    gm.root()->set_submodule(conv_node->target(), fused_conv);

    // The conv now computes the folded conv+BN values; its recorded meta
    // (and that of the rewired BN users) described the pre-fusion program.
    conv_node->invalidate_shape_meta();
    for (fx::Node* user : bn_node->users()) user->invalidate_shape_meta();
    bn_node->replace_all_uses_with(conv_node);
    g.erase_node(bn_node);
    ++fused_count;
  }
  if (fused_count > 0) {
    g.lint();
    gm.recompile();
  }
  return fused_count;
}

}  // namespace fxcpp::passes
