// Gradual shape typing — the paper's third shape-analysis flavor
// (Section 6.3: "shape propagation via gradual typing semantics ... in
// development"; later published as the Migeed et al. gradual typing work).
//
// Each tensor gets a gradual shape type: fully known, partially known
// (some dims dynamic), or fully unknown (the gradual "Any"). The checker
// propagates types forward and *checks consistency* at every operation:
// known-vs-known mismatches are errors, anything involving an unknown dim
// is accepted (the gradual guarantee). Unlike ShapeProp it needs no example
// input and runs on programs that would crash eagerly.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/graph_module.h"
#include "passes/symbolic_shapes.h"

namespace fxcpp::passes {

struct TypeError {
  const fx::Node* node = nullptr;
  std::string message;
};

struct TypeCheckResult {
  bool ok() const { return errors.empty(); }
  std::vector<TypeError> errors;
  // Inferred output type (empty optional = unknown rank).
  std::optional<SymShape> output;
  std::string to_string() const;
};

// Check `gm` against the given input types. Use std::nullopt for a fully
// unknown input (gradual Any); SymDim::dynamic() for unknown single dims.
TypeCheckResult type_check(fx::GraphModule& gm,
                           const std::vector<std::optional<SymShape>>& inputs);

}  // namespace fxcpp::passes
