#include "passes/decompose.h"

#include "core/functional.h"
#include "nn/layers.h"

namespace fxcpp::passes {

namespace {

using fx::Node;
using fx::Opcode;
using fx::Value;

class BatchNormDecomposer : public fx::Transformer {
 public:
  using fx::Transformer::Transformer;

 protected:
  // y = (x - mean) * (gamma / sqrt(var + eps)) + beta, with the per-channel
  // vectors reshaped to [C,1,1] so they broadcast over NCHW.
  Value expand(const Value& x, const Value& gamma, const Value& beta,
               const Value& mean, const Value& var, double eps) {
    namespace fn = fx::fn;
    const std::vector<std::int64_t> chan{-1, 1, 1};
    Value inv = fn::div(gamma, fn::sqrt(fn::add(var, eps)));
    Value scaled = fn::mul(fn::sub(x, fn::reshape(mean, chan)),
                           fn::reshape(inv, chan));
    return fn::add(scaled, fn::reshape(beta, chan));
  }

  Value call_function(const Node& n) override {
    if (n.target() != "batch_norm") return Transformer::call_function(n);
    const auto& a = n.args();
    return expand(value_of(a.at(0).node()), value_of(a.at(1).node()),
                  value_of(a.at(2).node()), value_of(a.at(3).node()),
                  value_of(a.at(4).node()), a.at(5).as_double());
  }

  Value call_module(const Node& n) override {
    auto m = source().resolve_module(n.target());
    const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(m.get());
    if (!bn) return Transformer::call_module(n);
    auto attr = [&](const char* name) {
      return Value(tracer().create_proxy(Opcode::GetAttr,
                                         n.target() + "." + name, {}, {}));
    };
    return expand(value_of(n.args().at(0).node()), attr("weight"),
                  attr("bias"), attr("running_mean"), attr("running_var"),
                  bn->eps());
  }
};

}  // namespace

std::shared_ptr<fx::GraphModule> decompose_batch_norm(fx::GraphModule& gm) {
  BatchNormDecomposer t(gm);
  return t.transform();
}

}  // namespace fxcpp::passes
