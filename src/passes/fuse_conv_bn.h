// Convolution/Batch-Norm fusion (Section 6.2.2, Figure 7).
//
// During inference a Conv2d -> BatchNorm2d sequence collapses into a single
// convolution by folding the normalization's affine transform into the conv
// weights and bias (Markus, 2018). This is the paper's flagship example of a
// transform needing BOTH non-local program context (who consumes the conv?)
// and state modification (rewrite the weights) — exactly what GraphModule
// bundles together (Section 5.6). The whole transform is ~100 lines here,
// matching the paper's "fewer than 150 lines of Python" observation.
#pragma once

#include "core/graph_module.h"

namespace fxcpp::passes {

// Compute fused (weight, bias) for conv parameters followed by batch norm
// with the given statistics. Exposed for direct unit testing.
struct FusedConvParams {
  Tensor weight;
  Tensor bias;
};
FusedConvParams fuse_conv_bn_weights(const Tensor& conv_w, const Tensor& conv_b,
                                     const Tensor& bn_mean, const Tensor& bn_var,
                                     const Tensor& bn_w, const Tensor& bn_b,
                                     double eps);

// Fuse every call_module Conv2d -> call_module BatchNorm2d pair where the
// conv's only consumer is the BN. Replaces the conv module with a fused
// Conv2d (bias added if absent), rewires users of the BN to the conv node,
// and erases the BN call. Returns the number of pairs fused.
int fuse_conv_bn(fx::GraphModule& gm);

}  // namespace fxcpp::passes
