// Classic cleanup transforms — each a short forward walk, demonstrating the
// paper's Section 5.5 point: on a basic-block IR with no mutation, passes
// like CSE that are "more complicated to implement" under control flow
// reduce to simple single-pass code.
#pragma once

#include "core/graph_module.h"

namespace fxcpp::passes {

// Dead code elimination (delegates to Graph; recompiles if anything died).
int dead_code_elimination(fx::GraphModule& gm);

// Common subexpression elimination: structurally identical pure nodes are
// merged. Legal without any aliasing analysis because the IR models no
// mutation (Section 5.6). Returns nodes removed.
int common_subexpression_elimination(fx::GraphModule& gm);

// Constant folding: nodes whose inputs are all parameters/constants are
// evaluated ahead of time and replaced with get_attr to a "_folded_N"
// buffer registered on the root. Returns nodes folded.
int constant_fold(fx::GraphModule& gm);

// Normalize call_function arguments: positional args after the first are
// rewritten as kwargs using the operator's declared parameter names —
// fx's NormalizeArgs pass (the capture itself never normalizes; footnote 1).
// Returns nodes changed.
int normalize_args(fx::GraphModule& gm);

// Drop submodules of the root hierarchy that no call_module/get_attr Node
// references any more (GraphModule.delete_all_unused_submodules) — e.g. the
// BatchNorms left behind by fuse_conv_bn. Returns modules deleted.
int delete_all_unused_submodules(fx::GraphModule& gm);

}  // namespace fxcpp::passes
