#include "passes/type_check.h"

#include <sstream>
#include <unordered_map>

#include "nn/layers.h"

namespace fxcpp::passes {

namespace {

using GType = std::optional<SymShape>;  // nullopt = unknown rank ("Any")

// Are two dims consistent under gradual typing? (~ relation: unknown is
// consistent with everything; knowns must agree.)
bool dim_consistent(const SymDim& a, const SymDim& b) {
  return !a.is_known || !b.is_known || a.value == b.value;
}

std::string gtype_str(const GType& t) {
  return t ? sym_shape_str(*t) : "Any";
}

class Checker {
 public:
  explicit Checker(fx::GraphModule& gm) : gm_(gm) {}

  TypeCheckResult run(const std::vector<GType>& inputs) {
    std::size_t ph = 0;
    for (fx::Node* n : gm_.graph().nodes()) {
      switch (n->op()) {
        case fx::Opcode::Placeholder:
          env_[n] = ph < inputs.size() ? inputs[ph++] : std::nullopt;
          break;
        case fx::Opcode::GetAttr:
          env_[n] = sym_of(gm_.resolve_attr(n->target()).sizes());
          break;
        case fx::Opcode::CallModule:
          env_[n] = check_module(*n);
          break;
        case fx::Opcode::CallFunction:
        case fx::Opcode::CallMethod:
          env_[n] = check_function(*n);
          break;
        case fx::Opcode::Output:
          if (n->args().at(0).is_node()) {
            result_.output = env_[n->args()[0].node()];
          }
          break;
      }
      if (n->op() != fx::Opcode::Output && env_.count(n) && env_[n]) {
        n->set_meta("gradual_type", gtype_str(env_[n]));
      }
    }
    return std::move(result_);
  }

 private:
  void error(const fx::Node& n, const std::string& msg) {
    result_.errors.push_back(TypeError{&n, msg});
  }

  GType of(const fx::Argument& a) {
    if (!a.is_node()) return std::nullopt;
    auto it = env_.find(a.node());
    return it == env_.end() ? std::nullopt : it->second;
  }

  // Require a known dim at position `i` (from the back if negative) to be
  // consistent with `want`.
  void expect_dim(const fx::Node& n, const GType& t, int i, std::int64_t want,
                  const char* what) {
    if (!t) return;  // gradual: unknown rank is consistent
    const auto nd = static_cast<int>(t->size());
    const int idx = i < 0 ? nd + i : i;
    if (idx < 0 || idx >= nd) {
      error(n, std::string(what) + ": rank " + std::to_string(nd) +
                   " has no dim " + std::to_string(i));
      return;
    }
    const SymDim& d = (*t)[static_cast<std::size_t>(idx)];
    if (!dim_consistent(d, SymDim::known(want))) {
      std::ostringstream os;
      os << what << ": expected dim " << i << " == " << want << ", got "
         << d.str() << " in " << gtype_str(t);
      error(n, os.str());
    }
  }

  GType check_module(const fx::Node& n) {
    const auto m = gm_.resolve_module(n.target());
    GType x = of(n.args().at(0));
    if (const auto* lin = dynamic_cast<const nn::Linear*>(m.get())) {
      expect_dim(n, x, -1, lin->in_features(), "Linear");
      if (!x) return std::nullopt;
      SymShape out = *x;
      out.back() = SymDim::known(lin->out_features());
      return out;
    }
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(m.get())) {
      if (x && x->size() != 4) {
        error(n, "Conv2d: expected rank-4 NCHW input, got " + gtype_str(x));
        return std::nullopt;
      }
      expect_dim(n, x, 1, conv->in_channels(), "Conv2d");
      if (!x) return std::nullopt;
      // Reuse the symbolic transfer for the spatial math.
      try {
        return propagate_module_shape(*m, *x);
      } catch (const std::exception& e) {
        error(n, std::string("Conv2d: ") + e.what());
        return std::nullopt;
      }
    }
    if (const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(m.get())) {
      expect_dim(n, x, 1, bn->num_features(), "BatchNorm2d");
      return x;
    }
    try {
      if (!x) return std::nullopt;
      return propagate_module_shape(*m, *x);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }

  GType check_function(const fx::Node& n) {
    const std::string& t = n.target();
    GType a = of(n.args().at(0));
    if (t == "add" || t == "sub" || t == "mul" || t == "div") {
      if (n.args().size() > 1 && n.args()[1].is_node()) {
        GType b = of(n.args()[1]);
        if (a && b) {
          // Check broadcast consistency from the back.
          const std::size_t k = std::min(a->size(), b->size());
          for (std::size_t i = 0; i < k; ++i) {
            const SymDim& da = (*a)[a->size() - 1 - i];
            const SymDim& db = (*b)[b->size() - 1 - i];
            const bool one = (da.is_known && da.value == 1) ||
                             (db.is_known && db.value == 1);
            if (!one && !dim_consistent(da, db)) {
              error(n, t + ": shapes " + gtype_str(a) + " and " +
                           gtype_str(b) + " are not broadcastable");
              return std::nullopt;
            }
          }
          return a->size() >= b->size() ? a : b;
        }
        return std::nullopt;
      }
      return a;
    }
    if (t == "linear" || t == "linear_relu") {
      GType w = of(n.args().at(1));
      if (a && w && w->size() == 2 && (*w)[1].is_known) {
        expect_dim(n, a, -1, (*w)[1].value, "linear");
      }
      if (!a || !w) return std::nullopt;
      SymShape out = *a;
      out.back() = (*w)[0];
      return out;
    }
    if (t == "matmul") {
      GType b = of(n.args().at(1));
      if (a && b && b->size() == 2 && (*b)[0].is_known) {
        expect_dim(n, a, -1, (*b)[0].value, "matmul");
      }
      if (!a || !b) return std::nullopt;
      SymShape out = *a;
      out.back() = b->back();
      return out;
    }
    if (t == "cat") {
      // All known inputs must agree on every non-cat dim.
      const auto& items = n.args().at(0).list();
      const std::int64_t dim = n.args().at(1).as_int();
      GType first;
      for (const auto& item : items) {
        GType s = of(item);
        if (!s) return std::nullopt;
        if (!first) {
          first = s;
          continue;
        }
        if (s->size() != first->size()) {
          error(n, "cat: rank mismatch");
          return std::nullopt;
        }
        for (std::size_t i = 0; i < s->size(); ++i) {
          if (static_cast<std::int64_t>(i) == dim) continue;
          if (!dim_consistent((*s)[i], (*first)[i])) {
            error(n, "cat: dim " + std::to_string(i) + " mismatch");
          }
        }
      }
      if (!first) return std::nullopt;
      SymShape out = *first;
      out[static_cast<std::size_t>(dim)] = SymDim::dynamic();
      return out;
    }
    // Shape-preserving / fallthrough ops.
    return a;
  }

  // Bridge into the shared symbolic-shape module transfer table
  // (module_transfer_table in symbolic_shapes.h) — the checker and the
  // symbolic propagator use the same transfer functions by construction.
  static SymShape propagate_module_shape(const nn::Module& m,
                                         const SymShape& in) {
    return module_sym_transfer(m, in);
  }

  fx::GraphModule& gm_;
  std::unordered_map<const fx::Node*, GType> env_;
  TypeCheckResult result_;
};

}  // namespace

std::string TypeCheckResult::to_string() const {
  std::ostringstream os;
  if (ok()) {
    os << "type check OK; output: " << (output ? sym_shape_str(*output) : "Any")
       << "\n";
    return os.str();
  }
  for (const auto& e : errors) {
    os << "error at '" << e.node->name() << "' (target=" << e.node->target()
       << "): " << e.message << "\n";
  }
  return os.str();
}

TypeCheckResult type_check(
    fx::GraphModule& gm, const std::vector<std::optional<SymShape>>& inputs) {
  Checker c(gm);
  return c.run(inputs);
}

}  // namespace fxcpp::passes
