#include "passes/graph_drawer.h"

#include <fstream>
#include <sstream>

namespace fxcpp::passes {

namespace {
const char* color_for(fx::Opcode op) {
  switch (op) {
    case fx::Opcode::Placeholder: return "lightblue";
    case fx::Opcode::CallFunction: return "lightyellow";
    case fx::Opcode::CallMethod: return "khaki";
    case fx::Opcode::CallModule: return "lightgreen";
    case fx::Opcode::GetAttr: return "lightgray";
    case fx::Opcode::Output: return "salmon";
  }
  return "white";
}
}  // namespace

std::string to_dot(const fx::GraphModule& gm, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n"
     << "  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n";
  for (const fx::Node* n : gm.graph().nodes()) {
    os << "  \"" << n->name() << "\" [fillcolor=" << color_for(n->op())
       << ", label=\"" << n->name() << "\\n" << fx::opcode_name(n->op());
    if (n->op() != fx::Opcode::Placeholder && n->op() != fx::Opcode::Output) {
      os << "\\ntarget=" << n->target();
    }
    if (n->has_shape()) os << "\\n" << shape_str(n->shape());
    os << "\"];\n";
  }
  for (const fx::Node* n : gm.graph().nodes()) {
    for (const fx::Node* in : n->input_nodes()) {
      os << "  \"" << in->name() << "\" -> \"" << n->name() << "\";\n";
    }
  }
  os << "}\n";
  return os.str();
}

void write_dot(const fx::GraphModule& gm, const std::string& path,
               const std::string& title) {
  std::ofstream f(path);
  f << to_dot(gm, title);
}

}  // namespace fxcpp::passes
