#include "passes/shape_prop.h"

namespace fxcpp::passes {

fx::RtValue ShapeProp::run_node(const fx::Node& n) {
  fx::RtValue out = fx::Interpreter::run_node(n);
  if (fx::rt_is_tensor(out)) {
    const Tensor& t = fx::rt_tensor(out);
    // const_cast: interpreting passes annotate the graph they run over.
    auto& node = const_cast<fx::Node&>(n);
    node.set_meta("shape", t.sizes());
    node.set_meta("dtype", t.dtype());
  }
  return out;
}

void shape_prop(fx::GraphModule& gm, const std::vector<Tensor>& inputs) {
  ShapeProp sp(gm);
  std::vector<fx::RtValue> rt;
  rt.reserve(inputs.size());
  for (const auto& t : inputs) rt.emplace_back(t);
  sp.run(std::move(rt));
}

}  // namespace fxcpp::passes
