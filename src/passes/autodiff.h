// Reverse-mode automatic differentiation as a graph-to-graph transform.
//
// The paper's Section 1 calls program differentiation "the primary program
// transformation used in deep learning frameworks". In define-by-run
// frameworks it is a runtime tape; on the fx IR it becomes exactly the kind
// of ahead-of-time transform the paper's machinery is built for: walk the
// captured DAG backwards, emit one VJP (vector-Jacobian product) expression
// per node, and return the gradients as a new GraphModule — inspectable,
// optimizable by the same passes (DCE/CSE), and executable by the same
// tape.
//
// Supported ops: add/sub/mul/div/neg, relu/sigmoid/tanh/gelu/selu (function
// or module form), linear (function or nn::Linear), matmul, conv2d
// (function or nn::Conv2d), eval-mode batch norm (input + gamma/beta
// grads), flatten/reshape, dropout (eval), sum/mean, Identity. Unsupported
// targets throw std::invalid_argument naming the node.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/graph_module.h"

namespace fxcpp::passes {

struct GradientGraph {
  // Same placeholders as the source; returns a tuple of gradient tensors.
  std::shared_ptr<fx::GraphModule> module;
  // Tuple entry names, aligned with the output: first the placeholder
  // names (gradient of the summed output w.r.t. each input), then the
  // touched parameter qualified names in sorted order.
  std::vector<std::string> output_names;

  // Convenience: run and return {name -> gradient} for the given inputs.
  std::vector<std::pair<std::string, Tensor>> run(
      const std::vector<Tensor>& inputs) const;
};

// Differentiate d(sum(output))/d{inputs, parameters}. `example_inputs` are
// needed once for shape propagation (reshape/flatten/mean VJPs consume
// recorded shapes); the resulting gradient graph is then reusable for any
// inputs of those shapes.
GradientGraph build_gradient_graph(fx::GraphModule& gm,
                                   const std::vector<Tensor>& example_inputs);

}  // namespace fxcpp::passes
