// Program scheduling / software pipelining (Section 6.2.3): split a model
// into stages with split_module and overlap stage execution across a stream
// of inputs — the "overlapping synchronous CPU operations with asynchronous
// device operations" pattern the paper reports being used in production.
#pragma once

#include <functional>
#include <vector>

#include "core/split.h"

namespace fxcpp::passes {

// Split `gm` into two stages at `boundary`: nodes before the boundary node
// (inclusive) form stage 0. Returns the SplitResult (parent + 2 submodules).
fx::SplitResult split_at(fx::GraphModule& gm, const std::string& boundary_node);

// Run a stream of inputs through a 2-stage split serially (baseline).
std::vector<Tensor> run_serial(fx::SplitResult& split,
                               const std::vector<Tensor>& stream);

// Run the same stream with stage 1 executing on a worker thread, overlapping
// stage 0 of item i+1 with stage 1 of item i (software pipelining).
std::vector<Tensor> run_pipelined(fx::SplitResult& split,
                                  const std::vector<Tensor>& stream);

}  // namespace fxcpp::passes
