// Program scheduling / software pipelining (Section 6.2.3): split a model
// into stages with split_module and overlap stage execution across a stream
// of inputs — the "overlapping synchronous CPU operations with asynchronous
// device operations" pattern the paper reports being used in production.
//
// Both the 2-stage pipeline and the wide-branch stream runner ride the same
// machinery: rt::TaskGroup over the inter-op pool (run_pipelined) and the
// dependency-counted fx::ParallelExecutor (run_parallel).
#pragma once

#include <functional>
#include <vector>

#include "core/parallel_executor.h"
#include "core/split.h"

namespace fxcpp::passes {

// Split `gm` into two stages at `boundary`: nodes before the boundary node
// (inclusive) form stage 0. Returns the SplitResult (parent + 2 submodules).
fx::SplitResult split_at(fx::GraphModule& gm, const std::string& boundary_node);

// Run a stream of inputs through a 2-stage split serially (baseline).
std::vector<Tensor> run_serial(fx::SplitResult& split,
                               const std::vector<Tensor>& stream);

// Run the same stream with stage 1 executing as an inter-op pool task,
// overlapping stage 0 of item i+1 with stage 1 of item i (software
// pipelining).
std::vector<Tensor> run_pipelined(fx::SplitResult& split,
                                  const std::vector<Tensor>& stream);

// Run a stream through `gm` item-by-item with each item's DAG executed by
// the inter-op ParallelExecutor, overlapping independent branches inside
// one item (wide graphs). Outputs bit-equal the serial tape's.
// `num_threads` 0 = rt::get_num_interop_threads().
std::vector<Tensor> run_parallel(fx::GraphModule& gm,
                                 const std::vector<Tensor>& stream,
                                 int num_threads = 0);

}  // namespace fxcpp::passes
