#include "passes/autodiff.h"

#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "core/functional.h"
#include "core/tracer.h"
#include "nn/layers.h"
#include "passes/shape_prop.h"
#include "tensor/ops.h"

namespace fxcpp::passes {

namespace {

using fx::Argument;
using fx::Node;
using fx::Opcode;
using fx::OpInfo;
using fx::OpRegistry;
using fx::RtValue;
using fx::Value;

// ---------------------------------------------------------------------------
// Backward kernels, registered as ordinary call_function targets so the
// gradient graph executes through the normal machinery.
// ---------------------------------------------------------------------------

Tensor fill_like(const Tensor& x, double v) {
  return Tensor::full(x.sizes(), v);
}

Tensor relu_backward(const Tensor& g, const Tensor& x) {
  Tensor out(g.sizes(), DType::Float32);
  const Tensor gc = g.contiguous(), xc = x.contiguous();
  const float* gp = gc.data<float>();
  const float* xp = xc.data<float>();
  float* o = out.data<float>();
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    o[i] = xp[i] > 0.f ? gp[i] : 0.f;
  }
  return out;
}

Tensor sigmoid_backward(const Tensor& g, const Tensor& y) {
  // dy/dx = y * (1 - y)
  return ops::mul(g, ops::mul(y, ops::sub(Tensor::full(y.sizes(), 1.0), y)));
}

Tensor tanh_backward(const Tensor& g, const Tensor& y) {
  // dy/dx = 1 - y^2
  return ops::mul(g, ops::sub(Tensor::full(y.sizes(), 1.0), ops::mul(y, y)));
}

Tensor gelu_backward(const Tensor& g, const Tensor& x) {
  Tensor out(g.sizes(), DType::Float32);
  const Tensor gc = g.contiguous(), xc = x.contiguous();
  const float* gp = gc.data<float>();
  const float* xp = xc.data<float>();
  float* o = out.data<float>();
  constexpr float kInvSqrt2 = 0.70710678118654752440f;
  constexpr float kInvSqrt2Pi = 0.39894228040143267794f;
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    const float x0 = xp[i];
    const float cdf = 0.5f * (1.f + std::erf(x0 * kInvSqrt2));
    const float pdf = kInvSqrt2Pi * std::exp(-0.5f * x0 * x0);
    o[i] = gp[i] * (cdf + x0 * pdf);
  }
  return out;
}

Tensor selu_backward(const Tensor& g, const Tensor& x) {
  constexpr float kAlpha = 1.6732632423543772848170429916717f;
  constexpr float kLambda = 1.0507009873554804934193349852946f;
  Tensor out(g.sizes(), DType::Float32);
  const Tensor gc = g.contiguous(), xc = x.contiguous();
  const float* gp = gc.data<float>();
  const float* xp = xc.data<float>();
  float* o = out.data<float>();
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    o[i] = gp[i] * (xp[i] > 0.f ? kLambda
                                : kLambda * kAlpha * std::exp(xp[i]));
  }
  return out;
}

// Sum a [N, O, H, W] gradient over (N, H, W) -> [O] (conv bias / BN params).
Tensor sum_channels(const Tensor& g) {
  const Tensor gc = g.contiguous();
  const std::int64_t n = gc.size(0), c = gc.size(1);
  const std::int64_t spatial = gc.numel() / (n * c);
  Tensor out = Tensor::zeros({c});
  float* o = out.data<float>();
  const float* p = gc.data<float>();
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* row = p + (img * c + ch) * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) o[ch] += row[i];
    }
  }
  return out;
}

// dL/dx for conv2d: scatter g through the filter (transposed convolution).
Tensor conv2d_grad_input(const Tensor& g, const Tensor& w,
                         const std::vector<std::int64_t>& stride,
                         const std::vector<std::int64_t>& padding,
                         std::int64_t in_h, std::int64_t in_w) {
  const Tensor gc = g.contiguous(), wc = w.contiguous();
  const std::int64_t n = gc.size(0), o = gc.size(1), oh = gc.size(2),
                     ow = gc.size(3);
  const std::int64_t c = wc.size(1), kh = wc.size(2), kw = wc.size(3);
  const std::int64_t sh = stride[0], sw = stride.size() > 1 ? stride[1] : sh;
  const std::int64_t ph = padding[0], pw = padding.size() > 1 ? padding[1] : ph;
  Tensor gx = Tensor::zeros({n, c, in_h, in_w});
  float* gxp = gx.data<float>();
  const float* gp = gc.data<float>();
  const float* wp = wc.data<float>();
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t f = 0; f < o; ++f) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const float gv = gp[((img * o + f) * oh + oy) * ow + ox];
          if (gv == 0.f) continue;
          for (std::int64_t ch = 0; ch < c; ++ch) {
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = oy * sh - ph + ky;
              if (iy < 0 || iy >= in_h) continue;
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ox * sw - pw + kx;
                if (ix < 0 || ix >= in_w) continue;
                gxp[((img * c + ch) * in_h + iy) * in_w + ix] +=
                    gv * wp[((f * c + ch) * kh + ky) * kw + kx];
              }
            }
          }
        }
      }
    }
  }
  return gx;
}

// dL/dw for conv2d: correlate g with the input.
Tensor conv2d_grad_weight(const Tensor& g, const Tensor& x,
                          const std::vector<std::int64_t>& stride,
                          const std::vector<std::int64_t>& padding,
                          std::int64_t kh, std::int64_t kw) {
  const Tensor gc = g.contiguous(), xc = x.contiguous();
  const std::int64_t n = gc.size(0), o = gc.size(1), oh = gc.size(2),
                     ow = gc.size(3);
  const std::int64_t c = xc.size(1), in_h = xc.size(2), in_w = xc.size(3);
  const std::int64_t sh = stride[0], sw = stride.size() > 1 ? stride[1] : sh;
  const std::int64_t ph = padding[0], pw = padding.size() > 1 ? padding[1] : ph;
  Tensor gw = Tensor::zeros({o, c, kh, kw});
  float* gwp = gw.data<float>();
  const float* gp = gc.data<float>();
  const float* xp = xc.data<float>();
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t f = 0; f < o; ++f) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const float gv = gp[((img * o + f) * oh + oy) * ow + ox];
          if (gv == 0.f) continue;
          for (std::int64_t ch = 0; ch < c; ++ch) {
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = oy * sh - ph + ky;
              if (iy < 0 || iy >= in_h) continue;
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ox * sw - pw + kx;
                if (ix < 0 || ix >= in_w) continue;
                gwp[((f * c + ch) * kh + ky) * kw + kx] +=
                    gv * xp[((img * c + ch) * in_h + iy) * in_w + ix];
              }
            }
          }
        }
      }
    }
  }
  return gw;
}

void register_backward_ops() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    auto& fns = OpRegistry::functions();
    using Args = std::vector<RtValue>;
    fns.add({"fill_like", {"x", "value"}, [](const Args& a) -> RtValue {
               return fill_like(fx::rt_tensor(a.at(0)), fx::rt_double(a.at(1)));
             }});
    fns.add({"relu_backward", {"g", "x"}, [](const Args& a) -> RtValue {
               return relu_backward(fx::rt_tensor(a.at(0)), fx::rt_tensor(a.at(1)));
             }});
    fns.add({"sigmoid_backward", {"g", "y"}, [](const Args& a) -> RtValue {
               return sigmoid_backward(fx::rt_tensor(a.at(0)), fx::rt_tensor(a.at(1)));
             }});
    fns.add({"tanh_backward", {"g", "y"}, [](const Args& a) -> RtValue {
               return tanh_backward(fx::rt_tensor(a.at(0)), fx::rt_tensor(a.at(1)));
             }});
    fns.add({"gelu_backward", {"g", "x"}, [](const Args& a) -> RtValue {
               return gelu_backward(fx::rt_tensor(a.at(0)), fx::rt_tensor(a.at(1)));
             }});
    fns.add({"selu_backward", {"g", "x"}, [](const Args& a) -> RtValue {
               return selu_backward(fx::rt_tensor(a.at(0)), fx::rt_tensor(a.at(1)));
             }});
    fns.add({"sum_channels", {"g"}, [](const Args& a) -> RtValue {
               return sum_channels(fx::rt_tensor(a.at(0)));
             }});
    fns.add({"sum_dim0", {"g"}, [](const Args& a) -> RtValue {
               return ops::sum_dim(fx::rt_tensor(a.at(0)), 0);
             }});
    fns.add({"conv2d_grad_input",
             {"g", "weight", "stride", "padding", "in_h", "in_w"},
             [](const Args& a) -> RtValue {
               return conv2d_grad_input(
                   fx::rt_tensor(a.at(0)), fx::rt_tensor(a.at(1)),
                   fx::rt_int_list(a.at(2)), fx::rt_int_list(a.at(3)),
                   fx::rt_int(a.at(4)), fx::rt_int(a.at(5)));
             }});
    fns.add({"conv2d_grad_weight",
             {"g", "x", "stride", "padding", "kh", "kw"},
             [](const Args& a) -> RtValue {
               return conv2d_grad_weight(
                   fx::rt_tensor(a.at(0)), fx::rt_tensor(a.at(1)),
                   fx::rt_int_list(a.at(2)), fx::rt_int_list(a.at(3)),
                   fx::rt_int(a.at(4)), fx::rt_int(a.at(5)));
             }});
  });
}

// ---------------------------------------------------------------------------
// Gradient graph construction
// ---------------------------------------------------------------------------

class GradBuilder {
 public:
  GradBuilder(fx::GraphModule& gm, const std::vector<Tensor>& example_inputs)
      : gm_(gm) {
    register_backward_ops();
    shape_prop(gm, example_inputs);
  }

  GradientGraph build();

 private:
  // Emit a call_function node in the gradient graph.
  Value emit(const std::string& target, std::vector<Argument> args) {
    return Value(tracer_.create_proxy(Opcode::CallFunction, target,
                                      std::move(args)));
  }
  Argument arg(const Value& v) { return tracer_.create_arg(v); }
  Value attr(const std::string& qualname) {
    auto it = attr_cache_.find(qualname);
    if (it != attr_cache_.end()) return it->second;
    Value v(tracer_.create_proxy(Opcode::GetAttr, qualname, {}, {}));
    attr_cache_.emplace(qualname, v);
    return v;
  }

  Value fwd(const Node* n) const { return env_.at(n); }
  Value fwd_arg(const Argument& a) const { return env_.at(a.node()); }
  const Shape& shape_of(const Node* n) const {
    if (!n->has_shape()) {
      throw std::invalid_argument("autodiff: node '" + n->name() +
                                  "' has no shape metadata");
    }
    return n->shape();
  }

  void accumulate(const Node* n, Value g) {
    auto it = adjoint_.find(n);
    if (it == adjoint_.end()) adjoint_.emplace(n, std::move(g));
    else it->second = fx::fn::add(it->second, g);
  }
  void accumulate_param(const std::string& name, Value g) {
    auto it = param_grads_.find(name);
    if (it == param_grads_.end()) param_grads_.emplace(name, std::move(g));
    else it->second = fx::fn::add(it->second, g);
  }

  [[noreturn]] void unsupported(const Node& n) const {
    throw std::invalid_argument("autodiff: no VJP rule for node '" +
                                n.name() + "' (op=" +
                                fx::opcode_name(n.op()) +
                                ", target=" + n.target() + ")");
  }

  void replay_forward();
  void backprop(const Node& n, const Value& g);
  void backprop_function(const Node& n, const Value& g);
  void backprop_module(const Node& n, const Value& g);

  fx::GraphModule& gm_;
  fx::Tracer tracer_;
  std::unordered_map<const Node*, Value> env_;       // forward replay
  std::unordered_map<const Node*, Value> adjoint_;   // reverse accumulation
  std::map<std::string, Value> param_grads_;
  std::unordered_map<std::string, Value> attr_cache_;
};

void GradBuilder::replay_forward() {
  for (const Node* n : gm_.graph().nodes()) {
    switch (n->op()) {
      case Opcode::Placeholder:
        env_.emplace(n, Value(tracer_.create_proxy(Opcode::Placeholder,
                                                   n->target(), {}, {},
                                                   n->name())));
        break;
      case Opcode::GetAttr:
        env_.emplace(n, attr(n->target()));
        break;
      case Opcode::Output:
        break;
      default: {
        std::vector<Argument> args;
        for (const auto& a : n->args()) {
          if (a.is_node()) {
            args.push_back(arg(env_.at(a.node())));
          } else if (a.is_list()) {
            Argument::List items;
            for (const auto& item : a.list()) {
              items.push_back(item.is_node() ? arg(env_.at(item.node()))
                                             : item);
            }
            args.push_back(Argument(std::move(items)));
          } else {
            args.push_back(a);
          }
        }
        fx::Kwargs kwargs;
        for (const auto& [k, v] : n->kwargs()) {
          kwargs.emplace_back(k, v.is_node() ? arg(env_.at(v.node())) : v);
        }
        env_.emplace(n, Value(tracer_.create_proxy(n->op(), n->target(),
                                                   std::move(args),
                                                   std::move(kwargs),
                                                   n->name())));
      }
    }
  }
}

void GradBuilder::backprop_function(const Node& n, const Value& g) {
  const std::string& t = n.target();
  const auto& args = n.args();
  auto node0 = [&] { return args.at(0).node(); };

  if (t == "add" || t == "sub") {
    if (args[0].is_node()) accumulate(node0(), g);
    if (args.size() > 1 && args[1].is_node()) {
      accumulate(args[1].node(), t == "add" ? g : fx::fn::neg(g));
    }
    return;
  }
  if (t == "mul") {
    if (args[1].is_node()) {
      accumulate(node0(), fx::fn::mul(g, fwd_arg(args[1])));
      accumulate(args[1].node(), fx::fn::mul(g, fwd_arg(args[0])));
    } else {
      accumulate(node0(), fx::fn::mul(g, args[1].as_double()));
    }
    return;
  }
  if (t == "div") {
    if (args[1].is_node()) {
      Value b = fwd_arg(args[1]);
      accumulate(node0(), fx::fn::div(g, b));
      // d/db (a/b) = -(a/b)/b
      accumulate(args[1].node(),
                 fx::fn::neg(fx::fn::div(fx::fn::mul(g, fwd(&n)), b)));
    } else {
      accumulate(node0(), fx::fn::div(g, args[1].as_double()));
    }
    return;
  }
  if (t == "neg") {
    accumulate(node0(), fx::fn::neg(g));
    return;
  }
  if (t == "relu") {
    accumulate(node0(), emit("relu_backward", {arg(g), arg(fwd_arg(args[0]))}));
    return;
  }
  if (t == "sigmoid") {
    accumulate(node0(), emit("sigmoid_backward", {arg(g), arg(fwd(&n))}));
    return;
  }
  if (t == "tanh") {
    accumulate(node0(), emit("tanh_backward", {arg(g), arg(fwd(&n))}));
    return;
  }
  if (t == "gelu") {
    accumulate(node0(), emit("gelu_backward", {arg(g), arg(fwd_arg(args[0]))}));
    return;
  }
  if (t == "selu") {
    accumulate(node0(), emit("selu_backward", {arg(g), arg(fwd_arg(args[0]))}));
    return;
  }
  if (t == "linear") {
    // y = x @ w^T + b;  gx = g @ w;  gw = g^T @ x;  gb = sum_dim0(g)
    Value gx = fx::fn::matmul(g, fwd_arg(args[1]));
    accumulate(node0(), gx);
    Value gw = fx::fn::matmul(fx::fn::transpose(g, 0, 1), fwd_arg(args[0]));
    accumulate(args[1].node(), gw);
    if (args.size() > 2 && args[2].is_node()) {
      accumulate(args[2].node(), emit("sum_dim0", {arg(g)}));
    }
    return;
  }
  if (t == "matmul") {
    accumulate(node0(),
               fx::fn::matmul(g, fx::fn::transpose(fwd_arg(args[1]), 0, 1)));
    accumulate(args[1].node(),
               fx::fn::matmul(fx::fn::transpose(fwd_arg(args[0]), 0, 1), g));
    return;
  }
  if (t == "conv2d") {
    const Shape& xs = shape_of(node0());
    const Shape& ws = shape_of(args[1].node());
    const Argument stride = args.at(3);
    const Argument padding = args.at(4);
    accumulate(node0(),
               emit("conv2d_grad_input",
                    {arg(g), arg(fwd_arg(args[1])), stride, padding,
                     Argument(xs[2]), Argument(xs[3])}));
    accumulate(args[1].node(),
               emit("conv2d_grad_weight",
                    {arg(g), arg(fwd_arg(args[0])), stride, padding,
                     Argument(ws[2]), Argument(ws[3])}));
    if (args.size() > 2 && args[2].is_node()) {
      accumulate(args[2].node(), emit("sum_channels", {arg(g)}));
    }
    return;
  }
  if (t == "batch_norm") {
    // Eval mode: y = (x - mean) * s + shift with s = gamma / sqrt(var+eps).
    Value gamma = fwd_arg(args[1]);
    Value var = fwd_arg(args[4]);
    Value inv_std = fx::fn::div(
        Value(tracer_.create_proxy(Opcode::CallFunction, "fill_like",
                                   {arg(gamma), Argument(1.0)})),
        fx::fn::sqrt(fx::fn::add(var, args.at(5).as_double())));
    const std::vector<std::int64_t> chan{-1, 1, 1};
    Value scale_r = fx::fn::reshape(fx::fn::mul(gamma, inv_std), chan);
    accumulate(node0(), fx::fn::mul(g, scale_r));
    // ggamma = sum_channels(g * x_hat); gbeta = sum_channels(g)
    Value mean_r = fx::fn::reshape(fwd_arg(args[3]), chan);
    Value xhat = fx::fn::mul(fx::fn::sub(fwd_arg(args[0]), mean_r),
                             fx::fn::reshape(inv_std, chan));
    accumulate(args[1].node(),
               emit("sum_channels", {arg(fx::fn::mul(g, xhat))}));
    accumulate(args[2].node(), emit("sum_channels", {arg(g)}));
    return;
  }
  if (t == "flatten" || t == "reshape") {
    const Shape& xs = shape_of(node0());
    accumulate(node0(),
               fx::fn::reshape(g, std::vector<std::int64_t>(xs.begin(),
                                                            xs.end())));
    return;
  }
  if (t == "dropout") {
    if (args.at(2).is_bool() && args[2].as_bool()) unsupported(n);
    accumulate(node0(), g);  // eval mode: identity
    return;
  }
  if (t == "sum") {
    accumulate(node0(), fx::fn::mul(emit("fill_like",
                                         {arg(fwd_arg(args[0])), Argument(1.0)}),
                                    g));
    return;
  }
  if (t == "mean") {
    const double inv_n =
        1.0 / static_cast<double>(shape_numel(shape_of(node0())));
    accumulate(node0(),
               fx::fn::mul(emit("fill_like",
                                {arg(fwd_arg(args[0])), Argument(inv_n)}),
                           g));
    return;
  }
  if (t == "transpose") {
    accumulate(node0(), fx::fn::transpose(g, args.at(1).as_int(),
                                          args.at(2).as_int()));
    return;
  }
  unsupported(n);
}

void GradBuilder::backprop_module(const Node& n, const Value& g) {
  const auto m = gm_.resolve_module(n.target());
  const Node* x = n.args().at(0).node();
  const std::string& t = n.target();

  if (const auto* lin = dynamic_cast<const nn::Linear*>(m.get())) {
    Value w = attr(t + ".weight");
    accumulate(x, fx::fn::matmul(g, w));
    accumulate_param(t + ".weight",
                     fx::fn::matmul(fx::fn::transpose(g, 0, 1), fwd(x)));
    if (lin->has_bias()) {
      accumulate_param(t + ".bias", emit("sum_dim0", {arg(g)}));
    }
    return;
  }
  if (const auto* conv = dynamic_cast<const nn::Conv2d*>(m.get())) {
    const Shape& xs = shape_of(x);
    const Tensor& w = conv->param("weight");
    const Argument stride(conv->stride());
    const Argument padding(conv->padding());
    accumulate(x, emit("conv2d_grad_input",
                       {arg(g), arg(attr(t + ".weight")), stride, padding,
                        Argument(xs[2]), Argument(xs[3])}));
    accumulate_param(t + ".weight",
                     emit("conv2d_grad_weight",
                          {arg(g), arg(fwd(x)), stride, padding,
                           Argument(w.size(2)), Argument(w.size(3))}));
    if (conv->has_bias()) {
      accumulate_param(t + ".bias", emit("sum_channels", {arg(g)}));
    }
    return;
  }
  if (const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(m.get())) {
    Value gamma = attr(t + ".weight");
    Value var = attr(t + ".running_var");
    Value inv_std = fx::fn::div(
        emit("fill_like", {arg(gamma), Argument(1.0)}),
        fx::fn::sqrt(fx::fn::add(var, bn->eps())));
    const std::vector<std::int64_t> chan{-1, 1, 1};
    accumulate(x, fx::fn::mul(g, fx::fn::reshape(fx::fn::mul(gamma, inv_std),
                                                 chan)));
    Value xhat = fx::fn::mul(
        fx::fn::sub(fwd(x), fx::fn::reshape(attr(t + ".running_mean"), chan)),
        fx::fn::reshape(inv_std, chan));
    accumulate_param(t + ".weight",
                     emit("sum_channels", {arg(fx::fn::mul(g, xhat))}));
    accumulate_param(t + ".bias", emit("sum_channels", {arg(g)}));
    return;
  }
  const std::string& kind = m->kind();
  if (kind == "ReLU") {
    accumulate(x, emit("relu_backward", {arg(g), arg(fwd(x))}));
  } else if (kind == "Sigmoid") {
    accumulate(x, emit("sigmoid_backward", {arg(g), arg(fwd(&n))}));
  } else if (kind == "Tanh") {
    accumulate(x, emit("tanh_backward", {arg(g), arg(fwd(&n))}));
  } else if (kind == "GELU") {
    accumulate(x, emit("gelu_backward", {arg(g), arg(fwd(x))}));
  } else if (kind == "SELU") {
    accumulate(x, emit("selu_backward", {arg(g), arg(fwd(x))}));
  } else if (kind == "Flatten") {
    const Shape& xs = shape_of(x);
    accumulate(x, fx::fn::reshape(
                      g, std::vector<std::int64_t>(xs.begin(), xs.end())));
  } else if (kind == "Identity" || kind == "Dropout") {
    if (m->training()) unsupported(n);
    accumulate(x, g);
  } else {
    unsupported(n);
  }
}

void GradBuilder::backprop(const Node& n, const Value& g) {
  switch (n.op()) {
    case Opcode::CallFunction:
    case Opcode::CallMethod:
      backprop_function(n, g);
      return;
    case Opcode::CallModule:
      backprop_module(n, g);
      return;
    case Opcode::GetAttr:
      // Gradient reached a parameter/buffer leaf.
      accumulate_param(n.target(), g);
      return;
    default:
      unsupported(n);
  }
}

GradientGraph GradBuilder::build() {
  tracer_.start(gm_.root());
  fx::Tracer::Scope scope(tracer_);
  replay_forward();

  // Seed: d(sum(out))/d(out) = ones.
  const Node* out_node = gm_.graph().output_node();
  if (!out_node || !out_node->args().at(0).is_node()) {
    throw std::invalid_argument("autodiff: graph must return a single node");
  }
  const Node* result = out_node->args()[0].node();
  adjoint_.emplace(result,
                   emit("fill_like", {arg(fwd(result)), Argument(1.0)}));

  const auto order = gm_.graph().nodes();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Node* n = *it;
    if (n->op() == Opcode::Output || n->op() == Opcode::Placeholder) continue;
    auto adj = adjoint_.find(n);
    if (adj == adjoint_.end()) continue;  // node does not affect the output
    backprop(*n, adj->second);
  }

  GradientGraph out;
  Argument::List results;
  for (const Node* ph : gm_.graph().placeholders()) {
    auto adj = adjoint_.find(ph);
    if (adj == adjoint_.end()) {
      // Input does not influence the output: gradient of zeros.
      adj = adjoint_
                .emplace(ph, emit("fill_like", {arg(fwd(ph)), Argument(0.0)}))
                .first;
    }
    results.push_back(tracer_.create_arg(adj->second));
    out.output_names.push_back(ph->name());
  }
  for (const auto& [name, g] : param_grads_) {
    results.push_back(tracer_.create_arg(g));
    out.output_names.push_back(name);
  }

  auto graph = tracer_.finish_graph();
  graph->output(Argument(std::move(results)));
  graph->eliminate_dead_code();
  out.module = std::make_shared<fx::GraphModule>(gm_.root(), std::move(graph),
                                                 "GradientGraph");
  out.module->recompile();
  return out;
}

}  // namespace

std::vector<std::pair<std::string, Tensor>> GradientGraph::run(
    const std::vector<Tensor>& inputs) const {
  std::vector<Value> vs;
  vs.reserve(inputs.size());
  for (const auto& t : inputs) vs.emplace_back(t);
  Value out = module->forward(vs);
  std::vector<std::pair<std::string, Tensor>> named;
  const auto& tuple = out.tuple();
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    named.emplace_back(output_names.at(i), tuple[i].tensor());
  }
  return named;
}

GradientGraph build_gradient_graph(fx::GraphModule& gm,
                                   const std::vector<Tensor>& example_inputs) {
  GradBuilder builder(gm, example_inputs);
  return builder.build();
}

}  // namespace fxcpp::passes
