// Symbolic shape propagation — one of the "additional systems ... in
// development" the paper lists beside naive shape_prop (Section 6.3), and
// the machinery behind the Figure 4 discussion: on a basic-block IR a single
// forward transfer suffices, while control flow forces a fixpoint analysis
// whose join can diverge to "dynamic".
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/graph_module.h"

namespace fxcpp::passes {

// A dimension that is either statically known or dynamic (unknown).
struct SymDim {
  static SymDim known(std::int64_t v) { return SymDim{true, v}; }
  static SymDim dynamic() { return SymDim{false, -1}; }

  bool is_known = false;
  std::int64_t value = -1;

  bool operator==(const SymDim& o) const {
    return is_known == o.is_known && (!is_known || value == o.value);
  }
  std::string str() const {
    return is_known ? std::to_string(value) : "*dynamic*";
  }
};

using SymShape = std::vector<SymDim>;

std::string sym_shape_str(const SymShape& s);
SymShape sym_of(const Shape& s);

// Lattice join: dims that disagree become dynamic; rank mismatch joins to a
// fully-dynamic shape of unknown rank (empty optional).
std::optional<SymShape> join(const SymShape& a, const SymShape& b);

// Shared module transfer-function table. One entry per nn module kind; an
// entry's fn returns nullopt when the module is not its kind (the table is
// tried in order). Both symbolic propagation here and the gradual type
// checker (type_check.cc) key off this single table, so their answers for
// "what shape does this module produce" can never drift apart.
struct ModuleTransfer {
  const char* kind;
  std::function<std::optional<SymShape>(const nn::Module&, const SymShape&)> fn;
};
const std::vector<ModuleTransfer>& module_transfer_table();

// Apply the table; modules with no entry are shape-preserving (activations,
// norms, dropout, identity). Throws on rank mismatches (e.g. conv on
// non-NCHW input) like the concrete kernels would.
SymShape module_sym_transfer(const nn::Module& m, const SymShape& x);

// Forward-propagate symbolic shapes through a (basic block) fx graph given
// one symbolic shape per placeholder. Annotates each tensor-producing node
// with meta["sym_shape"] (stringified) and returns the output node's shape.
// Single pass — the payoff of Section 5.5's no-control-flow decision.
SymShape propagate_symbolic(fx::GraphModule& gm,
                            const std::vector<SymShape>& input_shapes);

// Figure 4: the loop `for _ in range(itr): x = cat((x, x), dim=0)` as a
// fixpoint problem. Repeatedly applies the body transfer function and joins
// with the accumulated state until convergence (returns iterations taken)
// or divergence to dynamic in the loop-carried dimension.
struct LoopAnalysis {
  SymShape result;
  int iterations = 0;
  bool converged = false;
};
LoopAnalysis analyze_loop_cat(const SymShape& init, int cat_dim,
                              int max_iterations = 64);

}  // namespace fxcpp::passes
