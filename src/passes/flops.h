// FLOPs / memory-traffic / size estimation (Section 6.3): the basis of the
// paper's "framework for simulation of deep learning inference at scale" —
// estimating program runtime and memory consumption from the captured graph
// instead of running on real devices.
//
// Requires ShapeProp to have annotated the graph first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph_module.h"

namespace fxcpp::passes {

struct NodeCost {
  const fx::Node* node = nullptr;
  double flops = 0.0;          // multiply-accumulates counted as 2 ops
  double bytes_read = 0.0;     // activations + parameters
  double bytes_written = 0.0;  // output activations
  double param_bytes = 0.0;
};

struct CostReport {
  std::vector<NodeCost> per_node;
  double total_flops = 0.0;
  double total_bytes = 0.0;    // read + written
  double param_bytes = 0.0;

  // Predicted runtime on a roofline device model: max(compute, memory) time.
  double estimate_seconds(double flops_per_sec, double bytes_per_sec) const;

  std::string to_table() const;
};

// Estimate per-node costs. Nodes without shape metadata are skipped
// (contributing zero), matching the "estimation over what was captured"
// character of the paper's simulation framework.
CostReport estimate_cost(const fx::GraphModule& gm);

}  // namespace fxcpp::passes
