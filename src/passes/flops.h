// FLOPs / memory-traffic / size estimation (Section 6.3): the basis of the
// paper's "framework for simulation of deep learning inference at scale" —
// estimating program runtime and memory consumption from the captured graph
// instead of running on real devices.
//
// Requires ShapeProp to have annotated the graph first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph_module.h"

namespace fxcpp::passes {

struct NodeCost {
  const fx::Node* node = nullptr;
  double flops = 0.0;          // multiply-accumulates counted as 2 ops
  double bytes_read = 0.0;     // activations + parameters
  double bytes_written = 0.0;  // output activations
  double param_bytes = 0.0;
  // False when this node produces a value but carries no shape meta (absent
  // or invalidated by a transform): its zeros mean "unmeasured", not "free".
  bool measured = true;
};

struct CostReport {
  std::vector<NodeCost> per_node;
  double total_flops = 0.0;
  double total_bytes = 0.0;    // read + written
  double param_bytes = 0.0;
  // Value-producing nodes skipped for missing shape meta. Non-empty means
  // the totals undercount; run ShapeProp (or use the example-input overload
  // of estimate_cost) to measure them.
  std::vector<const fx::Node*> unmeasured;

  // Predicted runtime on a roofline device model: max(compute, memory) time.
  double estimate_seconds(double flops_per_sec, double bytes_per_sec) const;

  std::string to_table() const;
};

// Estimate per-node costs. Nodes without shape metadata contribute zero and
// are surfaced in `unmeasured` (and by to_table()) — transforms invalidate
// stale meta, so a silent 0 would misreport freshly rewritten graphs.
CostReport estimate_cost(const fx::GraphModule& gm);

// Like the above, but re-runs ShapeProp on `example_inputs` first whenever
// any value-producing node lacks shape meta, so freshly built or transformed
// graphs get measured automatically.
CostReport estimate_cost(fx::GraphModule& gm,
                         const std::vector<Tensor>& example_inputs);

}  // namespace fxcpp::passes
