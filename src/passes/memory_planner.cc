#include "passes/memory_planner.h"

#include <algorithm>
#include <cstddef>

#include "analysis/dataflow.h"  // alias_summary: shared freshness/lifetime facts
#include "passes/shape_prop.h"
#include "tensor/dtype.h"

namespace fxcpp::passes {

using fx::CompiledGraph;
using fx::GraphModule;
using fx::GuardSpec;
using fx::Instr;
using fx::Opcode;
using fx::PlanInterval;
using fx::RtValue;
using fx::TapePlan;

FirstFitPacking first_fit_pack(const std::vector<LiveRange>& ranges,
                               int num_steps) {
  struct Block {
    std::int64_t off, size;
  };
  FirstFitPacking out;
  out.offsets.assign(ranges.size(), -1);
  std::vector<Block> free_blocks;
  auto alloc = [&](std::int64_t size) {
    for (std::size_t i = 0; i < free_blocks.size(); ++i) {
      if (free_blocks[i].size >= size) {
        const std::int64_t off = free_blocks[i].off;
        if (free_blocks[i].size == size) {
          free_blocks.erase(free_blocks.begin() +
                            static_cast<std::ptrdiff_t>(i));
        } else {
          free_blocks[i].off += size;
          free_blocks[i].size -= size;
        }
        return off;
      }
    }
    const std::int64_t off = out.high_water;
    out.high_water += size;
    return off;
  };

  // Buffers live before the first step (graph inputs) get memory first.
  for (std::size_t b = 0; b < ranges.size(); ++b) {
    if (ranges[b].def < 0 && out.offsets[b] < 0) {
      out.offsets[b] = alloc(ranges[b].size);
    }
  }
  for (int i = 0; i < num_steps; ++i) {
    // Allocate outputs defined at step i...
    for (std::size_t b = 0; b < ranges.size(); ++b) {
      if (ranges[b].def == i && out.offsets[b] < 0) {
        out.offsets[b] = alloc(ranges[b].size);
      }
    }
    // ...then free buffers whose last use is step i.
    for (std::size_t b = 0; b < ranges.size(); ++b) {
      if (ranges[b].last_use == i && out.offsets[b] >= 0) {
        free_blocks.push_back(Block{out.offsets[b], ranges[b].size});
      }
    }
  }
  return out;
}

namespace {

std::size_t meta_nbytes(const fx::Node* n) {
  if (!n || !n->has_meta("shape") || !n->has_meta("dtype")) return 0;
  std::int64_t numel = 1;
  for (std::int64_t d : n->shape()) {
    if (d < 0) return 0;  // symbolic / unknown dimension
    numel *= d;
  }
  return static_cast<std::size_t>(numel) * dtype_size(n->dtype());
}

// Slot granularity: matches Storage's own 64-byte padding, so adjacent
// slots never share a cache line and an adopting allocation's padded tail
// stays inside its slot.
constexpr std::size_t kSlotAlign = 64;

std::size_t pad_slot(std::size_t nbytes) {
  const std::size_t p = (nbytes + kSlotAlign - 1) / kSlotAlign * kSlotAlign;
  return p == 0 ? kSlotAlign : p;
}

bool meta_matches(const fx::Node* a, const fx::Node* b) {
  return a && b && a->has_meta("shape") && b->has_meta("shape") &&
         a->has_meta("dtype") && b->has_meta("dtype") &&
         a->shape() == b->shape() && a->dtype() == b->dtype();
}

void install_with_guards(GraphModule& gm,
                         std::shared_ptr<const TapePlan> plan) {
  // Mirror the plan's input contract onto the module's resilience guards
  // (PR 4) when every placeholder has a named spec; unnamed specs mean
  // non-tensor or meta-less placeholders, which strict guards can't express.
  const bool all_named =
      std::all_of(plan->guards.begin(), plan->guards.end(),
                  [](const GuardSpec& g) { return !g.placeholder.empty(); });
  if (all_named) gm.set_guards(plan->guards);
  gm.install_plan(std::move(plan));
}

}  // namespace

std::shared_ptr<const TapePlan> plan_tape(GraphModule& gm) {
  if (!gm.compiled()) gm.recompile();
  const CompiledGraph& cg = gm.compiled_graph();
  const auto& instrs = cg.instrs();
  const int n = static_cast<int>(instrs.size());

  // Pass 1 — alias facts from the shared dataflow layer (analysis/dataflow.h).
  // Summary entries are the graph's non-placeholder nodes in graph order,
  // which is exactly the tape's instruction order: summary index i IS
  // instruction i. Freshness, base sets, lifetimes, readers, and escapes all
  // come from the one analysis the verifier and fxlint --analyze also run,
  // so the planner can never disagree with them.
  const analysis::AliasSummary aliases =
      analysis::alias_summary(gm.graph(), &gm);

  auto plan = std::make_shared<TapePlan>();
  plan->intervals.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    PlanInterval& iv = plan->intervals[iu];
    iv.def = i;
    iv.last_use = aliases.last_use[iu];
    iv.readers = aliases.readers[iu];
  }

  // Planned candidacy: fresh output, known static size, does not escape.
  std::vector<bool> candidate(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    if (!aliases.fresh[iu]) continue;
    const std::size_t nb = meta_nbytes(instrs[iu].node);
    if (nb == 0) continue;
    plan->intervals[iu].nbytes = nb;
    plan->intervals[iu].padded = pad_slot(nb);
    plan->unplanned_bytes += pad_slot(nb);
    candidate[iu] = !aliases.escaped[iu];
  }

  // Pass 2 — in-place merging (can_alias). Instruction i may write over
  // input j's slot when:
  //  (a) j is read directly (not through a view), is a planned candidate,
  //      and its interval dies exactly at i;
  //  (b) i's and j's traced shape/dtype match (the kernels' index-aligned
  //      path: o[k] is written only after pa[k] is read);
  //  (c) every OTHER tensor operand of i is itself a directly-read fresh
  //      instruction output (AliasSummary::direct_fresh). Fresh kernel
  //      outputs are always contiguous, so no operand triggers a defensive
  //      .contiguous() copy inside i's kernel — such a copy could be
  //      slot-sized and would adopt the armed hint, clobbering j's live
  //      bytes before the kernel reads them.
  std::vector<int> alias_root(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) alias_root[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    if (!candidate[iu]) continue;
    const Instr& ins = instrs[iu];
    if (ins.op != Opcode::CallFunction && ins.op != Opcode::CallMethod)
      continue;
    if (!ins.fn || !ins.fn->can_alias) continue;
    // (c): every operand must be a directly-read fresh instruction output.
    // Placeholder / get_attr operands (absent from or external in the
    // summary) fail the test, exactly as their empty base sets used to.
    std::vector<int> operand_entries;
    bool all_direct_fresh = true;
    for (const fx::Node* in : aliases.order[iu]->input_nodes()) {
      const auto it = aliases.index.find(in);
      if (it == aliases.index.end() || !aliases.direct_fresh(it->second)) {
        all_direct_fresh = false;
        break;
      }
      operand_entries.push_back(it->second);
    }
    if (!all_direct_fresh) continue;
    for (int j : operand_entries) {
      const auto ju = static_cast<std::size_t>(j);
      if (!candidate[ju]) continue;
      if (plan->intervals[ju].last_use != i) continue;  // must die here
      if (!meta_matches(ins.node, instrs[ju].node)) continue;
      alias_root[iu] = alias_root[ju];
      plan->intervals[iu].in_place = true;
      plan->intervals[iu].alias_of = j;
      break;
    }
  }

  // Pass 3 — pack the alias-merged live ranges first-fit into one arena.
  // Ranges are created in def order (an alias chain's root always precedes
  // its members), so index order == allocation order, exactly like the TRT
  // prototype this routine was extracted from.
  std::vector<LiveRange> ranges;
  std::vector<int> range_of(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    if (!candidate[iu]) continue;
    const int root = alias_root[iu];
    if (root == i) {
      range_of[iu] = static_cast<int>(ranges.size());
      ranges.push_back(
          LiveRange{static_cast<std::int64_t>(plan->intervals[iu].padded), i,
                    plan->intervals[iu].last_use});
    } else {
      const int ri = range_of[static_cast<std::size_t>(root)];
      ranges[static_cast<std::size_t>(ri)].last_use =
          std::max(ranges[static_cast<std::size_t>(ri)].last_use,
                   plan->intervals[iu].last_use);
      range_of[iu] = ri;
    }
  }
  const FirstFitPacking packed = first_fit_pack(ranges, n);
  plan->arena_bytes = static_cast<std::size_t>(packed.high_water);
  for (int i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    if (!candidate[iu]) continue;
    PlanInterval& iv = plan->intervals[iu];
    iv.offset = static_cast<std::size_t>(
        packed.offsets[static_cast<std::size_t>(range_of[iu])]);
    iv.planned = true;
    plan->planned_bytes += iv.padded;
    ++plan->planned_count;
    if (iv.in_place) ++plan->aliased_count;
  }

  // Input contract: one spec per placeholder; meta-less placeholders get an
  // unnamed (unchecked) spec, and their downstream nodes have no meta either
  // so nothing unsound is planned from them.
  plan->guards.reserve(cg.input_nodes().size());
  for (const fx::Node* pn : cg.input_nodes()) {
    GuardSpec g;
    if (pn && pn->has_meta("shape") && pn->has_meta("dtype")) {
      g.placeholder = pn->name();
      g.shape = pn->shape();
      g.dtype = pn->dtype();
    }
    plan->guards.push_back(std::move(g));
  }
  return plan;
}

const TapePlan& compile_planned(GraphModule& gm,
                                const std::vector<Tensor>& example_inputs) {
  return compile_planned(gm, example_inputs, fx::PlanCacheOptions{});
}

const TapePlan& compile_planned(GraphModule& gm,
                                const std::vector<Tensor>& example_inputs,
                                const fx::PlanCacheOptions& cache_opts) {
  shape_prop(gm, example_inputs);
  install_with_guards(gm, plan_tape(gm));
  // The replanner makes planned entry points shape-polymorphic: on a guard
  // mismatch they re-propagate shapes from the actual inputs and swap in a
  // fresh plan (stateless, so it survives recompile()).
  gm.set_replanner([](GraphModule& g, const std::vector<RtValue>& inputs) {
    std::vector<Tensor> ts;
    ts.reserve(inputs.size());
    for (const RtValue& v : inputs) {
      if (!fx::rt_is_tensor(v)) {
        g.clear_plan();  // non-tensor inputs: fall back to unplanned runs
        return;
      }
      ts.push_back(fx::rt_tensor(v));
    }
    shape_prop(g, ts);
    install_with_guards(g, plan_tape(g));
  });
  // Seed the cache with the example-shape specialization so the first real
  // request at the traced shape is already a hit.
  auto cache = std::make_shared<fx::PlanCache>(cache_opts);
  std::vector<RtValue> example_rt(example_inputs.begin(), example_inputs.end());
  cache->insert(example_rt, gm.plan());
  gm.set_plan_cache(std::move(cache));
  return *gm.plan();
}

}  // namespace fxcpp::passes
