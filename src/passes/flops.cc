#include "passes/flops.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "nn/layers.h"
#include "passes/shape_prop.h"

namespace fxcpp::passes {

namespace {

double numel_of(const Shape& s) {
  return static_cast<double>(shape_numel(s));
}

bool node_shape(const fx::Node* n, Shape& out) {
  if (!n->has_shape()) return false;
  out = n->shape();
  return true;
}

// FLOPs for a call_module node, dispatching on the module class like the
// isinstance checks an fx analysis pass would do in Python.
double module_flops(const nn::Module& m, const Shape& in, const Shape& out) {
  if (const auto* lin = dynamic_cast<const nn::Linear*>(&m)) {
    const double rows = numel_of(in) / static_cast<double>(lin->in_features());
    return 2.0 * rows * static_cast<double>(lin->in_features()) *
           static_cast<double>(lin->out_features());
  }
  if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&m)) {
    // 2 * output elements * reduction length.
    const Tensor& w = conv->param("weight");
    const double red = static_cast<double>(w.numel() / w.size(0));
    return 2.0 * numel_of(out) * red;
  }
  if (dynamic_cast<const nn::BatchNorm2d*>(&m) ||
      dynamic_cast<const nn::LayerNorm*>(&m)) {
    return 2.0 * numel_of(out);
  }
  // Activations, pooling, reshapes: ~1 op per output element.
  return numel_of(out);
}

double function_flops(const fx::Node& n, const Shape& out) {
  const std::string& t = n.target();
  auto input_shape = [&](std::size_t i, Shape& s) {
    return n.args().size() > i && n.args()[i].is_node() &&
           node_shape(n.args()[i].node(), s);
  };
  if (t == "linear" || t == "linear_relu" || t == "matmul") {
    Shape ws;
    if (input_shape(1, ws) && ws.size() == 2) {
      const double k = static_cast<double>(t == "matmul" ? ws[0] : ws[1]);
      return 2.0 * numel_of(out) * k;
    }
    return numel_of(out);
  }
  if (t == "conv2d") {
    Shape ws;
    if (input_shape(1, ws) && ws.size() == 4) {
      return 2.0 * numel_of(out) *
             static_cast<double>(ws[1] * ws[2] * ws[3]);
    }
    return numel_of(out);
  }
  if (t == "batch_norm" || t == "layer_norm") return 2.0 * numel_of(out);
  if (t == "softmax") return 5.0 * numel_of(out);
  if (t == "max_pool2d" || t == "avg_pool2d") {
    Shape in;
    if (input_shape(0, in)) return numel_of(in);
    return numel_of(out);
  }
  return numel_of(out);
}

}  // namespace

double CostReport::estimate_seconds(double flops_per_sec,
                                    double bytes_per_sec) const {
  return std::max(total_flops / flops_per_sec, total_bytes / bytes_per_sec);
}

std::string CostReport::to_table() const {
  std::ostringstream os;
  os << std::left << std::setw(28) << "node" << std::setw(16) << "gflops"
     << std::setw(16) << "mbytes" << "\n";
  for (const auto& c : per_node) {
    if (c.flops == 0.0 && c.bytes_read == 0.0) continue;
    os << std::left << std::setw(28) << c.node->name() << std::setw(16)
       << std::setprecision(4) << c.flops / 1e9 << std::setw(16)
       << (c.bytes_read + c.bytes_written) / 1e6 << "\n";
  }
  os << "total: " << total_flops / 1e9 << " GFLOPs, " << total_bytes / 1e6
     << " MB traffic, " << param_bytes / 1e6 << " MB parameters\n";
  if (!unmeasured.empty()) {
    os << "unmeasured: " << unmeasured.size()
       << " node(s) missing shape meta (run ShapeProp):";
    for (const auto* n : unmeasured) os << ' ' << n->name();
    os << "\n";
  }
  return os.str();
}

CostReport estimate_cost(const fx::GraphModule& gm) {
  CostReport report;
  for (const fx::Node* n : gm.graph().nodes()) {
    NodeCost cost;
    cost.node = n;
    Shape out;
    const bool has_out = node_shape(n, out);
    if (!has_out && n->op() != fx::Opcode::Output) {
      // Value-producing node with absent/invalidated shape meta: the zeros
      // below are "unmeasured", not "free" — surface it.
      cost.measured = false;
      report.unmeasured.push_back(n);
    }

    if (has_out && n->op() != fx::Opcode::Placeholder) {
      cost.bytes_written = numel_of(out) * 4.0;
    }
    for (const fx::Node* in : n->input_nodes()) {
      Shape s;
      if (node_shape(in, s)) cost.bytes_read += numel_of(s) * 4.0;
    }

    switch (n->op()) {
      case fx::Opcode::CallModule: {
        if (has_out) {
          const auto m = gm.resolve_module(n->target());
          Shape in;
          if (!n->args().empty() && n->args()[0].is_node()) {
            node_shape(n->args()[0].node(), in);
          }
          cost.flops = module_flops(*m, in, out);
          cost.param_bytes = static_cast<double>(m->num_parameters()) * 4.0;
          cost.bytes_read += cost.param_bytes;
        }
        break;
      }
      case fx::Opcode::CallFunction:
      case fx::Opcode::CallMethod:
        if (has_out) cost.flops = function_flops(*n, out);
        break;
      case fx::Opcode::GetAttr:
        if (has_out) cost.param_bytes = numel_of(out) * 4.0;
        break;
      default:
        break;
    }
    report.total_flops += cost.flops;
    report.total_bytes += cost.bytes_read + cost.bytes_written;
    report.param_bytes += cost.param_bytes;
    report.per_node.push_back(cost);
  }
  return report;
}

CostReport estimate_cost(fx::GraphModule& gm,
                         const std::vector<Tensor>& example_inputs) {
  bool missing = false;
  for (const fx::Node* n : gm.graph().nodes()) {
    if (n->op() != fx::Opcode::Output && !n->has_shape()) {
      missing = true;
      break;
    }
  }
  if (missing) shape_prop(gm, example_inputs);
  return estimate_cost(static_cast<const fx::GraphModule&>(gm));
}

}  // namespace fxcpp::passes
