#include "passes/symbolic_shapes.h"

#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "nn/layers.h"

namespace fxcpp::passes {

std::string sym_shape_str(const SymShape& s) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ", ";
    os << s[i].str();
  }
  os << ']';
  return os.str();
}

SymShape sym_of(const Shape& s) {
  SymShape out;
  out.reserve(s.size());
  for (auto d : s) out.push_back(SymDim::known(d));
  return out;
}

std::optional<SymShape> join(const SymShape& a, const SymShape& b) {
  if (a.size() != b.size()) return std::nullopt;
  SymShape out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = (a[i] == b[i]) ? a[i] : SymDim::dynamic();
  }
  return out;
}

namespace {

SymDim sym_div_ceil_conv(const SymDim& in, std::int64_t pad, std::int64_t k,
                         std::int64_t stride) {
  if (!in.is_known) return SymDim::dynamic();
  return SymDim::known((in.value + 2 * pad - k) / stride + 1);
}

SymDim broadcast_dim(const SymDim& a, const SymDim& b) {
  if (a.is_known && a.value == 1) return b;
  if (b.is_known && b.value == 1) return a;
  if (a == b) return a;
  if (!a.is_known || !b.is_known) return SymDim::dynamic();
  throw std::invalid_argument("symbolic broadcast mismatch");
}

SymShape broadcast_sym(const SymShape& a, const SymShape& b) {
  const std::size_t n = std::max(a.size(), b.size());
  SymShape out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SymDim da = i < a.size() ? a[a.size() - 1 - i] : SymDim::known(1);
    const SymDim db = i < b.size() ? b[b.size() - 1 - i] : SymDim::known(1);
    out[n - 1 - i] = broadcast_dim(da, db);
  }
  return out;
}

SymDim product(const SymShape& s, std::size_t from) {
  std::int64_t p = 1;
  for (std::size_t i = from; i < s.size(); ++i) {
    if (!s[i].is_known) return SymDim::dynamic();
    p *= s[i].value;
  }
  return SymDim::known(p);
}

SymShape flatten_sym(const SymShape& in, std::int64_t start) {
  if (start < 0) start += static_cast<std::int64_t>(in.size());
  SymShape out(in.begin(), in.begin() + start);
  out.push_back(product(in, static_cast<std::size_t>(start)));
  return out;
}

struct SymEnv {
  std::unordered_map<const fx::Node*, SymShape> shapes;
  const SymShape& of(const fx::Argument& a) const {
    if (!a.is_node()) {
      throw std::invalid_argument("expected node argument for shape input");
    }
    auto it = shapes.find(a.node());
    if (it == shapes.end()) {
      throw std::logic_error("symbolic shape requested before definition");
    }
    return it->second;
  }
};

SymShape conv_like(const SymShape& x, std::int64_t out_ch, std::int64_t k,
                   std::int64_t stride, std::int64_t pad) {
  if (x.size() != 4) throw std::invalid_argument("conv2d input must be NCHW");
  return {x[0], SymDim::known(out_ch),
          sym_div_ceil_conv(x[2], pad, k, stride),
          sym_div_ceil_conv(x[3], pad, k, stride)};
}

SymShape function_transfer(const fx::Node& n, const SymEnv& env) {
  const std::string& t = n.target();
  auto in0 = [&] { return env.of(n.args().at(0)); };
  if (t == "add" || t == "sub" || t == "mul" || t == "div") {
    if (n.args().at(1).is_node()) {
      return broadcast_sym(in0(), env.of(n.args()[1]));
    }
    return in0();
  }
  if (t == "linear" || t == "linear_relu") {
    SymShape out = in0();
    const SymShape& w = env.of(n.args().at(1));
    out.back() = w.at(0);
    return out;
  }
  if (t == "matmul") {
    SymShape a = in0();
    const SymShape& b = env.of(n.args().at(1));
    a.back() = b.back();
    return a;
  }
  if (t == "conv2d") {
    const SymShape& x = in0();
    const SymShape& w = env.of(n.args().at(1));
    const auto stride = n.args().at(3).int_list();
    const auto pad = n.args().at(4).int_list();
    if (!w[2].is_known || !w[0].is_known) {
      return {x[0], SymDim::dynamic(), SymDim::dynamic(), SymDim::dynamic()};
    }
    return conv_like(x, w[0].value, w[2].value, stride[0], pad[0]);
  }
  if (t == "flatten") return flatten_sym(in0(), n.args().at(1).as_int());
  if (t == "reshape") {
    const auto dims = n.args().at(1).int_list();
    SymShape out;
    const SymDim total = product(in0(), 0);
    for (auto d : dims) {
      out.push_back(d == -1 ? (total.is_known ? SymDim::dynamic() : SymDim::dynamic())
                            : SymDim::known(d));
    }
    // Resolve a single -1 when everything else is known.
    if (total.is_known) {
      std::int64_t known = 1;
      int infer = -1;
      for (std::size_t i = 0; i < dims.size(); ++i) {
        if (dims[i] == -1) infer = static_cast<int>(i);
        else known *= dims[i];
      }
      if (infer >= 0) {
        out[static_cast<std::size_t>(infer)] =
            SymDim::known(total.value / known);
      }
    }
    return out;
  }
  if (t == "cat") {
    const auto& items = n.args().at(0).list();
    const std::int64_t dim = n.args().at(1).as_int();
    SymShape out = env.of(items.at(0));
    SymDim acc = SymDim::known(0);
    for (const auto& item : items) {
      const SymShape& s = env.of(item);
      const SymDim d = s.at(static_cast<std::size_t>(dim));
      if (!acc.is_known || !d.is_known) acc = SymDim::dynamic();
      else acc = SymDim::known(acc.value + d.value);
    }
    out[static_cast<std::size_t>(dim)] = acc;
    return out;
  }
  if (t == "max_pool2d" || t == "avg_pool2d") {
    const SymShape& x = in0();
    const auto k = n.args().at(1).int_list();
    const auto s = n.args().at(2).int_list();
    const std::int64_t pad =
        (t == "max_pool2d") ? n.args().at(3).int_list()[0] : 0;
    return {x[0], x[1], sym_div_ceil_conv(x[2], pad, k[0], s[0]),
            sym_div_ceil_conv(x[3], pad, k[1], s.size() > 1 ? s[1] : s[0])};
  }
  if (t == "adaptive_avg_pool2d") {
    const SymShape& x = in0();
    const auto o = n.args().at(1).int_list();
    return {x[0], x[1], SymDim::known(o[0]),
            SymDim::known(o.size() > 1 ? o[1] : o[0])};
  }
  if (t == "transpose") {
    SymShape out = in0();
    auto d0 = n.args().at(1).as_int(), d1 = n.args().at(2).as_int();
    if (d0 < 0) d0 += static_cast<std::int64_t>(out.size());
    if (d1 < 0) d1 += static_cast<std::int64_t>(out.size());
    std::swap(out[static_cast<std::size_t>(d0)], out[static_cast<std::size_t>(d1)]);
    return out;
  }
  if (t == "sum" || t == "mean") return {};
  if (t == "embedding") {
    SymShape out = env.of(n.args().at(1));
    out.push_back(env.of(n.args().at(0)).at(1));
    return out;
  }
  // Elementwise/defaults (relu, gelu, batch_norm, softmax, dropout, ...).
  return in0();
}

}  // namespace

const std::vector<ModuleTransfer>& module_transfer_table() {
  static const std::vector<ModuleTransfer> table = {
      {"Linear",
       [](const nn::Module& m, const SymShape& x) -> std::optional<SymShape> {
         const auto* lin = dynamic_cast<const nn::Linear*>(&m);
         if (!lin) return std::nullopt;
         SymShape out = x;
         out.back() = SymDim::known(lin->out_features());
         return out;
       }},
      {"Conv2d",
       [](const nn::Module& m, const SymShape& x) -> std::optional<SymShape> {
         const auto* conv = dynamic_cast<const nn::Conv2d*>(&m);
         if (!conv) return std::nullopt;
         return conv_like(x, conv->out_channels(),
                          conv->param("weight").size(2), conv->stride()[0],
                          conv->padding()[0]);
       }},
      {"MaxPool2d",
       [](const nn::Module& m, const SymShape& x) -> std::optional<SymShape> {
         const auto* mp = dynamic_cast<const nn::MaxPool2d*>(&m);
         if (!mp) return std::nullopt;
         auto dim = [&](const SymDim& d) {
           return sym_div_ceil_conv(d, mp->padding(), mp->kernel(),
                                    mp->stride());
         };
         return SymShape{x.at(0), x.at(1), dim(x.at(2)), dim(x.at(3))};
       }},
      {"AdaptiveAvgPool2d",
       [](const nn::Module& m, const SymShape& x) -> std::optional<SymShape> {
         const auto* ap = dynamic_cast<const nn::AdaptiveAvgPool2d*>(&m);
         if (!ap) return std::nullopt;
         return SymShape{x.at(0), x.at(1), SymDim::known(ap->output_size()),
                         SymDim::known(ap->output_size())};
       }},
      {"Flatten",
       [](const nn::Module& m, const SymShape& x) -> std::optional<SymShape> {
         if (!dynamic_cast<const nn::Flatten*>(&m)) return std::nullopt;
         return flatten_sym(x, 1);
       }},
  };
  return table;
}

SymShape module_sym_transfer(const nn::Module& m, const SymShape& x) {
  for (const auto& t : module_transfer_table()) {
    if (auto out = t.fn(m, x)) return *out;
  }
  // BatchNorm, activations, Dropout, Identity, LayerNorm: shape-preserving.
  return x;
}

SymShape propagate_symbolic(fx::GraphModule& gm,
                            const std::vector<SymShape>& input_shapes) {
  SymEnv env;
  std::size_t ph = 0;
  SymShape result;
  for (fx::Node* n : gm.graph().nodes()) {
    SymShape s;
    switch (n->op()) {
      case fx::Opcode::Placeholder:
        if (ph >= input_shapes.size()) {
          throw std::invalid_argument("propagate_symbolic: missing input shape");
        }
        s = input_shapes[ph++];
        break;
      case fx::Opcode::GetAttr:
        s = sym_of(gm.resolve_attr(n->target()).sizes());
        break;
      case fx::Opcode::CallModule:
        s = module_sym_transfer(*gm.resolve_module(n->target()),
                                env.of(n->args().at(0)));
        break;
      case fx::Opcode::CallFunction:
      case fx::Opcode::CallMethod:
        s = function_transfer(*n, env);
        break;
      case fx::Opcode::Output:
        if (n->args().at(0).is_node()) result = env.of(n->args()[0]);
        continue;
    }
    env.shapes[n] = s;
    n->set_meta("sym_shape", sym_shape_str(s));
  }
  return result;
}

LoopAnalysis analyze_loop_cat(const SymShape& init, int cat_dim,
                              int max_iterations) {
  LoopAnalysis out;
  SymShape state = init;
  for (int i = 0; i < max_iterations; ++i) {
    // Body transfer: x = cat((x, x), dim=cat_dim).
    SymShape next = state;
    SymDim& d = next.at(static_cast<std::size_t>(cat_dim));
    d = d.is_known ? SymDim::known(2 * d.value) : SymDim::dynamic();
    const auto joined = join(state, next);
    out.iterations = i + 1;
    if (!joined) {
      state.at(static_cast<std::size_t>(cat_dim)) = SymDim::dynamic();
      break;
    }
    if (*joined == state) {
      out.converged = true;
      state = *joined;
      break;
    }
    state = *joined;
    // Once a dim is dynamic the join is a fixed point on the next round.
  }
  out.result = state;
  out.converged = out.converged ||
                  !state.at(static_cast<std::size_t>(cat_dim)).is_known;
  return out;
}

}  // namespace fxcpp::passes
