#include "passes/scheduler.h"

#include <condition_variable>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "runtime/thread_pool.h"

namespace fxcpp::passes {

fx::SplitResult split_at(fx::GraphModule& gm,
                         const std::string& boundary_node) {
  bool seen = false;
  bool found = false;
  std::unordered_map<const fx::Node*, int> part;
  for (const fx::Node* n : gm.graph().nodes()) {
    part[n] = seen ? 1 : 0;
    if (n->name() == boundary_node) {
      seen = true;
      found = true;
    }
  }
  if (!found) {
    throw std::invalid_argument("split_at: no node named '" + boundary_node +
                                "'");
  }
  return fx::split_module(gm, [&part](const fx::Node& n) { return part.at(&n); });
}

std::vector<Tensor> run_serial(fx::SplitResult& split,
                               const std::vector<Tensor>& stream) {
  std::vector<Tensor> out;
  out.reserve(stream.size());
  for (const Tensor& x : stream) out.push_back(split.parent->run(x));
  return out;
}

std::vector<Tensor> run_pipelined(fx::SplitResult& split,
                                  const std::vector<Tensor>& stream) {
  if (split.submodules.size() != 2) {
    throw std::invalid_argument("run_pipelined: expected exactly 2 stages");
  }
  auto& stage0 = *split.submodules[0];
  auto& stage1 = *split.submodules[1];

  std::queue<std::pair<std::size_t, Tensor>> handoff;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::vector<Tensor> out(stream.size());

  // Stage-1 consumer — the "asynchronous device" draining stage-0 results —
  // runs as one inter-op pool task; the TaskGroup supplies the completion
  // signal (and propagates a stage-1 exception out of this function).
  rt::TaskGroup group(rt::ThreadPool::inter_op_handle());
  group.run([&] {
    for (;;) {
      std::pair<std::size_t, Tensor> item;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done || !handoff.empty(); });
        if (handoff.empty()) return;
        item = std::move(handoff.front());
        handoff.pop();
      }
      out[item.first] = stage1.run(item.second);
    }
  });

  try {
    for (std::size_t i = 0; i < stream.size(); ++i) {
      Tensor mid = stage0.run(stream[i]);
      {
        std::lock_guard<std::mutex> lock(mu);
        handoff.emplace(i, std::move(mid));
      }
      cv.notify_one();
    }
  } catch (...) {
    // Unblock the consumer before the TaskGroup destructor waits on it.
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_one();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_one();
  group.wait();
  return out;
}

std::vector<Tensor> run_parallel(fx::GraphModule& gm,
                                 const std::vector<Tensor>& stream,
                                 int num_threads) {
  fx::ParallelExecutor ex(gm, fx::ExecutorOptions{num_threads, false});
  std::vector<Tensor> out;
  out.reserve(stream.size());
  for (const Tensor& x : stream) {
    std::vector<fx::RtValue> res = ex.run({fx::RtValue(x)});
    if (res.empty() || !fx::rt_is_tensor(res.front())) {
      throw std::logic_error("run_parallel: graph produced a non-tensor output");
    }
    out.push_back(std::move(std::get<Tensor>(res.front())));
  }
  return out;
}

}  // namespace fxcpp::passes
