#include "passes/scheduler.h"

#include <condition_variable>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>

namespace fxcpp::passes {

fx::SplitResult split_at(fx::GraphModule& gm,
                         const std::string& boundary_node) {
  bool seen = false;
  bool found = false;
  std::unordered_map<const fx::Node*, int> part;
  for (const fx::Node* n : gm.graph().nodes()) {
    part[n] = seen ? 1 : 0;
    if (n->name() == boundary_node) {
      seen = true;
      found = true;
    }
  }
  if (!found) {
    throw std::invalid_argument("split_at: no node named '" + boundary_node +
                                "'");
  }
  return fx::split_module(gm, [&part](const fx::Node& n) { return part.at(&n); });
}

std::vector<Tensor> run_serial(fx::SplitResult& split,
                               const std::vector<Tensor>& stream) {
  std::vector<Tensor> out;
  out.reserve(stream.size());
  for (const Tensor& x : stream) out.push_back(split.parent->run(x));
  return out;
}

std::vector<Tensor> run_pipelined(fx::SplitResult& split,
                                  const std::vector<Tensor>& stream) {
  if (split.submodules.size() != 2) {
    throw std::invalid_argument("run_pipelined: expected exactly 2 stages");
  }
  auto& stage0 = *split.submodules[0];
  auto& stage1 = *split.submodules[1];

  std::queue<std::pair<std::size_t, Tensor>> handoff;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::vector<Tensor> out(stream.size());

  // Stage-1 worker: the "asynchronous device" consuming stage-0 results.
  std::thread worker([&] {
    for (;;) {
      std::pair<std::size_t, Tensor> item;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done || !handoff.empty(); });
        if (handoff.empty()) return;
        item = std::move(handoff.front());
        handoff.pop();
      }
      out[item.first] = stage1.run(item.second);
    }
  });

  for (std::size_t i = 0; i < stream.size(); ++i) {
    Tensor mid = stage0.run(stream[i]);
    {
      std::lock_guard<std::mutex> lock(mu);
      handoff.emplace(i, std::move(mid));
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_one();
  worker.join();
  return out;
}

}  // namespace fxcpp::passes
