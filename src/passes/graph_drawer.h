// fx.graph_drawer (Section 6.3): Graphviz DOT rendering of the captured DAG
// — "a commonly-requested way of understanding a deep learning program via a
// visual representation".
#pragma once

#include <string>

#include "core/graph_module.h"

namespace fxcpp::passes {

// DOT source for the graph; nodes are colored by opcode and labeled with
// name/target plus shape metadata when ShapeProp has run.
std::string to_dot(const fx::GraphModule& gm, const std::string& title = "fx");

// Render to a .dot file (feed to `dot -Tpng` where Graphviz is available).
void write_dot(const fx::GraphModule& gm, const std::string& path,
               const std::string& title = "fx");

}  // namespace fxcpp::passes
