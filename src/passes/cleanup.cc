#include "passes/cleanup.h"

#include <map>
#include <sstream>

#include "core/interpreter.h"

namespace fxcpp::passes {

int dead_code_elimination(fx::GraphModule& gm) {
  const int n = gm.graph().eliminate_dead_code();
  if (n > 0) gm.recompile();
  return n;
}

namespace {

// Structural key of a node: opcode + target + rendered args. Node
// references render as their (unique) names, so equal keys mean equal
// computations in a pure IR.
std::string node_key(const fx::Node& n) {
  std::ostringstream os;
  os << fx::opcode_name(n.op()) << '|' << n.target() << '|';
  for (const auto& a : n.args()) os << a.to_string() << ',';
  os << '|';
  for (const auto& [k, v] : n.kwargs()) os << k << '=' << v.to_string() << ',';
  return os.str();
}

bool cse_eligible(const fx::Node& n) {
  switch (n.op()) {
    case fx::Opcode::CallFunction:
    case fx::Opcode::CallMethod:
    case fx::Opcode::GetAttr:
      return n.target() != "dropout";  // randomized: not a pure expression
    case fx::Opcode::CallModule:
      // Module calls are pure in this IR (parameters only read), so equal
      // targets + args compute equal values — except Dropout-like RNG users,
      // which we conservatively skip by target name check above only for
      // functions; module purity is decided by the caller's graph. Keep
      // call_module ineligible to stay conservative about stateful modules.
      return false;
    default:
      return false;
  }
}

}  // namespace

int common_subexpression_elimination(fx::GraphModule& gm) {
  fx::Graph& g = gm.graph();
  std::map<std::string, fx::Node*> seen;
  int removed = 0;
  for (fx::Node* n : g.nodes()) {
    if (!cse_eligible(*n)) continue;
    const std::string key = node_key(*n);
    auto it = seen.find(key);
    if (it == seen.end()) {
      seen.emplace(key, n);
      continue;
    }
    n->replace_all_uses_with(it->second);
    g.erase_node(n);
    ++removed;
  }
  if (removed > 0) {
    g.lint();
    gm.recompile();
  }
  return removed;
}

int constant_fold(fx::GraphModule& gm) {
  fx::Graph& g = gm.graph();
  // Evaluate with an interpreter environment seeded lazily: a node is
  // foldable if it is a pure call whose node-inputs are all foldable or
  // get_attr.
  std::map<const fx::Node*, bool> foldable;
  for (const fx::Node* n : g.nodes()) {
    switch (n->op()) {
      case fx::Opcode::GetAttr:
        foldable[n] = true;
        break;
      case fx::Opcode::CallFunction:
      case fx::Opcode::CallMethod: {
        if (n->target() == "dropout") {
          foldable[n] = false;
          break;
        }
        bool ok = true;
        for (const fx::Node* in : n->input_nodes()) ok = ok && foldable[in];
        foldable[n] = ok;
        break;
      }
      default:
        foldable[n] = false;
    }
  }

  // Roots to fold: foldable non-get_attr nodes with at least one
  // non-foldable user (or feeding the output).
  int folded = 0;
  int counter = 0;
  for (fx::Node* n : g.nodes()) {
    if (!foldable[n] || n->op() == fx::Opcode::GetAttr) continue;
    bool is_root = false;
    for (const fx::Node* u : n->users()) {
      if (!foldable[const_cast<fx::Node*>(u)]) is_root = true;
    }
    if (!is_root) continue;

    // Evaluate just this node's upstream cone with a fresh interpreter pass
    // over the graph prefix.
    fx::RtValue v;
    {
      // Cheap approach: run an interpreter that only executes foldable
      // nodes. Placeholders never feed foldable nodes by construction.
      std::unordered_map<const fx::Node*, fx::RtValue> env;
      for (const fx::Node* m : g.nodes()) {
        if (!foldable[m]) continue;
        if (m->op() == fx::Opcode::GetAttr) {
          env[m] = gm.resolve_attr(m->target());
        } else {
          // Rebuild args against the local env.
          std::function<fx::RtValue(const fx::Argument&)> ev =
              [&](const fx::Argument& a) -> fx::RtValue {
            if (a.is_node()) return env.at(a.node());
            if (a.is_list()) {
              bool all_int = !a.list().empty();
              for (const auto& item : a.list()) {
                all_int = all_int && item.is_int();
              }
              if (all_int) return a.int_list();
              std::vector<Tensor> ts;
              for (const auto& item : a.list()) {
                ts.push_back(fx::rt_tensor(ev(item)));
              }
              return ts;
            }
            if (a.is_int()) return a.as_int();
            if (a.is_double()) return a.as_double();
            if (a.is_bool()) return a.as_bool();
            if (a.is_string()) return a.as_string();
            return fx::RtValue();
          };
          const auto& reg = m->op() == fx::Opcode::CallFunction
                                ? fx::OpRegistry::functions()
                                : fx::OpRegistry::methods();
          const fx::OpInfo& info = reg.at(m->target());
          std::vector<fx::RtValue> args;
          for (const auto& a : m->args()) args.push_back(ev(a));
          std::vector<std::pair<std::string, fx::RtValue>> kwargs;
          for (const auto& [k, kv] : m->kwargs()) kwargs.emplace_back(k, ev(kv));
          env[m] = info.run(fx::merge_kwargs(info, std::move(args), kwargs));
        }
        if (m == n) break;
      }
      v = env.at(n);
    }
    if (!fx::rt_is_tensor(v)) continue;

    const std::string name = "_folded_" + std::to_string(counter++);
    gm.root()->set_parameter(name, fx::rt_tensor(v));
    fx::Graph::InsertScope scope(g, n);
    fx::Node* attr = g.get_attr(name);
    n->replace_all_uses_with(attr);
    ++folded;
  }
  if (folded > 0) {
    g.eliminate_dead_code();
    g.lint();
    gm.recompile();
  }
  return folded;
}

}  // namespace fxcpp::passes
