#include "passes/cleanup.h"

#include <map>
#include <sstream>

#include "core/interpreter.h"
#include "passes/constant_folding.h"

namespace fxcpp::passes {

int dead_code_elimination(fx::GraphModule& gm) {
  const int n = gm.graph().eliminate_dead_code();
  if (n > 0) gm.recompile();
  return n;
}

namespace {

// Structural key of a node: opcode + target + rendered args. Node
// references render as their (unique) names, so equal keys mean equal
// computations in a pure IR.
std::string node_key(const fx::Node& n) {
  std::ostringstream os;
  os << fx::opcode_name(n.op()) << '|' << n.target() << '|';
  for (const auto& a : n.args()) os << a.to_string() << ',';
  os << '|';
  for (const auto& [k, v] : n.kwargs()) os << k << '=' << v.to_string() << ',';
  return os.str();
}

bool cse_eligible(const fx::Node& n) {
  switch (n.op()) {
    case fx::Opcode::CallFunction:
    case fx::Opcode::CallMethod:
    case fx::Opcode::GetAttr:
      return n.target() != "dropout";  // randomized: not a pure expression
    case fx::Opcode::CallModule:
      // Module calls are pure in this IR (parameters only read), so equal
      // targets + args compute equal values — except Dropout-like RNG users,
      // which we conservatively skip by target name check above only for
      // functions; module purity is decided by the caller's graph. Keep
      // call_module ineligible to stay conservative about stateful modules.
      return false;
    default:
      return false;
  }
}

}  // namespace

int common_subexpression_elimination(fx::GraphModule& gm) {
  fx::Graph& g = gm.graph();
  std::map<std::string, fx::Node*> seen;
  int removed = 0;
  for (fx::Node* n : g.nodes()) {
    if (!cse_eligible(*n)) continue;
    const std::string key = node_key(*n);
    auto it = seen.find(key);
    if (it == seen.end()) {
      seen.emplace(key, n);
      continue;
    }
    n->replace_all_uses_with(it->second);
    g.erase_node(n);
    ++removed;
  }
  if (removed > 0) {
    g.lint();
    gm.recompile();
  }
  return removed;
}

int constant_fold(fx::GraphModule& gm) {
  // Rebased onto the constness-analysis-driven pass (constant_folding.h):
  // same contract (count of nodes replaced by baked get_attr), but
  // foldability now comes from the shared dataflow analysis and evaluation
  // runs once through the Interpreter over the whole constant cone.
  return constant_folding(gm).folded;
}

}  // namespace fxcpp::passes
