// Constant folding driven by the shared constness dataflow analysis
// (analysis/dataflow.h).
//
// With frozen weights a traced model carries whole subgraphs whose inputs
// are only get_attr tensors — the BN scale/shift chains decompose leaves
// behind, weight transposes, fused epsilon adds. The constness analysis
// proves which nodes are compile-time constants (pure ops fed only by
// constants; OpInfo::pure excludes RNG ops like dropout), this pass
// evaluates each maximal constant subgraph ONCE through the Interpreter and
// replaces its boundary nodes with get_attr references to baked "_folded_N"
// tensors. Every later run skips the whole cone: less dispatch, fewer
// kernels, fewer allocations.
//
// Semantics-preserving by construction — the baked tensor is the value the
// Interpreter would have computed, bit for bit — and validated two ways:
// PassValidator in the tests, and the differential fuzzer
// (fuzz_constant_fold) comparing folded vs unfolded outputs across all three
// engines and thread counts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/graph_module.h"

namespace fxcpp::passes {

struct FoldOptions {
  // Per-tensor size cap in bytes; a constant whose baked value would exceed
  // it is left in the graph (folding trades compute for residency, which is
  // a bad trade for huge intermediates). 0 = unlimited.
  std::size_t max_bytes = 0;
};

struct FoldStats {
  int folded = 0;     // boundary nodes replaced by get_attr
  int erased = 0;     // interior nodes removed by the follow-up DCE
  std::size_t baked_bytes = 0;        // total bytes of baked tensors
  std::vector<std::string> attr_names;  // the registered "_folded_N" names
};

// Fold every constant subgraph of `gm`. Baked tensors are registered on the
// root hierarchy when one exists (so scratch GraphModules over the same root
// still resolve them), else on `gm` itself. Recompiles when anything folded.
FoldStats constant_folding(fx::GraphModule& gm, const FoldOptions& opts = {});

}  // namespace fxcpp::passes
