// Decomposition pass built on fx::Transformer: expand batch_norm (both the
// functional form and BatchNorm2d call_modules) into elementwise primitives
// ((x - mean) / sqrt(var + eps) * gamma + beta). The standard fx.Transformer
// demo — and a prerequisite for backends that only implement primitive ops.
#pragma once

#include <memory>

#include "core/transformer.h"

namespace fxcpp::passes {

// Returns a new GraphModule with every batch_norm expanded; the input
// GraphModule is left untouched.
std::shared_ptr<fx::GraphModule> decompose_batch_norm(fx::GraphModule& gm);

}  // namespace fxcpp::passes
