// ShapeProp — the paper's canonical fx.passes.shape_prop (Section 6.3):
// "a naive implementation of shape analysis by interpreting the graph and
// recording the observed shapes."
//
// Because the IR is a basic block (Section 5.5), this is a single forward
// interpretation — no fixpoint, no lattice, no join function.
#pragma once

#include "core/interpreter.h"

namespace fxcpp::passes {

class ShapeProp : public fx::Interpreter {
 public:
  using fx::Interpreter::Interpreter;

  // Runs the graph on the example input(s) and annotates every Node that
  // produced a Tensor with meta["shape"] and meta["dtype"].
  fx::RtValue run_node(const fx::Node& n) override;
};

// Convenience: propagate shapes through `gm` with the given example inputs.
void shape_prop(fx::GraphModule& gm, const std::vector<Tensor>& inputs);

}  // namespace fxcpp::passes
