// Linear/ReLU fusion targeting the micro-kernel layer's fused epilogue.
//
// A Linear followed (exclusively) by a ReLU lowers to one linear_relu call:
// the clamp runs inside the GEMM epilogue while the output tile is still in
// registers, so the fused form skips one full read+write pass over the
// activation. kernels::sgemm applies ReLU as max(acc, +0.0f) after the same
// full-K accumulation chain the unfused path uses, so the rewrite is
// bit-exact, not just numerically close.
//
// Matches both recorded forms:
//   * call_module nn::Linear -> ReLU  (module swapped for nn::LinearReLU,
//     sharing the original parameter tensors)
//   * call_function "linear" -> "relu"  (target rewritten to "linear_relu")
// and the mixed module/function combinations. Like fuse_conv_bn, the
// producer must have the ReLU as its only user or fusion would change what
// other consumers observe.
#pragma once

#include "core/graph_module.h"

namespace fxcpp::passes {

// Fuse every eligible Linear->ReLU pair in gm. Returns the number fused.
int fuse_linear_relu(fx::GraphModule& gm);

}  // namespace fxcpp::passes
