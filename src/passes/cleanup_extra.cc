#include <set>

#include "passes/cleanup.h"

namespace fxcpp::passes {

int normalize_args(fx::GraphModule& gm) {
  int changed = 0;
  for (fx::Node* n : gm.graph().nodes()) {
    if (n->op() != fx::Opcode::CallFunction) continue;
    const fx::OpInfo* info = fx::OpRegistry::functions().find(n->target());
    if (!info) continue;
    const auto& args = n->args();
    if (args.size() <= 1) continue;
    if (args.size() > info->param_names.size()) continue;  // varargs-ish op
    std::vector<fx::Argument> new_args{args[0]};
    fx::Kwargs kwargs;
    for (std::size_t i = 1; i < args.size(); ++i) {
      kwargs.emplace_back(info->param_names[i], args[i]);
    }
    for (const auto& kv : n->kwargs()) kwargs.push_back(kv);
    n->set_args(std::move(new_args));
    n->set_kwargs(std::move(kwargs));
    ++changed;
  }
  if (changed > 0) {
    gm.graph().lint();
    gm.recompile();
  }
  return changed;
}

namespace {

// Does any used path equal `prefix` or live beneath it?
bool prefix_used(const std::set<std::string>& used, const std::string& prefix) {
  auto it = used.lower_bound(prefix);
  if (it != used.end() &&
      (*it == prefix || it->rfind(prefix + ".", 0) == 0)) {
    return true;
  }
  return false;
}

int prune(nn::Module& m, const std::set<std::string>& used,
          const std::string& prefix) {
  int removed = 0;
  std::vector<std::string> to_delete;
  for (const auto& [name, child] : m.children()) {
    const std::string qual = prefix.empty() ? name : prefix + "." + name;
    if (!prefix_used(used, qual)) {
      to_delete.push_back(name);
    } else {
      removed += prune(*child, used, qual);
    }
  }
  for (const auto& name : to_delete) {
    m.delete_submodule(name);
    ++removed;
  }
  return removed;
}

}  // namespace

int delete_all_unused_submodules(fx::GraphModule& gm) {
  if (!gm.root()) return 0;
  std::set<std::string> used;
  for (const fx::Node* n : gm.graph().nodes()) {
    if (n->op() == fx::Opcode::CallModule || n->op() == fx::Opcode::GetAttr) {
      used.insert(n->target());
    }
  }
  return prune(*gm.root(), used, "");
}

}  // namespace fxcpp::passes
