#include "passes/fuse_linear_relu.h"

#include <memory>
#include <typeinfo>

#include "nn/layers.h"

namespace fxcpp::passes {

namespace {

bool is_relu_node(const fx::GraphModule& gm, const fx::Node& n) {
  if (n.op() == fx::Opcode::CallFunction || n.op() == fx::Opcode::CallMethod) {
    return n.target() == "relu";
  }
  if (n.op() == fx::Opcode::CallModule) {
    return dynamic_cast<const nn::ReLU*>(
               gm.resolve_module(n.target()).get()) != nullptr;
  }
  return false;
}

}  // namespace

int fuse_linear_relu(fx::GraphModule& gm) {
  fx::Graph& g = gm.graph();
  int fused_count = 0;
  for (fx::Node* relu_node : g.nodes()) {
    if (!is_relu_node(gm, *relu_node)) continue;
    if (relu_node->args().size() != 1 || !relu_node->args()[0].is_node()) {
      continue;
    }
    fx::Node* lin_node = relu_node->args()[0].node();
    // The linear output must feed only this ReLU; another consumer needs the
    // pre-clamp values.
    if (lin_node->users().size() != 1) continue;

    if (lin_node->op() == fx::Opcode::CallFunction &&
        lin_node->target() == "linear") {
      lin_node->set_target("linear_relu");
    } else if (lin_node->op() == fx::Opcode::CallModule) {
      const auto m = gm.resolve_module(lin_node->target());
      const auto lin = std::dynamic_pointer_cast<nn::Linear>(m);
      // Exact-type check: LinearReLU is-a Linear but already clamps; fusing
      // it again would be a no-op rewrite that loops on repeated runs.
      if (!lin || typeid(*m) != typeid(nn::Linear)) continue;
      auto fused = std::make_shared<nn::LinearReLU>(
          lin->in_features(), lin->out_features(), lin->has_bias());
      fused->param("weight") = lin->param("weight");
      if (lin->has_bias()) fused->param("bias") = lin->param("bias");
      gm.root()->set_submodule(lin_node->target(), fused);
    } else {
      continue;
    }

    // The linear node now computes the clamped values; its recorded meta
    // (and that of the rewired ReLU users) described the pre-fusion program.
    lin_node->invalidate_shape_meta();
    for (fx::Node* user : relu_node->users()) user->invalidate_shape_meta();
    relu_node->replace_all_uses_with(lin_node);
    g.erase_node(relu_node);
    ++fused_count;
  }
  if (fused_count > 0) {
    g.lint();
    gm.recompile();
  }
  return fused_count;
}

}  // namespace fxcpp::passes
