#include "passes/constant_folding.h"

#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/dataflow.h"
#include "core/interpreter.h"
#include "tensor/dtype.h"

namespace fxcpp::passes {

using fx::Argument;
using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::Opcode;
using fx::RtValue;

namespace {

// Root for the scratch evaluation module: resolves get_attr / call_module
// targets by delegating to the folded GraphModule, which itself falls back
// to its traced hierarchy. Handles root-less GraphModules, gm-local baked
// buffers from an earlier fold, and nested submodule paths uniformly.
class AttrProxy : public nn::Module {
 public:
  explicit AttrProxy(const GraphModule& gm)
      : nn::Module("AttrProxy"), gm_(gm) {}

  fx::Value forward(const std::vector<fx::Value>&) override {
    throw std::logic_error("AttrProxy is not executable");
  }
  nn::Module::Ptr get_submodule(const std::string& qualname) const override {
    return gm_.get_submodule(qualname);
  }
  Tensor get_parameter(const std::string& qualname) const override {
    return gm_.get_parameter(qualname);
  }

 private:
  const GraphModule& gm_;
};

// Interpreter that records every evaluated node's value; the Output node is
// skipped so the result plumbing never constrains what the subgraph returns.
class RecordingInterpreter : public fx::Interpreter {
 public:
  using fx::Interpreter::Interpreter;

  RtValue run_node(const Node& n) override {
    if (n.op() == Opcode::Output) return RtValue();
    RtValue v = fx::Interpreter::run_node(n);
    values[&n] = v;
    return v;
  }

  std::unordered_map<const Node*, RtValue> values;
};

std::size_t tensor_bytes(const Tensor& t) {
  return static_cast<std::size_t>(t.numel()) * dtype_size(t.dtype());
}

}  // namespace

FoldStats constant_folding(GraphModule& gm, const FoldOptions& opts) {
  FoldStats stats;
  Graph& g = gm.graph();

  const auto is_const = analysis::constant_nodes(g, &gm);
  auto const_of = [&](const Node* n) {
    const auto it = is_const.find(n);
    return it != is_const.end() && it->second;
  };

  // Boundary roots: constant calls with at least one non-constant user.
  // get_attr nodes are already single static loads — nothing to fold —
  // and interior constants fold as part of some root's cone.
  std::vector<Node*> roots;
  for (Node* n : g.nodes()) {
    if (!const_of(n)) continue;
    if (n->op() != Opcode::CallFunction && n->op() != Opcode::CallMethod) {
      continue;
    }
    for (const Node* u : n->users()) {
      if (!const_of(u)) {
        roots.push_back(n);
        break;
      }
    }
  }
  if (roots.empty()) return stats;

  // The cones to evaluate: every constant ancestor of some root.
  std::unordered_set<const Node*> needed;
  std::vector<const Node*> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (!needed.insert(n).second) continue;
    for (const Node* in : n->input_nodes()) {
      if (const_of(in)) stack.push_back(in);
    }
  }

  // Copy the cones (graph order, so defs precede uses) into a standalone
  // subgraph and evaluate it once through the Interpreter over a scratch
  // module whose attribute lookups proxy back to `gm`.
  auto sub = std::make_unique<Graph>();
  std::unordered_map<const Node*, Node*> copy_of;
  std::function<Argument(const Argument&)> remap =
      [&](const Argument& a) -> Argument {
    if (a.is_node()) return Argument(copy_of.at(a.node()));
    if (a.is_list()) {
      Argument::List out;
      out.reserve(a.list().size());
      for (const auto& item : a.list()) out.push_back(remap(item));
      return Argument(std::move(out));
    }
    return a;
  };
  for (const Node* n : g.nodes()) {
    if (needed.count(n) == 0) continue;
    copy_of[n] = sub->copy_node(*n, remap);
  }
  Argument::List returned;
  returned.reserve(roots.size());
  for (const Node* r : roots) returned.push_back(Argument(copy_of.at(r)));
  sub->output(Argument(std::move(returned)));

  Graph* sub_raw = sub.get();
  GraphModule scratch(std::make_shared<AttrProxy>(gm), std::move(sub),
                      "ConstantFoldEval");
  RecordingInterpreter interp(scratch);
  interp.run(std::vector<RtValue>{});
  (void)sub_raw;

  // Bake each root's value and swap in a get_attr. Names are collision-
  // checked against both the module and its root so repeated folds compose.
  nn::Module* bake_target = gm.root() ? gm.root().get()
                                      : static_cast<nn::Module*>(&gm);
  auto name_taken = [&](const std::string& nm) {
    return gm.has_parameter(nm) || (gm.root() && gm.root()->has_parameter(nm));
  };
  int counter = 0;
  for (Node* r : roots) {
    const auto it = interp.values.find(copy_of.at(r));
    if (it == interp.values.end() || !fx::rt_is_tensor(it->second)) continue;
    const Tensor value = fx::rt_tensor(it->second);
    if (opts.max_bytes != 0 && tensor_bytes(value) > opts.max_bytes) continue;

    std::string name = "_folded_" + std::to_string(counter++);
    while (name_taken(name)) name = "_folded_" + std::to_string(counter++);
    bake_target->set_parameter(name, value);

    Graph::InsertScope scope(g, r);
    Node* attr = g.get_attr(name);
    // The baked tensor is exactly the folded node's value, so its meta
    // carries over verbatim (copy_node preserved it on the evaluated copy).
    for (const auto& [k, v] : r->all_meta()) attr->set_meta(k, v);
    if (!attr->has_meta("shape")) {
      attr->set_meta("shape", value.sizes());
      attr->set_meta("dtype", value.dtype());
    }
    r->replace_all_uses_with(attr);

    stats.attr_names.push_back(std::move(name));
    stats.baked_bytes += tensor_bytes(value);
    ++stats.folded;
  }

  if (stats.folded > 0) {
    stats.erased = g.eliminate_dead_code();
    g.lint();
    gm.recompile();
  }
  return stats;
}

}  // namespace fxcpp::passes
