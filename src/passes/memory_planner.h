// Static memory planner — computes a core TapePlan from the compiled tape.
//
// The planner side of core/memory_plan.h: per-instruction live intervals are
// derived from the tape's register reads (the same use-def info that drives
// Instr::frees and the parallel Schedule), alias-propagated through
// view-producing ops, and packed into one arena by a greedy first-fit over
// freed blocks. The first-fit routine is shared with trt/engine.cc — the TRT
// engine's inline planner was the prototype; `first_fit_pack` preserves its
// step semantics exactly (inputs allocated before step 0, per step allocate
// definitions in buffer order *then* free last-uses) so the engine's
// planner_saving() stat is bit-identical after the dedup.
//
// Conservatism rules (what keeps a wrong plan impossible, not just unlikely):
//  - Only ops whose OpInfo::fresh_output trait is set (and a whitelist of nn
//    modules whose kernels materialize new storage) get arena slots. Any
//    other instruction is treated as a view: its output's base set is the
//    union of its inputs' base sets, reads through it extend the bases'
//    lifetimes, and the bases are never considered dead early.
//  - Buffers reachable from the Output instruction escape the run; they are
//    demoted to the heap (arena reuse would mutate values the caller holds).
//  - can_alias in-place reuse additionally requires the input to be the
//    producing instruction's own register (not a view), the same shape and
//    dtype per traced meta, and a live interval that dies exactly at the
//    aliasing instruction.
// Everything else falls back to the heap via the exact-size single-shot
// placement hint (see tensor/tensor.h) — a stale shape meta degrades a
// planned run to heap allocation, never corrupts it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/graph_module.h"
#include "core/memory_plan.h"
#include "core/plan_cache.h"

namespace fxcpp::passes {

// One buffer's lifetime for first_fit_pack. Sizes are in caller units
// (bytes for the tape planner, floats for the TRT engine).
struct LiveRange {
  std::int64_t size = 0;
  int def = -1;       // step that materializes it; < 0 = before step 0
  int last_use = -1;  // last step reading it; < 0 or >= num_steps = kept
};

struct FirstFitPacking {
  std::vector<std::int64_t> offsets;  // parallel to the input ranges
  std::int64_t high_water = 0;        // arena size, in the caller's units
};

// Greedy first-fit arena assignment over freed blocks (extracted from
// trt/engine.cc, semantics preserved exactly): ranges defined before step 0
// are allocated first in index order; then per step i, ranges with def == i
// are allocated in index order *before* ranges with last_use == i are
// returned to the free list — so a value consumed and produced at the same
// step never aliases itself. Freeing splits blocks first-fit (exact-size
// blocks are removed, larger ones shrink from the front); no coalescing.
FirstFitPacking first_fit_pack(const std::vector<LiveRange>& ranges,
                               int num_steps);

// Compute a memory plan for gm's current tape. Requires shape/dtype meta on
// the nodes (run shape_prop first); instructions without meta — or whose
// outputs alias inputs or escape through Output — stay on the heap. Pure
// analysis: does not install anything on the module.
std::shared_ptr<const fx::TapePlan> plan_tape(fx::GraphModule& gm);

// One-call planned-mode setup: propagates shapes from the example inputs,
// plans the tape, installs the plan (+ input guards derived from it) on the
// module, registers a replanner, and attaches a guard-keyed PlanCache
// (core/plan_cache.h) seeded with the example-shape plan — so mixed-shape
// traffic plans each distinct input signature once and every repeat is a
// pure cache hit. Returns the installed plan (owned by the module).
const fx::TapePlan& compile_planned(fx::GraphModule& gm,
                                    const std::vector<Tensor>& example_inputs);
// Same, with explicit cache knobs (LRU capacity, batch-dim bucketing,
// per-entry arena pooling). See fx::PlanCacheOptions.
const fx::TapePlan& compile_planned(fx::GraphModule& gm,
                                    const std::vector<Tensor>& example_inputs,
                                    const fx::PlanCacheOptions& cache_opts);

}  // namespace fxcpp::passes
