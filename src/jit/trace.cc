#include "jit/trace.h"

#include <sstream>
#include <unordered_map>

#include "nn/layers.h"

namespace fxcpp::jit {

namespace {

class TraceExpander {
 public:
  TraceExpander(JGraph& g, fx::GraphModule& gm) : g_(g), gm_(gm) {}

  void expand();

 private:
  // GetAttr chain through the module hierarchy ("layer1.0.conv1.weight" ->
  // one prim::GetAttr per path segment). Chains are cached per path prefix,
  // matching jit.trace's hoisting of repeated module attribute reads.
  std::string attr_chain(const std::string& qualname);

  // Constant pooling: TorchScript runs a ConstantPooling pass over traced
  // graphs, so repeated scalar constants share one prim::Constant node.
  std::string pooled_const(const std::string& attr);
  std::string int_const(std::int64_t v) {
    return pooled_const("int " + std::to_string(v));
  }
  std::string pooled_int_list(const std::vector<std::int64_t>& vs);

  std::string value_of(const fx::Argument& a);
  std::string expand_call(const fx::Node& n);
  std::string expand_module_call(const fx::Node& n);

  JGraph& g_;
  fx::GraphModule& gm_;
  std::string self_;
  std::unordered_map<const fx::Node*, std::string> env_;
  std::unordered_map<std::string, std::string> attr_cache_;
  std::unordered_map<std::string, std::string> const_cache_;
};

std::string TraceExpander::attr_chain(const std::string& qualname) {
  auto it = attr_cache_.find(qualname);
  if (it != attr_cache_.end()) return it->second;
  const auto dot = qualname.rfind('.');
  const std::string parent =
      dot == std::string::npos ? self_ : attr_chain(qualname.substr(0, dot));
  const std::string leaf =
      dot == std::string::npos ? qualname : qualname.substr(dot + 1);
  const std::string v =
      g_.emit("prim::GetAttr", {parent}, "name=\"" + leaf + "\"");
  attr_cache_[qualname] = v;
  return v;
}

std::string TraceExpander::pooled_const(const std::string& attr) {
  auto it = const_cache_.find(attr);
  if (it != const_cache_.end()) return it->second;
  const std::string v = g_.emit("prim::Constant", {}, attr);
  const_cache_[attr] = v;
  return v;
}

std::string TraceExpander::pooled_int_list(
    const std::vector<std::int64_t>& vs) {
  std::vector<std::string> ins;
  ins.reserve(vs.size());
  for (auto v : vs) ins.push_back(int_const(v));
  return g_.emit("prim::ListConstruct", std::move(ins));
}

std::string TraceExpander::value_of(const fx::Argument& a) {
  if (a.is_node()) return env_.at(a.node());
  if (a.is_none()) return pooled_const("None");
  if (a.is_int()) return int_const(a.as_int());
  if (a.is_double()) {
    std::ostringstream os;
    os << "float " << a.as_double();
    return pooled_const(os.str());
  }
  if (a.is_bool()) return pooled_const(a.as_bool() ? "bool 1" : "bool 0");
  if (a.is_string()) return pooled_const("str \"" + a.as_string() + "\"");
  // List: constants + ListConstruct (or tensor list for cat).
  std::vector<std::string> items;
  for (const auto& item : a.list()) items.push_back(value_of(item));
  return g_.emit("prim::ListConstruct", std::move(items));
}

std::string TraceExpander::expand_call(const fx::Node& n) {
  std::vector<std::string> ins;
  for (const auto& a : n.args()) ins.push_back(value_of(a));
  for (const auto& [k, v] : n.kwargs()) {
    (void)k;
    ins.push_back(value_of(v));
  }
  return g_.emit("aten::" + n.target(), std::move(ins));
}

std::string TraceExpander::expand_module_call(const fx::Node& n) {
  const auto m = gm_.resolve_module(n.target());
  const std::string x = value_of(n.args().at(0));

  if (const auto* conv = dynamic_cast<const nn::Conv2d*>(m.get())) {
    const std::string w = attr_chain(n.target() + ".weight");
    const std::string b = conv->has_bias()
                              ? attr_chain(n.target() + ".bias")
                              : pooled_const("None");
    const std::string stride = pooled_int_list(conv->stride());
    const std::string padding = pooled_int_list(conv->padding());
    const std::string dilation = pooled_int_list({1, 1});
    const std::string groups = int_const(1);
    return g_.emit("aten::conv2d",
                   {x, w, b, stride, padding, dilation, groups});
  }
  if (dynamic_cast<const nn::BatchNorm2d*>(m.get())) {
    const std::string w = attr_chain(n.target() + ".weight");
    const std::string b = attr_chain(n.target() + ".bias");
    const std::string mean = attr_chain(n.target() + ".running_mean");
    const std::string var = attr_chain(n.target() + ".running_var");
    const std::string training = pooled_const("bool 0");
    const std::string momentum = pooled_const("float 0.1");
    const std::string eps = pooled_const("float 1e-05");
    const std::string cudnn = pooled_const("bool 1");
    return g_.emit("aten::batch_norm",
                   {x, w, b, mean, var, training, momentum, eps, cudnn});
  }
  if (const auto* lin = dynamic_cast<const nn::Linear*>(m.get())) {
    const std::string w = attr_chain(n.target() + ".weight");
    const std::string b = lin->has_bias() ? attr_chain(n.target() + ".bias")
                                          : pooled_const("None");
    return g_.emit("aten::linear", {x, w, b});
  }
  const std::string& k = m->kind();
  if (k == "ReLU") return g_.emit("aten::relu", {x});
  if (k == "GELU") {
    return g_.emit("aten::gelu", {x, pooled_const("str \"none\"")});
  }
  if (k == "SELU") return g_.emit("aten::selu", {x});
  if (k == "Sigmoid") return g_.emit("aten::sigmoid", {x});
  if (k == "Tanh") return g_.emit("aten::tanh", {x});
  if (k == "Identity") return x;
  if (k == "Dropout") {
    // Inference-mode dropout traces as aten::dropout with training=False.
    const std::string p = pooled_const("float 0.5");
    const std::string t = pooled_const("bool 0");
    return g_.emit("aten::dropout", {x, p, t});
  }
  if (k == "Flatten") {
    const std::string s = int_const(1);
    const std::string e = int_const(-1);
    return g_.emit("aten::flatten", {x, s, e});
  }
  if (const auto* mp = dynamic_cast<const nn::MaxPool2d*>(m.get())) {
    const std::string kk = pooled_int_list({mp->kernel(), mp->kernel()});
    const std::string s = pooled_int_list({mp->stride(), mp->stride()});
    const std::string p = pooled_int_list({mp->padding(), mp->padding()});
    const std::string d = pooled_int_list({1, 1});
    const std::string ceil = pooled_const("bool 0");
    return g_.emit("aten::max_pool2d", {x, kk, s, p, d, ceil});
  }
  if (const auto* ap = dynamic_cast<const nn::AdaptiveAvgPool2d*>(m.get())) {
    const std::string out =
        pooled_int_list({ap->output_size(), ap->output_size()});
    return g_.emit("aten::adaptive_avg_pool2d", {x, out});
  }
  if (dynamic_cast<const nn::LayerNorm*>(m.get())) {
    const std::string w = attr_chain(n.target() + ".weight");
    const std::string b = attr_chain(n.target() + ".bias");
    const std::string shape = pooled_int_list({0});
    const std::string eps = pooled_const("float 1e-05");
    return g_.emit("aten::layer_norm", {x, shape, w, b, eps});
  }
  // Unknown leaf: record an opaque call.
  return g_.emit("prim::CallMethod", {attr_chain(n.target()), x},
                 "name=\"forward\"");
}

void TraceExpander::expand() {
  self_ = g_.add_input("self");
  for (const fx::Node* n : gm_.graph().nodes()) {
    switch (n->op()) {
      case fx::Opcode::Placeholder:
        env_[n] = g_.add_input(n->name());
        break;
      case fx::Opcode::GetAttr:
        env_[n] = attr_chain(n->target());
        break;
      case fx::Opcode::CallModule:
        env_[n] = expand_module_call(*n);
        break;
      case fx::Opcode::CallFunction:
      case fx::Opcode::CallMethod: {
        // aten::add(tensor, tensor) carries an alpha scalar in real traces.
        if (n->target() == "add" || n->target() == "sub") {
          std::vector<std::string> ins;
          for (const auto& a : n->args()) ins.push_back(value_of(a));
          ins.push_back(int_const(1));
          env_[n] = g_.emit("aten::" + n->target(), std::move(ins));
        } else {
          env_[n] = expand_call(*n);
        }
        break;
      }
      case fx::Opcode::Output:
        g_.emit_void("prim::Return", {value_of(n->args().at(0))});
        break;
    }
  }
}

}  // namespace

JGraphPtr trace(fx::GraphModule& gm, const std::string& input_hint) {
  (void)input_hint;
  auto g = std::make_unique<JGraph>();
  TraceExpander expander(*g, gm);
  expander.expand();
  return g;
}

}  // namespace fxcpp::jit
