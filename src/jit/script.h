// jit::script — a model of TorchScript's embedded-language front-end
// (DeVito et al., 2018), the "rich IR" baseline of Figure 5.
//
// TorchScript compiles each module's Python forward with a full
// lexer-parser-compiler pipeline, preserving *everything*: attribute
// lookups, scalar constants, list construction for every stride/padding
// argument, dtype/dimension assertions, padding-mode and training-mode
// branches, and the downsample `if` in residual blocks. No Python source
// exists in this reproduction, so each built-in module class carries an
// emitter that produces the IR the real front-end produces for its
// (canonical) forward; compound modules are inlined recursively. Node
// *categories* and per-layer counts are modeled on Figure 5a and the
// TorchScript graphs of torchvision layers.
#pragma once

#include "jit/ir.h"
#include "core/module.h"

namespace fxcpp::jit {

// Compile `root` to scripted IR. `input_hint` names the graph input.
JGraphPtr script(const nn::Module& root, const std::string& input_hint = "x");

}  // namespace fxcpp::jit
