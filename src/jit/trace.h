// jit::trace — a model of torch.jit.trace, the example-input tracing
// baseline of Figure 5.
//
// jit.trace records the dispatched ATen calls during a concrete run:
// control flow disappears (like fx), but every scalar argument becomes a
// prim::Constant node, every stride/padding tuple a prim::ListConstruct,
// and every parameter access a prim::GetAttr chain through the module
// hierarchy (Figure 5a). fx inlines all of those as immediate arguments,
// which is why its IR is roughly half the size (Section 6.1).
//
// Implementation: symbolically trace the module with fx (for ResNet-class
// models the recorded op sequence is identical to a concrete run), then
// expand each fx Node into the nodes a concrete jit.trace run would record.
#pragma once

#include "core/graph_module.h"
#include "jit/ir.h"

namespace fxcpp::jit {

JGraphPtr trace(fx::GraphModule& gm, const std::string& input_hint = "x");

}  // namespace fxcpp::jit
