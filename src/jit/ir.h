// TorchScript-like IR — the baseline representation for the paper's
// Section 6.1 IR-complexity comparison (Figure 5).
//
// Unlike the fx IR, this one is "very rich": scalar constants, data
// structure construction (prim::ListConstruct), attribute chains
// (prim::GetAttr), and block-structured control flow (prim::If, prim::Loop)
// are all first-class nodes. That richness is exactly what the paper
// measures: 2614 ops for scripted ResNet50 vs 860 traced vs 445 in fx IR.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace fxcpp::jit {

class JNode;

// A sequence of nodes (the top level of a graph, or a branch of If/Loop).
class Block {
 public:
  std::vector<std::unique_ptr<JNode>> nodes;
  std::vector<std::string> inputs;   // block parameters (%x)
  std::vector<std::string> outputs;  // block results
};

class JNode {
 public:
  std::string kind;                   // "prim::Constant", "aten::conv2d", ...
  std::vector<std::string> inputs;    // value names
  std::vector<std::string> outputs;   // value names
  std::string attr;                   // constant repr / GetAttr name / type
  std::vector<std::unique_ptr<Block>> blocks;  // sub-blocks (If/Loop)
};

// Graph with a builder API. Values are %-prefixed names.
class JGraph {
 public:
  JGraph();

  // Declare a top-level graph input (e.g. %self, %x.1).
  std::string add_input(const std::string& hint);

  // Append a node to the current block; returns its (single) output value.
  std::string emit(const std::string& kind, std::vector<std::string> inputs,
                   const std::string& attr = "");
  // Node with no outputs (e.g. prim::RaiseException).
  void emit_void(const std::string& kind, std::vector<std::string> inputs,
                 const std::string& attr = "");

  // Constant helpers (each is a distinct prim::Constant node, as in
  // TorchScript where constants are materialized in the graph).
  std::string const_int(std::int64_t v);
  std::string const_double(double v);
  std::string const_bool(bool v);
  std::string const_str(const std::string& v);
  std::string const_none();
  // prim::ListConstruct of n ints (emits n constants + the list node).
  std::string int_list(const std::vector<std::int64_t>& vs);

  // Open a sub-block on `owner` and make it current; returns it. Use
  // BlockScope for RAII.
  Block* open_block(JNode* owner);
  void close_block();
  // The most recently emitted node of the current block.
  JNode* last_node();

  class BlockScope {
   public:
    BlockScope(JGraph& g, JNode* owner) : g_(g) { g_.open_block(owner); }
    ~BlockScope() { g_.close_block(); }
    BlockScope(const BlockScope&) = delete;
    BlockScope& operator=(const BlockScope&) = delete;

   private:
    JGraph& g_;
  };

  // Total node count across all blocks — the Figure 5 "operations" metric.
  int count_ops() const;
  // Count nodes of a given kind (e.g. "prim::Constant").
  int count_kind(const std::string& kind) const;

  // Figure-5a style listing.
  std::string to_string() const;

  Block& top() { return *top_; }
  const Block& top() const { return *top_; }

 private:
  std::string fresh(const std::string& hint);

  std::unique_ptr<Block> top_;
  std::vector<Block*> stack_;
  int next_value_ = 0;
};

using JGraphPtr = std::unique_ptr<JGraph>;

}  // namespace fxcpp::jit
