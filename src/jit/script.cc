#include "jit/script.h"

#include <stdexcept>

#include "nn/layers.h"
#include "nn/models/resnet.h"

namespace fxcpp::jit {

namespace {

class ScriptEmitter {
 public:
  explicit ScriptEmitter(JGraph& g) : g_(g) {}

  // Emit the scripted forward of `m` (whose module object is value `self`)
  // applied to `input`; returns the output value.
  std::string emit_module(const nn::Module& m, const std::string& self,
                          const std::string& input);

 private:
  std::string emit_conv2d(const nn::Conv2d& m, const std::string& self,
                          const std::string& x);
  std::string emit_batch_norm(const nn::BatchNorm2d& m, const std::string& self,
                              const std::string& x);
  std::string emit_linear(const nn::Linear& m, const std::string& self,
                          const std::string& x);
  std::string emit_pool(const nn::Module& m, const std::string& x);
  std::string emit_chain(const nn::Module& m, const std::string& self,
                         const std::string& x);
  std::string emit_residual_block(const nn::Module& m, const std::string& self,
                                  const std::string& x, bool bottleneck,
                                  bool has_downsample);
  std::string child(const std::string& self, const std::string& name) {
    return g_.emit("prim::GetAttr", {self}, "name=\"" + name + "\"");
  }

  JGraph& g_;
};

std::string ScriptEmitter::emit_conv2d(const nn::Conv2d& m,
                                       const std::string& self,
                                       const std::string& x) {
  // nn.Conv2d.forward -> _conv_forward: padding-mode branch + full argument
  // materialization.
  const std::string w = g_.emit("prim::GetAttr", {self}, "name=\"weight\"");
  const std::string b = m.has_bias()
                            ? g_.emit("prim::GetAttr", {self}, "name=\"bias\"")
                            : g_.const_none();
  const std::string pad_mode =
      g_.emit("prim::GetAttr", {self}, "name=\"padding_mode\"");
  const std::string zeros = g_.const_str("zeros");
  const std::string is_zeros = g_.emit("aten::eq", {pad_mode, zeros});
  const std::string branch = g_.emit("prim::If", {is_zeros});
  {
    JGraph::BlockScope then_block(g_, g_.last_node());
    // zeros path: nothing extra.
  }
  {
    JGraph::BlockScope else_block(g_, g_.last_node());
    const std::string pad_list = g_.int_list(
        {m.padding()[0], m.padding()[0], m.padding()[1], m.padding()[1]});
    g_.emit("aten::_pad_circular", {x, pad_list});
  }
  (void)branch;
  const std::string stride = g_.int_list(m.stride());
  const std::string padding = g_.int_list(m.padding());
  const std::string dilation = g_.int_list({1, 1});
  const std::string groups = g_.const_int(1);
  return g_.emit("aten::conv2d",
                 {x, w, b, stride, padding, dilation, groups});
}

std::string ScriptEmitter::emit_batch_norm(const nn::BatchNorm2d& m,
                                           const std::string& self,
                                           const std::string& x) {
  // nn.BatchNorm2d.forward: _check_input_dim assertion + training-mode
  // bookkeeping + functional batch_norm.
  const std::string dim = g_.emit("aten::dim", {x});
  const std::string four = g_.const_int(4);
  const std::string ne = g_.emit("aten::ne", {dim, four});
  g_.emit("prim::If", {ne});
  {
    JGraph::BlockScope raise_block(g_, g_.last_node());
    const std::string msg = g_.const_str("expected 4D input");
    g_.emit_void("prim::RaiseException", {msg});
  }
  {
    JGraph::BlockScope ok_block(g_, g_.last_node());
  }
  const std::string training =
      g_.emit("prim::GetAttr", {self}, "name=\"training\"");
  g_.emit("prim::If", {training});
  {
    JGraph::BlockScope train_block(g_, g_.last_node());
    const std::string nbt =
        g_.emit("prim::GetAttr", {self}, "name=\"num_batches_tracked\"");
    const std::string one = g_.const_int(1);
    g_.emit("aten::add_", {nbt, one});
  }
  {
    JGraph::BlockScope eval_block(g_, g_.last_node());
  }
  const std::string w = g_.emit("prim::GetAttr", {self}, "name=\"weight\"");
  const std::string b = g_.emit("prim::GetAttr", {self}, "name=\"bias\"");
  const std::string mean =
      g_.emit("prim::GetAttr", {self}, "name=\"running_mean\"");
  const std::string var =
      g_.emit("prim::GetAttr", {self}, "name=\"running_var\"");
  const std::string momentum = g_.const_double(0.1);
  const std::string eps = g_.const_double(m.eps());
  const std::string cudnn = g_.const_bool(true);
  return g_.emit("aten::batch_norm",
                 {x, w, b, mean, var, training, momentum, eps, cudnn});
}

std::string ScriptEmitter::emit_linear(const nn::Linear& m,
                                       const std::string& self,
                                       const std::string& x) {
  const std::string w = g_.emit("prim::GetAttr", {self}, "name=\"weight\"");
  const std::string b = m.has_bias()
                            ? g_.emit("prim::GetAttr", {self}, "name=\"bias\"")
                            : g_.const_none();
  return g_.emit("aten::linear", {x, w, b});
}

std::string ScriptEmitter::emit_pool(const nn::Module& m,
                                     const std::string& x) {
  if (dynamic_cast<const nn::MaxPool2d*>(&m)) {
    // Kernel/stride/padding/dilation lists + ceil_mode flag.
    const std::string k = g_.int_list({3, 3});
    const std::string s = g_.int_list({2, 2});
    const std::string p = g_.int_list({1, 1});
    const std::string d = g_.int_list({1, 1});
    const std::string ceil = g_.const_bool(false);
    return g_.emit("aten::max_pool2d", {x, k, s, p, d, ceil});
  }
  const std::string out = g_.int_list({1, 1});
  return g_.emit("aten::adaptive_avg_pool2d", {x, out});
}

std::string ScriptEmitter::emit_chain(const nn::Module& m,
                                      const std::string& self,
                                      const std::string& x) {
  // Sequential-style composition: each child is fetched then inlined.
  std::string cur = x;
  for (const auto& [name, c] : m.children()) {
    const std::string cv = child(self, name);
    cur = emit_module(*c, cv, cur);
  }
  return cur;
}

std::string ScriptEmitter::emit_residual_block(const nn::Module& m,
                                               const std::string& self,
                                               const std::string& x,
                                               bool bottleneck,
                                               bool has_downsample) {
  auto run = [&](const char* conv, const char* bn, const std::string& v) {
    const std::string c = child(self, conv);
    std::string out = emit_module(*m.get_submodule(conv), c, v);
    const std::string b = child(self, bn);
    return emit_module(*m.get_submodule(bn), b, out);
  };
  std::string out = run("conv1", "bn1", x);
  out = g_.emit("aten::relu", {out});
  out = run("conv2", "bn2", out);
  if (bottleneck) {
    out = g_.emit("aten::relu", {out});
    out = run("conv3", "bn3", out);
  }
  // `if self.downsample is not None:` — scripted as a real branch.
  const std::string down = child(self, "downsample");
  const std::string cond = g_.emit("aten::__isnot__", {down, g_.const_none()});
  const std::string sel = g_.emit("prim::If", {cond});
  JNode* if_node = g_.last_node();
  {
    JGraph::BlockScope then_block(g_, if_node);
    if (has_downsample) {
      emit_chain(*m.get_submodule("downsample"), down, x);
    }
  }
  {
    JGraph::BlockScope else_block(g_, if_node);
  }
  const std::string one = g_.const_int(1);
  out = g_.emit("aten::add", {out, sel.empty() ? x : sel, one});
  return g_.emit("aten::relu", {out});
}

std::string ScriptEmitter::emit_module(const nn::Module& m,
                                       const std::string& self,
                                       const std::string& input) {
  const std::string& k = m.kind();
  if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&m)) {
    return emit_conv2d(*conv, self, input);
  }
  if (const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(&m)) {
    return emit_batch_norm(*bn, self, input);
  }
  if (const auto* lin = dynamic_cast<const nn::Linear*>(&m)) {
    return emit_linear(*lin, self, input);
  }
  if (k == "ReLU") return g_.emit("aten::relu", {input});
  if (k == "GELU") return g_.emit("aten::gelu", {input, g_.const_str("none")});
  if (k == "SELU") return g_.emit("aten::selu", {input});
  if (k == "Sigmoid") return g_.emit("aten::sigmoid", {input});
  if (k == "Tanh") return g_.emit("aten::tanh", {input});
  if (k == "Identity") return input;
  if (k == "Flatten") {
    const std::string s = g_.const_int(1);
    const std::string e = g_.const_int(-1);
    return g_.emit("aten::flatten", {input, s, e});
  }
  if (k == "Dropout") {
    // Training-mode branch is part of the scripted functional dropout.
    const std::string training =
        g_.emit("prim::GetAttr", {self}, "name=\"training\"");
    const std::string p = g_.const_double(0.5);
    return g_.emit("aten::dropout", {input, p, training});
  }
  if (dynamic_cast<const nn::MaxPool2d*>(&m) ||
      dynamic_cast<const nn::AdaptiveAvgPool2d*>(&m)) {
    return emit_pool(m, input);
  }
  if (const auto* bb = dynamic_cast<const nn::models::BasicBlock*>(&m)) {
    return emit_residual_block(m, self, input, /*bottleneck=*/false,
                               bb->has_downsample());
  }
  if (const auto* bk = dynamic_cast<const nn::models::Bottleneck*>(&m)) {
    return emit_residual_block(m, self, input, /*bottleneck=*/true,
                               bk->has_downsample());
  }
  if (k == "LayerNorm") {
    const std::string w = g_.emit("prim::GetAttr", {self}, "name=\"weight\"");
    const std::string b = g_.emit("prim::GetAttr", {self}, "name=\"bias\"");
    const std::string shape = g_.int_list({0});
    const std::string eps = g_.const_double(1e-5);
    return g_.emit("aten::layer_norm", {input, shape, w, b, eps});
  }
  // Compound modules (Sequential, ResNet, MLP, DeepRecommender, ...):
  // inline children in registration order, which matches their forwards.
  if (!m.children().empty()) return emit_chain(m, self, input);
  throw std::invalid_argument("jit::script: no emitter for module kind '" +
                              k + "'");
}

}  // namespace

JGraphPtr script(const nn::Module& root, const std::string& input_hint) {
  auto g = std::make_unique<JGraph>();
  const std::string self = g->add_input("self");
  const std::string x = g->add_input(input_hint);
  ScriptEmitter emitter(*g);
  const std::string out = emitter.emit_module(root, self, x);
  g->emit_void("prim::Return", {out});
  return g;
}

}  // namespace fxcpp::jit
