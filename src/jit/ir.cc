#include "jit/ir.h"

#include <sstream>

namespace fxcpp::jit {

JGraph::JGraph() : top_(std::make_unique<Block>()) {
  stack_.push_back(top_.get());
}

std::string JGraph::fresh(const std::string& hint) {
  std::string out = "%";
  if (!hint.empty()) {
    out += hint;
    out += '.';
  }
  out += std::to_string(next_value_++);
  return out;
}

std::string JGraph::add_input(const std::string& hint) {
  const std::string v = fresh(hint);
  top_->inputs.push_back(v);
  return v;
}

std::string JGraph::emit(const std::string& kind,
                         std::vector<std::string> inputs,
                         const std::string& attr) {
  auto n = std::make_unique<JNode>();
  n->kind = kind;
  n->inputs = std::move(inputs);
  n->attr = attr;
  const std::string out = fresh("");
  n->outputs.push_back(out);
  stack_.back()->nodes.push_back(std::move(n));
  return out;
}

void JGraph::emit_void(const std::string& kind,
                       std::vector<std::string> inputs,
                       const std::string& attr) {
  auto n = std::make_unique<JNode>();
  n->kind = kind;
  n->inputs = std::move(inputs);
  n->attr = attr;
  stack_.back()->nodes.push_back(std::move(n));
}

std::string JGraph::const_int(std::int64_t v) {
  return emit("prim::Constant", {}, "int " + std::to_string(v));
}
std::string JGraph::const_double(double v) {
  std::ostringstream os;
  os << "float " << v;
  return emit("prim::Constant", {}, os.str());
}
std::string JGraph::const_bool(bool v) {
  return emit("prim::Constant", {}, v ? "bool 1" : "bool 0");
}
std::string JGraph::const_str(const std::string& v) {
  return emit("prim::Constant", {}, "str \"" + v + "\"");
}
std::string JGraph::const_none() { return emit("prim::Constant", {}, "None"); }

std::string JGraph::int_list(const std::vector<std::int64_t>& vs) {
  std::vector<std::string> ins;
  ins.reserve(vs.size());
  for (auto v : vs) ins.push_back(const_int(v));
  return emit("prim::ListConstruct", std::move(ins));
}

Block* JGraph::open_block(JNode* owner) {
  owner->blocks.push_back(std::make_unique<Block>());
  Block* b = owner->blocks.back().get();
  stack_.push_back(b);
  return b;
}

void JGraph::close_block() { stack_.pop_back(); }

JNode* JGraph::last_node() {
  return stack_.back()->nodes.empty() ? nullptr
                                      : stack_.back()->nodes.back().get();
}

namespace {
int count_block(const Block& b) {
  int n = 0;
  for (const auto& node : b.nodes) {
    ++n;
    for (const auto& sub : node->blocks) n += count_block(*sub);
  }
  return n;
}

int count_kind_block(const Block& b, const std::string& kind) {
  int n = 0;
  for (const auto& node : b.nodes) {
    if (node->kind == kind) ++n;
    for (const auto& sub : node->blocks) n += count_kind_block(*sub, kind);
  }
  return n;
}

void print_block(const Block& b, std::ostringstream& os, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const auto& node : b.nodes) {
    os << pad;
    for (std::size_t i = 0; i < node->outputs.size(); ++i) {
      if (i) os << ", ";
      os << node->outputs[i];
    }
    if (!node->outputs.empty()) os << " = ";
    os << node->kind;
    if (!node->attr.empty()) os << "[" << node->attr << "]";
    os << "(";
    for (std::size_t i = 0; i < node->inputs.size(); ++i) {
      if (i) os << ", ";
      os << node->inputs[i];
    }
    os << ")\n";
    for (const auto& sub : node->blocks) {
      os << pad << "  block";
      if (!sub->inputs.empty()) {
        os << "(";
        for (std::size_t i = 0; i < sub->inputs.size(); ++i) {
          if (i) os << ", ";
          os << sub->inputs[i];
        }
        os << ")";
      }
      os << ":\n";
      print_block(*sub, os, indent + 2);
    }
  }
}
}  // namespace

int JGraph::count_ops() const { return count_block(*top_); }

int JGraph::count_kind(const std::string& kind) const {
  return count_kind_block(*top_, kind);
}

std::string JGraph::to_string() const {
  std::ostringstream os;
  os << "graph(";
  for (std::size_t i = 0; i < top_->inputs.size(); ++i) {
    if (i) os << ",\n      ";
    os << top_->inputs[i];
  }
  os << "):\n";
  print_block(*top_, os, 1);
  return os.str();
}

}  // namespace fxcpp::jit
