#include "tensor/quantized.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/kernels.h"
#include "tensor/ops.h"
#include "tensor/pack_cache.h"

namespace fxcpp::ops {

namespace {
constexpr std::int32_t kQMin = -128;
constexpr std::int32_t kQMax = 127;

inline std::int8_t clamp_q(std::int32_t v) {
  return static_cast<std::int8_t>(std::clamp(v, kQMin, kQMax));
}

inline std::int8_t quantize_one(float v, float inv_scale, std::int32_t zp) {
  return clamp_q(static_cast<std::int32_t>(std::lrintf(v * inv_scale)) + zp);
}
}  // namespace

QParams choose_qparams(double mn, double mx) {
  // Always include zero so padding/ReLU zeros are exact.
  mn = std::min(mn, 0.0);
  mx = std::max(mx, 0.0);
  if (mx - mn < 1e-8) mx = mn + 1e-8;
  QParams q;
  q.scale = (mx - mn) / static_cast<double>(kQMax - kQMin);
  const double zp = kQMin - mn / q.scale;
  q.zero_point = static_cast<std::int32_t>(
      std::clamp(std::lround(zp), static_cast<long>(kQMin), static_cast<long>(kQMax)));
  return q;
}

QParams choose_qparams_symmetric(double mn, double mx) {
  const double a = std::max(std::abs(mn), std::abs(mx));
  QParams q;
  q.scale = std::max(a, 1e-8) / 127.0;
  q.zero_point = 0;
  return q;
}

Tensor quantize_per_tensor(const Tensor& x, double scale,
                           std::int32_t zero_point) {
  const Tensor xc = x.contiguous();
  Tensor out(xc.sizes(), DType::Int8);
  out.set_qparams(QParams{scale, zero_point});
  const float* in = xc.data<float>();
  auto* o = out.data<std::int8_t>();
  const float inv = static_cast<float>(1.0 / scale);
  const std::int64_t n = xc.numel();
  for (std::int64_t i = 0; i < n; ++i) o[i] = quantize_one(in[i], inv, zero_point);
  return out;
}

Tensor dequantize(const Tensor& qx) {
  const Tensor qc = qx.contiguous();
  const QParams q = qc.qparams();
  Tensor out(qc.sizes(), DType::Float32);
  const auto* in = qc.data<std::int8_t>();
  float* o = out.data<float>();
  const float s = static_cast<float>(q.scale);
  const std::int32_t zp = q.zero_point;
  const std::int64_t n = qc.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    o[i] = s * static_cast<float>(static_cast<std::int32_t>(in[i]) - zp);
  }
  return out;
}

PackedLinearWeight PackedLinearWeight::pack(const Tensor& w_fp32,
                                            const Tensor& bias_fp32) {
  const Tensor wc = w_fp32.contiguous();
  const std::int64_t out_f = wc.size(0), in_f = wc.size(1);
  const float* wp = wc.data<float>();
  double mn = 0.0, mx = 0.0;
  const std::int64_t n = wc.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    mn = std::min<double>(mn, wp[i]);
    mx = std::max<double>(mx, wp[i]);
  }
  const QParams q = choose_qparams_symmetric(mn, mx);

  PackedLinearWeight packed;
  packed.w_scale = q.scale;
  packed.w_q = quantize_per_tensor(wc, q.scale, 0);
  packed.row_sum.resize(static_cast<std::size_t>(out_f));
  const auto* wq = packed.w_q.data<std::int8_t>();
  for (std::int64_t r = 0; r < out_f; ++r) {
    std::int32_t s = 0;
    for (std::int64_t c = 0; c < in_f; ++c) s += wq[r * in_f + c];
    packed.row_sum[static_cast<std::size_t>(r)] = s;
  }
  if (bias_fp32.defined()) packed.bias = bias_fp32.contiguous();
  return packed;
}

PackedLinearWeight PackedLinearWeight::pack_per_channel(
    const Tensor& w_fp32, const Tensor& bias_fp32) {
  const Tensor wc = w_fp32.contiguous();
  const std::int64_t out_f = wc.size(0), in_f = wc.size(1);
  const float* wp = wc.data<float>();

  PackedLinearWeight packed;
  packed.per_channel = true;
  packed.w_q = Tensor(Shape{out_f, in_f}, DType::Int8);
  packed.w_q.set_qparams(QParams{1.0, 0});  // per-row scales carried below
  packed.row_scale.resize(static_cast<std::size_t>(out_f));
  packed.row_sum.resize(static_cast<std::size_t>(out_f));
  auto* wq = packed.w_q.data<std::int8_t>();
  for (std::int64_t r = 0; r < out_f; ++r) {
    double mx = 0.0;
    for (std::int64_t col = 0; col < in_f; ++col) {
      mx = std::max(mx, std::abs(static_cast<double>(wp[r * in_f + col])));
    }
    const float scale = static_cast<float>(std::max(mx, 1e-8) / 127.0);
    packed.row_scale[static_cast<std::size_t>(r)] = scale;
    const float inv = 1.f / scale;
    std::int32_t sum = 0;
    for (std::int64_t col = 0; col < in_f; ++col) {
      const auto q = quantize_one(wp[r * in_f + col], inv, 0);
      wq[r * in_f + col] = q;
      sum += q;
    }
    packed.row_sum[static_cast<std::size_t>(r)] = sum;
  }
  if (bias_fp32.defined()) packed.bias = bias_fp32.contiguous();
  return packed;
}

Tensor quantized_linear(const Tensor& x_q, const PackedLinearWeight& pw,
                        double out_scale, std::int32_t out_zp) {
  const Tensor xc = x_q.contiguous();
  const QParams xq = xc.qparams();
  const std::int64_t in_f = pw.w_q.size(1), out_f = pw.w_q.size(0);
  if (xc.size(-1) != in_f) {
    throw std::invalid_argument("quantized_linear: in_features mismatch");
  }
  const std::int64_t rows = xc.numel() / in_f;
  Shape out_shape = xc.sizes();
  out_shape.back() = out_f;
  Tensor y(out_shape, DType::Int8);
  y.set_qparams(QParams{out_scale, out_zp});

  const auto* xp = xc.data<std::int8_t>();
  auto* yp = y.data<std::int8_t>();
  const float* bias = pw.bias.defined() ? pw.bias.data<float>() : nullptr;
  // real = sx*sw[j] * (acc - (zx+128) * row_sum[j]) + bias[j]; requantize.
  // (The +128 removes the u8 offset the kernel driver applies while
  // packing activation strips — see kernels::qgemm.)
  const float sx = static_cast<float>(xq.scale);
  const float sw_tensor = static_cast<float>(pw.w_scale);
  const std::int32_t zx = xq.zero_point;

  // The weight's quad panels are packed once per (storage, version) in the
  // thread's PackCache; per-call epilogue vectors are cheap (O(out_f)).
  const auto panels = PackCache::local().panel_b_s8_nt(pw.w_q);
  std::vector<std::int32_t> corr(static_cast<std::size_t>(out_f));
  for (std::int64_t j = 0; j < out_f; ++j) {
    corr[static_cast<std::size_t>(j)] =
        (zx + 128) * pw.row_sum[static_cast<std::size_t>(j)];
  }
  std::vector<float> comb;  // per-channel combined sx*sw[j]
  kernels::QuantEpilogue ep;
  ep.corr_col = corr.data();
  if (pw.per_channel) {
    comb.resize(static_cast<std::size_t>(out_f));
    for (std::int64_t j = 0; j < out_f; ++j) {
      comb[static_cast<std::size_t>(j)] =
          sx * pw.row_scale[static_cast<std::size_t>(j)];
    }
    ep.scale_col = comb.data();
  } else {
    ep.scale_all = sx * sw_tensor;
  }
  ep.bias_col = bias;
  ep.inv_out = static_cast<float>(1.0 / out_scale);
  ep.out_zp = out_zp;
  kernels::qgemm(rows, out_f, in_f, xp, in_f, panels->data(), yp, out_f, ep);
  return y;
}

PackedConvWeight PackedConvWeight::pack(const Tensor& w_fp32,
                                        const Tensor& bias_fp32,
                                        std::vector<std::int64_t> stride,
                                        std::vector<std::int64_t> padding) {
  const Tensor wc = w_fp32.contiguous();
  const float* wp = wc.data<float>();
  double mn = 0.0, mx = 0.0;
  const std::int64_t n = wc.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    mn = std::min<double>(mn, wp[i]);
    mx = std::max<double>(mx, wp[i]);
  }
  const QParams q = choose_qparams_symmetric(mn, mx);

  PackedConvWeight packed;
  packed.w_scale = q.scale;
  packed.w_q = quantize_per_tensor(wc, q.scale, 0);
  packed.stride = std::move(stride);
  packed.padding = std::move(padding);
  const std::int64_t o = wc.size(0);
  const std::int64_t k = wc.numel() / o;
  packed.filt_sum.resize(static_cast<std::size_t>(o));
  const auto* wq = packed.w_q.data<std::int8_t>();
  for (std::int64_t f = 0; f < o; ++f) {
    std::int32_t s = 0;
    for (std::int64_t i = 0; i < k; ++i) s += wq[f * k + i];
    packed.filt_sum[static_cast<std::size_t>(f)] = s;
  }
  if (bias_fp32.defined()) packed.bias = bias_fp32.contiguous();
  return packed;
}

Tensor quantized_conv2d(const Tensor& x_q, const PackedConvWeight& pw,
                        double out_scale, std::int32_t out_zp) {
  const Tensor xc = x_q.contiguous();
  const QParams xq = xc.qparams();
  const std::int64_t n = xc.size(0), c = xc.size(1), h = xc.size(2), w = xc.size(3);
  const std::int64_t o = pw.w_q.size(0), kh = pw.w_q.size(2), kw = pw.w_q.size(3);
  const std::int64_t sh = pw.stride.empty() ? 1 : pw.stride[0];
  const std::int64_t sw = pw.stride.size() > 1 ? pw.stride[1] : sh;
  const std::int64_t ph = pw.padding.empty() ? 0 : pw.padding[0];
  const std::int64_t pwd = pw.padding.size() > 1 ? pw.padding[1] : ph;
  const std::int64_t oh = (h + 2 * ph - kh) / sh + 1;
  const std::int64_t ow = (w + 2 * pwd - kw) / sw + 1;

  Tensor y(Shape{n, o, oh, ow}, DType::Int8);
  y.set_qparams(QParams{out_scale, out_zp});
  const auto* xp = xc.data<std::int8_t>();
  auto* yp = y.data<std::int8_t>();
  const float* bias = pw.bias.defined() ? pw.bias.data<float>() : nullptr;
  const float sx_sw = static_cast<float>(xq.scale * pw.w_scale);
  const std::int32_t zx = xq.zero_point;
  const std::int64_t k = c * kh * kw;
  const std::int64_t spatial = oh * ow;

  // Transposed im2col + qgemm: rows are output pixels, columns are filters
  // (C'[spatial][O] = colT[spatial][k] @ Wq[O][k]^T), so the one u8 x s8
  // micro-kernel family covers conv too; C' is then transposed back to the
  // NCHW [O][spatial] plane. The weight's quad panels are cached in the
  // thread's PackCache; colT and C' live in reusable int8 workspaces
  // instead of per-call allocations. Per-filter epilogue: corr removes the
  // activation zero point and the u8 packing offset (see kernels::qgemm).
  const auto panels = PackCache::local().panel_b_s8_nt(pw.w_q);
  std::int8_t* colt =
      PackCache::local().workspace_s8(static_cast<std::size_t>(spatial * k));
  std::int8_t* ct = PackCache::local().panel_workspace_s8(
      static_cast<std::size_t>(spatial * o));
  std::vector<std::int32_t> corr(static_cast<std::size_t>(o));
  for (std::int64_t f = 0; f < o; ++f) {
    corr[static_cast<std::size_t>(f)] =
        (zx + 128) * pw.filt_sum[static_cast<std::size_t>(f)];
  }
  kernels::QuantEpilogue ep;
  ep.corr_col = corr.data();
  ep.scale_all = sx_sw;
  ep.bias_col = bias;
  ep.inv_out = static_cast<float>(1.0 / out_scale);
  ep.out_zp = out_zp;
  // Padded pixels carry the activation zero point so they dequantize to 0.
  const auto pad = static_cast<std::int8_t>(std::clamp(zx, -128, 127));
  for (std::int64_t img = 0; img < n; ++img) {
    const std::int8_t* xin = xp + img * c * h * w;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        std::int8_t* row = colt + (oy * ow + ox) * k;
        for (std::int64_t ch = 0; ch < c; ++ch) {
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = oy * sh - ph + ky;
            std::int8_t* dst = row + (ch * kh + ky) * kw;
            if (iy < 0 || iy >= h) {
              for (std::int64_t kx = 0; kx < kw; ++kx) dst[kx] = pad;
              continue;
            }
            const std::int8_t* irow = xin + (ch * h + iy) * w;
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const std::int64_t ix = ox * sw - pwd + kx;
              dst[kx] = (ix >= 0 && ix < w) ? irow[ix] : pad;
            }
          }
        }
      }
    }
    kernels::qgemm(spatial, o, k, colt, k, panels->data(), ct, o, ep);
    // Blocked transpose of C'[spatial][O] into the output plane [O][spatial].
    std::int8_t* yout = yp + img * o * spatial;
    constexpr std::int64_t kBlock = 16;
    for (std::int64_t j0 = 0; j0 < spatial; j0 += kBlock) {
      const std::int64_t j1 = std::min(j0 + kBlock, spatial);
      for (std::int64_t f0 = 0; f0 < o; f0 += kBlock) {
        const std::int64_t f1 = std::min(f0 + kBlock, o);
        for (std::int64_t j = j0; j < j1; ++j) {
          for (std::int64_t f = f0; f < f1; ++f) {
            yout[f * spatial + j] = ct[j * o + f];
          }
        }
      }
    }
  }
  return y;
}

Tensor quantized_relu(const Tensor& x_q) {
  const Tensor xc = x_q.contiguous();
  const QParams q = xc.qparams();
  Tensor out(xc.sizes(), DType::Int8);
  out.set_qparams(q);
  const auto* in = xc.data<std::int8_t>();
  auto* o = out.data<std::int8_t>();
  const auto zp = static_cast<std::int8_t>(std::clamp(q.zero_point, -128, 127));
  const std::int64_t n = xc.numel();
  for (std::int64_t i = 0; i < n; ++i) o[i] = std::max(in[i], zp);
  return out;
}

Tensor quantized_add(const Tensor& a_q, const Tensor& b_q, double out_scale,
                     std::int32_t out_zp) {
  const Tensor ac = a_q.contiguous();
  const Tensor bc = b_q.contiguous();
  if (ac.sizes() != bc.sizes()) {
    throw std::invalid_argument("quantized_add: shape mismatch");
  }
  const QParams qa = ac.qparams(), qb = bc.qparams();
  Tensor out(ac.sizes(), DType::Int8);
  out.set_qparams(QParams{out_scale, out_zp});
  const auto* pa = ac.data<std::int8_t>();
  const auto* pb = bc.data<std::int8_t>();
  auto* o = out.data<std::int8_t>();
  const float sa = static_cast<float>(qa.scale), sb = static_cast<float>(qb.scale);
  const float inv = static_cast<float>(1.0 / out_scale);
  const std::int64_t n = ac.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const float real = sa * static_cast<float>(pa[i] - qa.zero_point) +
                       sb * static_cast<float>(pb[i] - qb.zero_point);
    o[i] = quantize_one(real, inv, out_zp);
  }
  return out;
}

Tensor quantized_unary_lut(const Tensor& x_q, float (*f)(float),
                           double out_scale, std::int32_t out_zp) {
  const Tensor xc = x_q.contiguous();
  const QParams q = xc.qparams();
  // Table over all 256 possible int8 inputs.
  std::int8_t lut[256];
  const float inv = static_cast<float>(1.0 / out_scale);
  for (int v = kQMin; v <= kQMax; ++v) {
    const float real = static_cast<float>(q.scale) * static_cast<float>(v - q.zero_point);
    lut[v - kQMin] = quantize_one(f(real), inv, out_zp);
  }
  Tensor out(xc.sizes(), DType::Int8);
  out.set_qparams(QParams{out_scale, out_zp});
  const auto* in = xc.data<std::int8_t>();
  auto* o = out.data<std::int8_t>();
  const std::int64_t n = xc.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    o[i] = lut[static_cast<std::int32_t>(in[i]) - kQMin];
  }
  return out;
}

}  // namespace fxcpp::ops
