#include "tensor/tensor.h"

#include <atomic>
#include <cmath>
#include <sstream>

#include "runtime/rng.h"

namespace fxcpp {

namespace {
// Allocator counters. Relaxed ordering suffices: readers want a consistent
// snapshot of totals, not ordering against tensor contents.
std::atomic<std::int64_t> g_live_bytes{0};
std::atomic<std::int64_t> g_peak_bytes{0};
std::atomic<std::int64_t> g_total_bytes{0};
std::atomic<std::int64_t> g_alloc_count{0};
// Fault-injection ceiling; see Storage::set_alloc_limit. Thread-local keeps
// an injected limit scoped to the worker running the targeted node.
thread_local std::int64_t t_alloc_limit = 0;
// Single-shot placement hint; see Storage::arm_placement. Thread-local so
// each ParallelExecutor worker can aim its own instruction's arena slot.
thread_local std::byte* t_place_ptr = nullptr;
thread_local std::size_t t_place_nbytes = 0;
std::atomic<std::int64_t> g_served_bytes{0};
std::atomic<std::int64_t> g_served_count{0};
}  // namespace

Storage::Storage(std::size_t nbytes) : nbytes_(nbytes) {
  // Round up so vectorized kernels may read a full lane at the tail.
  const std::size_t padded = (nbytes + 63) / 64 * 64;
  alloc_bytes_ = padded == 0 ? 64 : padded;
  if (t_place_ptr != nullptr && t_place_nbytes == nbytes) {
    // Adopt the planner's arena slot: no heap traffic, no counter churn
    // (the arena's backing Storage was counted when it was created).
    // Single-shot — the hint serves exactly one allocation.
    std::byte* slot = t_place_ptr;
    t_place_ptr = nullptr;
    t_place_nbytes = 0;
    data_ = std::unique_ptr<std::byte[], AlignedDelete>(slot,
                                                        AlignedDelete{false});
    g_served_bytes.fetch_add(static_cast<std::int64_t>(alloc_bytes_),
                             std::memory_order_relaxed);
    g_served_count.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (t_alloc_limit > 0 &&
      g_live_bytes.load(std::memory_order_relaxed) +
              static_cast<std::int64_t>(alloc_bytes_) >
          t_alloc_limit) {
    // Disarm before throwing: unwinding may allocate (string building,
    // cleanup copies) and must not re-trip the ceiling.
    const std::int64_t limit = t_alloc_limit;
    t_alloc_limit = 0;
    throw AllocLimitError(
        "allocation of " + std::to_string(alloc_bytes_) +
        " bytes would exceed the armed ceiling of " + std::to_string(limit) +
        " live bytes (" +
        std::to_string(g_live_bytes.load(std::memory_order_relaxed)) +
        " currently live)");
  }
  data_.reset(static_cast<std::byte*>(
      ::operator new[](alloc_bytes_, std::align_val_t{64})));
  const auto sz = static_cast<std::int64_t>(alloc_bytes_);
  g_total_bytes.fetch_add(sz, std::memory_order_relaxed);
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t live =
      g_live_bytes.fetch_add(sz, std::memory_order_relaxed) + sz;
  std::int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

Storage::Storage(std::byte* external, std::size_t nbytes)
    : data_(external, AlignedDelete{false}), nbytes_(nbytes) {
  const std::size_t padded = (nbytes + 63) / 64 * 64;
  alloc_bytes_ = padded == 0 ? 64 : padded;
}

Storage::~Storage() {
  if (!data_.get_deleter().owned) return;  // arena slot: arena owns the bytes
  g_live_bytes.fetch_sub(static_cast<std::int64_t>(alloc_bytes_),
                         std::memory_order_relaxed);
}

std::int64_t Storage::live_bytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}
std::int64_t Storage::peak_bytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}
std::int64_t Storage::total_allocated_bytes() {
  return g_total_bytes.load(std::memory_order_relaxed);
}
std::int64_t Storage::allocation_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
void Storage::reset_peak() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}
void Storage::set_alloc_limit(std::int64_t max_live_bytes) {
  t_alloc_limit = max_live_bytes > 0 ? max_live_bytes : 0;
}
std::int64_t Storage::alloc_limit() { return t_alloc_limit; }

void Storage::arm_placement(std::byte* slot, std::size_t nbytes) {
  t_place_ptr = slot;
  t_place_nbytes = nbytes;
}
void Storage::disarm_placement() {
  t_place_ptr = nullptr;
  t_place_nbytes = 0;
}
bool Storage::placement_armed() { return t_place_ptr != nullptr; }
std::int64_t Storage::planner_served_bytes() {
  return g_served_bytes.load(std::memory_order_relaxed);
}
std::int64_t Storage::planner_served_count() {
  return g_served_count.load(std::memory_order_relaxed);
}

Tensor::Tensor(Shape shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype) {
  strides_ = contiguous_strides(shape_);
  storage_ = std::make_shared<Storage>(
      static_cast<std::size_t>(numel()) * dtype_size(dtype_));
}

std::int64_t Tensor::size(int dim) const {
  const auto n = static_cast<int>(shape_.size());
  if (dim < 0) dim += n;
  if (dim < 0 || dim >= n) throw std::out_of_range("Tensor::size: bad dim");
  return shape_[static_cast<std::size_t>(dim)];
}

bool Tensor::is_contiguous() const {
  return strides_ == contiguous_strides(shape_);
}

const QParams& Tensor::qparams() const {
  if (!qparams_) throw std::logic_error("Tensor is not quantized");
  return *qparams_;
}

void Tensor::set_qparams(QParams q) {
  if (dtype_ != DType::Int8 && dtype_ != DType::UInt8) {
    throw std::logic_error("qparams only valid on int8/uint8 tensors");
  }
  qparams_ = std::make_shared<QParams>(q);
}

void Tensor::check_dtype(DType want) const {
  if (!defined()) throw std::logic_error("accessing undefined Tensor");
  if (dtype_ != want) {
    throw std::logic_error(std::string("dtype mismatch: tensor is ") +
                           dtype_name(dtype_) + ", requested " +
                           dtype_name(want));
  }
}

namespace {
template <typename T>
double load_as_double(const std::byte* base, std::int64_t idx) {
  return static_cast<double>(reinterpret_cast<const T*>(base)[idx]);
}
template <typename T>
void store_from_double(std::byte* base, std::int64_t idx, double v) {
  reinterpret_cast<T*>(base)[idx] = static_cast<T>(v);
}
}  // namespace

double Tensor::at_flat(std::int64_t i) const {
  if (!defined()) throw std::logic_error("at_flat on undefined Tensor");
  // Translate flat contiguous index through strides (views supported).
  std::int64_t rem = i;
  std::int64_t off = offset_;
  for (std::size_t d = 0; d < shape_.size(); ++d) {
    const std::int64_t inner = shape_numel(
        Shape(shape_.begin() + static_cast<std::ptrdiff_t>(d) + 1, shape_.end()));
    const std::int64_t coord = inner == 0 ? 0 : rem / inner;
    rem -= coord * inner;
    off += coord * strides_[d];
  }
  const std::byte* base = storage_->data();
  switch (dtype_) {
    case DType::Float32: return load_as_double<float>(base, off);
    case DType::Float64: return load_as_double<double>(base, off);
    case DType::Int64: return load_as_double<std::int64_t>(base, off);
    case DType::Int32: return load_as_double<std::int32_t>(base, off);
    case DType::Int8: return load_as_double<std::int8_t>(base, off);
    case DType::UInt8: return load_as_double<std::uint8_t>(base, off);
    case DType::Bool: return load_as_double<std::uint8_t>(base, off);
  }
  return 0.0;
}

void Tensor::set_flat(std::int64_t i, double v) {
  if (!is_contiguous()) throw std::logic_error("set_flat requires contiguous");
  storage_->bump_version();
  std::byte* base = storage_->data();
  const std::int64_t off = offset_ + i;
  switch (dtype_) {
    case DType::Float32: store_from_double<float>(base, off, v); break;
    case DType::Float64: store_from_double<double>(base, off, v); break;
    case DType::Int64: store_from_double<std::int64_t>(base, off, v); break;
    case DType::Int32: store_from_double<std::int32_t>(base, off, v); break;
    case DType::Int8: store_from_double<std::int8_t>(base, off, v); break;
    case DType::UInt8: store_from_double<std::uint8_t>(base, off, v); break;
    case DType::Bool: store_from_double<std::uint8_t>(base, off, v != 0.0); break;
  }
}

double Tensor::item() const {
  if (numel() != 1) throw std::logic_error("item() on tensor with numel != 1");
  return at_flat(0);
}

Tensor Tensor::reshape(Shape new_shape) const {
  std::int64_t known = 1;
  int infer = -1;
  for (std::size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      if (infer >= 0) throw std::invalid_argument("reshape: two inferred dims");
      infer = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer >= 0) new_shape[static_cast<std::size_t>(infer)] = numel() / known;
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape: numel mismatch " + shape_str(shape_) +
                                " -> " + shape_str(new_shape));
  }
  Tensor t = is_contiguous() ? *this : contiguous();
  t.shape_ = std::move(new_shape);
  t.strides_ = contiguous_strides(t.shape_);
  return t;
}

Tensor Tensor::flatten(int start_dim) const {
  if (start_dim < 0) start_dim += static_cast<int>(shape_.size());
  Shape s(shape_.begin(), shape_.begin() + start_dim);
  std::int64_t rest = 1;
  for (std::size_t i = static_cast<std::size_t>(start_dim); i < shape_.size(); ++i)
    rest *= shape_[i];
  s.push_back(rest);
  return reshape(std::move(s));
}

Tensor Tensor::narrow(int dim, std::int64_t start, std::int64_t length) const {
  if (dim < 0) dim += static_cast<int>(shape_.size());
  if (dim < 0 || static_cast<std::size_t>(dim) >= shape_.size())
    throw std::out_of_range("narrow: bad dim");
  if (start < 0 || start + length > shape_[static_cast<std::size_t>(dim)])
    throw std::out_of_range("narrow: bad range");
  Tensor t = *this;
  t.offset_ += start * strides_[static_cast<std::size_t>(dim)];
  t.shape_[static_cast<std::size_t>(dim)] = length;
  return t;
}

Tensor Tensor::select(std::int64_t index) const {
  Tensor t = narrow(0, index, 1);
  t.shape_.erase(t.shape_.begin());
  t.strides_.erase(t.strides_.begin());
  return t;
}

Tensor Tensor::contiguous() const {
  if (is_contiguous()) return *this;
  Tensor out(shape_, dtype_);
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) out.set_flat(i, at_flat(i));
  if (qparams_) out.qparams_ = qparams_;
  return out;
}

Tensor Tensor::clone() const {
  Tensor src = contiguous();
  Tensor out(shape_, dtype_);
  std::memcpy(out.storage_->data(),
              src.storage_->data() + static_cast<std::size_t>(src.offset_) * dtype_size(dtype_),
              static_cast<std::size_t>(numel()) * dtype_size(dtype_));
  if (qparams_) out.qparams_ = std::make_shared<QParams>(*qparams_);
  return out;
}

Tensor Tensor::to(DType dt) const {
  if (dt == dtype_) return clone();
  Tensor out(shape_, dt);
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) out.set_flat(i, at_flat(i));
  return out;
}

Tensor& Tensor::fill_(double v) {
  const std::int64_t n = numel();
  if (!is_contiguous()) {
    for (std::int64_t i = 0; i < n; ++i) set_flat(i, v);
    return *this;
  }
  if (dtype_ == DType::Float32) {
    float* p = data<float>();
    const float f = static_cast<float>(v);
    for (std::int64_t i = 0; i < n; ++i) p[i] = f;
  } else {
    for (std::int64_t i = 0; i < n; ++i) set_flat(i, v);
  }
  return *this;
}

Tensor& Tensor::copy_(const Tensor& src) {
  if (src.sizes() != shape_) {
    throw std::invalid_argument("copy_: shape mismatch");
  }
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) set_flat(i, src.at_flat(i));
  return *this;
}

Tensor& Tensor::add_(const Tensor& other, double alpha) {
  if (other.sizes() != shape_ || dtype_ != DType::Float32 ||
      other.dtype() != DType::Float32) {
    throw std::invalid_argument("add_: shape/dtype mismatch");
  }
  float* p = data<float>();
  const Tensor oc = other.contiguous();
  const float* q = oc.data<float>();
  const float a = static_cast<float>(alpha);
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] += a * q[i];
  return *this;
}

Tensor& Tensor::mul_(double v) {
  if (dtype_ != DType::Float32) throw std::invalid_argument("mul_: fp32 only");
  float* p = data<float>();
  const float f = static_cast<float>(v);
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] *= f;
  return *this;
}

std::string Tensor::to_string(std::int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor(shape=" << shape_str(shape_) << ", dtype=" << dtype_name(dtype_);
  if (is_quantized()) {
    os << ", scale=" << qparams().scale << ", zp=" << qparams().zero_point;
  }
  os << ", data=[";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << at_flat(i);
  }
  if (numel() > n) os << ", ...";
  os << "])";
  return os.str();
}

Tensor Tensor::zeros(Shape shape, DType dt) {
  Tensor t(std::move(shape), dt);
  std::memset(t.storage_->data(), 0, t.storage_->nbytes());
  return t;
}

Tensor Tensor::ones(Shape shape, DType dt) { return full(std::move(shape), 1.0, dt); }

Tensor Tensor::full(Shape shape, double v, DType dt) {
  Tensor t(std::move(shape), dt);
  t.fill_(v);
  return t;
}

Tensor Tensor::randn(Shape shape) {
  Tensor t(std::move(shape), DType::Float32);
  float* p = t.data<float>();
  auto& rng = rt::Rng::global();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(rng.normal());
  return t;
}

Tensor Tensor::rand(Shape shape) {
  Tensor t(std::move(shape), DType::Float32);
  float* p = t.data<float>();
  auto& rng = rt::Rng::global();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(rng.uniform());
  return t;
}

Tensor Tensor::from_vector(const std::vector<float>& v, Shape shape) {
  if (static_cast<std::int64_t>(v.size()) != shape_numel(shape)) {
    throw std::invalid_argument("from_vector: size mismatch");
  }
  Tensor t(std::move(shape), DType::Float32);
  std::memcpy(t.data<float>(), v.data(), v.size() * sizeof(float));
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t(Shape{n}, DType::Int64);
  auto* p = t.data<std::int64_t>();
  for (std::int64_t i = 0; i < n; ++i) p[i] = i;
  return t;
}

Tensor Tensor::scalar(double v, DType dt) {
  Tensor t(Shape{}, dt);
  t.fill_(v);
  return t;
}

bool allclose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (a.sizes() != b.sizes()) return false;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const double x = a.at_flat(i), y = b.at_flat(i);
    if (std::abs(x - y) > atol + rtol * std::abs(y)) return false;
  }
  return true;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    m = std::max(m, std::abs(a.at_flat(i) - b.at_flat(i)));
  }
  return m;
}

}  // namespace fxcpp
