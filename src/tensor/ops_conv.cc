#include <cstring>
#include <limits>

#include "kernels/kernels.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"
#include "tensor/pack_cache.h"

namespace fxcpp::ops {

namespace {

struct Conv2dDims {
  std::int64_t n, c, h, w;        // input
  std::int64_t o, kh, kw;         // kernel
  std::int64_t sh, sw, ph, pw;    // stride / padding
  std::int64_t oh, ow;            // output spatial
};

Conv2dDims conv_dims(const Tensor& x, const Tensor& wt,
                     const std::vector<std::int64_t>& stride,
                     const std::vector<std::int64_t>& padding) {
  if (x.dim() != 4 || wt.dim() != 4) {
    throw std::invalid_argument("conv2d: expected NCHW input and OIKK weight");
  }
  Conv2dDims d;
  d.n = x.size(0); d.c = x.size(1); d.h = x.size(2); d.w = x.size(3);
  d.o = wt.size(0); d.kh = wt.size(2); d.kw = wt.size(3);
  if (wt.size(1) != d.c) throw std::invalid_argument("conv2d: channel mismatch");
  d.sh = stride.size() > 0 ? stride[0] : 1;
  d.sw = stride.size() > 1 ? stride[1] : d.sh;
  d.ph = padding.size() > 0 ? padding[0] : 0;
  d.pw = padding.size() > 1 ? padding[1] : d.ph;
  d.oh = (d.h + 2 * d.ph - d.kh) / d.sh + 1;
  d.ow = (d.w + 2 * d.pw - d.kw) / d.sw + 1;
  if (d.oh <= 0 || d.ow <= 0) throw std::invalid_argument("conv2d: empty output");
  return d;
}

// Scatter one image into column matrix [C*kh*kw, oh*ow].
void im2col(const float* img, const Conv2dDims& d, float* col) {
  const std::int64_t spatial = d.oh * d.ow;
  for (std::int64_t c = 0; c < d.c; ++c) {
    for (std::int64_t ky = 0; ky < d.kh; ++ky) {
      for (std::int64_t kx = 0; kx < d.kw; ++kx) {
        float* crow = col + ((c * d.kh + ky) * d.kw + kx) * spatial;
        for (std::int64_t oy = 0; oy < d.oh; ++oy) {
          const std::int64_t iy = oy * d.sh - d.ph + ky;
          if (iy < 0 || iy >= d.h) {
            std::memset(crow + oy * d.ow, 0,
                        static_cast<std::size_t>(d.ow) * sizeof(float));
            continue;
          }
          const float* irow = img + (c * d.h + iy) * d.w;
          for (std::int64_t ox = 0; ox < d.ow; ++ox) {
            const std::int64_t ix = ox * d.sw - d.pw + kx;
            crow[oy * d.ow + ox] =
                (ix >= 0 && ix < d.w) ? irow[ix] : 0.f;
          }
        }
      }
    }
  }
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b,
              std::vector<std::int64_t> stride,
              std::vector<std::int64_t> padding) {
  const Tensor xc = x.contiguous();
  const Conv2dDims d = conv_dims(xc, w, stride, padding);
  Tensor out(Shape{d.n, d.o, d.oh, d.ow}, DType::Float32);

  const std::int64_t k = d.c * d.kh * d.kw;   // reduction length
  const std::int64_t spatial = d.oh * d.ow;
  const float* bias = nullptr;
  Tensor bcont;
  if (b.defined()) {
    bcont = b.contiguous();
    bias = bcont.data<float>();
  }

  // Per-image: col = im2col(x_n); out_n = W[O, k] @ col[k, spatial] through
  // the micro-kernel layer, with the per-filter bias fused as the GEMM's
  // row epilogue. The weight side is the GEMM's A operand: its strip pack
  // (keyed by the active tier's mr) is cached in the thread's PackCache,
  // while the im2col columns and their B panels live in per-call
  // workspaces — grown once to the largest conv seen, then reused across
  // forwards instead of being reallocated per call.
  const int mr = kernels::gemm_f32_mr();
  const auto pa = PackCache::local().panel_a_f32(w, mr);
  float* col = PackCache::local().workspace(static_cast<std::size_t>(k * spatial));
  float* pb = PackCache::local().panel_workspace(
      kernels::packed_b_f32_size(k, spatial));
  for (std::int64_t img = 0; img < d.n; ++img) {
    const float* xin = xc.data<float>() + img * d.c * d.h * d.w;
    im2col(xin, d, col);
    kernels::pack_b_f32_nn(col, spatial, k, spatial, pb);
    float* yout = out.data<float>() + img * d.o * spatial;
    kernels::sgemm(d.o, spatial, k, nullptr, 0, pb, yout, spatial, nullptr,
                   bias, /*relu=*/false, pa->data());
  }
  return out;
}

Tensor max_pool2d(const Tensor& x, std::vector<std::int64_t> kernel,
                  std::vector<std::int64_t> stride,
                  std::vector<std::int64_t> padding) {
  const Tensor xc = x.contiguous();
  if (xc.dim() != 4) throw std::invalid_argument("max_pool2d: NCHW expected");
  const std::int64_t n = xc.size(0), c = xc.size(1), h = xc.size(2), w = xc.size(3);
  const std::int64_t kh = kernel[0], kw = kernel.size() > 1 ? kernel[1] : kernel[0];
  const std::int64_t sh = stride.empty() ? kh : stride[0];
  const std::int64_t sw = stride.size() > 1 ? stride[1] : sh;
  const std::int64_t ph = padding.empty() ? 0 : padding[0];
  const std::int64_t pw = padding.size() > 1 ? padding[1] : ph;
  const std::int64_t oh = (h + 2 * ph - kh) / sh + 1;
  const std::int64_t ow = (w + 2 * pw - kw) / sw + 1;
  Tensor out(Shape{n, c, oh, ow}, DType::Float32);
  const float* in = xc.data<float>();
  float* o = out.data<float>();
  rt::parallel_for(0, n * c, 1, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t plane = p0; plane < p1; ++plane) {
      const float* ip = in + plane * h * w;
      float* op = o + plane * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float m = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = oy * sh - ph + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const std::int64_t ix = ox * sw - pw + kx;
              if (ix < 0 || ix >= w) continue;
              m = std::max(m, ip[iy * w + ix]);
            }
          }
          op[oy * ow + ox] = m;
        }
      }
    }
  });
  return out;
}

Tensor avg_pool2d(const Tensor& x, std::vector<std::int64_t> kernel,
                  std::vector<std::int64_t> stride) {
  const Tensor xc = x.contiguous();
  if (xc.dim() != 4) throw std::invalid_argument("avg_pool2d: NCHW expected");
  const std::int64_t n = xc.size(0), c = xc.size(1), h = xc.size(2), w = xc.size(3);
  const std::int64_t kh = kernel[0], kw = kernel.size() > 1 ? kernel[1] : kernel[0];
  const std::int64_t sh = stride.empty() ? kh : stride[0];
  const std::int64_t sw = stride.size() > 1 ? stride[1] : sh;
  const std::int64_t oh = (h - kh) / sh + 1;
  const std::int64_t ow = (w - kw) / sw + 1;
  Tensor out(Shape{n, c, oh, ow}, DType::Float32);
  const float* in = xc.data<float>();
  float* o = out.data<float>();
  const float inv = 1.f / static_cast<float>(kh * kw);
  for (std::int64_t plane = 0; plane < n * c; ++plane) {
    const float* ip = in + plane * h * w;
    float* op = o + plane * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.f;
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            acc += ip[(oy * sh + ky) * w + ox * sw + kx];
          }
        }
        op[oy * ow + ox] = acc * inv;
      }
    }
  }
  return out;
}

Tensor adaptive_avg_pool2d(const Tensor& x, std::vector<std::int64_t> out_hw) {
  const Tensor xc = x.contiguous();
  if (xc.dim() != 4) {
    throw std::invalid_argument("adaptive_avg_pool2d: NCHW expected");
  }
  const std::int64_t n = xc.size(0), c = xc.size(1), h = xc.size(2), w = xc.size(3);
  const std::int64_t oh = out_hw[0], ow = out_hw.size() > 1 ? out_hw[1] : out_hw[0];
  Tensor out(Shape{n, c, oh, ow}, DType::Float32);
  const float* in = xc.data<float>();
  float* o = out.data<float>();
  for (std::int64_t plane = 0; plane < n * c; ++plane) {
    const float* ip = in + plane * h * w;
    float* op = o + plane * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      // PyTorch adaptive pooling bin boundaries.
      const std::int64_t y0 = oy * h / oh;
      const std::int64_t y1 = ((oy + 1) * h + oh - 1) / oh;
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const std::int64_t x0 = ox * w / ow;
        const std::int64_t x1 = ((ox + 1) * w + ow - 1) / ow;
        float acc = 0.f;
        for (std::int64_t iy = y0; iy < y1; ++iy) {
          for (std::int64_t ix = x0; ix < x1; ++ix) acc += ip[iy * w + ix];
        }
        op[oy * ow + ox] = acc / static_cast<float>((y1 - y0) * (x1 - x0));
      }
    }
  }
  return out;
}

}  // namespace fxcpp::ops
