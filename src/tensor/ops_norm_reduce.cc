#include <cmath>
#include <cstring>

#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace fxcpp::ops {

Tensor batch_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  const Tensor& running_mean, const Tensor& running_var,
                  double eps) {
  const Tensor xc = x.contiguous();
  if (xc.dim() < 2) throw std::invalid_argument("batch_norm: need >= 2 dims");
  const std::int64_t n = xc.size(0), c = xc.size(1);
  const std::int64_t spatial = xc.numel() / (n * c);
  if (gamma.numel() != c || beta.numel() != c || running_mean.numel() != c ||
      running_var.numel() != c) {
    throw std::invalid_argument("batch_norm: parameter size mismatch");
  }
  Tensor out(xc.sizes(), DType::Float32);
  const Tensor g = gamma.contiguous(), b = beta.contiguous(),
               m = running_mean.contiguous(), v = running_var.contiguous();
  const float* gp = g.data<float>();
  const float* bp = b.data<float>();
  const float* mp = m.data<float>();
  const float* vp = v.data<float>();
  const float* in = xc.data<float>();
  float* o = out.data<float>();
  // Precompute per-channel scale/shift: y = x*s + t.
  std::vector<float> scale(static_cast<std::size_t>(c)), shift(static_cast<std::size_t>(c));
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const float s = gp[ch] / std::sqrt(vp[ch] + static_cast<float>(eps));
    scale[static_cast<std::size_t>(ch)] = s;
    shift[static_cast<std::size_t>(ch)] = bp[ch] - mp[ch] * s;
  }
  rt::parallel_for(0, n * c, 4, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t plane = p0; plane < p1; ++plane) {
      const std::int64_t ch = plane % c;
      const float s = scale[static_cast<std::size_t>(ch)];
      const float t = shift[static_cast<std::size_t>(ch)];
      const float* ip = in + plane * spatial;
      float* op = o + plane * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) op[i] = ip[i] * s + t;
    }
  });
  return out;
}

Tensor batch_norm_train(const Tensor& x, const Tensor& gamma,
                        const Tensor& beta, Tensor& running_mean,
                        Tensor& running_var, double momentum, double eps) {
  const Tensor xc = x.contiguous();
  if (xc.dim() < 2) throw std::invalid_argument("batch_norm_train: >=2 dims");
  const std::int64_t n = xc.size(0), c = xc.size(1);
  const std::int64_t spatial = xc.numel() / (n * c);
  const std::int64_t per_channel = n * spatial;
  const float* in = xc.data<float>();

  // Batch statistics per channel.
  Tensor mean = Tensor::zeros({c});
  Tensor var = Tensor::zeros({c});
  float* mp = mean.data<float>();
  float* vp = var.data<float>();
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* p = in + (img * c + ch) * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) mp[ch] += p[i];
    }
  }
  for (std::int64_t ch = 0; ch < c; ++ch) {
    mp[ch] /= static_cast<float>(per_channel);
  }
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* p = in + (img * c + ch) * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) {
        const float d = p[i] - mp[ch];
        vp[ch] += d * d;
      }
    }
  }
  for (std::int64_t ch = 0; ch < c; ++ch) {
    vp[ch] /= static_cast<float>(per_channel);
  }

  // Update running stats in place (unbiased variance, as torch does).
  float* rm = running_mean.data<float>();
  float* rv = running_var.data<float>();
  const float m = static_cast<float>(momentum);
  const float unbias = per_channel > 1
                           ? static_cast<float>(per_channel) /
                                 static_cast<float>(per_channel - 1)
                           : 1.f;
  for (std::int64_t ch = 0; ch < c; ++ch) {
    rm[ch] = (1.f - m) * rm[ch] + m * mp[ch];
    rv[ch] = (1.f - m) * rv[ch] + m * vp[ch] * unbias;
  }
  return batch_norm(x, gamma, beta, mean, var, eps);
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  double eps) {
  const Tensor xc = x.contiguous();
  const std::int64_t d = xc.size(-1);
  if (gamma.numel() != d || beta.numel() != d) {
    throw std::invalid_argument("layer_norm: parameter size mismatch");
  }
  const std::int64_t rows = xc.numel() / d;
  Tensor out(xc.sizes(), DType::Float32);
  const Tensor g = gamma.contiguous(), b = beta.contiguous();
  const float* gp = g.data<float>();
  const float* bp = b.data<float>();
  const float* in = xc.data<float>();
  float* o = out.data<float>();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* ip = in + r * d;
    float* op = o + r * d;
    float mean = 0.f;
    for (std::int64_t i = 0; i < d; ++i) mean += ip[i];
    mean /= static_cast<float>(d);
    float var = 0.f;
    for (std::int64_t i = 0; i < d; ++i) var += (ip[i] - mean) * (ip[i] - mean);
    var /= static_cast<float>(d);
    const float inv = 1.f / std::sqrt(var + static_cast<float>(eps));
    for (std::int64_t i = 0; i < d; ++i) {
      op[i] = (ip[i] - mean) * inv * gp[i] + bp[i];
    }
  }
  return out;
}

Tensor softmax(const Tensor& x, int dim) {
  const Tensor xc = x.contiguous();
  const auto nd = static_cast<int>(xc.dim());
  if (dim < 0) dim += nd;
  if (dim != nd - 1) {
    throw std::invalid_argument("softmax: only trailing dim supported");
  }
  const std::int64_t d = xc.size(-1);
  const std::int64_t rows = xc.numel() / d;
  Tensor out(xc.sizes(), DType::Float32);
  const float* in = xc.data<float>();
  float* o = out.data<float>();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* ip = in + r * d;
    float* op = o + r * d;
    float m = ip[0];
    for (std::int64_t i = 1; i < d; ++i) m = std::max(m, ip[i]);
    float z = 0.f;
    for (std::int64_t i = 0; i < d; ++i) {
      op[i] = std::exp(ip[i] - m);
      z += op[i];
    }
    const float inv = 1.f / z;
    for (std::int64_t i = 0; i < d; ++i) op[i] *= inv;
  }
  return out;
}

Tensor sum(const Tensor& x) {
  const Tensor xc = x.contiguous();
  const float* p = xc.data<float>();
  double acc = 0.0;
  const std::int64_t n = xc.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += p[i];
  return Tensor::scalar(acc);
}

Tensor mean(const Tensor& x) {
  Tensor s = sum(x);
  return Tensor::scalar(s.item() / static_cast<double>(x.numel()));
}

Tensor sum_dim(const Tensor& x, int dim) {
  const Tensor xc = x.contiguous();
  const auto nd = static_cast<int>(xc.dim());
  if (dim < 0) dim += nd;
  if (dim < 0 || dim >= nd) throw std::out_of_range("sum_dim: bad dim");
  Shape out_shape;
  std::int64_t outer = 1, inner = 1;
  for (int i = 0; i < nd; ++i) {
    if (i == dim) continue;
    out_shape.push_back(xc.size(i));
    if (i < dim) outer *= xc.size(i);
    else inner *= xc.size(i);
  }
  const std::int64_t red = xc.size(dim);
  Tensor out = Tensor::zeros(out_shape, DType::Float32);
  const float* in = xc.data<float>();
  float* o = out.data<float>();
  for (std::int64_t a = 0; a < outer; ++a) {
    for (std::int64_t r = 0; r < red; ++r) {
      const float* ip = in + (a * red + r) * inner;
      float* op = o + a * inner;
      for (std::int64_t i = 0; i < inner; ++i) op[i] += ip[i];
    }
  }
  return out;
}

Tensor cat(const std::vector<Tensor>& xs, int dim) {
  if (xs.empty()) throw std::invalid_argument("cat: empty list");
  const auto nd = static_cast<int>(xs[0].dim());
  if (dim < 0) dim += nd;
  Shape out_shape = xs[0].sizes();
  std::int64_t cat_sz = 0;
  for (const auto& t : xs) {
    if (static_cast<int>(t.dim()) != nd) throw std::invalid_argument("cat: rank mismatch");
    for (int i = 0; i < nd; ++i) {
      if (i != dim && t.size(i) != out_shape[static_cast<std::size_t>(i)]) {
        throw std::invalid_argument("cat: shape mismatch");
      }
    }
    cat_sz += t.size(dim);
  }
  out_shape[static_cast<std::size_t>(dim)] = cat_sz;
  Tensor out(out_shape, xs[0].dtype());
  std::int64_t outer = 1, inner = 1;
  for (int i = 0; i < dim; ++i) outer *= out_shape[static_cast<std::size_t>(i)];
  for (int i = dim + 1; i < nd; ++i) inner *= out_shape[static_cast<std::size_t>(i)];
  const std::size_t esz = dtype_size(out.dtype());
  auto* obase = out.dtype() == DType::Float32
                    ? reinterpret_cast<std::byte*>(out.data<float>())
                    : reinterpret_cast<std::byte*>(out.data<std::int64_t>());
  std::int64_t col = 0;
  for (const auto& t : xs) {
    const Tensor tc = t.contiguous();
    const auto* ibase = tc.dtype() == DType::Float32
                            ? reinterpret_cast<const std::byte*>(tc.data<float>())
                            : reinterpret_cast<const std::byte*>(tc.data<std::int64_t>());
    const std::int64_t tdim = t.size(dim);
    for (std::int64_t a = 0; a < outer; ++a) {
      std::memcpy(obase + ((a * cat_sz + col) * inner) * static_cast<std::int64_t>(esz),
                  ibase + (a * tdim * inner) * static_cast<std::int64_t>(esz),
                  static_cast<std::size_t>(tdim * inner) * esz);
    }
    col += tdim;
  }
  return out;
}

Tensor reshape(const Tensor& x, Shape shape) { return x.reshape(std::move(shape)); }

Tensor flatten(const Tensor& x, int start_dim) { return x.flatten(start_dim); }

}  // namespace fxcpp::ops
