// Shape and stride helpers shared by the tensor library and the fx passes
// (shape propagation stores Shape values in Node metadata).
#pragma once

#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace fxcpp {

using Shape = std::vector<std::int64_t>;
using Strides = std::vector<std::int64_t>;

inline std::int64_t shape_numel(const Shape& s) {
  std::int64_t n = 1;
  for (auto d : s) n *= d;
  return n;
}

// Row-major (C-contiguous) strides for a shape.
inline Strides contiguous_strides(const Shape& s) {
  Strides st(s.size(), 1);
  for (int i = static_cast<int>(s.size()) - 2; i >= 0; --i) {
    st[static_cast<std::size_t>(i)] =
        st[static_cast<std::size_t>(i) + 1] * s[static_cast<std::size_t>(i) + 1];
  }
  return st;
}

inline std::string shape_str(const Shape& s) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ", ";
    os << s[i];
  }
  os << ']';
  return os.str();
}

// NumPy/PyTorch broadcasting of two shapes; throws on incompatibility.
inline Shape broadcast_shapes(const Shape& a, const Shape& b) {
  const std::size_t n = std::max(a.size(), b.size());
  Shape out(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    const std::int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    if (da != db && da != 1 && db != 1) {
      throw std::invalid_argument("broadcast_shapes: incompatible " +
                                  shape_str(a) + " vs " + shape_str(b));
    }
    out[n - 1 - i] = std::max(da, db);
  }
  return out;
}

}  // namespace fxcpp
