// Per-thread cache of packed GEMM weights and im2col scratch space.
//
// Eager dispatch re-derives kernel-private data on every call: `linear` and
// `conv2d` materialize a contiguous ("packed" row-major) copy of any
// non-contiguous weight per forward, and `conv2d` allocates a fresh im2col
// column buffer per call. Once a program is captured as a graph, the weights
// are module state with stable identity across runs (the paper's Section 2.3
// point: fx keeps parameters out of the IR, in Modules), so the packing can
// be computed once and reused until the weight actually mutates.
//
// Beyond the original contiguize cache ("plain" packs), the cache holds
// micro-kernel panel packs for the kernels layer (src/kernels): fp32 B
// panels (B = W^T, nn.Linear orientation), fp32 prepacked A strips (conv
// weights as the GEMM left-hand side; keyed by the strip height mr, which
// differs per ISA tier), and int8 quad panels for the quantized paths.
// Panel entries are shared_ptr-owned so an eviction or clear() can never
// free a buffer a caller is still reading from. Only weights are ever
// cached — activations go through the per-call workspaces below.
//
// The cache is thread-local: each ParallelExecutor worker keeps its own
// entries, so lookups take no locks and the cache is trivially race-free
// under TSan. Entries are keyed by storage identity and validated against
// the storage's mutation version (Storage::version(), bumped by every
// in-place tensor mutation) plus the view geometry — mutate a weight and the
// next lookup silently re-packs. Each entry retains the source tensor, so a
// storage address can never be recycled into a stale key while its entry
// lives. A small FIFO capacity bound keeps pathological many-weight
// workloads from pinning unbounded memory. Aggregated hit/miss counts are
// additionally mirrored into process-wide atomics (global_stats()) so the
// profiler and serving stats can report cache behavior across all worker
// threads.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace fxcpp {

class PackCache {
 public:
  // The calling thread's cache.
  static PackCache& local();

  // Contiguous row-major view of `w`, suitable for the GEMM/conv kernels.
  // Already-contiguous weights pass through untouched (no cache traffic);
  // non-contiguous weights are packed once per (storage identity, version,
  // geometry) and the cached pack is returned on subsequent calls.
  Tensor packed_weight(const Tensor& w);

  // --- micro-kernel panel packs (see src/kernels/kernels.h layouts) -------
  // All three treat `w` as a 2-D matrix [rows = sizes()[0], cols = rest]
  // (nn.Linear weights are [out, in]; conv weights [O, C*kh*kw]), packing
  // from a contiguous copy when needed. Hits require identical storage
  // version and view geometry, like packed_weight.

  // fp32 B panels of W^T: kernels::pack_b_f32_nt (tier-independent layout).
  std::shared_ptr<const std::vector<float>> panel_b_f32_nt(const Tensor& w);
  // fp32 prepacked A strips at strip height `mr` (pass kernels::gemm_f32_mr();
  // the key includes mr, so a tier switch re-packs instead of misreading).
  std::shared_ptr<const std::vector<float>> panel_a_f32(const Tensor& w,
                                                        int mr);
  // int8 quad panels of W^T: kernels::pack_b_s8_nt.
  std::shared_ptr<const std::vector<std::int8_t>> panel_b_s8_nt(
      const Tensor& w);

  // Grow-only float scratch buffer (the conv2d im2col workspace). Returns a
  // pointer valid until the next workspace() call with a larger count, or
  // clear(). Contents are unspecified on entry.
  float* workspace(std::size_t count);
  // A second, independent float scratch buffer — conv2d needs the im2col
  // columns and their panel pack alive at the same time.
  float* panel_workspace(std::size_t count);
  // int8 scratch buffers for the quantized paths (same lifetime rules).
  std::int8_t* workspace_s8(std::size_t count);
  std::int8_t* panel_workspace_s8(std::size_t count);

  struct Stats {
    std::int64_t hits = 0;       // packed_weight served from cache
    std::int64_t misses = 0;     // packed_weight had to pack
    std::int64_t repacks = 0;    // misses caused by a version/geometry change
    std::int64_t evictions = 0;  // entries dropped by the capacity bound
    std::size_t workspace_floats = 0;  // current workspace size
    // Panel-pack counters (micro-kernel layer), split from the plain
    // contiguize counters above.
    std::int64_t panel_hits = 0;
    std::int64_t panel_misses = 0;
    std::int64_t panel_repacks = 0;
    std::size_t panel_bytes = 0;  // bytes held by live panel entries
  };
  const Stats& stats() const { return stats_; }

  // Process-wide aggregation of hits/misses across every thread's cache
  // (monotonic; unaffected by per-thread clear()). Snapshot is approximate
  // under concurrent mutation — fine for diagnostics.
  struct GlobalStats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t panel_hits = 0;
    std::int64_t panel_misses = 0;
  };
  static GlobalStats global_stats();

  // Drop all entries and the workspaces; per-thread stats reset too.
  void clear();

  // Capacity bound on cached packs (default 64, separately for plain and
  // panel entries). Shrinking evicts oldest.
  void set_capacity(std::size_t max_entries);
  std::size_t size() const { return entries_.size(); }
  std::size_t panel_size() const { return panel_entries_.size(); }

 private:
  struct Entry {
    Tensor source;  // pins the storage so its address cannot be recycled
    Tensor packed;
    std::uint64_t version = 0;
  };

  // (storage id, pack kind, mr) — mr is 0 for B-panel kinds.
  struct PanelKey {
    std::uintptr_t id = 0;
    int kind = 0;
    int mr = 0;
    bool operator==(const PanelKey&) const = default;
  };
  struct PanelKeyHash {
    std::size_t operator()(const PanelKey& k) const {
      std::size_t h = std::hash<std::uintptr_t>{}(k.id);
      h ^= std::hash<int>{}(k.kind) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      h ^= std::hash<int>{}(k.mr) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return h;
    }
  };
  struct PanelEntry {
    Tensor source;
    std::uint64_t version = 0;
    std::shared_ptr<const std::vector<float>> f32;
    std::shared_ptr<const std::vector<std::int8_t>> s8;
    std::size_t bytes = 0;
  };

  enum PanelKind : int { kPanelBF32Nt = 0, kPanelAF32 = 1, kPanelBS8Nt = 2 };

  // Shared lookup/validate/insert for the three panel kinds; `pack` fills a
  // fresh PanelEntry when (re)packing is needed. Returns by value (two
  // shared_ptr copies) so an immediate eviction can never dangle.
  template <typename PackFn>
  PanelEntry panel_lookup(const Tensor& w, int kind, int mr, PackFn&& pack);

  void evict_to_capacity();
  void evict_panels_to_capacity();

  std::unordered_map<std::uintptr_t, Entry> entries_;
  std::vector<std::uintptr_t> insertion_order_;  // FIFO eviction order
  std::unordered_map<PanelKey, PanelEntry, PanelKeyHash> panel_entries_;
  std::vector<PanelKey> panel_insertion_order_;
  std::size_t capacity_ = 64;
  std::vector<float> workspace_;
  std::vector<float> panel_workspace_;
  std::vector<std::int8_t> workspace_s8_;
  std::vector<std::int8_t> panel_workspace_s8_;
  Stats stats_;
};

}  // namespace fxcpp
