// Per-thread cache of packed GEMM weights and im2col scratch space.
//
// Eager dispatch re-derives kernel-private data on every call: `linear` and
// `conv2d` materialize a contiguous ("packed" row-major) copy of any
// non-contiguous weight per forward, and `conv2d` allocates a fresh im2col
// column buffer per call. Once a program is captured as a graph, the weights
// are module state with stable identity across runs (the paper's Section 2.3
// point: fx keeps parameters out of the IR, in Modules), so the packing can
// be computed once and reused until the weight actually mutates.
//
// The cache is thread-local: each ParallelExecutor worker keeps its own
// entries, so lookups take no locks and the cache is trivially race-free
// under TSan. Entries are keyed by storage identity and validated against
// the storage's mutation version (Storage::version(), bumped by every
// in-place tensor mutation) plus the view geometry — mutate a weight and the
// next lookup silently re-packs. Each entry retains the source tensor, so a
// storage address can never be recycled into a stale key while its entry
// lives. A small FIFO capacity bound keeps pathological many-weight
// workloads from pinning unbounded memory.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace fxcpp {

class PackCache {
 public:
  // The calling thread's cache.
  static PackCache& local();

  // Contiguous row-major view of `w`, suitable for the GEMM/conv kernels.
  // Already-contiguous weights pass through untouched (no cache traffic);
  // non-contiguous weights are packed once per (storage identity, version,
  // geometry) and the cached pack is returned on subsequent calls.
  Tensor packed_weight(const Tensor& w);

  // Grow-only float scratch buffer (the conv2d im2col workspace). Returns a
  // pointer valid until the next workspace() call with a larger count, or
  // clear(). Contents are unspecified on entry.
  float* workspace(std::size_t count);

  struct Stats {
    std::int64_t hits = 0;       // packed_weight served from cache
    std::int64_t misses = 0;     // packed_weight had to pack
    std::int64_t repacks = 0;    // misses caused by a version/geometry change
    std::int64_t evictions = 0;  // entries dropped by the capacity bound
    std::size_t workspace_floats = 0;  // current workspace size
  };
  const Stats& stats() const { return stats_; }

  // Drop all entries and the workspace; stats reset too.
  void clear();

  // Capacity bound on cached packs (default 64). Shrinking evicts oldest.
  void set_capacity(std::size_t max_entries);
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Tensor source;  // pins the storage so its address cannot be recycled
    Tensor packed;
    std::uint64_t version = 0;
  };

  void evict_to_capacity();

  std::unordered_map<std::uintptr_t, Entry> entries_;
  std::vector<std::uintptr_t> insertion_order_;  // FIFO eviction order
  std::size_t capacity_ = 64;
  std::vector<float> workspace_;
  Stats stats_;
};

}  // namespace fxcpp
