#include <cmath>
#include <functional>

#include "runtime/rng.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace fxcpp::ops {

namespace {

// Apply `f` elementwise to a contiguous fp32 tensor.
template <typename F>
Tensor unary_map(const Tensor& x, F f) {
  const Tensor xc = x.contiguous();
  Tensor out(xc.sizes(), DType::Float32);
  const float* in = xc.data<float>();
  float* o = out.data<float>();
  const std::int64_t n = xc.numel();
  for (std::int64_t i = 0; i < n; ++i) o[i] = f(in[i]);
  return out;
}

// General broadcasting binary op. Fast paths: identical shapes, and
// trailing-dim broadcast (e.g. bias add).
template <typename F>
Tensor binary_map(const Tensor& a, const Tensor& b, F f) {
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  const Shape out_shape = broadcast_shapes(ac.sizes(), bc.sizes());
  Tensor out(out_shape, DType::Float32);
  float* o = out.data<float>();
  const float* pa = ac.data<float>();
  const float* pb = bc.data<float>();
  const std::int64_t n = out.numel();

  if (ac.sizes() == bc.sizes()) {
    for (std::int64_t i = 0; i < n; ++i) o[i] = f(pa[i], pb[i]);
    return out;
  }
  if (bc.numel() == 1) {
    const float s = pb[0];
    for (std::int64_t i = 0; i < n; ++i) o[i] = f(pa[i], s);
    return out;
  }
  if (ac.numel() == 1) {
    const float s = pa[0];
    for (std::int64_t i = 0; i < n; ++i) o[i] = f(s, pb[i]);
    return out;
  }
  // Trailing-dim broadcast: a [.., D] (+) b [D].
  if (ac.sizes() == out_shape && bc.dim() == 1 &&
      bc.size(0) == out_shape.back()) {
    const std::int64_t d = bc.size(0);
    for (std::int64_t i = 0; i < n; ++i) o[i] = f(pa[i], pb[i % d]);
    return out;
  }
  // Generic path: index arithmetic per element.
  const Strides so = contiguous_strides(out_shape);
  const std::size_t nd = out_shape.size();
  auto offset_for = [&](const Tensor& t, std::int64_t flat) {
    const Shape& ts = t.sizes();
    const Strides tst = contiguous_strides(ts);
    std::int64_t off = 0;
    const std::size_t tnd = ts.size();
    for (std::size_t d = 0; d < nd; ++d) {
      const std::int64_t coord = (flat / so[d]) % out_shape[d];
      if (d + tnd >= nd) {
        const std::size_t td = d + tnd - nd;
        off += (ts[td] == 1 ? 0 : coord) * tst[td];
      }
    }
    return off;
  };
  for (std::int64_t i = 0; i < n; ++i) {
    o[i] = f(pa[offset_for(ac, i)], pb[offset_for(bc, i)]);
  }
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_map(a, b, [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_map(a, b, [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_map(a, b, [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_map(a, b, [](float x, float y) { return x / y; });
}

Tensor add(const Tensor& a, double s) {
  const float v = static_cast<float>(s);
  return unary_map(a, [v](float x) { return x + v; });
}
Tensor sub(const Tensor& a, double s) { return add(a, -s); }
Tensor mul(const Tensor& a, double s) {
  const float v = static_cast<float>(s);
  return unary_map(a, [v](float x) { return x * v; });
}
Tensor div(const Tensor& a, double s) { return mul(a, 1.0 / s); }

Tensor neg(const Tensor& x) {
  return unary_map(x, [](float v) { return -v; });
}
Tensor relu(const Tensor& x) {
  return unary_map(x, [](float v) { return v > 0.f ? v : 0.f; });
}
Tensor gelu(const Tensor& x) {
  return unary_map(x, [](float v) {
    return 0.5f * v * (1.f + std::erf(v * 0.70710678118654752440f));
  });
}
Tensor sigmoid(const Tensor& x) {
  return unary_map(x, [](float v) { return 1.f / (1.f + std::exp(-v)); });
}
Tensor tanh(const Tensor& x) {
  return unary_map(x, [](float v) { return std::tanh(v); });
}
Tensor selu(const Tensor& x) {
  constexpr float kAlpha = 1.6732632423543772848170429916717f;
  constexpr float kLambda = 1.0507009873554804934193349852946f;
  return unary_map(x, [](float v) {
    return v > 0.f ? kLambda * v : kLambda * kAlpha * (std::exp(v) - 1.f);
  });
}
Tensor exp(const Tensor& x) {
  return unary_map(x, [](float v) { return std::exp(v); });
}
Tensor sqrt(const Tensor& x) {
  return unary_map(x, [](float v) { return std::sqrt(v); });
}
Tensor abs(const Tensor& x) {
  return unary_map(x, [](float v) { return std::fabs(v); });
}

Tensor dropout(const Tensor& x, double p, bool training) {
  if (!training || p <= 0.0) return x.clone();
  const float scale = static_cast<float>(1.0 / (1.0 - p));
  auto& rng = rt::Rng::global();
  const Tensor xc = x.contiguous();
  Tensor out(xc.sizes(), DType::Float32);
  const float* in = xc.data<float>();
  float* o = out.data<float>();
  const std::int64_t n = xc.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    o[i] = rng.uniform() < p ? 0.f : in[i] * scale;
  }
  return out;
}

}  // namespace fxcpp::ops
