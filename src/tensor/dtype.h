// Element types supported by the tensor library.
//
// Float32 is the working precision of every model in the paper; Int8 (with
// affine quantization parameters carried on the Tensor) backs the FBGEMM-like
// quantized kernels used in the Section 6.2.1 experiment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fxcpp {

enum class DType : std::uint8_t {
  Float32,
  Float64,
  Int64,
  Int32,
  Int8,
  UInt8,
  Bool,
};

inline std::size_t dtype_size(DType dt) {
  switch (dt) {
    case DType::Float32: return 4;
    case DType::Float64: return 8;
    case DType::Int64: return 8;
    case DType::Int32: return 4;
    case DType::Int8: return 1;
    case DType::UInt8: return 1;
    case DType::Bool: return 1;
  }
  return 0;
}

inline const char* dtype_name(DType dt) {
  switch (dt) {
    case DType::Float32: return "float32";
    case DType::Float64: return "float64";
    case DType::Int64: return "int64";
    case DType::Int32: return "int32";
    case DType::Int8: return "int8";
    case DType::UInt8: return "uint8";
    case DType::Bool: return "bool";
  }
  return "?";
}

// Maps a C++ scalar type to its DType tag (compile-time).
template <typename T>
struct dtype_of;
template <> struct dtype_of<float> { static constexpr DType value = DType::Float32; };
template <> struct dtype_of<double> { static constexpr DType value = DType::Float64; };
template <> struct dtype_of<std::int64_t> { static constexpr DType value = DType::Int64; };
template <> struct dtype_of<std::int32_t> { static constexpr DType value = DType::Int32; };
template <> struct dtype_of<std::int8_t> { static constexpr DType value = DType::Int8; };
template <> struct dtype_of<std::uint8_t> { static constexpr DType value = DType::UInt8; };
template <> struct dtype_of<bool> { static constexpr DType value = DType::Bool; };

}  // namespace fxcpp
