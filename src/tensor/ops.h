// Eager tensor operators — the "publicly documented operators in PyTorch"
// that fx traces through (design principle 2 in Section 3 of the paper).
//
// Every operator here has a twin in the trace-aware functional layer
// (core/functional.h): when inputs are concrete these kernels run; when an
// input is a tracing Proxy, a call_function Node is recorded instead.
//
// All float kernels operate on Float32. Binary elementwise ops support full
// NumPy-style broadcasting. NCHW layout for convolution/pooling.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace fxcpp::ops {

// --- elementwise binary (broadcasting) ----------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor add(const Tensor& a, double s);
Tensor sub(const Tensor& a, double s);
Tensor mul(const Tensor& a, double s);
Tensor div(const Tensor& a, double s);

// --- elementwise unary ---------------------------------------------------
Tensor neg(const Tensor& x);
Tensor relu(const Tensor& x);
// Exact (erf-based) GELU.
Tensor gelu(const Tensor& x);
Tensor sigmoid(const Tensor& x);
Tensor tanh(const Tensor& x);
// SELU with the canonical alpha/lambda constants (DeepRecommender's
// activation in the Section 6.2.1 experiment).
Tensor selu(const Tensor& x);
Tensor exp(const Tensor& x);
Tensor sqrt(const Tensor& x);
Tensor abs(const Tensor& x);
Tensor dropout(const Tensor& x, double p, bool training);

// --- linear algebra -------------------------------------------------------
// 2-D matrix product [M,K] x [K,N] -> [M,N]; also accepts a leading batch
// dim on `a` ([B,M,K] x [K,N]). Blocked and parallelized over rows.
Tensor matmul(const Tensor& a, const Tensor& b);
// x [.., in] @ w[out, in]^T + b[out]; the nn.Linear kernel.
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b);
// linear followed by ReLU, with the clamp fused into the GEMM epilogue —
// bit-equal to relu(linear(x, w, b)); the fusion pass rewrites to this.
Tensor linear_relu(const Tensor& x, const Tensor& w, const Tensor& b);
// Swap two dims (materializes a contiguous result).
Tensor transpose(const Tensor& x, int d0, int d1);

// --- convolution / pooling (NCHW) ----------------------------------------
// x [N,C,H,W], w [O,C,kh,kw], optional bias [O]; im2col + GEMM.
Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b,
              std::vector<std::int64_t> stride,
              std::vector<std::int64_t> padding);
Tensor max_pool2d(const Tensor& x, std::vector<std::int64_t> kernel,
                  std::vector<std::int64_t> stride,
                  std::vector<std::int64_t> padding);
Tensor avg_pool2d(const Tensor& x, std::vector<std::int64_t> kernel,
                  std::vector<std::int64_t> stride);
// Pool to an exact output spatial size (PyTorch AdaptiveAvgPool2d).
Tensor adaptive_avg_pool2d(const Tensor& x, std::vector<std::int64_t> out_hw);

// --- normalization ---------------------------------------------------------
// Inference-mode batch norm with running statistics.
Tensor batch_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  const Tensor& running_mean, const Tensor& running_var,
                  double eps);
// Training-mode batch norm: normalizes by batch statistics and updates the
// running stats in place (running <- (1-momentum)*running + momentum*batch).
Tensor batch_norm_train(const Tensor& x, const Tensor& gamma,
                        const Tensor& beta, Tensor& running_mean,
                        Tensor& running_var, double momentum, double eps);
// LayerNorm over the trailing dimension.
Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  double eps);
Tensor softmax(const Tensor& x, int dim);

// --- reductions / shape -----------------------------------------------------
Tensor sum(const Tensor& x);
Tensor mean(const Tensor& x);
// Reduce one dim (keepdim=false).
Tensor sum_dim(const Tensor& x, int dim);
Tensor cat(const std::vector<Tensor>& xs, int dim);
Tensor reshape(const Tensor& x, Shape shape);
Tensor flatten(const Tensor& x, int start_dim);

// --- lookup -----------------------------------------------------------------
// weight [V, D], indices Int64 [..] -> [.., D].
Tensor embedding(const Tensor& weight, const Tensor& indices);

}  // namespace fxcpp::ops
