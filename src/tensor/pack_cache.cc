#include "tensor/pack_cache.h"

#include <algorithm>
#include <atomic>

#include "kernels/kernels.h"

namespace fxcpp {

namespace {

// Process-wide mirrors of the per-thread counters (relaxed: diagnostics).
std::atomic<std::int64_t> g_hits{0};
std::atomic<std::int64_t> g_misses{0};
std::atomic<std::int64_t> g_panel_hits{0};
std::atomic<std::int64_t> g_panel_misses{0};

// Rows/cols of the 2-D matrix interpretation used by the panel packs.
std::int64_t panel_rows(const Tensor& w) {
  return w.dim() > 0 ? w.sizes()[0] : 1;
}
std::int64_t panel_cols(const Tensor& w) {
  const std::int64_t rows = panel_rows(w);
  return rows > 0 ? w.numel() / rows : 0;
}

}  // namespace

PackCache& PackCache::local() {
  thread_local PackCache cache;
  return cache;
}

Tensor PackCache::packed_weight(const Tensor& w) {
  if (!w.defined() || w.is_contiguous()) return w;
  const std::uintptr_t id = w.storage_id();
  const std::uint64_t version = w.storage_version();
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    Entry& e = it->second;
    // Same storage — but only a hit if nothing moved underneath: the bytes
    // (version) and the view geometry must both still match. Two live views
    // of one storage alternate into repacks, which is slow but never wrong.
    if (e.version == version && e.source.sizes() == w.sizes() &&
        e.source.strides() == w.strides() &&
        e.source.storage_offset() == w.storage_offset()) {
      ++stats_.hits;
      g_hits.fetch_add(1, std::memory_order_relaxed);
      return e.packed;
    }
    ++stats_.repacks;
    ++stats_.misses;
    g_misses.fetch_add(1, std::memory_order_relaxed);
    e.source = w;
    e.packed = w.contiguous();
    e.version = version;
    return e.packed;
  }
  ++stats_.misses;
  g_misses.fetch_add(1, std::memory_order_relaxed);
  Entry e;
  e.source = w;
  e.packed = w.contiguous();
  e.version = version;
  entries_.emplace(id, std::move(e));
  insertion_order_.push_back(id);
  evict_to_capacity();
  auto found = entries_.find(id);
  return found != entries_.end() ? found->second.packed : w.contiguous();
}

template <typename PackFn>
PackCache::PanelEntry PackCache::panel_lookup(const Tensor& w, int kind,
                                              int mr, PackFn&& pack) {
  const PanelKey key{w.storage_id(), kind, mr};
  const std::uint64_t version = w.storage_version();
  auto it = panel_entries_.find(key);
  if (it != panel_entries_.end()) {
    PanelEntry& e = it->second;
    if (e.version == version && e.source.sizes() == w.sizes() &&
        e.source.strides() == w.strides() &&
        e.source.storage_offset() == w.storage_offset()) {
      ++stats_.panel_hits;
      g_panel_hits.fetch_add(1, std::memory_order_relaxed);
      return e;
    }
    ++stats_.panel_repacks;
    ++stats_.panel_misses;
    g_panel_misses.fetch_add(1, std::memory_order_relaxed);
    stats_.panel_bytes -= e.bytes;
    e = pack();
    e.version = version;
    stats_.panel_bytes += e.bytes;
    return e;
  }
  ++stats_.panel_misses;
  g_panel_misses.fetch_add(1, std::memory_order_relaxed);
  PanelEntry e = pack();
  e.version = version;
  stats_.panel_bytes += e.bytes;
  PanelEntry out = e;  // survives even if the fresh entry is evicted below
  panel_entries_.emplace(key, std::move(e));
  panel_insertion_order_.push_back(key);
  evict_panels_to_capacity();
  return out;
}

std::shared_ptr<const std::vector<float>> PackCache::panel_b_f32_nt(
    const Tensor& w) {
  const std::int64_t n = panel_rows(w);
  const std::int64_t k = panel_cols(w);
  const PanelEntry e =
      panel_lookup(w, kPanelBF32Nt, 0, [&]() {
        const Tensor wc = packed_weight(w);
        auto buf = std::make_shared<std::vector<float>>(
            kernels::packed_b_f32_size(k, n));
        kernels::pack_b_f32_nt(wc.data<float>(), k, k, n, buf->data());
        PanelEntry fresh;
        fresh.source = w;
        fresh.bytes = buf->size() * sizeof(float);
        fresh.f32 = std::move(buf);
        return fresh;
      });
  return e.f32;
}

std::shared_ptr<const std::vector<float>> PackCache::panel_a_f32(
    const Tensor& w, int mr) {
  const std::int64_t m = panel_rows(w);
  const std::int64_t k = panel_cols(w);
  const PanelEntry e =
      panel_lookup(w, kPanelAF32, mr, [&]() {
        const Tensor wc = packed_weight(w);
        auto buf = std::make_shared<std::vector<float>>(
            kernels::packed_a_f32_size(m, k, mr));
        kernels::pack_a_f32(wc.data<float>(), k, m, k, mr, buf->data());
        PanelEntry fresh;
        fresh.source = w;
        fresh.bytes = buf->size() * sizeof(float);
        fresh.f32 = std::move(buf);
        return fresh;
      });
  return e.f32;
}

std::shared_ptr<const std::vector<std::int8_t>> PackCache::panel_b_s8_nt(
    const Tensor& w) {
  const std::int64_t n = panel_rows(w);
  const std::int64_t k = panel_cols(w);
  const PanelEntry e =
      panel_lookup(w, kPanelBS8Nt, 0, [&]() {
        const Tensor wc = packed_weight(w);
        auto buf = std::make_shared<std::vector<std::int8_t>>(
            kernels::packed_b_s8_size(k, n));
        kernels::pack_b_s8_nt(wc.data<std::int8_t>(), k, k, n, buf->data());
        PanelEntry fresh;
        fresh.source = w;
        fresh.bytes = buf->size();
        fresh.s8 = std::move(buf);
        return fresh;
      });
  return e.s8;
}

float* PackCache::workspace(std::size_t count) {
  if (workspace_.size() < count) workspace_.resize(count);
  stats_.workspace_floats = workspace_.size();
  return workspace_.data();
}

float* PackCache::panel_workspace(std::size_t count) {
  if (panel_workspace_.size() < count) panel_workspace_.resize(count);
  return panel_workspace_.data();
}

std::int8_t* PackCache::workspace_s8(std::size_t count) {
  if (workspace_s8_.size() < count) workspace_s8_.resize(count);
  return workspace_s8_.data();
}

std::int8_t* PackCache::panel_workspace_s8(std::size_t count) {
  if (panel_workspace_s8_.size() < count) panel_workspace_s8_.resize(count);
  return panel_workspace_s8_.data();
}

PackCache::GlobalStats PackCache::global_stats() {
  GlobalStats g;
  g.hits = g_hits.load(std::memory_order_relaxed);
  g.misses = g_misses.load(std::memory_order_relaxed);
  g.panel_hits = g_panel_hits.load(std::memory_order_relaxed);
  g.panel_misses = g_panel_misses.load(std::memory_order_relaxed);
  return g;
}

void PackCache::clear() {
  entries_.clear();
  insertion_order_.clear();
  panel_entries_.clear();
  panel_insertion_order_.clear();
  workspace_.clear();
  workspace_.shrink_to_fit();
  panel_workspace_.clear();
  panel_workspace_.shrink_to_fit();
  workspace_s8_.clear();
  workspace_s8_.shrink_to_fit();
  panel_workspace_s8_.clear();
  panel_workspace_s8_.shrink_to_fit();
  stats_ = Stats{};
}

void PackCache::set_capacity(std::size_t max_entries) {
  capacity_ = max_entries;
  evict_to_capacity();
  evict_panels_to_capacity();
}

void PackCache::evict_to_capacity() {
  while (entries_.size() > capacity_ && !insertion_order_.empty()) {
    const std::uintptr_t victim = insertion_order_.front();
    insertion_order_.erase(insertion_order_.begin());
    if (entries_.erase(victim) > 0) ++stats_.evictions;
  }
}

void PackCache::evict_panels_to_capacity() {
  while (panel_entries_.size() > capacity_ &&
         !panel_insertion_order_.empty()) {
    const PanelKey victim = panel_insertion_order_.front();
    panel_insertion_order_.erase(panel_insertion_order_.begin());
    auto it = panel_entries_.find(victim);
    if (it != panel_entries_.end()) {
      stats_.panel_bytes -= it->second.bytes;
      panel_entries_.erase(it);
      ++stats_.evictions;
    }
  }
}

}  // namespace fxcpp
