#include "tensor/pack_cache.h"

#include <algorithm>

namespace fxcpp {

PackCache& PackCache::local() {
  thread_local PackCache cache;
  return cache;
}

Tensor PackCache::packed_weight(const Tensor& w) {
  if (!w.defined() || w.is_contiguous()) return w;
  const std::uintptr_t id = w.storage_id();
  const std::uint64_t version = w.storage_version();
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    Entry& e = it->second;
    // Same storage — but only a hit if nothing moved underneath: the bytes
    // (version) and the view geometry must both still match. Two live views
    // of one storage alternate into repacks, which is slow but never wrong.
    if (e.version == version && e.source.sizes() == w.sizes() &&
        e.source.strides() == w.strides() &&
        e.source.storage_offset() == w.storage_offset()) {
      ++stats_.hits;
      return e.packed;
    }
    ++stats_.repacks;
    ++stats_.misses;
    e.source = w;
    e.packed = w.contiguous();
    e.version = version;
    return e.packed;
  }
  ++stats_.misses;
  Entry e;
  e.source = w;
  e.packed = w.contiguous();
  e.version = version;
  entries_.emplace(id, std::move(e));
  insertion_order_.push_back(id);
  evict_to_capacity();
  auto found = entries_.find(id);
  return found != entries_.end() ? found->second.packed : w.contiguous();
}

float* PackCache::workspace(std::size_t count) {
  if (workspace_.size() < count) workspace_.resize(count);
  stats_.workspace_floats = workspace_.size();
  return workspace_.data();
}

void PackCache::clear() {
  entries_.clear();
  insertion_order_.clear();
  workspace_.clear();
  workspace_.shrink_to_fit();
  stats_ = Stats{};
}

void PackCache::set_capacity(std::size_t max_entries) {
  capacity_ = max_entries;
  evict_to_capacity();
}

void PackCache::evict_to_capacity() {
  while (entries_.size() > capacity_ && !insertion_order_.empty()) {
    const std::uintptr_t victim = insertion_order_.front();
    insertion_order_.erase(insertion_order_.begin());
    if (entries_.erase(victim) > 0) ++stats_.evictions;
  }
}

}  // namespace fxcpp
