// Int8 affine-quantized kernels — the FBGEMM stand-in for the Section 6.2.1
// quantization experiment.
//
// Scheme (mirrors PyTorch's default server CPU config):
//   * activations: per-tensor affine int8, zero_point in [-128, 127]
//   * weights:     per-tensor *symmetric* int8 (zero_point = 0)
//   * accumulation in int32, requantized to the output's scale/zero_point
//
// The speedup mechanism is the same one the paper measures: 4x smaller
// operands (memory bandwidth at small batch) and integer arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fxcpp::ops {

// Pick scale/zero_point covering [mn, mx] over the int8 range, always
// including 0.0 exactly (required so zero padding is representable).
QParams choose_qparams(double mn, double mx);

// Symmetric variant for weights: zero_point = 0, range [-127, 127].
QParams choose_qparams_symmetric(double mn, double mx);

// fp32 -> int8 with the given parameters (result carries them).
Tensor quantize_per_tensor(const Tensor& x, double scale,
                           std::int32_t zero_point);

// int8 -> fp32 using the tensor's carried parameters.
Tensor dequantize(const Tensor& qx);

// Prepacked linear weight: symmetric int8 weights plus the per-row sums
// used for the activation-zero-point correction term, and the fp32 bias.
// Supports per-tensor or per-channel (per output row) weight scales — the
// latter is FBGEMM's default and markedly more accurate when row magnitudes
// vary.
struct PackedLinearWeight {
  Tensor w_q;                        // int8 [out, in]
  std::vector<std::int32_t> row_sum; // sum of each weight row
  Tensor bias;                       // fp32 [out] (may be undefined)
  double w_scale = 1.0;              // per-tensor scale (when !per_channel)
  std::vector<float> row_scale;      // per-channel scales (when per_channel)
  bool per_channel = false;

  static PackedLinearWeight pack(const Tensor& w_fp32, const Tensor& bias_fp32);
  static PackedLinearWeight pack_per_channel(const Tensor& w_fp32,
                                             const Tensor& bias_fp32);
};

// y_q = requant(x_q @ w^T + bias), output int8 with (out_scale, out_zp).
Tensor quantized_linear(const Tensor& x_q, const PackedLinearWeight& pw,
                        double out_scale, std::int32_t out_zp);

// Prepacked conv weight (same scheme, plus geometry).
struct PackedConvWeight {
  Tensor w_q;                        // int8 [O, C, kh, kw]
  std::vector<std::int32_t> filt_sum;
  Tensor bias;                       // fp32 [O]
  double w_scale = 1.0;
  std::vector<std::int64_t> stride;
  std::vector<std::int64_t> padding;

  static PackedConvWeight pack(const Tensor& w_fp32, const Tensor& bias_fp32,
                               std::vector<std::int64_t> stride,
                               std::vector<std::int64_t> padding);
};

Tensor quantized_conv2d(const Tensor& x_q, const PackedConvWeight& pw,
                        double out_scale, std::int32_t out_zp);

// int8 ReLU: clamp below at the zero point (no dequantization needed).
Tensor quantized_relu(const Tensor& x_q);

// Elementwise add with requantization to the output parameters.
Tensor quantized_add(const Tensor& a_q, const Tensor& b_q, double out_scale,
                     std::int32_t out_zp);

// Arbitrary unary f applied through a 256-entry lookup table — how int8
// runtimes implement activations like SELU/sigmoid/GELU. f maps real->real.
Tensor quantized_unary_lut(const Tensor& x_q, float (*f)(float),
                           double out_scale, std::int32_t out_zp);

}  // namespace fxcpp::ops
