// A strided, reference-counted eager tensor — the substrate PyTorch provides
// for torch.fx. Supports the semantics the paper's Section 2.3 discussion
// hinges on: shared storage, views (slice/reshape of contiguous data), and
// in-place mutation, which is exactly what makes transform safety hard in
// eager IRs and what fx sidesteps by keeping state in Modules.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace fxcpp {

// Thrown by Storage when a thread-local allocation ceiling (armed via
// Storage::set_alloc_limit, used by the resilience fault injector) would be
// breached. Derives from bad_alloc so generic allocation-failure handling
// still applies, but carries a message naming the limit and request size.
class AllocLimitError : public std::bad_alloc {
 public:
  explicit AllocLimitError(std::string msg) : msg_(std::move(msg)) {}
  const char* what() const noexcept override { return msg_.c_str(); }

 private:
  std::string msg_;
};

// Shared, RAII-managed flat byte buffer (64-byte aligned for vectorization).
class Storage {
 public:
  explicit Storage(std::size_t nbytes);
  // Non-owning view over externally managed memory (an arena slot). The
  // caller guarantees `external` stays alive for the Storage's lifetime and
  // is 64-byte aligned. Does not touch the allocator counters — the arena's
  // own backing Storage was counted once when it was created.
  Storage(std::byte* external, std::size_t nbytes);
  ~Storage();

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  std::byte* data() { return data_.get(); }
  const std::byte* data() const { return data_.get(); }
  std::size_t nbytes() const { return nbytes_; }
  bool owns_memory() const { return data_.get_deleter().owned; }

  // Monotonic mutation counter. In-place tensor mutations bump it; caches
  // keyed on (storage identity, version) — e.g. the GEMM PackCache — use it
  // to detect that a weight changed underneath them.
  std::uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }
  void bump_version() { version_.fetch_add(1, std::memory_order_relaxed); }

  // --- process-wide allocator counters (thread-safe) --------------------
  // Sizes are the actual (64-byte-padded) allocations. The profiler reads
  // these around node execution to attribute allocator traffic; tests use
  // them to pin peak-memory behavior (e.g. Interpreter last-use freeing).
  static std::int64_t live_bytes();       // currently allocated
  static std::int64_t peak_bytes();       // high-water mark since reset_peak()
  static std::int64_t total_allocated_bytes();  // cumulative, never decreases
  static std::int64_t allocation_count();       // cumulative #allocations
  // Drop the high-water mark back to the current live set so a subsequent
  // run measures its own peak.
  static void reset_peak();

  // --- thread-local allocation ceiling (fault injection) ----------------
  // When armed (max_live_bytes > 0), the next allocation on *this thread*
  // that would push live_bytes() past the ceiling disarms the limit and
  // throws AllocLimitError — single-shot by design, so the failure cannot
  // cascade into unwinding/cleanup allocations. 0 disarms. Thread-local so
  // the resilience FaultInjector can target one executing node without
  // racing sibling ParallelExecutor workers.
  static void set_alloc_limit(std::int64_t max_live_bytes);
  static std::int64_t alloc_limit();

  // --- thread-local placement hint (memory planner) ---------------------
  // The planned executors arm a single-shot hint naming the arena slot for
  // the instruction about to run. The next Storage(nbytes) constructed on
  // this thread with *exactly* the hinted logical size adopts the slot
  // (non-owning, no heap traffic) instead of allocating; any other size
  // passes through to the normal allocator. Exact-size matching keeps a
  // kernel's internal temporaries from stealing the slot in practice —
  // and if a same-sized temporary does take it, the kernel's real output
  // simply heap-allocates, which is slower but never wrong.
  static void arm_placement(std::byte* slot, std::size_t nbytes);
  static void disarm_placement();
  static bool placement_armed();

  // Cumulative count/bytes of allocations served from an armed placement
  // hint (i.e. heap traffic avoided by the planner).
  static std::int64_t planner_served_bytes();
  static std::int64_t planner_served_count();

 private:
  struct AlignedDelete {
    // No default member initializer: NSDMI parsing is deferred to the end of
    // the *enclosing* class, which would leave this deleter not-yet-default-
    // constructible right where data_ needs it to be.
    bool owned;
    constexpr AlignedDelete() : owned(true) {}
    constexpr explicit AlignedDelete(bool o) : owned(o) {}
    void operator()(std::byte* p) const {
      if (owned) ::operator delete[](p, std::align_val_t{64});
    }
  };
  std::unique_ptr<std::byte[], AlignedDelete> data_;
  std::size_t nbytes_ = 0;
  std::size_t alloc_bytes_ = 0;  // padded size actually allocated
  std::atomic<std::uint64_t> version_{0};
};

// Affine quantization parameters attached to Int8/UInt8 tensors
// (real = scale * (q - zero_point)), mirroring torch.quantize_per_tensor.
struct QParams {
  double scale = 1.0;
  std::int32_t zero_point = 0;
};

class Tensor {
 public:
  // Empty (undefined) tensor.
  Tensor() = default;

  // Uninitialized tensor of the given shape/dtype.
  explicit Tensor(Shape shape, DType dtype = DType::Float32);

  bool defined() const { return storage_ != nullptr; }
  DType dtype() const { return dtype_; }
  const Shape& sizes() const { return shape_; }
  const Strides& strides() const { return strides_; }
  std::int64_t size(int dim) const;
  std::int64_t dim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t numel() const { return shape_numel(shape_); }
  bool is_contiguous() const;

  // Quantization parameters; only meaningful for Int8/UInt8 tensors.
  bool is_quantized() const { return qparams_ != nullptr; }
  const QParams& qparams() const;
  void set_qparams(QParams q);

  // Raw typed element access. Checked against the tensor's dtype. The
  // mutable overload bumps the storage version: handing out a writable
  // pointer is the only way kernels mutate data, so this conservatively
  // invalidates (storage, version)-keyed caches like PackCache.
  template <typename T>
  T* data() {
    check_dtype(dtype_of<T>::value);
    storage_->bump_version();
    return reinterpret_cast<T*>(storage_->data()) + offset_;
  }
  template <typename T>
  const T* data() const {
    check_dtype(dtype_of<T>::value);
    return reinterpret_cast<const T*>(storage_->data()) + offset_;
  }

  // Value of a single-element tensor as double (any dtype).
  double item() const;

  // Element at a flat contiguous index, converted to double (any dtype).
  double at_flat(std::int64_t i) const;
  void set_flat(std::int64_t i, double v);

  // --- views ----------------------------------------------------------
  // These share storage with *this (PyTorch aliasing semantics).

  // Reinterpret shape; requires contiguity and matching numel. One dim may
  // be -1 (inferred).
  Tensor reshape(Shape new_shape) const;
  // Collapse dims [start_dim, end) into one.
  Tensor flatten(int start_dim = 0) const;
  // Narrow dimension `dim` to [start, start+length) — a true view.
  Tensor narrow(int dim, std::int64_t start, std::int64_t length) const;
  // select(): index along dim 0, removing it — a true view.
  Tensor select(std::int64_t index) const;

  // --- materializers ---------------------------------------------------
  Tensor contiguous() const;  // copy iff non-contiguous
  Tensor clone() const;       // always copies
  Tensor to(DType dt) const;  // dtype conversion (copies)

  // --- in-place --------------------------------------------------------
  Tensor& fill_(double v);
  Tensor& zero_() { return fill_(0.0); }
  Tensor& copy_(const Tensor& src);  // same shape, converts dtype
  Tensor& add_(const Tensor& other, double alpha = 1.0);  // this += alpha*other
  Tensor& mul_(double v);

  // Shares storage with `other`? (view detection, used in aliasing tests)
  bool shares_storage_with(const Tensor& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }

  // Identity of the underlying storage (0 for undefined tensors) and its
  // mutation version — the cache key for PackCache and friends.
  std::uintptr_t storage_id() const {
    return reinterpret_cast<std::uintptr_t>(storage_.get());
  }
  std::uint64_t storage_version() const {
    return storage_ ? storage_->version() : 0;
  }
  std::int64_t storage_offset() const { return offset_; }

  std::string to_string(std::int64_t max_elems = 16) const;

  // --- factories -------------------------------------------------------
  static Tensor zeros(Shape shape, DType dt = DType::Float32);
  static Tensor ones(Shape shape, DType dt = DType::Float32);
  static Tensor full(Shape shape, double v, DType dt = DType::Float32);
  // Standard normal / uniform [0,1) from the global deterministic RNG.
  static Tensor randn(Shape shape);
  static Tensor rand(Shape shape);
  static Tensor from_vector(const std::vector<float>& v, Shape shape);
  static Tensor arange(std::int64_t n);  // Int64 [0..n)
  static Tensor scalar(double v, DType dt = DType::Float32);

 private:
  void check_dtype(DType want) const;

  std::shared_ptr<Storage> storage_;
  std::int64_t offset_ = 0;  // in elements
  Shape shape_;
  Strides strides_;
  DType dtype_ = DType::Float32;
  std::shared_ptr<QParams> qparams_;
};

// True when shapes match and elements differ by at most atol + rtol*|b|.
bool allclose(const Tensor& a, const Tensor& b, double rtol = 1e-5,
              double atol = 1e-6);
// Largest absolute elementwise difference (shapes must match).
double max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace fxcpp
