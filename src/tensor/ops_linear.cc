#include <cstring>

#include "kernels/kernels.h"
#include "tensor/ops.h"
#include "tensor/pack_cache.h"

namespace fxcpp::ops {

namespace {

// Shared linear / linear_relu body: x @ w^T + b through the micro-kernel
// layer (src/kernels). The weight's B panels are packed once per (storage,
// version) in the thread's PackCache; the ReLU rides in the GEMM epilogue.
Tensor linear_impl(const Tensor& x, const Tensor& w, const Tensor& b,
                   bool relu) {
  const Tensor xc = x.contiguous();
  if (w.dim() != 2) throw std::invalid_argument("linear: weight must be 2-D");
  const std::int64_t in = w.size(1), out_f = w.size(0);
  if (xc.size(-1) != in) {
    throw std::invalid_argument("linear: in_features mismatch");
  }
  const std::int64_t rows = xc.numel() / in;
  Shape out_shape = xc.sizes();
  out_shape.back() = out_f;
  Tensor y(out_shape, DType::Float32);
  const float* bias = nullptr;
  Tensor bcont;
  if (b.defined()) {
    if (b.numel() != out_f) throw std::invalid_argument("linear: bias size");
    bcont = b.contiguous();
    bias = bcont.data<float>();
  }
  // Weights have stable identity across forwards; panel-pack once per
  // (storage, version) instead of per call.
  const auto panels = PackCache::local().panel_b_f32_nt(w);
  kernels::sgemm(rows, out_f, in, xc.data<float>(), in, panels->data(),
                 y.data<float>(), out_f, bias, nullptr, relu);
  return y;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  if (bc.dim() != 2) throw std::invalid_argument("matmul: rhs must be 2-D");
  const std::int64_t k = bc.size(0), n = bc.size(1);
  // The rhs is an activation here (no stable identity), so its panels are
  // packed per call into the thread's workspace, not the weight cache.
  float* pb = PackCache::local().panel_workspace(kernels::packed_b_f32_size(k, n));
  kernels::pack_b_f32_nn(bc.data<float>(), n, k, n, pb);
  if (ac.dim() == 2) {
    if (ac.size(1) != k) throw std::invalid_argument("matmul: K mismatch");
    Tensor out(Shape{ac.size(0), n}, DType::Float32);
    kernels::sgemm(ac.size(0), n, k, ac.data<float>(), k, pb,
                   out.data<float>(), n, nullptr, nullptr, false);
    return out;
  }
  if (ac.dim() == 3) {
    if (ac.size(2) != k) throw std::invalid_argument("matmul: K mismatch");
    const std::int64_t batch = ac.size(0), m = ac.size(1);
    Tensor out(Shape{batch, m, n}, DType::Float32);
    kernels::sgemm(batch * m, n, k, ac.data<float>(), k, pb,
                   out.data<float>(), n, nullptr, nullptr, false);
    return out;
  }
  throw std::invalid_argument("matmul: lhs must be 2-D or 3-D");
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) {
  return linear_impl(x, w, b, /*relu=*/false);
}

Tensor linear_relu(const Tensor& x, const Tensor& w, const Tensor& b) {
  return linear_impl(x, w, b, /*relu=*/true);
}

Tensor transpose(const Tensor& x, int d0, int d1) {
  const auto nd = static_cast<int>(x.dim());
  if (d0 < 0) d0 += nd;
  if (d1 < 0) d1 += nd;
  if (d0 < 0 || d0 >= nd || d1 < 0 || d1 >= nd) {
    throw std::out_of_range("transpose: bad dims");
  }
  Shape out_shape = x.sizes();
  std::swap(out_shape[static_cast<std::size_t>(d0)],
            out_shape[static_cast<std::size_t>(d1)]);
  Tensor out(out_shape, x.dtype());
  // 2-D contiguous fp32: cache-blocked copy instead of per-element index
  // arithmetic (8x8 tiles keep both the row reads and column writes in L1).
  if (nd == 2 && d0 != d1 && x.dtype() == DType::Float32 &&
      x.is_contiguous()) {
    const std::int64_t r = x.size(0), c = x.size(1);
    const float* src = x.data<float>();
    float* dst = out.data<float>();
    constexpr std::int64_t kBlock = 8;
    for (std::int64_t i0 = 0; i0 < r; i0 += kBlock) {
      const std::int64_t i1 = std::min(i0 + kBlock, r);
      for (std::int64_t j0 = 0; j0 < c; j0 += kBlock) {
        const std::int64_t j1 = std::min(j0 + kBlock, c);
        for (std::int64_t i = i0; i < i1; ++i) {
          for (std::int64_t j = j0; j < j1; ++j) dst[j * r + i] = src[i * c + j];
        }
      }
    }
    return out;
  }
  const Strides so = contiguous_strides(out_shape);
  const Strides si = contiguous_strides(x.sizes());  // hoisted: loop-invariant
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    // Decompose output flat index, swap the two coords, read input.
    std::int64_t rem = i, in_flat = 0;
    for (std::size_t d = 0; d < out_shape.size(); ++d) {
      const std::int64_t coord = rem / so[d];
      rem -= coord * so[d];
      std::size_t id = d;
      if (static_cast<int>(d) == d0) id = static_cast<std::size_t>(d1);
      else if (static_cast<int>(d) == d1) id = static_cast<std::size_t>(d0);
      in_flat += coord * si[id];
    }
    out.set_flat(i, x.at_flat(in_flat));
  }
  return out;
}

Tensor embedding(const Tensor& weight, const Tensor& indices) {
  const Tensor wc = weight.contiguous();
  const Tensor ic = indices.contiguous();
  if (wc.dim() != 2) throw std::invalid_argument("embedding: weight must be 2-D");
  const std::int64_t d = wc.size(1);
  Shape out_shape = ic.sizes();
  out_shape.push_back(d);
  Tensor out(out_shape, DType::Float32);
  const auto* idx = ic.data<std::int64_t>();
  const float* w = wc.data<float>();
  float* o = out.data<float>();
  const std::int64_t n = ic.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (idx[i] < 0 || idx[i] >= wc.size(0)) {
      throw std::out_of_range("embedding: index out of range");
    }
    std::memcpy(o + i * d, w + idx[i] * d, static_cast<std::size_t>(d) * sizeof(float));
  }
  return out;
}

}  // namespace fxcpp::ops
