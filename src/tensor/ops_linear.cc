#include <cstring>

#include "runtime/thread_pool.h"
#include "tensor/ops.h"
#include "tensor/pack_cache.h"

namespace fxcpp::ops {

namespace {

// C[M,N] = A[M,K] @ B[K,N]. i-k-j loop order: the inner j loop is a
// contiguous FMA over C's row, which GCC vectorizes. Parallel over rows.
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  rt::parallel_for(0, m, 16, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      float* crow = c + i * n;
      std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
      const float* arow = a + i * k;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* brow = b + kk * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

// y[M,O] = x[M,K] @ w[O,K]^T + bias[O], with 8-row register blocking so each
// weight row is streamed once per 8 input rows instead of once per row —
// large-batch calls become compute-bound instead of weight-bandwidth-bound
// (the effect that closes the int8-vs-fp32 gap at high batch in Figure 6).
void gemm_nt(const float* x, const float* w, const float* bias, float* y,
             std::int64_t m, std::int64_t k, std::int64_t o) {
  constexpr std::int64_t kRowBlock = 8;
  rt::parallel_for(0, (m + kRowBlock - 1) / kRowBlock, 1,
                   [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t blk = b0; blk < b1; ++blk) {
      const std::int64_t r0 = blk * kRowBlock;
      const std::int64_t rows = std::min(kRowBlock, m - r0);
      for (std::int64_t j = 0; j < o; ++j) {
        const float* wrow = w + j * k;  // stays in L1 across the row block
        const float base = bias ? bias[j] : 0.f;
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* xrow = x + (r0 + r) * k;
          float acc = 0.f;
          for (std::int64_t kk = 0; kk < k; ++kk) acc += xrow[kk] * wrow[kk];
          y[(r0 + r) * o + j] = acc + base;
        }
      }
    }
  });
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  const Tensor ac = a.contiguous();
  const Tensor bc = b.contiguous();
  if (bc.dim() != 2) throw std::invalid_argument("matmul: rhs must be 2-D");
  const std::int64_t k = bc.size(0), n = bc.size(1);
  if (ac.dim() == 2) {
    if (ac.size(1) != k) throw std::invalid_argument("matmul: K mismatch");
    Tensor out(Shape{ac.size(0), n}, DType::Float32);
    gemm(ac.data<float>(), bc.data<float>(), out.data<float>(), ac.size(0), k, n);
    return out;
  }
  if (ac.dim() == 3) {
    if (ac.size(2) != k) throw std::invalid_argument("matmul: K mismatch");
    const std::int64_t batch = ac.size(0), m = ac.size(1);
    Tensor out(Shape{batch, m, n}, DType::Float32);
    gemm(ac.data<float>(), bc.data<float>(), out.data<float>(), batch * m, k, n);
    return out;
  }
  throw std::invalid_argument("matmul: lhs must be 2-D or 3-D");
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) {
  const Tensor xc = x.contiguous();
  // Weights have stable identity across forwards; pack (contiguize) once
  // per (storage, version) instead of per call.
  const Tensor wc = PackCache::local().packed_weight(w);
  if (wc.dim() != 2) throw std::invalid_argument("linear: weight must be 2-D");
  const std::int64_t in = wc.size(1), out_f = wc.size(0);
  if (xc.size(-1) != in) {
    throw std::invalid_argument("linear: in_features mismatch");
  }
  const std::int64_t rows = xc.numel() / in;
  Shape out_shape = xc.sizes();
  out_shape.back() = out_f;
  Tensor y(out_shape, DType::Float32);
  const float* bias = nullptr;
  Tensor bcont;
  if (b.defined()) {
    if (b.numel() != out_f) throw std::invalid_argument("linear: bias size");
    bcont = b.contiguous();
    bias = bcont.data<float>();
  }
  gemm_nt(xc.data<float>(), wc.data<float>(), bias, y.data<float>(), rows, in,
          out_f);
  return y;
}

Tensor transpose(const Tensor& x, int d0, int d1) {
  const auto nd = static_cast<int>(x.dim());
  if (d0 < 0) d0 += nd;
  if (d1 < 0) d1 += nd;
  if (d0 < 0 || d0 >= nd || d1 < 0 || d1 >= nd) {
    throw std::out_of_range("transpose: bad dims");
  }
  Shape out_shape = x.sizes();
  std::swap(out_shape[static_cast<std::size_t>(d0)],
            out_shape[static_cast<std::size_t>(d1)]);
  Tensor out(out_shape, x.dtype());
  const Strides so = contiguous_strides(out_shape);
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    // Decompose output flat index, swap the two coords, read input.
    std::int64_t rem = i, in_flat = 0;
    const Strides si = contiguous_strides(x.sizes());
    for (std::size_t d = 0; d < out_shape.size(); ++d) {
      const std::int64_t coord = rem / so[d];
      rem -= coord * so[d];
      std::size_t id = d;
      if (static_cast<int>(d) == d0) id = static_cast<std::size_t>(d1);
      else if (static_cast<int>(d) == d1) id = static_cast<std::size_t>(d0);
      in_flat += coord * si[id];
    }
    out.set_flat(i, x.at_flat(in_flat));
  }
  return out;
}

Tensor embedding(const Tensor& weight, const Tensor& indices) {
  const Tensor wc = weight.contiguous();
  const Tensor ic = indices.contiguous();
  if (wc.dim() != 2) throw std::invalid_argument("embedding: weight must be 2-D");
  const std::int64_t d = wc.size(1);
  Shape out_shape = ic.sizes();
  out_shape.push_back(d);
  Tensor out(out_shape, DType::Float32);
  const auto* idx = ic.data<std::int64_t>();
  const float* w = wc.data<float>();
  float* o = out.data<float>();
  const std::int64_t n = ic.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (idx[i] < 0 || idx[i] >= wc.size(0)) {
      throw std::out_of_range("embedding: index out of range");
    }
    std::memcpy(o + i * d, w + idx[i] * d, static_cast<std::size_t>(d) * sizeof(float));
  }
  return out;
}

}  // namespace fxcpp::ops
