// fx-to-TRTSim lowering with automatic model splitting (Section 6.4):
// "automatic splitting of the model based on TensorRT's supported operators
// and automatically scheduling unsupported operations in non-optimized
// blocks."
//
// Contiguous runs of supported nodes become compiled Engine segments;
// unsupported runs stay as eager sub-GraphModules. The result is a parent
// GraphModule usable anywhere a Module is.
#pragma once

#include <memory>
#include <vector>

#include "core/split.h"
#include "trt/engine.h"

namespace fxcpp::trt {

// Leaf Module wrapping a compiled Engine so lowered segments live in the
// normal module hierarchy.
class EngineModule : public nn::Module {
 public:
  explicit EngineModule(std::unique_ptr<Engine> engine)
      : nn::Module("TRTSimEngine", /*builtin=*/true),
        engine_(std::move(engine)) {}

  fx::Value forward(const std::vector<fx::Value>& inputs) override {
    return fx::Value(engine_->run(inputs.at(0).tensor()));
  }
  const Engine& engine() const { return *engine_; }

 private:
  std::unique_ptr<Engine> engine_;
};

struct LoweredModel {
  std::shared_ptr<fx::GraphModule> module;  // run this
  int engine_segments = 0;
  int eager_segments = 0;
  std::vector<EngineStats> engine_stats;
};

// Lower `gm` for the (static) example input. Segments that cannot be
// compiled (unsupported ops, multi-input/multi-output after splitting) fall
// back to eager execution.
LoweredModel lower_to_trtsim(std::shared_ptr<fx::GraphModule> gm,
                             const Tensor& example_input);

}  // namespace fxcpp::trt
