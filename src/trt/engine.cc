#include "trt/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <sstream>
#include <stdexcept>

#include "nn/layers.h"
#include "passes/fuse_conv_bn.h"
#include "passes/memory_planner.h"
#include "passes/shape_prop.h"
#include "runtime/thread_pool.h"

namespace fxcpp::trt {

namespace {

bool is_relu_node(const fx::GraphModule& gm, const fx::Node& n) {
  if (n.op() == fx::Opcode::CallFunction || n.op() == fx::Opcode::CallMethod) {
    return n.target() == "relu";
  }
  if (n.op() == fx::Opcode::CallModule) {
    return dynamic_cast<const nn::ReLU*>(gm.resolve_module(n.target()).get()) !=
           nullptr;
  }
  return false;
}

// Sole user of n, or nullptr.
fx::Node* sole_user(const fx::Node& n) {
  if (n.users().size() != 1) return nullptr;
  return *n.users().begin();
}

}  // namespace

bool is_supported(const fx::GraphModule& gm, const fx::Node& n) {
  switch (n.op()) {
    case fx::Opcode::Placeholder:
    case fx::Opcode::Output:
      return true;
    case fx::Opcode::GetAttr:
      return false;
    case fx::Opcode::CallModule: {
      const auto m = gm.resolve_module(n.target());
      return dynamic_cast<const nn::Conv2d*>(m.get()) ||
             dynamic_cast<const nn::BatchNorm2d*>(m.get()) ||
             dynamic_cast<const nn::Linear*>(m.get()) ||
             dynamic_cast<const nn::ReLU*>(m.get()) ||
             dynamic_cast<const nn::Sigmoid*>(m.get()) ||
             dynamic_cast<const nn::Tanh*>(m.get()) ||
             dynamic_cast<const nn::MaxPool2d*>(m.get()) ||
             dynamic_cast<const nn::AdaptiveAvgPool2d*>(m.get()) ||
             dynamic_cast<const nn::Flatten*>(m.get()) ||
             dynamic_cast<const nn::Dropout*>(m.get()) ||
             dynamic_cast<const nn::Identity*>(m.get());
    }
    case fx::Opcode::CallFunction:
    case fx::Opcode::CallMethod: {
      const std::string& t = n.target();
      return t == "add" || t == "relu" || t == "flatten" || t == "reshape" ||
             t == "sigmoid" || t == "tanh";
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

namespace {

struct Buffer {
  std::int64_t size = 0;  // floats
  std::int64_t offset = -1;
  int def_op = -1;   // -1: graph input
  int last_use = -1; // op index; INT_MAX-ish for output
};

}  // namespace

std::unique_ptr<Engine> Engine::build(fx::GraphModule& gm,
                                      const Shape& input_shape) {
  const auto phs = gm.graph().placeholders();
  if (phs.size() != 1) {
    throw std::invalid_argument("Engine::build: exactly one input supported");
  }
  passes::shape_prop(gm, {Tensor::zeros(input_shape)});

  std::unique_ptr<Engine> e(new Engine());
  e->input_shape_ = input_shape;

  std::vector<Buffer> buffers;
  std::unordered_map<const fx::Node*, int> buf_of;
  auto new_buffer = [&](const Shape& s, int def_op) {
    buffers.push_back(Buffer{shape_numel(s), -1, def_op, -1});
    return static_cast<int>(buffers.size()) - 1;
  };

  buf_of[phs[0]] = new_buffer(input_shape, -1);

  std::set<const fx::Node*> absorbed;  // folded BNs / fused ReLUs
  std::int64_t im2col_max = 0;

  auto arg_node = [](const fx::Node& n, std::size_t i) -> fx::Node* {
    if (n.args().size() <= i || !n.args()[i].is_node()) {
      throw std::invalid_argument("Engine::build: expected node argument");
    }
    return n.args()[i].node();
  };

  const fx::Node* out_arg = nullptr;
  for (const fx::Node* n : gm.graph().nodes()) {
    if (n->op() == fx::Opcode::Placeholder) continue;
    if (absorbed.count(n)) continue;
    if (n->op() == fx::Opcode::Output) {
      if (!n->args().at(0).is_node()) {
        throw std::invalid_argument("Engine::build: non-tensor output");
      }
      out_arg = n->args()[0].node();
      continue;
    }
    if (!is_supported(gm, *n)) {
      throw std::invalid_argument("Engine::build: unsupported node '" +
                                  n->name() + "' (target=" + n->target() +
                                  "); use lower_to_trtsim for auto-split");
    }

    EngineOp op;
    const fx::Node* result_node = n;  // node whose value this op produces

    auto try_fuse_relu = [&](const fx::Node* producer) {
      fx::Node* u = sole_user(*producer);
      if (u && is_relu_node(gm, *u)) {
        op.fuse_relu = true;
        absorbed.insert(u);
        ++e->stats_.fused_relus;
        return u;
      }
      return const_cast<fx::Node*>(producer);
    };

    if (n->op() == fx::Opcode::CallModule) {
      const auto m = gm.resolve_module(n->target());
      if (const auto* conv = dynamic_cast<const nn::Conv2d*>(m.get())) {
        op.kind = EngineOp::Kind::Conv;
        op.stride = conv->stride();
        op.padding = conv->padding();
        op.weight = conv->param("weight").clone();
        op.bias = conv->has_bias() ? conv->param("bias").clone()
                                   : Tensor::zeros({conv->out_channels()});
        op.kernel = {op.weight.size(2), op.weight.size(3)};
        // Fold a directly-following BatchNorm into the weights.
        const fx::Node* producer = n;
        if (fx::Node* u = sole_user(*producer)) {
          if (u->op() == fx::Opcode::CallModule) {
            if (auto bn = std::dynamic_pointer_cast<nn::BatchNorm2d>(
                    gm.resolve_module(u->target()))) {
              const auto fused = passes::fuse_conv_bn_weights(
                  op.weight, op.bias, bn->param("running_mean"),
                  bn->param("running_var"), bn->param("weight"),
                  bn->param("bias"), bn->eps());
              op.weight = fused.weight;
              op.bias = fused.bias;
              absorbed.insert(u);
              ++e->stats_.fused_batchnorms;
              producer = u;
            }
          }
        }
        result_node = try_fuse_relu(producer);
        op.in_shape = arg_node(*n, 0)->shape();
        op.out_shape = producer->shape();
        im2col_max = std::max(
            im2col_max, op.weight.numel() / op.weight.size(0) *
                            op.out_shape[2] * op.out_shape[3]);
        op.in_off = buf_of.at(arg_node(*n, 0));
      } else if (const auto* lin = dynamic_cast<const nn::Linear*>(m.get())) {
        (void)lin;
        op.kind = EngineOp::Kind::Linear;
        op.weight = m->param("weight").clone();
        op.bias = m->has_parameter("bias") ? m->param("bias").clone()
                                           : Tensor::zeros({m->param("weight").size(0)});
        result_node = try_fuse_relu(n);
        // A LinearReLU module clamps inside its own forward; re-emitting it
        // as a plain Linear op would drop that ReLU.
        if (dynamic_cast<const nn::LinearReLU*>(m.get()) && !op.fuse_relu) {
          op.fuse_relu = true;
          ++e->stats_.fused_relus;
        }
        op.in_shape = arg_node(*n, 0)->shape();
        op.out_shape = n->shape();
        op.in_off = buf_of.at(arg_node(*n, 0));
      } else if (dynamic_cast<const nn::BatchNorm2d*>(m.get())) {
        // Standalone BN (no conv producer): execute as scale/shift via the
        // Add/Identity machinery — precompute per-channel affine into a
        // 1x1 "conv" on channels. Rare; use a conv with 1x1 identity.
        const auto bn = std::dynamic_pointer_cast<nn::BatchNorm2d>(m);
        const std::int64_t c = bn->num_features();
        Tensor w = Tensor::zeros({c, c, 1, 1});
        for (std::int64_t i = 0; i < c; ++i) w.set_flat(i * c + i, 1.0);
        const auto fused = passes::fuse_conv_bn_weights(
            w, Tensor::zeros({c}), bn->param("running_mean"),
            bn->param("running_var"), bn->param("weight"), bn->param("bias"),
            bn->eps());
        op.kind = EngineOp::Kind::Conv;
        op.weight = fused.weight;
        op.bias = fused.bias;
        op.kernel = {1, 1};
        result_node = try_fuse_relu(n);
        op.in_shape = arg_node(*n, 0)->shape();
        op.out_shape = n->shape();
        im2col_max = std::max(im2col_max, c * op.out_shape[2] * op.out_shape[3]);
        op.in_off = buf_of.at(arg_node(*n, 0));
      } else if (dynamic_cast<const nn::ReLU*>(m.get())) {
        op.kind = EngineOp::Kind::Relu;
        op.in_shape = op.out_shape = n->shape();
        op.in_off = buf_of.at(arg_node(*n, 0));
      } else if (dynamic_cast<const nn::Sigmoid*>(m.get())) {
        op.kind = EngineOp::Kind::Sigmoid;
        op.in_shape = op.out_shape = n->shape();
        op.in_off = buf_of.at(arg_node(*n, 0));
      } else if (dynamic_cast<const nn::Tanh*>(m.get())) {
        op.kind = EngineOp::Kind::Tanh;
        op.in_shape = op.out_shape = n->shape();
        op.in_off = buf_of.at(arg_node(*n, 0));
      } else if (const auto* mp = dynamic_cast<const nn::MaxPool2d*>(m.get())) {
        op.kind = EngineOp::Kind::MaxPool;
        op.kernel = {mp->kernel(), mp->kernel()};
        op.stride = {mp->stride(), mp->stride()};
        op.padding = {mp->padding(), mp->padding()};
        op.in_shape = arg_node(*n, 0)->shape();
        op.out_shape = n->shape();
        op.in_off = buf_of.at(arg_node(*n, 0));
      } else if (dynamic_cast<const nn::AdaptiveAvgPool2d*>(m.get())) {
        op.kind = EngineOp::Kind::AdaptiveAvgPool;
        op.in_shape = arg_node(*n, 0)->shape();
        op.out_shape = n->shape();
        op.in_off = buf_of.at(arg_node(*n, 0));
      } else {
        // Flatten / Dropout / Identity: logical only.
        buf_of[n] = buf_of.at(arg_node(*n, 0));
        continue;
      }
    } else {  // call_function / call_method
      const std::string& t = n->target();
      if (t == "flatten" || t == "reshape") {
        buf_of[n] = buf_of.at(arg_node(*n, 0));
        continue;
      }
      if (t == "add") {
        op.kind = EngineOp::Kind::Add;
        op.in_shape = arg_node(*n, 0)->shape();
        op.in2_shape = arg_node(*n, 1)->shape();
        result_node = try_fuse_relu(n);
        op.out_shape = n->shape();
        op.in_off = buf_of.at(arg_node(*n, 0));
        op.in2_off = buf_of.at(arg_node(*n, 1));
      } else if (t == "relu") {
        op.kind = EngineOp::Kind::Relu;
        op.in_shape = op.out_shape = n->shape();
        op.in_off = buf_of.at(arg_node(*n, 0));
      } else if (t == "sigmoid" || t == "tanh") {
        op.kind = t == "sigmoid" ? EngineOp::Kind::Sigmoid
                                 : EngineOp::Kind::Tanh;
        op.in_shape = op.out_shape = n->shape();
        op.in_off = buf_of.at(arg_node(*n, 0));
      } else {
        throw std::invalid_argument("Engine::build: unsupported target '" +
                                    t + "'");
      }
    }

    const int op_index = static_cast<int>(e->plan_.size());
    const int out_buf = new_buffer(op.out_shape, op_index);
    buf_of[result_node] = out_buf;
    if (result_node != n) buf_of[n] = out_buf;
    op.out_off = out_buf;  // temporarily store buffer id; offsets assigned below
    e->plan_.push_back(std::move(op));
    e->stats_.weight_bytes +=
        static_cast<std::size_t>(e->plan_.back().weight.defined()
                                     ? e->plan_.back().weight.numel() * 4
                                     : 0);
  }

  if (!out_arg) throw std::invalid_argument("Engine::build: graph has no output");

  // --- liveness ------------------------------------------------------------
  // in_off/in2_off currently hold buffer ids; record uses.
  for (std::size_t i = 0; i < e->plan_.size(); ++i) {
    auto use = [&](std::int64_t id) {
      if (id >= 0) {
        buffers[static_cast<std::size_t>(id)].last_use =
            std::max(buffers[static_cast<std::size_t>(id)].last_use,
                     static_cast<int>(i));
      }
    };
    use(e->plan_[i].in_off);
    use(e->plan_[i].in2_off);
  }
  const int out_buf_id = buf_of.at(out_arg);
  buffers[static_cast<std::size_t>(out_buf_id)].last_use =
      static_cast<int>(e->plan_.size());  // alive past the end
  buffers[0].last_use = std::max(buffers[0].last_use, 0);

  // --- greedy arena assignment (first-fit over freed blocks) ---------------
  // This inline planner was the prototype for the shared tape planner; it is
  // now a client of passes::first_fit_pack, which preserves its step
  // semantics exactly (input allocated before step 0, per step allocate
  // definitions in buffer order then free last-uses), so planner_saving()
  // is bit-identical to the pre-extraction engine.
  std::vector<passes::LiveRange> ranges;
  ranges.reserve(buffers.size());
  for (const auto& b : buffers) {
    ranges.push_back(passes::LiveRange{b.size, b.def_op, b.last_use});
  }
  const passes::FirstFitPacking packed =
      passes::first_fit_pack(ranges, static_cast<int>(e->plan_.size()));
  for (std::size_t b = 0; b < buffers.size(); ++b) {
    buffers[b].offset = packed.offsets[b];
  }
  const std::int64_t high_water = packed.high_water;

  // Swap buffer ids for offsets in the plan.
  for (auto& op : e->plan_) {
    auto off = [&](std::int64_t id) {
      return id < 0 ? -1 : buffers[static_cast<std::size_t>(id)].offset;
    };
    op.in_off = off(op.in_off);
    op.in2_off = off(op.in2_off);
    op.out_off = off(op.out_off);
  }
  e->input_off_ = buffers[0].offset;
  e->output_off_ = buffers[static_cast<std::size_t>(out_buf_id)].offset;
  e->output_shape_ = out_arg->shape();
  e->arena_.assign(static_cast<std::size_t>(high_water), 0.f);
  e->im2col_.assign(static_cast<std::size_t>(im2col_max), 0.f);
  e->stats_.plan_ops = static_cast<int>(e->plan_.size());
  e->stats_.arena_bytes = static_cast<std::size_t>(high_water) * 4;
  std::int64_t unplanned = 0;
  for (const auto& b : buffers) unplanned += b.size;
  e->stats_.unplanned_bytes = static_cast<std::size_t>(unplanned) * 4;
  return e;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void Engine::exec_op(const EngineOp& op, float* arena) const {
  const float* in = arena + op.in_off;
  float* out = arena + op.out_off;
  const std::int64_t n_out = shape_numel(op.out_shape);
  switch (op.kind) {
    case EngineOp::Kind::Conv: {
      const std::int64_t N = op.in_shape[0], C = op.in_shape[1],
                         H = op.in_shape[2], W = op.in_shape[3];
      const std::int64_t O = op.out_shape[1], OH = op.out_shape[2],
                         OW = op.out_shape[3];
      const std::int64_t kh = op.kernel[0], kw = op.kernel[1];
      const std::int64_t sh = op.stride[0], sw = op.stride[1];
      const std::int64_t ph = op.padding[0], pw = op.padding[1];
      const std::int64_t k = C * kh * kw, spatial = OH * OW;
      const float* wp = op.weight.data<float>();
      const float* bp = op.bias.data<float>();
      // Kernel specialization (the TensorRT-style build-time tactic
      // selection): a 1x1 stride-1 unpadded conv IS a GEMM over the input
      // feature map — no im2col gather at all.
      const bool pointwise =
          kh == 1 && kw == 1 && sh == 1 && sw == 1 && ph == 0 && pw == 0;
      float* col = const_cast<float*>(im2col_.data());
      for (std::int64_t img = 0; img < N; ++img) {
        const float* xin = in + img * C * H * W;
        if (pointwise) {
          float* yout = out + img * O * spatial;
          const bool fuse = op.fuse_relu;
          rt::parallel_for(0, O, 4, [&](std::int64_t o0, std::int64_t o1) {
            for (std::int64_t o = o0; o < o1; ++o) {
              float* yrow = yout + o * spatial;
              const float base = bp[o];
              for (std::int64_t j = 0; j < spatial; ++j) yrow[j] = base;
              const float* wrow = wp + o * C;
              for (std::int64_t c = 0; c < C; ++c) {
                const float wv = wrow[c];
                const float* crow = xin + c * spatial;
                for (std::int64_t j = 0; j < spatial; ++j) {
                  yrow[j] += wv * crow[j];
                }
              }
              if (fuse) {
                for (std::int64_t j = 0; j < spatial; ++j) {
                  yrow[j] = yrow[j] > 0.f ? yrow[j] : 0.f;
                }
              }
            }
          });
          continue;
        }
        for (std::int64_t c = 0; c < C; ++c) {
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              float* crow = col + ((c * kh + ky) * kw + kx) * spatial;
              for (std::int64_t oy = 0; oy < OH; ++oy) {
                const std::int64_t iy = oy * sh - ph + ky;
                if (iy < 0 || iy >= H) {
                  std::memset(crow + oy * OW, 0,
                              static_cast<std::size_t>(OW) * sizeof(float));
                  continue;
                }
                const float* irow = xin + (c * H + iy) * W;
                for (std::int64_t ox = 0; ox < OW; ++ox) {
                  const std::int64_t ix = ox * sw - pw + kx;
                  crow[oy * OW + ox] = (ix >= 0 && ix < W) ? irow[ix] : 0.f;
                }
              }
            }
          }
        }
        float* yout = out + img * O * spatial;
        const bool fuse = op.fuse_relu;
        rt::parallel_for(0, O, 4, [&](std::int64_t o0, std::int64_t o1) {
          for (std::int64_t o = o0; o < o1; ++o) {
            float* yrow = yout + o * spatial;
            const float base = bp[o];
            for (std::int64_t j = 0; j < spatial; ++j) yrow[j] = base;
            const float* wrow = wp + o * k;
            for (std::int64_t kk = 0; kk < k; ++kk) {
              const float wv = wrow[kk];
              if (wv == 0.f) continue;
              const float* crow = col + kk * spatial;
              for (std::int64_t j = 0; j < spatial; ++j) yrow[j] += wv * crow[j];
            }
            if (fuse) {
              for (std::int64_t j = 0; j < spatial; ++j) {
                yrow[j] = yrow[j] > 0.f ? yrow[j] : 0.f;
              }
            }
          }
        });
      }
      break;
    }
    case EngineOp::Kind::Linear: {
      const std::int64_t in_f = op.weight.size(1), out_f = op.weight.size(0);
      const std::int64_t rows = shape_numel(op.in_shape) / in_f;
      const float* wp = op.weight.data<float>();
      const float* bp = op.bias.data<float>();
      const bool fuse = op.fuse_relu;
      rt::parallel_for(0, rows, 8, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t i = r0; i < r1; ++i) {
          const float* xrow = in + i * in_f;
          float* yrow = out + i * out_f;
          for (std::int64_t j = 0; j < out_f; ++j) {
            const float* wrow = wp + j * in_f;
            float acc = bp[j];
            for (std::int64_t kk = 0; kk < in_f; ++kk) acc += xrow[kk] * wrow[kk];
            yrow[j] = fuse && acc < 0.f ? 0.f : acc;
          }
        }
      });
      break;
    }
    case EngineOp::Kind::Add: {
      const float* in2 = arena + op.in2_off;
      if (op.fuse_relu) {
        for (std::int64_t i = 0; i < n_out; ++i) {
          const float v = in[i] + in2[i];
          out[i] = v > 0.f ? v : 0.f;
        }
      } else {
        for (std::int64_t i = 0; i < n_out; ++i) out[i] = in[i] + in2[i];
      }
      break;
    }
    case EngineOp::Kind::Relu:
      for (std::int64_t i = 0; i < n_out; ++i) out[i] = in[i] > 0.f ? in[i] : 0.f;
      break;
    case EngineOp::Kind::Sigmoid:
      for (std::int64_t i = 0; i < n_out; ++i) out[i] = 1.f / (1.f + std::exp(-in[i]));
      break;
    case EngineOp::Kind::Tanh:
      for (std::int64_t i = 0; i < n_out; ++i) out[i] = std::tanh(in[i]);
      break;
    case EngineOp::Kind::MaxPool: {
      const std::int64_t C = op.in_shape[0] * op.in_shape[1];
      const std::int64_t H = op.in_shape[2], W = op.in_shape[3];
      const std::int64_t OH = op.out_shape[2], OW = op.out_shape[3];
      for (std::int64_t p = 0; p < C; ++p) {
        const float* ip = in + p * H * W;
        float* opx = out + p * OH * OW;
        for (std::int64_t oy = 0; oy < OH; ++oy) {
          for (std::int64_t ox = 0; ox < OW; ++ox) {
            float m = -1e30f;
            for (std::int64_t ky = 0; ky < op.kernel[0]; ++ky) {
              const std::int64_t iy = oy * op.stride[0] - op.padding[0] + ky;
              if (iy < 0 || iy >= H) continue;
              for (std::int64_t kx = 0; kx < op.kernel[1]; ++kx) {
                const std::int64_t ix = ox * op.stride[1] - op.padding[1] + kx;
                if (ix < 0 || ix >= W) continue;
                m = std::max(m, ip[iy * W + ix]);
              }
            }
            opx[oy * OW + ox] = m;
          }
        }
      }
      break;
    }
    case EngineOp::Kind::AdaptiveAvgPool: {
      const std::int64_t C = op.in_shape[0] * op.in_shape[1];
      const std::int64_t H = op.in_shape[2], W = op.in_shape[3];
      const std::int64_t OH = op.out_shape[2], OW = op.out_shape[3];
      for (std::int64_t p = 0; p < C; ++p) {
        const float* ip = in + p * H * W;
        float* opx = out + p * OH * OW;
        for (std::int64_t oy = 0; oy < OH; ++oy) {
          const std::int64_t y0 = oy * H / OH, y1 = ((oy + 1) * H + OH - 1) / OH;
          for (std::int64_t ox = 0; ox < OW; ++ox) {
            const std::int64_t x0 = ox * W / OW, x1 = ((ox + 1) * W + OW - 1) / OW;
            float acc = 0.f;
            for (std::int64_t iy = y0; iy < y1; ++iy) {
              for (std::int64_t ix = x0; ix < x1; ++ix) acc += ip[iy * W + ix];
            }
            opx[oy * OW + ox] = acc / static_cast<float>((y1 - y0) * (x1 - x0));
          }
        }
      }
      break;
    }
    case EngineOp::Kind::Identity:
      if (out != in) {
        std::memcpy(out, in, static_cast<std::size_t>(n_out) * sizeof(float));
      }
      break;
  }
}

Tensor Engine::run(const Tensor& input) {
  if (input.sizes() != input_shape_) {
    throw std::invalid_argument(
        "Engine::run: input shape " + shape_str(input.sizes()) +
        " does not match the build shape " + shape_str(input_shape_) +
        " (TRTSim engines are static-shape, like TensorRT)");
  }
  const Tensor ic = input.contiguous();
  std::memcpy(arena_.data() + input_off_, ic.data<float>(),
              static_cast<std::size_t>(ic.numel()) * sizeof(float));
  for (const EngineOp& op : plan_) exec_op(op, arena_.data());
  Tensor out(output_shape_, DType::Float32);
  std::memcpy(out.data<float>(), arena_.data() + output_off_,
              static_cast<std::size_t>(out.numel()) * sizeof(float));
  return out;
}

std::string EngineStats::to_string() const {
  std::ostringstream os;
  os << "TRTSim engine: " << plan_ops << " plan ops, " << fused_batchnorms
     << " folded BNs, " << fused_relus << " fused ReLUs, arena "
     << arena_bytes / 1024 << " KiB (" << static_cast<int>(planner_saving() * 100)
     << "% saved vs " << unplanned_bytes / 1024 << " KiB unplanned), weights "
     << weight_bytes / 1024 << " KiB";
  return os.str();
}

}  // namespace fxcpp::trt
