#include "trt/lower.h"

#include <map>

#include "core/interpreter.h"

namespace fxcpp::trt {

namespace {

// Interpreter that records the input shape flowing into each submodule.
class InputShapeCapture : public fx::Interpreter {
 public:
  using fx::Interpreter::Interpreter;
  std::map<std::string, Shape> input_shapes;

  fx::RtValue run_node(const fx::Node& n) override {
    if (n.op() == fx::Opcode::CallModule && !n.args().empty() &&
        n.args()[0].is_node()) {
      const fx::RtValue v = eval_arg(n.args()[0]);
      if (fx::rt_is_tensor(v)) {
        input_shapes[n.target()] = fx::rt_tensor(v).sizes();
      }
    }
    return fx::Interpreter::run_node(n);
  }
};

}  // namespace

LoweredModel lower_to_trtsim(std::shared_ptr<fx::GraphModule> gm,
                             const Tensor& example_input) {
  // Contiguous runs of (un)supported nodes share a partition.
  std::unordered_map<const fx::Node*, int> part;
  std::map<int, bool> part_supported;
  int cur = -1;
  bool cur_sup = false;
  for (const fx::Node* n : gm->graph().nodes()) {
    if (n->op() == fx::Opcode::Placeholder || n->op() == fx::Opcode::Output ||
        n->op() == fx::Opcode::GetAttr) {
      continue;  // get_attr travels with its consumer inside split_module
    }
    const bool sup = is_supported(*gm, *n);
    if (cur < 0 || sup != cur_sup) {
      ++cur;
      cur_sup = sup;
      part_supported[cur] = sup;
    }
    part[n] = cur;
  }

  fx::SplitResult split = fx::split_module(
      *gm, [&part](const fx::Node& n) { return part.at(&n); });

  // Discover each segment's runtime input shape with one example run.
  InputShapeCapture capture(*split.parent);
  capture.run(std::vector<fx::RtValue>{example_input});

  LoweredModel lowered;
  for (std::size_t i = 0; i < split.submodules.size(); ++i) {
    const std::string& name = split.submodule_names[i];
    auto& sub = split.submodules[i];
    bool compiled = false;
    if (part_supported[static_cast<int>(i)] &&
        sub->graph().placeholders().size() == 1 &&
        capture.input_shapes.count(name)) {
      try {
        auto engine = Engine::build(*sub, capture.input_shapes.at(name));
        lowered.engine_stats.push_back(engine->stats());
        split.parent->root()->set_submodule(
            name, std::make_shared<EngineModule>(std::move(engine)));
        compiled = true;
      } catch (const std::invalid_argument&) {
        // Fall back to eager for this segment.
      }
    }
    if (compiled) ++lowered.engine_segments;
    else ++lowered.eager_segments;
  }
  split.parent->recompile();
  lowered.module = split.parent;
  return lowered;
}

}  // namespace fxcpp::trt
