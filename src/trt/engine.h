// TRTSim — an ahead-of-time graph compiler standing in for NVIDIA TensorRT
// in the paper's Section 6.4 lowering experiment (no GPU exists here; see
// DESIGN.md's substitution table).
//
// It reproduces the *mechanisms* that make an AoT backend beat eager
// per-operator execution, which is the effect Figure 8 measures:
//   * build-time operator fusion: Conv+BN folded into conv weights,
//     ReLU fused into the epilogue of Conv/Linear/Add kernels
//   * static memory planning: liveness-based buffer reuse in one arena,
//     zero allocations at run time (plus a prebuilt im2col scratch)
//   * a flat execution plan: no dispatch, no refcounting, no Python-like
//     interpretation between kernels
//
// Engines are built for a static input shape, exactly like a TensorRT
// engine built for fixed dims.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/graph_module.h"

namespace fxcpp::trt {

// One fused kernel invocation in the execution plan.
struct EngineOp {
  enum class Kind {
    Conv,          // conv2d (+ folded BN) (+ fused ReLU)
    Linear,        // linear (+ fused ReLU)
    Add,           // elementwise add (+ fused ReLU)
    Relu,
    Sigmoid,
    Tanh,
    MaxPool,
    AdaptiveAvgPool,
    Identity,      // flatten/reshape/dropout: logical only, aliases buffers
  };
  Kind kind = Kind::Identity;
  bool fuse_relu = false;

  Shape in_shape, in2_shape, out_shape;
  std::vector<std::int64_t> stride{1, 1}, padding{0, 0}, kernel{1, 1};
  Tensor weight, bias;  // prepared at build time (BN already folded)

  // Arena offsets (floats) of inputs/output; -1 second input = unused.
  std::int64_t in_off = -1, in2_off = -1, out_off = -1;
};

struct EngineStats {
  int plan_ops = 0;
  int fused_batchnorms = 0;
  int fused_relus = 0;
  std::size_t arena_bytes = 0;     // after liveness-based buffer reuse
  std::size_t unplanned_bytes = 0; // sum of all logical buffers (no reuse)
  std::size_t weight_bytes = 0;
  // Memory saved by the static planner (the paper's "memory
  // planning/scheduling" requirement for specialized processors, §6.4).
  double planner_saving() const {
    return unplanned_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(arena_bytes) /
                           static_cast<double>(unplanned_bytes);
  }
  std::string to_string() const;
};

class Engine {
 public:
  // Compile `gm` for a fixed input shape. The source GraphModule and its
  // weights are read, never mutated. Throws std::invalid_argument when the
  // graph contains an unsupported node (use lower_to_trtsim() for
  // auto-splitting instead).
  static std::unique_ptr<Engine> build(fx::GraphModule& gm,
                                       const Shape& input_shape);

  // Execute the plan. `input` must match the build shape.
  Tensor run(const Tensor& input);

  const EngineStats& stats() const { return stats_; }

 private:
  Engine() = default;
  void exec_op(const EngineOp& op, float* arena) const;

  std::vector<EngineOp> plan_;
  std::vector<float> arena_;
  std::vector<float> im2col_;
  Shape input_shape_, output_shape_;
  std::int64_t input_off_ = 0, output_off_ = 0;
  EngineStats stats_;
};

// Is this node lowerable to a TRTSim engine? (The operator-support table
// driving the paper's "automatic splitting of the model based on supported
// operators".)
bool is_supported(const fx::GraphModule& gm, const fx::Node& n);

}  // namespace fxcpp::trt
