#include "analysis/pass_validator.h"

#include <algorithm>
#include <sstream>

#include "core/interpreter.h"
#include "runtime/rng.h"
#include "tensor/tensor.h"

namespace fxcpp::analysis {

namespace {

Tensor random_input(const Shape& shape, rt::Rng& rng) {
  Tensor t = Tensor::zeros(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.normal());
  }
  return t;
}

}  // namespace

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  os << "PassValidator: pre " << pre.count(Severity::Error) << "E/"
     << pre.count(Severity::Warning) << "W, post "
     << post.count(Severity::Error) << "E/" << post.count(Severity::Warning)
     << "W, " << trials << " trial(s), max divergence " << max_divergence
     << " (tolerance " << tolerance << ")";
  os << ", compiled-vs-interpreter " << max_interp_divergence;
  if (!error.empty()) os << ", ERROR: " << error;
  os << (ok() ? " -> OK" : " -> FAILED");
  return os.str();
}

ValidationReport PassValidator::validate(
    fx::GraphModule& gm, const std::function<void(fx::GraphModule&)>& transform,
    const std::vector<Shape>& input_shapes) {
  return validate_rebuild(
      gm,
      [&](fx::GraphModule& m) -> std::shared_ptr<fx::GraphModule> {
        transform(m);
        return nullptr;  // in-place: post module is `gm` itself
      },
      input_shapes);
}

ValidationReport PassValidator::validate_rebuild(
    fx::GraphModule& gm,
    const std::function<std::shared_ptr<fx::GraphModule>(fx::GraphModule&)>&
        transform,
    const std::vector<Shape>& input_shapes) {
  ValidationReport report;
  report.tolerance = opts_.tolerance;

  Verifier verifier;
  report.pre = verifier.verify(gm);

  // Capture pre-transform behavior *before* running the transform: in-place
  // passes mutate the shared module hierarchy (fuse_conv_bn swaps weights),
  // so the original program is unrunnable afterwards.
  rt::Rng rng(opts_.seed);
  std::vector<std::vector<Tensor>> inputs;
  std::vector<Tensor> pre_outputs;
  try {
    for (int t = 0; t < opts_.trials; ++t) {
      std::vector<Tensor> in;
      in.reserve(input_shapes.size());
      for (const Shape& s : input_shapes) in.push_back(random_input(s, rng));
      pre_outputs.push_back(gm.run(in));
      inputs.push_back(std::move(in));
    }
  } catch (const std::exception& e) {
    report.error = std::string("pre-transform execution failed: ") + e.what();
    return report;
  }

  std::shared_ptr<fx::GraphModule> produced;
  try {
    produced = transform(gm);
  } catch (const std::exception& e) {
    report.error = std::string("transform threw: ") + e.what();
    return report;
  }
  fx::GraphModule& post = produced ? *produced : gm;

  report.post = verifier.verify(post);

  try {
    for (std::size_t t = 0; t < inputs.size(); ++t) {
      const Tensor post_out = post.run(inputs[t]);
      report.max_divergence = std::max(
          report.max_divergence, max_abs_diff(pre_outputs[t], post_out));
      if (opts_.check_interpreter) {
        // The tape pre-resolves targets; the Interpreter resolves per node.
        // Agreement means the lowered program matches the IR's meaning.
        fx::Interpreter interp(post);
        std::vector<fx::RtValue> rt(inputs[t].begin(), inputs[t].end());
        const Tensor interp_out = fx::rt_tensor(interp.run(std::move(rt)));
        report.max_interp_divergence = std::max(
            report.max_interp_divergence, max_abs_diff(post_out, interp_out));
      }
      ++report.trials;
    }
  } catch (const std::exception& e) {
    report.error = std::string("post-transform execution failed: ") + e.what();
  }
  return report;
}

}  // namespace fxcpp::analysis
