// Structured lint diagnostics — the analysis subsystem's currency.
//
// The paper keeps transformed programs well-formed through graph.lint() and
// Python name resolution (Sections 4.2-4.4); both fail fast on the first
// problem. Rules here instead *collect* every finding as a Diagnostic so a
// transform author sees all defects of a broken graph at once (the Relay-
// style well-formedness-check layering over a DL IR).
//
// Header-only on purpose: core's Graph::lint() and the analysis Verifier
// share the same rule implementations (see structural_rules.h) without a
// link-time dependency from fxcpp_core onto fxcpp_analysis.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace fxcpp::fx {
class Node;
}

namespace fxcpp::analysis {

enum class Severity { Error, Warning, Info };

inline const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Info: return "info";
  }
  return "?";
}

// One finding: which rule fired, how bad it is, where, and what to do.
struct Diagnostic {
  std::string rule;       // e.g. "structure.use-before-def"
  Severity severity = Severity::Error;
  const fx::Node* node = nullptr;  // offending node (null = graph-level)
  std::string node_name;           // captured so reports outlive the node
  std::string message;
  std::string note;  // optional fix-it hint

  std::string to_string() const {
    std::ostringstream os;
    os << severity_name(severity) << " [" << rule << "]";
    if (!node_name.empty()) os << " at '" << node_name << "'";
    os << ": " << message;
    if (!note.empty()) os << " (note: " << note << ")";
    return os.str();
  }
};

// Append helper used by every rule body.
inline void emit(std::vector<Diagnostic>& out, std::string rule, Severity sev,
                 const fx::Node* node, std::string node_name,
                 std::string message, std::string note = "") {
  Diagnostic d;
  d.rule = std::move(rule);
  d.severity = sev;
  d.node = node;
  d.node_name = std::move(node_name);
  d.message = std::move(message);
  d.note = std::move(note);
  out.push_back(std::move(d));
}

}  // namespace fxcpp::analysis
