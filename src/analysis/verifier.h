// Verifier — rule-based IR verification with multi-diagnostic collection.
//
// Runs an extensible registry of rules over a Graph (structure) or a
// GraphModule (structure + name resolution + metadata) and returns every
// finding as a structured Diagnostic. This is the Relay-style
// well-formedness layer over the fx IR: Graph::lint() throws on the
// error-severity structural subset, the Verifier reports everything.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/graph_module.h"

namespace fxcpp::analysis {

// What a rule sees. `gm` is null when verifying a bare Graph; rules that
// need module/attr resolution or execution skip themselves in that case.
struct RuleContext {
  const fx::Graph& graph;
  const fx::GraphModule* gm = nullptr;
};

struct Rule {
  std::string id;           // "structure.use-before-def", "resolve.kwargs", ...
  Severity severity;        // worst severity the rule can emit
  std::string description;  // one line for the rule table / CLI
  std::function<void(const RuleContext&, std::vector<Diagnostic>&)> check;
};

// Everything one verify() call found.
struct Report {
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return count(Severity::Error) == 0; }
  int count(Severity s) const;
  int count_rule(const std::string& rule_id) const;
  bool has(const std::string& rule_id) const { return count_rule(rule_id) > 0; }
  // Distinct rule ids that fired.
  std::vector<std::string> fired_rules() const;

  // Human-readable listing, one diagnostic per line plus a summary.
  std::string to_string() const;
  // Machine-readable: {"summary": {...}, "diagnostics": [...]}.
  std::string to_json() const;
};

class Verifier {
 public:
  // Installs the default rule set (see default_rules()).
  Verifier();
  // with_defaults=false starts empty (build a custom rule set).
  explicit Verifier(bool with_defaults);

  void add_rule(Rule r);
  // Drop a rule by id (e.g. "structure.dead-code" when verifying mid-pass).
  void disable(const std::string& rule_id);
  const std::vector<Rule>& rules() const { return rules_; }

  // Structure-only verification (rules needing a GraphModule skip).
  Report verify(const fx::Graph& g) const;
  // Full verification: structure + resolution + metadata.
  Report verify(const fx::GraphModule& gm) const;

  // The builtin registry: ~15 rules over structure, resolution, metadata.
  static std::vector<Rule> default_rules();

 private:
  Report run(const RuleContext& ctx) const;
  std::vector<Rule> rules_;
};

// Convenience: full default-rule verification of a GraphModule.
Report verify(const fx::GraphModule& gm);
Report verify(const fx::Graph& g);

}  // namespace fxcpp::analysis
