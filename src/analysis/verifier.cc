#include "analysis/verifier.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <unordered_map>

#include "analysis/race_check.h"
#include "analysis/structural_rules.h"
#include "core/functional.h"
#include "core/memory_plan.h"
#include "core/op_registry.h"
#include "core/parallel_executor.h"
#include "core/plan_cache.h"
#include "passes/shape_prop.h"
#include "passes/type_check.h"

namespace fxcpp::analysis {

using fx::Graph;
using fx::GraphModule;
using fx::Node;
using fx::Opcode;
using fx::OpInfo;
using fx::OpRegistry;

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

int Report::count(Severity s) const {
  int n = 0;
  for (const auto& d : diagnostics) n += d.severity == s ? 1 : 0;
  return n;
}

int Report::count_rule(const std::string& rule_id) const {
  int n = 0;
  for (const auto& d : diagnostics) n += d.rule == rule_id ? 1 : 0;
  return n;
}

std::vector<std::string> Report::fired_rules() const {
  std::vector<std::string> ids;
  for (const auto& d : diagnostics) {
    if (std::find(ids.begin(), ids.end(), d.rule) == ids.end()) {
      ids.push_back(d.rule);
    }
  }
  return ids;
}

std::string Report::to_string() const {
  std::ostringstream os;
  for (const auto& d : diagnostics) os << d.to_string() << "\n";
  os << count(Severity::Error) << " error(s), " << count(Severity::Warning)
     << " warning(s), " << count(Severity::Info) << " info";
  return os.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\n  \"summary\": {\"errors\": " << count(Severity::Error)
     << ", \"warnings\": " << count(Severity::Warning)
     << ", \"infos\": " << count(Severity::Info) << "},\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    os << (i ? ",\n    {" : "\n    {") << "\"rule\": \"" << json_escape(d.rule)
       << "\", \"severity\": \"" << severity_name(d.severity)
       << "\", \"node\": \"" << json_escape(d.node_name) << "\", \"message\": \""
       << json_escape(d.message) << "\", \"note\": \"" << json_escape(d.note)
       << "\"}";
  }
  os << (diagnostics.empty() ? "]\n}" : "\n  ]\n}");
  return os.str();
}

// ---------------------------------------------------------------------------
// Resolution rules — the checks Python name resolution performs implicitly
// when generated fx code is exec'd (Section 4.4); here they run statically
// against OpRegistry and the owning nn::Module hierarchy.
// ---------------------------------------------------------------------------

namespace {

void check_function_targets(const RuleContext& ctx,
                            std::vector<Diagnostic>& out) {
  fx::fn::ensure_registered();
  for (const Node* n : ctx.graph.nodes()) {
    if (n->op() != Opcode::CallFunction) continue;
    if (!OpRegistry::functions().find(n->target())) {
      emit(out, "resolve.function-target", Severity::Error, n, n->name(),
           "call_function target '" + n->target() +
               "' is not registered in OpRegistry::functions()",
           "register it (custom_op) or fix the target string");
    }
  }
}

void check_method_targets(const RuleContext& ctx,
                          std::vector<Diagnostic>& out) {
  fx::fn::ensure_registered();
  for (const Node* n : ctx.graph.nodes()) {
    if (n->op() != Opcode::CallMethod) continue;
    if (!OpRegistry::methods().find(n->target())) {
      emit(out, "resolve.method-target", Severity::Error, n, n->name(),
           "call_method target '" + n->target() +
               "' is not registered in OpRegistry::methods()");
    }
  }
}

void check_kwargs(const RuleContext& ctx, std::vector<Diagnostic>& out) {
  fx::fn::ensure_registered();
  for (const Node* n : ctx.graph.nodes()) {
    if (n->op() != Opcode::CallFunction && n->op() != Opcode::CallMethod) {
      continue;
    }
    const auto& reg = n->op() == Opcode::CallFunction
                          ? OpRegistry::functions()
                          : OpRegistry::methods();
    const OpInfo* info = reg.find(n->target());
    if (!info) continue;  // resolve.*-target already reports this
    for (const auto& [key, value] : n->kwargs()) {
      (void)value;
      if (std::find(info->param_names.begin(), info->param_names.end(), key) ==
          info->param_names.end()) {
        std::string valid;
        for (const auto& p : info->param_names) {
          valid += valid.empty() ? p : ", " + p;
        }
        emit(out, "resolve.kwargs", Severity::Error, n, n->name(),
             "operator '" + n->target() + "' has no parameter named '" + key +
                 "'",
             "valid parameters: " + valid);
      }
    }
    if (!info->param_names.empty() &&
        n->args().size() > info->param_names.size()) {
      emit(out, "resolve.kwargs", Severity::Warning, n, n->name(),
           "operator '" + n->target() + "' takes " +
               std::to_string(info->param_names.size()) +
               " parameters but is called with " +
               std::to_string(n->args().size()) + " positional args");
    }
  }
}

void check_module_paths(const RuleContext& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.gm) return;
  for (const Node* n : ctx.graph.nodes()) {
    if (n->op() != Opcode::CallModule) continue;
    try {
      ctx.gm->resolve_module(n->target());
    } catch (const std::exception& e) {
      emit(out, "resolve.module-path", Severity::Error, n, n->name(),
           "call_module target '" + n->target() +
               "' does not resolve in the module hierarchy: " + e.what(),
           "set_submodule the path or retarget the node");
    }
  }
}

void check_attr_paths(const RuleContext& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.gm) return;
  for (const Node* n : ctx.graph.nodes()) {
    if (n->op() != Opcode::GetAttr) continue;
    try {
      ctx.gm->resolve_attr(n->target());
    } catch (const std::exception& e) {
      emit(out, "resolve.attr-path", Severity::Error, n, n->name(),
           "get_attr target '" + n->target() +
               "' does not resolve to a parameter/buffer: " + e.what());
    }
  }
}

// ---------------------------------------------------------------------------
// Metadata rules — pass-attached shape/dtype annotations must stay
// consistent with what the graph actually computes.
// ---------------------------------------------------------------------------

void check_meta_pairs(const RuleContext& ctx, std::vector<Diagnostic>& out) {
  for (const Node* n : ctx.graph.nodes()) {
    if (n->op() == Opcode::Output) continue;
    const bool has_shape = n->has_meta("shape");
    const bool has_dtype = n->has_meta("dtype");
    if (has_shape != has_dtype) {
      emit(out, "meta.pair", Severity::Warning, n, n->name(),
           std::string("node has meta[\"") +
               (has_shape ? "shape" : "dtype") + "\"] but no meta[\"" +
               (has_shape ? "dtype" : "shape") + "\"]",
           "ShapeProp sets both; partial meta suggests a buggy transform");
    }
  }
}

// Forward dataflow recheck: clone the graph, re-run passes::ShapeProp on the
// clone (zero inputs synthesized from the placeholder annotations), and
// compare each annotated node's recorded shape/dtype against what the data
// actually does. Catches stale meta left behind by rewrites.
void check_stale_meta(const RuleContext& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.gm) return;
  std::vector<Tensor> inputs;
  for (const Node* ph : ctx.graph.placeholders()) {
    if (!ph->has_meta("shape") || !ph->has_meta("dtype")) return;
    inputs.push_back(Tensor::zeros(ph->shape(), ph->dtype()));
  }
  bool any_annotated = false;
  for (const Node* n : ctx.graph.nodes()) {
    if (n->op() != Opcode::Placeholder && n->has_meta("shape")) {
      any_annotated = true;
    }
  }
  if (!any_annotated) return;

  std::unordered_map<const Node*, Node*> node_map;
  std::unique_ptr<Graph> clone = ctx.graph.clone(&node_map);
  // ShapeProp annotates the module it runs over; give it a scratch
  // GraphModule over the same hierarchy so the verified graph stays const.
  GraphModule scratch(ctx.gm->root(), std::move(clone), "VerifierRecheck");
  try {
    passes::shape_prop(scratch, inputs);
  } catch (const std::exception& e) {
    emit(out, "meta.stale", Severity::Info, nullptr, "",
         std::string("shape recheck skipped (graph failed to execute): ") +
             e.what());
    return;
  }
  for (const Node* n : ctx.graph.nodes()) {
    if (n->op() == Opcode::Placeholder || n->op() == Opcode::Output) continue;
    if (!n->has_meta("shape") || !n->has_meta("dtype")) continue;
    const Node* copy = node_map.at(n);
    if (!copy->has_meta("shape")) continue;  // produced a non-tensor
    const Shape& want = std::get<Shape>(copy->meta("shape"));
    const DType want_dt = std::get<DType>(copy->meta("dtype"));
    if (n->shape() != want) {
      emit(out, "meta.stale", Severity::Warning, n, n->name(),
           "meta[\"shape\"] says " + shape_str(n->shape()) +
               " but dataflow recheck infers " + shape_str(want),
           "a transform rewrote this node without clearing its meta");
    } else if (n->dtype() != want_dt) {
      emit(out, "meta.stale", Severity::Warning, n, n->name(),
           std::string("meta[\"dtype\"] says ") + dtype_name(n->dtype()) +
               " but dataflow recheck infers " + dtype_name(want_dt),
           "a transform rewrote this node without clearing its meta");
    }
  }
}

// Gradual type check (passes::type_check) driven by the placeholder
// annotations: known-vs-known shape conflicts are real bugs.
void check_gradual_types(const RuleContext& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.gm) return;
  std::vector<std::optional<passes::SymShape>> in_types;
  bool any_known = false;
  for (const Node* ph : ctx.graph.placeholders()) {
    if (ph->has_meta("shape")) {
      in_types.emplace_back(passes::sym_of(ph->shape()));
      any_known = true;
    } else {
      in_types.emplace_back(std::nullopt);
    }
  }
  if (!any_known) return;

  std::unordered_map<const Node*, Node*> node_map;
  std::unique_ptr<Graph> clone = ctx.graph.clone(&node_map);
  std::unordered_map<const Node*, const Node*> back;
  for (const auto& [src, copy] : node_map) back[copy] = src;
  GraphModule scratch(ctx.gm->root(), std::move(clone), "VerifierTypeCheck");
  try {
    const passes::TypeCheckResult res = passes::type_check(scratch, in_types);
    for (const auto& err : res.errors) {
      const Node* orig =
          err.node && back.count(err.node) ? back.at(err.node) : nullptr;
      emit(out, "meta.type-conflict", Severity::Error, orig,
           orig ? orig->name() : "", err.message);
    }
  } catch (const std::exception&) {
    // Unresolvable targets/attrs: the resolve.* rules already report those.
  }
}

// ---------------------------------------------------------------------------
// Schedule rule — the inter-op executor's dependency-counted schedule
// (core/parallel_executor.h) must cover every tape instruction exactly once:
// a Kahn simulation from the initial ready set must visit all instructions,
// none twice. A violation means the use-def chains and the compiled tape
// disagree (cycle, dangling register, or double-write).
// ---------------------------------------------------------------------------

void check_schedule_coverage(const RuleContext& ctx,
                             std::vector<Diagnostic>& out) {
  if (!ctx.gm || !ctx.gm->compiled()) return;
  const fx::CompiledGraph& cg = ctx.gm->compiled_graph();
  const fx::Schedule sched = fx::build_schedule(cg);
  const auto& instrs = cg.instrs();

  std::vector<int> deps = sched.dep_count;
  std::vector<int> visits(instrs.size(), 0);
  std::vector<int> queue = sched.initial_ready;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int i = queue[head];
    if (++visits[static_cast<std::size_t>(i)] > 1) {
      const Node* n = instrs[static_cast<std::size_t>(i)].node;
      emit(out, "schedule.coverage", Severity::Error, n, n ? n->name() : "",
           "instruction scheduled more than once",
           "duplicate ready-queue entry: a register has two producers");
      continue;
    }
    for (int succ : sched.succs[static_cast<std::size_t>(i)]) {
      if (--deps[static_cast<std::size_t>(succ)] == 0) queue.push_back(succ);
    }
  }
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (visits[i] == 0) {
      const Node* n = instrs[i].node;
      emit(out, "schedule.coverage", Severity::Error, n, n ? n->name() : "",
           "instruction never becomes ready under the dependency-counted "
           "schedule",
           "dependency cycle or dangling register read in the tape");
    }
  }
}

// ---------------------------------------------------------------------------
// Race rules — beyond coverage, the schedule must *order* every conflicting
// pair of register / arena accesses (analysis/race_check.h). The rules run
// the checkers against freshly built schedules: schedule.race proves the
// dependency-counted schedule itself, plan.war-ordering proves the
// anti-dependency-augmented schedule a planned parallel run executes under.
// ---------------------------------------------------------------------------

void check_schedule_race_rule(const RuleContext& ctx,
                              std::vector<Diagnostic>& out) {
  if (!ctx.gm || !ctx.gm->compiled()) return;
  const fx::CompiledGraph& cg = ctx.gm->compiled_graph();
  check_schedule_race(cg, fx::build_schedule(cg), out);
  if (ctx.gm->has_plan() &&
      ctx.gm->plan()->intervals.size() == cg.instrs().size()) {
    // The planned schedule only adds edges, but check it anyway: an edge
    // bug there would race even on conflict-free register traffic.
    check_schedule_race(cg, fx::build_planned_schedule(cg, *ctx.gm->plan()),
                        out);
  }
}

void check_plan_war_rule(const RuleContext& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.gm || !ctx.gm->compiled() || !ctx.gm->has_plan()) return;
  const fx::CompiledGraph& cg = ctx.gm->compiled_graph();
  const fx::TapePlan& plan = *ctx.gm->plan();
  if (plan.intervals.size() != cg.instrs().size()) return;  // plan.aliasing
  check_plan_war_ordering(cg, fx::build_planned_schedule(cg, plan), plan, out);
}

// ---------------------------------------------------------------------------
// Plan-aliasing rule — an installed memory plan (passes::compile_planned)
// must be internally sound: no two simultaneously-live planned intervals may
// overlap in the arena, every slot must lie inside the arena, and can_alias
// in-place reuse may only target a planned input that is dead by the
// aliasing instruction. The planner establishes these invariants; this rule
// re-derives them from the plan alone so a transform that edits the tape
// under a stale plan (or a future planner bug) is caught before the plan
// hands kernels overlapping memory.
// ---------------------------------------------------------------------------

void check_plan_aliasing(const RuleContext& ctx, std::vector<Diagnostic>& out) {
  if (!ctx.gm || !ctx.gm->has_plan() || !ctx.gm->compiled()) return;
  const fx::TapePlan& plan = *ctx.gm->plan();
  const auto& instrs = ctx.gm->compiled_graph().instrs();
  const auto& ivs = plan.intervals;
  if (ivs.size() != instrs.size()) {
    emit(out, "plan.aliasing", Severity::Error, nullptr, "",
         "plan has " + std::to_string(ivs.size()) + " intervals but the tape "
         "has " + std::to_string(instrs.size()) + " instructions",
         "the module was recompiled under a stale plan; re-run "
         "passes::compile_planned");
    return;
  }
  // Resolve in-place alias chains to their root slot and validate each link.
  std::vector<int> root(ivs.size());
  for (std::size_t i = 0; i < ivs.size(); ++i) root[i] = static_cast<int>(i);
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    if (!ivs[i].in_place) continue;
    const fx::Node* n = instrs[i].node;
    const int j = ivs[i].alias_of;
    if (j < 0 || static_cast<std::size_t>(j) >= i || !ivs[i].planned ||
        !ivs[static_cast<std::size_t>(j)].planned) {
      emit(out, "plan.aliasing", Severity::Error, n, n ? n->name() : "",
           "in-place interval " + std::to_string(i) +
               " has invalid alias target " + std::to_string(j),
           "alias_of must name an earlier planned interval");
      continue;
    }
    const auto& tgt = ivs[static_cast<std::size_t>(j)];
    if (ivs[i].offset != tgt.offset) {
      emit(out, "plan.aliasing", Severity::Error, n, n ? n->name() : "",
           "in-place interval " + std::to_string(i) +
               " does not share its target's arena offset",
           "can_alias reuse must write the exact slot the input occupies");
    }
    if (tgt.last_use > ivs[i].def) {
      emit(out, "plan.aliasing", Severity::Error, n, n ? n->name() : "",
           "in-place interval " + std::to_string(i) + " overwrites interval " +
               std::to_string(j) + " which is still read at instruction " +
               std::to_string(tgt.last_use),
           "can_alias reuse requires the input to be dead at the aliasing "
           "instruction");
    }
    root[i] = root[static_cast<std::size_t>(j)];
  }
  // Pairwise: overlapping arena byte ranges require disjoint lifetimes
  // (except within one alias chain, whose overlap is the point).
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    const auto& a = ivs[i];
    if (!a.planned) continue;
    if (a.offset + a.padded > plan.arena_bytes) {
      const fx::Node* n = instrs[i].node;
      emit(out, "plan.aliasing", Severity::Error, n, n ? n->name() : "",
           "interval " + std::to_string(i) + " extends past the arena (" +
               std::to_string(a.offset + a.padded) + " > " +
               std::to_string(plan.arena_bytes) + " bytes)");
    }
    for (std::size_t j = i + 1; j < ivs.size(); ++j) {
      const auto& b = ivs[j];
      if (!b.planned || root[i] == root[j]) continue;
      const bool bytes_overlap =
          a.offset < b.offset + b.padded && b.offset < a.offset + a.padded;
      const bool live_overlap = a.def <= b.last_use && b.def <= a.last_use;
      if (bytes_overlap && live_overlap) {
        const fx::Node* n = instrs[j].node;
        emit(out, "plan.aliasing", Severity::Error, n, n ? n->name() : "",
             "intervals " + std::to_string(i) + " and " + std::to_string(j) +
                 " are simultaneously live but share arena bytes",
             "liveness/first-fit disagreement: the planned run would hand two "
             "kernels overlapping memory");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Guard-coverage rule — a GraphModule whose placeholders carry shape meta
// should have a GuardSpec per annotated placeholder, and the specs should
// agree with the meta. Transforms invalidate stale shape meta (PR 1) but
// cannot see guards generated earlier, so after a transform + ShapeProp the
// guards silently describe the *old* program; this rule is the detector.
// ---------------------------------------------------------------------------

void check_guard_coverage(const RuleContext& ctx,
                          std::vector<Diagnostic>& out) {
  if (!ctx.gm) return;
  const auto& guards = ctx.gm->guards();
  std::vector<const Node*> annotated;
  std::vector<Node*> phs;
  for (Node* p : ctx.graph.nodes()) {
    if (p->op() != Opcode::Placeholder) continue;
    phs.push_back(p);
    if (p->has_shape() && p->has_meta("dtype")) annotated.push_back(p);
  }
  if (annotated.empty() && guards.empty()) return;
  if (guards.empty()) {
    emit(out, "guards.coverage", Severity::Warning, nullptr, "",
         std::to_string(annotated.size()) +
             " placeholder(s) carry shape meta but the module has no "
             "generated GuardSpecs",
         "call resilience::generate_guards(gm) after ShapeProp to install "
         "input guards");
    return;
  }
  for (const Node* p : annotated) {
    const fx::GuardSpec* spec = nullptr;
    for (const auto& g : guards) {
      if (g.placeholder == p->name()) {
        spec = &g;
        break;
      }
    }
    if (!spec) {
      emit(out, "guards.coverage", Severity::Warning, p, p->name(),
           "placeholder has shape meta but no GuardSpec",
           "guards were generated before this placeholder was annotated; "
           "regenerate with resilience::generate_guards");
      continue;
    }
    if (spec->shape != p->shape() || spec->dtype != p->dtype()) {
      emit(out, "guards.coverage", Severity::Warning, p, p->name(),
           "GuardSpec is stale: expects shape " + shape_str(spec->shape) +
               " dtype " + dtype_name(spec->dtype) + " but meta says shape " +
               shape_str(p->shape()) + " dtype " + dtype_name(p->dtype()),
           "a transform or ShapeProp changed this placeholder after guards "
           "were generated; regenerate with resilience::generate_guards");
    }
  }
  for (const auto& g : guards) {
    bool exists = false;
    for (const Node* p : phs) exists = exists || p->name() == g.placeholder;
    if (!exists) {
      emit(out, "guards.coverage", Severity::Warning, nullptr, g.placeholder,
           "GuardSpec references placeholder '" + g.placeholder +
               "' which no longer exists in the graph",
           "a transform removed or renamed the placeholder; regenerate "
           "guards");
    }
  }
}

// ---------------------------------------------------------------------------
// Plan-cache coherence rule — every entry in an attached PlanCache must be a
// plan the *current* tape can run, and its guards must pin every dimension
// its arena layout depends on: an interval's slot size was computed from
// shape meta that flowed from the placeholders it transitively reads, so any
// such placeholder without a named GuardSpec means the cache key does not
// actually determine the layout (a differently-shaped input could hash to
// the same entry and silently mis-place). The entry's signature must also
// re-derive from its guards, so key and contract cannot drift apart.
// ---------------------------------------------------------------------------

void check_plan_cache_coherence(const RuleContext& ctx,
                                std::vector<Diagnostic>& out) {
  if (!ctx.gm || !ctx.gm->compiled()) return;
  const std::shared_ptr<fx::PlanCache> cache = ctx.gm->plan_cache();
  if (!cache) return;
  const fx::CompiledGraph& cg = ctx.gm->compiled_graph();
  const auto& instrs = cg.instrs();
  const std::size_t num_ph = cg.input_regs().size();

  // Transitive placeholder ancestry per instruction, walked over the tape's
  // pre-decoded register references (the same dataflow the kernels execute).
  std::unordered_map<int, std::size_t> ph_of_reg;
  for (std::size_t p = 0; p < num_ph; ++p) {
    ph_of_reg[cg.input_regs()[p]] = p;
  }
  std::unordered_map<int, std::size_t> producer;  // reg -> defining instr
  std::vector<std::vector<bool>> deps(instrs.size(),
                                      std::vector<bool>(num_ph, false));
  std::function<void(const fx::Instr::ArgExpr&, std::vector<bool>&)> mark =
      [&](const fx::Instr::ArgExpr& e, std::vector<bool>& d) {
        if (e.kind == fx::Instr::ArgExpr::Kind::Reg) {
          const auto ph = ph_of_reg.find(e.reg);
          if (ph != ph_of_reg.end()) {
            d[ph->second] = true;
            return;
          }
          const auto pr = producer.find(e.reg);
          if (pr != producer.end()) {
            const std::vector<bool>& src = deps[pr->second];
            for (std::size_t k = 0; k < num_ph; ++k) {
              if (src[k]) d[k] = true;
            }
          }
          return;
        }
        for (const auto& item : e.items) mark(item, d);
      };
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    for (const auto& a : instrs[i].args) mark(a, deps[i]);
    if (instrs[i].out_reg >= 0) {
      producer[instrs[i].out_reg] = i;
    }
  }

  for (const auto& entry : cache->entries()) {
    const fx::TapePlan& plan = *entry->plan();
    const std::string& sig = entry->signature();
    if (plan.intervals.size() != instrs.size()) {
      emit(out, "plan.cache-coherence", Severity::Error, nullptr, sig,
           "cached plan '" + sig + "' has " +
               std::to_string(plan.intervals.size()) +
               " intervals but the tape has " +
               std::to_string(instrs.size()) + " instructions",
           "the module was recompiled without clearing its plan cache; "
           "recompile() clears it — do not re-insert stale plans");
      continue;
    }
    if (plan.guards.size() != num_ph) {
      emit(out, "plan.cache-coherence", Severity::Error, nullptr, sig,
           "cached plan '" + sig + "' carries " +
               std::to_string(plan.guards.size()) + " guard spec(s) for " +
               std::to_string(num_ph) + " placeholder(s)",
           "plans must pin every input; re-plan via passes::plan_tape");
      continue;
    }
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      if (!plan.intervals[i].planned) continue;
      for (std::size_t p = 0; p < num_ph; ++p) {
        if (!deps[i][p] || !plan.guards[p].placeholder.empty()) continue;
        const Node* n = instrs[i].node;
        const Node* pn = cg.input_nodes()[p];
        emit(out, "plan.cache-coherence", Severity::Error, n,
             n ? n->name() : "",
             "cached plan '" + sig + "' gives instruction " +
                 std::to_string(i) + " an arena slot whose size depends on "
                 "placeholder '" + (pn ? pn->name() : "?") +
                 "', but that placeholder has no named guard",
             "every dimension a cached layout depends on must be pinned by "
             "the entry's guards, or the cache key under-determines it");
      }
    }
    // Key <-> contract cross-check: re-deriving the signature from the
    // plan's own guards must give the key the entry is filed under (modulo
    // bucketing, which signature_of_guards applies identically).
    const std::string gsig = cache->signature_of_guards(plan.guards);
    if (!gsig.empty() && gsig != sig) {
      emit(out, "plan.cache-coherence", Severity::Error, nullptr, sig,
           "cache entry is keyed '" + sig + "' but its plan's guards derive "
           "signature '" + gsig + "'",
           "the entry would serve inputs its plan was never specialized "
           "for; evict and re-plan");
    }
  }
}

Rule structural_rule(const char* id, Severity sev, const char* desc,
                     void (*fn)(const Graph&, std::vector<Diagnostic>&)) {
  return Rule{id, sev, desc,
              [fn](const RuleContext& ctx, std::vector<Diagnostic>& out) {
                fn(ctx.graph, out);
              }};
}

}  // namespace

// ---------------------------------------------------------------------------
// Verifier
// ---------------------------------------------------------------------------

std::vector<Rule> Verifier::default_rules() {
  std::vector<Rule> r;
  r.push_back(structural_rule("structure.duplicate-name", Severity::Error,
                              "node names are unique", rules::duplicate_names));
  r.push_back(structural_rule("structure.placeholders-first", Severity::Error,
                              "placeholders precede compute nodes",
                              rules::placeholders_first));
  r.push_back(structural_rule("structure.output-last", Severity::Error,
                              "single output node, last in the list",
                              rules::output_last));
  r.push_back(structural_rule("structure.missing-output", Severity::Warning,
                              "graph has an output node",
                              rules::missing_output));
  r.push_back(structural_rule("structure.use-before-def", Severity::Error,
                              "arguments reference earlier definitions",
                              rules::use_before_def));
  r.push_back(structural_rule("structure.stale-use-def", Severity::Error,
                              "use-def chains consistent in both directions",
                              rules::use_def_consistency));
  r.push_back(structural_rule("structure.unused-placeholder", Severity::Warning,
                              "every placeholder has users",
                              rules::unused_placeholders));
  r.push_back(structural_rule("structure.dead-code", Severity::Info,
                              "no pure nodes without users", rules::dead_code));
  r.push_back(Rule{"resolve.function-target", Severity::Error,
                   "call_function targets exist in OpRegistry::functions()",
                   check_function_targets});
  r.push_back(Rule{"resolve.method-target", Severity::Error,
                   "call_method targets exist in OpRegistry::methods()",
                   check_method_targets});
  r.push_back(Rule{"resolve.kwargs", Severity::Error,
                   "kwarg names and arity match the operator schema",
                   check_kwargs});
  r.push_back(Rule{"resolve.module-path", Severity::Error,
                   "call_module paths resolve in the module hierarchy",
                   check_module_paths});
  r.push_back(Rule{"resolve.attr-path", Severity::Error,
                   "get_attr paths resolve to parameters/buffers",
                   check_attr_paths});
  r.push_back(Rule{"meta.pair", Severity::Warning,
                   "shape/dtype meta always set together", check_meta_pairs});
  r.push_back(Rule{"meta.stale", Severity::Warning,
                   "shape/dtype meta consistent with a dataflow recheck",
                   check_stale_meta});
  r.push_back(Rule{"meta.type-conflict", Severity::Error,
                   "gradual type check over annotated placeholders",
                   check_gradual_types});
  r.push_back(Rule{"schedule.coverage", Severity::Error,
                   "parallel schedule covers every tape instruction exactly "
                   "once (compiled GraphModules)",
                   check_schedule_coverage});
  r.push_back(Rule{"guards.coverage", Severity::Warning,
                   "annotated placeholders have fresh GuardSpecs "
                   "(stale-guard detection after transforms)",
                   check_guard_coverage});
  r.push_back(Rule{"plan.aliasing", Severity::Error,
                   "installed memory plan is sound: no simultaneously-live "
                   "arena overlap, in-place reuse only of dead inputs",
                   check_plan_aliasing});
  r.push_back(Rule{"schedule.race", Severity::Error,
                   "every conflicting register access pair is ordered by a "
                   "happens-before path through the schedule",
                   check_schedule_race_rule});
  r.push_back(Rule{"plan.war-ordering", Severity::Error,
                   "planned intervals sharing arena bytes are ordered after "
                   "the earlier interval's readers (anti-dependencies)",
                   check_plan_war_rule});
  r.push_back(Rule{"plan.cache-coherence", Severity::Error,
                   "every cached plan matches the current tape and its "
                   "guards pin every dimension the arena layout depends on",
                   check_plan_cache_coherence});
  return r;
}

Verifier::Verifier() : rules_(default_rules()) {}

Verifier::Verifier(bool with_defaults) {
  if (with_defaults) rules_ = default_rules();
}

void Verifier::add_rule(Rule r) { rules_.push_back(std::move(r)); }

void Verifier::disable(const std::string& rule_id) {
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&](const Rule& r) { return r.id == rule_id; }),
               rules_.end());
}

Report Verifier::run(const RuleContext& ctx) const {
  Report report;
  for (const Rule& r : rules_) r.check(ctx, report.diagnostics);
  return report;
}

Report Verifier::verify(const Graph& g) const {
  return run(RuleContext{g, nullptr});
}

Report Verifier::verify(const GraphModule& gm) const {
  return run(RuleContext{gm.graph(), &gm});
}

Report verify(const GraphModule& gm) { return Verifier().verify(gm); }
Report verify(const Graph& g) { return Verifier().verify(g); }

}  // namespace fxcpp::analysis
