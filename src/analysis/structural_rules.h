// Structural well-formedness rules over the 6-opcode IR.
//
// These are the invariants Graph::lint() historically enforced (unique
// names, placeholders first, single trailing output, defs before uses,
// consistent use-def chains) plus hygiene findings (unused placeholders,
// dead pure nodes). Each rule appends Diagnostics instead of throwing, so a
// single pass reports every defect.
//
// Header-only and core-types-only: both Graph::lint() (fxcpp_core) and the
// analysis Verifier (fxcpp_analysis) call these exact functions, so the
// throwing and collecting APIs can never disagree about structure.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/graph.h"

namespace fxcpp::analysis::rules {

// structure.duplicate-name — node names must be unique within the graph.
inline void duplicate_names(const fx::Graph& g, std::vector<Diagnostic>& out) {
  std::set<std::string> seen;
  for (const fx::Node* n : g.nodes()) {
    if (!seen.insert(n->name()).second) {
      emit(out, "structure.duplicate-name", Severity::Error, n, n->name(),
           "duplicate node name '" + n->name() + "'",
           "rename via Graph::unique_name before inserting");
    }
  }
}

// structure.placeholders-first — all placeholders precede compute nodes.
inline void placeholders_first(const fx::Graph& g,
                               std::vector<Diagnostic>& out) {
  bool saw_compute = false;
  for (const fx::Node* n : g.nodes()) {
    if (n->op() == fx::Opcode::Placeholder) {
      if (saw_compute) {
        emit(out, "structure.placeholders-first", Severity::Error, n,
             n->name(),
             "placeholder '" + n->name() + "' after non-placeholder nodes",
             "move_before the first compute node");
      }
    } else {
      saw_compute = true;
    }
  }
}

// structure.output-last — at most one output node, it must be last, and the
// graph's cached output pointer must agree with the node list.
inline void output_last(const fx::Graph& g, std::vector<Diagnostic>& out) {
  const fx::Node* out_node = nullptr;
  for (const fx::Node* n : g.nodes()) {
    if (out_node) {
      emit(out, "structure.output-last", Severity::Error, n, n->name(),
           "node '" + n->name() + "' appears after the output node",
           "insert new nodes before the output");
    }
    if (n->op() == fx::Opcode::Output) out_node = n;
  }
  if (g.output_node() && out_node != g.output_node()) {
    emit(out, "structure.output-last", Severity::Error, g.output_node(),
         g.output_node()->name(),
         "cached output node disagrees with the node list");
  }
}

// structure.missing-output — a graph without an output computes nothing.
inline void missing_output(const fx::Graph& g, std::vector<Diagnostic>& out) {
  for (const fx::Node* n : g.nodes()) {
    if (n->op() == fx::Opcode::Output) return;
  }
  emit(out, "structure.missing-output", Severity::Warning, nullptr, "",
       "graph has no output node",
       "call Graph::output() with the returned value");
}

// structure.use-before-def — every Node argument must reference a node
// defined earlier in the insertion order (the IR is a basic block).
inline void use_before_def(const fx::Graph& g, std::vector<Diagnostic>& out) {
  std::set<const fx::Node*> seen;
  for (const fx::Node* n : g.nodes()) {
    for (const fx::Node* in : n->input_nodes()) {
      if (!seen.count(in)) {
        emit(out, "structure.use-before-def", Severity::Error, n, n->name(),
             "node '" + n->name() + "' uses '" + in->name() +
                 "' before its definition",
             "move_before the use or re-topologize");
      }
    }
    seen.insert(n);
  }
}

// structure.stale-use-def — users() and input_nodes() must be mutually
// consistent in both directions (transforms that bypass set_args break this).
inline void use_def_consistency(const fx::Graph& g,
                                std::vector<Diagnostic>& out) {
  for (const fx::Node* n : g.nodes()) {
    for (fx::Node* in : n->input_nodes()) {
      if (!in->users().count(const_cast<fx::Node*>(n))) {
        emit(out, "structure.stale-use-def", Severity::Error, n, n->name(),
             "'" + in->name() + "' is an input of '" + n->name() +
                 "' but does not list it as a user");
      }
    }
    for (const fx::Node* u : n->users()) {
      bool found = false;
      for (const fx::Node* in : u->input_nodes()) {
        if (in == n) found = true;
      }
      if (!found) {
        emit(out, "structure.stale-use-def", Severity::Error, n, n->name(),
             "stale user entry: '" + u->name() + "' is recorded as a user of '" +
                 n->name() + "' but no longer references it");
      }
    }
  }
}

// structure.unused-placeholder — an input nobody reads (often a leftover
// from a rewrite that rerouted the graph away from it).
inline void unused_placeholders(const fx::Graph& g,
                                std::vector<Diagnostic>& out) {
  for (const fx::Node* n : g.placeholders()) {
    if (n->users().empty()) {
      emit(out, "structure.unused-placeholder", Severity::Warning, n,
           n->name(), "placeholder '" + n->name() + "' has no users",
           "drop the input or erase the placeholder");
    }
  }
}

// structure.dead-code — pure compute node with no users; harmless (the IR
// has no side effects) but wasted work until eliminate_dead_code() runs.
inline void dead_code(const fx::Graph& g, std::vector<Diagnostic>& out) {
  for (const fx::Node* n : g.nodes()) {
    if (n->op() == fx::Opcode::Placeholder || n->op() == fx::Opcode::Output) {
      continue;
    }
    if (n->users().empty()) {
      emit(out, "structure.dead-code", Severity::Info, n, n->name(),
           "node '" + n->name() + "' has no users",
           "Graph::eliminate_dead_code() removes it");
    }
  }
}

// Run every structural rule. Graph::lint() throws on the Error-severity
// subset of exactly this list; the Verifier reports all of it.
inline void check_structure(const fx::Graph& g, std::vector<Diagnostic>& out) {
  duplicate_names(g, out);
  placeholders_first(g, out);
  output_last(g, out);
  missing_output(g, out);
  use_before_def(g, out);
  use_def_consistency(g, out);
  unused_placeholders(g, out);
  dead_code(g, out);
}

}  // namespace fxcpp::analysis::rules
