// Dataflow analysis framework over the fx IR.
//
// The paper's analyses (shape_prop, Section 6.3) exploit the basic-block IR:
// one forward transfer per node, no join, no fixpoint. This framework keeps
// that fast path — on a DAG every analysis below converges in one changing
// pass plus one confirming pass — but is written as a real optimistic
// fixpoint engine (per-node fact maps, a lattice join, iterate-to-stable),
// so the same analyses keep working when `prim::If`/`prim::Loop` style
// control flow (src/jit, Figure 4) introduces back edges.
//
// Four concrete analyses are hosted here and consumed by real passes:
//   - ConstnessAnalysis   -> passes::constant_folding
//   - AliasAnalysis       -> passes::plan_tape (via alias_summary) and the
//                            plan.war-ordering verifier rule
//   - LivenessAnalysis    -> cross-checked against the core last_use_index
//                            liveness shared by codegen / tape / Interpreter
//   - ReachabilityAnalysis-> dead-code facts (mirrors eliminate_dead_code)
//
// analyze_graph() bundles all four into per-node facts for fxlint --analyze.
//
// This header depends only on core (+nn in the .cc for module
// classification) so that passes can consume analyses without a cycle:
// fxcpp_passes -> fxcpp_dataflow -> fxcpp_core.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/graph.h"
#include "core/graph_module.h"

namespace fxcpp::analysis {

// ---------------------------------------------------------------------------
// Generic framework
// ---------------------------------------------------------------------------

enum class Direction { Forward, Backward };

// A monotone dataflow analysis: facts start at `initial` (the lattice
// bottom), every round recomputes each node's fact with `transfer` and
// accumulates it into the map with `join`, and iteration stops when a full
// round changes nothing. On the repo's basic-block IR the node list is a
// topological order, so a Forward analysis stabilizes after one changing
// round; `iterations()` reports the confirming round too (== 2 on a DAG).
template <typename Fact>
class DataflowAnalysis {
 public:
  using FactMap = std::unordered_map<const fx::Node*, Fact>;

  virtual ~DataflowAnalysis() = default;

  virtual Direction direction() const { return Direction::Forward; }
  // Lattice bottom for this node (before any transfer has run).
  virtual Fact initial(const fx::Node& n) const {
    (void)n;
    return Fact{};
  }
  // Recompute n's fact from the current map (reads predecessor facts for a
  // Forward analysis, successor facts for a Backward one).
  virtual Fact transfer(const fx::Node& n, const FactMap& facts) const = 0;
  // Merge `src` into `dst`; returns true when `dst` changed. Must be
  // monotone for the fixpoint loop to terminate.
  virtual bool join(Fact& dst, const Fact& src) const = 0;

  FactMap run(const fx::Graph& g, int max_iterations = 64) {
    const std::vector<fx::Node*> order = g.nodes();
    FactMap facts;
    facts.reserve(order.size());
    for (const fx::Node* n : order) facts.emplace(n, initial(*n));

    iterations_ = 0;
    converged_ = false;
    const bool forward = direction() == Direction::Forward;
    for (int round = 0; round < max_iterations; ++round) {
      ++iterations_;
      bool changed = false;
      auto visit = [&](const fx::Node* n) {
        Fact next = transfer(*n, facts);
        changed = join(facts.at(n), next) || changed;
      };
      if (forward) {
        for (const fx::Node* n : order) visit(n);
      } else {
        for (auto it = order.rbegin(); it != order.rend(); ++it) visit(*it);
      }
      if (!changed) {
        converged_ = true;
        break;
      }
    }
    return facts;
  }

  // Rounds executed by the last run(), including the confirming round.
  int iterations() const { return iterations_; }
  bool converged() const { return converged_; }

 private:
  int iterations_ = 0;
  bool converged_ = false;
};

// ---------------------------------------------------------------------------
// Constness — which values are compile-time constants
// ---------------------------------------------------------------------------

// Three-point lattice Unknown < Const < NonConst: facts start optimistic
// (Unknown) and only ever move down, so a loop-carried join terminates.
enum class Const : std::uint8_t { Unknown, Const, NonConst };

struct ConstFact {
  Const value = Const::Unknown;
  bool is_const() const { return value == Const::Const; }
};

// get_attr reads are constant (module state is fixed at compile time; with a
// GraphModule the target must actually resolve, or nothing could bake it),
// and calls to pure registered ops (OpInfo::pure) with all-constant inputs
// fold through. Placeholders, impure ops (dropout's RNG), unregistered
// targets, and module calls (potentially stateful) are non-constant.
class ConstnessAnalysis : public DataflowAnalysis<ConstFact> {
 public:
  explicit ConstnessAnalysis(const fx::GraphModule* gm = nullptr) : gm_(gm) {}

  ConstFact transfer(const fx::Node& n, const FactMap& facts) const override;
  bool join(ConstFact& dst, const ConstFact& src) const override;

 private:
  const fx::GraphModule* gm_;
};

// Convenience: node -> is_const over one run.
std::unordered_map<const fx::Node*, bool> constant_nodes(
    const fx::Graph& g, const fx::GraphModule* gm = nullptr);

// ---------------------------------------------------------------------------
// Alias sets — which producers' storage a value may share
// ---------------------------------------------------------------------------

// nn modules whose forward always materializes fresh storage for its result.
// Extracted from passes/memory_planner so the planner and this analysis
// share one classification and can never disagree.
bool module_output_is_fresh(const nn::Module* m);

struct AliasFact {
  // Producer nodes whose storage this value may alias. A fresh kernel
  // output's set is {self}; a view's set is the union of its inputs' sets.
  // Empty + external means "aliases only storage born outside the graph"
  // (placeholder / get_attr / module state), which no plan ever owns.
  std::vector<const fx::Node*> bases;
  bool fresh = false;     // kernel materializes new storage for this value
  bool external = false;  // may alias storage not produced by graph nodes
};

class AliasAnalysis : public DataflowAnalysis<AliasFact> {
 public:
  explicit AliasAnalysis(const fx::GraphModule* gm = nullptr) : gm_(gm) {}

  AliasFact transfer(const fx::Node& n, const FactMap& facts) const override;
  bool join(AliasFact& dst, const AliasFact& src) const override;

 private:
  const fx::GraphModule* gm_;
};

// Alias facts flattened to tape coordinates: entry i describes the i-th
// non-placeholder node in graph order, which recompile() lowers to tape
// instruction i. This is exactly the planner's former Pass 1 (base sets,
// escape, alias-extended lifetimes, reader lists), now derived from
// AliasAnalysis so plan_tape and the analysis cannot diverge.
struct AliasSummary {
  std::vector<const fx::Node*> order;  // entry -> node (tape order)
  std::unordered_map<const fx::Node*, int> index;  // node -> entry
  std::vector<char> fresh;     // entry's value is freshly allocated
  std::vector<char> external;  // entry's value may alias external storage
  std::vector<char> escaped;   // entry's storage is read by Output
  std::vector<std::vector<int>> bases;    // per entry: base entries
  std::vector<int> last_use;              // alias-extended lifetime (>= self)
  std::vector<std::vector<int>> readers;  // entries reading this storage
  int iterations = 0;                     // fixpoint rounds taken

  // Is `entry` a direct fresh output (not a view, not external)? The
  // planner's in-place precondition (c).
  bool direct_fresh(int entry) const {
    const auto e = static_cast<std::size_t>(entry);
    return fresh[e] != 0 && bases[e].size() == 1 && bases[e][0] == entry;
  }
};

AliasSummary alias_summary(const fx::Graph& g,
                           const fx::GraphModule* gm = nullptr);

// ---------------------------------------------------------------------------
// Liveness — last-use intervals
// ---------------------------------------------------------------------------

struct LiveFact {
  int last_use = -1;  // graph-order index of the last consumer; -1 = unused
};

// Backward analysis over use-def chains. Matches fx::last_use_index (the
// core liveness shared by codegen's `; v = None` annotations, the tape's
// register frees, and the Interpreter's env eviction) node for node; the
// test suite asserts that agreement.
class LivenessAnalysis : public DataflowAnalysis<LiveFact> {
 public:
  explicit LivenessAnalysis(const fx::Graph& g);

  Direction direction() const override { return Direction::Backward; }
  LiveFact transfer(const fx::Node& n, const FactMap& facts) const override;
  bool join(LiveFact& dst, const LiveFact& src) const override;

 private:
  std::unordered_map<const fx::Node*, int> index_;
};

// ---------------------------------------------------------------------------
// Reachability / dead code
// ---------------------------------------------------------------------------

struct ReachFact {
  bool live = false;  // value (transitively) feeds the output node
};

class ReachabilityAnalysis : public DataflowAnalysis<ReachFact> {
 public:
  Direction direction() const override { return Direction::Backward; }
  ReachFact transfer(const fx::Node& n, const FactMap& facts) const override;
  bool join(ReachFact& dst, const ReachFact& src) const override;
};

// Erasable dead nodes (non-placeholder, non-output, unreachable from the
// output). Agrees with what Graph::eliminate_dead_code would remove — the
// purity argument of Section 5.6 makes both trivially correct.
std::vector<const fx::Node*> dead_nodes(const fx::Graph& g);

// ---------------------------------------------------------------------------
// Bundled per-node facts (fxlint --analyze)
// ---------------------------------------------------------------------------

struct NodeFacts {
  std::string name;
  std::string opcode;
  std::string target;
  bool is_const = false;
  bool fresh = false;
  bool external = false;
  bool escapes = false;  // this node's storage is read by Output
  std::vector<std::string> alias_bases;  // names of base producers
  int def = -1;       // graph-order index
  int last_use = -1;  // last consumer index; -1 = unused
  bool dead = false;  // erasable (unreachable from the output)
  std::string sym_shape;  // meta["sym_shape"], else stringified meta shape
  // Placeholder whose shape is not pinned to one concrete value: no
  // shape/dtype meta, or symbolic dims in sym_shape. These are the inputs
  // whose variation drives plan-cache traffic (one cached specialization per
  // concrete signature); always false for non-placeholders.
  bool shape_poly = false;
};

struct GraphFacts {
  std::vector<NodeFacts> nodes;  // graph order
  int constness_iterations = 0;
  int alias_iterations = 0;
  int liveness_iterations = 0;
  int reachability_iterations = 0;

  std::string to_string() const;
  // Stable machine-readable dump: fixed key order, nodes in graph order.
  std::string to_json() const;
};

GraphFacts analyze_graph(const fx::Graph& g,
                         const fx::GraphModule* gm = nullptr);

}  // namespace fxcpp::analysis
