// Static schedule race checker.
//
// The ParallelExecutor runs the compiled tape under a dependency-counted
// schedule (core/parallel_executor.h); the memory planner additionally lets
// instructions share arena bytes (core/memory_plan.h). Both are only correct
// if every pair of conflicting accesses is ordered by a happens-before path
// through the schedule's completion edges. TSan can catch a violation
// dynamically — if the racy interleaving happens to occur under the test
// harness; these checks prove the absence of races at compile time by
// building the transitive closure of the schedule DAG (Kahn-style, like the
// schedule.coverage rule's reachability simulation) and checking every
// conflicting pair:
//
//   schedule.race      every register read is ordered after the register's
//                      (unique) producer, no register is freed (ref-count
//                      exhausted) before all its readers ran, and the edge
//                      relation is acyclic.
//   plan.war-ordering  for every pair of planned intervals that share arena
//                      bytes, the later definition is ordered after the
//                      earlier interval's definition and every one of its
//                      readers (the anti-dependency obligation); in-place
//                      reuse waits for every other reader of the buffer it
//                      overwrites.
//
// The checks are standalone functions (not just verifier rules) so tests can
// feed them deliberately corrupted Schedules — the verifier rules
// (analysis/verifier.cc) call them with freshly built schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/memory_plan.h"
#include "core/parallel_executor.h"

namespace fxcpp::analysis {

// Transitive closure of a schedule's completion edges as per-node bitsets.
// ordered(a, b) answers "must a complete before b starts?" in O(1).
class HappensBefore {
 public:
  HappensBefore(int n, const std::vector<std::vector<int>>& succs);

  // True when a == b or a reaches b through completion edges.
  bool ordered(int a, int b) const {
    if (a == b) return true;
    if (cyclic_) return false;  // no order exists in a cyclic "schedule"
    const auto bu = static_cast<std::size_t>(b);
    return (reach_[static_cast<std::size_t>(a) * words_ + bu / 64] >>
            (bu % 64)) & 1u;
  }
  bool cyclic() const { return cyclic_; }

 private:
  int n_ = 0;
  std::size_t words_ = 0;
  bool cyclic_ = false;
  std::vector<std::uint64_t> reach_;
};

// Prove the schedule orders every conflicting register access of the tape.
// Conflicts are derived from the instructions themselves (ground truth);
// ordering comes from `sched` (the claim under test). Emits "schedule.race"
// diagnostics.
void check_schedule_race(const fx::CompiledGraph& cg, const fx::Schedule& sched,
                         std::vector<Diagnostic>& out);

// Prove the schedule orders every pair of planned intervals that share arena
// bytes (write-after-read over reused slots). `plan.intervals` must be
// parallel to the tape (the plan.aliasing rule reports staleness). Emits
// "plan.war-ordering" diagnostics.
void check_plan_war_ordering(const fx::CompiledGraph& cg,
                             const fx::Schedule& sched,
                             const fx::TapePlan& plan,
                             std::vector<Diagnostic>& out);

}  // namespace fxcpp::analysis
