// PassValidator — differential testing harness for graph transforms.
//
// TorchProbe-style validation: verify the IR before the transform, run it,
// verify the IR after, and differentially execute the pre/post programs on
// randomized inputs through the existing execution engines, reporting the
// maximum absolute divergence. A transform that preserves semantics (fusion,
// decomposition, splitting, rewriting) must diverge by ~float error; lossy
// transforms (int8 quantization) pass with an explicit tolerance.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "tensor/shape.h"

namespace fxcpp::analysis {

struct ValidationOptions {
  int trials = 3;            // randomized input sets per validation
  double tolerance = 1e-4;   // max allowed |pre - post| divergence
  bool check_interpreter = true;  // also cross-check post tape vs Interpreter
  std::uint64_t seed = 0x5EEDF00Dull;  // deterministic input generation
};

struct ValidationReport {
  Report pre;   // verifier findings before the transform
  Report post;  // verifier findings after
  int trials = 0;
  // Largest |before - after| over all trials (compiled tape execution).
  double max_divergence = 0.0;
  // Largest |compiled - Interpreter| on the post-transform module.
  double max_interp_divergence = 0.0;
  double tolerance = 0.0;
  std::string error;  // non-empty if an execution threw

  bool ok() const {
    return error.empty() && pre.ok() && post.ok() &&
           max_divergence <= tolerance && max_interp_divergence <= tolerance;
  }
  std::string to_string() const;
};

class PassValidator {
 public:
  explicit PassValidator(ValidationOptions opts = {}) : opts_(opts) {}

  // Validate an in-place transform (fuse_conv_bn, quantize convert, ...).
  // `input_shapes`: one shape per graph placeholder; inputs are drawn from
  // a seeded normal distribution.
  ValidationReport validate(
      fx::GraphModule& gm,
      const std::function<void(fx::GraphModule&)>& transform,
      const std::vector<Shape>& input_shapes);

  // Validate a rebuilding transform that returns a replacement module
  // (decompose, split_module's parent, Transformer subclasses). Named
  // distinctly because a shared_ptr-returning lambda also converts to
  // std::function<void(GraphModule&)>, which would make an overloaded
  // `validate` ambiguous.
  ValidationReport validate_rebuild(
      fx::GraphModule& gm,
      const std::function<std::shared_ptr<fx::GraphModule>(fx::GraphModule&)>&
          transform,
      const std::vector<Shape>& input_shapes);

  const ValidationOptions& options() const { return opts_; }

 private:
  ValidationOptions opts_;
};

}  // namespace fxcpp::analysis
